package p2kvs

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func fillStore(t *testing.T, s *Store, n int) []Pair {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 9 {
		if err := s.Delete([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := s.Range(nil, []byte("\xff"))
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}

func samePairs(t *testing.T, tag string, want, got []Pair) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs, want %d", tag, len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(want[i].Key, got[i].Key) || !bytes.Equal(want[i].Value, got[i].Value) {
			t.Fatalf("%s: pair %d = %q=%q, want %q=%q", tag, i,
				got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}
}

// TestBackupRestoreOnDisk runs the full public path on the host
// filesystem: open → fill → Backup → Backup again (incremental) →
// Restore → identical dump. On one filesystem the second backup must
// reuse the image's unchanged immutable files instead of re-copying them.
func TestBackupRestoreOnDisk(t *testing.T) {
	tmp := t.TempDir()
	s, err := Open(Options{Dir: filepath.Join(tmp, "db"), Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := fillStore(t, s, 500)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	bak := filepath.Join(tmp, "bak")
	info, err := Backup(s, bak)
	if err != nil {
		t.Fatalf("Backup: %v", err)
	}
	if info.Seq != 1 || info.Workers != 3 || info.Files == 0 || info.BarrierNs <= 0 {
		t.Fatalf("BackupInfo = %+v", info)
	}
	info2, err := Backup(s, bak)
	if err != nil {
		t.Fatalf("second Backup: %v", err)
	}
	if info2.Seq != 2 {
		t.Fatalf("second backup seq = %d", info2.Seq)
	}

	r, err := Restore(bak, Options{Dir: filepath.Join(tmp, "restored")})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer r.Close()
	got, err := r.Range(nil, []byte("\xff"))
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "restored", want, got)

	// Shape adoption and mismatch rejection.
	if _, err := Restore(bak, Options{Dir: filepath.Join(tmp, "bad"), Workers: 5}); err == nil {
		t.Fatal("Restore with mismatched worker count succeeded")
	}
	if _, err := Restore(bak, Options{Dir: filepath.Join(tmp, "restored")}); err == nil {
		t.Fatal("Restore into a directory already holding a store succeeded")
	}
}

// TestBackupInMemoryStore exercises the cross-filesystem path: the store
// lives on MemFS, the backup lands on the host filesystem (links are
// impossible, so everything is copied), and Restore rebuilds a real
// on-disk store from it.
func TestBackupInMemoryStore(t *testing.T) {
	tmp := t.TempDir()
	s, err := Open(Options{Dir: "db", Workers: 2, InMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := fillStore(t, s, 300)

	bak := filepath.Join(tmp, "bak")
	if _, err := Backup(s, bak); err != nil {
		t.Fatalf("Backup: %v", err)
	}
	r, err := Restore(bak, Options{Dir: filepath.Join(tmp, "restored")})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer r.Close()
	got, err := r.Range(nil, []byte("\xff"))
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "restored", want, got)
}

func TestRestoreErrorTaxonomy(t *testing.T) {
	tmp := t.TempDir()
	if _, err := Restore(filepath.Join(tmp, "nothing"), Options{Dir: filepath.Join(tmp, "out")}); !errors.Is(err, ErrNoBackup) {
		t.Fatalf("restore from empty dir: %v", err)
	}

	s, err := Open(Options{Dir: "db", Workers: 2, InMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s, 200)
	bak := filepath.Join(tmp, "bak")
	if _, err := Backup(s, bak); err != nil {
		t.Fatal(err)
	}

	// Tamper with the largest image file: restore must fail typed and
	// must not leave a store behind.
	var victim string
	var size int64
	err = filepath.Walk(bak, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() && fi.Name() != "CHECKPOINT" && fi.Size() > size {
			victim, size = path, fi.Size()
		}
		return nil
	})
	if err != nil || victim == "" {
		t.Fatalf("no image file to tamper with: %v", err)
	}
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(bak, Options{Dir: filepath.Join(tmp, "out")}); !errors.Is(err, ErrBackupChecksum) {
		t.Fatalf("tampered restore: %v (want ErrBackupChecksum)", err)
	}
	if !errors.Is(ErrBackupChecksum, ErrBackupCorrupt) {
		t.Fatal("checksum mismatch must also match the generic corrupt class")
	}
}
