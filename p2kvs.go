// Package p2kvs is the public API of this repository: a from-scratch Go
// reproduction of "p2KVS: a Portable 2-Dimensional Parallelizing
// Framework to Improve Scalability of Key-value Stores on SSDs"
// (EuroSys '22).
//
// p2KVS partitions the key space by hash over N worker threads, each
// owning a private KVS instance (its own WAL, memtable and LSM-tree), and
// opportunistically batches consecutive same-type requests on each
// worker's queue into WriteBatch/multiget calls. The framework treats the
// per-worker engine as a black box; this package ships four engine
// families to slot underneath it — a RocksDB-style LSM engine (with
// LevelDB and PebblesDB presets), a WiredTiger-style B+-tree engine, and
// a KVell-style slab engine.
//
// Quickstart:
//
//	store, err := p2kvs.Open(p2kvs.Options{Dir: "/tmp/db", Workers: 8})
//	...
//	store.Put([]byte("k"), []byte("v"))
//	v, err := store.Get([]byte("k"))
//	store.Close()
package p2kvs

import (
	"errors"
	"fmt"
	"time"

	"p2kvs/internal/btreekv"
	"p2kvs/internal/core"
	"p2kvs/internal/device"
	"p2kvs/internal/keyspace"
	"p2kvs/internal/kv"
	"p2kvs/internal/kvell"
	"p2kvs/internal/lsm"
	"p2kvs/internal/repl"
	"p2kvs/internal/reshard"
	"p2kvs/internal/vfs"
	"p2kvs/internal/wal"
)

// Re-exported types: the facade aliases the internal contract types so
// applications never import internal packages.
type (
	// Store is a p2KVS store (the accessing layer + workers).
	Store = core.Store
	// Batch accumulates write operations for atomic commit.
	Batch = kv.Batch
	// Iterator walks keys in ascending order.
	Iterator = kv.Iterator
	// Pair is a key/value result from Range and Scan.
	Pair = core.Pair
	// WorkerStats summarizes one worker's activity.
	WorkerStats = core.WorkerStats
	// StatsSnapshot is the stable-schema stats document returned by
	// Store.StatsSnapshot and serialized by Store.StatsJSON; the same
	// document backs the network server's INFO/metrics and dbbench's
	// -stats_json output.
	StatsSnapshot = core.StatsSnapshot
	// WorkerStatsJSON is the JSON form of one worker's stats inside a
	// StatsSnapshot.
	WorkerStatsJSON = core.WorkerStatsJSON
	// ReshardStats reports the state and counters of the last (or
	// in-flight) online reshard; see Store.ReshardStats.
	ReshardStats = reshard.Stats
	// AdmissionPolicy selects the overload behaviour of request
	// submission (see the AdmitBlock/AdmitReject/AdmitWait constants).
	AdmissionPolicy = core.AdmissionPolicy
	// SyncPolicy selects WAL durability on engines with a log (see the
	// SyncNever/SyncInterval/SyncOnCommit constants).
	SyncPolicy = wal.SyncPolicy
)

// WAL durability policies (re-exported from the wal package). Under
// SyncOnCommit, any write acknowledged to the caller survives a crash —
// including SIGKILL — of the process (the fsync happens before the ack).
// SyncInterval bounds the data-loss window to Options.WALSyncInterval;
// SyncNever leaves durability to the OS page cache and engine
// checkpoints.
const (
	SyncNever    = wal.PolicyNever
	SyncInterval = wal.PolicyInterval
	SyncOnCommit = wal.PolicyCommit
)

// Admission policies (re-exported from core).
const (
	// AdmitBlock blocks submitters on a full shard queue (default).
	AdmitBlock = core.AdmitBlock
	// AdmitReject fails fast with ErrOverloaded on a full or degraded
	// shard.
	AdmitReject = core.AdmitReject
	// AdmitWait waits for queue space only within the request's
	// remaining deadline budget.
	AdmitWait = core.AdmitWait
)

// ErrNotFound is returned by Get when a key does not exist.
var ErrNotFound = kv.ErrNotFound

// ErrClosed is returned by operations on a closed store, and delivered to
// requests still queued when a drain-deadline Close fails them.
var ErrClosed = kv.ErrClosed

// ErrDegraded is returned by writes aimed at a shard whose engine is in
// read-only degraded mode; see Store.Resume. Retryable after Resume.
var ErrDegraded = kv.ErrDegraded

// ErrOverloaded is returned by admission control when a shard cannot
// accept a request without unbounded waiting (AdmitReject / AdmitWait).
// The request was not enqueued; retrying after backoff is safe.
var ErrOverloaded = kv.ErrOverloaded

// ErrDeadlineExceeded is returned when a request's context ends before
// the request reaches the engine; the operation was never applied.
var ErrDeadlineExceeded = kv.ErrDeadlineExceeded

// ErrReshardUnsupported is returned by Store.Reshard on a store that was
// not opened with Options.Elastic.
var ErrReshardUnsupported = core.ErrReshardUnsupported

// EngineKind selects the per-worker storage engine.
type EngineKind string

// Engine kinds.
const (
	// EngineRocksDB is the default: the full LSM engine with group
	// logging, concurrent memtable, pipelined writes and multiget.
	EngineRocksDB EngineKind = "rocksdb"
	// EngineLevelDB disables the RocksDB concurrency features and
	// multiget (§5.6.1 portability target).
	EngineLevelDB EngineKind = "leveldb"
	// EnginePebblesDB uses fragmented (guard-based) compaction for lower
	// write amplification (§5.2 baseline).
	EnginePebblesDB EngineKind = "pebblesdb"
	// EngineWiredTiger is the B+-tree engine without batch writes
	// (§5.6.2 portability target).
	EngineWiredTiger EngineKind = "wiredtiger"
	// EngineKVell is the share-nothing slab engine (§5.5 baseline).
	EngineKVell EngineKind = "kvell"
)

// Options configures Open.
type Options struct {
	// Dir is the root directory; each worker stores its instance in
	// Dir/inst-NN. Required.
	Dir string
	// Workers is the number of KVS instances (default 8, the paper's
	// recommended match to hardware parallelism).
	Workers int
	// Engine selects the per-worker engine (default EngineRocksDB).
	Engine EngineKind
	// InMemory uses an in-memory filesystem instead of the host
	// filesystem — handy for tests and experiments.
	InMemory bool
	// SimulateDevice, when non-empty ("nvme", "sata", "hdd"), layers the
	// corresponding simulated device model over the filesystem.
	SimulateDevice string
	// DeviceScale multiplies simulated IO durations (default 1.0).
	DeviceScale float64
	// DisableOBM turns off opportunistic batching (sensitivity studies).
	DisableOBM bool
	// MaxBatch bounds OBM batch size (default 32).
	MaxBatch int
	// QueueDepth bounds each worker's request queue (default 4096);
	// admission control triggers when a shard's queue is full.
	QueueDepth int
	// Admission selects the overload behaviour of request submission:
	// AdmitBlock (default, blocking backpressure), AdmitReject
	// (fail fast with ErrOverloaded) or AdmitWait (wait only within the
	// request deadline).
	Admission AdmissionPolicy
	// DrainTimeout bounds Close's drain: queued requests still pending
	// when it passes complete with ErrClosed instead of Close hanging
	// behind a stalled engine. Zero waits forever (default).
	DrainTimeout time.Duration
	// PinWorkers locks worker goroutines to OS threads.
	PinWorkers bool
	// SyncWAL makes per-commit durability synchronous on engines with a
	// WAL. Equivalent to WALSync = SyncOnCommit; kept for existing call
	// sites.
	SyncWAL bool
	// WALSync selects the WAL durability policy explicitly; the zero
	// value (SyncNever) defers to SyncWAL. WALSyncInterval bounds
	// staleness under SyncInterval (default 100ms). Ignored by engines
	// without a log (KVell).
	WALSync         SyncPolicy
	WALSyncInterval time.Duration
	// MergedScan switches SCAN to the serial global-iterator strategy.
	MergedScan bool
	// Compression enables per-block DEFLATE compression in the LSM
	// engines (ignored by the B+-tree and slab engines).
	Compression bool
	// BlockCacheSize overrides the per-instance data-block cache budget
	// (LSM engines; 0 = default 8 MiB, negative disables).
	BlockCacheSize int64
	// MaxBackgroundCompactions bounds how many compactions of disjoint
	// levels/key ranges each LSM instance runs concurrently (0 = engine
	// default 2).
	MaxBackgroundCompactions int
	// MaxSubCompactions splits one large merge into up to this many
	// parallel key-range subcompactions (0 = engine default 1, off).
	MaxSubCompactions int
	// L0SlowdownTrigger is the per-instance L0 file count at which writers
	// are delayed with a scaled sleep instead of blocked (0 = engine
	// default, midway between the compaction and stall triggers).
	L0SlowdownTrigger int
	// SimulateHostCosts charges the per-request host software costs the
	// paper identifies (log encode/checksum ~1us + ~6ns/B, lookup ~2us)
	// in simulated time, multiplied by DeviceScale. Only meaningful
	// together with SimulateDevice; see DESIGN.md "Time and cost model".
	SimulateHostCosts bool
	// ScrubInterval enables a background at-rest integrity scrub on this
	// cadence: every worker engine re-reads its files and verifies their
	// block checksums, quarantining (and, with RepairFrom, repairing) what
	// fails. Zero disables the background loop; Store.Scrub stays available
	// for on-demand passes either way.
	ScrubInterval time.Duration
	// ScrubRate bounds the scrub's aggregate read bandwidth in bytes per
	// second so verification never starves foreground IO (0 = unthrottled).
	ScrubRate int64
	// RepairFrom names a backup directory (as written by Backup, on the
	// host filesystem) engines may pull verified file content from to
	// repair a quarantined file in place. Empty disables self-repair;
	// corruption is then contained until an operator restores.
	RepairFrom string
	// HotCacheBytes, when non-zero, enables the sharded hot-key read
	// cache above the worker queues: Get/MultiGet hits are served
	// without queue admission, and writers invalidate by GSN-ordered
	// watermark bumps so a hit is never stale. Positive values set the
	// byte budget; negative selects the default 32 MiB. Zero (the
	// default) disables the cache.
	HotCacheBytes int64
	// Elastic enables online resharding: keys are placed by an
	// epoch-versioned consistent-hash ring instead of the modular hash,
	// and Store.Reshard(ctx, n) grows or shrinks the store to n workers
	// while it keeps serving. Open then adopts the worker count committed
	// by the last reshard (the TOPOLOGY file under Dir/txn); Workers only
	// seeds the very first Open of the directory. Mutually exclusive with
	// ReplBacklogBytes — replication logs are sized to a fixed worker
	// count.
	Elastic bool
	// CutoverBudget bounds the writer pause of one reshard cutover
	// attempt; an attempt that cannot commit inside it releases the
	// writers and retries. Zero selects the 10ms default. Only meaningful
	// with Elastic.
	CutoverBudget time.Duration
	// ReplBacklogBytes, when non-zero, enables GSN log-shipping
	// replication: every applied write batch is retained (with its
	// apply-time Global Sequence Number) in an in-memory backlog that
	// replicas tail over the network server's PSYNC protocol. Positive
	// values set the retention budget in bytes; negative selects the
	// default 16 MiB. Zero (the default) disables replication.
	ReplBacklogBytes int64
}

// Open creates or reopens a p2KVS store.
func Open(opts Options) (*Store, error) {
	opts, fs, err := buildFS(opts)
	if err != nil {
		return nil, err
	}
	return openWithFS(opts, fs)
}

// buildFS normalizes opts and constructs the filesystem stack Open and
// Restore share (in-memory or host, optionally device-wrapped).
func buildFS(opts Options) (Options, vfs.FS, error) {
	if opts.Dir == "" {
		return opts, nil, errors.New("p2kvs: Options.Dir is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	if opts.Engine == "" {
		opts.Engine = EngineRocksDB
	}

	var fs vfs.FS
	if opts.InMemory {
		fs = vfs.NewMem()
	} else {
		fs = vfs.NewOS()
	}
	switch opts.SimulateDevice {
	case "":
	case "nvme":
		fs = device.WrapFS(fs, device.New(device.NVMe, scale(opts)))
	case "sata":
		fs = device.WrapFS(fs, device.New(device.SATA, scale(opts)))
	case "hdd":
		fs = device.WrapFS(fs, device.New(device.HDD, scale(opts)))
	default:
		return opts, nil, fmt.Errorf("p2kvs: unknown device profile %q", opts.SimulateDevice)
	}
	return opts, fs, nil
}

// ringReplicas is the virtual-node count per worker of elastic stores'
// consistent-hash ring (the moved fraction of a grow N→N+1 approaches
// the ideal 1/(N+1) as replicas grows; 64 keeps lookup cheap).
const ringReplicas = 64

func openWithFS(opts Options, fs vfs.FS) (*Store, error) {
	if opts.Elastic {
		if opts.ReplBacklogBytes != 0 {
			return nil, errors.New("p2kvs: Elastic and ReplBacklogBytes are mutually exclusive")
		}
		// A committed reshard owns the worker count from here on.
		topo, err := reshard.LoadTopology(fs, opts.Dir+"/txn")
		if err != nil {
			return nil, err
		}
		if topo != nil {
			opts.Workers = topo.Workers
		}
	}
	factory, err := engineFactory(fs, opts)
	if err != nil {
		return nil, err
	}
	copts := core.DefaultOptions(factory)
	copts.Workers = opts.Workers
	copts.OBM = !opts.DisableOBM
	if opts.MaxBatch > 0 {
		copts.MaxBatch = opts.MaxBatch
	}
	copts.PinWorkers = opts.PinWorkers
	if opts.QueueDepth > 0 {
		copts.QueueDepth = opts.QueueDepth
	}
	copts.Admission = opts.Admission
	copts.DrainTimeout = opts.DrainTimeout
	copts.TxnFS = fs
	copts.TxnDir = opts.Dir + "/txn"
	copts.EngineName = string(opts.Engine)
	if opts.MergedScan {
		copts.Scan = core.ScanMerged
	}
	copts.ScrubInterval = opts.ScrubInterval
	copts.ScrubRate = opts.ScrubRate
	copts.HotCacheBytes = opts.HotCacheBytes
	if opts.ReplBacklogBytes != 0 {
		copts.ReplLog = repl.NewLog(opts.Workers, opts.ReplBacklogBytes)
	}
	if opts.Elastic {
		copts.Partitioner = keyspace.NewRing(opts.Workers, ringReplicas)
		copts.CutoverBudget = opts.CutoverBudget
		copts.InstanceReset = func(id int) error {
			return vfs.RemoveTree(fs, fmt.Sprintf("%s/inst-%02d", opts.Dir, id))
		}
	}
	return core.Open(copts)
}

func scale(o Options) float64 {
	if o.DeviceScale > 0 {
		return o.DeviceScale
	}
	return 1.0
}

func engineFactory(fs vfs.FS, opts Options) (core.EngineFactory, error) {
	instDir := func(id int) string { return fmt.Sprintf("%s/inst-%02d", opts.Dir, id) }
	switch opts.Engine {
	case EngineRocksDB, EngineLevelDB, EnginePebblesDB:
		return func(id int, filter func(uint64) bool) (kv.Engine, error) {
			var lo lsm.Options
			switch opts.Engine {
			case EngineLevelDB:
				lo = lsm.LevelDBOptions(fs)
			case EnginePebblesDB:
				lo = lsm.PebblesDBOptions(fs)
			default:
				lo = lsm.RocksDBOptions(fs)
			}
			lo.SyncWAL = opts.SyncWAL
			lo.WALSync = opts.WALSync
			lo.WALSyncInterval = opts.WALSyncInterval
			lo.Compression = opts.Compression
			lo.BlockCacheSize = opts.BlockCacheSize
			lo.MaxBackgroundCompactions = opts.MaxBackgroundCompactions
			lo.MaxSubCompactions = opts.MaxSubCompactions
			lo.L0SlowdownTrigger = opts.L0SlowdownTrigger
			lo.RepairSource = repairSourceFor(opts, id)
			if opts.SimulateHostCosts && opts.SimulateDevice != "" {
				s := scale(opts)
				lo.WALPerRecordCost = time.Duration(1000 * s)
				lo.WALPerByteCost = time.Duration(6 * s)
				lo.ReadPerOpCost = time.Duration(2000 * s)
			}
			return lsm.OpenWith(instDir(id), lo, lsm.OpenOptions{RecoverFilter: filter})
		}, nil
	case EngineWiredTiger:
		return func(id int, _ func(uint64) bool) (kv.Engine, error) {
			return btreekv.Open(instDir(id), btreekv.Options{
				FS:              fs,
				SyncWAL:         opts.SyncWAL,
				WALSync:         opts.WALSync,
				WALSyncInterval: opts.WALSyncInterval,
				RepairSource:    repairSourceFor(opts, id),
			})
		}, nil
	case EngineKVell:
		return func(id int, _ func(uint64) bool) (kv.Engine, error) {
			return kvell.Open(instDir(id), kvell.Options{FS: fs, Workers: 1})
		}, nil
	default:
		return nil, fmt.Errorf("p2kvs: unknown engine %q", opts.Engine)
	}
}
