// txn-recovery demonstrates §4.5 of the paper (Figure 11): a WriteBatch
// spanning several p2KVS instances commits atomically via the Global
// Sequence Number log, and a crash between the instance writes and the
// commit record rolls the whole transaction back at recovery on every
// instance.
//
// The crash is injected with the in-memory filesystem's power-failure
// hook: everything not fsynced is dropped, exactly like a machine losing
// power.
package main

import (
	"fmt"
	"log"

	"p2kvs/internal/core"
	"p2kvs/internal/kv"
	"p2kvs/internal/lsm"
	"p2kvs/internal/vfs"
)

func main() {
	fs := vfs.NewMem()
	open := func() *core.Store {
		opts := core.DefaultOptions(func(id int, filter func(uint64) bool) (kv.Engine, error) {
			o := lsm.RocksDBOptions(fs)
			o.SyncWAL = true // durability per commit, so the crash is meaningful
			return lsm.OpenWith(fmt.Sprintf("bank/inst-%02d", id), o, lsm.OpenOptions{RecoverFilter: filter})
		})
		opts.Workers = 4
		opts.TxnFS = fs
		opts.TxnDir = "bank/txn"
		s, err := core.Open(opts)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	// Transaction A: a transfer that commits.
	store := open()
	var txA kv.Batch
	txA.Put([]byte("account:alice"), []byte("900"))
	txA.Put([]byte("account:bob"), []byte("1100"))
	if err := store.Write(&txA); err != nil {
		log.Fatal(err)
	}
	fmt.Println("transaction A committed (alice=900, bob=1100)")

	// Transaction B: WritePrepared applies the split WriteBatches on the
	// instances but leaves the commit to us — and we crash the "machine"
	// before calling it.
	var txB kv.Batch
	txB.Put([]byte("account:alice"), []byte("0"))
	txB.Put([]byte("account:bob"), []byte("2000"))
	if _, err := store.WritePrepared(&txB); err != nil {
		log.Fatal(err)
	}
	fmt.Println("transaction B applied on instances; crashing before commit...")
	fs.Crash()
	fs.Restart()

	// Recovery: p2KVS reads the GSN log, sees no commit for B, and
	// filters B's records out of every instance's WAL replay.
	recovered := open()
	defer recovered.Close()
	alice, err := recovered.Get([]byte("account:alice"))
	if err != nil {
		log.Fatal(err)
	}
	bob, err := recovered.Get([]byte("account:bob"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery: alice=%s bob=%s\n", alice, bob)
	if string(alice) == "900" && string(bob) == "1100" {
		fmt.Println("uncommitted transaction B was rolled back on all instances ✓")
	} else {
		fmt.Println("UNEXPECTED: partial transaction survived")
	}
}
