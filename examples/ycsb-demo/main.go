// ycsb-demo reproduces the paper's headline comparison in miniature: the
// same YCSB-A workload (50% update / 50% read, zipfian) against a single
// RocksDB-style instance and against p2KVS-8, printing the speedup. It
// is the workload the paper's introduction motivates: small KV pairs,
// high concurrency, fast storage.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"p2kvs"
	"p2kvs/internal/kv"
	"p2kvs/internal/workload"
	"p2kvs/internal/ycsb"
)

// The workload runs against the simulated Optane NVMe with the host
// software costs charged in simulated time (see DESIGN.md "Time and cost
// model") — the environment where the paper's bottleneck exists. On a
// raw in-memory filesystem both configurations are equally unconstrained
// and the comparison would be meaningless.
const (
	loadKeys  = 4000
	opsTotal  = 6000
	threads   = 16
	valueSize = 128
	devScale  = 300
)

func main() {
	single := run("single RocksDB instance", 1)
	sharded := run("p2KVS-8", 8)
	fmt.Printf("\np2KVS-8 speedup over single instance on YCSB-A: %.2fx\n", sharded/single)
}

func run(label string, workers int) float64 {
	store, err := p2kvs.Open(p2kvs.Options{
		Dir:               "ycsb-demo",
		Workers:           workers,
		InMemory:          true,
		SimulateDevice:    "nvme",
		DeviceScale:       devScale,
		SimulateHostCosts: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Load phase.
	var b p2kvs.Batch
	for i := 0; i < loadKeys; i++ {
		b.Put(workload.Key(uint64(i)), workload.Value(uint64(i), valueSize))
		if b.Len() == 256 {
			if err := store.Write(&b); err != nil {
				log.Fatal(err)
			}
			b.Reset()
		}
	}
	if err := store.Write(&b); err != nil {
		log.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		log.Fatal(err)
	}

	// Run phase: YCSB-A from Table 1.
	spec := ycsb.Workloads["A"]
	frontier := ycsb.NewFrontier(loadKeys)
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			gen := ycsb.NewGenerator(spec, loadKeys, frontier, int64(tid+1))
			for i := 0; i < opsTotal/threads; i++ {
				op := gen.Next()
				key := workload.Key(op.KeyIdx)
				switch op.Type {
				case ycsb.OpUpdate:
					if err := store.Put(key, workload.Value(op.KeyIdx, valueSize)); err != nil {
						log.Fatal(err)
					}
				case ycsb.OpRead:
					if _, err := store.Get(key); err != nil && err != kv.ErrNotFound {
						log.Fatal(err)
					}
				}
			}
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Simulated QPS: measured rate times the device time scale.
	qps := float64(opsTotal) / elapsed.Seconds() * devScale
	fmt.Printf("%-28s %8.0f sim ops/s (%d threads, %v wall)\n", label, qps, threads, elapsed.Round(time.Millisecond))
	return qps
}
