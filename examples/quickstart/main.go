// Quickstart: open a p2KVS store, write, read, batch, scan, close — the
// five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"p2kvs"
)

func main() {
	// Eight workers, each with a private RocksDB-style LSM instance, on
	// an in-memory filesystem (set InMemory: false and a real Dir for
	// durable data).
	store, err := p2kvs.Open(p2kvs.Options{
		Dir:      "quickstart-db",
		Workers:  8,
		InMemory: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Point operations: the accessing layer routes each key to its
	// worker by hash; the caller sees one flat key space.
	if err := store.Put([]byte("city:paris"), []byte("2.1M")); err != nil {
		log.Fatal(err)
	}
	if err := store.Put([]byte("city:tokyo"), []byte("14.0M")); err != nil {
		log.Fatal(err)
	}
	v, err := store.Get([]byte("city:tokyo"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tokyo = %s\n", v)

	// Batched writes commit atomically; batches that span workers become
	// GSN transactions under the hood (§4.5 of the paper).
	var batch p2kvs.Batch
	batch.Put([]byte("city:berlin"), []byte("3.6M"))
	batch.Put([]byte("city:madrid"), []byte("3.3M"))
	batch.Delete([]byte("city:paris"))
	if err := store.Write(&batch); err != nil {
		log.Fatal(err)
	}

	if _, err := store.Get([]byte("city:paris")); err == p2kvs.ErrNotFound {
		fmt.Println("paris deleted")
	}

	// Asynchronous writes return immediately; the callback runs on the
	// worker when the write is durable in its instance.
	done := make(chan struct{})
	store.PutAsync([]byte("city:rome"), []byte("2.8M"), func(err error) {
		if err != nil {
			log.Print(err)
		}
		close(done)
	})
	<-done

	// Range and scan fan out to the workers in parallel and merge.
	pairs, err := store.Scan([]byte("city:"), 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cities in order:")
	for _, p := range pairs {
		fmt.Printf("  %s = %s\n", p.Key, p.Value)
	}
}
