// portability demonstrates §4.6 of the paper: the same p2KVS accessing
// layer runs unchanged over four different engine families — the
// RocksDB-style and LevelDB-style LSM engines, the WiredTiger-style
// B+-tree engine, and the KVell-style slab engine — and OBM adapts to
// each engine's capabilities (WriteBatch/multiget on RocksDB, neither on
// WiredTiger).
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"p2kvs"
	"p2kvs/internal/workload"
)

const (
	ops       = 20000
	threads   = 8
	workers   = 4
	valueSize = 128
)

func main() {
	fmt.Printf("%-12s %-10s %-10s %-14s\n", "engine", "write/s", "read/s", "OBM batching")
	for _, engine := range []p2kvs.EngineKind{
		p2kvs.EngineRocksDB,
		p2kvs.EngineLevelDB,
		p2kvs.EngineWiredTiger,
		p2kvs.EngineKVell,
	} {
		store, err := p2kvs.Open(p2kvs.Options{
			Dir:      "port-db",
			Workers:  workers,
			Engine:   engine,
			InMemory: true,
		})
		if err != nil {
			log.Fatal(err)
		}

		writeQPS := drive(store, true)
		readQPS := drive(store, false)

		// How much OBM aggregated on this engine.
		var opsN, batches int64
		for _, ws := range store.Stats() {
			opsN += ws.Ops
			batches += ws.Batches
		}
		avgBatch := float64(opsN) / float64(batches)
		store.Close()
		fmt.Printf("%-12s %-10.0f %-10.0f %.2f ops/batch\n", engine, writeQPS, readQPS, avgBatch)
	}
	fmt.Println("\nSame accessing layer, four engines — the framework treats each as a black box.")
}

func drive(store *p2kvs.Store, write bool) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			ch := workload.NewUniform(ops, int64(tid+1))
			for i := 0; i < ops/threads; i++ {
				idx := ch.Next()
				if write {
					if err := store.Put(workload.Key(idx), workload.Value(idx, valueSize)); err != nil {
						log.Fatal(err)
					}
				} else {
					if _, err := store.Get(workload.Key(idx)); err != nil && err != p2kvs.ErrNotFound {
						log.Fatal(err)
					}
				}
			}
		}(t)
	}
	wg.Wait()
	return float64(ops) / time.Since(start).Seconds()
}
