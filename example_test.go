package p2kvs_test

import (
	"fmt"

	"p2kvs"
)

// Example shows the basic open/put/get/scan lifecycle.
func Example() {
	store, err := p2kvs.Open(p2kvs.Options{Dir: "example-db", Workers: 4, InMemory: true})
	if err != nil {
		panic(err)
	}
	defer store.Close()

	store.Put([]byte("fruit:apple"), []byte("red"))
	store.Put([]byte("fruit:banana"), []byte("yellow"))

	v, _ := store.Get([]byte("fruit:apple"))
	fmt.Println(string(v))

	pairs, _ := store.Scan([]byte("fruit:"), 2)
	for _, p := range pairs {
		fmt.Printf("%s=%s\n", p.Key, p.Value)
	}
	// Output:
	// red
	// fruit:apple=red
	// fruit:banana=yellow
}

// ExampleStore_Write shows atomic batches; batches spanning workers
// commit as GSN transactions.
func ExampleStore_Write() {
	store, _ := p2kvs.Open(p2kvs.Options{Dir: "example-db", Workers: 4, InMemory: true})
	defer store.Close()

	var b p2kvs.Batch
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	if err := store.Write(&b); err != nil {
		panic(err)
	}
	_, err := store.Get([]byte("a"))
	fmt.Println(err == p2kvs.ErrNotFound)
	// Output: true
}

// ExampleStore_PutAsync shows the asynchronous write interface (§4.1 of
// the paper): submission returns immediately; the callback fires on the
// worker once the write is durable in its instance.
func ExampleStore_PutAsync() {
	store, _ := p2kvs.Open(p2kvs.Options{Dir: "example-db", Workers: 4, InMemory: true})
	defer store.Close()

	done := make(chan error, 1)
	store.PutAsync([]byte("k"), []byte("v"), func(err error) { done <- err })
	fmt.Println(<-done == nil)
	// Output: true
}

// ExampleStore_MultiGet shows application-driven read batching: each
// group of keys reaches its worker as one multiget.
func ExampleStore_MultiGet() {
	store, _ := p2kvs.Open(p2kvs.Options{Dir: "example-db", Workers: 4, InMemory: true})
	defer store.Close()
	store.Put([]byte("x"), []byte("1"))
	store.Put([]byte("y"), []byte("2"))

	vals, _ := store.MultiGet([][]byte{[]byte("x"), []byte("missing"), []byte("y")})
	fmt.Printf("%s %v %s\n", vals[0], vals[1] == nil, vals[2])
	// Output: 1 true 2
}
