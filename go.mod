module p2kvs

go 1.22
