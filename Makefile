GO ?= go
FUZZTIME ?= 10s
SERVE_ADDR ?= 127.0.0.1:6380

.PHONY: build test test-race vet fuzz-short torture-short compaction-stress backup-stress crash-stress scrub-stress repl-stress cache-stress reshard-stress serve netbench serve-smoke ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzzing pass over every fuzz target (Go runs one -fuzz target per
# invocation, so each gets its own line).
fuzz-short:
	$(GO) test -fuzz=FuzzDecodeEdit -fuzztime=$(FUZZTIME) ./internal/manifest
	$(GO) test -fuzz=FuzzReadAll -fuzztime=$(FUZZTIME) ./internal/wal
	$(GO) test -fuzz=FuzzIterParse -fuzztime=$(FUZZTIME) ./internal/block
	$(GO) test -fuzz=FuzzBuilderRoundTrip -fuzztime=$(FUZZTIME) ./internal/block
	$(GO) test -fuzz=FuzzDecodeBatchPayload -fuzztime=$(FUZZTIME) ./internal/lsm
	$(GO) test -fuzz=FuzzBatchPayloadRoundTrip -fuzztime=$(FUZZTIME) ./internal/lsm
	$(GO) test -fuzz=FuzzRESPParse -fuzztime=$(FUZZTIME) ./internal/server
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/checkpoint
	$(GO) test -fuzz=FuzzReplStream -fuzztime=$(FUZZTIME) ./internal/repl

# Short overload + torture pass: the fault-injection torture run (one
# seed, reduced ops under -short) plus the accessing layer's admission /
# deadline / drain lifecycle tests, all race-enabled and time-bounded.
torture-short:
	$(GO) test -race -short -timeout 5m -run 'Torture|Admit|Expired|Deadline|Drain|Close|Queue' ./internal/torture ./internal/core

# Compaction-scheduler stress: the parallel-compaction and slowdown tests
# under the race detector, plus the short torture run that hammers
# concurrent compactions with fault injection and crash cycles.
compaction-stress:
	$(GO) test -race -timeout 10m -run 'Compaction|Scheduler|Slowdown|Subcompaction|JobsConflict|RangesOverlap|MergeFiles' ./internal/lsm
	$(GO) test -race -short -timeout 5m -run 'Torture/lsm-parallel' ./internal/torture

# Backup/restore stress: the restore-equivalence torture (checkpoint →
# restore → byte-identical dump, for every engine family, including a
# wrecked mid-checkpoint attempt), the checkpoint/barrier battery in core,
# and the manifest parser's deterministic mutation sweep — all under the
# race detector.
backup-stress:
	$(GO) test -race -timeout 10m -run 'RestoreEquivalence' ./internal/torture
	$(GO) test -race -timeout 5m -run 'Checkpoint|Restore|Barrier' ./internal/core
	$(GO) test -race -timeout 5m -run 'Manifest|ParseMutations|ParseRejects' ./internal/checkpoint
	$(GO) test -race -timeout 5m -run 'Backup|Restore' .

# At-rest integrity stress: the bit-flip torture (random single-bit
# flips across every engine family's files; every read must come back
# correct, not-found, or loudly CORRUPTION — never silently wrong), the
# per-engine corruption/quarantine/repair batteries, the scrub runner,
# the WAL rot-vs-tear discrimination tests, and the end-to-end
# over-the-wire corruption test — all race-enabled.
scrub-stress:
	$(GO) test -race -timeout 10m -run 'BitFlipAtRestTorture' ./internal/torture
	$(GO) test -race -timeout 5m -run 'Corrupt|Scrub|Quarantine|Repair|Flip|Rot|Checksum|Limiter|Runner' \
		./internal/block ./internal/wal ./internal/lsm ./internal/btreekv \
		./internal/kvell ./internal/scrub ./internal/vfs ./internal/server

# Crash-recovery stress: kill -9 a real server process under pipelined
# load, restart, verify acked writes (commit mode) / clean recovery
# (async modes) over the wire. CYCLES=n overrides the commit-mode count.
crash-stress:
	./scripts/crash-stress.sh

# Replication stress: race-enabled protocol/backlog/sync tests, then the
# crashkv -replica torture (SIGKILL primary/replica mid-stream, verify
# acked-write durability, partial resync and full-sync fallback).
repl-stress:
	./scripts/repl-stress.sh

# Hot-key read-cache stress: the cache's own unit battery, the store-level
# coherence/bypass/invalidation tests, and the shadow-model torture with
# the cache enabled (any stale read fails) — all under the race detector —
# then the before/after zipfian benchmark, which must show a real speedup.
cache-stress:
	$(GO) test -race -timeout 5m ./internal/hotcache
	$(GO) test -race -short -timeout 5m -run 'HotCache|MultiGetAdmit|ShardDistribution|OversizedPut' ./internal/core ./internal/cache ./internal/torture
	$(GO) run ./cmd/dbbench -hotcache_bench -num 20000 -threads 4 -p2 -workers 4 -devscale 0.2

# Online-reshard stress: the crash/fault shadow-model torture with live
# reshards (short: one seed), the ring/moved-range property tests, the
# core reshard battery (grow, shrink, abort, reopen, cleanup recovery,
# Migrate ≡ Reshard, txns through the cutover), the server RESHARD
# tests and the elastic facade tests — all race-enabled — then a live
# dbbench 4→5 reshard under a zipfian update mix with -verify, which
# fails the run on any lost/duplicated acked write or a cutover pause
# over budget.
reshard-stress:
	$(GO) test -race -short -timeout 10m -run 'ReshardTorture' ./internal/torture
	$(GO) test -race -timeout 5m ./internal/reshard ./internal/keyspace
	$(GO) test -race -timeout 10m -run 'Reshard|MigrateMatchesReshard' ./internal/core ./internal/server
	$(GO) test -race -timeout 5m -run 'FacadeElastic' .
	$(GO) run ./cmd/dbbench -p2 -workers 4 -elastic -num 60000 -threads 4 \
		-benchmarks fillrandom,updatezipfian -reshard_at 30000 -reshard_to 5 -verify

# Run the RESP server in-memory on SERVE_ADDR (redis-cli compatible).
serve:
	$(GO) run ./cmd/p2kvs-server -addr $(SERVE_ADDR) -inmemory -workers 8

# Drive a running server with the pipelined load generator.
netbench:
	$(GO) run ./cmd/netbench -addr $(SERVE_ADDR) -conns 8 -pipeline 16 -num 20000

# End-to-end smoke: boot the server, run netbench against it, verify the
# pipelined ops reached the engines as batches, SIGTERM, assert clean drain.
serve-smoke:
	./scripts/serve-smoke.sh

ci: vet build test-race

clean:
	$(GO) clean ./...
