GO ?= go
FUZZTIME ?= 10s

.PHONY: build test test-race vet fuzz-short ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzzing pass over every fuzz target (Go runs one -fuzz target per
# invocation, so each gets its own line).
fuzz-short:
	$(GO) test -fuzz=FuzzDecodeEdit -fuzztime=$(FUZZTIME) ./internal/manifest
	$(GO) test -fuzz=FuzzReadAll -fuzztime=$(FUZZTIME) ./internal/wal
	$(GO) test -fuzz=FuzzIterParse -fuzztime=$(FUZZTIME) ./internal/block
	$(GO) test -fuzz=FuzzBuilderRoundTrip -fuzztime=$(FUZZTIME) ./internal/block
	$(GO) test -fuzz=FuzzDecodeBatchPayload -fuzztime=$(FUZZTIME) ./internal/lsm
	$(GO) test -fuzz=FuzzBatchPayloadRoundTrip -fuzztime=$(FUZZTIME) ./internal/lsm

ci: vet build test-race

clean:
	$(GO) clean ./...
