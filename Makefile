GO ?= go
FUZZTIME ?= 10s

.PHONY: build test test-race vet fuzz-short torture-short ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzzing pass over every fuzz target (Go runs one -fuzz target per
# invocation, so each gets its own line).
fuzz-short:
	$(GO) test -fuzz=FuzzDecodeEdit -fuzztime=$(FUZZTIME) ./internal/manifest
	$(GO) test -fuzz=FuzzReadAll -fuzztime=$(FUZZTIME) ./internal/wal
	$(GO) test -fuzz=FuzzIterParse -fuzztime=$(FUZZTIME) ./internal/block
	$(GO) test -fuzz=FuzzBuilderRoundTrip -fuzztime=$(FUZZTIME) ./internal/block
	$(GO) test -fuzz=FuzzDecodeBatchPayload -fuzztime=$(FUZZTIME) ./internal/lsm
	$(GO) test -fuzz=FuzzBatchPayloadRoundTrip -fuzztime=$(FUZZTIME) ./internal/lsm

# Short overload + torture pass: the fault-injection torture run (one
# seed, reduced ops under -short) plus the accessing layer's admission /
# deadline / drain lifecycle tests, all race-enabled and time-bounded.
torture-short:
	$(GO) test -race -short -timeout 5m -run 'Torture|Admit|Expired|Deadline|Drain|Close|Queue' ./internal/torture ./internal/core

ci: vet build test-race

clean:
	$(GO) clean ./...
