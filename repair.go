package p2kvs

import (
	"p2kvs/internal/block"
	"p2kvs/internal/checkpoint"
	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// Repair sourcing (Options.RepairFrom). A backup set written by Backup is
// also a repair source: its CHECKPOINT manifest records every file's size
// and CRC-32C, so a quarantined engine file whose name appears in the
// newest committed generation can be re-fetched and cross-checked without
// trusting the backup medium blindly. Engines re-verify the candidate
// end to end again before swapping it in (see lsm/btreekv corruption.go)
// — the manifest check here rejects a rotted backup early, the engine
// check rejects a manifest/content pair that is internally consistent but
// not a valid file.

// backupRepairSource implements kv.RepairSource for one worker against a
// Backup directory on the host filesystem.
type backupRepairSource struct {
	fs     vfs.FS
	dir    string
	worker int
}

var _ kv.RepairSource = (*backupRepairSource)(nil)

// Fetch implements kv.RepairSource. The manifest is reloaded on every call
// so repairs always draw from the newest committed backup generation —
// Backup may have run many times since the store opened.
func (r *backupRepairSource) Fetch(name string) ([]byte, bool) {
	m, err := checkpoint.Load(r.fs, r.dir)
	if err != nil {
		return nil, false
	}
	for _, f := range m.Files {
		if f.Worker != r.worker || f.Restore != name {
			continue
		}
		data, err := vfs.ReadFile(r.fs, r.dir+"/"+f.Path)
		if err != nil || int64(len(data)) != f.Size || block.Checksum(data) != f.CRC {
			return nil, false
		}
		return data, true
	}
	return nil, false
}

// repairSourceFor builds the per-worker repair source, nil when
// Options.RepairFrom is unset.
func repairSourceFor(opts Options, worker int) kv.RepairSource {
	if opts.RepairFrom == "" {
		return nil
	}
	return &backupRepairSource{fs: vfs.NewOS(), dir: opts.RepairFrom, worker: worker}
}
