#!/usr/bin/env bash
# End-to-end smoke for the network serving layer: boot p2kvs-server
# in-memory, drive it with netbench's pipelined load (paranoid -verify
# mode: every GET hit checked against the workload pattern), check that
# the pipelined SET/GET runs reached the engines through the batch entry
# points, run a SCRUB integrity pass over the wire, then SIGTERM the
# server and require a clean graceful drain.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${SERVE_SMOKE_ADDR:-127.0.0.1:16380}
BIN=$(mktemp -d)
LOG="$BIN/server.log"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/p2kvs-server" ./cmd/p2kvs-server
go build -o "$BIN/netbench" ./cmd/netbench

"$BIN/p2kvs-server" -addr "$ADDR" -inmemory -workers 8 -cmd_timeout 5s \
    -checkpoint_dir "$BIN/backup" >"$LOG" 2>&1 &
SRV_PID=$!

for i in $(seq 1 50); do
    if "$BIN/netbench" -addr "$ADDR" -benchmarks set -conns 1 -pipeline 1 -num 1 >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
        echo "serve-smoke: server died during startup" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

OUT=$("$BIN/netbench" -addr "$ADDR" -benchmarks set,get -conns 4 -pipeline 16 -num 8000 -bgsave -verify)
echo "$OUT"

# Paranoid mode must have actually verified hits and seen zero silent
# mismatches (netbench exits non-zero on a mismatch, but require the
# tally line so a silently disabled verifier can't pass).
echo "$OUT" | grep -q "silent mismatches" || {
    echo "serve-smoke: netbench -verify did not report its corruption tally" >&2
    exit 1
}

# BGSAVE must have been accepted and committed: the checkpoint counters
# from INFO prove a backup image landed in the checkpoint directory.
echo "$OUT" | grep -q "bgsave: Background saving started" || {
    echo "serve-smoke: BGSAVE was not accepted" >&2
    exit 1
}
for counter in store_checkpoints store_last_checkpoint_unix; do
    n=$(echo "$OUT" | grep -o "${counter}=[0-9]*" | head -1 | cut -d= -f2)
    if [ -z "${n:-}" ] || [ "$n" -le 0 ]; then
        echo "serve-smoke: expected $counter > 0 after BGSAVE (got '${n:-missing}')" >&2
        exit 1
    fi
done
for counter in store_checkpoint_barrier_ns store_checkpoint_files_linked \
               store_checkpoint_files_copied store_checkpoint_files_reused \
               store_checkpoint_bytes_copied; do
    n=$(echo "$OUT" | grep -o "${counter}=[0-9]*" | head -1 | cut -d= -f2)
    if [ -z "${n:-}" ]; then
        echo "serve-smoke: checkpoint counter $counter missing from server INFO" >&2
        exit 1
    fi
done
[ -f "$BIN/backup/CHECKPOINT" ] || {
    echo "serve-smoke: BGSAVE committed but no CHECKPOINT manifest on disk" >&2
    exit 1
}
echo "serve-smoke: BGSAVE committed: $(echo "$OUT" | grep -o 'store_checkpoint[a-z_]*=[0-9]*' | tr '\n' ' ')"

# The pipelined runs must have been coalesced into engine-level batches.
for counter in coalesced_set_ops coalesced_get_ops store_batch_write_ops store_multiget_ops; do
    n=$(echo "$OUT" | grep -o "${counter}=[0-9]*" | head -1 | cut -d= -f2)
    if [ -z "${n:-}" ] || [ "$n" -le 0 ]; then
        echo "serve-smoke: expected $counter > 0 (got '${n:-missing}')" >&2
        exit 1
    fi
done

# The compaction-scheduler counters must be present in INFO (values may
# legitimately be zero on a short in-memory run; only absence is a bug).
for counter in store_compactions store_subcompactions store_concurrent_compactions_hw \
               store_compaction_stall_us store_compaction_slowdown_us store_compaction_slowdowns; do
    n=$(echo "$OUT" | grep -o "${counter}=[0-9]*" | head -1 | cut -d= -f2)
    if [ -z "${n:-}" ]; then
        echo "serve-smoke: compaction counter $counter missing from server INFO" >&2
        exit 1
    fi
done
echo "serve-smoke: compaction counters surfaced: $(echo "$OUT" | grep -o 'store_[a-z_]*compaction[a-z_]*=[0-9]*' | tr '\n' ' ')"

# SCRUB over the wire: a raw RESP exchange through bash's /dev/tcp. The
# reply is a bulk-string report; a healthy store must answer with the
# scan counters and zero corruptions found.
scrub_reply() {
    local host=${ADDR%:*} port=${ADDR#*:} hdr
    exec 3<>"/dev/tcp/$host/$port"
    printf '*1\r\n$5\r\nSCRUB\r\n' >&3
    IFS= read -r hdr <&3
    hdr=${hdr%$'\r'}
    case "$hdr" in
    '$'*) dd bs=1 count=$(( ${hdr#\$} + 2 )) <&3 2>/dev/null ;;
    *)    printf '%s\n' "$hdr" ;;
    esac
    exec 3<&- 3>&-
}
SCRUB_OUT=$(scrub_reply)
echo "serve-smoke: SCRUB reply: $(echo "$SCRUB_OUT" | tr -d '\r' | tr '\n' ' ')"
for counter in scrub_files_scanned scrub_bytes_scanned scrub_corruptions_found; do
    echo "$SCRUB_OUT" | grep -q "${counter}:" || {
        echo "serve-smoke: SCRUB reply missing $counter" >&2
        exit 1
    }
done
echo "$SCRUB_OUT" | grep -q "scrub_corruptions_found:0" || {
    echo "serve-smoke: SCRUB found corruption on a healthy store" >&2
    exit 1
}

kill -TERM "$SRV_PID"
for i in $(seq 1 100); do
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SRV_PID" 2>/dev/null; then
    echo "serve-smoke: server did not exit within 10s of SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
fi
wait "$SRV_PID" && RC=0 || RC=$?
if [ "$RC" -ne 0 ]; then
    echo "serve-smoke: server exited with status $RC" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q "clean shutdown" "$LOG" || {
    echo "serve-smoke: no clean-shutdown log line" >&2
    cat "$LOG" >&2
    exit 1
}
echo "serve-smoke: OK (pipelines batched, SIGTERM drained cleanly)"
