#!/usr/bin/env bash
# End-to-end smoke for the network serving layer: boot p2kvs-server
# in-memory, drive it with netbench's pipelined load (paranoid -verify
# mode: every GET hit checked against the workload pattern), check that
# the pipelined SET/GET runs reached the engines through the batch entry
# points, run a SCRUB integrity pass over the wire, then SIGTERM the
# server and require a clean graceful drain.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${SERVE_SMOKE_ADDR:-127.0.0.1:16380}
BIN=$(mktemp -d)
LOG="$BIN/server.log"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/p2kvs-server" ./cmd/p2kvs-server
go build -o "$BIN/netbench" ./cmd/netbench

"$BIN/p2kvs-server" -addr "$ADDR" -inmemory -workers 8 -cmd_timeout 5s \
    -hot_cache -1 -checkpoint_dir "$BIN/backup" >"$LOG" 2>&1 &
SRV_PID=$!

for i in $(seq 1 50); do
    if "$BIN/netbench" -addr "$ADDR" -benchmarks set -conns 1 -pipeline 1 -num 1 >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
        echo "serve-smoke: server died during startup" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

OUT=$("$BIN/netbench" -addr "$ADDR" -benchmarks set,get -conns 4 -pipeline 16 -num 8000 -bgsave -verify)
echo "$OUT"

# Paranoid mode must have actually verified hits and seen zero silent
# mismatches (netbench exits non-zero on a mismatch, but require the
# tally line so a silently disabled verifier can't pass).
echo "$OUT" | grep -q "silent mismatches" || {
    echo "serve-smoke: netbench -verify did not report its corruption tally" >&2
    exit 1
}

# BGSAVE must have been accepted and committed: the checkpoint counters
# from INFO prove a backup image landed in the checkpoint directory.
echo "$OUT" | grep -q "bgsave: Background saving started" || {
    echo "serve-smoke: BGSAVE was not accepted" >&2
    exit 1
}
for counter in store_checkpoints store_last_checkpoint_unix; do
    n=$(echo "$OUT" | grep -o "${counter}=[0-9]*" | head -1 | cut -d= -f2)
    if [ -z "${n:-}" ] || [ "$n" -le 0 ]; then
        echo "serve-smoke: expected $counter > 0 after BGSAVE (got '${n:-missing}')" >&2
        exit 1
    fi
done
for counter in store_checkpoint_barrier_ns store_checkpoint_files_linked \
               store_checkpoint_files_copied store_checkpoint_files_reused \
               store_checkpoint_bytes_copied; do
    n=$(echo "$OUT" | grep -o "${counter}=[0-9]*" | head -1 | cut -d= -f2)
    if [ -z "${n:-}" ]; then
        echo "serve-smoke: checkpoint counter $counter missing from server INFO" >&2
        exit 1
    fi
done
[ -f "$BIN/backup/CHECKPOINT" ] || {
    echo "serve-smoke: BGSAVE committed but no CHECKPOINT manifest on disk" >&2
    exit 1
}
echo "serve-smoke: BGSAVE committed: $(echo "$OUT" | grep -o 'store_checkpoint[a-z_]*=[0-9]*' | tr '\n' ' ')"

# The pipelined runs must have been coalesced into engine-level batches.
for counter in coalesced_set_ops coalesced_get_ops store_batch_write_ops store_multiget_ops; do
    n=$(echo "$OUT" | grep -o "${counter}=[0-9]*" | head -1 | cut -d= -f2)
    if [ -z "${n:-}" ] || [ "$n" -le 0 ]; then
        echo "serve-smoke: expected $counter > 0 (got '${n:-missing}')" >&2
        exit 1
    fi
done

# Hot-key cache: a skewed GET run against the cache-enabled server must
# actually serve hits (zipfian re-reads the hot set), and the cache_*
# counter group must surface through INFO.
CACHE_OUT=$("$BIN/netbench" -addr "$ADDR" -benchmarks get -conns 4 -pipeline 16 \
    -num 8000 -dist zipfian -verify)
echo "$CACHE_OUT" | grep -q "silent mismatches" || {
    echo "serve-smoke: zipfian netbench -verify did not report its corruption tally" >&2
    exit 1
}
HITS=$(echo "$CACHE_OUT" | grep -o "cache_hits=[0-9]*" | head -1 | cut -d= -f2)
if [ -z "${HITS:-}" ] || [ "$HITS" -le 0 ]; then
    echo "serve-smoke: expected cache_hits > 0 under zipfian load (got '${HITS:-missing}')" >&2
    exit 1
fi
for counter in cache_misses cache_fills cache_invalidations cache_bytes cache_entries; do
    n=$(echo "$CACHE_OUT" | grep -o "${counter}=[0-9]*" | head -1 | cut -d= -f2)
    if [ -z "${n:-}" ]; then
        echo "serve-smoke: cache counter $counter missing from server INFO" >&2
        exit 1
    fi
done
echo "serve-smoke: hot cache served hits under zipfian load: $(echo "$CACHE_OUT" | grep -o 'cache_[a-z_]*=[0-9]*' | tr '\n' ' ')"

# The compaction-scheduler counters must be present in INFO (values may
# legitimately be zero on a short in-memory run; only absence is a bug).
for counter in store_compactions store_subcompactions store_concurrent_compactions_hw \
               store_compaction_stall_us store_compaction_slowdown_us store_compaction_slowdowns; do
    n=$(echo "$OUT" | grep -o "${counter}=[0-9]*" | head -1 | cut -d= -f2)
    if [ -z "${n:-}" ]; then
        echo "serve-smoke: compaction counter $counter missing from server INFO" >&2
        exit 1
    fi
done
echo "serve-smoke: compaction counters surfaced: $(echo "$OUT" | grep -o 'store_[a-z_]*compaction[a-z_]*=[0-9]*' | tr '\n' ' ')"

# SCRUB over the wire: a raw RESP exchange through bash's /dev/tcp. The
# reply is a bulk-string report; a healthy store must answer with the
# scan counters and zero corruptions found.
scrub_reply() {
    local host=${ADDR%:*} port=${ADDR#*:} hdr
    exec 3<>"/dev/tcp/$host/$port"
    printf '*1\r\n$5\r\nSCRUB\r\n' >&3
    IFS= read -r hdr <&3
    hdr=${hdr%$'\r'}
    case "$hdr" in
    '$'*) dd bs=1 count=$(( ${hdr#\$} + 2 )) <&3 2>/dev/null ;;
    *)    printf '%s\n' "$hdr" ;;
    esac
    exec 3<&- 3>&-
}
SCRUB_OUT=$(scrub_reply)
echo "serve-smoke: SCRUB reply: $(echo "$SCRUB_OUT" | tr -d '\r' | tr '\n' ' ')"
for counter in scrub_files_scanned scrub_bytes_scanned scrub_corruptions_found; do
    echo "$SCRUB_OUT" | grep -q "${counter}:" || {
        echo "serve-smoke: SCRUB reply missing $counter" >&2
        exit 1
    }
done
echo "$SCRUB_OUT" | grep -q "scrub_corruptions_found:0" || {
    echo "serve-smoke: SCRUB found corruption on a healthy store" >&2
    exit 1
}

# --- 2-node replication smoke: full sync, replica reads, partial resync ---
# Boot a disk-backed primary with replication enabled and a replica
# bootstrapping from it (full sync), check the replica serves the
# primary's data, then restart the replica under fresh primary writes
# and require the reconnect to be a *partial* resync (cursor within the
# backlog window) proven by the fresh process's INFO counters.
PADDR=${SERVE_SMOKE_PRIMARY:-127.0.0.1:16381}
RADDR=${SERVE_SMOKE_REPLICA:-127.0.0.1:16382}

resp_cmd() { # resp_cmd host:port CMD [ARG...] -> reply payload on stdout
    local hp=$1 host port req='' a hdr
    shift
    host=${hp%:*} port=${hp#*:}
    req="*$#\r\n"
    for a in "$@"; do req+="\$${#a}\r\n${a}\r\n"; done
    exec 4<>"/dev/tcp/$host/$port"
    printf '%b' "$req" >&4
    IFS= read -r hdr <&4
    hdr=${hdr%$'\r'}
    case "$hdr" in
    '$-1') ;;
    '$'*) dd bs=1 count=$(( ${hdr#\$} + 2 )) <&4 2>/dev/null ;;
    *)    printf '%s\n' "$hdr" ;;
    esac
    exec 4<&- 4>&-
}

info_field() { # info_field host:port field -> value (empty if missing)
    resp_cmd "$1" INFO 2>/dev/null | tr -d '\r' | grep "^$2:" | head -1 | cut -d: -f2
}

await_tcp() { # await_tcp host:port pid what
    for i in $(seq 1 100); do
        if resp_cmd "$1" PING 2>/dev/null | grep -q PONG; then return 0; fi
        if ! kill -0 "$2" 2>/dev/null; then
            echo "serve-smoke: $3 died during startup" >&2
            cat "$BIN/$3.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "serve-smoke: $3 not reachable at $1" >&2
    exit 1
}

await_sync() { # await_sync replica-addr
    for i in $(seq 1 300); do
        if [ "$(info_field "$1" master_link_status)" = "up" ] &&
           [ "$(info_field "$1" replica_lag_gsn)" = "0" ]; then return 0; fi
        sleep 0.1
    done
    echo "serve-smoke: replica never converged (link=$(info_field "$1" master_link_status) lag=$(info_field "$1" replica_lag_gsn))" >&2
    cat "$BIN/replica.log" >&2
    exit 1
}

"$BIN/p2kvs-server" -addr "$PADDR" -dir "$BIN/primary" -workers 4 \
    -wal_sync never -repl_backlog -1 >"$BIN/primary.log" 2>&1 &
PRI_PID=$!
trap 'kill "$SRV_PID" "$PRI_PID" "${REP_PID:-}" 2>/dev/null || true; rm -rf "$BIN"' EXIT
await_tcp "$PADDR" "$PRI_PID" primary

"$BIN/netbench" -addr "$PADDR" -benchmarks set -conns 4 -pipeline 16 -num 4000 >/dev/null
resp_cmd "$PADDR" SET smoke:epoch one >/dev/null

"$BIN/p2kvs-server" -addr "$RADDR" -dir "$BIN/replica" -workers 4 \
    -wal_sync never -replicaof "$PADDR" >"$BIN/replica.log" 2>&1 &
REP_PID=$!
await_tcp "$RADDR" "$REP_PID" replica
await_sync "$RADDR"

[ "$(info_field "$RADDR" role)" = "replica" ] || {
    echo "serve-smoke: replica INFO does not report role:replica" >&2
    exit 1
}
FULLS=$(info_field "$RADDR" replica_full_syncs)
[ "${FULLS:-0}" -ge 1 ] || {
    echo "serve-smoke: replica bootstrap was not a full sync (replica_full_syncs=$FULLS)" >&2
    exit 1
}
GOT=$(resp_cmd "$RADDR" GET smoke:epoch | tr -d '\r\n')
[ "$GOT" = "one" ] || {
    echo "serve-smoke: replica does not serve replicated key (got '$GOT')" >&2
    exit 1
}
# Paranoid read check: re-run the GET workload against the replica with
# value verification on — every hit must match the primary's pattern.
"$BIN/netbench" -addr "$RADDR" -benchmarks get -conns 4 -pipeline 16 -num 4000 -verify >/dev/null
echo "serve-smoke: replica full sync OK (replica_full_syncs=$FULLS, verified reads)"

# Restart the replica; write to the primary while it is down (well
# inside the backlog window) so the reconnect must partial-resync.
kill -TERM "$REP_PID"
for i in $(seq 1 100); do kill -0 "$REP_PID" 2>/dev/null || break; sleep 0.1; done
kill -0 "$REP_PID" 2>/dev/null && { echo "serve-smoke: replica did not drain" >&2; exit 1; }
wait "$REP_PID" || { echo "serve-smoke: replica exited uncleanly" >&2; cat "$BIN/replica.log" >&2; exit 1; }

resp_cmd "$PADDR" SET smoke:epoch two >/dev/null
"$BIN/netbench" -addr "$PADDR" -benchmarks set -conns 2 -pipeline 8 -num 500 >/dev/null

"$BIN/p2kvs-server" -addr "$RADDR" -dir "$BIN/replica" -workers 4 \
    -wal_sync never -replicaof "$PADDR" >"$BIN/replica.log" 2>&1 &
REP_PID=$!
await_tcp "$RADDR" "$REP_PID" replica
await_sync "$RADDR"

PARTIALS=$(info_field "$RADDR" replica_partial_syncs)
FULLS2=$(info_field "$RADDR" replica_full_syncs)
if [ "${PARTIALS:-0}" -lt 1 ] || [ "${FULLS2:-0}" -ne 0 ]; then
    echo "serve-smoke: replica restart was not a partial resync (partial=$PARTIALS full=$FULLS2)" >&2
    exit 1
fi
GOT=$(resp_cmd "$RADDR" GET smoke:epoch | tr -d '\r\n')
[ "$GOT" = "two" ] || {
    echo "serve-smoke: replica missing post-restart write (got '$GOT')" >&2
    exit 1
}
echo "serve-smoke: replica partial resync OK (replica_partial_syncs=$PARTIALS, replica_full_syncs=$FULLS2)"

for pid in "$REP_PID" "$PRI_PID"; do
    kill -TERM "$pid" 2>/dev/null || true
    for i in $(seq 1 100); do kill -0 "$pid" 2>/dev/null || break; sleep 0.1; done
done

# --- Online reshard smoke: live RESHARD on an elastic server ---
# Boot an elastic (consistent-hash ring) server, load it, RESHARD 3 -> 4
# while the data is in place, poll RESHARD STATUS until the background
# run commits, and require INFO to report the new worker count plus a
# clean completed reshard with real moved keys. The main smoke server
# was started without -elastic, so RESHARD there must refuse loudly.
EADDR=${SERVE_SMOKE_ELASTIC:-127.0.0.1:16383}

RESHARD_DENY=$(resp_cmd "$ADDR" RESHARD 16 | tr -d '\r')
echo "$RESHARD_DENY" | grep -q "unsupported" || {
    echo "serve-smoke: RESHARD on the non-elastic server should be refused (got '$RESHARD_DENY')" >&2
    exit 1
}

"$BIN/p2kvs-server" -addr "$EADDR" -dir "$BIN/elastic" -workers 3 \
    -elastic -wal_sync never >"$BIN/elastic.log" 2>&1 &
ELA_PID=$!
trap 'kill "$SRV_PID" "$PRI_PID" "${REP_PID:-}" "${ELA_PID:-}" 2>/dev/null || true; rm -rf "$BIN"' EXIT
await_tcp "$EADDR" "$ELA_PID" elastic

"$BIN/netbench" -addr "$EADDR" -benchmarks set -conns 4 -pipeline 16 -num 4000 >/dev/null
resp_cmd "$EADDR" SET smoke:reshard before >/dev/null
[ "$(info_field "$EADDR" workers)" = "3" ] || {
    echo "serve-smoke: elastic server did not start at 3 workers" >&2
    exit 1
}

RESHARD_ACK=$(resp_cmd "$EADDR" RESHARD 4 | tr -d '\r')
echo "$RESHARD_ACK" | grep -q "started" || {
    echo "serve-smoke: RESHARD 4 was not accepted (got '$RESHARD_ACK')" >&2
    exit 1
}
for i in $(seq 1 300); do
    STATUS=$(resp_cmd "$EADDR" RESHARD STATUS | tr -d '\r')
    echo "$STATUS" | grep -q "reshard_aborted:1" && {
        echo "serve-smoke: reshard aborted:" >&2
        echo "$STATUS" >&2
        cat "$BIN/elastic.log" >&2
        exit 1
    }
    if echo "$STATUS" | grep -q "reshard_completed:1" &&
       echo "$STATUS" | grep -q "reshard_in_progress:0"; then break; fi
    sleep 0.1
done
echo "$STATUS" | grep -q "reshard_completed:1" || {
    echo "serve-smoke: reshard never completed:" >&2
    echo "$STATUS" >&2
    exit 1
}

[ "$(info_field "$EADDR" workers)" = "4" ] || {
    echo "serve-smoke: INFO does not report 4 workers after RESHARD (got '$(info_field "$EADDR" workers)')" >&2
    exit 1
}
for field in reshard_state:done reshard_epoch:1 reshard_from:3 reshard_to:4; do
    echo "$STATUS" | grep -q "$field" || {
        echo "serve-smoke: RESHARD STATUS missing $field:" >&2
        echo "$STATUS" >&2
        exit 1
    }
done
MOVED=$(echo "$STATUS" | grep "^reshard_moved_keys:" | cut -d: -f2)
[ "${MOVED:-0}" -gt 0 ] || {
    echo "serve-smoke: reshard committed but moved no keys (reshard_moved_keys=$MOVED)" >&2
    exit 1
}
GOT=$(resp_cmd "$EADDR" GET smoke:reshard | tr -d '\r\n')
[ "$GOT" = "before" ] || {
    echo "serve-smoke: pre-reshard key lost across the cutover (got '$GOT')" >&2
    exit 1
}
# Paranoid read check: every pre-reshard netbench key must still read
# back its pattern value through the new ring.
"$BIN/netbench" -addr "$EADDR" -benchmarks get -conns 4 -pipeline 16 -num 4000 -verify >/dev/null
echo "serve-smoke: online reshard 3->4 OK (moved_keys=$MOVED, verified reads)"

kill -TERM "$ELA_PID" 2>/dev/null || true
for i in $(seq 1 100); do kill -0 "$ELA_PID" 2>/dev/null || break; sleep 0.1; done

kill -TERM "$SRV_PID"
for i in $(seq 1 100); do
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SRV_PID" 2>/dev/null; then
    echo "serve-smoke: server did not exit within 10s of SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
fi
wait "$SRV_PID" && RC=0 || RC=$?
if [ "$RC" -ne 0 ]; then
    echo "serve-smoke: server exited with status $RC" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q "clean shutdown" "$LOG" || {
    echo "serve-smoke: no clean-shutdown log line" >&2
    cat "$LOG" >&2
    exit 1
}
echo "serve-smoke: OK (pipelines batched, SIGTERM drained cleanly)"
