#!/usr/bin/env bash
# Crash-recovery stress: build the real server binary, then run the
# crashkv kill/restart torture in every durability mode. Commit mode is
# the load-bearing run (zero acked-write loss across $CYCLES SIGKILLs);
# the async modes prove the store reopens uncorrupted when durability is
# relaxed.
set -euo pipefail
cd "$(dirname "$0")/.."

CYCLES="${CYCLES:-25}"
ASYNC_CYCLES="${ASYNC_CYCLES:-5}"
GO="${GO:-go}"

mkdir -p bin
$GO build -o bin/p2kvs-server ./cmd/p2kvs-server
$GO build -o bin/crashkv ./cmd/crashkv

echo "== crash-stress: commit mode, $CYCLES cycles =="
./bin/crashkv -server bin/p2kvs-server -cycles "$CYCLES" -mode commit

echo "== crash-stress: interval mode, $ASYNC_CYCLES cycles =="
./bin/crashkv -server bin/p2kvs-server -cycles "$ASYNC_CYCLES" -mode interval

echo "== crash-stress: never mode, $ASYNC_CYCLES cycles =="
./bin/crashkv -server bin/p2kvs-server -cycles "$ASYNC_CYCLES" -mode never

echo "== crash-stress: commit mode, wiredtiger engine, $ASYNC_CYCLES cycles =="
./bin/crashkv -server bin/p2kvs-server -cycles "$ASYNC_CYCLES" -mode commit -engine wiredtiger

echo "crash-stress: all modes passed"
