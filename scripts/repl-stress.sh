#!/usr/bin/env bash
# Replication stress: race-enabled runs of the log-shipping protocol
# tests (frame codec, backlog retention/pinning, full/partial sync,
# replica reads, cluster routing), then the crashkv -replica torture:
# a real primary/replica pair under pipelined load with SIGKILLs of
# either side mid-stream. Commit mode is the load-bearing run (zero
# acked-write loss on the primary AND byte-identical replica
# convergence, with partial resyncs proven via INFO counters and the
# out-of-window full-sync fallback exercised at the end).
set -euo pipefail
cd "$(dirname "$0")/.."

CYCLES="${CYCLES:-9}"
ASYNC_CYCLES="${ASYNC_CYCLES:-3}"
GO="${GO:-go}"

echo "== repl-stress: protocol + backlog unit/integration tests (race) =="
$GO test -race -timeout 5m ./internal/repl ./internal/cluster
$GO test -race -timeout 10m \
    -run 'Repl|Replica|Cluster|Backlog|Psync' ./internal/server

mkdir -p bin
$GO build -o bin/p2kvs-server ./cmd/p2kvs-server
$GO build -o bin/crashkv ./cmd/crashkv

echo "== repl-stress: replica torture, commit mode, $CYCLES cycles =="
./bin/crashkv -server bin/p2kvs-server -cycles "$CYCLES" -mode commit -replica

echo "== repl-stress: replica torture, interval mode, $ASYNC_CYCLES cycles =="
./bin/crashkv -server bin/p2kvs-server -cycles "$ASYNC_CYCLES" -mode interval -replica

echo "== repl-stress: replica torture, never mode, $ASYNC_CYCLES cycles =="
./bin/crashkv -server bin/p2kvs-server -cycles "$ASYNC_CYCLES" -mode never -replica

echo "repl-stress: all modes passed"
