package p2kvs

import (
	"fmt"

	"p2kvs/internal/checkpoint"
	"p2kvs/internal/vfs"
)

// Online backup and restore. Backup takes a GSN-barrier checkpoint of a
// running store into a backup directory on the host filesystem; repeated
// backups into the same directory are incremental (unchanged immutable
// files are hard-linked or reused, never re-copied). Restore verifies
// every file of the image against the CHECKPOINT manifest's checksums and
// opens a fresh store from it.

// BackupInfo summarizes one committed checkpoint.
type BackupInfo struct {
	// Seq numbers checkpoints within a backup set, starting at 1.
	Seq uint64
	// Workers is the store's worker count at checkpoint time.
	Workers int
	// Engine is the engine kind the image was taken with.
	Engine string
	// GSN is the store-wide transaction watermark the barrier captured.
	GSN uint64
	// Files is the number of files the image references.
	Files int
	// BarrierNs is how long the checkpoint paused the workers.
	BarrierNs int64
	// TakenUnixNs is when the barrier was taken.
	TakenUnixNs int64
}

// Backup takes an online checkpoint of store into dir on the host
// filesystem. The store stays fully available; writers pause only for the
// barrier (reported in BackupInfo.BarrierNs). A dir holding a previous
// backup is updated incrementally, and that previous backup remains
// restorable until the new one commits.
func Backup(store *Store, dir string) (BackupInfo, error) {
	m, err := store.Checkpoint(vfs.NewOS(), dir)
	if err != nil {
		return BackupInfo{}, err
	}
	return BackupInfo{
		Seq:         m.Seq,
		Workers:     m.Workers,
		Engine:      m.Engine,
		GSN:         m.GSN,
		Files:       len(m.Files),
		BarrierNs:   m.BarrierNs,
		TakenUnixNs: m.TakenUnixNs,
	}, nil
}

// Restore materializes the backup set at backupDir (host filesystem) into
// opts.Dir and opens a store from it. Every file is verified against the
// manifest's size and CRC before the store opens; a damaged image fails
// without leaving a store that silently misses data. opts.Workers and
// opts.Engine may be left zero/empty to adopt the image's shape; when set
// they must be compatible with it (same worker count, same engine family).
func Restore(backupDir string, opts Options) (*Store, error) {
	src := vfs.NewOS()
	m, err := checkpoint.Load(src, backupDir)
	if err != nil {
		return nil, err
	}
	if opts.Workers == 0 {
		opts.Workers = m.Workers
	}
	if opts.Workers != m.Workers {
		return nil, fmt.Errorf("p2kvs: backup was taken with %d workers, cannot restore into %d", m.Workers, opts.Workers)
	}
	if opts.Engine == "" && m.Engine != "unspecified" {
		opts.Engine = EngineKind(m.Engine)
	}
	opts, fs, err := buildFS(opts)
	if err != nil {
		return nil, err
	}
	if want, got := engineFamily(EngineKind(m.Engine)), engineFamily(opts.Engine); want != got {
		return nil, fmt.Errorf("p2kvs: backup holds a %s-family image, cannot open as %s-family engine %q", want, got, opts.Engine)
	}
	switch m.Partitioner {
	case "", "hash":
	case "consistent":
		// An elastic store's image: reopen it elastic so keys route by
		// the same consistent-hash ring they were placed with.
		opts.Elastic = true
	default:
		return nil, fmt.Errorf("p2kvs: backup was taken with partitioner %q; this build cannot restore it", m.Partitioner)
	}
	if fs.Exists(fmt.Sprintf("%s/inst-%02d", opts.Dir, 0)) {
		return nil, fmt.Errorf("p2kvs: %s already holds a store; restore needs an empty destination", opts.Dir)
	}
	place := func(worker int, rel string) string {
		if worker < 0 {
			return opts.Dir + "/txn/" + rel
		}
		return fmt.Sprintf("%s/inst-%02d/%s", opts.Dir, worker, rel)
	}
	if _, err := checkpoint.Restore(src, backupDir, fs, place); err != nil {
		return nil, err
	}
	return openWithFS(opts, fs)
}

// ErrBackupCorrupt matches every error Restore reports for a damaged
// backup set (manifest corruption or file checksum mismatch).
var ErrBackupCorrupt = checkpoint.ErrCorrupt

// ErrBackupChecksum matches Restore failures where a file's content does
// not match the checksum recorded in the manifest.
var ErrBackupChecksum = checkpoint.ErrChecksumMismatch

// ErrNoBackup matches Restore on a directory holding no committed backup.
var ErrNoBackup = checkpoint.ErrNoManifest

// engineFamily groups engine kinds whose on-disk images are mutually
// restorable: the three LSM presets share one format.
func engineFamily(k EngineKind) string {
	switch k {
	case EngineWiredTiger:
		return "btree"
	case EngineKVell:
		return "kvell"
	default:
		return "lsm"
	}
}
