package p2kvs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestFacadeAllEngines(t *testing.T) {
	for _, engine := range []EngineKind{EngineRocksDB, EngineLevelDB, EnginePebblesDB, EngineWiredTiger, EngineKVell} {
		t.Run(string(engine), func(t *testing.T) {
			s, err := Open(Options{Dir: "db", Workers: 2, Engine: engine, InMemory: true})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < 100; i++ {
				k := []byte(fmt.Sprintf("key-%03d", i))
				if err := s.Put(k, k); err != nil {
					t.Fatal(err)
				}
			}
			v, err := s.Get([]byte("key-042"))
			if err != nil || string(v) != "key-042" {
				t.Fatalf("Get = %q %v", v, err)
			}
			if _, err := s.Get([]byte("missing")); err != ErrNotFound {
				t.Fatalf("miss err = %v", err)
			}
			pairs, err := s.Scan([]byte("key-050"), 5)
			if err != nil || len(pairs) != 5 || string(pairs[0].Key) != "key-050" {
				t.Fatalf("scan = %v, %v", pairs, err)
			}
		})
	}
}

func TestFacadeBatchAndRange(t *testing.T) {
	s, err := Open(Options{Dir: "db", Workers: 4, InMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var b Batch
	for i := 0; i < 50; i++ {
		b.Put([]byte(fmt.Sprintf("b-%03d", i)), []byte("v"))
	}
	if err := s.Write(&b); err != nil {
		t.Fatal(err)
	}
	pairs, err := s.Range([]byte("b-010"), []byte("b-019"))
	if err != nil || len(pairs) != 10 {
		t.Fatalf("range = %d pairs, %v", len(pairs), err)
	}
}

func TestFacadeSimulatedDevice(t *testing.T) {
	s, err := Open(Options{
		Dir: "db", Workers: 2, InMemory: true,
		SimulateDevice: "nvme", DeviceScale: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("Get = %q %v", v, err)
	}
}

func TestFacadeLifecycle(t *testing.T) {
	s, err := Open(Options{
		Dir: "db", Workers: 2, InMemory: true,
		QueueDepth:   8,
		Admission:    AdmitReject,
		DrainTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	if err := s.PutCtx(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.GetCtx(ctx, []byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("GetCtx = %q %v", v, err)
	}
	if _, err := s.GetCtx(ctx, []byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss err = %v", err)
	}

	dead, cancel := context.WithCancel(ctx)
	cancel()
	if err := s.PutCtx(dead, []byte("late"), []byte("v")); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired ctx err = %v, want ErrDeadlineExceeded", err)
	}
	if _, err := s.GetCtx(dead, []byte("k")); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired ctx err = %v, want ErrDeadlineExceeded", err)
	}
	if v, err := s.Get([]byte("late")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired Put must not apply; Get = %q %v", v, err)
	}

	found := false
	for _, ws := range s.Stats() {
		if ws.Expired > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("Stats() shows no Expired counts after expired-ctx requests")
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("missing dir must fail")
	}
	if _, err := Open(Options{Dir: "x", InMemory: true, Engine: "bogus"}); err == nil {
		t.Fatal("bogus engine must fail")
	}
	if _, err := Open(Options{Dir: "x", InMemory: true, SimulateDevice: "floppy"}); err == nil {
		t.Fatal("bogus device must fail")
	}
}

func TestFacadeElastic(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Workers: 2, Elastic: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Reshard(context.Background(), 3); err != nil {
		t.Fatalf("Reshard: %v", err)
	}
	if got := s.Workers(); got != 3 {
		t.Fatalf("Workers() = %d", got)
	}
	rs := s.ReshardStats()
	if rs.Completed != 1 || rs.State != "done" {
		t.Fatalf("reshard stats: %+v", rs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with the stale pre-reshard worker count: the TOPOLOGY file
	// wins and the store comes back at 3 workers with all data.
	s2, err := Open(Options{Dir: dir, Workers: 2, Elastic: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Workers(); got != 3 {
		t.Fatalf("Workers() after reopen = %d, want 3 (from TOPOLOGY)", got)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%03d", i)
		if v, err := s2.Get([]byte(k)); err != nil || string(v) != k {
			t.Fatalf("Get(%s) after reopen = %q %v", k, v, err)
		}
	}
}

func TestFacadeElasticValidation(t *testing.T) {
	if _, err := Open(Options{Dir: "x", InMemory: true, Elastic: true, ReplBacklogBytes: 1 << 20}); err == nil {
		t.Fatal("Elastic+ReplBacklogBytes must fail")
	}
	s, err := Open(Options{Dir: "x", InMemory: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Reshard(context.Background(), 3); !errors.Is(err, ErrReshardUnsupported) {
		t.Fatalf("non-elastic Reshard err = %v", err)
	}
}
