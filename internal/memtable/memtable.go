// Package memtable implements the in-memory write buffer of the LSM
// engine (Figure 2's MemTable). Entries are stored in a skiplist —
// exclusive (LevelDB-style) or concurrent (RocksDB's concurrent memtable)
// per the engine's configuration — keyed by internal keys so multiple
// versions of a user key coexist until flush.
//
// Entry encoding inside the skiplist: varint(len(ikey)) | ikey |
// varint(len(value)) | value.
package memtable

import (
	"encoding/binary"
	"sync/atomic"

	"p2kvs/internal/arena"
	"p2kvs/internal/ikey"
	"p2kvs/internal/skiplist"
)

// MemTable buffers writes until it reaches its budget and is flushed.
type MemTable struct {
	list  skiplist.List
	arena *arena.Arena
	size  atomic.Int64 // approximate payload bytes
}

// New creates a memtable. concurrent selects the CAS skiplist.
func New(concurrent bool) *MemTable {
	ar := arena.New()
	var list skiplist.List
	if concurrent {
		list = skiplist.NewConcurrent(entryCompare, ar)
	} else {
		list = skiplist.NewBasic(entryCompare, ar)
	}
	return &MemTable{list: list, arena: ar}
}

// entryCompare orders encoded entries by their internal keys.
func entryCompare(a, b []byte) int {
	return ikey.Compare(entryKey(a), entryKey(b))
}

func entryKey(e []byte) []byte {
	klen, n := binary.Uvarint(e)
	return e[n : n+int(klen)]
}

func entryValue(e []byte) []byte {
	klen, n := binary.Uvarint(e)
	rest := e[n+int(klen):]
	vlen, m := binary.Uvarint(rest)
	return rest[m : m+int(vlen)]
}

func encodeEntry(dst []byte, ik, value []byte) []byte {
	var tmp [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(tmp[:], uint64(len(ik)))
	dst = append(dst, tmp[:n]...)
	dst = append(dst, ik...)
	n = binary.PutUvarint(tmp[:], uint64(len(value)))
	dst = append(dst, tmp[:n]...)
	return append(dst, value...)
}

// Add inserts a version of ukey. Concurrency rules follow the underlying
// skiplist: the concurrent flavour accepts parallel Add calls, the basic
// flavour requires the caller (the engine's write path) to serialize.
func (m *MemTable) Add(seq uint64, kind ikey.Kind, ukey, value []byte) {
	ik := ikey.Make(ukey, seq, kind)
	entry := encodeEntry(make([]byte, 0, len(ik)+len(value)+8), ik, value)
	m.list.Insert(entry)
	m.size.Add(int64(len(entry)) + 32) // payload + node overhead estimate
}

// Get returns the newest version of ukey visible at snapshot seq.
func (m *MemTable) Get(ukey []byte, seq uint64) (value []byte, found, deleted bool) {
	seek := encodeEntry(nil, ikey.SeekKey(ukey, seq), nil)
	e := m.list.FindGreaterOrEqual(seek)
	if e == nil {
		return nil, false, false
	}
	ik := entryKey(e)
	gotUkey, _, kind, err := ikey.Decode(ik)
	if err != nil || string(gotUkey) != string(ukey) {
		return nil, false, false
	}
	if kind == ikey.KindDelete {
		return nil, true, true
	}
	return entryValue(e), true, false
}

// ApproximateSize reports buffered bytes for flush decisions.
func (m *MemTable) ApproximateSize() int64 { return m.size.Load() }

// ArenaSize reports reserved arena memory (Table 2 accounting).
func (m *MemTable) ArenaSize() int64 { return m.arena.Size() }

// Len reports the number of buffered versions.
func (m *MemTable) Len() int { return m.list.Len() }

// Empty reports whether no entries are buffered.
func (m *MemTable) Empty() bool { return m.list.Len() == 0 }

// Iter walks the memtable's internal keys in ascending ikey order.
type Iter struct {
	it skiplist.Iterator
}

// NewIterator returns an iterator over (internal key, value) entries.
func (m *MemTable) NewIterator() *Iter { return &Iter{it: m.list.Iterator()} }

// SeekToFirst positions at the first entry.
func (it *Iter) SeekToFirst() { it.it.SeekToFirst() }

// Seek positions at the first entry with internal key >= target.
func (it *Iter) Seek(target []byte) {
	it.it.Seek(encodeEntry(nil, target, nil))
}

// Next advances.
func (it *Iter) Next() { it.it.Next() }

// Valid reports whether positioned at an entry.
func (it *Iter) Valid() bool { return it.it.Valid() }

// Key returns the current internal key.
func (it *Iter) Key() []byte { return entryKey(it.it.Entry()) }

// Value returns the current value.
func (it *Iter) Value() []byte { return entryValue(it.it.Entry()) }
