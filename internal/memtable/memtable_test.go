package memtable

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"p2kvs/internal/ikey"
)

func both() map[string]bool {
	return map[string]bool{"concurrent": true, "basic": false}
}

func TestAddGet(t *testing.T) {
	for name, conc := range both() {
		t.Run(name, func(t *testing.T) {
			m := New(conc)
			m.Add(1, ikey.KindSet, []byte("k1"), []byte("v1"))
			m.Add(2, ikey.KindSet, []byte("k2"), []byte("v2"))

			v, found, deleted := m.Get([]byte("k1"), ikey.MaxSeq)
			if !found || deleted || string(v) != "v1" {
				t.Fatalf("Get(k1) = %q %v %v", v, found, deleted)
			}
			if _, found, _ := m.Get([]byte("nope"), ikey.MaxSeq); found {
				t.Fatal("found absent key")
			}
			if m.Len() != 2 || m.Empty() {
				t.Fatalf("len=%d", m.Len())
			}
		})
	}
}

func TestVersionsAndSnapshots(t *testing.T) {
	for name, conc := range both() {
		t.Run(name, func(t *testing.T) {
			m := New(conc)
			m.Add(1, ikey.KindSet, []byte("k"), []byte("old"))
			m.Add(5, ikey.KindSet, []byte("k"), []byte("new"))
			m.Add(9, ikey.KindDelete, []byte("k"), nil)

			// Latest: tombstone.
			_, found, deleted := m.Get([]byte("k"), ikey.MaxSeq)
			if !found || !deleted {
				t.Fatalf("latest = found=%v deleted=%v", found, deleted)
			}
			// Snapshot at 5: sees "new".
			v, found, deleted := m.Get([]byte("k"), 5)
			if !found || deleted || string(v) != "new" {
				t.Fatalf("snap5 = %q %v %v", v, found, deleted)
			}
			// Snapshot at 1: sees "old".
			v, found, deleted = m.Get([]byte("k"), 1)
			if !found || deleted || string(v) != "old" {
				t.Fatalf("snap1 = %q %v %v", v, found, deleted)
			}
		})
	}
}

func TestKeyPrefixNoFalseMatch(t *testing.T) {
	// "k" must not match "k2" even though it's a prefix and sorts nearby.
	for name, conc := range both() {
		t.Run(name, func(t *testing.T) {
			m := New(conc)
			m.Add(1, ikey.KindSet, []byte("k2"), []byte("x"))
			if _, found, _ := m.Get([]byte("k"), ikey.MaxSeq); found {
				t.Fatal("prefix matched wrong key")
			}
		})
	}
}

func TestIteratorOrderAndValues(t *testing.T) {
	for name, conc := range both() {
		t.Run(name, func(t *testing.T) {
			m := New(conc)
			for i := 9; i >= 0; i-- {
				m.Add(uint64(10-i), ikey.KindSet, []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)))
			}
			it := m.NewIterator()
			i := 0
			for it.SeekToFirst(); it.Valid(); it.Next() {
				uk := ikey.UserKey(it.Key())
				if string(uk) != fmt.Sprintf("k%02d", i) {
					t.Fatalf("entry %d = %q", i, uk)
				}
				if string(it.Value()) != fmt.Sprintf("v%d", i) {
					t.Fatalf("value %d = %q", i, it.Value())
				}
				i++
			}
			if i != 10 {
				t.Fatalf("iterated %d", i)
			}
			// Seek.
			it.Seek(ikey.SeekKey([]byte("k05"), ikey.MaxSeq))
			if !it.Valid() || string(ikey.UserKey(it.Key())) != "k05" {
				t.Fatalf("seek landed on %q", it.Key())
			}
		})
	}
}

func TestApproximateSizeGrows(t *testing.T) {
	m := New(true)
	if m.ApproximateSize() != 0 {
		t.Fatal("fresh memtable has size")
	}
	m.Add(1, ikey.KindSet, []byte("key"), make([]byte, 1000))
	if m.ApproximateSize() < 1000 {
		t.Fatalf("size = %d", m.ApproximateSize())
	}
	if m.ArenaSize() <= 0 {
		t.Fatal("arena size must be positive")
	}
}

func TestConcurrentAdds(t *testing.T) {
	m := New(true)
	var wg sync.WaitGroup
	var seq int64
	var seqMu sync.Mutex
	nextSeq := func() uint64 {
		seqMu.Lock()
		defer seqMu.Unlock()
		seq++
		return uint64(seq)
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Add(nextSeq(), ikey.KindSet, []byte(fmt.Sprintf("g%d-k%d", g, i)), []byte("v"))
			}
		}(g)
	}
	wg.Wait()
	if m.Len() != 4000 {
		t.Fatalf("len = %d", m.Len())
	}
	for g := 0; g < 8; g++ {
		for i := 0; i < 500; i += 97 {
			if _, found, _ := m.Get([]byte(fmt.Sprintf("g%d-k%d", g, i)), ikey.MaxSeq); !found {
				t.Fatalf("lost key g%d-k%d", g, i)
			}
		}
	}
}

func TestQuickAgainstMap(t *testing.T) {
	// Property: after any op sequence, Get at MaxSeq agrees with a map.
	type op struct {
		Key    uint8 // small key space to force overwrites
		Value  uint16
		Delete bool
	}
	for name, conc := range both() {
		t.Run(name, func(t *testing.T) {
			fn := func(ops []op) bool {
				m := New(conc)
				model := map[string]string{}
				deleted := map[string]bool{}
				for i, o := range ops {
					k := fmt.Sprintf("key-%d", o.Key%32)
					if o.Delete {
						m.Add(uint64(i+1), ikey.KindDelete, []byte(k), nil)
						delete(model, k)
						deleted[k] = true
					} else {
						v := fmt.Sprintf("v-%d", o.Value)
						m.Add(uint64(i+1), ikey.KindSet, []byte(k), []byte(v))
						model[k] = v
						delete(deleted, k)
					}
				}
				for k, want := range model {
					v, found, del := m.Get([]byte(k), ikey.MaxSeq)
					if !found || del || string(v) != want {
						return false
					}
				}
				for k := range deleted {
					_, found, del := m.Get([]byte(k), ikey.MaxSeq)
					if !found || !del {
						return false
					}
				}
				return true
			}
			if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
