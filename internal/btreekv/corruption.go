package btreekv

import (
	"context"
	"errors"
	"fmt"

	"p2kvs/internal/kv"
	"p2kvs/internal/sstable"
)

// At-rest corruption containment (DESIGN.md §12).
//
// The engine's durable state is two files: the base checkpoint (an SSTable,
// verified block-by-block by the v2 format) and the journal (every record
// CRC-checked by the WAL layer; a complete record failing its CRC is
// reported, not silently truncated). The two corrupt differently:
//
//   - Corrupt BASE, intact journal: the dirty tree is complete and newer
//     than the base, so dirty hits (including tombstones) still serve
//     correct answers. Dirty misses cannot prove absence or fetch the base
//     version — they fail with kv.ErrCorruption. "Read-only-minus".
//   - Corrupt JOURNAL: the replayed dirty tree is a prefix — any key may
//     have lost its newest version, so even a base hit could be stale.
//     Every read fails with kv.ErrCorruption until the shard is restored.
//
// Either way writes degrade (mirroring the §11 disk-full state machine):
// appending to a shard whose recovered state is unsound only widens the
// blast radius. Repair: Scrub re-fetches the base from the RepairSource
// (the newest backup generation), re-verifies it end to end and swaps it
// in; journal corruption is only curable by a full shard restore.

func baseName(gen uint64) string { return fmt.Sprintf("ckpt-%06d.db", gen) }

// noteCorruption records a detected corruption. baseOnly marks the
// base-corrupt/journal-intact case where dirty hits keep serving. Safe to
// call from read paths (own mutex, not the store latch).
func (d *DB) noteCorruption(err error, baseOnly bool) {
	d.corruptionEvents.Add(1)
	d.corrMu.Lock()
	if d.corrErr == nil {
		d.corrErr = err
		d.corrBaseOnly = baseOnly
	} else if !baseOnly {
		// Journal corruption supersedes base-only containment.
		d.corrBaseOnly = false
	}
	d.corrMu.Unlock()
}

// corruption returns the active corruption error (nil when sound) and
// whether containment is base-only.
func (d *DB) corruption() (error, bool) {
	d.corrMu.Lock()
	defer d.corrMu.Unlock()
	return d.corrErr, d.corrBaseOnly
}

var _ kv.Scrubber = (*DB)(nil)

// Scrub implements kv.Scrubber: it re-verifies every block of the base
// checkpoint under the shared latch (which pins the generation — the
// checkpoint swap needs the write latch). The live journal is not
// re-read: its tail is being appended concurrently and every record is
// CRC-verified at the only moment its bytes are trusted, replay. An
// already-corrupt base gets a repair attempt from the RepairSource
// instead of a futile re-read.
func (d *DB) Scrub(ctx context.Context, lim kv.RateLimiter) (kv.ScrubResult, error) {
	var res kv.ScrubResult
	if cerr, baseOnly := d.corruption(); cerr != nil {
		if baseOnly && d.tryRepairBase() {
			res.FilesRepaired++
		}
		return res, nil
	}
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return res, kv.ErrClosed
	}
	base := d.base
	if base == nil {
		d.mu.RUnlock()
		return res, nil
	}
	if lim != nil {
		size := base.Size()
		d.mu.RUnlock()
		if err := lim.WaitN(ctx, int(size)); err != nil {
			return res, err
		}
		d.mu.RLock()
		if d.closed || d.base != base {
			// Reconciliation swapped the base while we waited; the new one
			// was just written and verified, skip this pass.
			d.mu.RUnlock()
			return res, nil
		}
	}
	n, err := base.Verify()
	d.mu.RUnlock()
	res.FilesScanned = 1
	res.BytesScanned = n
	if err == nil {
		return res, ctx.Err()
	}
	if !errors.Is(err, kv.ErrCorruption) {
		return res, err
	}
	res.CorruptionsFound++
	d.noteCorruption(err, true)
	if d.tryRepairBase() {
		res.FilesRepaired++
	}
	return res, nil
}

// tryRepairBase restores the base checkpoint from the RepairSource,
// reporting whether containment was lifted. The candidate bytes are
// written to a temp file and re-verified end to end before the swap —
// trusting a backup blindly would just relocate the corruption.
func (d *DB) tryRepairBase() bool {
	src := d.opts.RepairSource
	if src == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	cerr, baseOnly := d.corruption()
	if cerr == nil || !baseOnly {
		return false // sound, or journal-corrupt (needs a full restore)
	}
	name := baseName(d.gen)
	data, ok := src.Fetch(name)
	if !ok {
		return false
	}
	fs := d.opts.FS
	path := ckptName(d.dir, d.gen)
	tmp := path + ".repair"
	f, err := fs.Create(tmp)
	if err != nil {
		return false
	}
	_, werr := f.Write(data)
	serr := f.Sync()
	f.Close()
	if werr != nil || serr != nil {
		fs.Remove(tmp)
		return false
	}
	vf, err := fs.Open(tmp)
	if err != nil {
		fs.Remove(tmp)
		return false
	}
	r, err := sstable.OpenNamed(vf, nil, 0, name)
	if err != nil {
		vf.Close()
		fs.Remove(tmp)
		return false
	}
	if _, err := r.Verify(); err != nil {
		r.Close()
		fs.Remove(tmp)
		return false
	}
	r.Close()
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return false
	}
	nf, err := fs.Open(path)
	if err != nil {
		return false
	}
	nr, err := sstable.OpenNamed(nf, nil, 0, name)
	if err != nil {
		nf.Close()
		return false
	}
	if d.base != nil {
		d.base.Close()
	}
	d.base = nr
	d.corrMu.Lock()
	d.corrErr = nil
	d.corrBaseOnly = false
	d.corrMu.Unlock()
	// Lift the write block iff corruption was what installed it.
	if d.bgErr != nil && errors.Is(d.bgErr, kv.ErrCorruption) {
		d.bgErr = nil
	}
	d.repairedFiles.Add(1)
	return true
}
