package btreekv

import (
	"fmt"
	"strings"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// Disk-full handling.
//
// The engine has no retryable background jobs (checkpoints run inline
// under the store latch), so its failure taxonomy is simpler than the
// LSM's: a journal append or checkpoint that hits ENOSPC degrades the
// store to read-only immediately — retrying cannot free space — while
// reads keep serving the merged dirty+base view. The space watchdog then
// garbage-collects leftovers from interrupted checkpoints, probes for
// freed space, and auto-Resumes.

// degradedError blocks writes while the store is degraded. It matches
// kv.ErrDegraded via errors.Is and unwraps to the causing failure.
type degradedError struct {
	cause error
}

func (e *degradedError) Error() string {
	return fmt.Sprintf("btreekv: engine degraded to read-only: %v", e.cause)
}

func (e *degradedError) Unwrap() error { return e.cause }

func (e *degradedError) Is(target error) bool { return target == kv.ErrDegraded }

// degradeLocked installs the write-blocking error (first failure wins)
// and, for space exhaustion, kicks the auto-resume watchdog. Caller
// holds the write latch.
func (d *DB) degradeLocked(cause error) {
	if d.bgErr != nil {
		return
	}
	d.bgErr = &degradedError{cause: cause}
	if vfs.IsNoSpace(cause) {
		d.diskFull = true
		d.diskFullEvents.Add(1)
		if d.spaceWatch != nil {
			d.spaceWatch.Kick()
		}
	}
}

// Health implements kv.HealthReporter.
func (d *DB) Health() kv.Health {
	h := kv.Health{
		State:            kv.StateHealthy,
		DiskFullEvents:   d.diskFullEvents.Load(),
		AutoResumes:      d.autoResumes.Load(),
		CorruptionEvents: d.corruptionEvents.Load(),
		RepairedFiles:    d.repairedFiles.Load(),
	}
	if fc, ok := d.opts.FS.(vfs.FaultCounter); ok {
		h.InjectedFaults = fc.InjectedFaults()
	}
	if cerr, _ := d.corruption(); cerr != nil {
		// Containment active: the one base/journal under quarantine.
		h.QuarantinedFiles = 1
		h.LastCorruption = cerr
		h.State = kv.StateReadOnly
		h.Err = cerr
	}
	d.mu.RLock()
	if d.bgErr != nil {
		h.State = kv.StateReadOnly
		h.Err = d.bgErr
		h.DiskFull = d.diskFull
	}
	d.mu.RUnlock()
	return h
}

// Resume implements kv.Resumer: it clears the degraded state and, if the
// incident tainted the journal, re-platforms on a fresh checkpoint +
// journal so new writes land in a readable log. A re-platform failure
// re-degrades (space may not actually be back).
func (d *DB) Resume() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return kv.ErrClosed
	}
	d.bgErr = nil
	d.diskFull = false
	if d.wal.Tainted() {
		if err := d.checkpointLocked(); err != nil {
			d.degradeLocked(err)
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Auto-resume watchdog hooks
// ---------------------------------------------------------------------------

// diskFullDegraded is the watchdog's "still stuck?" predicate.
func (d *DB) diskFullDegraded() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.diskFull && d.bgErr != nil && !d.closed
}

// spaceProbe garbage-collects leftovers from interrupted checkpoints,
// then checks whether a small durable write succeeds.
func (d *DB) spaceProbe() bool {
	d.reclaimSpace()
	return vfs.ProbeSpace(d.opts.FS, d.dir)
}

// autoResume is invoked by the watchdog once the probe succeeds while
// the store is still disk-full degraded.
func (d *DB) autoResume() {
	d.autoResumes.Add(1)
	_ = d.Resume()
}

// reclaimSpace deletes files nothing references: *.new temporaries from
// interrupted checkpoint/open sequences and checkpoint/journal files of
// generations other than the current one. It only runs while the store
// is degraded (no checkpoint can be mid-flight — they run under the
// latch and the degraded check precedes them) and defers to backup pins,
// which may still be copying retired generations.
func (d *DB) reclaimSpace() {
	d.mu.Lock()
	if d.bgErr == nil || d.closed || d.ckptPins > 0 {
		d.mu.Unlock()
		return
	}
	gen := d.gen
	names, err := d.opts.FS.List(d.dir)
	if err != nil {
		d.mu.Unlock()
		return
	}
	var victims []string
	for _, name := range names {
		full := d.dir + "/" + name
		var g uint64
		switch {
		case strings.HasSuffix(name, ".new"):
			victims = append(victims, full)
		case parseGen(name, "ckpt-%06d.db", &g) && g != gen:
			victims = append(victims, full)
		case parseGen(name, "journal-%06d.log", &g) && g != gen:
			victims = append(victims, full)
		}
	}
	d.mu.Unlock()
	for _, v := range victims {
		d.opts.FS.Remove(v)
	}
}

// parseGen extracts the generation number from a file name matching the
// given pattern, requiring the whole name to be consumed.
func parseGen(name, pattern string, g *uint64) bool {
	var tail string
	n, err := fmt.Sscanf(name, pattern+"%s", g, &tail)
	return err != nil && n == 1 // %s must fail: nothing may follow the pattern
}
