package btreekv

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

func openSmall(t *testing.T, fs vfs.FS, dir string) *DB {
	t.Helper()
	db, err := Open(dir, Options{FS: fs, CheckpointBytes: 32 << 10, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPutGetDelete(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs, "wt")
	defer db.Close()
	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	if v, err := db.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("Get(a) = %q %v", v, err)
	}
	db.Delete([]byte("a"))
	if _, err := db.Get([]byte("a")); err != kv.ErrNotFound {
		t.Fatalf("Get(a) after delete = %v", err)
	}
	db.Put([]byte("b"), []byte("2x"))
	if v, _ := db.Get([]byte("b")); string(v) != "2x" {
		t.Fatal("overwrite lost")
	}
	if _, err := db.Get([]byte("zz")); err != kv.ErrNotFound {
		t.Fatalf("absent key err = %v", err)
	}
}

func TestCheckpointAndReadBack(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs, "wt")
	defer db.Close()
	const n = 3000 // enough dirty bytes to force several checkpoints
	perm := rand.New(rand.NewSource(2)).Perm(n)
	for _, i := range perm {
		db.Put([]byte(fmt.Sprintf("key%06d", i)), []byte(fmt.Sprintf("val%d", i)))
	}
	m := db.Metrics()
	if m.Gen == 0 {
		t.Fatal("no checkpoint was triggered")
	}
	for i := 0; i < n; i += 53 {
		v, err := db.Get([]byte(fmt.Sprintf("key%06d", i)))
		if err != nil || string(v) != fmt.Sprintf("val%d", i) {
			t.Fatalf("Get(%d) = %q %v", i, v, err)
		}
	}
}

func TestOverwriteAndDeleteAcrossCheckpoints(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs, "wt")
	defer db.Close()
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v1"))
	}
	db.Checkpoint()
	for i := 0; i < 500; i += 2 {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v2"))
	}
	for i := 0; i < 500; i += 5 {
		db.Delete([]byte(fmt.Sprintf("k%04d", i)))
	}
	db.Checkpoint()
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%04d", i)
		v, err := db.Get([]byte(key))
		switch {
		case i%5 == 0:
			if err != kv.ErrNotFound {
				t.Fatalf("deleted %s survived: %q %v", key, v, err)
			}
		case i%2 == 0:
			if string(v) != "v2" {
				t.Fatalf("%s = %q, want v2", key, v)
			}
		default:
			if string(v) != "v1" {
				t.Fatalf("%s = %q, want v1", key, v)
			}
		}
	}
}

func TestCrashRecoveryJournal(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs, "wt")
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete([]byte("k0007"))
	fs.Crash()
	fs.Restart()

	db2, err := Open("wt", Options{FS: fs, CheckpointBytes: 32 << 10, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%04d", i)
		v, err := db2.Get([]byte(key))
		if i == 7 {
			if err != kv.ErrNotFound {
				t.Fatalf("deleted key recovered: %q", v)
			}
			continue
		}
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) = %q %v", key, v, err)
		}
	}
}

func TestCleanReopen(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs, "wt")
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v"))
	}
	db.Close()
	db2, err := Open("wt", Options{FS: fs, CheckpointBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 1000; i += 111 {
		if _, err := db2.Get([]byte(fmt.Sprintf("k%05d", i))); err != nil {
			t.Fatalf("key %d lost on clean reopen: %v", i, err)
		}
	}
}

func TestIterator(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs, "wt")
	defer db.Close()
	for i := 0; i < 300; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Checkpoint()
	// Post-checkpoint mutations must merge into the scan.
	db.Put([]byte("k0050"), []byte("updated"))
	db.Delete([]byte("k0100"))
	db.Put([]byte("zz-new"), []byte("tail"))

	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	count := 0
	prev := ""
	for it.SeekToFirst(); it.Valid(); it.Next() {
		k := string(it.Key())
		if prev != "" && k <= prev {
			t.Fatalf("out of order: %q after %q", k, prev)
		}
		prev = k
		switch k {
		case "k0050":
			if string(it.Value()) != "updated" {
				t.Fatalf("k0050 = %q", it.Value())
			}
		case "k0100":
			t.Fatal("deleted key surfaced in scan")
		}
		count++
	}
	if count != 300 { // 300 - 1 deleted + 1 new
		t.Fatalf("scanned %d, want 300", count)
	}

	it2, _ := db.NewIterator()
	defer it2.Close()
	it2.Seek([]byte("k0200"))
	if !it2.Valid() || string(it2.Key()) != "k0200" {
		t.Fatalf("Seek landed on %q", it2.Key())
	}
}

func TestNoBatchCaps(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs, "wt")
	defer db.Close()
	caps := kv.CapsOf(db)
	if caps.BatchWrite || caps.MultiGet {
		t.Fatalf("WiredTiger-style engine must report no batch caps: %+v", caps)
	}
}

func TestClosedOps(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs, "wt")
	db.Put([]byte("k"), []byte("v"))
	db.Close()
	if err := db.Close(); err != nil {
		t.Fatal("double close")
	}
	if err := db.Put([]byte("a"), []byte("b")); err != kv.ErrClosed {
		t.Fatalf("Put after close = %v", err)
	}
	if _, err := db.Get([]byte("k")); err != kv.ErrClosed {
		t.Fatalf("Get after close = %v", err)
	}
}

func TestQuickAgainstMap(t *testing.T) {
	type op struct {
		Key    uint8
		Val    uint16
		Delete bool
	}
	fn := func(ops []op) bool {
		fs := vfs.NewMem()
		db, err := Open("q", Options{FS: fs, CheckpointBytes: 2 << 10})
		if err != nil {
			return false
		}
		defer db.Close()
		model := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("key-%03d", o.Key%64)
			if o.Delete {
				delete(model, k)
				if db.Delete([]byte(k)) != nil {
					return false
				}
			} else {
				v := fmt.Sprintf("val-%d", o.Val)
				model[k] = v
				if db.Put([]byte(k), []byte(v)) != nil {
					return false
				}
			}
		}
		for k, want := range model {
			v, err := db.Get([]byte(k))
			if err != nil || string(v) != want {
				return false
			}
		}
		// Absent probes.
		for i := 64; i < 70; i++ {
			if _, err := db.Get([]byte(fmt.Sprintf("key-%03d", i))); err != kv.ErrNotFound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointEmptyStoreAfterDeletes(t *testing.T) {
	// Deleting everything then checkpointing leaves a generation with no
	// checkpoint file; reopen must handle it.
	fs := vfs.NewMem()
	db := openSmall(t, fs, "wt")
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
	}
	for i := 0; i < 50; i++ {
		db.Delete([]byte(fmt.Sprintf("k%02d", i)))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k00")); err != kv.ErrNotFound {
		t.Fatalf("deleted key visible: %v", err)
	}
	db.Close()

	db2, err := Open("wt", Options{FS: fs, CheckpointBytes: 32 << 10})
	if err != nil {
		t.Fatalf("reopen after empty checkpoint: %v", err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("k00")); err != kv.ErrNotFound {
		t.Fatal("deleted key resurrected")
	}
	if err := db2.Put([]byte("fresh"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersWithWriter(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs, "wt")
	defer db.Close()
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			db.Put([]byte(fmt.Sprintf("w%04d", i%500)), []byte(fmt.Sprintf("v%d", i)))
		}
	}()
	for i := 0; i < 2000; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("w%04d", i%500))); err != nil && err != kv.ErrNotFound {
			t.Fatal(err)
		}
	}
	close(stop)
}
