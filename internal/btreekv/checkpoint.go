package btreekv

import (
	"fmt"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// Online backup (kv.Checkpointer). The engine's durable state at any
// instant is (checkpoint file of the current generation, journal prefix):
// PrepareCheckpoint captures the generation and the journal's byte
// watermark under the store latch — no IO — and pins the generation so a
// concurrent reconciliation (checkpointLocked) cannot delete its files
// before WriteTo has copied them. The journal is append-only, so the
// captured [0, size) prefix stays a stable crash-consistent image while
// writes continue.

var _ kv.Checkpointer = (*DB)(nil)
var _ kv.CheckpointStatsReporter = (*DB)(nil)

// PrepareCheckpoint implements kv.Checkpointer.
func (d *DB) PrepareCheckpoint() (kv.CheckpointWriter, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, kv.ErrClosed
	}
	d.ckptPins++
	return &ckptWriter{
		d:       d,
		gen:     d.gen,
		walSize: d.wal.Size(),
		hasBase: d.base != nil,
	}, nil
}

// CheckpointStats implements kv.CheckpointStatsReporter.
func (d *DB) CheckpointStats() kv.CheckpointStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.ckptStats
}

type ckptWriter struct {
	d        *DB
	gen      uint64
	walSize  int64
	hasBase  bool
	released bool
}

// WriteTo implements kv.CheckpointWriter.
func (w *ckptWriter) WriteTo(fs vfs.FS, dir string, seq uint64) ([]kv.CheckpointFile, error) {
	d := w.d
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	var files []kv.CheckpointFile
	var stats kv.CheckpointStats
	stats.Checkpoints = 1

	// The checkpoint file is immutable per generation and generations
	// never repeat, so one already in the backup set is reusable as-is.
	if w.hasBase {
		name := fmt.Sprintf("ckpt-%06d.db", w.gen)
		files = append(files, kv.CheckpointFile{Name: name, Restore: name})
		dst := dir + "/" + name
		switch {
		case fs.Exists(dst):
			stats.FilesReused++
		default:
			if err := fs.Link(ckptName(d.dir, w.gen), dst); err == nil {
				stats.FilesLinked++
			} else {
				if err := vfs.CopyFile(d.opts.FS, ckptName(d.dir, w.gen), fs, dst); err != nil {
					return nil, err
				}
				stats.FilesCopied++
				if f, err := fs.Open(dst); err == nil {
					if sz, err := f.Size(); err == nil {
						stats.BytesCopied += sz
					}
					f.Close()
				}
			}
		}
	}

	// Journal prefix and META carry the checkpoint sequence in their
	// backup names: they differ between checkpoints, and a crashed later
	// checkpoint must never touch files an earlier manifest references.
	jname := fmt.Sprintf("journal-%06d-ckpt%06d.log", w.gen, seq)
	if err := vfs.CopyPrefix(d.opts.FS, walName(d.dir, w.gen), fs, dir+"/"+jname, w.walSize); err != nil {
		return nil, err
	}
	stats.FilesCopied++
	stats.BytesCopied += w.walSize
	files = append(files, kv.CheckpointFile{Name: jname, Restore: fmt.Sprintf("journal-%06d.log", w.gen)})

	mname := fmt.Sprintf("META-ckpt%06d", seq)
	if err := vfs.WriteFile(fs, dir+"/"+mname, encodeMeta(w.gen)); err != nil {
		return nil, err
	}
	files = append(files, kv.CheckpointFile{Name: mname, Restore: "META"})

	d.mu.Lock()
	d.ckptStats.Checkpoints += stats.Checkpoints
	d.ckptStats.FilesLinked += stats.FilesLinked
	d.ckptStats.FilesCopied += stats.FilesCopied
	d.ckptStats.FilesReused += stats.FilesReused
	d.ckptStats.BytesCopied += stats.BytesCopied
	d.mu.Unlock()
	return files, nil
}

// Release implements kv.CheckpointWriter.
func (w *ckptWriter) Release() {
	if w.released {
		return
	}
	w.released = true
	d := w.d
	d.mu.Lock()
	d.ckptPins--
	var drain []string
	if d.ckptPins == 0 {
		drain = d.ckptDeferred
		d.ckptDeferred = nil
	}
	d.mu.Unlock()
	for _, p := range drain {
		d.opts.FS.Remove(p)
	}
}
