package btreekv

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

func TestDiskFullDegradesAndAutoResumes(t *testing.T) {
	qfs := vfs.NewQuota(vfs.NewMem(), 128<<10)
	d, err := Open("db", Options{FS: qfs, SyncWAL: true, CheckpointBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	var acked []string
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("key-%06d", i)
		err := d.Put([]byte(k), make([]byte, 512))
		if err == nil {
			acked = append(acked, k)
			continue
		}
		if !vfs.IsNoSpace(err) && !errors.Is(err, kv.ErrDegraded) {
			t.Fatalf("Put(%s): unexpected error class: %v", k, err)
		}
		break
	}
	if len(acked) == 0 {
		t.Fatal("no write ever succeeded")
	}

	// The store settles into disk-full read-only mode.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := d.Health()
		if h.State == kv.StateReadOnly && h.DiskFull {
			if h.DiskFullEvents == 0 {
				t.Fatal("DiskFull set but DiskFullEvents == 0")
			}
			break
		}
		// Another write may be needed to trip degradation (the first
		// ENOSPC may have surfaced directly without a degrade, e.g. from
		// a checkpoint journal-create failure).
		d.Put([]byte("trip"), []byte("v"))
		if time.Now().After(deadline) {
			t.Fatalf("store never entered disk-full read-only mode: %+v", h)
		}
		time.Sleep(time.Millisecond)
	}
	if err := d.Put([]byte("blocked"), []byte("v")); !errors.Is(err, kv.ErrDegraded) {
		t.Fatalf("write while disk-full: got %v, want ErrDegraded", err)
	}

	// Reads keep serving acked state throughout.
	for _, k := range []string{acked[0], acked[len(acked)/2], acked[len(acked)-1]} {
		if _, err := d.Get([]byte(k)); err != nil {
			t.Fatalf("Get(%s) while disk-full: %v", k, err)
		}
	}

	// Space comes back; the watchdog must auto-resume on its own.
	qfs.SetBudget(64 << 20)
	deadline = time.Now().Add(10 * time.Second)
	for {
		if err := d.Put([]byte("after"), []byte("v")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writes never resumed after space freed: health %+v", d.Health())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h := d.Health(); h.AutoResumes == 0 {
		t.Fatalf("auto-resume not counted: %+v", h)
	}
	if _, err := d.Get([]byte(acked[0])); err != nil {
		t.Fatalf("Get after resume: %v", err)
	}
}

// TestReclaimSpaceDropsLeftovers plants stale-generation and .new files,
// degrades the store, and checks the watchdog GC removes exactly them.
func TestReclaimSpaceDropsLeftovers(t *testing.T) {
	qfs := vfs.NewQuota(vfs.NewMem(), -1)
	d, err := Open("db", Options{FS: qfs, CheckpointBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if err := d.Put([]byte("k"), make([]byte, 4<<10)); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	garbage := []string{"db/ckpt-999999.db", "db/journal-999999.log", "db/META.new"}
	for _, name := range garbage {
		f, err := qfs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("garbage"))
		f.Close()
	}

	qfs.SetBudget(1)
	var degraded bool
	for i := 0; i < 10000; i++ {
		if err := d.Put([]byte(fmt.Sprintf("fill-%d", i)), make([]byte, 1024)); err != nil {
			degraded = true
			break
		}
	}
	if !degraded {
		t.Fatal("never degraded")
	}
	qfs.SetBudget(-1)
	deadline := time.Now().Add(10 * time.Second)
	for {
		gone := true
		for _, name := range garbage {
			if qfs.Exists(name) {
				gone = false
			}
		}
		if gone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("garbage not collected: %v", garbage)
		}
		time.Sleep(5 * time.Millisecond)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		if err := d.Put([]byte("post"), []byte("v")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never resumed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v, err := d.Get([]byte("k")); err != nil || len(v) != 4<<10 {
		t.Fatalf("checkpointed key lost after GC: v=%d bytes, err=%v", len(v), err)
	}
}
