package btreekv

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// repairMap is a stub kv.RepairSource: file base name -> pristine bytes.
type repairMap map[string][]byte

func (m repairMap) Fetch(name string) ([]byte, bool) {
	b, ok := m[name]
	return b, ok
}

func corrOpts(fs vfs.FS) Options {
	return Options{FS: fs, CheckpointBytes: 64 << 20} // no auto-checkpoint
}

// buildBaseAndDirty creates a store whose base checkpoint holds base-NNNN
// keys and whose journal holds dirty-NNNN keys plus an overwrite of
// base-0000, then closes it. Returns the fault FS, the base file path and
// its pristine bytes, and the expected live key->value map.
func buildBaseAndDirty(t *testing.T) (*vfs.FaultFS, string, []byte, map[string]string) {
	t.Helper()
	fs := vfs.NewFault(vfs.NewMem())
	d, err := Open("db", corrOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string)
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("base-%04d", i)
		v := fmt.Sprintf("bv-%04d", i)
		if err := d.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("dirty-%04d", i)
		v := fmt.Sprintf("dv-%04d", i)
		if err := d.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	if err := d.Put([]byte("base-0000"), []byte("overwritten")); err != nil {
		t.Fatal(err)
	}
	want["base-0000"] = "overwritten"
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	base := ckptName("db", 1)
	if !fs.Exists(base) {
		t.Fatalf("no base checkpoint at %s", base)
	}
	pristine, err := vfs.ReadFile(fs, base)
	if err != nil {
		t.Fatal(err)
	}
	return fs, base, pristine, want
}

// TestCorruptBaseReadOnlyMinus: a flipped bit in the base checkpoint must
// leave dirty hits serving correct answers while dirty misses and writes
// fail loudly — never a wrong or silently-missing value.
func TestCorruptBaseReadOnlyMinus(t *testing.T) {
	fs, base, _, want := buildBaseAndDirty(t)
	if err := fs.CorruptAt(base, 10); err != nil { // inside the data block
		t.Fatal(err)
	}
	d, err := Open("db", corrOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Base read detects the flip.
	if _, err := d.Get([]byte("base-0010")); !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("base Get = %v, want ErrCorruption", err)
	}
	// Dirty hits keep serving, including the journal's newer version of a
	// base key.
	for _, k := range []string{"dirty-0005", "base-0000"} {
		got, err := d.Get([]byte(k))
		if err != nil {
			t.Fatalf("dirty hit Get(%q): %v", k, err)
		}
		if string(got) != want[k] {
			t.Fatalf("Get(%q) = %q, want %q", k, got, want[k])
		}
	}
	// A dirty miss cannot prove absence against a corrupt base.
	if _, err := d.Get([]byte("no-such-key")); !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("absent-key Get = %v, want ErrCorruption", err)
	}
	// Writes degrade: appending to an unsound shard widens the blast radius.
	err = d.Put([]byte("new-key"), []byte("v"))
	if !errors.Is(err, kv.ErrDegraded) || !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("Put = %v, want ErrDegraded wrapping ErrCorruption", err)
	}
	h := d.Health()
	if h.CorruptionEvents == 0 || h.QuarantinedFiles != 1 {
		t.Fatalf("Health = %+v, want CorruptionEvents>0 and QuarantinedFiles=1", h)
	}
	if h.State != kv.StateReadOnly {
		t.Fatalf("State = %v, want StateReadOnly", h.State)
	}
}

// TestScrubRepairsBase: with a backup available, a scrub pass finds the
// flipped base without any foreground read and swaps in the verified copy;
// reads and writes are whole again.
func TestScrubRepairsBase(t *testing.T) {
	fs, base, pristine, want := buildBaseAndDirty(t)
	if err := fs.CorruptAt(base, 10); err != nil {
		t.Fatal(err)
	}
	opts := corrOpts(fs)
	opts.RepairSource = repairMap{baseName(1): pristine}
	d, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	res, err := d.Scrub(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptionsFound != 1 || res.FilesRepaired != 1 {
		t.Fatalf("scrub = %+v, want 1 found / 1 repaired", res)
	}
	for k, v := range want {
		got, err := d.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q) after repair: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("Get(%q) after repair = %q, want %q", k, got, v)
		}
	}
	if err := d.Put([]byte("new-key"), []byte("v")); err != nil {
		t.Fatalf("Put after repair: %v", err)
	}
	h := d.Health()
	if h.QuarantinedFiles != 0 || h.RepairedFiles != 1 {
		t.Fatalf("Health after repair = %+v, want 0 quarantined / 1 repaired", h)
	}
	// Clean second pass.
	res, err = d.Scrub(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptionsFound != 0 || res.FilesScanned != 1 || res.BytesScanned == 0 {
		t.Fatalf("second scrub = %+v, want one clean file scanned", res)
	}
}

// TestCorruptJournalFailsShard: a flipped bit in a complete journal record
// means the recovered dirty tree is a prefix — the whole shard must fail
// loudly rather than serve a silently rewound state, and no repair source
// can fix it (only a restore).
func TestCorruptJournalFailsShard(t *testing.T) {
	fs := vfs.NewFault(vfs.NewMem())
	d, err := Open("db", corrOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := d.Put([]byte(fmt.Sprintf("j-%04d", i)), []byte(fmt.Sprintf("jv-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Offset 18 = 2 bytes into the first record's payload (16-byte WAL
	// header): the record stays complete, its CRC no longer matches.
	journal := walName("db", 0)
	if err := fs.CorruptAt(journal, 18); err != nil {
		t.Fatal(err)
	}
	opts := corrOpts(fs)
	opts.RepairSource = repairMap{} // present but useless for journals
	d2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()

	for _, k := range []string{"j-0000", "j-0015", "j-0029", "absent"} {
		if _, err := d2.Get([]byte(k)); !errors.Is(err, kv.ErrCorruption) {
			t.Fatalf("Get(%q) = %v, want ErrCorruption", k, err)
		}
	}
	if err := d2.Put([]byte("k"), []byte("v")); !errors.Is(err, kv.ErrDegraded) {
		t.Fatalf("Put = %v, want ErrDegraded", err)
	}
	res, err := d2.Scrub(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesRepaired != 0 {
		t.Fatalf("scrub repaired a corrupt journal: %+v", res)
	}
	h := d2.Health()
	if h.QuarantinedFiles != 1 || h.State != kv.StateReadOnly || h.LastCorruption == nil {
		t.Fatalf("Health = %+v, want quarantined read-only shard", h)
	}
}
