// Package btreekv is the WiredTiger-style B+-tree engine used in the
// paper's portability study (§4.6, Figure 23). Its characteristics, as
// relevant to p2KVS, are: a WAL for durability, an in-memory B+-tree of
// recent updates in front of an on-disk checkpoint, a coarse store-level
// latch serializing writers (single-instance writes scale poorly — the
// premise of Figure 23), and NO batch-write capability, which disables
// p2KVS's OBM-write path on this engine.
//
// Checkpoints are modeled as full sorted serializations of the store
// (reusing the SSTable format as the page file): WiredTiger reconciles
// dirty pages into its on-disk B-tree; here the reconciliation granularity
// is the whole tree, which preserves the cost shape (periodic large
// sequential writes, point reads via an on-disk index) at much lower
// implementation complexity. Documented in DESIGN.md as a substitution.
package btreekv

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"strings"

	"p2kvs/internal/block"
	"p2kvs/internal/bptree"
	"p2kvs/internal/ikey"
	"p2kvs/internal/kv"
	"p2kvs/internal/spacewatch"
	"p2kvs/internal/sstable"
	"p2kvs/internal/vfs"
	"p2kvs/internal/wal"
)

// Options configures the engine.
type Options struct {
	// FS hosts the engine's files. Required.
	FS vfs.FS
	// SyncWAL fsyncs the journal on every commit. Equivalent to
	// WALSync = wal.PolicyCommit; kept for existing call sites.
	SyncWAL bool
	// WALSync selects the journal durability policy; the zero value
	// defers to SyncWAL. WALSyncInterval bounds staleness under
	// wal.PolicyInterval (default 100ms).
	WALSync         wal.SyncPolicy
	WALSyncInterval time.Duration
	// CheckpointBytes is the dirty-buffer budget that triggers a
	// checkpoint (default 8 MiB).
	CheckpointBytes int64
	// PerUpdateCost / PerReadCost model the per-request host software
	// path (tree descent, journal encode) in simulated time — zero for
	// production use, set by the scaled-time benchmarks. Updates pay
	// theirs under the store latch (the serialization Figure 23 shows
	// p2KVS sharding away); reads pay theirs under the shared latch.
	PerUpdateCost time.Duration
	PerReadCost   time.Duration
	// RepairSource, when non-nil, supplies known-good backup bytes for a
	// corrupt base checkpoint (keyed by base name, e.g. "ckpt-000003.db");
	// see corruption.go. Journal corruption is not repairable in place.
	RepairSource kv.RepairSource
}

type dirtyVal struct {
	val  []byte
	tomb bool
}

// DB is one WiredTiger-style instance.
type DB struct {
	opts Options
	dir  string

	mu     sync.RWMutex
	dirty  *bptree.Tree[dirtyVal]
	dirtyB int64
	base   *sstable.Reader // current checkpoint, nil when none
	gen    uint64
	wal    *wal.Writer
	closed bool

	// Online-backup pinning (see PrepareCheckpoint): while > 0, retired
	// generations' files are parked in ckptDeferred instead of deleted,
	// because a backup in progress may still be copying them.
	ckptPins     int
	ckptDeferred []string
	ckptStats    kv.CheckpointStats // under mu

	// Disk-full degraded state (health.go): bgErr blocks writes while set
	// (it matches kv.ErrDegraded); spaceWatch auto-resumes once space
	// frees.
	bgErr          error
	diskFull       bool
	diskFullEvents atomic.Int64
	autoResumes    atomic.Int64
	spaceWatch     *spacewatch.Watchdog

	// Corruption containment (corruption.go). Guarded by corrMu — its own
	// mutex so read paths holding the shared latch can record detections.
	corrMu           sync.Mutex
	corrErr          error
	corrBaseOnly     bool
	corruptionEvents atomic.Int64
	repairedFiles    atomic.Int64
}

var _ kv.Engine = (*DB)(nil)

func ckptName(dir string, gen uint64) string { return fmt.Sprintf("%s/ckpt-%06d.db", dir, gen) }
func walName(dir string, gen uint64) string  { return fmt.Sprintf("%s/journal-%06d.log", dir, gen) }
func metaName(dir string) string             { return dir + "/META" }

// encodeMeta renders META: the generation pointer plus a CRC-32C guard
// over it. META is the store's root — a silently misread generation
// resurrects an old image (or an empty one), which is wholesale silent
// data loss — so it gets the same at-rest protection as data blocks.
func encodeMeta(gen uint64) []byte {
	body := fmt.Sprintf("gen=%d", gen)
	return []byte(fmt.Sprintf("%s crc=%08x\n", body, block.Checksum([]byte(body))))
}

// parseMeta reads either the guarded form ("gen=N crc=XXXXXXXX") or the
// legacy unguarded "gen=N" written before the checksum format. Any
// mismatch or malformed content is reported as corruption: guessing at a
// generation is never acceptable.
func parseMeta(raw []byte) (uint64, error) {
	s := strings.TrimRight(string(raw), "\n")
	var gen uint64
	if i := strings.IndexByte(s, ' '); i >= 0 {
		body, guard := s[:i], s[i+1:]
		var crc uint32
		if _, err := fmt.Sscanf(guard, "crc=%08x", &crc); err != nil {
			return 0, &kv.CorruptionError{File: "META", Detail: "malformed checksum field"}
		}
		if block.Checksum([]byte(body)) != crc {
			return 0, &kv.CorruptionError{File: "META", Detail: "checksum mismatch"}
		}
		s = body
	}
	// Strict round-trip: "gen=20crc=..." (a guarded META whose space
	// rotted into a digit) must not scan as generation 20.
	if _, err := fmt.Sscanf(s, "gen=%d", &gen); err != nil || s != fmt.Sprintf("gen=%d", gen) {
		return 0, &kv.CorruptionError{File: "META", Detail: "malformed generation field"}
	}
	return gen, nil
}

// Open opens (creating if necessary) the store at dir.
func Open(dir string, opts Options) (*DB, error) {
	if opts.FS == nil {
		return nil, errors.New("btreekv: Options.FS is required")
	}
	if opts.CheckpointBytes <= 0 {
		opts.CheckpointBytes = 8 << 20
	}
	if opts.WALSync == wal.PolicyNever && opts.SyncWAL {
		opts.WALSync = wal.PolicyCommit
	}
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, err
	}
	d := &DB{opts: opts, dir: dir, dirty: bptree.New[dirtyVal]()}

	// Load the checkpoint generation from META.
	if opts.FS.Exists(metaName(dir)) {
		f, err := opts.FS.Open(metaName(dir))
		if err != nil {
			return nil, err
		}
		var buf [64]byte
		n, _ := f.ReadAt(buf[:], 0)
		f.Close()
		gen, err := parseMeta(buf[:n])
		if err != nil {
			return nil, fmt.Errorf("btreekv: corrupt META: %w", err)
		}
		d.gen = gen
	}
	// A generation can legitimately lack a checkpoint file: a checkpoint
	// whose merged content was empty (everything deleted) bumps the
	// generation without writing one.
	if d.gen > 0 && opts.FS.Exists(ckptName(dir, d.gen)) {
		f, err := opts.FS.Open(ckptName(dir, d.gen))
		if err != nil {
			return nil, err
		}
		r, err := sstable.OpenNamed(f, nil, 0, baseName(d.gen))
		if err != nil {
			f.Close()
			if !errors.Is(err, kv.ErrCorruption) {
				return nil, err
			}
			// Corrupt base, intact journal: open in base-only containment
			// (dirty hits serve, misses fail with ErrCorruption) rather
			// than refusing the whole shard — Scrub can repair the base
			// from backup without a restart.
			d.noteCorruption(err, true)
		} else {
			d.base = r
		}
	}

	// Replay the journal into the dirty tree.
	if opts.FS.Exists(walName(dir, d.gen)) {
		f, err := opts.FS.Open(walName(dir, d.gen))
		if err != nil {
			return nil, err
		}
		recs, err := wal.ReadAll(f)
		f.Close()
		if err != nil {
			if !errors.Is(err, kv.ErrCorruption) {
				return nil, err
			}
			// A complete journal record lost its bytes at rest: the
			// recovered dirty tree is a prefix, so any key may be stale.
			// Contain the whole shard — every read fails loudly until a
			// restore — instead of serving a silently-rewound state.
			d.noteCorruption(&kv.CorruptionError{
				File: fmt.Sprintf("journal-%06d.log", d.gen), Offset: -1,
				Detail: "btreekv: journal corrupt at rest; recovered state is a prefix",
			}, false)
		}
		for _, rec := range recs {
			key, val, tomb, err := decodeRec(rec.Payload)
			if err != nil {
				return nil, err
			}
			d.applyDirty(key, val, tomb)
		}
	}

	wf, err := opts.FS.Create(walName(dir, d.gen) + ".new")
	if err != nil {
		return nil, err
	}
	d.wal = wal.NewWriter(wf, d.walOpts())
	// Re-log replayed state, then swap the journal in atomically.
	reErr := error(nil)
	d.dirty.Ascend(nil, func(k []byte, v dirtyVal) bool {
		if err := d.wal.Append(0, encodeRec(k, v.val, v.tomb)); err != nil {
			reErr = err
			return false
		}
		return true
	})
	if reErr != nil {
		return nil, reErr
	}
	if err := d.wal.Sync(); err != nil {
		return nil, err
	}
	if err := opts.FS.Rename(walName(dir, d.gen)+".new", walName(dir, d.gen)); err != nil {
		return nil, err
	}
	if cerr, _ := d.corruption(); cerr != nil {
		// Writes into a shard whose recovered state is unsound only widen
		// the blast radius; degrade them (same state machine as disk-full,
		// but lifted by repair/restore rather than the space watchdog).
		d.bgErr = &degradedError{cause: cerr}
	}
	d.spaceWatch = spacewatch.New(d.diskFullDegraded, d.spaceProbe, d.autoResume, 0, 0)
	return d, nil
}

func (d *DB) walOpts() wal.Options {
	return wal.Options{Policy: d.opts.WALSync, SyncEvery: d.opts.WALSyncInterval}
}

func encodeRec(key, val []byte, tomb bool) []byte {
	b := make([]byte, 0, 5+len(key)+len(val))
	if tomb {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = append(b, byte(len(key)), byte(len(key)>>8))
	b = append(b, key...)
	return append(b, val...)
}

func decodeRec(p []byte) (key, val []byte, tomb bool, err error) {
	if len(p) < 3 {
		return nil, nil, false, errors.New("btreekv: short journal record")
	}
	tomb = p[0] == 1
	klen := int(p[1]) | int(p[2])<<8
	if 3+klen > len(p) {
		return nil, nil, false, errors.New("btreekv: truncated journal key")
	}
	key = append([]byte(nil), p[3:3+klen]...)
	val = append([]byte(nil), p[3+klen:]...)
	return key, val, tomb, nil
}

func (d *DB) applyDirty(key, val []byte, tomb bool) {
	d.dirty.Set(key, dirtyVal{val: val, tomb: tomb})
	d.dirtyB += int64(len(key) + len(val) + 16)
}

// Put implements kv.Engine. Writers serialize on the store latch — the
// behaviour Figure 23 shows p2KVS working around with instance sharding.
func (d *DB) Put(key, value []byte) error { return d.update(key, value, false) }

// Delete implements kv.Engine.
func (d *DB) Delete(key []byte) error { return d.update(key, nil, true) }

func (d *DB) update(key, value []byte, tomb bool) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return kv.ErrClosed
	}
	if d.bgErr != nil {
		// Disk-full degraded: fail writes fast; reads keep serving and
		// the watchdog resumes once space frees.
		err := d.bgErr
		d.mu.Unlock()
		return err
	}
	if cerr, _ := d.corruption(); cerr != nil {
		// Corruption detected at runtime (read path can't take the write
		// latch to install bgErr): block writes here with the same
		// degraded semantics.
		d.mu.Unlock()
		return &degradedError{cause: cerr}
	}
	if d.opts.PerUpdateCost > 0 {
		time.Sleep(d.opts.PerUpdateCost)
	}
	if err := d.wal.Append(0, encodeRec(key, value, tomb)); err != nil {
		switch {
		case vfs.IsNoSpace(err):
			// Checkpoint self-heal would write a whole new generation on
			// the same full disk; degrade instead and let the watchdog
			// re-platform at Resume.
			d.degradeLocked(err)
		case d.wal.Tainted():
			// The journal may end in a torn or unsynced record; anything
			// appended behind it would be silently dropped at replay.
			// Re-platform on a fresh checkpoint + journal (best-effort —
			// on failure the next update retries the same path).
			_ = d.checkpointLocked()
		}
		d.mu.Unlock()
		return err
	}
	d.applyDirty(append([]byte(nil), key...), append([]byte(nil), value...), tomb)
	needCkpt := d.dirtyB >= d.opts.CheckpointBytes
	if needCkpt {
		err := d.checkpointLocked()
		if err != nil && vfs.IsNoSpace(err) {
			// The write itself was acked (journal append succeeded); only
			// the reconciliation hit the full disk. Degrade so further
			// writes don't pile onto an unreconcilable dirty buffer.
			d.degradeLocked(err)
			err = nil
		}
		d.mu.Unlock()
		return err
	}
	d.mu.Unlock()
	return nil
}

// Get implements kv.Engine. Readers share the latch.
func (d *DB) Get(key []byte) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, kv.ErrClosed
	}
	if d.opts.PerReadCost > 0 {
		time.Sleep(d.opts.PerReadCost)
	}
	if cerr, baseOnly := d.corruption(); cerr != nil && !baseOnly {
		// Journal corruption: the dirty tree is a prefix, even hits may be
		// stale. Nothing in this shard is trustworthy.
		return nil, cerr
	}
	if dv, ok := d.dirty.Get(key); ok {
		if dv.tomb {
			return nil, kv.ErrNotFound
		}
		return append([]byte(nil), dv.val...), nil
	}
	if cerr, baseOnly := d.corruption(); cerr != nil && baseOnly {
		// Dirty miss with a corrupt base: the base's version (or proof of
		// absence) is unreadable — fail loudly, never guess NotFound.
		return nil, cerr
	}
	if d.base != nil {
		v, _, found, deleted, err := d.base.Get(key, ikey.MaxSeq)
		if err != nil {
			if errors.Is(err, kv.ErrCorruption) {
				d.noteCorruption(err, true)
			}
			return nil, err
		}
		if found && !deleted {
			return v, nil
		}
	}
	return nil, kv.ErrNotFound
}

// Checkpoint forces reconciliation of the dirty buffer to disk.
func (d *DB) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return kv.ErrClosed
	}
	return d.checkpointLocked()
}

// checkpointLocked merges dirty + base into a new checkpoint file,
// updates META, and truncates the journal. Caller holds the write latch
// (checkpoints stall the store, a real WiredTiger behaviour under heavy
// dirty growth).
func (d *DB) checkpointLocked() error {
	if cerr, _ := d.corruption(); cerr != nil {
		// Reconciling would read the corrupt base (or persist a rewound
		// dirty prefix) into the next generation, laundering bad data into
		// a "clean" checkpoint. Refuse until repair/restore.
		return cerr
	}
	if d.dirty.Len() == 0 && !d.wal.Tainted() {
		return nil
	}
	newGen := d.gen + 1
	f, err := d.opts.FS.Create(ckptName(d.dir, newGen))
	if err != nil {
		return err
	}
	w := sstable.NewWriter(f, newGen)

	// Merge dirty (wins) with base in key order.
	var baseIt *sstable.Iter
	if d.base != nil {
		baseIt = d.base.NewIterator()
		baseIt.SeekToFirst()
	}
	emitBaseUpTo := func(bound []byte) error {
		for baseIt != nil && baseIt.Valid() {
			uk := ikey.UserKey(baseIt.Key())
			if bound != nil && bytes.Compare(uk, bound) >= 0 {
				return nil
			}
			if err := w.Add(ikey.Make(uk, 1, ikey.KindSet), baseIt.Value()); err != nil {
				return err
			}
			baseIt.Next()
		}
		if baseIt != nil {
			return baseIt.Err()
		}
		return nil
	}
	var mergeErr error
	d.dirty.Ascend(nil, func(k []byte, v dirtyVal) bool {
		if err := emitBaseUpTo(k); err != nil {
			mergeErr = err
			return false
		}
		// Skip the base's version of k, if any.
		if baseIt != nil && baseIt.Valid() && bytes.Equal(ikey.UserKey(baseIt.Key()), k) {
			baseIt.Next()
		}
		if !v.tomb {
			if err := w.Add(ikey.Make(k, 1, ikey.KindSet), v.val); err != nil {
				mergeErr = err
				return false
			}
		}
		return true
	})
	if mergeErr == nil {
		mergeErr = emitBaseUpTo(nil)
	}
	if mergeErr != nil {
		f.Close()
		d.opts.FS.Remove(ckptName(d.dir, newGen))
		return mergeErr
	}
	if _, err := w.Finish(); err != nil {
		// An entirely-empty store (all tombstones) is legal: treat as no
		// checkpoint.
		f.Close()
		d.opts.FS.Remove(ckptName(d.dir, newGen))
		if err.Error() != "sstable: empty table" {
			return err
		}
	}
	f.Close()

	// Fresh journal for the new generation, then commit META atomically.
	wf, err := d.opts.FS.Create(walName(d.dir, newGen))
	if err != nil {
		return err
	}
	mf, err := d.opts.FS.Create(metaName(d.dir) + ".new")
	if err != nil {
		return err
	}
	mf.Write(encodeMeta(newGen))
	if err := mf.Sync(); err != nil {
		return err
	}
	mf.Close()
	if err := d.opts.FS.Rename(metaName(d.dir)+".new", metaName(d.dir)); err != nil {
		return err
	}

	// Swap in-memory state; retire the old generation.
	oldWAL, oldBase, oldGen := d.wal, d.base, d.gen
	d.wal = wal.NewWriter(wf, d.walOpts())
	d.dirty = bptree.New[dirtyVal]()
	d.dirtyB = 0
	d.gen = newGen
	if d.opts.FS.Exists(ckptName(d.dir, newGen)) {
		cf, err := d.opts.FS.Open(ckptName(d.dir, newGen))
		if err != nil {
			return err
		}
		r, err := sstable.Open(cf)
		if err != nil {
			cf.Close()
			return err
		}
		d.base = r
	} else {
		d.base = nil
	}
	oldWAL.Close()
	d.removeObsoleteLocked(walName(d.dir, oldGen))
	if oldBase != nil {
		oldBase.Close()
		d.removeObsoleteLocked(ckptName(d.dir, oldGen))
	}
	return nil
}

// removeObsoleteLocked deletes a retired generation's file, or defers the
// deletion while an online backup pins the captured generation. Caller
// holds the write latch.
func (d *DB) removeObsoleteLocked(path string) {
	if d.ckptPins > 0 {
		d.ckptDeferred = append(d.ckptDeferred, path)
		return
	}
	d.opts.FS.Remove(path)
}

// Flush implements kv.Engine (checkpoint + journal sync).
func (d *DB) Flush() error { return d.Checkpoint() }

// Caps reports no batch capabilities: WiredTiger has neither WriteBatch
// nor multiget (§4.6).
func (d *DB) Caps() kv.Caps { return kv.Caps{} }

// Metrics reports structure sizes.
type Metrics struct {
	DirtyBytes int64
	DirtyKeys  int
	Gen        uint64
}

// Metrics snapshots the store.
func (d *DB) Metrics() Metrics {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return Metrics{DirtyBytes: d.dirtyB, DirtyKeys: d.dirty.Len(), Gen: d.gen}
}

// Close implements kv.Engine.
func (d *DB) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	// Stop the watchdog without holding the latch — its predicate takes it.
	if d.spaceWatch != nil {
		d.spaceWatch.Close()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.wal.Close()
	if d.base != nil {
		d.base.Close()
	}
	return err
}

// ---------------------------------------------------------------------------
// Iterator
// ---------------------------------------------------------------------------

type iterEntry struct {
	key, val []byte
}

// NewIterator implements kv.Engine. It materializes the merged view at
// call time (the dirty tree is small by construction — bounded by
// CheckpointBytes — and the base is immutable).
func (d *DB) NewIterator() (kv.Iterator, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, kv.ErrClosed
	}
	if cerr, _ := d.corruption(); cerr != nil {
		// A scan's completeness depends on both layers; fail loudly
		// rather than silently omitting the unreadable one.
		return nil, cerr
	}
	var dirtyEntries []iterEntry
	tombs := map[string]bool{}
	d.dirty.Ascend(nil, func(k []byte, v dirtyVal) bool {
		if v.tomb {
			tombs[string(k)] = true
		} else {
			dirtyEntries = append(dirtyEntries, iterEntry{key: append([]byte(nil), k...), val: append([]byte(nil), v.val...)})
		}
		return true
	})
	var merged []iterEntry
	di := 0
	emitDirtyUpTo := func(bound []byte) {
		for di < len(dirtyEntries) && (bound == nil || bytes.Compare(dirtyEntries[di].key, bound) < 0) {
			merged = append(merged, dirtyEntries[di])
			di++
		}
	}
	if d.base != nil {
		it := d.base.NewIterator()
		for it.SeekToFirst(); it.Valid(); it.Next() {
			uk := ikey.UserKey(it.Key())
			emitDirtyUpTo(uk)
			if tombs[string(uk)] {
				continue
			}
			if di < len(dirtyEntries) && bytes.Equal(dirtyEntries[di].key, uk) {
				merged = append(merged, dirtyEntries[di])
				di++
				continue
			}
			merged = append(merged, iterEntry{key: append([]byte(nil), uk...), val: append([]byte(nil), it.Value()...)})
		}
		if err := it.Err(); err != nil {
			return nil, err
		}
	}
	emitDirtyUpTo(nil)
	return &sliceIter{entries: merged, pos: -1}, nil
}

type sliceIter struct {
	entries []iterEntry
	pos     int
}

func (it *sliceIter) Valid() bool  { return it.pos >= 0 && it.pos < len(it.entries) }
func (it *sliceIter) SeekToFirst() { it.pos = 0 }
func (it *sliceIter) Seek(target []byte) {
	for it.pos = 0; it.pos < len(it.entries); it.pos++ {
		if bytes.Compare(it.entries[it.pos].key, target) >= 0 {
			return
		}
	}
}
func (it *sliceIter) Next() {
	if it.pos < len(it.entries) {
		it.pos++
	}
}
func (it *sliceIter) Key() []byte   { return it.entries[it.pos].key }
func (it *sliceIter) Value() []byte { return it.entries[it.pos].val }
func (it *sliceIter) Error() error  { return nil }
func (it *sliceIter) Close() error  { return nil }
