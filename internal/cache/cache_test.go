package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, 0, []byte("block-a"))
	v, ok := c.Get(1, 0)
	if !ok || string(v) != "block-a" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	// Distinct ids and offsets don't alias.
	c.Put(2, 0, []byte("other-file"))
	c.Put(1, 4096, []byte("other-off"))
	if v, _ := c.Get(1, 0); string(v) != "block-a" {
		t.Fatal("entry aliased")
	}
	// Overwrite.
	c.Put(1, 0, []byte("block-a2"))
	if v, _ := c.Get(1, 0); string(v) != "block-a2" {
		t.Fatal("overwrite lost")
	}
}

func TestBudgetEviction(t *testing.T) {
	c := New(16 * 1024) // 1 KiB per shard
	for i := 0; i < 200; i++ {
		c.Put(1, uint64(i*4096), make([]byte, 512))
	}
	_, _, bytes := c.Stats()
	if bytes > 16*1024 {
		t.Fatalf("cache over budget: %d", bytes)
	}
	hits, misses, _ := c.Stats()
	_ = hits
	_ = misses
	// Recent entries should mostly survive; verify at least one of the
	// last few inserted is present.
	found := false
	for i := 195; i < 200; i++ {
		if _, ok := c.Get(1, uint64(i*4096)); ok {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("LRU evicted even the most recent entries")
	}
}

func TestLRUOrdering(t *testing.T) {
	c := New(numShards * 600) // tiny: ~1 entry per shard
	// Two entries in (likely) the same shard: touch the first, insert a
	// third; with per-entry overhead 48B + 400B values, only one fits.
	c.Put(1, 0, make([]byte, 400))
	c.Get(1, 0) // refresh
	c.Put(1, 1, make([]byte, 400))
	// The most recently used one must be resident.
	_, ok0 := c.Get(1, 0)
	_, ok1 := c.Get(1, 1)
	if !ok0 && !ok1 {
		t.Fatal("both entries evicted")
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	c.Put(1, 0, []byte("x"))
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("nil cache returned a hit")
	}
	if h, m, b := c.Stats(); h != 0 || m != 0 || b != 0 {
		t.Fatal("nil cache stats nonzero")
	}
}

func TestStatsCount(t *testing.T) {
	c := New(1 << 20)
	c.Put(1, 0, []byte("v"))
	c.Get(1, 0)
	c.Get(1, 1)
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestShardDistribution(t *testing.T) {
	// Regression: shard selection used only the top 5 bits of the mixed
	// hash ((h>>59)%16), so structured (id, offset) populations — small
	// file ids, page-aligned offsets — piled into a few shards. With the
	// full-width fold every shard must take a fair share.
	c := New(64 << 20)
	const n = 1 << 14
	counts := make(map[*shard]int, numShards)
	for id := uint64(1); id <= 16; id++ {
		for i := 0; i < n/16; i++ {
			k := key{id: id, off: uint64(i) * 4096}
			c.Put(k.id, k.off, []byte("v"))
			counts[c.shard(k)]++
		}
	}
	if len(counts) != numShards {
		t.Fatalf("only %d of %d shards used", len(counts), numShards)
	}
	avg := n / numShards
	for i := range c.shards {
		got := counts[&c.shards[i]]
		if got < avg/2 || got > avg*2 {
			t.Errorf("shard %d got %d keys, want within [%d,%d]", i, got, avg/2, avg*2)
		}
	}
}

func TestOversizedPutSkipped(t *testing.T) {
	// Regression: a value larger than the shard budget was inserted and
	// then self-evicted by the trim loop — after evicting every other
	// resident entry. It must be dropped up front instead.
	c := New(numShards * 1024) // 1 KiB per shard
	for i := 0; i < 64; i++ {
		c.Put(1, uint64(i)*4096, make([]byte, 64))
	}
	_, _, before := c.Stats()
	if before == 0 {
		t.Fatal("setup: nothing cached")
	}
	for i := 0; i < 16; i++ {
		c.Put(2, uint64(i)*4096, make([]byte, 4096)) // > any shard budget
	}
	_, _, after := c.Stats()
	if after != before {
		t.Fatalf("oversized puts churned the cache: %d -> %d bytes", before, after)
	}
	for i := 0; i < 16; i++ {
		if _, ok := c.Get(2, uint64(i)*4096); ok {
			t.Fatal("oversized value resident")
		}
	}
	// Updating an existing small entry to an oversized value drops it.
	c.Put(1, 0, make([]byte, 64))
	c.Put(1, 0, make([]byte, 4096))
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("oversized update left the entry resident")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := uint64(i % 64)
				c.Put(uint64(g), key, []byte(fmt.Sprintf("g%d-%d", g, i)))
				c.Get(uint64(g), key)
			}
		}(g)
	}
	wg.Wait()
}
