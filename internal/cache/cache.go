// Package cache implements the sharded LRU block cache the LSM engine
// puts in front of SSTable data blocks — the "8 MB block cache of each
// RocksDB instance" the paper's KVell comparison calls out (§5.5). Keys
// are (cacheID, offset) pairs; cacheIDs are per-file and never reused
// within a DB, so stale entries cannot alias.
package cache

import (
	"container/list"
	"sync"
)

const numShards = 16

// Cache is a byte-budgeted sharded LRU. Safe for concurrent use.
type Cache struct {
	shards [numShards]shard
}

type key struct {
	id  uint64
	off uint64
}

type entry struct {
	k   key
	val []byte
}

type shard struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // front = most recent
	m      map[key]*list.Element
	hits   int64
	misses int64
}

// New creates a cache with the given total byte budget. A nil *Cache is
// valid and caches nothing, so callers need no nil checks.
func New(budget int64) *Cache {
	c := &Cache{}
	per := budget / numShards
	for i := range c.shards {
		c.shards[i] = shard{budget: per, lru: list.New(), m: make(map[key]*list.Element)}
	}
	return c
}

func (c *Cache) shard(k key) *shard {
	h := k.id*0x9E3779B97F4A7C15 ^ k.off*0xC2B2AE3D27D4EB4F
	// Fold the full hash width before masking: the low bits of the
	// multiplicative mix are weak on structured inputs (small file ids,
	// page-aligned offsets), and any fixed 5-bit window skews — xor-fold
	// so every input bit reaches the shard index.
	h ^= h >> 32
	h ^= h >> 16
	return &c.shards[h&(numShards-1)]
}

// Get returns the cached block and whether it was present.
func (c *Cache) Get(id, off uint64) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	k := key{id, off}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[k]; ok {
		s.lru.MoveToFront(el)
		s.hits++
		return el.Value.(*entry).val, true
	}
	s.misses++
	return nil, false
}

// Put inserts a block. The cache takes ownership of val (callers must not
// mutate it afterwards — SSTable blocks are immutable, so this is free).
func (c *Cache) Put(id, off uint64, val []byte) {
	if c == nil {
		return
	}
	k := key{id, off}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget <= 0 {
		return
	}
	if int64(len(val))+48 > s.budget {
		// The entry could never fit: inserting it would evict the whole
		// shard and then be trimmed away itself. Drop it up front — and
		// drop any smaller cached version, which the write supersedes.
		if el, ok := s.m[k]; ok {
			e := el.Value.(*entry)
			s.lru.Remove(el)
			delete(s.m, k)
			s.used -= int64(len(e.val)) + 48
		}
		return
	}
	if el, ok := s.m[k]; ok {
		old := el.Value.(*entry)
		s.used += int64(len(val) - len(old.val))
		old.val = val
		s.lru.MoveToFront(el)
	} else {
		el := s.lru.PushFront(&entry{k: k, val: val})
		s.m[k] = el
		s.used += int64(len(val)) + 48
	}
	for s.used > s.budget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.m, e.k)
		s.used -= int64(len(e.val)) + 48
	}
}

// Stats reports aggregate hit/miss counts and resident bytes.
func (c *Cache) Stats() (hits, misses, bytes int64) {
	if c == nil {
		return 0, 0, 0
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		bytes += s.used
		s.mu.Unlock()
	}
	return hits, misses, bytes
}
