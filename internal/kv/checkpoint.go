package kv

import "p2kvs/internal/vfs"

// CheckpointFile describes one file an engine emitted into a checkpoint
// image.
type CheckpointFile struct {
	// Name is the file's path relative to the checkpoint directory the
	// engine was given in WriteTo.
	Name string
	// Restore is the path, relative to the engine's data directory, the
	// file must be materialized at when the image is restored.
	Restore string
}

// CheckpointStats is a snapshot of an engine's checkpoint activity,
// cumulative over the engine's lifetime.
type CheckpointStats struct {
	// Checkpoints counts completed engine checkpoints.
	Checkpoints int64
	// FilesLinked / FilesCopied / FilesReused break down how checkpoint
	// files were materialized: hard-linked (zero bytes moved), copied, or
	// already present in the backup set from an earlier checkpoint
	// (incremental reuse). BytesCopied counts only bytes physically
	// copied — the number the incremental path drives to zero.
	FilesLinked int64
	FilesCopied int64
	FilesReused int64
	BytesCopied int64
}

// CheckpointStatsReporter is the optional capability of reporting
// checkpoint statistics. The p2KVS accessing layer surfaces it in
// per-worker stats.
type CheckpointStatsReporter interface {
	CheckpointStats() CheckpointStats
}

// CheckpointWriter is the slow half of a two-phase engine checkpoint. It
// holds a pinned, consistent point-in-time view captured by
// PrepareCheckpoint and can materialize it while the engine keeps serving
// writes.
type CheckpointWriter interface {
	// WriteTo materializes the captured view under dir on fs and returns
	// the files making up the image. seq is the backup set's checkpoint
	// sequence number: files whose content differs between checkpoints
	// must embed it in their names, so a crashed later checkpoint can
	// never clobber files an earlier CHECKPOINT manifest references;
	// immutable files (SSTs) keep stable names and are skipped when
	// already present — the incremental path.
	WriteTo(fs vfs.FS, dir string, seq uint64) ([]CheckpointFile, error)
	// Release drops the pinned view. It must be called exactly once,
	// whether or not WriteTo succeeded, or the engine will defer file
	// deletions forever.
	Release()
}

// Checkpointer is the optional capability of participating in an online
// store-wide checkpoint. PrepareCheckpoint is called while the accessing
// layer has the engine's worker paused at a GSN barrier; it must be fast
// (capture references, sizes and positions — no bulk IO) because its
// runtime is write-stall time. The returned writer does the bulk IO after
// writes resume.
type Checkpointer interface {
	PrepareCheckpoint() (CheckpointWriter, error)
}
