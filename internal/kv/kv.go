// Package kv defines the engine contract shared by every storage engine in
// this repository (the RocksDB/LevelDB/PebblesDB-style LSM engine, the
// WiredTiger-style B+-tree engine, and the KVell-style slab engine) and
// consumed by the p2KVS framework.
//
// The interface is deliberately minimal: p2KVS (the paper's contribution)
// treats engines as black boxes and only relies on standard point
// operations plus two *optional* capabilities — batched writes and batched
// reads — which it discovers via interface assertions, mirroring §4.6 of
// the paper (OBM-write is disabled on engines without batch support).
package kv

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrNotFound is returned by Get when the key does not exist (or its most
// recent version is a tombstone).
var ErrNotFound = errors.New("kv: key not found")

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("kv: engine closed")

// ErrDegraded is the base error returned by write-type operations while an
// engine is in read-only degraded mode (background-error retries
// exhausted). Callers match it with errors.Is and may call Resume on a
// Resumer engine to re-attempt recovery.
var ErrDegraded = errors.New("kv: engine degraded to read-only")

// ErrOverloaded is returned by admission control when a request cannot be
// accepted without unbounded waiting — the target shard's queue is full
// (or the shard is degraded) under a fail-fast admission policy. The
// request was NOT enqueued; retrying after backoff is safe.
var ErrOverloaded = errors.New("kv: shard overloaded")

// ErrDeadlineExceeded is returned when a request's context expires or is
// canceled before the request reaches the engine: at submission, while
// waiting for queue space, or when the worker sheds it at dequeue. The
// operation was never applied; retrying with a fresh deadline is safe.
// Errors wrap the context cause, so errors.Is also matches
// context.DeadlineExceeded / context.Canceled as appropriate.
var ErrDeadlineExceeded = errors.New("kv: request deadline exceeded")

// ErrCorruption is the base error of every at-rest integrity failure: a
// block, page, journal record or slab slot whose stored checksum does not
// match its content. Engines return it (usually wrapped in a
// CorruptionError naming the file) instead of a wrong answer — a read that
// cannot be proven correct fails typed, it never fabricates a value and it
// never panics.
var ErrCorruption = errors.New("kv: data corruption detected")

// CorruptionError pinpoints one integrity failure: which file, where in
// it, and what check failed. It matches ErrCorruption under errors.Is.
type CorruptionError struct {
	// File is the engine-relative path of the damaged file.
	File string
	// Offset is the byte offset of the damaged region within File, -1 when
	// the failure is not offset-specific (e.g. a truncated footer).
	Offset int64
	// Detail describes the failed check ("block crc mismatch", ...).
	Detail string
}

func (e *CorruptionError) Error() string {
	if e.Offset >= 0 {
		return fmt.Sprintf("kv: data corruption detected: %s @%d: %s", e.File, e.Offset, e.Detail)
	}
	return fmt.Sprintf("kv: data corruption detected: %s: %s", e.File, e.Detail)
}

// Is makes errors.Is(err, ErrCorruption) match any CorruptionError.
func (e *CorruptionError) Is(target error) bool { return target == ErrCorruption }

// HealthState is the background-error state of an engine.
type HealthState int32

// Engine health states, ordered by severity.
const (
	// StateHealthy: no outstanding background error.
	StateHealthy HealthState = iota
	// StateRetrying: a background job (flush/compaction) failed and is
	// being retried with backoff; writes still succeed.
	StateRetrying
	// StateReadOnly: retries were exhausted; writes fail fast with
	// ErrDegraded until Resume succeeds. Reads keep working.
	StateReadOnly
)

func (s HealthState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateRetrying:
		return "retrying"
	case StateReadOnly:
		return "read-only"
	}
	return "unknown"
}

// Health is a snapshot of an engine's background-error condition.
type Health struct {
	State HealthState
	// Err is the background error that caused a non-healthy state; nil
	// when State is StateHealthy.
	Err error
	// FlushRetries / CompactRetries count background job attempts beyond
	// the first, cumulative over the engine's lifetime.
	FlushRetries   int64
	CompactRetries int64
	// InjectedFaults counts faults fired by a fault-injecting filesystem
	// under the engine, when one is present (vfs.FaultCounter); 0 otherwise.
	InjectedFaults int64
	// DiskFull reports that the current degraded state was caused by
	// space exhaustion (ENOSPC): reads keep working, writes fail, and the
	// engine's watchdog will auto-Resume once space frees. Always false
	// when State is StateHealthy.
	DiskFull bool
	// DiskFullEvents counts transitions into disk-full degraded mode over
	// the engine's lifetime; AutoResumes counts how many times the space
	// watchdog brought the engine back without an explicit Resume call.
	DiskFullEvents int64
	AutoResumes    int64
	// CorruptionEvents counts at-rest integrity failures detected over the
	// engine's lifetime (checksum mismatches on reads, scrubs or recovery).
	CorruptionEvents int64
	// QuarantinedFiles is the number of files currently quarantined:
	// detected corrupt and fenced off so reads covering them fail with
	// ErrCorruption while the rest of the keyspace keeps serving.
	QuarantinedFiles int64
	// RepairedFiles counts quarantined files restored from a verified
	// backup copy and returned to service.
	RepairedFiles int64
	// LastCorruption is the most recent corruption error, nil when none
	// has ever been detected (it is informational and does not imply the
	// engine is still degraded — the file may have been repaired).
	LastCorruption error
}

// HealthReporter is the optional capability of reporting background-error
// health. The p2KVS accessing layer surfaces it in per-worker stats.
type HealthReporter interface {
	Health() Health
}

// CompactionStats is a snapshot of an engine's compaction-scheduler and
// write-backpressure activity.
type CompactionStats struct {
	// StallTime is cumulative time writers spent hard-blocked on L0/flush
	// backpressure; SlowdownTime is cumulative time spent in soft-slowdown
	// sleeps below the stall threshold. Slowdowns counts delayed writes.
	StallTime    time.Duration
	SlowdownTime time.Duration
	Slowdowns    int64
	// Compactions counts installed compactions; Subcompactions counts
	// key-range splits executed inside them; MaxConcurrent is the
	// high-water mark of compactions running at once.
	Compactions    int64
	Subcompactions int64
	MaxConcurrent  int64
}

// CompactionStatsReporter is the optional capability of reporting
// compaction and backpressure statistics. The p2KVS accessing layer
// surfaces it in per-worker stats.
type CompactionStatsReporter interface {
	CompactionStats() CompactionStats
}

// RateLimiter throttles bulk IO (the scrub read path) to a byte budget.
// WaitN blocks until n bytes of budget are available or ctx is done; a nil
// RateLimiter means unthrottled. internal/scrub provides the token-bucket
// implementation.
type RateLimiter interface {
	WaitN(ctx context.Context, n int) error
}

// ScrubResult summarizes one integrity scrub pass over an engine.
type ScrubResult struct {
	// FilesScanned / BytesScanned measure the verified surface.
	FilesScanned int64
	BytesScanned int64
	// CorruptionsFound counts files that failed verification during this
	// pass (each is quarantined); FilesRepaired counts those restored from
	// backup during the same pass.
	CorruptionsFound int64
	FilesRepaired    int64
}

// Merge accumulates another result into r.
func (r *ScrubResult) Merge(o ScrubResult) {
	r.FilesScanned += o.FilesScanned
	r.BytesScanned += o.BytesScanned
	r.CorruptionsFound += o.CorruptionsFound
	r.FilesRepaired += o.FilesRepaired
}

// Scrubber is the optional capability of proactively verifying every live
// at-rest byte against its stored checksums. Scrub walks the engine's
// files, reading through lim (nil = unthrottled); corrupt files are
// quarantined (and repaired when a RepairSource covers them) exactly as if
// a foreground read had tripped over them. Scrub returns an error only for
// infrastructure failures (engine closed, ctx done) — finding corruption
// is a successful scrub, reported in the result.
type Scrubber interface {
	Scrub(ctx context.Context, lim RateLimiter) (ScrubResult, error)
}

// RepairSource is the optional backup side-channel engines consult to
// repair a quarantined file: Fetch returns the verified content of the
// named file from the newest backup generation, or false when the backup
// does not cover it. Implementations must verify the bytes against the
// backup's own checksums before returning them.
type RepairSource interface {
	Fetch(name string) ([]byte, bool)
}

// Resumer is the optional capability of re-attempting recovery from
// degraded read-only mode.
type Resumer interface {
	// Resume clears the degraded state and re-kicks background work. It
	// returns an error only if the engine is closed; whether recovery
	// ultimately succeeds is observable via Health.
	Resume() error
}

// Engine is the minimal synchronous key-value store contract.
type Engine interface {
	// Put inserts or overwrites a key.
	Put(key, value []byte) error
	// Get returns the value for key, or ErrNotFound.
	// The returned slice is owned by the caller.
	Get(key []byte) ([]byte, error)
	// Delete removes a key. Deleting an absent key is not an error.
	Delete(key []byte) error
	// NewIterator returns an iterator over the live keys in ascending
	// order. The iterator observes a consistent snapshot of the store.
	NewIterator() (Iterator, error)
	// Flush forces all buffered writes down to the persistent substrate.
	Flush() error
	// Close releases all resources. The engine must not be used after.
	Close() error
}

// BatchWriter is the optional capability of committing several write-type
// operations atomically with a single journal IO (RocksDB/LevelDB
// WriteBatch). Engines lacking it (e.g. the WiredTiger-style engine) make
// p2KVS fall back to per-request writes.
type BatchWriter interface {
	// Write applies the batch atomically.
	Write(batch *Batch) error
}

// MultiGetter is the optional capability of resolving several point
// lookups in one call (RocksDB multiget). p2KVS's OBM uses it for
// read-type batched requests.
type MultiGetter interface {
	// MultiGet returns one value slot per key; a nil slot means the key
	// was not found. The error reports infrastructure failures only.
	MultiGet(keys [][]byte) ([][]byte, error)
}

// Caps describes which optional capabilities an engine supports under its
// *current configuration*. Interface assertions only reveal what methods
// exist; Caps lets a configurable engine (e.g. the LSM engine with
// MultiGet disabled to model LevelDB) report what is actually usable.
type Caps struct {
	BatchWrite bool
	MultiGet   bool
}

// CapabilityReporter is implemented by engines that report their
// configured capabilities. p2KVS consults it before enabling OBM's batch
// paths; engines without it are probed via interface assertions.
type CapabilityReporter interface {
	Caps() Caps
}

// CapsOf determines an engine's capabilities, preferring its own report.
func CapsOf(e Engine) Caps {
	if r, ok := e.(CapabilityReporter); ok {
		return r.Caps()
	}
	var c Caps
	if _, ok := e.(BatchWriter); ok {
		c.BatchWrite = true
	}
	if _, ok := e.(MultiGetter); ok {
		c.MultiGet = true
	}
	return c
}

// Syncer is the optional capability of exposing durability control.
type Syncer interface {
	// Sync persists the journal up to the last acknowledged write.
	Sync() error
}

// Iterator walks keys in ascending byte order.
//
// Usage:
//
//	it, _ := db.NewIterator()
//	defer it.Close()
//	for it.SeekToFirst(); it.Valid(); it.Next() { ... }
type Iterator interface {
	// Valid reports whether the iterator is positioned at a live entry.
	Valid() bool
	// SeekToFirst positions at the smallest key.
	SeekToFirst()
	// Seek positions at the first key >= target.
	Seek(target []byte)
	// Next advances to the following key.
	Next()
	// Key returns the current key. Valid until the next positioning call.
	Key() []byte
	// Value returns the current value. Valid until the next positioning call.
	Value() []byte
	// Error returns the first IO error encountered, if any.
	Error() error
	// Close releases iterator resources.
	Close() error
}

// OpKind discriminates write-type operations inside a Batch.
type OpKind uint8

// Batch operation kinds.
const (
	OpPut OpKind = iota + 1
	OpDelete
)

// BatchOp is a single operation recorded in a Batch.
type BatchOp struct {
	Kind  OpKind
	Key   []byte
	Value []byte // nil for OpDelete
}

// Batch accumulates write-type operations to be applied atomically by a
// BatchWriter. The zero value is an empty, usable batch.
type Batch struct {
	ops  []BatchOp
	size int
}

// Put appends an insert/overwrite to the batch.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, BatchOp{Kind: OpPut, Key: key, Value: value})
	b.size += len(key) + len(value)
}

// Delete appends a deletion to the batch.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, BatchOp{Kind: OpDelete, Key: key})
	b.size += len(key)
}

// Append copies all operations from other into b.
func (b *Batch) Append(other *Batch) {
	b.ops = append(b.ops, other.ops...)
	b.size += other.size
}

// Ops exposes the recorded operations in insertion order.
func (b *Batch) Ops() []BatchOp { return b.ops }

// Len reports the number of operations in the batch.
func (b *Batch) Len() int { return len(b.ops) }

// Size reports the accumulated key+value byte size, used for batching
// heuristics and group-commit accounting.
func (b *Batch) Size() int { return b.size }

// Reset empties the batch for reuse.
func (b *Batch) Reset() {
	b.ops = b.ops[:0]
	b.size = 0
}
