package workload

import (
	"bytes"
	"math"
	"sync/atomic"
	"testing"
)

func TestKeyFormat(t *testing.T) {
	k := Key(42)
	if len(k) != 16 {
		t.Fatalf("key len = %d, want 16", len(k))
	}
	if string(k) != "user000000000042" {
		t.Fatalf("key = %q", k)
	}
	// Keys sort by index.
	if !(string(Key(9)) < string(Key(10)) && string(Key(99)) < string(Key(100))) {
		t.Fatal("keys do not sort numerically")
	}
}

func TestValueDeterministicAndSized(t *testing.T) {
	v1 := Value(7, 128)
	v2 := Value(7, 128)
	v3 := Value(8, 128)
	if len(v1) != 128 {
		t.Fatalf("len = %d", len(v1))
	}
	if !bytes.Equal(v1, v2) {
		t.Fatal("value not deterministic")
	}
	if bytes.Equal(v1, v3) {
		t.Fatal("different keys produced identical values")
	}
	if len(Value(1, 13)) != 13 {
		t.Fatal("odd sizes must work")
	}
}

func TestUniformInRange(t *testing.T) {
	u := NewUniform(100, 1)
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		v := u.Next()
		if v >= 100 {
			t.Fatalf("out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform covered only %d/100 values", len(seen))
	}
}

func TestSequentialWraps(t *testing.T) {
	s := NewSequential(3)
	got := []uint64{s.Next(), s.Next(), s.Next(), s.Next()}
	want := []uint64{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v", got)
		}
	}
}

func TestZipfianSkewAndRange(t *testing.T) {
	z := NewZipfian(10000, 42)
	counts := map[uint64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 10000 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// Zipfian must be skewed: the most popular item should take far more
	// than the uniform share (10 of 100000).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Fatalf("hottest key only %d hits — not zipfian", max)
	}
	// But scrambling must spread hot keys: distinct values should still
	// be numerous.
	if len(counts) < 2000 {
		t.Fatalf("only %d distinct keys drawn", len(counts))
	}
}

func TestLatestFavorsRecent(t *testing.T) {
	var frontier atomic.Uint64
	frontier.Store(10000)
	l := NewLatest(&frontier, 7)
	recent, n := 0, 50000
	for i := 0; i < n; i++ {
		v := l.Next()
		if v >= 10000 {
			t.Fatalf("latest out of range: %d", v)
		}
		if v >= 9000 {
			recent++
		}
	}
	// The newest 10% of keys must receive well over 10% of accesses.
	if float64(recent)/float64(n) < 0.3 {
		t.Fatalf("latest not skewed to recent: %.2f%%", 100*float64(recent)/float64(n))
	}
	// Frontier growth shifts the distribution.
	frontier.Store(20000)
	if v := l.Next(); v >= 20000 {
		t.Fatalf("latest ignored frontier growth: %d", v)
	}
}

func TestLatestEmptyFrontier(t *testing.T) {
	var frontier atomic.Uint64
	l := NewLatest(&frontier, 1)
	if v := l.Next(); v != 0 {
		t.Fatalf("empty frontier must yield 0, got %d", v)
	}
}

func TestMicroKinds(t *testing.T) {
	for _, kind := range []MicroKind{FillSeq, FillRandom, UpdateRandom, ReadSeq, ReadRandom} {
		c := Micro(kind, 1000, 1)
		for i := 0; i < 100; i++ {
			if v := c.Next(); v >= 1000 {
				t.Fatalf("%s out of range: %d", kind, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind must panic")
		}
	}()
	Micro("bogus", 10, 1)
}

func TestZetaApproximation(t *testing.T) {
	// The sampled zeta for large n must be close to brute force.
	exact := 0.0
	const n = 200000
	for i := 1; i <= n; i++ {
		exact += 1 / math.Pow(float64(i), ZipfTheta)
	}
	approx := zeta(n, ZipfTheta)
	if diff := (approx - exact) / exact; diff > 0.02 || diff < -0.02 {
		t.Fatalf("zeta approximation off by %.2f%%", diff*100)
	}
}
