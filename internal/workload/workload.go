// Package workload generates the benchmark key/value streams: the
// db_bench-style micro-benchmarks (fillseq, fillrandom, updaterandom,
// readseq, readrandom, scan) and the key-choice distributions YCSB needs
// (uniform, YCSB-standard scrambled zipfian with theta 0.99, and
// "latest").
package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
)

// Key renders key index i as a fixed-width 16-byte key (db_bench style).
func Key(i uint64) []byte {
	return []byte(fmt.Sprintf("user%012d", i))
}

// Value produces a deterministic pseudo-random value of the given size
// for key index i, so validation can recompute expected contents.
func Value(i uint64, size int) []byte {
	v := make([]byte, size)
	var state uint64 = i*0x9E3779B97F4A7C15 + 1
	for off := 0; off < size; off += 8 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], state)
		copy(v[off:], b[:])
	}
	return v
}

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

// Chooser selects key indexes in [0, n).
type Chooser interface {
	Next() uint64
}

// Uniform picks uniformly.
type Uniform struct {
	n uint64
	r *rand.Rand
}

// NewUniform creates a uniform chooser over [0, n).
func NewUniform(n uint64, seed int64) *Uniform {
	return &Uniform{n: n, r: rand.New(rand.NewSource(seed))}
}

// Next implements Chooser.
func (u *Uniform) Next() uint64 { return u.r.Uint64() % u.n }

// Sequential walks 0, 1, 2, … (wrapping at n).
type Sequential struct {
	n   uint64
	cur atomic.Uint64
}

// NewSequential creates a sequential chooser over [0, n).
func NewSequential(n uint64) *Sequential { return &Sequential{n: n} }

// Next implements Chooser.
func (s *Sequential) Next() uint64 { return (s.cur.Add(1) - 1) % s.n }

// Zipfian is the YCSB-standard zipfian generator (theta = 0.99 by
// default) with scrambling, so the hot items are spread over the key
// space rather than clustered at low indexes.
type Zipfian struct {
	n            uint64
	theta        float64
	alpha        float64
	zetan, zeta2 float64
	eta          float64
	r            *rand.Rand
	scramble     bool
}

// ZipfTheta is YCSB's default skew.
const ZipfTheta = 0.99

// NewZipfian creates a scrambled zipfian chooser over [0, n).
func NewZipfian(n uint64, seed int64) *Zipfian {
	return newZipf(n, ZipfTheta, seed, true)
}

func newZipf(n uint64, theta float64, seed int64, scramble bool) *Zipfian {
	z := &Zipfian{n: n, theta: theta, r: rand.New(rand.NewSource(seed)), scramble: scramble}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// Exact for small n; sampled approximation for large n (the classic
	// YCSB implementation precomputes; sampling keeps setup O(1e5) while
	// staying within ~1% of the true zeta).
	const exactLimit = 100000
	if n <= exactLimit {
		sum := 0.0
		for i := uint64(1); i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	sum := zeta(exactLimit, theta)
	// Integral approximation of the tail.
	sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(exactLimit), 1-theta)) / (1 - theta)
	return sum
}

// Next implements Chooser.
func (z *Zipfian) Next() uint64 {
	u := z.r.Float64()
	uz := u * z.zetan
	var v uint64
	switch {
	case uz < 1.0:
		v = 0
	case uz < 1.0+math.Pow(0.5, z.theta):
		v = 1
	default:
		v = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if v >= z.n {
		v = z.n - 1
	}
	if z.scramble {
		return scramble64(v) % z.n
	}
	return v
}

// scramble64 is the murmur3 finalizer — a full-entropy bijection on
// uint64, so scrambled zipfian spreads the hot items across the whole key
// space (YCSB's ScrambledZipfian behaviour).
func scramble64(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// Latest favours recently inserted keys (YCSB workload D): it draws a
// zipfian offset back from the current insertion frontier.
type Latest struct {
	frontier *atomic.Uint64 // shared with the inserter
	z        *Zipfian
}

// NewLatest creates a latest chooser whose frontier tracks insertCount.
func NewLatest(insertCount *atomic.Uint64, seed int64) *Latest {
	return &Latest{
		frontier: insertCount,
		z:        newZipf(1<<40, ZipfTheta, seed, false),
	}
}

// Next implements Chooser.
func (l *Latest) Next() uint64 {
	n := l.frontier.Load()
	if n == 0 {
		return 0
	}
	off := l.z.Next() % n
	return n - 1 - off
}

// ---------------------------------------------------------------------------
// Micro-benchmark op streams (db_bench)
// ---------------------------------------------------------------------------

// MicroKind names a db_bench workload.
type MicroKind string

// db_bench workloads used in Figures 1, 5, 12, 14, 15, 22, 23.
const (
	FillSeq      MicroKind = "fillseq"
	FillRandom   MicroKind = "fillrandom"
	UpdateRandom MicroKind = "updaterandom"
	ReadSeq      MicroKind = "readseq"
	ReadRandom   MicroKind = "readrandom"
)

// Micro yields key indexes for a db_bench workload over n keys.
// For fill/update workloads every index should be written; for read
// workloads the store is assumed pre-loaded with [0, n).
func Micro(kind MicroKind, n uint64, seed int64) Chooser {
	switch kind {
	case FillSeq, ReadSeq:
		return NewSequential(n)
	case FillRandom:
		// A random permutation stream: uniform without replacement is
		// approximated by uniform (matching db_bench fillrandom, which
		// writes random keys allowing overwrites).
		return NewUniform(n, seed)
	case UpdateRandom, ReadRandom:
		return NewUniform(n, seed)
	default:
		panic("workload: unknown micro kind " + string(kind))
	}
}
