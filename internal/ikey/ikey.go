// Package ikey defines the internal key encoding shared by the memtable,
// SSTables and the LSM engine: userkey ++ 8-byte trailer (seq<<8 | kind),
// ordered by user key ascending then sequence number descending, so the
// newest version of a key is encountered first — the classic
// LevelDB/RocksDB scheme.
package ikey

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Kind tags the operation a version represents.
type Kind uint8

// Version kinds. KindDelete sorts below KindSet at equal seq, which never
// happens in practice (seqs are unique); values chosen so larger trailer =
// newer.
const (
	KindDelete Kind = 0
	KindSet    Kind = 1
)

// MaxSeq is the largest representable sequence number (56 bits).
const MaxSeq = uint64(1)<<56 - 1

// TrailerLen is the encoded trailer size in bytes.
const TrailerLen = 8

// Encode appends the internal key for (ukey, seq, kind) to dst.
func Encode(dst, ukey []byte, seq uint64, kind Kind) []byte {
	dst = append(dst, ukey...)
	var t [TrailerLen]byte
	binary.LittleEndian.PutUint64(t[:], seq<<8|uint64(kind))
	return append(dst, t[:]...)
}

// Make allocates and returns the internal key for (ukey, seq, kind).
func Make(ukey []byte, seq uint64, kind Kind) []byte {
	return Encode(make([]byte, 0, len(ukey)+TrailerLen), ukey, seq, kind)
}

// UserKey returns the user-key prefix of an internal key.
func UserKey(ik []byte) []byte { return ik[:len(ik)-TrailerLen] }

// Decode splits an internal key into its parts.
func Decode(ik []byte) (ukey []byte, seq uint64, kind Kind, err error) {
	if len(ik) < TrailerLen {
		return nil, 0, 0, fmt.Errorf("ikey: too short (%d bytes)", len(ik))
	}
	t := binary.LittleEndian.Uint64(ik[len(ik)-TrailerLen:])
	return ik[:len(ik)-TrailerLen], t >> 8, Kind(t & 0xff), nil
}

// Compare orders internal keys: user key ascending, then trailer
// descending (newer versions first).
func Compare(a, b []byte) int {
	au, bu := UserKey(a), UserKey(b)
	if c := bytes.Compare(au, bu); c != 0 {
		return c
	}
	at := binary.LittleEndian.Uint64(a[len(a)-TrailerLen:])
	bt := binary.LittleEndian.Uint64(b[len(b)-TrailerLen:])
	switch {
	case at > bt:
		return -1
	case at < bt:
		return 1
	}
	return 0
}

// SeekKey returns the internal key that positions an iterator at the
// newest version of ukey visible at snapshot seq.
func SeekKey(ukey []byte, seq uint64) []byte {
	return Make(ukey, seq, KindSet)
}
