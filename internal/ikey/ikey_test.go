package ikey

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	fn := func(ukey []byte, seq uint64, isSet bool) bool {
		seq &= MaxSeq
		kind := KindDelete
		if isSet {
			kind = KindSet
		}
		ik := Make(ukey, seq, kind)
		gu, gs, gk, err := Decode(ik)
		return err == nil && bytes.Equal(gu, ukey) && gs == seq && gk == kind &&
			bytes.Equal(UserKey(ik), ukey)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShort(t *testing.T) {
	if _, _, _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error for short key")
	}
}

func TestCompareUserKeyDominates(t *testing.T) {
	a := Make([]byte("aaa"), 1, KindSet)
	b := Make([]byte("bbb"), 100, KindSet)
	if Compare(a, b) >= 0 {
		t.Fatal("user key must dominate ordering")
	}
}

func TestCompareNewerFirst(t *testing.T) {
	older := Make([]byte("k"), 5, KindSet)
	newer := Make([]byte("k"), 9, KindSet)
	if Compare(newer, older) >= 0 {
		t.Fatal("newer version must sort before older")
	}
	// Delete at same seq sorts after set (kind is low bits).
	del := Make([]byte("k"), 5, KindDelete)
	if Compare(older, del) >= 0 {
		t.Fatal("set must sort before delete at equal seq")
	}
	same := Make([]byte("k"), 5, KindSet)
	if Compare(older, same) != 0 {
		t.Fatal("identical keys must compare equal")
	}
}

func TestSeekKeyFindsNewestVisible(t *testing.T) {
	// SeekKey(k, snapshotSeq) must sort <= every version with seq <=
	// snapshot and > every version with seq > snapshot.
	k := []byte("key")
	snapshot := uint64(50)
	seek := SeekKey(k, snapshot)
	visible := Make(k, 50, KindSet)
	tooNew := Make(k, 51, KindSet)
	oldv := Make(k, 10, KindSet)
	if Compare(seek, visible) > 0 {
		t.Fatal("seek key must not skip the version at the snapshot")
	}
	if Compare(seek, oldv) > 0 {
		t.Fatal("seek key must not skip older versions")
	}
	if Compare(seek, tooNew) <= 0 {
		t.Fatal("seek key must sort after too-new versions")
	}
}
