// Package histogram provides the latency histograms behind the paper's
// average/p99 plots (Figure 13) and the db_bench-style summaries. It uses
// exponential buckets (~4.6% relative error) so recording is a couple of
// atomic adds and safe for concurrent writers.
package histogram

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

const (
	// bucketsPerDecade controls resolution: 51 buckets per 10x range.
	bucketsPerDecade = 51
	numBuckets       = 8 * bucketsPerDecade // covers 1ns .. ~100s
)

var bucketUpper [numBuckets]float64

func init() {
	for i := range bucketUpper {
		bucketUpper[i] = math.Pow(10, float64(i+1)/bucketsPerDecade)
	}
}

// H is a concurrent latency histogram. The zero value is ready to use.
type H struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64
}

// Record adds one sample.
func (h *H) Record(d time.Duration) {
	ns := int64(d)
	if ns < 1 {
		ns = 1
	}
	idx := int(math.Log10(float64(ns)) * bucketsPerDecade)
	if idx < 0 {
		idx = 0
	}
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *H) Count() int64 { return h.count.Load() }

// Mean returns the average sample.
func (h *H) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest sample.
func (h *H) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the q-quantile (q in [0,1]), e.g. 0.99 for p99.
func (h *H) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.counts[i].Load()
		if cum > target {
			return time.Duration(bucketUpper[i])
		}
	}
	return h.Max()
}

// Merge adds other's samples into h.
func (h *H) Merge(other *H) {
	for i := 0; i < numBuckets; i++ {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	om := other.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
}

// Reset zeroes the histogram.
func (h *H) Reset() {
	for i := 0; i < numBuckets; i++ {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Summary is a fixed-quantile snapshot of a histogram with a stable JSON
// encoding, shared by the network server's INFO / /metrics output and the
// benchmark overload summaries. All durations are microseconds.
type Summary struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
}

// Summary captures the histogram's count, mean and p50/p95/p99/max.
func (h *H) Summary() Summary {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return Summary{
		Count:  h.Count(),
		MeanUs: us(h.Mean()),
		P50Us:  us(h.Quantile(0.50)),
		P95Us:  us(h.Quantile(0.95)),
		P99Us:  us(h.Quantile(0.99)),
		MaxUs:  us(h.Max()),
	}
}

// String summarizes the distribution.
func (h *H) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p999=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.Max())
}
