// Package histogram provides the latency histograms behind the paper's
// average/p99 plots (Figure 13) and the db_bench-style summaries. It uses
// exponential buckets (~4.6% relative error) so recording is a couple of
// atomic adds and safe for concurrent writers.
package histogram

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// bucketsPerDecade controls resolution: 51 buckets per 10x range.
	bucketsPerDecade = 51
	numBuckets       = 8 * bucketsPerDecade // covers 1ns .. ~100s
)

var (
	bucketUpper [numBuckets]float64
	// bucketLimit[i] is the largest ns value mapping to bucket i under the
	// log10 formula; bucketIndex resolves a sample against it with integer
	// compares only, keeping math.Log10 off the per-sample hot path.
	bucketLimit [numBuckets]int64
	// lenBase[b] is the first bucket a value with bit length b can fall
	// into, bounding bucketIndex's forward scan to one bit's worth of
	// buckets (51/log2(10) ≈ 16 compares worst case).
	lenBase [65]int16
)

// logBucket is the reference bucket mapping: the formula Record used to
// evaluate per sample. Kept for table construction and equivalence tests.
func logBucket(ns int64) int {
	idx := int(math.Log10(float64(ns)) * bucketsPerDecade)
	if idx < 0 {
		idx = 0
	}
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

func init() {
	for i := range bucketUpper {
		bucketUpper[i] = math.Pow(10, float64(i+1)/bucketsPerDecade)
	}
	for i := range bucketLimit {
		if i == numBuckets-1 {
			bucketLimit[i] = math.MaxInt64
			break
		}
		// Seed near the analytic boundary, then nudge until the reference
		// mapping agrees exactly — float rounding in Log10/Pow can put the
		// true boundary one or two integers off the seed.
		n := int64(math.Pow(10, float64(i+1)/bucketsPerDecade))
		if n < 1 {
			n = 1
		}
		for logBucket(n) > i {
			n--
		}
		for logBucket(n+1) <= i {
			n++
		}
		bucketLimit[i] = n
	}
	for b := 1; b <= 64; b++ {
		lo := int64(1) << (b - 1) // smallest value with bit length b
		idx := 0
		for idx < numBuckets-1 && bucketLimit[idx] < lo {
			idx++
		}
		lenBase[b] = int16(idx)
	}
}

// bucketIndex maps a sample (ns >= 1) to its bucket using the
// precomputed tables; exactly equivalent to logBucket.
func bucketIndex(ns int64) int {
	idx := int(lenBase[bits.Len64(uint64(ns))])
	for ns > bucketLimit[idx] {
		idx++
	}
	return idx
}

// H is a concurrent latency histogram. The zero value is ready to use.
type H struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64
}

// Record adds one sample.
func (h *H) Record(d time.Duration) {
	ns := int64(d)
	if ns < 1 {
		ns = 1
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *H) Count() int64 { return h.count.Load() }

// Mean returns the average sample.
func (h *H) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest sample.
func (h *H) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the q-quantile (q in [0,1]), e.g. 0.99 for p99.
func (h *H) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.counts[i].Load()
		if cum > target {
			return time.Duration(bucketUpper[i])
		}
	}
	return h.Max()
}

// Merge adds other's samples into h.
func (h *H) Merge(other *H) {
	for i := 0; i < numBuckets; i++ {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	om := other.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
}

// Reset zeroes the histogram.
func (h *H) Reset() {
	for i := 0; i < numBuckets; i++ {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Summary is a fixed-quantile snapshot of a histogram with a stable JSON
// encoding, shared by the network server's INFO / /metrics output and the
// benchmark overload summaries. All durations are microseconds.
type Summary struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
}

// Summary captures the histogram's count, mean and p50/p95/p99/max.
func (h *H) Summary() Summary {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return Summary{
		Count:  h.Count(),
		MeanUs: us(h.Mean()),
		P50Us:  us(h.Quantile(0.50)),
		P95Us:  us(h.Quantile(0.95)),
		P99Us:  us(h.Quantile(0.99)),
		MaxUs:  us(h.Max()),
	}
}

// String summarizes the distribution.
func (h *H) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p999=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.Max())
}
