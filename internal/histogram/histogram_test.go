package histogram

import (
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBasicStats(t *testing.T) {
	var h H
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 45*time.Microsecond || mean > 56*time.Microsecond {
		t.Fatalf("mean = %v, want ~50.5us", mean)
	}
	if h.Max() != 100*time.Microsecond {
		t.Fatalf("max = %v", h.Max())
	}
	p50 := h.Quantile(0.5)
	if p50 < 40*time.Microsecond || p50 > 62*time.Microsecond {
		t.Fatalf("p50 = %v, want ~50us (±bucket error)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 90*time.Microsecond || p99 > 115*time.Microsecond {
		t.Fatalf("p99 = %v, want ~99us", p99)
	}
}

func TestQuantileMonotonic(t *testing.T) {
	var h H
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(r.Intn(1_000_000)+1) * time.Nanosecond)
	}
	prev := time.Duration(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}

func TestRelativeError(t *testing.T) {
	// Exponential buckets guarantee bounded relative error; verify the
	// p50 of a point mass lands within ~5%.
	var h H
	for i := 0; i < 1000; i++ {
		h.Record(123456 * time.Nanosecond)
	}
	got := float64(h.Quantile(0.5))
	want := 123456.0
	if got < want*0.95 || got > want*1.10 {
		t.Fatalf("point mass p50 = %v, want within 10%% of %v", got, want)
	}
}

func TestMergeAndReset(t *testing.T) {
	var a, b H
	a.Record(time.Millisecond)
	b.Record(2 * time.Millisecond)
	b.Record(3 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 3*time.Millisecond {
		t.Fatalf("merged max = %v", a.Max())
	}
	a.Reset()
	if a.Count() != 0 || a.Max() != 0 || a.Mean() != 0 {
		t.Fatal("reset did not zero histogram")
	}
}

func TestZeroAndHugeSamples(t *testing.T) {
	var h H
	h.Record(0)
	h.Record(time.Hour * 1000)
	if h.Count() != 2 {
		t.Fatal("samples lost")
	}
	if h.Quantile(0.0) <= 0 {
		t.Fatal("zero-duration sample should clamp to >= 1ns")
	}
}

func TestConcurrentRecord(t *testing.T) {
	var h H
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(r.Intn(10000) + 1))
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestString(t *testing.T) {
	var h H
	h.Record(time.Microsecond)
	if s := h.String(); s == "" {
		t.Fatal("empty summary")
	}
}

func TestSummary(t *testing.T) {
	var h H
	sum := h.Summary()
	if sum.Count != 0 || sum.MeanUs != 0 || sum.P99Us != 0 || sum.MaxUs != 0 {
		t.Fatalf("empty summary not zero: %+v", sum)
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	sum = h.Summary()
	if sum.Count != 100 {
		t.Fatalf("summary count = %d", sum.Count)
	}
	if sum.MeanUs < 45 || sum.MeanUs > 56 {
		t.Fatalf("summary mean = %vus, want ~50.5us", sum.MeanUs)
	}
	if sum.P50Us < 40 || sum.P50Us > 62 {
		t.Fatalf("summary p50 = %vus", sum.P50Us)
	}
	if sum.P50Us > sum.P95Us || sum.P95Us > sum.P99Us || sum.P99Us > sum.MaxUs*1.05 {
		t.Fatalf("summary quantiles not monotonic: %+v", sum)
	}
	if sum.MaxUs != 100 {
		t.Fatalf("summary max = %vus, want 100", sum.MaxUs)
	}
	raw, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"count"`, `"mean_us"`, `"p50_us"`, `"p95_us"`, `"p99_us"`, `"max_us"`} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("summary JSON missing %s: %s", key, raw)
		}
	}
}

// TestBucketIndexEquivalence verifies the bits.Len64 table lookup agrees
// with the reference log10 mapping for every small value, around every
// bucket boundary, and on random 63-bit samples.
func TestBucketIndexEquivalence(t *testing.T) {
	check := func(ns int64) {
		t.Helper()
		if got, want := bucketIndex(ns), logBucket(ns); got != want {
			t.Fatalf("bucketIndex(%d) = %d, logBucket = %d", ns, got, want)
		}
	}
	for ns := int64(1); ns <= 200000; ns++ {
		check(ns)
	}
	for i := 0; i < numBuckets-1; i++ {
		for _, ns := range []int64{bucketLimit[i] - 1, bucketLimit[i], bucketLimit[i] + 1, bucketLimit[i] + 2} {
			if ns >= 1 {
				check(ns)
			}
		}
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1_000_000; i++ {
		check(int64(r.Uint64() >> 1))
	}
	check(1 << 62)
	check((1 << 63) - 1)
}

func TestBucketLimitMonotonic(t *testing.T) {
	// Non-strict: sub-nanosecond buckets are empty for integer samples, so
	// consecutive limits may repeat, but they must never decrease.
	for i := 1; i < numBuckets; i++ {
		if bucketLimit[i] < bucketLimit[i-1] {
			t.Fatalf("bucketLimit[%d]=%d < bucketLimit[%d]=%d", i, bucketLimit[i], i-1, bucketLimit[i-1])
		}
	}
}

var sinkIdx int

func BenchmarkBucketIndex(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	samples := make([]int64, 4096)
	for i := range samples {
		samples[i] = int64(r.Intn(1_000_000_000) + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkIdx = bucketIndex(samples[i&4095])
	}
}

func BenchmarkLogBucket(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	samples := make([]int64, 4096)
	for i := range samples {
		samples[i] = int64(r.Intn(1_000_000_000) + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkIdx = logBucket(samples[i&4095])
	}
}

func BenchmarkRecord(b *testing.B) {
	var h H
	b.RunParallel(func(pb *testing.PB) {
		d := time.Duration(12345)
		for pb.Next() {
			h.Record(d)
			d += 7919 // walk across buckets
		}
	})
}
