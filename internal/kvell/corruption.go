package kvell

import (
	"context"
	"encoding/binary"
	"fmt"

	"p2kvs/internal/block"
	"p2kvs/internal/kv"
)

// At-rest corruption containment (DESIGN.md §12).
//
// KVell's only durable state is the slabs, and the in-memory index is
// rebuilt from them at every open — so a flipped bit has two distinct
// blast radii:
//
//   - Detected at RECOVERY: the scan cannot tell "this slot is free"
//     from "this slot's key bytes are damaged", so a corrupt slot means
//     the rebuilt index may be missing a key that was durably written.
//     The worker is poisoned: index hits still serve (their slots verify
//     on read), but index misses can no longer prove absence and fail
//     with kv.ErrCorruption, as do scans (completeness is unprovable)
//     and writes (read-only-minus, mirroring the disk-full state
//     machine). The corrupt slot itself is left in place — neither
//     indexed nor put on the free list — so nothing overwrites the
//     evidence before an operator restores the shard.
//   - Detected at READ time (slot damaged after a clean recovery): the
//     index is complete, so containment is per-key — that Get fails with
//     kv.ErrCorruption while every other key, including misses, stays
//     sound. A later Put of the same key rewrites the slot in place,
//     which is the engine's only self-repair (slabs have no per-file
//     backup granularity; a full shard restore is the remedy otherwise).
//
// Slot format v2 adds a CRC-32C over key||value to the header
// (klen u16 | vlen u32 | crc u32). Slabs written before the format
// carry no checksums; a worker directory with data but no FORMAT marker
// stays on v1 read/write so old stores remain usable, and fresh
// directories always start at v2.

const (
	slotHdrV1 = 6  // klen u16 | vlen u32
	slotHdrV2 = 10 // klen u16 | vlen u32 | crc u32 (CRC-32C of key||value)

	formatName = "FORMAT"
	formatV2   = "slab-format=2\n"
)

// detectFormat fixes the worker's slot layout: a FORMAT marker or a fresh
// directory selects v2 (checksummed); pre-existing data without the
// marker stays v1 — mixing headers inside one slab would corrupt it.
func (w *worker) detectFormat() error {
	if w.fs.Exists(w.dir + "/" + formatName) {
		w.hdr = slotHdrV2
		return nil
	}
	for class := range slabClasses {
		name := w.slabName(class)
		if !w.fs.Exists(name) {
			continue
		}
		f, err := w.fs.Open(name)
		if err != nil {
			return err
		}
		size, serr := f.Size()
		f.Close()
		if serr != nil {
			return serr
		}
		if size > 0 {
			w.hdr = slotHdrV1
			return nil
		}
	}
	w.hdr = slotHdrV2
	return vfsWriteFormat(w)
}

func vfsWriteFormat(w *worker) error {
	f, err := w.fs.Create(w.dir + "/" + formatName)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(formatV2)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// corruptSlotErr builds the typed error for a damaged slot.
func (w *worker) corruptSlotErr(class int, slot int64, detail string) error {
	return &kv.CorruptionError{
		File:   fmt.Sprintf("w%02d/slab-%d.dat", w.id, slabClasses[class]),
		Offset: slot * int64(slabClasses[class]),
		Detail: detail,
	}
}

// verifySlot checks a live slot image (header already known non-free).
// It returns the parsed klen/vlen on success.
func (w *worker) verifySlot(rec []byte, class int, slot int64) (klen, vlen int, err error) {
	klen = int(binary.LittleEndian.Uint16(rec))
	vlen = int(binary.LittleEndian.Uint32(rec[2:]))
	if w.hdr+klen+vlen > len(rec) {
		return 0, 0, w.corruptSlotErr(class, slot, "kvell: slot header out of bounds")
	}
	if w.hdr == slotHdrV2 {
		want := binary.LittleEndian.Uint32(rec[6:])
		if block.Checksum(rec[w.hdr:w.hdr+klen+vlen]) != want {
			return 0, 0, w.corruptSlotErr(class, slot, "kvell: slot checksum mismatch")
		}
	}
	return klen, vlen, nil
}

// noteCorruption records a detection at store level (health counters).
func (s *Store) noteCorruption(err error) {
	s.corruptionEvents.Add(1)
	s.mu.Lock()
	if s.lastCorr == nil {
		s.lastCorr = err
	}
	s.mu.Unlock()
}

var _ kv.Scrubber = (*Store)(nil)

// Scrub implements kv.Scrubber: every slab of every worker is re-read and
// each live slot's checksum re-verified. The scan itself runs on the
// worker goroutine (slabs are share-nothing; reading them from outside
// would race in-place updates), one slab per request so foreground ops
// interleave between slabs; the rate limiter is charged on the caller's
// goroutine after each slab so a slow budget never parks a worker.
// v1 (pre-checksum) slabs are bounds-checked only. KVell cannot repair in
// place — slabs have no per-file backup granularity — so FilesRepaired is
// always zero here; restore-from-backup is the repair path.
func (s *Store) Scrub(ctx context.Context, lim kv.RateLimiter) (kv.ScrubResult, error) {
	var res kv.ScrubResult
	for _, w := range s.workers {
		for class := range slabClasses {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			req := &request{op: opScrub, limit: class}
			if err := s.submit(w, req); err != nil {
				return res, err
			}
			res.FilesScanned++
			res.BytesScanned += req.scrubBytes
			res.CorruptionsFound += req.scrubCorrupt
			if lim != nil && req.scrubBytes > 0 {
				if err := lim.WaitN(ctx, int(req.scrubBytes)); err != nil {
					return res, err
				}
			}
		}
	}
	return res, nil
}

// scrubSlab re-reads one slab and verifies every live slot, reporting
// bytes covered and corruptions found. Runs on the worker goroutine.
func (w *worker) scrubSlab(class int) (bytes, corrupt int64) {
	sl := w.slabs[class]
	if sl == nil {
		return 0, 0
	}
	const chunkSlots = 512
	buf := make([]byte, sl.slotSize*chunkSlots)
	for base := int64(0); base < sl.nslots; base += chunkSlots {
		n := sl.nslots - base
		if n > chunkSlots {
			n = chunkSlots
		}
		chunk := buf[:n*sl.slotSize]
		if _, err := sl.f.ReadAt(chunk, base*sl.slotSize); err != nil {
			// An unreadable region counts as corrupt; keep scanning.
			corrupt++
			w.noteCorrupt(w.corruptSlotErr(class, base, "kvell: slab unreadable during scrub"))
			continue
		}
		bytes += int64(len(chunk))
		for i := int64(0); i < n; i++ {
			rec := chunk[i*sl.slotSize : (i+1)*sl.slotSize]
			if klen := binary.LittleEndian.Uint16(rec); klen == freeMark || klen == 0 {
				continue
			}
			if _, _, err := w.verifySlot(rec, class, base+i); err != nil {
				corrupt++
				w.noteCorrupt(err)
			}
		}
	}
	return bytes, corrupt
}
