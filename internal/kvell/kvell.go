// Package kvell reimplements the design of KVell (Lepers et al., SOSP'19)
// as the paper's non-LSM baseline (§5.5): share-nothing worker threads,
// each owning an in-memory B+-tree index that maps keys to slots in
// size-classed slab files, in-place updates with no write-ahead log and no
// compaction, and a page cache in front of the slabs. Items are unsorted
// on disk, so scans walk the index and issue random reads — the cost
// profile Figures 20/21 contrast with p2KVS.
//
// Slot layout inside a slab (format v2): klen u16 | vlen u32 | crc u32 |
// key | value, padded to the class size, where crc is a CRC-32C over
// key||value (at-rest integrity, corruption.go; pre-checksum v1 slabs
// omit the crc field and stay readable). klen == 0xFFFF marks a free slot
// (tombstone), which is how recovery distinguishes live items when it
// rebuilds the in-memory index by scanning the slabs (KVell's documented
// recovery strategy).
package kvell

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"p2kvs/internal/block"
	"p2kvs/internal/bloom"
	"p2kvs/internal/bptree"
	"p2kvs/internal/kv"
	"p2kvs/internal/metrics"
	"p2kvs/internal/spacewatch"
	"p2kvs/internal/vfs"
)

// Options configures a Store.
type Options struct {
	// FS hosts the slab files. Required.
	FS vfs.FS
	// Workers is the number of share-nothing partitions (KVell-4/8 in the
	// paper). Default 4.
	Workers int
	// CacheBytes is the per-store page-cache budget (the paper gives
	// KVell 4 GB; scale accordingly). Default 64 MiB.
	CacheBytes int64
	// QueueDepth bounds each worker's request queue. Default 64.
	QueueDepth int
	// Meters, when non-nil, receives one busy-time meter per worker
	// (Figure 21d per-core utilization).
	Meters *metrics.Group
	// PerOpCost models the per-request software path (index walk, slab
	// bookkeeping) in simulated time; zero for production use, set by
	// the scaled-time benchmarks.
	PerOpCost time.Duration
}

var slabClasses = []int{128, 256, 512, 1024, 2048, 4096}

const freeMark = 0xFFFF

type loc struct {
	class int   // index into slabClasses
	slot  int64 // slot number within the slab
}

// Store is a KVell-style store.
type Store struct {
	opts    Options
	dir     string
	workers []*worker
	closed  bool
	// mu guards closed: submitters hold it shared while enqueueing so
	// Close cannot close a queue mid-send. It also guards ckptStats and
	// the degraded state.
	mu        sync.RWMutex
	ckptStats kv.CheckpointStats

	// Disk-full degraded state (health.go): while bgErr is set writes are
	// rejected at submit (the error matches kv.ErrDegraded) and reads keep
	// serving; spaceWatch auto-resumes once space frees.
	bgErr          error
	diskFull       bool
	diskFullEvents atomic.Int64
	autoResumes    atomic.Int64
	spaceWatch     *spacewatch.Watchdog

	// At-rest integrity counters (corruption.go). lastCorr is mu-guarded.
	corruptionEvents atomic.Int64
	lastCorr         error
}

var _ kv.Engine = (*Store)(nil)

type request struct {
	op    kv.OpKind // OpPut / OpDelete; 0 = get, 3 = scan-collect
	key   []byte
	value []byte
	// scan support
	start []byte
	limit int
	// reply
	out   [][2][]byte
	err   error
	found bool
	done  chan struct{}
	// scrub reply (opScrub; limit carries the slab class)
	scrubBytes   int64
	scrubCorrupt int64
}

const opGet kv.OpKind = 0
const opScan kv.OpKind = 3
const opScrub kv.OpKind = 4

type worker struct {
	id        int
	fs        vfs.FS
	dir       string
	queue     chan *request
	meter     *metrics.Meter
	perOpCost time.Duration
	// degrade reports a space-exhaustion write failure to the store.
	degrade func(error)
	// noteCorrupt reports a detected slot corruption to the store.
	noteCorrupt func(error)

	// hdr is the slot header length: slotHdrV2 for checksummed slabs,
	// slotHdrV1 for legacy ones (corruption.go). Fixed at open.
	hdr int
	// corrupt, when non-nil, poisons the worker: recovery found a slot it
	// could not trust, so the rebuilt index may be missing durably written
	// keys. Index misses, scans and writes fail with this error; index
	// hits keep serving (their slots verify on read). Written only during
	// open, before the worker goroutine starts.
	corrupt error

	index *bptree.Tree[loc]
	slabs [len6]*slab
	cache *pageCache
	wg    sync.WaitGroup
}

// len6 keeps the slab array sized to the class table.
const len6 = 6

type slab struct {
	f        vfs.File
	slotSize int64
	nslots   int64
	free     []int64
}

// Open opens (creating or recovering) a store at dir.
func Open(dir string, opts Options) (*Store, error) {
	if opts.FS == nil {
		return nil, errors.New("kvell: Options.FS is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = 64 << 20
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, err
	}
	s := &Store{opts: opts, dir: dir}
	for i := 0; i < opts.Workers; i++ {
		w := &worker{
			id:        i,
			fs:        opts.FS,
			dir:       fmt.Sprintf("%s/w%02d", dir, i),
			queue:     make(chan *request, opts.QueueDepth),
			index:     bptree.New[loc](),
			cache:     newPageCache(opts.CacheBytes / int64(opts.Workers)),
			perOpCost: opts.PerOpCost,
			degrade:   s.noteNoSpace,
		}
		w.noteCorrupt = s.noteCorruption
		if opts.Meters != nil {
			w.meter = opts.Meters.Meter(fmt.Sprintf("kvell-w%d", i))
		}
		if err := w.open(); err != nil {
			return nil, err
		}
		w.wg.Add(1)
		go w.loop()
		s.workers = append(s.workers, w)
	}
	// A restored backup image materializes as a SNAPSHOT file (see
	// checkpoint.go); replay it through the normal write path.
	if opts.FS.Exists(dir + "/" + snapshotName) {
		if err := s.replaySnapshot(); err != nil {
			s.Close()
			return nil, err
		}
	}
	s.spaceWatch = spacewatch.New(s.diskFullDegraded, s.spaceProbe, s.autoResume, 0, 0)
	return s, nil
}

func (w *worker) slabName(class int) string {
	return fmt.Sprintf("%s/slab-%d.dat", w.dir, slabClasses[class])
}

// open creates or recovers the worker's slabs, rebuilding the in-memory
// index by scanning every slot (KVell's recovery path).
func (w *worker) open() error {
	if err := w.fs.MkdirAll(w.dir); err != nil {
		return err
	}
	if err := w.detectFormat(); err != nil {
		return err
	}
	for class := range slabClasses {
		name := w.slabName(class)
		var f vfs.File
		var err error
		if w.fs.Exists(name) {
			f, err = w.fs.Open(name)
		} else {
			f, err = w.fs.Create(name)
		}
		if err != nil {
			return err
		}
		sl := &slab{f: f, slotSize: int64(slabClasses[class])}
		size, err := f.Size()
		if err != nil {
			return err
		}
		sl.nslots = size / sl.slotSize
		// Rebuild the index by scanning the slab with large sequential
		// reads (KVell's recovery path streams slabs, it does not issue
		// one IO per slot).
		const chunkSlots = 512
		buf := make([]byte, sl.slotSize*chunkSlots)
		for base := int64(0); base < sl.nslots; base += chunkSlots {
			n := sl.nslots - base
			if n > chunkSlots {
				n = chunkSlots
			}
			chunk := buf[:n*sl.slotSize]
			if _, err := f.ReadAt(chunk, base*sl.slotSize); err != nil {
				return err
			}
			for i := int64(0); i < n; i++ {
				rec := chunk[i*sl.slotSize : (i+1)*sl.slotSize]
				slot := base + i
				klen := binary.LittleEndian.Uint16(rec)
				if klen == freeMark || klen == 0 {
					sl.free = append(sl.free, slot)
					continue
				}
				kl, _, err := w.verifySlot(rec, class, slot)
				if err != nil {
					// A slot the scan cannot trust may hide a durably
					// written key: poison the worker (misses/scans/writes
					// fail) and leave the slot in place — not indexed, not
					// freed — so the evidence survives until a restore.
					if w.corrupt == nil {
						w.corrupt = err
					}
					w.noteCorrupt(err)
					continue
				}
				key := append([]byte(nil), rec[w.hdr:w.hdr+kl]...)
				w.index.Set(key, loc{class: class, slot: slot})
			}
		}
		w.slabs[class] = sl
	}
	return nil
}

func classFor(need int) (int, error) {
	for i, c := range slabClasses {
		if need <= c {
			return i, nil
		}
	}
	return 0, fmt.Errorf("kvell: item of %d bytes exceeds largest slab class %d", need, slabClasses[len(slabClasses)-1])
}

// loop is the worker's single thread: all index and slab access is
// unsynchronized because only this goroutine touches them (KVell's
// share-nothing concurrency model).
func (w *worker) loop() {
	defer w.wg.Done()
	for req := range w.queue {
		if w.meter != nil {
			w.meter.Busy()
		}
		w.handle(req)
		if w.meter != nil {
			w.meter.Idle()
		}
		close(req.done)
	}
}

func (w *worker) handle(req *request) {
	if w.perOpCost > 0 {
		time.Sleep(w.perOpCost)
	}
	switch req.op {
	case opGet:
		req.value, req.found, req.err = w.get(req.key)
	case kv.OpPut, kv.OpDelete:
		if w.corrupt != nil {
			// Read-only-minus: appending to a partition whose recovered
			// index may be missing keys only widens the blast radius.
			req.err = &degradedError{cause: w.corrupt}
			return
		}
		if req.op == kv.OpPut {
			req.err = w.put(req.key, req.value)
		} else {
			req.err = w.delete(req.key)
		}
		if req.err != nil && vfs.IsNoSpace(req.err) {
			w.degrade(req.err)
		}
	case opScan:
		req.out, req.err = w.scan(req.start, req.limit)
	case opScrub:
		req.scrubBytes, req.scrubCorrupt = w.scrubSlab(req.limit)
	}
}

func (w *worker) get(key []byte) ([]byte, bool, error) {
	l, ok := w.index.Get(key)
	if !ok {
		if w.corrupt != nil {
			// The rebuilt index cannot prove absence: the key may live in
			// the corrupt slot recovery refused to trust.
			return nil, false, w.corrupt
		}
		return nil, false, nil
	}
	if v, ok := w.cache.get(key); ok {
		return v, true, nil
	}
	v, err := w.readSlot(l, key)
	if err != nil {
		return nil, false, err
	}
	w.cache.put(key, v)
	return v, true, nil
}

func (w *worker) readSlot(l loc, key []byte) ([]byte, error) {
	sl := w.slabs[l.class]
	buf := make([]byte, sl.slotSize)
	if _, err := sl.f.ReadAt(buf, l.slot*sl.slotSize); err != nil {
		return nil, err
	}
	if klen := binary.LittleEndian.Uint16(buf); klen == freeMark || klen == 0 {
		err := w.corruptSlotErr(l.class, l.slot, "kvell: indexed slot marked free on disk")
		w.noteCorrupt(err)
		return nil, err
	}
	klen, vlen, err := w.verifySlot(buf, l.class, l.slot)
	if err != nil {
		w.noteCorrupt(err)
		return nil, err
	}
	if key != nil && !bytes.Equal(buf[w.hdr:w.hdr+klen], key) {
		err := w.corruptSlotErr(l.class, l.slot, "kvell: index/slot key mismatch")
		w.noteCorrupt(err)
		return nil, err
	}
	return append([]byte(nil), buf[w.hdr+klen:w.hdr+klen+vlen]...), nil
}

func (w *worker) put(key, value []byte) error {
	need := w.hdr + len(key) + len(value)
	class, err := classFor(need)
	if err != nil {
		return err
	}
	old, existed := w.index.Get(key)

	var slot int64
	sl := w.slabs[class]
	switch {
	case existed && old.class == class:
		// In-place update — KVell's headline write path: one random IO,
		// no log, no compaction.
		slot = old.slot
	case len(sl.free) > 0:
		slot = sl.free[len(sl.free)-1]
		sl.free = sl.free[:len(sl.free)-1]
	default:
		slot = sl.nslots
		sl.nslots++
	}

	buf := make([]byte, sl.slotSize)
	binary.LittleEndian.PutUint16(buf, uint16(len(key)))
	binary.LittleEndian.PutUint32(buf[2:], uint32(len(value)))
	copy(buf[w.hdr:], key)
	copy(buf[w.hdr+len(key):], value)
	if w.hdr == slotHdrV2 {
		binary.LittleEndian.PutUint32(buf[6:], block.Checksum(buf[w.hdr:w.hdr+len(key)+len(value)]))
	}
	if _, err := sl.f.WriteAt(buf, slot*sl.slotSize); err != nil {
		return err
	}
	if existed && old.class != class {
		if err := w.freeSlot(old); err != nil {
			return err
		}
	}
	w.index.Set(key, loc{class: class, slot: slot})
	w.cache.put(key, append([]byte(nil), value...))
	return nil
}

func (w *worker) freeSlot(l loc) error {
	sl := w.slabs[l.class]
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], freeMark)
	if _, err := sl.f.WriteAt(hdr[:], l.slot*sl.slotSize); err != nil {
		return err
	}
	sl.free = append(sl.free, l.slot)
	return nil
}

func (w *worker) delete(key []byte) error {
	l, ok := w.index.Get(key)
	if !ok {
		return nil
	}
	if err := w.freeSlot(l); err != nil {
		return err
	}
	w.index.Delete(key)
	w.cache.drop(key)
	return nil
}

// scan returns up to limit (key, value) pairs with key >= start from this
// worker's partition. Values are fetched with random reads — the reason
// KVell scans underperform LSM scans (workload E, Figure 20).
func (w *worker) scan(start []byte, limit int) ([][2][]byte, error) {
	if w.corrupt != nil {
		// A poisoned index cannot prove scan completeness.
		return nil, w.corrupt
	}
	var out [][2][]byte
	var scanErr error
	w.index.Ascend(start, func(k []byte, l loc) bool {
		v, err := w.readSlot(l, k)
		if err != nil {
			scanErr = err
			return false
		}
		out = append(out, [2][]byte{append([]byte(nil), k...), v})
		return len(out) < limit
	})
	return out, scanErr
}

// ---------------------------------------------------------------------------
// Store API
// ---------------------------------------------------------------------------

func (s *Store) pick(key []byte) *worker {
	return s.workers[int(bloom.Hash(key))%len(s.workers)]
}

func (s *Store) submit(w *worker, req *request) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return kv.ErrClosed
	}
	if s.bgErr != nil && (req.op == kv.OpPut || req.op == kv.OpDelete) {
		// Disk-full degraded: reject writes fast, keep serving reads.
		err := s.bgErr
		s.mu.RUnlock()
		return err
	}
	req.done = make(chan struct{})
	w.queue <- req
	s.mu.RUnlock()
	<-req.done
	return req.err
}

// Put implements kv.Engine.
func (s *Store) Put(key, value []byte) error {
	return s.submit(s.pick(key), &request{op: kv.OpPut, key: key, value: value})
}

// Get implements kv.Engine.
func (s *Store) Get(key []byte) ([]byte, error) {
	req := &request{op: opGet, key: key}
	if err := s.submit(s.pick(key), req); err != nil {
		return nil, err
	}
	if !req.found {
		return nil, kv.ErrNotFound
	}
	return req.value, nil
}

// Delete implements kv.Engine.
func (s *Store) Delete(key []byte) error {
	return s.submit(s.pick(key), &request{op: kv.OpDelete, key: key})
}

// Scan returns up to limit pairs with key >= start across all partitions,
// globally sorted. Each partition is asked for limit items (the key
// distribution across partitions is unknown a priori — the same
// over-read p2KVS's parallel SCAN performs, §4.4).
func (s *Store) Scan(start []byte, limit int) ([][2][]byte, error) {
	reqs := make([]*request, len(s.workers))
	var wg sync.WaitGroup
	for i, w := range s.workers {
		reqs[i] = &request{op: opScan, start: start, limit: limit}
		wg.Add(1)
		go func(w *worker, r *request) {
			defer wg.Done()
			r.errOnce(s.submit(w, r))
		}(w, reqs[i])
	}
	wg.Wait()
	var all [][2][]byte
	for _, r := range reqs {
		if r.err != nil {
			return nil, r.err
		}
		all = append(all, r.out...)
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i][0], all[j][0]) < 0 })
	if len(all) > limit {
		all = all[:limit]
	}
	return all, nil
}

func (r *request) errOnce(err error) {
	if r.err == nil {
		r.err = err
	}
}

// NewIterator implements kv.Engine by snapshotting the merged key set.
// KVell has no ordered on-disk layout, so a full iterator is inherently a
// scan of the in-memory indexes; values are fetched lazily per key.
func (s *Store) NewIterator() (kv.Iterator, error) {
	pairs, err := s.Scan(nil, 1<<31-1)
	if err != nil {
		return nil, err
	}
	return &snapshotIter{pairs: pairs, pos: -1}, nil
}

// Flush implements kv.Engine: syncs every slab.
func (s *Store) Flush() error {
	for _, w := range s.workers {
		for _, sl := range w.slabs {
			if sl == nil {
				continue
			}
			if err := sl.f.Sync(); err != nil {
				if vfs.IsNoSpace(err) {
					s.noteNoSpace(err)
				}
				return err
			}
		}
	}
	return nil
}

// Caps reports no batch capabilities (KVell's API is per-request; its
// parallelism is internal).
func (s *Store) Caps() kv.Caps { return kv.Caps{} }

// Metrics reports memory accounting (Figure 21b): in-memory indexes plus
// page cache.
type Metrics struct {
	IndexBytes int64
	CacheBytes int64
	Keys       int
}

// Metrics snapshots the store. Approximate: indexes are read without
// pausing workers.
func (s *Store) Metrics() Metrics {
	var m Metrics
	for _, w := range s.workers {
		m.IndexBytes += w.index.ApproxBytes()
		m.CacheBytes += w.cache.bytes()
		m.Keys += w.index.Len()
	}
	return m
}

// Close implements kv.Engine.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.spaceWatch != nil {
		s.spaceWatch.Close()
	}
	for _, w := range s.workers {
		close(w.queue)
		w.wg.Wait()
		for _, sl := range w.slabs {
			if sl != nil {
				sl.f.Sync()
				sl.f.Close()
			}
		}
	}
	return nil
}

type snapshotIter struct {
	pairs [][2][]byte
	pos   int
}

func (it *snapshotIter) Valid() bool  { return it.pos >= 0 && it.pos < len(it.pairs) }
func (it *snapshotIter) SeekToFirst() { it.pos = 0 }
func (it *snapshotIter) Seek(target []byte) {
	it.pos = sort.Search(len(it.pairs), func(i int) bool {
		return bytes.Compare(it.pairs[i][0], target) >= 0
	})
}
func (it *snapshotIter) Next() {
	if it.pos < len(it.pairs) {
		it.pos++
	}
}
func (it *snapshotIter) Key() []byte   { return it.pairs[it.pos][0] }
func (it *snapshotIter) Value() []byte { return it.pairs[it.pos][1] }
func (it *snapshotIter) Error() error  { return nil }
func (it *snapshotIter) Close() error  { return nil }

// ---------------------------------------------------------------------------
// Page cache
// ---------------------------------------------------------------------------

// pageCache is a byte-budgeted cache with CLOCK-ish second-chance
// eviction, modeling KVell's page cache at item granularity.
type pageCache struct {
	budget int64
	used   int64
	m      map[string]*cacheEntry
	ring   []string
	hand   int
}

type cacheEntry struct {
	val []byte
	ref bool
}

func newPageCache(budget int64) *pageCache {
	return &pageCache{budget: budget, m: make(map[string]*cacheEntry)}
}

func (c *pageCache) get(key []byte) ([]byte, bool) {
	if e, ok := c.m[string(key)]; ok {
		e.ref = true
		return append([]byte(nil), e.val...), true
	}
	return nil, false
}

func (c *pageCache) put(key, val []byte) {
	if c.budget <= 0 {
		return
	}
	k := string(key)
	if e, ok := c.m[k]; ok {
		c.used += int64(len(val) - len(e.val))
		e.val = val
		e.ref = true
	} else {
		c.m[k] = &cacheEntry{val: val, ref: true}
		c.ring = append(c.ring, k)
		c.used += int64(len(k) + len(val))
	}
	for c.used > c.budget && len(c.ring) > 0 {
		c.evictOne()
	}
}

func (c *pageCache) evictOne() {
	for range c.ring {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		k := c.ring[c.hand]
		e, ok := c.m[k]
		if !ok {
			// Stale ring slot (dropped key): compact it away.
			c.ring = append(c.ring[:c.hand], c.ring[c.hand+1:]...)
			continue
		}
		if e.ref {
			e.ref = false
			c.hand++
			continue
		}
		c.used -= int64(len(k) + len(e.val))
		delete(c.m, k)
		c.ring = append(c.ring[:c.hand], c.ring[c.hand+1:]...)
		return
	}
	// Everything referenced: evict at hand anyway.
	if len(c.ring) > 0 {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		k := c.ring[c.hand]
		if e, ok := c.m[k]; ok {
			c.used -= int64(len(k) + len(e.val))
			delete(c.m, k)
		}
		c.ring = append(c.ring[:c.hand], c.ring[c.hand+1:]...)
	}
}

func (c *pageCache) drop(key []byte) {
	k := string(key)
	if e, ok := c.m[k]; ok {
		c.used -= int64(len(k) + len(e.val))
		delete(c.m, k)
	}
}

func (c *pageCache) bytes() int64 { return c.used }
