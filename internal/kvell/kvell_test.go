package kvell

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

func open(t *testing.T, fs vfs.FS, workers int) *Store {
	t.Helper()
	s, err := Open("kvell", Options{FS: fs, Workers: workers, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetDelete(t *testing.T) {
	fs := vfs.NewMem()
	s := open(t, fs, 4)
	defer s.Close()
	if err := s.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get([]byte("k1"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("Get = %q %v", v, err)
	}
	if _, err := s.Get([]byte("absent")); err != kv.ErrNotFound {
		t.Fatalf("absent err = %v", err)
	}
	if err := s.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("k1")); err != kv.ErrNotFound {
		t.Fatal("deleted key still readable")
	}
	// Deleting absent key is fine.
	if err := s.Delete([]byte("never")); err != nil {
		t.Fatal(err)
	}
}

func TestInPlaceUpdateReusesSlot(t *testing.T) {
	fs := vfs.NewMem()
	s := open(t, fs, 1)
	defer s.Close()
	key := []byte("key")
	s.Put(key, []byte("v1"))
	w := s.workers[0]
	l1, ok := w.index.Get(key)
	if !ok {
		t.Fatal("index miss")
	}
	s.Put(key, []byte("v2"))
	l2, _ := w.index.Get(key)
	if l1 != l2 {
		t.Fatalf("same-class update moved slots: %+v -> %+v", l1, l2)
	}
	if v, _ := s.Get(key); string(v) != "v2" {
		t.Fatal("update lost")
	}
}

func TestClassMigration(t *testing.T) {
	fs := vfs.NewMem()
	s := open(t, fs, 1)
	defer s.Close()
	key := []byte("key")
	s.Put(key, make([]byte, 50))   // class 128
	s.Put(key, make([]byte, 500))  // class 1024
	s.Put(key, make([]byte, 3000)) // class 4096
	v, err := s.Get(key)
	if err != nil || len(v) != 3000 {
		t.Fatalf("Get after migrations = %d bytes, %v", len(v), err)
	}
	// Old slots must be freed and reusable.
	w := s.workers[0]
	if len(w.slabs[0].free) == 0 {
		t.Fatal("migrated-out slot was not freed")
	}
	if err := s.Put([]byte("other"), make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if len(w.slabs[0].free) != 0 {
		t.Fatal("freed slot not reused")
	}
}

func TestOversizedItemRejected(t *testing.T) {
	fs := vfs.NewMem()
	s := open(t, fs, 1)
	defer s.Close()
	if err := s.Put([]byte("big"), make([]byte, 8192)); err == nil {
		t.Fatal("oversized item must be rejected")
	}
}

func TestScanSortedAcrossPartitions(t *testing.T) {
	fs := vfs.NewMem()
	s := open(t, fs, 4)
	defer s.Close()
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	pairs, err := s.Scan([]byte("k00100"), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 20 {
		t.Fatalf("scan returned %d", len(pairs))
	}
	for i, p := range pairs {
		want := fmt.Sprintf("k%05d", 100+i)
		if string(p[0]) != want {
			t.Fatalf("scan[%d] = %q, want %q", i, p[0], want)
		}
		if string(p[1]) != fmt.Sprintf("v%d", 100+i) {
			t.Fatalf("scan[%d] value = %q", i, p[1])
		}
	}
}

func TestIterator(t *testing.T) {
	fs := vfs.NewMem()
	s := open(t, fs, 3)
	defer s.Close()
	for i := 0; i < 300; i++ {
		s.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v"))
	}
	it, err := s.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	prev := ""
	for it.SeekToFirst(); it.Valid(); it.Next() {
		k := string(it.Key())
		if prev != "" && k <= prev {
			t.Fatalf("out of order: %q after %q", k, prev)
		}
		prev = k
		n++
	}
	if n != 300 {
		t.Fatalf("iterated %d", n)
	}
	it.Seek([]byte("k00250"))
	if !it.Valid() || string(it.Key()) != "k00250" {
		t.Fatalf("Seek landed on %q", it.Key())
	}
}

func TestRecoveryRebuildsIndex(t *testing.T) {
	fs := vfs.NewMem()
	s := open(t, fs, 2)
	for i := 0; i < 400; i++ {
		s.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	s.Delete([]byte("k00003"))
	s.Flush()
	s.Close()

	s2 := open(t, fs, 2)
	defer s2.Close()
	m := s2.Metrics()
	if m.Keys != 399 {
		t.Fatalf("recovered %d keys, want 399", m.Keys)
	}
	for i := 0; i < 400; i += 17 {
		key := fmt.Sprintf("k%05d", i)
		v, err := s2.Get([]byte(key))
		if i == 3 {
			continue
		}
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) = %q %v", key, v, err)
		}
	}
	if _, err := s2.Get([]byte("k00003")); err != kv.ErrNotFound {
		t.Fatal("deleted key resurrected by recovery")
	}
}

func TestConcurrentClients(t *testing.T) {
	fs := vfs.NewMem()
	s := open(t, fs, 4)
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := []byte(fmt.Sprintf("g%d-%04d", g, i))
				if err := s.Put(key, key); err != nil {
					t.Error(err)
					return
				}
				if v, err := s.Get(key); err != nil || !bytes.Equal(v, key) {
					t.Errorf("readback %s = %q %v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if m := s.Metrics(); m.Keys != 1600 {
		t.Fatalf("keys = %d", m.Keys)
	}
}

func TestMetricsAndCaps(t *testing.T) {
	fs := vfs.NewMem()
	s := open(t, fs, 2)
	defer s.Close()
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), make([]byte, 64))
	}
	m := s.Metrics()
	if m.IndexBytes <= 0 || m.Keys != 100 {
		t.Fatalf("metrics = %+v", m)
	}
	if caps := kv.CapsOf(s); caps.BatchWrite || caps.MultiGet {
		t.Fatal("kvell must report no batch caps")
	}
}

func TestClosedOps(t *testing.T) {
	fs := vfs.NewMem()
	s := open(t, fs, 1)
	s.Close()
	if err := s.Close(); err != nil {
		t.Fatal("double close")
	}
	if err := s.Put([]byte("k"), []byte("v")); err != kv.ErrClosed {
		t.Fatalf("Put after close = %v", err)
	}
}

func TestPageCacheEviction(t *testing.T) {
	c := newPageCache(300)
	for i := 0; i < 50; i++ {
		c.put([]byte(fmt.Sprintf("key%02d", i)), make([]byte, 20))
	}
	if c.bytes() > 300 {
		t.Fatalf("cache over budget: %d", c.bytes())
	}
	// Most recent insert should generally still be present.
	if _, ok := c.get([]byte("key49")); !ok {
		t.Fatal("most recent entry evicted immediately")
	}
	c.drop([]byte("key49"))
	if _, ok := c.get([]byte("key49")); ok {
		t.Fatal("dropped entry still cached")
	}
}

func TestQuickAgainstMap(t *testing.T) {
	type op struct {
		Key    uint8
		Len    uint8
		Delete bool
	}
	fn := func(ops []op) bool {
		fs := vfs.NewMem()
		s, err := Open("q", Options{FS: fs, Workers: 3, CacheBytes: 4 << 10})
		if err != nil {
			return false
		}
		defer s.Close()
		model := map[string][]byte{}
		for i, o := range ops {
			k := fmt.Sprintf("key-%03d", o.Key%48)
			if o.Delete {
				delete(model, k)
				if s.Delete([]byte(k)) != nil {
					return false
				}
			} else {
				v := bytes.Repeat([]byte{byte(i)}, int(o.Len)%200+1)
				model[k] = v
				if s.Put([]byte(k), v) != nil {
					return false
				}
			}
		}
		for k, want := range model {
			v, err := s.Get([]byte(k))
			if err != nil || !bytes.Equal(v, want) {
				return false
			}
		}
		return s.Metrics().Keys == len(model)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
