package kvell

import (
	"encoding/binary"
	"errors"
	"fmt"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// Online backup (kv.Checkpointer). KVell updates slab slots in place with
// no log: there is no immutable unit to link and no append-only prefix to
// copy, so a consistent capture is necessarily a full serialization — the
// same cost shape as KVell's recovery, which rescans every slab. The dump
// is collected through the workers' own request queues (each worker
// snapshots its partition on its single thread, KVell's share-nothing
// rule), so PrepareCheckpoint is O(live data) — the engine trades the
// cheap-capture property for its logless write path, and the accessing
// layer's barrier time reflects that.

const snapshotName = "SNAPSHOT"

var _ kv.Checkpointer = (*Store)(nil)
var _ kv.CheckpointStatsReporter = (*Store)(nil)

// PrepareCheckpoint implements kv.Checkpointer.
func (s *Store) PrepareCheckpoint() (kv.CheckpointWriter, error) {
	pairs, err := s.Scan(nil, 1<<31-1)
	if err != nil {
		return nil, err
	}
	return &ckptWriter{s: s, pairs: pairs}, nil
}

// CheckpointStats implements kv.CheckpointStatsReporter.
func (s *Store) CheckpointStats() kv.CheckpointStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ckptStats
}

type ckptWriter struct {
	s     *Store
	pairs [][2][]byte
}

// WriteTo implements kv.CheckpointWriter.
func (w *ckptWriter) WriteTo(fs vfs.FS, dir string, seq uint64) ([]kv.CheckpointFile, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s-ckpt%06d", snapshotName, seq)
	data := encodeSnapshot(w.pairs)
	if err := vfs.WriteFile(fs, dir+"/"+name, data); err != nil {
		return nil, err
	}
	w.s.mu.Lock()
	w.s.ckptStats.Checkpoints++
	w.s.ckptStats.FilesCopied++
	w.s.ckptStats.BytesCopied += int64(len(data))
	w.s.mu.Unlock()
	return []kv.CheckpointFile{{Name: name, Restore: snapshotName}}, nil
}

// Release implements kv.CheckpointWriter. The capture lives in memory; no
// on-disk state was pinned.
func (w *ckptWriter) Release() {}

// Snapshot layout: count u32 | (klen u16 | vlen u32 | key | value)*.
func encodeSnapshot(pairs [][2][]byte) []byte {
	size := 4
	for _, p := range pairs {
		size += 6 + len(p[0]) + len(p[1])
	}
	buf := make([]byte, 4, size)
	binary.LittleEndian.PutUint32(buf, uint32(len(pairs)))
	for _, p := range pairs {
		var hdr [6]byte
		binary.LittleEndian.PutUint16(hdr[:], uint16(len(p[0])))
		binary.LittleEndian.PutUint32(hdr[2:], uint32(len(p[1])))
		buf = append(buf, hdr[:]...)
		buf = append(buf, p[0]...)
		buf = append(buf, p[1]...)
	}
	return buf
}

func decodeSnapshot(buf []byte) ([][2][]byte, error) {
	if len(buf) < 4 {
		return nil, errors.New("kvell: truncated snapshot header")
	}
	count := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	pairs := make([][2][]byte, 0, count)
	for i := 0; i < count; i++ {
		if len(buf) < 6 {
			return nil, errors.New("kvell: truncated snapshot record header")
		}
		klen := int(binary.LittleEndian.Uint16(buf))
		vlen := int(binary.LittleEndian.Uint32(buf[2:]))
		buf = buf[6:]
		if klen+vlen > len(buf) {
			return nil, errors.New("kvell: truncated snapshot record")
		}
		key := append([]byte(nil), buf[:klen]...)
		val := append([]byte(nil), buf[klen:klen+vlen]...)
		buf = buf[klen+vlen:]
		pairs = append(pairs, [2][]byte{key, val})
	}
	return pairs, nil
}

// replaySnapshot loads a restored SNAPSHOT file into the slabs through the
// normal write path, then retires it. Called from Open after the workers
// are running.
func (s *Store) replaySnapshot() error {
	data, err := vfs.ReadFile(s.opts.FS, s.dir+"/"+snapshotName)
	if err != nil {
		return err
	}
	pairs, err := decodeSnapshot(data)
	if err != nil {
		return err
	}
	for _, p := range pairs {
		if err := s.Put(p[0], p[1]); err != nil {
			return err
		}
	}
	if err := s.Flush(); err != nil {
		return err
	}
	return s.opts.FS.Remove(s.dir + "/" + snapshotName)
}
