package kvell

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

func TestDiskFullDegradesAndAutoResumes(t *testing.T) {
	// Slabs are created eagerly per worker, so give the quota enough room
	// for the empty files plus a few thousand slots, then fill.
	qfs := vfs.NewQuota(vfs.NewMem(), 256<<10)
	s, err := Open("db", Options{FS: qfs, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var acked []string
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("key-%06d", i)
		// Distinct keys force tail growth (in-place updates would never
		// extend the slab, so they can't hit the quota).
		err := s.Put([]byte(k), make([]byte, 400))
		if err == nil {
			acked = append(acked, k)
			continue
		}
		if !vfs.IsNoSpace(err) && !errors.Is(err, kv.ErrDegraded) {
			t.Fatalf("Put(%s): unexpected error class: %v", k, err)
		}
		break
	}
	if len(acked) == 0 {
		t.Fatal("no write ever succeeded")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		h := s.Health()
		if h.State == kv.StateReadOnly && h.DiskFull {
			if h.DiskFullEvents == 0 {
				t.Fatal("DiskFull set but DiskFullEvents == 0")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("store never entered disk-full read-only mode: %+v", h)
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Put([]byte("blocked"), []byte("v")); !errors.Is(err, kv.ErrDegraded) {
		t.Fatalf("write while disk-full: got %v, want ErrDegraded", err)
	}

	// Reads keep serving acked state throughout.
	for _, k := range []string{acked[0], acked[len(acked)/2], acked[len(acked)-1]} {
		if _, err := s.Get([]byte(k)); err != nil {
			t.Fatalf("Get(%s) while disk-full: %v", k, err)
		}
	}

	// Space comes back; the watchdog must auto-resume on its own.
	qfs.SetBudget(64 << 20)
	deadline = time.Now().Add(10 * time.Second)
	for {
		if err := s.Put([]byte("after"), []byte("v")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writes never resumed after space freed: health %+v", s.Health())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h := s.Health(); h.AutoResumes == 0 {
		t.Fatalf("auto-resume not counted: %+v", h)
	}
	if _, err := s.Get([]byte(acked[0])); err != nil {
		t.Fatalf("Get after resume: %v", err)
	}
}
