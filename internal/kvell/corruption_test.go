package kvell

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// corrOpts pins a single worker (deterministic placement: every key lands
// in w00) and a 1-byte cache budget so reads always hit the slab, where
// the checksum check lives.
func corrOpts(fs vfs.FS) Options {
	return Options{FS: fs, Workers: 1, CacheBytes: 1, QueueDepth: 8}
}

// TestRuntimeSlotFlipIsPerKey: a bit flip under a running store is caught
// by the read-path checksum and contained to that one key — the index is
// complete, so other keys and true absences are unaffected, and an
// in-place Put of the damaged key self-repairs.
func TestRuntimeSlotFlipIsPerKey(t *testing.T) {
	fs := vfs.NewFault(vfs.NewMem())
	s, err := Open("db", corrOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Put([]byte("alpha"), []byte("value-alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("beta"), []byte("value-beta")); err != nil {
		t.Fatal(err)
	}
	// "alpha" is the first put: class 0 (slab-128), slot 0. Its first
	// value byte sits at slot*128 + hdr(10) + len("alpha").
	if err := fs.CorruptAt("db/w00/slab-128.dat", 10+5); err != nil {
		t.Fatal(err)
	}

	_, err = s.Get([]byte("alpha"))
	if !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("Get(alpha) = %v, want ErrCorruption", err)
	}
	var ce *kv.CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("Get(alpha) error %v is not a *kv.CorruptionError", err)
	}
	// Blast radius is one key: the sibling serves, absence is still provable.
	if v, err := s.Get([]byte("beta")); err != nil || string(v) != "value-beta" {
		t.Fatalf("Get(beta) = %q, %v", v, err)
	}
	if _, err := s.Get([]byte("gamma")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("Get(gamma) = %v, want ErrNotFound", err)
	}
	// In-place rewrite is the engine's self-repair.
	if err := s.Put([]byte("alpha"), []byte("value-alpha-2")); err != nil {
		t.Fatalf("self-repair Put: %v", err)
	}
	if v, err := s.Get([]byte("alpha")); err != nil || string(v) != "value-alpha-2" {
		t.Fatalf("Get(alpha) after rewrite = %q, %v", v, err)
	}
	if h := s.Health(); h.CorruptionEvents == 0 || h.LastCorruption == nil {
		t.Fatalf("Health = %+v, want corruption recorded", h)
	}
}

// TestRecoveryCorruptionPoisonsWorker: a slot recovery cannot trust may
// hide a durably written key, so the rebuilt index cannot prove absence —
// misses, scans and writes fail; index hits keep serving (their slots
// verify on read).
func TestRecoveryCorruptionPoisonsWorker(t *testing.T) {
	fs := vfs.NewFault(vfs.NewMem())
	s, err := Open("db", corrOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k-%04d", i)), []byte(fmt.Sprintf("v-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a key byte of slot 0 ("k-0000", offset hdr=10 into the slot):
	// the recovery scan's checksum check must refuse the slot.
	if err := fs.CorruptAt("db/w00/slab-128.dat", 10); err != nil {
		t.Fatal(err)
	}

	s2, err := Open("db", corrOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	// The damaged key is an index miss — and a poisoned worker cannot
	// claim NotFound.
	if _, err := s2.Get([]byte("k-0000")); !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("Get(k-0000) = %v, want ErrCorruption", err)
	}
	if _, err := s2.Get([]byte("never-written")); !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("Get(absent) = %v, want ErrCorruption", err)
	}
	// Index hits verify on read and keep serving.
	for i := 1; i < 10; i++ {
		k := fmt.Sprintf("k-%04d", i)
		v, err := s2.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if string(v) != fmt.Sprintf("v-%04d", i) {
			t.Fatalf("Get(%q) = %q: wrong value", k, v)
		}
	}
	err = s2.Put([]byte("new"), []byte("v"))
	if !errors.Is(err, kv.ErrDegraded) || !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("Put = %v, want ErrDegraded wrapping ErrCorruption", err)
	}
	if _, err := s2.Scan(nil, 100); !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("Scan = %v, want ErrCorruption", err)
	}
	h := s2.Health()
	if h.QuarantinedFiles != 1 || h.State != kv.StateReadOnly {
		t.Fatalf("Health = %+v, want 1 quarantined worker, read-only", h)
	}
	if h.CorruptionEvents == 0 || h.LastCorruption == nil {
		t.Fatalf("Health = %+v, want corruption recorded", h)
	}
}

// TestScrubFindsFlipWithoutReads: a scrub pass walks every slab slot and
// reports damage no foreground read has touched.
func TestScrubFindsFlipWithoutReads(t *testing.T) {
	fs := vfs.NewFault(vfs.NewMem())
	s, err := Open("db", corrOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k-%04d", i)), []byte(fmt.Sprintf("v-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Scrub(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesScanned != int64(len(slabClasses)) {
		t.Fatalf("FilesScanned = %d, want %d", res.FilesScanned, len(slabClasses))
	}
	if res.CorruptionsFound != 0 || res.BytesScanned == 0 {
		t.Fatalf("clean scrub = %+v", res)
	}

	if err := fs.CorruptAt("db/w00/slab-128.dat", 3*128+10); err != nil { // slot 3 key byte
		t.Fatal(err)
	}
	res, err = s.Scrub(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptionsFound != 1 {
		t.Fatalf("CorruptionsFound = %d, want 1", res.CorruptionsFound)
	}
	if h := s.Health(); h.CorruptionEvents == 0 {
		t.Fatalf("Health = %+v, want CorruptionEvents > 0", h)
	}
	// Scrub only observes: the worker is not poisoned, damage stays
	// per-key (slot 3 holds "k-0003").
	if _, err := s.Get([]byte("k-0003")); !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("Get(k-0003) = %v, want ErrCorruption", err)
	}
	if v, err := s.Get([]byte("k-0004")); err != nil || string(v) != "v-0004" {
		t.Fatalf("Get(k-0004) = %q, %v", v, err)
	}
}

// TestLegacyV1SlabsStayReadable: a slab written before checksums (6-byte
// headers, no FORMAT marker) must recover, serve and accept writes in v1
// format — mixing header widths inside one slab would destroy it.
func TestLegacyV1SlabsStayReadable(t *testing.T) {
	fs := vfs.NewFault(vfs.NewMem())
	// Hand-craft a v1 worker directory: two live slots in slab-128, no
	// FORMAT file.
	if err := fs.MkdirAll("db/w00"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("db/w00/slab-128.dat")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2*128)
	v1Slot := func(slot int, key, val string) {
		rec := buf[slot*128:]
		binary.LittleEndian.PutUint16(rec, uint16(len(key)))
		binary.LittleEndian.PutUint32(rec[2:], uint32(len(val)))
		copy(rec[slotHdrV1:], key)
		copy(rec[slotHdrV1+len(key):], val)
	}
	v1Slot(0, "a", "va")
	v1Slot(1, "b", "vb")
	if _, err := f.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := Open("db", corrOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	for _, kvp := range [][2]string{{"a", "va"}, {"b", "vb"}} {
		v, err := s.Get([]byte(kvp[0]))
		if err != nil || string(v) != kvp[1] {
			t.Fatalf("Get(%q) = %q, %v", kvp[0], v, err)
		}
	}
	// Writes keep the legacy format; a v2 FORMAT marker must NOT appear.
	if err := s.Put([]byte("c"), []byte("vc")); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("db/w00/FORMAT") {
		t.Fatal("v1 directory was upgraded to v2 in place")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// And a reopen still reads everything back.
	s2, err := Open("db", corrOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, kvp := range [][2]string{{"a", "va"}, {"b", "vb"}, {"c", "vc"}} {
		v, err := s2.Get([]byte(kvp[0]))
		if err != nil || string(v) != kvp[1] {
			t.Fatalf("reopened Get(%q) = %q, %v", kvp[0], v, err)
		}
	}
	if h := s2.Health(); h.CorruptionEvents != 0 {
		t.Fatalf("legacy slabs flagged as corrupt: %+v", h)
	}

	// Fresh directories do commit to v2.
	s3, err := Open("db2", corrOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if !fs.Exists("db2/w00/FORMAT") {
		t.Fatal("fresh directory did not write the v2 FORMAT marker")
	}
}
