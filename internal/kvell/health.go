package kvell

import (
	"fmt"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// Disk-full handling.
//
// KVell has no log and no background reorganization: slabs are updated in
// place and grown at the tail. A WriteAt or Sync that hits ENOSPC means
// the device is full right now, and nothing the store owns can be
// reclaimed (every slab slot is either live or on a free list that will
// be reused in place). So the store simply degrades to read-only —
// rejecting writes at submit, before they reach a worker queue — and the
// space watchdog probes until an external actor frees space, then
// auto-resumes. Slots touched by the failed write are safe: a torn slot
// is detected at recovery scan time by its header/key mismatch, and an
// in-place overwrite that failed still holds either the old or a torn
// image the index no longer trusts after restart.

// degradedError rejects writes while the store is degraded. It matches
// kv.ErrDegraded via errors.Is and unwraps to the causing failure.
type degradedError struct {
	cause error
}

func (e *degradedError) Error() string {
	return fmt.Sprintf("kvell: store degraded to read-only: %v", e.cause)
}

func (e *degradedError) Unwrap() error { return e.cause }

func (e *degradedError) Is(target error) bool { return target == kv.ErrDegraded }

// noteNoSpace is called by workers (and Flush) when a slab write or sync
// fails with space exhaustion. First failure wins.
func (s *Store) noteNoSpace(cause error) {
	s.mu.Lock()
	if s.bgErr == nil && !s.closed {
		s.bgErr = &degradedError{cause: cause}
		s.diskFull = true
		s.diskFullEvents.Add(1)
		if s.spaceWatch != nil {
			s.spaceWatch.Kick()
		}
	}
	s.mu.Unlock()
}

// Health implements kv.HealthReporter.
func (s *Store) Health() kv.Health {
	h := kv.Health{
		State:            kv.StateHealthy,
		DiskFullEvents:   s.diskFullEvents.Load(),
		AutoResumes:      s.autoResumes.Load(),
		CorruptionEvents: s.corruptionEvents.Load(),
	}
	if fc, ok := s.opts.FS.(vfs.FaultCounter); ok {
		h.InjectedFaults = fc.InjectedFaults()
	}
	// worker.corrupt is written only during open, before the worker
	// goroutine starts — safe to read without the queue.
	for _, w := range s.workers {
		if w.corrupt != nil {
			h.QuarantinedFiles++ // one poisoned partition ≈ one quarantined slab set
			h.LastCorruption = w.corrupt
			h.State = kv.StateReadOnly
			h.Err = w.corrupt
		}
	}
	s.mu.RLock()
	if h.LastCorruption == nil {
		h.LastCorruption = s.lastCorr
	}
	if s.bgErr != nil {
		h.State = kv.StateReadOnly
		h.Err = s.bgErr
		h.DiskFull = s.diskFull
	}
	s.mu.RUnlock()
	return h
}

// Resume implements kv.Resumer. There is no log to re-platform: clearing
// the degraded flag is sufficient, the next write retries its slot.
func (s *Store) Resume() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return kv.ErrClosed
	}
	s.bgErr = nil
	s.diskFull = false
	return nil
}

// diskFullDegraded is the watchdog's "still stuck?" predicate.
func (s *Store) diskFullDegraded() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.diskFull && s.bgErr != nil && !s.closed
}

// spaceProbe checks whether a small durable write succeeds. No GC: the
// store owns nothing reclaimable (see package note above).
func (s *Store) spaceProbe() bool {
	return vfs.ProbeSpace(s.opts.FS, s.dir)
}

// autoResume is invoked by the watchdog once the probe succeeds while
// the store is still disk-full degraded.
func (s *Store) autoResume() {
	s.autoResumes.Add(1)
	_ = s.Resume()
}
