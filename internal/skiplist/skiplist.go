// Package skiplist provides the two skiplist flavours the paper's analysis
// contrasts (§2.2, §3.4): an exclusive-access skiplist (LevelDB-style
// MemTable, external synchronization required for writes) and a
// concurrent skiplist with lock-free CAS inserts (RocksDB's concurrent
// MemTable). Figure 8b's scalability gap between the shared concurrent
// skiplist and per-instance exclusive skiplists emerges from these two
// implementations.
//
// Both lists store opaque entries ordered by a caller-supplied comparator
// and never store duplicate-compare-equal entries' *positions* specially:
// entries must be unique under the comparator (the memtable guarantees
// this by suffixing keys with monotonically increasing sequence numbers).
package skiplist

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"p2kvs/internal/arena"
)

const (
	maxHeight = 12
	branching = 4
)

// Comparator orders entries; negative when a<b, zero when equal.
type Comparator func(a, b []byte) int

// List is the read/write contract shared by both flavours. Writes to a
// Basic list require external synchronization; Concurrent supports fully
// parallel Insert. Reads are always safe concurrently with inserts.
type List interface {
	Insert(entry []byte)
	// FindGreaterOrEqual returns the first entry >= target, or nil.
	FindGreaterOrEqual(target []byte) []byte
	// Len reports the number of inserted entries.
	Len() int
	// Iterator returns a point-in-time-ish iterator (entries inserted
	// during iteration may or may not be observed).
	Iterator() Iterator
}

// Iterator walks a skiplist in ascending order with an O(1) Next.
type Iterator interface {
	SeekToFirst()
	Seek(target []byte)
	Next()
	Valid() bool
	Entry() []byte
}

// ---------------------------------------------------------------------------
// Concurrent skiplist (CAS inserts, RocksDB-style)
// ---------------------------------------------------------------------------

type cnode struct {
	entry []byte
	tower [maxHeight]atomic.Pointer[cnode]
}

// Concurrent is a lock-free-insert skiplist.
type Concurrent struct {
	cmp    Comparator
	arena  *arena.Arena
	head   *cnode
	height atomic.Int32
	count  atomic.Int64
	seed   atomic.Uint64
}

// NewConcurrent creates a concurrent skiplist. Entries are copied into ar
// (pass nil to allocate a private arena).
func NewConcurrent(cmp Comparator, ar *arena.Arena) *Concurrent {
	if ar == nil {
		ar = arena.New()
	}
	s := &Concurrent{cmp: cmp, arena: ar, head: &cnode{}}
	s.height.Store(1)
	s.seed.Store(0x9E3779B97F4A7C15)
	return s
}

func (s *Concurrent) randomHeight() int {
	// xorshift on an atomic seed: cheap, contention-tolerant.
	for {
		old := s.seed.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if s.seed.CompareAndSwap(old, x) {
			h := 1
			for h < maxHeight && x%branching == 0 {
				h++
				x /= branching
			}
			return h
		}
	}
}

// Insert adds entry; entry bytes are copied into the arena. Safe for
// concurrent callers.
func (s *Concurrent) Insert(entry []byte) {
	stored := s.arena.Copy(entry)
	n := &cnode{entry: stored}
	height := s.randomHeight()

	// Raise the list height if needed.
	for {
		h := s.height.Load()
		if int(h) >= height || s.height.CompareAndSwap(h, int32(height)) {
			break
		}
	}

	// One top-down descent computes the splice at every level (O(log n));
	// CAS failures recompute only the affected level, restarting from the
	// stale prev (valid because nodes are never unlinked).
	var prev, next [maxHeight]*cnode
	p := s.head
	for level := maxHeight - 1; level >= 0; level-- {
		p2, n2 := s.findSpliceForLevel(stored, p, level)
		prev[level], next[level] = p2, n2
		p = p2
	}
	for level := 0; level < height; level++ {
		for {
			n.tower[level].Store(next[level])
			if prev[level].tower[level].CompareAndSwap(next[level], n) {
				break
			}
			prev[level], next[level] = s.findSpliceForLevel(stored, prev[level], level)
		}
	}
	s.count.Add(1)
}

// findSpliceForLevel walks level from start (which must compare < entry
// or be the head) to the splice position around entry.
func (s *Concurrent) findSpliceForLevel(entry []byte, start *cnode, level int) (prev, next *cnode) {
	prev = start
	for {
		next = prev.tower[level].Load()
		if next == nil || s.cmp(next.entry, entry) >= 0 {
			return prev, next
		}
		prev = next
	}
}

// findGE descends from the top level to find the first node >= target.
func (s *Concurrent) findGE(target []byte) *cnode {
	level := int(s.height.Load()) - 1
	prev := s.head
	for {
		next := prev.tower[level].Load()
		if next != nil && s.cmp(next.entry, target) < 0 {
			prev = next
			continue
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// FindGreaterOrEqual implements List.
func (s *Concurrent) FindGreaterOrEqual(target []byte) []byte {
	if n := s.findGE(target); n != nil {
		return n.entry
	}
	return nil
}

// Len implements List.
func (s *Concurrent) Len() int { return int(s.count.Load()) }

// Iterator implements List. The cursor rides node pointers directly:
// safe under concurrent inserts because nodes are immutable once linked
// and never unlinked.
func (s *Concurrent) Iterator() Iterator { return &concurrentIter{s: s} }

type concurrentIter struct {
	s   *Concurrent
	cur *cnode
}

func (it *concurrentIter) SeekToFirst()       { it.cur = it.s.head.tower[0].Load() }
func (it *concurrentIter) Seek(target []byte) { it.cur = it.s.findGE(target) }
func (it *concurrentIter) Next() {
	if it.cur != nil {
		it.cur = it.cur.tower[0].Load()
	}
}
func (it *concurrentIter) Valid() bool { return it.cur != nil }
func (it *concurrentIter) Entry() []byte {
	return it.cur.entry
}

// ---------------------------------------------------------------------------
// Basic skiplist (exclusive writes, LevelDB-style)
// ---------------------------------------------------------------------------

type bnode struct {
	entry []byte
	next  []*bnode
}

// Basic is a skiplist whose Insert requires external synchronization;
// concurrent readers are safe with a single writer thanks to the
// publication order of pointer stores being guarded by an internal
// read-write mutex (the mutex is what the paper's "MemTable lock"
// measures for the non-concurrent memtable).
type Basic struct {
	cmp   Comparator
	arena *arena.Arena
	rng   *rand.Rand

	mu     sync.RWMutex
	head   *bnode
	height int
	count  int
}

// NewBasic creates an exclusive-write skiplist.
func NewBasic(cmp Comparator, ar *arena.Arena) *Basic {
	if ar == nil {
		ar = arena.New()
	}
	return &Basic{
		cmp:    cmp,
		arena:  ar,
		rng:    rand.New(rand.NewSource(0xC0FFEE)),
		head:   &bnode{next: make([]*bnode, maxHeight)},
		height: 1,
	}
}

// Insert implements List. Callers must serialize Insert calls; the
// internal lock only protects readers from torn updates.
func (s *Basic) Insert(entry []byte) {
	stored := s.arena.Copy(entry)
	height := 1
	for height < maxHeight && s.rng.Intn(branching) == 0 {
		height++
	}
	n := &bnode{entry: stored, next: make([]*bnode, height)}

	s.mu.Lock()
	if height > s.height {
		s.height = height
	}
	prev := s.head
	for level := s.height - 1; level >= 0; level-- {
		for prev.next[level] != nil && s.cmp(prev.next[level].entry, stored) < 0 {
			prev = prev.next[level]
		}
		if level < height {
			n.next[level] = prev.next[level]
			prev.next[level] = n
		}
	}
	s.count++
	s.mu.Unlock()
}

func (s *Basic) findGE(target []byte) *bnode {
	prev := s.head
	for level := s.height - 1; level >= 0; level-- {
		for prev.next[level] != nil && s.cmp(prev.next[level].entry, target) < 0 {
			prev = prev.next[level]
		}
		if level == 0 {
			return prev.next[0]
		}
	}
	return nil
}

// FindGreaterOrEqual implements List.
func (s *Basic) FindGreaterOrEqual(target []byte) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if n := s.findGE(target); n != nil {
		return n.entry
	}
	return nil
}

// Len implements List.
func (s *Basic) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Iterator implements List. The read lock is taken per positioning call,
// so a single writer may interleave between steps; entries already
// visited stay valid (nodes are never unlinked).
func (s *Basic) Iterator() Iterator { return &basicIter{s: s} }

type basicIter struct {
	s   *Basic
	cur *bnode
}

func (it *basicIter) SeekToFirst() {
	it.s.mu.RLock()
	it.cur = it.s.head.next[0]
	it.s.mu.RUnlock()
}

func (it *basicIter) Seek(target []byte) {
	it.s.mu.RLock()
	it.cur = it.s.findGE(target)
	it.s.mu.RUnlock()
}

func (it *basicIter) Next() {
	if it.cur == nil {
		return
	}
	it.s.mu.RLock()
	it.cur = it.cur.next[0]
	it.s.mu.RUnlock()
}

func (it *basicIter) Valid() bool   { return it.cur != nil }
func (it *basicIter) Entry() []byte { return it.cur.entry }
