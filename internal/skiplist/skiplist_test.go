package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func lists() map[string]func() List {
	return map[string]func() List{
		"concurrent": func() List { return NewConcurrent(bytes.Compare, nil) },
		"basic":      func() List { return NewBasic(bytes.Compare, nil) },
	}
}

func TestInsertAndFind(t *testing.T) {
	for name, mk := range lists() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			keys := []string{"banana", "apple", "cherry", "date"}
			for _, k := range keys {
				l.Insert([]byte(k))
			}
			if l.Len() != 4 {
				t.Fatalf("len = %d", l.Len())
			}
			if got := l.FindGreaterOrEqual([]byte("apple")); string(got) != "apple" {
				t.Fatalf("FindGE(apple) = %q", got)
			}
			if got := l.FindGreaterOrEqual([]byte("b")); string(got) != "banana" {
				t.Fatalf("FindGE(b) = %q", got)
			}
			if got := l.FindGreaterOrEqual([]byte("zzz")); got != nil {
				t.Fatalf("FindGE(zzz) = %q, want nil", got)
			}
		})
	}
}

func TestIteratorOrdered(t *testing.T) {
	for name, mk := range lists() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			r := rand.New(rand.NewSource(7))
			want := make([]string, 0, 500)
			seen := map[string]bool{}
			for len(want) < 500 {
				k := fmt.Sprintf("key-%06d", r.Intn(1_000_000))
				if !seen[k] {
					seen[k] = true
					want = append(want, k)
					l.Insert([]byte(k))
				}
			}
			sort.Strings(want)

			it := l.Iterator()
			var got []string
			for it.SeekToFirst(); it.Valid(); it.Next() {
				got = append(got, string(it.Entry()))
			}
			if len(got) != len(want) {
				t.Fatalf("iterated %d entries, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("entry %d = %q, want %q", i, got[i], want[i])
				}
			}
		})
	}
}

func TestIteratorSeek(t *testing.T) {
	for name, mk := range lists() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			for i := 0; i < 100; i += 2 {
				l.Insert([]byte(fmt.Sprintf("k%03d", i)))
			}
			it := l.Iterator()
			it.Seek([]byte("k051")) // odd: should land on k052
			if !it.Valid() || string(it.Entry()) != "k052" {
				t.Fatalf("Seek(k051) = %q", it.Entry())
			}
			it.Seek([]byte("k098"))
			if !it.Valid() || string(it.Entry()) != "k098" {
				t.Fatalf("Seek(k098) = %q", it.Entry())
			}
			it.Next()
			if it.Valid() {
				t.Fatalf("expected end, got %q", it.Entry())
			}
		})
	}
}

func TestEmptyList(t *testing.T) {
	for name, mk := range lists() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			if l.Len() != 0 {
				t.Fatal("empty list has entries")
			}
			if l.FindGreaterOrEqual([]byte("x")) != nil {
				t.Fatal("FindGE on empty list")
			}
			it := l.Iterator()
			it.SeekToFirst()
			if it.Valid() {
				t.Fatal("iterator valid on empty list")
			}
		})
	}
}

// TestQuickAgainstSortedSlice is a property test: inserting any set of
// unique strings yields exactly the sorted set under iteration, and
// FindGreaterOrEqual agrees with sort.SearchStrings.
func TestQuickAgainstSortedSlice(t *testing.T) {
	for name, mk := range lists() {
		t.Run(name, func(t *testing.T) {
			fn := func(raw []string, probe string) bool {
				uniq := map[string]bool{}
				for _, s := range raw {
					uniq[s] = true
				}
				var keys []string
				l := mk()
				for s := range uniq {
					keys = append(keys, s)
					l.Insert([]byte(s))
				}
				sort.Strings(keys)

				it := l.Iterator()
				i := 0
				for it.SeekToFirst(); it.Valid(); it.Next() {
					if i >= len(keys) || string(it.Entry()) != keys[i] {
						return false
					}
					i++
				}
				if i != len(keys) {
					return false
				}

				idx := sort.SearchStrings(keys, probe)
				got := l.FindGreaterOrEqual([]byte(probe))
				if idx == len(keys) {
					return got == nil
				}
				return string(got) == keys[idx]
			}
			if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentInserters(t *testing.T) {
	l := NewConcurrent(bytes.Compare, nil)
	const (
		goroutines = 8
		perG       = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Insert([]byte(fmt.Sprintf("g%02d-%06d", g, i)))
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != goroutines*perG {
		t.Fatalf("len = %d, want %d", l.Len(), goroutines*perG)
	}
	// Every inserted key must be findable and the iteration sorted.
	it := l.Iterator()
	prev := ""
	n := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		cur := string(it.Entry())
		if prev != "" && cur <= prev {
			t.Fatalf("out of order: %q after %q", cur, prev)
		}
		prev = cur
		n++
	}
	if n != goroutines*perG {
		t.Fatalf("iterated %d, want %d", n, goroutines*perG)
	}
}

func TestConcurrentReadDuringWrite(t *testing.T) {
	l := NewConcurrent(bytes.Compare, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			l.Insert([]byte(fmt.Sprintf("w-%06d", i)))
		}
	}()
	// Readers run concurrently; they must never observe corruption
	// (panic/unsorted results).
	for i := 0; i < 1000; i++ {
		e := l.FindGreaterOrEqual([]byte("w-"))
		if e != nil && !bytes.HasPrefix(e, []byte("w-")) {
			t.Fatalf("corrupt entry %q", e)
		}
	}
	<-done
}

func TestInsertDoesNotAliasCallerBuffer(t *testing.T) {
	for name, mk := range lists() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			buf := []byte("mutable")
			l.Insert(buf)
			buf[0] = 'X'
			if got := l.FindGreaterOrEqual([]byte("mutable")); string(got) != "mutable" {
				t.Fatalf("list aliased caller buffer: %q", got)
			}
		})
	}
}
