// Package metrics provides the virtual CPU accounting that replaces the
// paper's per-core utilization measurements (mpstat/pidstat on a 44-core
// machine). Each logical thread of interest — user threads, p2KVS
// workers, engine background threads — owns a Meter and brackets its busy
// sections with Busy()/Idle(). Utilization is busy-time divided by
// wall-time over the measured window, which is exactly what the paper
// plots in Figures 4, 5c, 21c/d and Table 2.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// Meter accumulates busy nanoseconds for one logical thread.
type Meter struct {
	name string
	busy atomic.Int64 // completed busy nanoseconds
	// start of the current busy section, unix nanos; 0 when idle.
	sectionStart atomic.Int64
}

// NewMeter creates a named meter.
func NewMeter(name string) *Meter { return &Meter{name: name} }

// Name returns the meter's label.
func (m *Meter) Name() string { return m.name }

// Busy marks the beginning of a busy section.
func (m *Meter) Busy() {
	m.sectionStart.Store(time.Now().UnixNano())
}

// Idle marks the end of the current busy section.
func (m *Meter) Idle() {
	start := m.sectionStart.Swap(0)
	if start != 0 {
		m.busy.Add(time.Now().UnixNano() - start)
	}
}

// Add credits d of busy time directly (for code that measures sections
// itself).
func (m *Meter) Add(d time.Duration) { m.busy.Add(int64(d)) }

// BusyTime reports accumulated busy time including any open section.
func (m *Meter) BusyTime() time.Duration {
	busy := m.busy.Load()
	if start := m.sectionStart.Load(); start != 0 {
		busy += time.Now().UnixNano() - start
	}
	return time.Duration(busy)
}

// Reset zeroes the accumulated busy time.
func (m *Meter) Reset() {
	m.busy.Store(0)
	if m.sectionStart.Load() != 0 {
		m.sectionStart.Store(time.Now().UnixNano())
	}
}

// Group tracks a set of meters plus the wall-clock window they run in, and
// turns them into per-thread and aggregate utilizations.
type Group struct {
	mu     sync.Mutex
	meters []*Meter
	start  time.Time
}

// NewGroup creates an empty meter group with the window starting now.
func NewGroup() *Group { return &Group{start: time.Now()} }

// Meter creates, registers and returns a new meter.
func (g *Group) Meter(name string) *Meter {
	m := NewMeter(name)
	g.mu.Lock()
	g.meters = append(g.meters, m)
	g.mu.Unlock()
	return m
}

// Restart resets the window and all meters.
func (g *Group) Restart() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.start = time.Now()
	for _, m := range g.meters {
		m.Reset()
	}
}

// Utilization describes one meter's share of its window.
type Utilization struct {
	Name string
	Busy time.Duration
	Frac float64 // busy / wall, i.e. fraction of one core
}

// Snapshot returns per-meter utilizations and the total (in units of
// cores, i.e. 1.0 = one fully-busy core — the paper's "100%" notation).
func (g *Group) Snapshot() (perMeter []Utilization, totalCores float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	wall := time.Since(g.start)
	if wall <= 0 {
		wall = time.Nanosecond
	}
	for _, m := range g.meters {
		busy := m.BusyTime()
		frac := float64(busy) / float64(wall)
		perMeter = append(perMeter, Utilization{Name: m.name, Busy: busy, Frac: frac})
		totalCores += frac
	}
	return perMeter, totalCores
}

// Wall reports the elapsed window duration.
func (g *Group) Wall() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return time.Since(g.start)
}
