package metrics

import (
	"testing"
	"time"
)

func TestMeterBusyIdle(t *testing.T) {
	m := NewMeter("w0")
	m.Busy()
	time.Sleep(20 * time.Millisecond)
	m.Idle()
	busy := m.BusyTime()
	if busy < 15*time.Millisecond || busy > 200*time.Millisecond {
		t.Fatalf("busy = %v, want ~20ms", busy)
	}
	if m.Name() != "w0" {
		t.Fatalf("name = %q", m.Name())
	}
}

func TestMeterOpenSectionCounts(t *testing.T) {
	m := NewMeter("w")
	m.Busy()
	time.Sleep(10 * time.Millisecond)
	if m.BusyTime() < 5*time.Millisecond {
		t.Fatal("open busy section not counted")
	}
	m.Idle()
}

func TestMeterAddAndReset(t *testing.T) {
	m := NewMeter("w")
	m.Add(time.Second)
	if m.BusyTime() != time.Second {
		t.Fatalf("busy = %v", m.BusyTime())
	}
	m.Reset()
	if m.BusyTime() != 0 {
		t.Fatal("reset failed")
	}
}

func TestGroupSnapshot(t *testing.T) {
	g := NewGroup()
	a := g.Meter("a")
	b := g.Meter("b")
	a.Busy()
	time.Sleep(30 * time.Millisecond)
	a.Idle()
	b.Add(15 * time.Millisecond)

	per, total := g.Snapshot()
	if len(per) != 2 {
		t.Fatalf("snapshot has %d meters", len(per))
	}
	if per[0].Frac <= 0 || per[0].Frac > 1.5 {
		t.Fatalf("frac(a) = %v", per[0].Frac)
	}
	if total < per[0].Frac {
		t.Fatal("total must be >= each fraction")
	}
	if g.Wall() <= 0 {
		t.Fatal("wall must advance")
	}

	g.Restart()
	_, total2 := g.Snapshot()
	if total2 > total {
		t.Fatalf("restart did not reset: %v -> %v", total, total2)
	}
}
