// Package replboot builds replication-enabled in-memory stores: a fresh
// primary/replica store over a MemFS, and the Config.RestoreStore
// callback the network server's replica manager uses to rebuild its
// serving store from a received full-sync image. The server tests,
// netbench's -cluster mode and the cluster client tests all boot
// in-process nodes through these helpers; the real p2kvs-server binary
// wires the equivalent host-filesystem callback through p2kvs.Restore.
package replboot

import (
	"fmt"

	"p2kvs/internal/checkpoint"
	"p2kvs/internal/core"
	"p2kvs/internal/device"
	"p2kvs/internal/kv"
	"p2kvs/internal/lsm"
	"p2kvs/internal/repl"
	"p2kvs/internal/vfs"
)

// root is the store directory inside each node's private MemFS.
const root = "db"

// Sim makes a booted node's IO pass through its own simulated storage
// device, so per-node throughput is bound by (scaled) device service
// time rather than by shared host CPU — the regime the paper evaluates
// in, and the only one where multi-node scaling is observable on a
// small host. BlockCache optionally clamps the per-instance LSM block
// cache so a read benchmark actually reaches the device instead of
// serving every lookup from DRAM.
type Sim struct {
	Device     *device.Device // nil: direct MemFS access, no IO charges
	BlockCache int64          // >0: per-instance block cache budget override
}

func (s Sim) wrap(fs vfs.FS) vfs.FS {
	if s.Device == nil {
		return fs
	}
	return device.WrapFS(fs, s.Device)
}

func factory(fs vfs.FS, cache int64) core.EngineFactory {
	return func(id int, filter func(uint64) bool) (kv.Engine, error) {
		lo := lsm.RocksDBOptions(fs)
		if cache > 0 {
			lo.BlockCacheSize = cache
		}
		return lsm.OpenWith(fmt.Sprintf("%s/inst-%02d", root, id),
			lo, lsm.OpenOptions{RecoverFilter: filter})
	}
}

func open(fs vfs.FS, workers int, backlog, cache int64) (*core.Store, error) {
	opts := core.DefaultOptions(factory(fs, cache))
	opts.Workers = workers
	opts.TxnFS = fs
	opts.TxnDir = root + "/txn"
	opts.EngineName = "rocksdb"
	opts.ReplLog = repl.NewLog(workers, backlog)
	return core.Open(opts)
}

// MemStore opens a fresh replication-enabled LSM store over a private
// in-memory filesystem. backlog <= 0 selects the default budget.
func MemStore(workers int, backlog int64) (*core.Store, error) {
	return MemStoreSim(workers, backlog, Sim{})
}

// MemStoreSim is MemStore with the node's private filesystem routed
// through a simulated device.
func MemStoreSim(workers int, backlog int64, sim Sim) (*core.Store, error) {
	return open(sim.wrap(vfs.NewMem()), workers, backlog, sim.BlockCache)
}

// MemRestore returns a server.Config.RestoreStore callback: it verifies
// and materializes the full-sync image at srcDir into a fresh in-memory
// filesystem (the old store was already closed by the caller) and opens
// a replication-enabled store from it, adopting the image's worker
// count.
func MemRestore(backlog int64) func(srcFS vfs.FS, srcDir string) (*core.Store, error) {
	return MemRestoreSim(backlog, Sim{})
}

// MemRestoreSim is MemRestore with the rebuilt store routed through a
// simulated device. The image itself is materialized without IO charges
// (bootstrap, not steady state); recovery reads and all serving IO after
// the open are charged.
func MemRestoreSim(backlog int64, sim Sim) func(srcFS vfs.FS, srcDir string) (*core.Store, error) {
	return func(srcFS vfs.FS, srcDir string) (*core.Store, error) {
		dst := vfs.NewMem()
		place := func(worker int, rel string) string {
			if worker < 0 {
				return root + "/txn/" + rel
			}
			return fmt.Sprintf("%s/inst-%02d/%s", root, worker, rel)
		}
		m, err := checkpoint.Restore(srcFS, srcDir, dst, place)
		if err != nil {
			return nil, err
		}
		return open(sim.wrap(dst), m.Workers, backlog, sim.BlockCache)
	}
}
