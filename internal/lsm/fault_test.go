package lsm

import (
	"fmt"
	"testing"

	"p2kvs/internal/vfs"
	"p2kvs/internal/wal"
)

func newTestWAL(f vfs.File) *wal.Writer {
	return wal.NewWriter(f, wal.Options{SyncOnCommit: true})
}

// TestSyncFailureSurfacesToWriter: with synchronous durability, an
// injected fsync failure must fail the triggering write, not be
// swallowed.
func TestSyncFailureSurfacesToWriter(t *testing.T) {
	fs := vfs.NewFault(vfs.NewMem())
	opts := smallOpts(fs)
	opts.SyncWAL = true
	db, _ := Open("db", opts)
	defer db.Close()
	if err := db.Put([]byte("ok"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	fs.Inject(vfs.Rule{Op: vfs.OpSync, Path: ".log", CountN: 1, OneShot: true})
	if err := db.Put([]byte("doomed"), []byte("v")); err == nil {
		t.Fatal("write must fail when its commit sync fails")
	}
	// The engine stays usable for subsequent writes: the tainted WAL was
	// rotated away.
	if err := db.Put([]byte("after"), []byte("v")); err != nil {
		t.Fatalf("engine wedged after sync failure: %v", err)
	}
}

// TestFlushErrorPoisonsEngine: an IO failure in the background flush must
// surface as a background error that fails subsequent writes instead of
// silently losing the memtable.
func TestFlushErrorPoisonsEngine(t *testing.T) {
	fs := vfs.NewMem()
	opts := smallOpts(fs)
	opts.MemTableSize = 4 << 10
	db, _ := Open("db", opts)
	defer db.Close()

	// Freeze the filesystem so the next flush's SST write fails, while
	// foreground WAL appends also fail. Writes must start erroring.
	fs.Crash()
	var sawErr bool
	for i := 0; i < 500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), make([]byte, 64)); err != nil {
			sawErr = true
			break
		}
	}
	fs.Restart()
	if !sawErr {
		t.Fatal("no error surfaced while the filesystem was down")
	}
}

// TestCorruptManifestRejected: a manifest whose tail record decodes to a
// bogus tag must fail open rather than silently produce an empty store.
func TestCorruptManifestRejected(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("db", smallOpts(fs))
	db.Put([]byte("k"), []byte("v"))
	db.Flush()
	db.Close()

	// Overwrite MANIFEST with a record whose payload is garbage. The WAL
	// framing (crc) is valid, so the corruption must be caught by the
	// edit decoder.
	f, err := fs.Open("db/MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	nf, _ := fs.Create("db/MANIFEST")
	// Valid wal record framing around an invalid edit: tag 99.
	w := newTestWAL(nf)
	w.Append(0, []byte{99})
	w.Close()

	if _, err := Open("db", smallOpts(fs)); err == nil {
		t.Fatal("corrupt manifest must fail open")
	}
}
