package lsm

import (
	"testing"

	"p2kvs/internal/kv"
)

// FuzzDecodeBatchPayload: WAL payloads come off disk; arbitrary bytes
// must decode to an error or a well-formed op list, never panic.
func FuzzDecodeBatchPayload(f *testing.F) {
	var b kv.Batch
	b.Put([]byte("key"), []byte("value"))
	b.Delete([]byte("gone"))
	f.Add(encodeBatchPayload(42, &b))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	valid := encodeBatchPayload(1, &b)
	truncated := valid[:len(valid)-2]
	f.Add(truncated)
	huge := append([]byte(nil), valid...)
	huge[8] = 0xff // absurd op count
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		base, ops, err := decodeBatchPayload(data)
		if err != nil {
			return
		}
		_ = base
		for _, op := range ops {
			if op.Kind != kv.OpPut && op.Kind != kv.OpDelete {
				// Unknown kinds may decode (1 byte is 1 byte); replay
				// treats non-delete as set, which is safe.
				_ = op
			}
		}
	})
}

// FuzzBatchPayloadRoundTrip: encode(decode(encode(x))) is stable for any
// op mix.
func FuzzBatchPayloadRoundTrip(f *testing.F) {
	f.Add([]byte("k1"), []byte("v1"), []byte("k2"), true)
	f.Fuzz(func(t *testing.T, k1, v1, k2 []byte, del bool) {
		var b kv.Batch
		b.Put(k1, v1)
		if del {
			b.Delete(k2)
		} else {
			b.Put(k2, nil)
		}
		payload := encodeBatchPayload(7, &b)
		base, ops, err := decodeBatchPayload(payload)
		if err != nil {
			t.Fatal(err)
		}
		if base != 7 || len(ops) != 2 {
			t.Fatalf("base=%d ops=%d", base, len(ops))
		}
		if string(ops[0].Key) != string(k1) || string(ops[0].Value) != string(v1) {
			t.Fatalf("op0 = %q/%q", ops[0].Key, ops[0].Value)
		}
		if string(ops[1].Key) != string(k2) {
			t.Fatalf("op1 key = %q", ops[1].Key)
		}
	})
}
