package lsm

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"p2kvs/internal/kv"
	"p2kvs/internal/manifest"
	"p2kvs/internal/vfs"
	"p2kvs/internal/wal"
)

// Background-error handling.
//
// A flush or compaction that fails no longer wedges the engine. Errors are
// classified transient vs. permanent: transient failures (the common SSD
// case — EIO on fsync, a torn write) are retried in place with capped
// exponential backoff, keeping the memtable and WAL alive so no
// acknowledged write is lost. Only when retries are exhausted (or the
// error is permanent) does the engine degrade to read-only: writes fail
// fast with an error matching kv.ErrDegraded while reads keep serving the
// existing state. Resume() clears the degraded state and re-kicks the
// background work, rotating away from a tainted WAL so writes can land.
//
//	healthy ──bg failure──▶ retrying ──success──▶ healthy
//	                           │
//	                 retries exhausted / permanent
//	                           ▼
//	                       read-only ──Resume()──▶ healthy (re-attempts)

// degradedError is the write-blocking error installed when retries are
// exhausted. It matches kv.ErrDegraded via errors.Is and unwraps to the
// background failure that caused it.
type degradedError struct {
	job   string
	cause error
}

func (e *degradedError) Error() string {
	return fmt.Sprintf("lsm: %s failed, engine degraded to read-only: %v", e.job, e.cause)
}

func (e *degradedError) Unwrap() error { return e.cause }

func (e *degradedError) Is(target error) bool { return target == kv.ErrDegraded }

// isPermanentBgErr reports whether a background error cannot be cured by
// retrying. Everything else — including injected faults — is assumed
// transient.
func isPermanentBgErr(err error) bool {
	return errors.Is(err, kv.ErrClosed) || errors.Is(err, wal.ErrClosed)
}

// updateStateLocked recomputes the health state from the error fields and
// publishes it to the lock-free mirror. Caller holds d.mu.
func (d *DB) updateStateLocked() {
	var s kv.HealthState
	switch {
	case d.bgErr != nil:
		s = kv.StateReadOnly
	case d.flushFailing || d.compactFailing:
		s = kv.StateRetrying
	default:
		s = kv.StateHealthy
	}
	d.stateA.Store(int32(s))
}

// degradeLocked installs the write-blocking degraded error (first failure
// wins) and wakes every stalled writer and Flush waiter so they observe
// it. A degrade caused by space exhaustion additionally enters disk-full
// mode: the space watchdog starts polling (reclaiming obsolete files and
// probing for freed space) so the engine auto-resumes without operator
// intervention. Caller holds d.mu.
func (d *DB) degradeLocked(job string, cause error) {
	if d.bgErr == nil {
		d.bgErr = &degradedError{job: job, cause: cause}
		d.bgCause = cause
		if vfs.IsNoSpace(cause) {
			d.diskFull = true
			d.perf.diskFullEvents.Add(1)
			if d.spaceWatch != nil {
				d.spaceWatch.Kick()
			}
		}
	}
	d.updateStateLocked()
	d.cond.Broadcast()
}

// noteBgFailure records a failed background attempt (attempt is 0-based)
// and reports whether the job should retry. It returns false when the
// engine is closing, already degraded, or this failure exhausted the
// retry budget (degrading the engine).
func (d *DB) noteBgFailure(job string, err error, attempt int) bool {
	if d.closed.Load() {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.bgErr != nil {
		return false
	}
	d.bgCause = err
	if job == "flush" {
		d.flushFailing = true
	} else {
		d.compactFailing = true
	}
	// ENOSPC degrades immediately rather than burning the retry budget:
	// re-running the job cannot free space, while degrading at once lets
	// the watchdog start reclaiming and keeps reads served in the
	// meantime.
	if isPermanentBgErr(err) || vfs.IsNoSpace(err) || attempt+1 >= d.opts.BgMaxRetries {
		d.degradeLocked(job, err)
		return false
	}
	d.updateStateLocked()
	return true
}

// clearBgFailure marks a previously failing job healthy again.
func (d *DB) clearBgFailure(job string) {
	d.mu.Lock()
	if job == "flush" {
		d.flushFailing = false
	} else {
		d.compactFailing = false
	}
	if !d.flushFailing && !d.compactFailing && d.bgErr == nil {
		d.bgCause = nil
	}
	d.updateStateLocked()
	d.mu.Unlock()
}

// backoffWait sleeps the capped-exponential delay for the given retry
// (1-based), returning false if the engine shut down while waiting.
func (d *DB) backoffWait(retry int) bool {
	delay := d.opts.BgBaseBackoff
	for i := 1; i < retry && delay < d.opts.BgMaxBackoff; i++ {
		delay *= 2
	}
	if delay > d.opts.BgMaxBackoff {
		delay = d.opts.BgMaxBackoff
	}
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-d.stopC:
		return false
	case <-t.C:
		return true
	}
}

// noteWriteFailure reacts to a failed foreground WAL append. The failed
// write may have left a torn record, tainting the log: no later append
// may land in it (it would be unreadable at replay), so rotate to a fresh
// memtable+WAL pair. Only the first failed writer rotates — later ones
// find the handle already retired.
func (d *DB) noteWriteFailure(h *memHandle, err error) {
	if errors.Is(err, wal.ErrClosed) || d.closed.Load() {
		return
	}
	d.mu.Lock()
	if vfs.IsNoSpace(err) {
		// The disk is full: rotating would create another file on the
		// same full disk (and push more memtables at a flush path that
		// cannot write either). Degrade instead; Resume rotates away from
		// the tainted log once space is back.
		d.degradeLocked("wal append", err)
		d.mu.Unlock()
		return
	}
	if d.memH == h && h.walw != nil && h.walw.Tainted() {
		d.rotateLocked()
	}
	d.mu.Unlock()
}

// applyEdit durably records a version edit. On failure the MANIFEST log
// may hold a torn tail (stranding later edits) or a record of unknown
// durability (which a blind retry would double-apply at replay), so it is
// rewritten from a clean snapshot; once that rewrite succeeds, the orphan
// SSTs the edit would have installed are deleted — they are unreferenced
// by the fresh snapshot, so this is crash-safe.
func (d *DB) applyEdit(edit *manifest.VersionEdit, orphans ...uint64) error {
	err := d.vs.LogAndApply(edit)
	if err == nil {
		return nil
	}
	if rerr := d.vs.Rotate(); rerr == nil {
		for _, num := range orphans {
			d.opts.FS.Remove(sstName(d.dir, num))
		}
	}
	return err
}

// Health implements kv.HealthReporter. The healthy fast path reads only
// atomics.
func (d *DB) Health() kv.Health {
	h := kv.Health{
		State:          kv.HealthState(d.stateA.Load()),
		FlushRetries:   d.perf.flushRetries.Load(),
		CompactRetries: d.perf.compactRetries.Load(),
	}
	if fc, ok := d.opts.FS.(vfs.FaultCounter); ok {
		h.InjectedFaults = fc.InjectedFaults()
	}
	h.DiskFullEvents = d.perf.diskFullEvents.Load()
	h.AutoResumes = d.perf.autoResumes.Load()
	h.CorruptionEvents = d.perf.corruptionEvents.Load()
	h.QuarantinedFiles = d.perf.quarCount.Load()
	h.RepairedFiles = d.perf.repairedFiles.Load()
	if h.State != kv.StateHealthy || h.CorruptionEvents > 0 {
		d.mu.Lock()
		if d.bgErr != nil {
			h.Err = d.bgErr
		} else {
			h.Err = d.bgCause
		}
		h.DiskFull = d.diskFull
		h.LastCorruption = d.lastCorruption
		d.mu.Unlock()
	}
	return h
}

// Resume implements kv.Resumer: it clears the degraded state and
// re-attempts the failed background work. If the current WAL was tainted
// by the incident, the memtable is rotated so new writes get a fresh log.
func (d *DB) Resume() error {
	if d.closed.Load() {
		return kv.ErrClosed
	}
	d.mu.Lock()
	d.bgErr = nil
	d.bgCause = nil
	d.flushFailing = false
	d.compactFailing = false
	d.diskFull = false
	d.updateStateLocked()
	if d.wal != nil && d.wal.Tainted() {
		d.rotateLocked()
	}
	d.kick()
	d.cond.Broadcast()
	d.mu.Unlock()
	if !d.opts.BackgroundCompaction {
		for d.flushOne() {
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Disk-full handling: obsolete-file GC and the auto-resume watchdog
// ---------------------------------------------------------------------------

// diskFullDegraded is the watchdog's "still stuck?" predicate.
func (d *DB) diskFullDegraded() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.diskFull && d.bgErr != nil
}

// spaceProbe first garbage-collects files no longer referenced by the
// current version (a full disk is exactly when reclaiming them matters
// most), then checks whether a small durable write succeeds.
func (d *DB) spaceProbe() bool {
	d.reclaimSpace()
	return vfs.ProbeSpace(d.opts.FS, d.dir)
}

// autoResume is invoked by the watchdog once the probe succeeds while the
// engine is still disk-full degraded.
func (d *DB) autoResume() {
	d.perf.autoResumes.Add(1)
	_ = d.Resume()
}

// reclaimSpace deletes files in the instance directory that nothing
// references: SSTs absent from the current version and logs older than
// the manifest's LogNum (already flushed). It only runs while the engine
// is degraded — no flush or compaction can start then, so a name absent
// from the snapshot taken under d.mu cannot become live again (file
// numbers are never reused) — and defers to checkpoint pins, which may
// still reference retired files.
func (d *DB) reclaimSpace() {
	d.mu.Lock()
	if d.bgErr == nil || d.closed.Load() || d.ckptPins > 0 || len(d.compRunning) > 0 {
		d.mu.Unlock()
		return
	}
	live := make(map[string]bool)
	for _, level := range d.vs.Current().Levels {
		for _, fm := range level {
			live[sstName(d.dir, fm.Num)] = true
		}
	}
	if d.memH != nil && d.memH.walw != nil {
		live[walName(d.dir, d.memH.logNum)] = true
	}
	for _, h := range d.imm {
		if h.walw != nil {
			live[walName(d.dir, h.logNum)] = true
		}
	}
	minLog := d.vs.LogNum
	names, err := d.opts.FS.List(d.dir)
	if err != nil {
		d.mu.Unlock()
		return
	}
	var victims []string
	for _, name := range names {
		full := d.dir + "/" + name
		if live[full] {
			continue
		}
		switch {
		case strings.HasSuffix(name, ".sst"):
			victims = append(victims, full)
		case strings.HasSuffix(name, ".log"):
			var num uint64
			if _, err := fmt.Sscanf(name, "%06d.log", &num); err == nil && num < minLog {
				victims = append(victims, full)
			}
		}
	}
	d.mu.Unlock()
	for _, v := range victims {
		d.opts.FS.Remove(v)
	}
}
