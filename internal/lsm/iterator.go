package lsm

import (
	"bytes"
	"container/heap"

	"p2kvs/internal/ikey"
	"p2kvs/internal/kv"
	"p2kvs/internal/manifest"
	"p2kvs/internal/memtable"
	"p2kvs/internal/sstable"
)

// internalIterator walks internal keys in ikey order.
type internalIterator interface {
	SeekToFirst()
	Seek(target []byte)
	Next()
	Valid() bool
	Key() []byte
	Value() []byte
	Err() error
	Close() error
}

// memIterAdapter lifts memtable.Iter to internalIterator.
type memIterAdapter struct{ *memtable.Iter }

func (memIterAdapter) Err() error   { return nil }
func (memIterAdapter) Close() error { return nil }

// tableIterAdapter lifts sstable.Iter and owns its reader (iterators open
// private readers so compaction deleting a file cannot yank a shared
// handle out from under a live scan).
type tableIterAdapter struct {
	*sstable.Iter
	r *sstable.Reader
}

func (t tableIterAdapter) Close() error { return t.r.Close() }

// mergingIter merges children by internal-key order.
type mergingIter struct {
	children []internalIterator
	h        iterHeap
	err      error
}

type iterHeap []internalIterator

func (h iterHeap) Len() int { return len(h) }
func (h iterHeap) Less(i, j int) bool {
	return ikey.Compare(h[i].Key(), h[j].Key()) < 0
}
func (h iterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x interface{}) { *h = append(*h, x.(internalIterator)) }
func (h *iterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func newMergingIter(children []internalIterator) *mergingIter {
	return &mergingIter{children: children}
}

func (m *mergingIter) rebuild() {
	m.h = m.h[:0]
	for _, c := range m.children {
		if err := c.Err(); err != nil && m.err == nil {
			m.err = err
		}
		if c.Valid() {
			m.h = append(m.h, c)
		}
	}
	heap.Init(&m.h)
}

func (m *mergingIter) SeekToFirst() {
	for _, c := range m.children {
		c.SeekToFirst()
	}
	m.rebuild()
}

func (m *mergingIter) Seek(target []byte) {
	for _, c := range m.children {
		c.Seek(target)
	}
	m.rebuild()
}

func (m *mergingIter) Valid() bool { return m.err == nil && len(m.h) > 0 }

func (m *mergingIter) Next() {
	if !m.Valid() {
		return
	}
	top := m.h[0]
	top.Next()
	if err := top.Err(); err != nil && m.err == nil {
		m.err = err
		return
	}
	if top.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
}

func (m *mergingIter) Key() []byte   { return m.h[0].Key() }
func (m *mergingIter) Value() []byte { return m.h[0].Value() }
func (m *mergingIter) Err() error    { return m.err }

func (m *mergingIter) Close() error {
	var first error
	for _, c := range m.children {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ---------------------------------------------------------------------------
// DB iterator (user-facing)
// ---------------------------------------------------------------------------

// dbIter collapses internal versions into live user keys at a snapshot.
type dbIter struct {
	merge *mergingIter
	snap  uint64

	key    []byte
	value  []byte
	valid  bool
	err    error
	skipUK []byte // user key whose remaining (older) versions are shadowed
}

var _ kv.Iterator = (*dbIter)(nil)

// newIterAt builds an internal iterator forest for a read state.
func (d *DB) newIterAt(rs readState) (*dbIter, error) {
	var children []internalIterator
	children = append(children, memIterAdapter{rs.mem.NewIterator()})
	for _, m := range rs.imms {
		children = append(children, memIterAdapter{m.NewIterator()})
	}
	addTable := func(fm *manifest.FileMeta) error {
		f, err := d.opts.FS.Open(sstName(d.dir, fm.Num))
		if err != nil {
			return err
		}
		r, err := sstable.OpenWithCache(f, d.blocks, fm.Num)
		if err != nil {
			f.Close()
			return err
		}
		children = append(children, tableIterAdapter{r.NewIterator(), r})
		return nil
	}
	for level := 0; level < manifest.NumLevels; level++ {
		for _, fm := range rs.ver.Levels[level] {
			if err := addTable(fm); err != nil {
				for _, c := range children {
					c.Close()
				}
				return nil, err
			}
		}
	}
	return &dbIter{merge: newMergingIter(children), snap: rs.seq}, nil
}

// NewIterator implements kv.Engine.
func (d *DB) NewIterator() (kv.Iterator, error) {
	if d.closed.Load() {
		return nil, kv.ErrClosed
	}
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		it, err := d.newIterAt(d.acquireReadState())
		if !isStaleFileErr(err) {
			return it, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// advance walks the merged stream to the next live, visible user key.
func (it *dbIter) advance() {
	it.valid = false
	for it.merge.Valid() {
		uk, seq, kind, err := ikey.Decode(it.merge.Key())
		if err != nil {
			it.err = err
			return
		}
		if seq > it.snap {
			it.merge.Next()
			continue
		}
		if it.skipUK != nil && bytes.Equal(uk, it.skipUK) {
			// Older version of a key we already surfaced or tombstoned.
			it.merge.Next()
			continue
		}
		it.skipUK = append(it.skipUK[:0], uk...)
		if kind == ikey.KindDelete {
			it.merge.Next()
			continue
		}
		it.key = append(it.key[:0], uk...)
		it.value = append(it.value[:0], it.merge.Value()...)
		it.valid = true
		return
	}
	if err := it.merge.Err(); err != nil && it.err == nil {
		it.err = err
	}
}

// SeekToFirst implements kv.Iterator.
func (it *dbIter) SeekToFirst() {
	it.skipUK = nil
	it.merge.SeekToFirst()
	it.advance()
}

// Seek implements kv.Iterator.
func (it *dbIter) Seek(target []byte) {
	it.skipUK = nil
	it.merge.Seek(ikey.SeekKey(target, it.snap))
	it.advance()
}

// Next implements kv.Iterator.
func (it *dbIter) Next() {
	if !it.valid {
		return
	}
	it.merge.Next()
	it.advance()
}

// Valid implements kv.Iterator.
func (it *dbIter) Valid() bool { return it.valid }

// Key implements kv.Iterator.
func (it *dbIter) Key() []byte { return it.key }

// Value implements kv.Iterator.
func (it *dbIter) Value() []byte { return it.value }

// Error implements kv.Iterator.
func (it *dbIter) Error() error { return it.err }

// Close implements kv.Iterator.
func (it *dbIter) Close() error { return it.merge.Close() }
