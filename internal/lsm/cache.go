package lsm

import (
	"fmt"
	"sync"

	"p2kvs/internal/cache"
	"p2kvs/internal/sstable"
	"p2kvs/internal/vfs"
)

// tableCache keeps SSTable readers open so point lookups don't re-read
// index and filter blocks on every probe (RocksDB's table cache). Entries
// are evicted when compaction deletes their files.
type tableCache struct {
	fs     vfs.FS
	dir    string
	blocks *cache.Cache // shared data-block cache (nil = disabled)

	mu      sync.Mutex
	readers map[uint64]*sstable.Reader
}

func newTableCache(fs vfs.FS, dir string, blocks *cache.Cache) *tableCache {
	return &tableCache{fs: fs, dir: dir, blocks: blocks, readers: make(map[uint64]*sstable.Reader)}
}

func (c *tableCache) get(num uint64) (*sstable.Reader, error) {
	c.mu.Lock()
	if r, ok := c.readers[num]; ok {
		c.mu.Unlock()
		return r, nil
	}
	c.mu.Unlock()

	f, err := c.fs.Open(sstName(c.dir, num))
	if err != nil {
		return nil, err
	}
	// The base name in corruption errors is what maps a checksum mismatch
	// back to the file number to quarantine (see corruption.go).
	r, err := sstable.OpenNamed(f, c.blocks, num, fmt.Sprintf("%06d.sst", num))
	if err != nil {
		f.Close()
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.readers[num]; ok {
		// Lost a racing open; keep the first.
		r.Close()
		return existing, nil
	}
	c.readers[num] = r
	return r, nil
}

// evict closes and forgets the reader for a deleted file.
func (c *tableCache) evict(num uint64) {
	c.mu.Lock()
	r, ok := c.readers[num]
	delete(c.readers, num)
	c.mu.Unlock()
	if ok {
		r.Close()
	}
}

// approximateMemory estimates pinned index+filter bytes (Table 2).
func (c *tableCache) approximateMemory() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Index + filter are roughly 2% of table size at our block/key sizes.
	var total int64
	for _, r := range c.readers {
		total += r.Size() / 50
	}
	return total
}

func (c *tableCache) closeAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for num, r := range c.readers {
		r.Close()
		delete(c.readers, num)
	}
}
