package lsm

import (
	"sync/atomic"
	"time"

	"p2kvs/internal/kv"
)

// Perf aggregates the write-path breakdown the paper measures in Figure 6
// plus the flush/compaction IO counters behind Figures 4, 5b and 12.
// All fields are cumulative; callers snapshot and diff.
type Perf struct {
	// Write-path breakdown (Figure 6). WAL and WALLock come from the wal
	// package; the rest is metered in the engine write path.
	Writes                   int64
	WALTime                  time.Duration // log encode + IO
	WALLockTime              time.Duration // group-logging queueing/wakeup
	MemTime                  time.Duration // skiplist insertion
	MemLockTime              time.Duration // writer-lock wait before insertion
	StallTime                time.Duration // write stalls (L0/immutable backpressure)
	SlowdownTime             time.Duration // soft-slowdown sleeps (below the stall trigger)
	Slowdowns                int64         // writes that took a slowdown sleep
	TotalTime                time.Duration // end-to-end Write() time
	UserBytes                int64         // key+value bytes accepted from callers
	FlushBytes               int64         // bytes written by memtable flushes
	CompactRead              int64         // bytes read by compactions
	CompactWrite             int64         // bytes written by compactions
	Compactions              int64
	Subcompactions           int64 // key-range splits executed inside compactions
	MaxConcurrentCompactions int64 // high-water mark of concurrent jobs
	Flushes                  int64
	GetCount                 int64
	BloomSkips               int64 // table probes skipped by bloom filters
	TableProbes              int64 // SSTable Get probes actually performed
	WriteGroupIOs            int64 // WAL IOs after group aggregation
	// Checkpoint counters (checkpoint.go): how backup files were
	// materialized — hard-linked, physically copied, or reused from an
	// earlier checkpoint in the same backup set.
	Checkpoints           int64
	CheckpointFilesLinked int64
	CheckpointFilesCopied int64
	CheckpointFilesReused int64
	CheckpointBytesCopied int64
}

// perfCounters is the atomic backing store for Perf.
type perfCounters struct {
	writes              atomic.Int64
	memNs               atomic.Int64
	memLockNs           atomic.Int64
	stallNs             atomic.Int64
	slowdownNs          atomic.Int64
	slowdowns           atomic.Int64
	totalNs             atomic.Int64
	userBytes           atomic.Int64
	flushBytes          atomic.Int64
	compactRead         atomic.Int64
	compactWrite        atomic.Int64
	compactions         atomic.Int64
	subcompactions      atomic.Int64
	concurrentCompactHW atomic.Int64 // updated under d.mu (read lock-free)
	flushes             atomic.Int64
	gets                atomic.Int64
	bloomSkips          atomic.Int64
	tableProbes         atomic.Int64
	walIONsBase         atomic.Int64 // carried over from rotated WAL writers
	walLockNsBase       atomic.Int64
	walGroupBase        atomic.Int64

	// Robustness: background job attempts beyond the first, disk-full
	// degrade transitions, and watchdog-driven auto-resumes.
	flushRetries   atomic.Int64
	compactRetries atomic.Int64
	diskFullEvents atomic.Int64
	autoResumes    atomic.Int64

	// At-rest integrity (corruption.go): checksum mismatches detected,
	// files restored from backup, and a lock-free mirror of len(d.quar).
	corruptionEvents atomic.Int64
	repairedFiles    atomic.Int64
	quarCount        atomic.Int64

	// Checkpoint activity (checkpoint.go).
	ckptCount       atomic.Int64
	ckptFilesLinked atomic.Int64
	ckptFilesCopied atomic.Int64
	ckptFilesReused atomic.Int64
	ckptBytesCopied atomic.Int64
}

// Perf snapshots the engine's counters.
func (d *DB) Perf() Perf {
	p := Perf{
		Writes:                   d.perf.writes.Load(),
		MemTime:                  time.Duration(d.perf.memNs.Load()),
		MemLockTime:              time.Duration(d.perf.memLockNs.Load()),
		StallTime:                time.Duration(d.perf.stallNs.Load()),
		SlowdownTime:             time.Duration(d.perf.slowdownNs.Load()),
		Slowdowns:                d.perf.slowdowns.Load(),
		TotalTime:                time.Duration(d.perf.totalNs.Load()),
		UserBytes:                d.perf.userBytes.Load(),
		FlushBytes:               d.perf.flushBytes.Load(),
		CompactRead:              d.perf.compactRead.Load(),
		CompactWrite:             d.perf.compactWrite.Load(),
		Compactions:              d.perf.compactions.Load(),
		Subcompactions:           d.perf.subcompactions.Load(),
		MaxConcurrentCompactions: d.perf.concurrentCompactHW.Load(),
		Flushes:                  d.perf.flushes.Load(),
		GetCount:                 d.perf.gets.Load(),
		BloomSkips:               d.perf.bloomSkips.Load(),
		TableProbes:              d.perf.tableProbes.Load(),
		Checkpoints:              d.perf.ckptCount.Load(),
		CheckpointFilesLinked:    d.perf.ckptFilesLinked.Load(),
		CheckpointFilesCopied:    d.perf.ckptFilesCopied.Load(),
		CheckpointFilesReused:    d.perf.ckptFilesReused.Load(),
		CheckpointBytesCopied:    d.perf.ckptBytesCopied.Load(),
	}
	p.WALTime = time.Duration(d.perf.walIONsBase.Load())
	p.WALLockTime = time.Duration(d.perf.walLockNsBase.Load())
	p.WriteGroupIOs = d.perf.walGroupBase.Load()
	d.mu.Lock()
	if d.wal != nil {
		st := d.wal.Stats()
		p.WALTime += st.IOTime
		p.WALLockTime += st.LockTime
		p.WriteGroupIOs += st.GroupIOs
	}
	d.mu.Unlock()
	return p
}

// OtherTime derives the residual latency component ("Others" in Figure 6).
func (p Perf) OtherTime() time.Duration {
	other := p.TotalTime - p.WALTime - p.WALLockTime - p.MemTime - p.MemLockTime - p.StallTime - p.SlowdownTime
	if other < 0 {
		return 0
	}
	return other
}

// CompactionStats implements kv.CompactionStatsReporter.
func (d *DB) CompactionStats() kv.CompactionStats {
	return kv.CompactionStats{
		StallTime:      time.Duration(d.perf.stallNs.Load()),
		SlowdownTime:   time.Duration(d.perf.slowdownNs.Load()),
		Slowdowns:      d.perf.slowdowns.Load(),
		Compactions:    d.perf.compactions.Load(),
		Subcompactions: d.perf.subcompactions.Load(),
		MaxConcurrent:  d.perf.concurrentCompactHW.Load(),
	}
}

// BlockCacheStats reports block-cache hit/miss counts (zero when the
// cache is disabled).
func (d *DB) BlockCacheStats() (hits, misses int64) {
	h, m, _ := d.blocks.Stats()
	return h, m
}
