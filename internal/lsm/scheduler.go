package lsm

// Compaction scheduler.
//
// The engine used to serialize all background compaction behind a single
// `compacting` bool — one merge at a time per instance, no matter how many
// levels were over budget. That single-flight design is exactly the
// compaction bottleneck the paper's per-worker architecture is meant to
// hide (§2.1): on a fast SSD the merge is CPU-bound, and a hot shard's
// serialized compaction inflates every writer's tail latency once L0
// fills.
//
// The scheduler replaces the bool with a set of running compactionJobs.
// Jobs whose level pairs and key ranges are disjoint run concurrently, up
// to Options.MaxBackgroundCompactions. The concurrency rules:
//
//   - L0→L1 takes every L0 file (they overlap by construction), so at
//     most one L0 compaction runs at a time, and while it runs nothing
//     else may touch an overlapping range of L0 or L1.
//   - A leveled Ln→Ln+1 job (n >= 1) locks the user-key span of all its
//     files (inputs plus next-level overlap) on the {n, n+1} level pair.
//     Two jobs conflict iff their level pairs intersect AND their spans
//     overlap.
//   - Fragmented jobs merge a whole level, so they lock their level pair
//     entirely (wholeLevel).
//
// These rules make concurrently installed VersionEdits commute: no two
// running jobs share an input file, an output range on the same level, or
// a tombstone-drop precondition that the other could invalidate (data
// only ever moves down-tree, and any job that could push keys into a
// range another job checked with noDataBelow would conflict on the
// intermediate level).

import (
	"bytes"

	"p2kvs/internal/manifest"
)

// compactionJob is one scheduled (possibly running) compaction.
type compactionJob struct {
	level, out int
	inputs     []*manifest.FileMeta // files leaving level
	lower      []*manifest.FileMeta // out-level files rewritten (leveled only)
	lo, hi     []byte               // user-key span of every file touched; nil = open
	wholeLevel bool                 // fragmented jobs lock the whole level pair
	fragmented bool                 // merge inputs only, append to out
	dropTombs  bool
	manual     bool // CompactRange / CompactAll job (runs on the caller)
}

// rangesOverlap reports whether [alo, ahi] and [blo, bhi] intersect
// (inclusive user-key bounds; nil = open).
func rangesOverlap(alo, ahi, blo, bhi []byte) bool {
	if ahi != nil && blo != nil && bytes.Compare(ahi, blo) < 0 {
		return false
	}
	if bhi != nil && alo != nil && bytes.Compare(bhi, alo) < 0 {
		return false
	}
	return true
}

// jobsConflict applies the scheduler's concurrency rules.
func jobsConflict(a, b *compactionJob) bool {
	if a.level == 0 && b.level == 0 {
		return true // both would claim the whole of L0
	}
	if a.level != b.level && a.level != b.out && a.out != b.level && a.out != b.out {
		return false // disjoint level pairs never interact
	}
	if a.wholeLevel || b.wholeLevel {
		return true
	}
	return rangesOverlap(a.lo, a.hi, b.lo, b.hi)
}

// conflictsLocked reports whether job conflicts with any running
// compaction. Caller holds d.mu.
func (d *DB) conflictsLocked(job *compactionJob) bool {
	for _, r := range d.compRunning {
		if jobsConflict(job, r) {
			return true
		}
	}
	return false
}

// startJobLocked registers a job as running and updates the concurrency
// high-water mark. Caller holds d.mu.
func (d *DB) startJobLocked(job *compactionJob) {
	d.compRunning = append(d.compRunning, job)
	if n := int64(len(d.compRunning)); n > d.perf.concurrentCompactHW.Load() {
		d.perf.concurrentCompactHW.Store(n)
	}
}

// finishJob deregisters a job, wakes waiters (stalled writers, CompactAll,
// CompactRange) and re-kicks the scheduler.
func (d *DB) finishJob(job *compactionJob) {
	d.mu.Lock()
	for i, r := range d.compRunning {
		if r == job {
			d.compRunning = append(d.compRunning[:i], d.compRunning[i+1:]...)
			break
		}
	}
	d.kick()
	d.cond.Broadcast()
	d.mu.Unlock()
}

// pickJobLocked chooses the highest-score over-budget level that admits a
// non-conflicting job. Caller holds d.mu.
func (d *DB) pickJobLocked() *compactionJob {
	v := d.vs.Current()
	type scored struct {
		level int
		score float64
	}
	var cands []scored
	if s := float64(len(v.Levels[0])) / float64(d.opts.L0CompactionTrigger); s >= 1.0 {
		cands = append(cands, scored{0, s})
	}
	for level := 1; level < manifest.NumLevels-1; level++ {
		if s := float64(v.LevelSize(level)) / float64(d.levelTarget(level)); s > 1.0 {
			cands = append(cands, scored{level, s})
		}
	}
	// Insertion sort by score, descending (the slice is at most 6 long).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].score > cands[j-1].score; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	for _, c := range cands {
		if job := d.buildJobLocked(v, c.level); job != nil {
			return job
		}
	}
	return nil
}

// buildJobLocked constructs a runnable job for one level, or nil when
// every choice of inputs would conflict with a running compaction.
// Caller holds d.mu.
func (d *DB) buildJobLocked(v *manifest.Version, level int) *compactionJob {
	out := level + 1
	if d.opts.Style == Fragmented && level < manifest.NumLevels-2 {
		files := v.Levels[level]
		if len(files) == 0 {
			return nil
		}
		inputs := append([]*manifest.FileMeta(nil), files...)
		lo, hi := keyRange(inputs)
		job := &compactionJob{
			level: level, out: out, inputs: inputs,
			lo: lo, hi: hi, wholeLevel: true, fragmented: true,
			dropTombs: d.noDataBelow(v, out, lo, hi) && len(v.Levels[out]) == 0,
		}
		if d.jobQuarantinedLocked(job) || d.conflictsLocked(job) {
			return nil
		}
		return job
	}
	if level == 0 {
		files := v.Levels[0]
		if len(files) == 0 {
			return nil
		}
		inputs := append([]*manifest.FileMeta(nil), files...)
		return d.finishLeveledJobLocked(v, 0, inputs)
	}
	// Deeper leveled levels: try candidate files largest-first (the
	// original fairness heuristic), settling on the first whose span does
	// not conflict with a running job.
	files := append([]*manifest.FileMeta(nil), v.Levels[level]...)
	for i := 1; i < len(files); i++ {
		for j := i; j > 0 && files[j].Size > files[j-1].Size; j-- {
			files[j], files[j-1] = files[j-1], files[j]
		}
	}
	for _, f := range files {
		if job := d.finishLeveledJobLocked(v, level, []*manifest.FileMeta{f}); job != nil {
			return job
		}
	}
	return nil
}

// finishLeveledJobLocked completes a leveled job from chosen inputs:
// next-level overlap, full span, tombstone decision, conflict check.
// Caller holds d.mu.
func (d *DB) finishLeveledJobLocked(v *manifest.Version, level int, inputs []*manifest.FileMeta) *compactionJob {
	out := level + 1
	lo, hi := keyRange(inputs)
	var lower []*manifest.FileMeta
	for _, f := range v.Levels[out] {
		if f.Overlaps(lo, hi) {
			lower = append(lower, f)
		}
	}
	all := append(append([]*manifest.FileMeta(nil), inputs...), lower...)
	flo, fhi := keyRange(all)
	job := &compactionJob{
		level: level, out: out, inputs: inputs, lower: lower,
		lo: flo, hi: fhi,
		dropTombs: d.noDataBelow(v, out, lo, hi),
	}
	if d.jobQuarantinedLocked(job) || d.conflictsLocked(job) {
		return nil
	}
	return job
}

// scheduleCompactionsLocked starts background jobs until the pool is full
// or no non-conflicting work remains. Caller holds d.mu.
func (d *DB) scheduleCompactionsLocked() {
	for d.bgErr == nil && !d.closed.Load() &&
		len(d.compRunning) < d.opts.MaxBackgroundCompactions {
		job := d.pickJobLocked()
		if job == nil {
			return
		}
		d.startJobLocked(job)
		d.compWG.Add(1)
		go d.runCompaction(job)
	}
}

// runCompaction executes one background job with the engine's standard
// retry/backoff/degrade policy, then releases its range locks.
func (d *DB) runCompaction(job *compactionJob) {
	defer d.compWG.Done()
	defer d.finishJob(job)
	for attempt := 0; ; attempt++ {
		select {
		case <-d.stopC:
			return
		default:
		}
		err := d.execJob(job)
		if err == nil {
			if attempt > 0 {
				d.clearBgFailure("compaction")
			}
			return
		}
		if d.noteCorruption(err) {
			// A corrupt input cannot be merged by retrying: the file is
			// quarantined (repair may yet restore it) and this job
			// abandoned. The engine does not degrade — only reads covering
			// the bad file's range fail, and the scheduler skips it.
			if attempt > 0 {
				d.clearBgFailure("compaction")
			}
			return
		}
		if !d.noteBgFailure("compaction", err, attempt) {
			return // degraded or closing; Resume re-kicks the scheduler
		}
		d.perf.compactRetries.Add(1)
		if !d.backoffWait(attempt + 1) {
			return // closing
		}
	}
}

// execJob merges a job's inputs (splitting into subcompactions when
// profitable) and installs the result.
func (d *DB) execJob(job *compactionJob) error {
	all := append(append([]*manifest.FileMeta(nil), job.inputs...), job.lower...)
	for _, f := range all {
		d.perf.compactRead.Add(f.Size)
	}
	outputs, err := d.mergeSplit(all, job.out, job.dropTombs)
	if err != nil {
		return err
	}
	return d.installCompaction(job.level, job.inputs, job.out, job.lower, outputs)
}
