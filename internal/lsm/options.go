// Package lsm implements the full LSM-tree storage engine the paper's
// analysis targets: WAL with group logging, memtable (exclusive or
// concurrent skiplist), background flush, leveled compaction over
// SSTables, MANIFEST-based recovery, WriteBatch and MultiGet.
//
// The engine is configurable enough to stand in for the three LSM stores
// in the paper's evaluation — RocksDB, LevelDB and PebblesDB — as option
// presets. Keeping them one code base means comparisons exercise
// identical code paths except for the feature under test (concurrent
// memtable, pipelined writes, fragmented compaction).
package lsm

import (
	"time"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
	"p2kvs/internal/wal"
)

// CompactionStyle selects how levels are maintained.
type CompactionStyle int

// Compaction styles.
const (
	// Leveled is classic LevelDB/RocksDB leveled compaction: levels >= 1
	// hold sorted, non-overlapping files; compaction merges into the next
	// level, rewriting the overlapping portion.
	Leveled CompactionStyle = iota
	// Fragmented is the PebblesDB-style FLSM policy: compaction
	// partitions a level's data at guard boundaries and appends the
	// fragments to the next level without rewriting that level's existing
	// data, trading read fan-out for much lower write amplification.
	Fragmented
)

// Options configures the engine.
type Options struct {
	// FS hosts all engine files. Wrap with internal/device to simulate a
	// specific disk. Required.
	FS vfs.FS

	// ConcurrentMemTable uses the CAS skiplist so multiple writers insert
	// in parallel (RocksDB's allow_concurrent_memtable_write).
	ConcurrentMemTable bool
	// PipelinedWrite lets memtable insertion proceed outside the write
	// group, overlapping the next group's logging (RocksDB pipelined
	// writes). Without it the whole write path is serialized under one
	// writer lock (LevelDB behaviour).
	PipelinedWrite bool
	// GroupCommit enables leader/follower WAL aggregation (Figure 3).
	GroupCommit bool
	// SyncWAL fsyncs the log on every commit. Default false = RocksDB
	// async logging, as configured in the paper's experiments (§3.4).
	// Equivalent to WALSync = wal.PolicyCommit; kept for existing call
	// sites.
	SyncWAL bool
	// WALSync selects the WAL durability policy (wal.PolicyNever /
	// PolicyInterval / PolicyCommit). The zero value defers to SyncWAL.
	// See DESIGN.md §11 for the contract each policy gives at SIGKILL.
	WALSync wal.SyncPolicy
	// WALSyncInterval bounds durability staleness under PolicyInterval
	// (default 100ms).
	WALSyncInterval time.Duration
	// DisableWAL skips logging entirely (used by Figure 8b's
	// memtable-only runs and by flush-free bulk loads).
	DisableWAL bool
	// MemTableOnly short-circuits flush: memtables are dropped when full
	// instead of written to L0 (Figure 8b isolates the index path).
	MemTableOnly bool
	// WALOnly skips memtable insertion and flush entirely (Figure 8a
	// isolates the logging path).
	WALOnly bool

	// MemTableSize is the write-buffer budget in bytes before rotation.
	MemTableSize int64
	// MaxImmutables bounds the flush queue; writers stall beyond it.
	MaxImmutables int
	// L0CompactionTrigger is the L0 file count that schedules compaction.
	L0CompactionTrigger int
	// L0StallTrigger is the L0 file count that stalls writers.
	L0StallTrigger int
	// L0SlowdownTrigger is the L0 file count at which writers are delayed
	// with a scaled sleep instead of blocked — soft backpressure before
	// the hard stall. Defaults to the midpoint of L0CompactionTrigger and
	// L0StallTrigger.
	L0SlowdownTrigger int
	// SlowdownDelay is the maximum per-write sleep applied at the top of
	// the slowdown band (scaled down linearly toward L0SlowdownTrigger).
	SlowdownDelay time.Duration
	// MaxBackgroundCompactions bounds how many compactions of disjoint
	// level/key ranges run concurrently (default 2).
	MaxBackgroundCompactions int
	// MaxSubCompactions splits one large merge into up to this many
	// key-range subcompactions that run in parallel (default 1 = off).
	MaxSubCompactions int
	// BaseLevelSize is the L1 capacity; each level is LevelMultiplier
	// larger.
	BaseLevelSize int64
	// LevelMultiplier is the per-level size ratio (default 10).
	LevelMultiplier int
	// TargetFileSize bounds individual SSTables.
	TargetFileSize int64
	// Style selects Leveled or Fragmented compaction.
	Style CompactionStyle
	// MultiGet enables the batched-read capability (RocksDB has it,
	// LevelDB does not).
	MultiGet bool
	// BackgroundCompaction runs flush/compaction in background goroutines
	// (default true). Tests may disable it to drive compaction manually.
	BackgroundCompaction bool
	// BlockCacheSize is the per-instance data-block cache budget (the
	// paper's RocksDB instances run an 8 MB block cache, §5.5). 0 uses
	// the default; negative disables caching.
	BlockCacheSize int64
	// Compression enables per-block DEFLATE compression of SSTables.
	Compression bool
	// WALPerRecordCost / WALPerByteCost are forwarded to the WAL's
	// software-path cost model (see internal/wal Options); zero for
	// production use, set by the simulated-time benchmarks.
	WALPerRecordCost time.Duration
	WALPerByteCost   time.Duration
	// ReadPerOpCost models the per-lookup host software path (memtable
	// search, bloom probes, index walks) in simulated time. MultiGet
	// amortizes it: the first key pays full cost, subsequent keys 35%,
	// RocksDB's documented multiget CPU saving. Zero for production use.
	ReadPerOpCost time.Duration

	// RepairSource, when non-nil, supplies known-good backup bytes for
	// quarantined SSTs (keyed by base name, e.g. "000007.sst"). The
	// accessing layer builds one from the newest checkpoint generation;
	// without it corruption is contained but never repaired in place —
	// bad files are parked in <dir>/quarantine/ (see corruption.go).
	RepairSource kv.RepairSource

	// BgMaxRetries is the total number of attempts a failed background
	// flush or compaction gets before the engine degrades to read-only
	// (default 5).
	BgMaxRetries int
	// BgBaseBackoff is the delay before the first background retry; each
	// further retry doubles it up to BgMaxBackoff (defaults 5ms / 1s).
	BgBaseBackoff time.Duration
	BgMaxBackoff  time.Duration
}

func (o Options) withDefaults() Options {
	if o.MemTableSize <= 0 {
		o.MemTableSize = 4 << 20
	}
	if o.MaxImmutables <= 0 {
		o.MaxImmutables = 2
	}
	if o.L0CompactionTrigger <= 0 {
		o.L0CompactionTrigger = 4
	}
	if o.L0StallTrigger <= 0 {
		o.L0StallTrigger = 12
	}
	if o.L0SlowdownTrigger <= 0 {
		o.L0SlowdownTrigger = (o.L0CompactionTrigger + o.L0StallTrigger) / 2
	}
	if o.SlowdownDelay <= 0 {
		o.SlowdownDelay = time.Millisecond
	}
	if o.MaxBackgroundCompactions <= 0 {
		o.MaxBackgroundCompactions = 2
	}
	if o.MaxSubCompactions <= 0 {
		o.MaxSubCompactions = 1
	}
	if o.BaseLevelSize <= 0 {
		o.BaseLevelSize = 16 << 20
	}
	if o.LevelMultiplier <= 0 {
		o.LevelMultiplier = 10
	}
	if o.TargetFileSize <= 0 {
		o.TargetFileSize = 2 << 20
	}
	if o.BlockCacheSize == 0 {
		o.BlockCacheSize = 8 << 20
	}
	if o.BgMaxRetries <= 0 {
		o.BgMaxRetries = 5
	}
	if o.BgBaseBackoff <= 0 {
		o.BgBaseBackoff = 5 * time.Millisecond
	}
	if o.BgMaxBackoff <= 0 {
		o.BgMaxBackoff = time.Second
	}
	if o.WALSync == wal.PolicyNever && o.SyncWAL {
		o.WALSync = wal.PolicyCommit
	}
	if o.WALSync == wal.PolicyInterval && o.WALSyncInterval <= 0 {
		o.WALSyncInterval = 100 * time.Millisecond
	}
	return o
}

// RocksDBOptions returns the preset standing in for RocksDB with the
// paper's configuration: group logging, concurrent memtable, pipelined
// writes, multiget, async WAL.
func RocksDBOptions(fs vfs.FS) Options {
	return Options{
		FS:                   fs,
		ConcurrentMemTable:   true,
		PipelinedWrite:       true,
		GroupCommit:          true,
		MultiGet:             true,
		Style:                Leveled,
		BackgroundCompaction: true,
	}
}

// LevelDBOptions returns the preset standing in for LevelDB: exclusive
// memtable, serialized write path, batch-write but no multiget.
func LevelDBOptions(fs vfs.FS) Options {
	return Options{
		FS:                   fs,
		GroupCommit:          true,
		Style:                Leveled,
		BackgroundCompaction: true,
	}
}

// PebblesDBOptions returns the preset standing in for PebblesDB:
// LevelDB-derived write path (no concurrent-write optimizations, §5.2)
// with fragmented compaction for low write amplification.
func PebblesDBOptions(fs vfs.FS) Options {
	o := LevelDBOptions(fs)
	o.Style = Fragmented
	return o
}
