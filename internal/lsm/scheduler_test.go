package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"p2kvs/internal/ikey"
	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

func TestRangesOverlap(t *testing.T) {
	b := func(s string) []byte {
		if s == "" {
			return nil
		}
		return []byte(s)
	}
	cases := []struct {
		alo, ahi, blo, bhi string
		want               bool
	}{
		{"a", "c", "b", "d", true},
		{"a", "c", "c", "d", true}, // inclusive bounds touch
		{"a", "b", "c", "d", false},
		{"c", "d", "a", "b", false},
		{"", "", "x", "y", true},  // open range overlaps everything
		{"", "b", "c", "", false}, // half-open, disjoint
		{"", "c", "b", "", true},  // half-open, overlapping
	}
	for _, c := range cases {
		if got := rangesOverlap(b(c.alo), b(c.ahi), b(c.blo), b(c.bhi)); got != c.want {
			t.Errorf("rangesOverlap(%q,%q,%q,%q) = %v, want %v", c.alo, c.ahi, c.blo, c.bhi, got, c.want)
		}
	}
}

func TestJobsConflict(t *testing.T) {
	j := func(level int, lo, hi string, whole bool) *compactionJob {
		var l, h []byte
		if lo != "" {
			l = []byte(lo)
		}
		if hi != "" {
			h = []byte(hi)
		}
		return &compactionJob{level: level, out: level + 1, lo: l, hi: h, wholeLevel: whole}
	}
	cases := []struct {
		name string
		a, b *compactionJob
		want bool
	}{
		{"two L0 jobs always conflict", j(0, "a", "b", false), j(0, "x", "y", false), true},
		{"disjoint level pairs", j(1, "a", "z", false), j(3, "a", "z", false), false},
		{"shared level, overlapping ranges", j(1, "a", "m", false), j(1, "n", "z", false), false},
		{"shared level pair via out", j(1, "a", "m", false), j(2, "b", "c", false), true},
		{"shared level pair, disjoint ranges via out", j(1, "a", "m", false), j(2, "n", "z", false), false},
		{"whole-level job blocks its pair", j(1, "a", "b", true), j(2, "x", "y", false), true},
		{"L0 vs L1 overlapping", j(0, "a", "z", false), j(1, "b", "c", false), true},
		{"L0 vs L2 disjoint pairs", j(0, "a", "z", false), j(2, "b", "c", false), false},
	}
	for _, c := range cases {
		if got := jobsConflict(c.a, c.b); got != c.want {
			t.Errorf("%s: jobsConflict = %v, want %v", c.name, got, c.want)
		}
		if got := jobsConflict(c.b, c.a); got != c.want {
			t.Errorf("%s (swapped): jobsConflict = %v, want %v", c.name, got, c.want)
		}
	}
}

// checkLeveledInvariant asserts levels >= 1 hold non-overlapping files
// under leveled compaction — the invariant concurrent installs must not
// break.
func checkLeveledInvariant(t *testing.T, d *DB) {
	t.Helper()
	d.mu.Lock()
	v := d.vs.Current()
	d.mu.Unlock()
	for level := 1; level < len(v.Levels); level++ {
		files := v.Levels[level]
		for i := 1; i < len(files); i++ {
			prevHi := ikey.UserKey(files[i-1].Largest)
			lo := ikey.UserKey(files[i].Smallest)
			if bytes.Compare(lo, prevHi) <= 0 {
				t.Fatalf("level %d files overlap: %q..%q then %q..%q",
					level, ikey.UserKey(files[i-1].Smallest), prevHi, lo, ikey.UserKey(files[i].Largest))
			}
		}
	}
}

// TestParallelCompactionStress drives concurrent writers and readers
// against a tiny-budget instance with an aggressive scheduler, then
// verifies every key's final value and the leveled invariant. Run under
// -race this doubles as the scheduler's race test.
func TestParallelCompactionStress(t *testing.T) {
	o := smallOpts(vfs.NewMem())
	o.MaxBackgroundCompactions = 3
	o.MaxSubCompactions = 2
	o.L0CompactionTrigger = 2
	o.L0SlowdownTrigger = 4
	o.L0StallTrigger = 8
	db, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const writers, keysPer, rounds = 4, 200, 4
	var writeWG, readWG sync.WaitGroup
	errCh := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < keysPer; i++ {
					k := []byte(fmt.Sprintf("w%d-key-%04d", w, i))
					v := []byte(fmt.Sprintf("v-r%d-%s", r, strings.Repeat("x", 100)))
					if err := db.Put(k, v); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	stopRead := make(chan struct{})
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			k := []byte(fmt.Sprintf("w%d-key-%04d", rng.Intn(writers), rng.Intn(keysPer)))
			if _, err := db.Get(k); err != nil && err != kv.ErrNotFound {
				errCh <- fmt.Errorf("concurrent Get(%s): %w", k, err)
				return
			}
		}
	}()

	writeWG.Wait()
	close(stopRead)
	readWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("v-r%d-%s", rounds-1, strings.Repeat("x", 100))
	for w := 0; w < writers; w++ {
		for i := 0; i < keysPer; i++ {
			k := []byte(fmt.Sprintf("w%d-key-%04d", w, i))
			v, err := db.Get(k)
			if err != nil {
				t.Fatalf("Get(%s): %v", k, err)
			}
			if string(v) != want {
				t.Fatalf("Get(%s) = %q, want %q", k, v, want)
			}
		}
	}
	checkLeveledInvariant(t, db)
	p := db.Perf()
	t.Logf("compactions=%d sub=%d concurrent_hw=%d stall=%v slowdown=%v (%d)",
		p.Compactions, p.Subcompactions, p.MaxConcurrentCompactions, p.StallTime, p.SlowdownTime, p.Slowdowns)
	if p.Compactions == 0 {
		t.Fatal("stress run never compacted")
	}
}

// TestSubcompactionsStitched forces a large multi-file merge through the
// subcompaction splitter and checks the stitched result is complete,
// ordered and actually used the parallel path.
func TestSubcompactionsStitched(t *testing.T) {
	o := smallOpts(vfs.NewMem())
	o.BackgroundCompaction = false
	o.MaxSubCompactions = 4
	db, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Four L0 files with shifted, overlapping ranges so the input
	// boundaries give distinct split points.
	const span = 400
	val := strings.Repeat("v", 120)
	for batch := 0; batch < 4; batch++ {
		for i := 0; i < span; i++ {
			k := fmt.Sprintf("key-%05d", batch*150+i)
			if err := db.Put([]byte(k), []byte(fmt.Sprintf("%s-b%d", val, batch))); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if got := db.Perf().Subcompactions; got < 2 {
		t.Fatalf("Subcompactions = %d, want >= 2", got)
	}
	// Every key must resolve to the value of the LAST batch that wrote it.
	for batch := 0; batch < 4; batch++ {
		for i := 0; i < span; i++ {
			idx := batch*150 + i
			last := batch
			for b := batch + 1; b < 4; b++ {
				if idx >= b*150 && idx < b*150+span {
					last = b
				}
			}
			v, err := db.Get([]byte(fmt.Sprintf("key-%05d", idx)))
			if err != nil {
				t.Fatalf("Get(key-%05d): %v", idx, err)
			}
			if want := fmt.Sprintf("%s-b%d", val, last); string(v) != want {
				t.Fatalf("key-%05d = %q, want batch %d", idx, v[len(v)-4:], last)
			}
		}
	}
	checkLeveledInvariant(t, db)
}

// TestMergeFilesCleanupOnError is the regression test for the mid-merge
// leak: a compaction that fails while writing outputs must close its file
// handles and leave no orphan SSTs behind.
func TestMergeFilesCleanupOnError(t *testing.T) {
	mem := vfs.NewMem()
	ffs := vfs.NewFault(mem)
	o := smallOpts(ffs)
	o.BackgroundCompaction = false
	db, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for batch := 0; batch < 3; batch++ {
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("key-%04d", i)
			if err := db.Put([]byte(k), []byte(fmt.Sprintf("val-%d-%04d", batch, i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	sstSet := func() map[string]bool {
		names, err := ffs.List("db")
		if err != nil {
			t.Fatal(err)
		}
		set := map[string]bool{}
		for _, n := range names {
			if strings.HasSuffix(n, ".sst") {
				set[n] = true
			}
		}
		return set
	}
	before := sstSet()

	// Every SST write fails: the merge dies mid-flight, after possibly
	// finishing one or more outputs.
	ffs.Inject(vfs.Rule{Op: vfs.OpWrite, Path: ".sst", Prob: 1})
	if err := db.CompactAll(); err == nil {
		t.Fatal("CompactAll succeeded despite injected SST write faults")
	}
	ffs.ClearRules()

	after := sstSet()
	for n := range after {
		if !before[n] {
			t.Fatalf("failed compaction leaked output %s (before=%v after=%v)", n, before, after)
		}
	}
	for n := range before {
		if !after[n] {
			t.Fatalf("failed compaction deleted input %s before install", n)
		}
	}

	// The engine must still work: same merge, no faults.
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v, err := db.Get([]byte(k))
		if err != nil || !strings.HasPrefix(string(v), "val-2-") {
			t.Fatalf("Get(%s) = %q, %v after recovery", k, v, err)
		}
	}
}

// TestCompactRangeFragmentedKeepsNextLevel verifies the fragmented
// CompactRange fix: a manual L0 compaction under the fragmented style
// must append to L1 without rewriting L1's existing files, and must not
// drop tombstones while the output level is non-empty.
func TestCompactRangeFragmentedKeepsNextLevel(t *testing.T) {
	o := smallOpts(vfs.NewMem())
	o.Style = Fragmented
	o.BackgroundCompaction = false
	db, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	put := func(gen int, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("key-%04d", i)
			if err := db.Put([]byte(k), []byte(fmt.Sprintf("gen%d-%04d", gen, i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Generation 0 into L1 via a first manual pass (L1 starts empty).
	put(0, 200)
	job, err := db.claimManualJob(0, nil, nil)
	if err != nil || job == nil {
		t.Fatalf("claimManualJob #1 = %v, %v", job, err)
	}
	if !job.fragmented || job.lower != nil {
		t.Fatalf("fragmented job #1 has lower=%v fragmented=%v", job.lower, job.fragmented)
	}
	if err := db.execJob(job); err != nil {
		t.Fatal(err)
	}
	db.finishJob(job)

	db.mu.Lock()
	l1Before := map[uint64]bool{}
	for _, f := range db.vs.Current().Levels[1] {
		l1Before[f.Num] = true
	}
	db.mu.Unlock()
	if len(l1Before) == 0 {
		t.Fatal("setup failed: L1 empty after first manual compaction")
	}

	// Generation 1 overwrites plus a tombstone, flushed to L0; the second
	// manual pass lands beside generation 0 in L1.
	put(1, 200)
	if err := db.Delete([]byte("key-0000")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	job, err = db.claimManualJob(0, nil, nil)
	if err != nil || job == nil {
		t.Fatalf("claimManualJob #2 = %v, %v", job, err)
	}
	if !job.fragmented {
		t.Fatal("manual L0 job not fragmented under Fragmented style")
	}
	if job.lower != nil {
		t.Fatalf("fragmented manual job would rewrite %d next-level files", len(job.lower))
	}
	if job.dropTombs {
		t.Fatal("fragmented manual job would drop tombstones with a non-empty output level")
	}
	if err := db.execJob(job); err != nil {
		t.Fatal(err)
	}
	db.finishJob(job)

	// The write-once invariant: every pre-existing L1 file survived.
	db.mu.Lock()
	l1After := map[uint64]bool{}
	for _, f := range db.vs.Current().Levels[1] {
		l1After[f.Num] = true
	}
	db.mu.Unlock()
	for num := range l1Before {
		if !l1After[num] {
			t.Fatalf("fragmented manual compaction rewrote pre-existing L1 file %06d", num)
		}
	}
	if len(l1After) <= len(l1Before) {
		t.Fatal("second compaction appended nothing to L1")
	}

	// Newest generation wins; the tombstone still masks key-0000.
	if _, err := db.Get([]byte("key-0000")); err != kv.ErrNotFound {
		t.Fatalf("tombstoned key resurfaced: err=%v", err)
	}
	for i := 1; i < 200; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v, err := db.Get([]byte(k))
		if err != nil || !strings.HasPrefix(string(v), "gen1-") {
			t.Fatalf("Get(%s) = %q, %v; want gen1", k, v, err)
		}
	}
}

// TestCompactRangeFragmentedEndToEnd drives the public CompactRange on a
// fragmented instance and checks correctness of the final state.
func TestCompactRangeFragmentedEndToEnd(t *testing.T) {
	o := smallOpts(vfs.NewMem())
	o.Style = Fragmented
	db, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for gen := 0; gen < 3; gen++ {
		for i := 0; i < 300; i++ {
			if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("g%d-%04d", gen, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v, err := db.Get([]byte(k))
		if err != nil || !strings.HasPrefix(string(v), "g2-") {
			t.Fatalf("Get(%s) = %q, %v; want g2", k, v, err)
		}
	}
}

// TestSlowdownBackpressure checks the soft tier fires without the hard
// tier: with compaction effectively disabled and the stall trigger out of
// reach, L0 growth must produce slowdown time but zero stall time.
func TestSlowdownBackpressure(t *testing.T) {
	o := smallOpts(vfs.NewMem())
	o.L0CompactionTrigger = 100 // compaction never scheduled
	o.L0SlowdownTrigger = 2
	o.L0StallTrigger = 100 // hard stall out of reach
	o.MaxImmutables = 100  // flush queue never stalls
	db, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	val := strings.Repeat("v", 256)
	for i := 0; i < 400; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte(val)); err != nil {
			t.Fatal(err)
		}
	}
	// Push past the slowdown trigger: every flush adds an L0 file.
	for db.Metrics().LevelFiles[0] < 4 {
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if err := db.Put([]byte(fmt.Sprintf("key2-%06d", i)), []byte(val)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key3-%06d", i)), []byte(val)); err != nil {
			t.Fatal(err)
		}
	}
	p := db.Perf()
	if p.SlowdownTime <= 0 || p.Slowdowns == 0 {
		t.Fatalf("no slowdown recorded: time=%v count=%d (L0=%d)", p.SlowdownTime, p.Slowdowns, db.Metrics().LevelFiles[0])
	}
	if p.StallTime != 0 {
		t.Fatalf("hard stall fired below the stall trigger: %v", p.StallTime)
	}
	m := db.Metrics()
	if m.SlowdownNs != int64(p.SlowdownTime) || m.Slowdowns != p.Slowdowns {
		t.Fatalf("Metrics/Perf slowdown mismatch: %d/%d vs %v/%d", m.SlowdownNs, m.Slowdowns, p.SlowdownTime, p.Slowdowns)
	}
}

// TestConcurrentCompactionsObserved asserts the scheduler genuinely runs
// jobs in parallel on a multi-level store: the high-water mark must reach
// at least 2 with a pool of 3 and continuous write pressure.
func TestConcurrentCompactionsObserved(t *testing.T) {
	o := smallOpts(vfs.NewMem())
	o.MaxBackgroundCompactions = 3
	o.L0CompactionTrigger = 2
	o.L0SlowdownTrigger = 6
	o.L0StallTrigger = 12
	o.MemTableSize = 8 << 10
	o.BaseLevelSize = 16 << 10 // deeper levels overflow quickly
	o.TargetFileSize = 8 << 10
	db, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(42))
	val := strings.Repeat("x", 200)
	deadline := time.Now().Add(10 * time.Second)
	for db.Perf().MaxConcurrentCompactions < 2 && time.Now().Before(deadline) {
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("key-%06d", rng.Intn(20000))
			if err := db.Put([]byte(k), []byte(val)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if hw := db.Perf().MaxConcurrentCompactions; hw < 2 {
		t.Fatalf("concurrency high-water = %d, want >= 2", hw)
	}
	checkLeveledInvariant(t, db)
}
