package lsm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// repairMap is a stub kv.RepairSource: file base name -> pristine bytes.
type repairMap map[string][]byte

func (m repairMap) Fetch(name string) ([]byte, bool) {
	b, ok := m[name]
	return b, ok
}

// buildCorruptDB fills a fresh DB, flushes it to a single SST, closes it,
// and returns the fault FS, the SST path, its base name, its pristine
// bytes, and the expected key->value map.
func buildCorruptDB(t *testing.T, dir string) (*vfs.FaultFS, string, string, []byte, map[string]string) {
	t.Helper()
	fs := vfs.NewFault(vfs.NewMem())
	db, err := Open(dir, smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string)
	// Small enough to stay in one memtable: the test wants exactly one SST.
	for i := 0; i < 80; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v := fmt.Sprintf("value-%04d-%s", i, strings.Repeat("x", 24))
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sst string
	for _, n := range names {
		if strings.HasSuffix(n, ".sst") {
			if sst != "" {
				t.Fatalf("expected a single SST, found %q and %q", sst, n)
			}
			sst = n
		}
	}
	if sst == "" {
		t.Fatal("no SST produced by flush")
	}
	path := dir + "/" + sst
	pristine, err := vfs.ReadFile(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	return fs, path, sst, pristine, want
}

// TestCorruptSSTNeverWrongValue is the core containment contract: after a
// bit flip at rest, every read returns either the correct value or
// kv.ErrCorruption — never a silently wrong or silently missing answer.
func TestCorruptSSTNeverWrongValue(t *testing.T) {
	fs, path, _, _, want := buildCorruptDB(t, "db")
	// Flip a bit inside the first data block (the SST starts with data
	// blocks at offset 0).
	if err := fs.CorruptAt(path, 10); err != nil {
		t.Fatal(err)
	}
	db, err := Open("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var corrupt, served int
	for k, v := range want {
		got, err := db.Get([]byte(k))
		switch {
		case err == nil:
			served++
			if string(got) != v {
				t.Fatalf("Get(%q) = %q, want %q: silently wrong value", k, got, v)
			}
		case errors.Is(err, kv.ErrCorruption):
			corrupt++
		default:
			t.Fatalf("Get(%q): unexpected error %v", k, err)
		}
	}
	if corrupt == 0 {
		t.Fatal("bit flip went undetected: no read returned ErrCorruption")
	}
	t.Logf("reads: %d corruption, %d served", corrupt, served)

	h := db.Health()
	if h.CorruptionEvents == 0 {
		t.Fatalf("CorruptionEvents = 0, want > 0")
	}
	if h.QuarantinedFiles != 1 {
		t.Fatalf("QuarantinedFiles = %d, want 1", h.QuarantinedFiles)
	}
	if h.LastCorruption == nil {
		t.Fatal("LastCorruption not reported")
	}
	var ce *kv.CorruptionError
	if !errors.As(h.LastCorruption, &ce) {
		t.Fatalf("LastCorruption = %v, want *kv.CorruptionError", h.LastCorruption)
	}
}

// TestCorruptSSTParkedAndPersists checks that with no repair source the bad
// file is parked in <dir>/quarantine/ and that a reopened engine still
// fails the file's range with ErrCorruption (not ErrNotExist).
func TestCorruptSSTParkedAndPersists(t *testing.T) {
	fs, path, sst, _, want := buildCorruptDB(t, "db")
	if err := fs.CorruptAt(path, 10); err != nil {
		t.Fatal(err)
	}
	db, err := Open("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("key-0000")); !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("Get = %v, want ErrCorruption", err)
	}
	// Parking runs on an async repair goroutine; wait for it (closing
	// first would make tryRepair bail without parking).
	parked := "db/" + quarantineSubdir + "/" + sst
	deadline := time.Now().Add(5 * time.Second)
	for !fs.Exists(parked) {
		if time.Now().After(deadline) {
			t.Fatalf("corrupt file not parked at %s", parked)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.Exists(path) {
		t.Fatalf("corrupt file still present at %s after parking", path)
	}

	// Reopen: loadQuarantine must re-register the parked file.
	db2, err := Open("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for k := range want {
		if _, err := db2.Get([]byte(k)); !errors.Is(err, kv.ErrCorruption) {
			t.Fatalf("reopened Get(%q) = %v, want ErrCorruption", k, err)
		}
	}
	if h := db2.Health(); h.QuarantinedFiles != 1 {
		t.Fatalf("reopened QuarantinedFiles = %d, want 1", h.QuarantinedFiles)
	}
}

// TestScrubDetectsAndRepairs corrupts an SST that has never been read,
// verifies a synchronous Scrub finds it without any foreground traffic,
// repairs it from the stub backup, and that reads are whole again.
func TestScrubDetectsAndRepairs(t *testing.T) {
	fs, path, sst, pristine, want := buildCorruptDB(t, "db")
	if err := fs.CorruptAt(path, 10); err != nil {
		t.Fatal(err)
	}
	opts := smallOpts(fs)
	opts.RepairSource = repairMap{sst: pristine}
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	res, err := db.Scrub(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptionsFound != 1 {
		t.Fatalf("CorruptionsFound = %d, want 1", res.CorruptionsFound)
	}
	if res.FilesRepaired != 1 {
		t.Fatalf("FilesRepaired = %d, want 1", res.FilesRepaired)
	}

	// The quarantine is lifted and every key serves its correct value.
	for k, v := range want {
		got, err := db.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q) after repair: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("Get(%q) after repair = %q, want %q", k, got, v)
		}
	}
	h := db.Health()
	if h.QuarantinedFiles != 0 {
		t.Fatalf("QuarantinedFiles = %d after repair, want 0", h.QuarantinedFiles)
	}
	if h.RepairedFiles != 1 {
		t.Fatalf("RepairedFiles = %d, want 1", h.RepairedFiles)
	}

	// A second pass over the repaired store is clean.
	res, err = db.Scrub(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptionsFound != 0 || res.FilesRepaired != 0 {
		t.Fatalf("second scrub = %+v, want clean", res)
	}
	if res.FilesScanned == 0 || res.BytesScanned == 0 {
		t.Fatalf("second scrub scanned nothing: %+v", res)
	}
}

// TestReadTriggersAsyncRepair checks the foreground path: a read that hits
// corruption fails loudly, kicks off a background repair, and the store
// heals without operator action.
func TestReadTriggersAsyncRepair(t *testing.T) {
	fs, path, sst, pristine, want := buildCorruptDB(t, "db")
	if err := fs.CorruptAt(path, 10); err != nil {
		t.Fatal(err)
	}
	opts := smallOpts(fs)
	opts.RepairSource = repairMap{sst: pristine}
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Get([]byte("key-0000")); !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("first Get = %v, want ErrCorruption", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := db.Get([]byte("key-0000"))
		if err == nil {
			if string(got) != want["key-0000"] {
				t.Fatalf("healed Get = %q, want %q", got, want["key-0000"])
			}
			break
		}
		if !errors.Is(err, kv.ErrCorruption) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("async repair never healed the read")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h := db.Health(); h.RepairedFiles != 1 {
		t.Fatalf("RepairedFiles = %d, want 1", h.RepairedFiles)
	}
}

// TestRepairRejectsBadBackup: a backup that itself fails verification must
// not be installed; the file is parked instead.
func TestRepairRejectsBadBackup(t *testing.T) {
	fs, path, sst, pristine, _ := buildCorruptDB(t, "db")
	if err := fs.CorruptAt(path, 10); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), pristine...)
	bad[10] ^= 1 // the backup carries its own flip
	opts := smallOpts(fs)
	opts.RepairSource = repairMap{sst: bad}
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Scrub(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("key-0000")); !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("Get = %v, want ErrCorruption (bad backup must not install)", err)
	}
	h := db.Health()
	if h.RepairedFiles != 0 {
		t.Fatalf("RepairedFiles = %d, want 0", h.RepairedFiles)
	}
	if h.QuarantinedFiles != 1 {
		t.Fatalf("QuarantinedFiles = %d, want 1", h.QuarantinedFiles)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("db/" + quarantineSubdir + "/" + sst) {
		t.Fatal("unrepairable file not parked")
	}
}

// TestCompactionSkipsQuarantined: a compaction job whose inputs include a
// quarantined file must be skipped, not compacted around.
func TestCompactionSkipsQuarantined(t *testing.T) {
	fs := vfs.NewFault(vfs.NewMem())
	db, err := Open("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Quarantine the flushed file by hand, then ask for a manual
	// compaction: it must fail fast with the corruption error rather than
	// rewriting levels around damaged data.
	db.mu.Lock()
	var num uint64
	for _, level := range db.vs.Current().Levels {
		for _, fm := range level {
			num = fm.Num
		}
	}
	db.mu.Unlock()
	if num == 0 {
		t.Fatal("no SST in version")
	}
	db.recordCorruption(num, &kv.CorruptionError{
		File: fmt.Sprintf("%06d.sst", num), Detail: "test",
	})
	if err := db.CompactRange(nil, nil); !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("CompactRange = %v, want ErrCorruption", err)
	}
}
