package lsm

import (
	"bytes"

	"p2kvs/internal/ikey"
	"p2kvs/internal/kv"
	"p2kvs/internal/manifest"
	"p2kvs/internal/sstable"
)

// CompactRange force-compacts every file overlapping [begin, end] (nil
// bounds are open) down the tree until the range is fully merged — the
// manual-compaction API production stores expose for space reclamation
// and read-amp repair after bulk deletes.
func (d *DB) CompactRange(begin, end []byte) error {
	if d.closed.Load() {
		return kv.ErrClosed
	}
	if err := d.Flush(); err != nil {
		return err
	}
	for level := 0; level < manifest.NumLevels-1; level++ {
		for {
			d.mu.Lock()
			if d.bgErr != nil {
				err := d.bgErr
				d.mu.Unlock()
				return err
			}
			if d.compacting {
				// Wait out the background worker rather than race it.
				d.cond.Wait()
				d.mu.Unlock()
				continue
			}
			d.compacting = true
			v := d.vs.Current()
			d.mu.Unlock()

			var inputs []*manifest.FileMeta
			for _, f := range v.Levels[level] {
				if f.Overlaps(begin, end) {
					inputs = append(inputs, f)
				}
			}
			var err error
			if len(inputs) > 0 {
				err = d.compactFiles(v, level, inputs)
			}
			d.mu.Lock()
			d.compacting = false
			d.cond.Broadcast()
			d.mu.Unlock()
			if err != nil {
				return err
			}
			break
		}
	}
	return nil
}

// compactFiles merges the given level files (plus next-level overlap)
// into level+1, the shared body of leveled compaction and CompactRange.
func (d *DB) compactFiles(v *manifest.Version, level int, inputs []*manifest.FileMeta) error {
	lo, hi := keyRange(inputs)
	out := level + 1
	var lower []*manifest.FileMeta
	for _, f := range v.Levels[out] {
		if f.Overlaps(lo, hi) {
			lower = append(lower, f)
		}
	}
	all := append(append([]*manifest.FileMeta(nil), inputs...), lower...)
	dropTombs := d.noDataBelow(v, out, lo, hi)
	outputs, err := d.mergeFiles(all, out, dropTombs, nil)
	if err != nil {
		return err
	}
	return d.installCompaction(level, inputs, out, lower, outputs)
}

// compactLoop is the background major-compaction thread (Figure 2 ③).
// A failed compaction is retried with backoff rather than killing the
// thread; exhausting the retry budget degrades the engine, after which
// the loop idles until Resume re-kicks it.
func (d *DB) compactLoop() {
	defer d.bgWG.Done()
	for {
		select {
		case <-d.stopC:
			return
		case <-d.compactC:
			attempt := 0
			for {
				select {
				case <-d.stopC:
					return
				default:
				}
				worked, err := d.compactOnce()
				if err != nil {
					if !d.noteBgFailure("compaction", err, attempt) {
						break // degraded or closing; wait for Resume's kick
					}
					attempt++
					d.perf.compactRetries.Add(1)
					if !d.backoffWait(attempt) {
						return // closing
					}
					continue
				}
				if attempt > 0 {
					d.clearBgFailure("compaction")
					attempt = 0
				}
				if !worked {
					break
				}
			}
		}
	}
}

// levelTarget returns the size budget of a level (>= 1).
func (d *DB) levelTarget(level int) int64 {
	t := d.opts.BaseLevelSize
	for i := 1; i < level; i++ {
		t *= int64(d.opts.LevelMultiplier)
	}
	return t
}

// pickCompaction chooses the level with the highest overfull score, the
// LevelDB heuristic. Returns -1 when nothing is over budget.
func (d *DB) pickCompaction(v *manifest.Version) int {
	bestLevel, bestScore := -1, 1.0
	l0Score := float64(len(v.Levels[0])) / float64(d.opts.L0CompactionTrigger)
	if l0Score >= bestScore {
		bestLevel, bestScore = 0, l0Score
	}
	for level := 1; level < manifest.NumLevels-1; level++ {
		score := float64(v.LevelSize(level)) / float64(d.levelTarget(level))
		if score > bestScore {
			bestLevel, bestScore = level, score
		}
	}
	return bestLevel
}

// compactOnce performs at most one compaction. It returns whether work
// was done.
func (d *DB) compactOnce() (bool, error) {
	d.mu.Lock()
	if d.compacting || d.bgErr != nil {
		d.mu.Unlock()
		return false, nil
	}
	v := d.vs.Current()
	level := d.pickCompaction(v)
	if level < 0 {
		d.mu.Unlock()
		return false, nil
	}
	d.compacting = true
	d.mu.Unlock()

	var err error
	if d.opts.Style == Fragmented && level < manifest.NumLevels-2 {
		err = d.compactFragmented(v, level)
	} else {
		err = d.compactLeveled(v, level)
	}

	d.mu.Lock()
	d.compacting = false
	d.kick()
	d.cond.Broadcast()
	d.mu.Unlock()
	return err == nil, err
}

// inputsForLevel selects the files to move out of a level. For L0 every
// file participates (they overlap); for deeper levels one file is chosen
// (largest first, a simple fairness heuristic).
func (d *DB) inputsForLevel(v *manifest.Version, level int) []*manifest.FileMeta {
	files := v.Levels[level]
	if level == 0 || d.opts.Style == Fragmented {
		return append([]*manifest.FileMeta(nil), files...)
	}
	if len(files) == 0 {
		return nil
	}
	best := files[0]
	for _, f := range files[1:] {
		if f.Size > best.Size {
			best = f
		}
	}
	return []*manifest.FileMeta{best}
}

// keyRange computes the user-key span of a file set.
func keyRange(files []*manifest.FileMeta) (lo, hi []byte) {
	for _, f := range files {
		fl, fh := ikey.UserKey(f.Smallest), ikey.UserKey(f.Largest)
		if lo == nil || bytes.Compare(fl, lo) < 0 {
			lo = fl
		}
		if hi == nil || bytes.Compare(fh, hi) > 0 {
			hi = fh
		}
	}
	return lo, hi
}

// compactLeveled merges inputs from level with the overlapping files of
// level+1 and writes sorted, non-overlapping outputs into level+1.
func (d *DB) compactLeveled(v *manifest.Version, level int) error {
	inputs := d.inputsForLevel(v, level)
	if len(inputs) == 0 {
		return nil
	}
	lo, hi := keyRange(inputs)
	out := level + 1
	var lower []*manifest.FileMeta
	for _, f := range v.Levels[out] {
		if f.Overlaps(lo, hi) {
			lower = append(lower, f)
		}
	}
	all := append(append([]*manifest.FileMeta(nil), inputs...), lower...)
	dropTombs := d.noDataBelow(v, out, lo, hi)
	outputs, err := d.mergeFiles(all, out, dropTombs, nil)
	if err != nil {
		return err
	}
	return d.installCompaction(level, inputs, out, lower, outputs)
}

// compactFragmented implements the PebblesDB-style policy: the level's
// files are merged among themselves and re-partitioned into level+1
// WITHOUT rewriting level+1's existing data, so each byte is written once
// per level instead of LevelMultiplier times. The next level tolerates
// overlapping files (reads fan out, Get picks the newest version by
// sequence number).
func (d *DB) compactFragmented(v *manifest.Version, level int) error {
	inputs := d.inputsForLevel(v, level)
	if len(inputs) == 0 {
		return nil
	}
	out := level + 1
	lo, hi := keyRange(inputs)
	dropTombs := d.noDataBelow(v, out, lo, hi) && len(v.Levels[out]) == 0
	outputs, err := d.mergeFiles(inputs, out, dropTombs, nil)
	if err != nil {
		return err
	}
	return d.installCompaction(level, inputs, out, nil, outputs)
}

// noDataBelow reports whether no level deeper than out overlaps
// [lo, hi] — the condition for dropping tombstones.
func (d *DB) noDataBelow(v *manifest.Version, out int, lo, hi []byte) bool {
	for level := out + 1; level < manifest.NumLevels; level++ {
		for _, f := range v.Levels[level] {
			if f.Overlaps(lo, hi) {
				return false
			}
		}
	}
	return true
}

// mergeFiles merge-sorts the input tables and writes outputs split at
// TargetFileSize. Older duplicate versions are dropped (no snapshot
// support across compactions); tombstones are dropped when dropTombs.
func (d *DB) mergeFiles(inputs []*manifest.FileMeta, outLevel int, dropTombs bool, guards [][]byte) ([]manifest.FileMeta, error) {
	var children []internalIterator
	for _, fm := range inputs {
		f, err := d.opts.FS.Open(sstName(d.dir, fm.Num))
		if err != nil {
			return nil, err
		}
		r, err := sstable.OpenWithCache(f, d.blocks, fm.Num)
		if err != nil {
			f.Close()
			return nil, err
		}
		children = append(children, tableIterAdapter{r.NewIterator(), r})
		d.perf.compactRead.Add(fm.Size)
	}
	merge := newMergingIter(children)
	defer merge.Close()

	var (
		outputs []manifest.FileMeta
		w       *sstable.Writer
		wf      interface{ Close() error }
		curNum  uint64
		lastUK  []byte
		haveUK  bool
	)
	finishOutput := func() error {
		if w == nil {
			return nil
		}
		meta, err := w.Finish()
		wf.Close()
		w = nil
		if err != nil {
			d.opts.FS.Remove(sstName(d.dir, curNum))
			return err
		}
		d.perf.compactWrite.Add(meta.Size)
		outputs = append(outputs, manifest.FileMeta{
			Num: meta.FileNum, Size: meta.Size, Entries: meta.Entries,
			Smallest: meta.Smallest, Largest: meta.Largest,
		})
		return nil
	}

	written := int64(0)
	for merge.SeekToFirst(); merge.Valid(); merge.Next() {
		ik := merge.Key()
		uk, _, kind, err := ikey.Decode(ik)
		if err != nil {
			return nil, err
		}
		if haveUK && bytes.Equal(uk, lastUK) {
			continue // shadowed older version
		}
		lastUK = append(lastUK[:0], uk...)
		haveUK = true
		if kind == ikey.KindDelete && dropTombs {
			continue
		}
		if w != nil && written >= d.opts.TargetFileSize {
			if err := finishOutput(); err != nil {
				return nil, err
			}
			written = 0
		}
		if w == nil {
			curNum = d.vs.NewFileNum()
			f, err := d.opts.FS.Create(sstName(d.dir, curNum))
			if err != nil {
				return nil, err
			}
			w = sstable.NewWriter(f, curNum)
			if d.opts.Compression {
				w.EnableCompression()
			}
			wf = f
		}
		if err := w.Add(ik, merge.Value()); err != nil {
			return nil, err
		}
		written += int64(len(ik) + len(merge.Value()))
	}
	if err := merge.Err(); err != nil {
		return nil, err
	}
	if err := finishOutput(); err != nil {
		return nil, err
	}
	return outputs, nil
}

// installCompaction atomically swaps inputs for outputs in the manifest,
// then deletes the obsolete files.
func (d *DB) installCompaction(inLevel int, inputs []*manifest.FileMeta, outLevel int, lower []*manifest.FileMeta, outputs []manifest.FileMeta) error {
	edit := &manifest.VersionEdit{}
	for _, f := range inputs {
		edit.Deleted = append(edit.Deleted, manifest.DeletedFile{Level: inLevel, Num: f.Num})
	}
	for _, f := range lower {
		edit.Deleted = append(edit.Deleted, manifest.DeletedFile{Level: outLevel, Num: f.Num})
	}
	for _, m := range outputs {
		edit.Added = append(edit.Added, manifest.AddedFile{Level: outLevel, Meta: m})
	}
	orphans := make([]uint64, 0, len(outputs))
	for _, m := range outputs {
		orphans = append(orphans, m.Num)
	}
	if err := d.applyEdit(edit, orphans...); err != nil {
		return err
	}
	d.perf.compactions.Add(1)
	for _, f := range append(append([]*manifest.FileMeta(nil), inputs...), lower...) {
		d.tcache.evict(f.Num)
		d.opts.FS.Remove(sstName(d.dir, f.Num))
	}
	return nil
}
