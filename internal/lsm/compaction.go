package lsm

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"p2kvs/internal/ikey"
	"p2kvs/internal/kv"
	"p2kvs/internal/manifest"
	"p2kvs/internal/sstable"
)

// CompactRange force-compacts every file overlapping [begin, end] (nil
// bounds are open) down the tree until the range is fully merged — the
// manual-compaction API production stores expose for space reclamation
// and read-amp repair after bulk deletes.
//
// Under the Fragmented style the per-level step follows the fragmented
// policy — the level's overlapping files are merged among themselves and
// appended to the next level WITHOUT rewriting that level's existing
// files, preserving the write-once-per-level invariant (and its
// tombstone-drop precondition) that routing manual compactions through
// the leveled path used to violate.
func (d *DB) CompactRange(begin, end []byte) error {
	if d.closed.Load() {
		return kv.ErrClosed
	}
	if err := d.Flush(); err != nil {
		return err
	}
	for level := 0; level < manifest.NumLevels-1; level++ {
		job, err := d.claimManualJob(level, begin, end)
		if err != nil {
			return err
		}
		if job == nil {
			continue
		}
		err = d.execJob(job)
		d.finishJob(job)
		if err != nil {
			return err
		}
	}
	return nil
}

// claimManualJob builds a manual-compaction job for the files of one
// level overlapping [begin, end], waiting out any conflicting background
// compaction. Returns nil when nothing on the level overlaps the range.
func (d *DB) claimManualJob(level int, begin, end []byte) (*compactionJob, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.bgErr != nil {
			return nil, d.bgErr
		}
		if d.closed.Load() {
			return nil, kv.ErrClosed
		}
		v := d.vs.Current()
		var inputs []*manifest.FileMeta
		for _, f := range v.Levels[level] {
			if f.Overlaps(begin, end) {
				inputs = append(inputs, f)
			}
		}
		if len(inputs) == 0 {
			return nil, nil
		}
		out := level + 1
		// Fail fast when the requested range touches a quarantined file on
		// either side of the merge: waiting on d.cond would hang (the
		// quarantine only lifts via repair) and compacting around the file
		// could invert version order if it is later repaired.
		if len(d.quar) > 0 {
			ilo, ihi := keyRange(inputs)
			for _, f := range append(append([]*manifest.FileMeta(nil), inputs...), v.Levels[out]...) {
				if qerr, ok := d.quar[f.Num]; ok && f.Overlaps(ilo, ihi) {
					return nil, qerr
				}
			}
		}
		lo, hi := keyRange(inputs)
		var job *compactionJob
		if d.opts.Style == Fragmented && level < manifest.NumLevels-2 {
			job = &compactionJob{
				level: level, out: out, inputs: inputs,
				lo: lo, hi: hi, wholeLevel: true, fragmented: true, manual: true,
				dropTombs: d.noDataBelow(v, out, lo, hi) && len(v.Levels[out]) == 0,
			}
			if d.conflictsLocked(job) {
				job = nil
			}
		} else {
			job = d.finishLeveledJobLocked(v, level, inputs)
			if job != nil {
				job.manual = true
			}
		}
		if job != nil {
			d.startJobLocked(job)
			return job, nil
		}
		// Wait for a running compaction to release the range.
		d.cond.Wait()
	}
}

// compactLoop is the background compaction dispatcher (Figure 2 ③). Each
// kick (flush landed, compaction finished, Resume) tops the pool back up
// to MaxBackgroundCompactions; the jobs themselves run on their own
// goroutines with per-job retry/backoff (see runCompaction).
func (d *DB) compactLoop() {
	defer d.bgWG.Done()
	for {
		select {
		case <-d.stopC:
			return
		case <-d.compactC:
			d.mu.Lock()
			d.scheduleCompactionsLocked()
			d.mu.Unlock()
		}
	}
}

// levelTarget returns the size budget of a level (>= 1).
func (d *DB) levelTarget(level int) int64 {
	t := d.opts.BaseLevelSize
	for i := 1; i < level; i++ {
		t *= int64(d.opts.LevelMultiplier)
	}
	return t
}

// keyRange computes the user-key span of a file set.
func keyRange(files []*manifest.FileMeta) (lo, hi []byte) {
	for _, f := range files {
		fl, fh := ikey.UserKey(f.Smallest), ikey.UserKey(f.Largest)
		if lo == nil || bytes.Compare(fl, lo) < 0 {
			lo = fl
		}
		if hi == nil || bytes.Compare(fh, hi) > 0 {
			hi = fh
		}
	}
	return lo, hi
}

// noDataBelow reports whether no level deeper than out overlaps
// [lo, hi] — the condition for dropping tombstones.
func (d *DB) noDataBelow(v *manifest.Version, out int, lo, hi []byte) bool {
	for level := out + 1; level < manifest.NumLevels; level++ {
		for _, f := range v.Levels[level] {
			if f.Overlaps(lo, hi) {
				return false
			}
		}
	}
	return true
}

// mergeSplit merges the inputs, splitting the work into up to
// MaxSubCompactions key-range subcompactions that run concurrently when
// the merge is large enough to amortize the extra iterator setup. The
// per-range output lists are stitched back together in key order so the
// caller installs a single VersionEdit.
func (d *DB) mergeSplit(inputs []*manifest.FileMeta, outLevel int, dropTombs bool) ([]manifest.FileMeta, error) {
	bounds := d.subcompactionBounds(inputs)
	if len(bounds) <= 1 {
		return d.mergeFiles(inputs, outLevel, dropTombs, nil, nil)
	}
	outs := make([][]manifest.FileMeta, len(bounds))
	errs := make([]error, len(bounds))
	var wg sync.WaitGroup
	for i, b := range bounds {
		wg.Add(1)
		go func(i int, lo, hi []byte) {
			defer wg.Done()
			outs[i], errs[i] = d.mergeFiles(inputs, outLevel, dropTombs, lo, hi)
		}(i, b[0], b[1])
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		// Subcompactions that finished cleanly still leave no trace: their
		// outputs were never installed, so remove them.
		for i, err := range errs {
			if err != nil {
				continue
			}
			for _, m := range outs[i] {
				d.opts.FS.Remove(sstName(d.dir, m.Num))
			}
		}
		return nil, firstErr
	}
	d.perf.subcompactions.Add(int64(len(bounds)))
	var all []manifest.FileMeta
	for _, o := range outs {
		all = append(all, o...)
	}
	return all, nil
}

// subcompactionBounds picks the key ranges a merge is split into:
// [nil,k1), [k1,k2), ... [kn,nil). Split points come from the input
// files' own boundaries, so each range covers roughly one file's worth of
// data per input run. Returns a single open range when splitting is
// disabled or not worthwhile.
func (d *DB) subcompactionBounds(inputs []*manifest.FileMeta) [][2][]byte {
	whole := [][2][]byte{{nil, nil}}
	n := d.opts.MaxSubCompactions
	if n <= 1 {
		return whole
	}
	var total int64
	for _, f := range inputs {
		total += f.Size
	}
	// A merge smaller than two output files gains nothing from splitting.
	if total < 2*d.opts.TargetFileSize {
		return whole
	}
	// Candidate split points: every input file boundary key, deduplicated.
	var keys [][]byte
	for _, f := range inputs {
		keys = append(keys, ikey.UserKey(f.Smallest), ikey.UserKey(f.Largest))
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	uniq := keys[:0]
	for _, k := range keys {
		if len(uniq) == 0 || !bytes.Equal(uniq[len(uniq)-1], k) {
			uniq = append(uniq, k)
		}
	}
	// Interior candidates only: the smallest key cannot start a second
	// range and the largest cannot end one early.
	if len(uniq) < 3 {
		return whole
	}
	interior := uniq[1 : len(uniq)-1]
	if n-1 > len(interior) {
		n = len(interior) + 1
	}
	bounds := make([][2][]byte, 0, n)
	var prev []byte
	for i := 1; i < n; i++ {
		k := interior[i*len(interior)/n]
		if prev != nil && bytes.Compare(k, prev) <= 0 {
			continue
		}
		bounds = append(bounds, [2][]byte{prev, k})
		prev = k
	}
	bounds = append(bounds, [2][]byte{prev, nil})
	if len(bounds) <= 1 {
		return whole
	}
	return bounds
}

// mergeFiles merge-sorts the input tables and writes outputs split at
// TargetFileSize, restricted to user keys in [lo, hi) when bounds are
// given (nil = open) — the subcompaction window. Older duplicate versions
// are dropped (no snapshot support across compactions); tombstones are
// dropped when dropTombs. On any error every partial and finished output
// file is closed and removed, so a failed merge leaves no orphans for the
// retry to trip over.
func (d *DB) mergeFiles(inputs []*manifest.FileMeta, outLevel int, dropTombs bool, lo, hi []byte) (outputs []manifest.FileMeta, err error) {
	var children []internalIterator
	for _, fm := range inputs {
		f, ferr := d.opts.FS.Open(sstName(d.dir, fm.Num))
		if ferr != nil {
			closeAll(children)
			return nil, ferr
		}
		r, rerr := sstable.OpenNamed(f, d.blocks, fm.Num, fmt.Sprintf("%06d.sst", fm.Num))
		if rerr != nil {
			f.Close()
			closeAll(children)
			return nil, rerr
		}
		children = append(children, tableIterAdapter{r.NewIterator(), r})
	}
	merge := newMergingIter(children)
	defer merge.Close()

	var (
		w      *sstable.Writer
		wf     interface{ Close() error }
		curNum uint64
		lastUK []byte
		haveUK bool
	)
	defer func() {
		if err == nil {
			return
		}
		// Mid-merge failure: close the in-progress writer and sweep every
		// output written so far off the disk.
		if w != nil {
			wf.Close()
			d.opts.FS.Remove(sstName(d.dir, curNum))
		}
		for _, m := range outputs {
			d.opts.FS.Remove(sstName(d.dir, m.Num))
		}
		outputs = nil
	}()
	finishOutput := func() error {
		if w == nil {
			return nil
		}
		meta, ferr := w.Finish()
		wf.Close()
		w = nil
		if ferr != nil {
			d.opts.FS.Remove(sstName(d.dir, curNum))
			return ferr
		}
		d.perf.compactWrite.Add(meta.Size)
		outputs = append(outputs, manifest.FileMeta{
			Num: meta.FileNum, Size: meta.Size, Entries: meta.Entries,
			Smallest: meta.Smallest, Largest: meta.Largest,
		})
		return nil
	}

	if lo == nil {
		merge.SeekToFirst()
	} else {
		merge.Seek(ikey.SeekKey(lo, ikey.MaxSeq))
	}
	written := int64(0)
	for ; merge.Valid(); merge.Next() {
		ik := merge.Key()
		uk, _, kind, derr := ikey.Decode(ik)
		if derr != nil {
			return nil, derr
		}
		if hi != nil && bytes.Compare(uk, hi) >= 0 {
			break // next subcompaction's window
		}
		if haveUK && bytes.Equal(uk, lastUK) {
			continue // shadowed older version
		}
		lastUK = append(lastUK[:0], uk...)
		haveUK = true
		if kind == ikey.KindDelete && dropTombs {
			continue
		}
		if w != nil && written >= d.opts.TargetFileSize {
			if err = finishOutput(); err != nil {
				return nil, err
			}
			written = 0
		}
		if w == nil {
			curNum = d.vs.NewFileNum()
			f, ferr := d.opts.FS.Create(sstName(d.dir, curNum))
			if ferr != nil {
				w = nil
				err = ferr
				return nil, err
			}
			w = sstable.NewWriter(f, curNum)
			if d.opts.Compression {
				w.EnableCompression()
			}
			wf = f
		}
		if err = w.Add(ik, merge.Value()); err != nil {
			return nil, err
		}
		written += int64(len(ik) + len(merge.Value()))
	}
	if err = merge.Err(); err != nil {
		return nil, err
	}
	if err = finishOutput(); err != nil {
		return nil, err
	}
	return outputs, nil
}

func closeAll(its []internalIterator) {
	for _, it := range its {
		it.Close()
	}
}

// installCompaction atomically swaps inputs for outputs in the manifest,
// then deletes the obsolete files. Concurrent jobs install edits that
// commute: the scheduler guarantees no two running jobs share a file or
// an output range on the same level.
func (d *DB) installCompaction(inLevel int, inputs []*manifest.FileMeta, outLevel int, lower []*manifest.FileMeta, outputs []manifest.FileMeta) error {
	edit := &manifest.VersionEdit{}
	for _, f := range inputs {
		edit.Deleted = append(edit.Deleted, manifest.DeletedFile{Level: inLevel, Num: f.Num})
	}
	for _, f := range lower {
		edit.Deleted = append(edit.Deleted, manifest.DeletedFile{Level: outLevel, Num: f.Num})
	}
	for _, m := range outputs {
		edit.Added = append(edit.Added, manifest.AddedFile{Level: outLevel, Meta: m})
	}
	orphans := make([]uint64, 0, len(outputs))
	for _, m := range outputs {
		orphans = append(orphans, m.Num)
	}
	if err := d.applyEdit(edit, orphans...); err != nil {
		return err
	}
	d.perf.compactions.Add(1)
	for _, f := range append(append([]*manifest.FileMeta(nil), inputs...), lower...) {
		d.tcache.evict(f.Num)
		// Deferred while a checkpoint pin holds: the captured version may
		// still reference this input (DESIGN.md §10).
		d.removeObsolete(sstName(d.dir, f.Num))
	}
	return nil
}
