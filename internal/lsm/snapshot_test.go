package lsm

import (
	"fmt"
	"testing"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// TestIteratorSnapshotIsolation: an iterator observes the store as of its
// creation; later writes, deletes and even flushes/compactions must not
// leak into an open scan.
func TestIteratorSnapshotIsolation(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("db", smallOpts(fs))
	defer db.Close()
	const n = 500
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("old"))
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	// Mutate heavily after the iterator exists.
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("new"))
	}
	for i := 0; i < n; i += 3 {
		db.Delete([]byte(fmt.Sprintf("k%04d", i)))
	}
	db.Put([]byte("zzz-added-later"), []byte("x"))

	count := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if string(it.Value()) != "old" {
			t.Fatalf("iterator leaked post-snapshot write: %q=%q", it.Key(), it.Value())
		}
		if string(it.Key()) == "zzz-added-later" {
			t.Fatal("iterator leaked post-snapshot insert")
		}
		count++
	}
	if it.Error() != nil {
		t.Fatal(it.Error())
	}
	if count != n {
		t.Fatalf("snapshot scan saw %d keys, want %d", count, n)
	}

	// A fresh iterator sees the new state.
	it2, _ := db.NewIterator()
	defer it2.Close()
	it2.Seek([]byte("k0001"))
	if !it2.Valid() || string(it2.Value()) != "new" {
		t.Fatalf("fresh iterator = %q/%q", it2.Key(), it2.Value())
	}
}

// TestGetSnapshotDuringCompaction: point reads taken while compactions
// churn must never observe missing or stale data.
func TestGetSnapshotDuringCompaction(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("db", smallOpts(fs))
	defer db.Close()
	const n = 2000
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		defer close(errc)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("k%04d", i%n)
			if err := db.Put([]byte(key), []byte(fmt.Sprintf("v%d", i))); err != nil {
				errc <- err
				return
			}
		}
	}()
	for round := 0; round < 50; round++ {
		key := fmt.Sprintf("k%04d", round*37%n)
		v, err := db.Get([]byte(key))
		if err != nil && err.Error() != "kv: key not found" {
			t.Fatalf("Get(%s) = %v", key, err)
		}
		_ = v
	}
	close(stop)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestExplicitSnapshots covers the Snapshot API (§4.5's read-committed
// building block): reads at a snapshot ignore later writes; Seq is
// monotone; Release is safe.
func TestExplicitSnapshots(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("db", smallOpts(fs))
	defer db.Close()
	db.Put([]byte("k"), []byte("v1"))
	s1 := db.NewSnapshot()
	db.Put([]byte("k"), []byte("v2"))
	s2 := db.NewSnapshot()
	if s2.Seq() <= s1.Seq() {
		t.Fatalf("snapshot seqs not monotone: %d then %d", s1.Seq(), s2.Seq())
	}

	if v, err := s1.Get([]byte("k")); err != nil || string(v) != "v1" {
		t.Fatalf("s1.Get = %q %v", v, err)
	}
	if v, err := s2.Get([]byte("k")); err != nil || string(v) != "v2" {
		t.Fatalf("s2.Get = %q %v", v, err)
	}
	// Snapshot iterator agrees.
	it, err := s1.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	it.SeekToFirst()
	if !it.Valid() || string(it.Value()) != "v1" {
		t.Fatalf("snapshot iterator = %q", it.Value())
	}
	it.Close()
	// A key written after the snapshot is invisible to it.
	db.Put([]byte("later"), []byte("x"))
	if _, err := s2.Get([]byte("later")); err == nil {
		t.Fatal("snapshot saw a later write")
	}
	s1.Release()
	s2.Release()
}

// TestReadsRaceCompactionFileDeletion hammers reads and iterators while
// compactions churn file sets; stale-version file deletions must be
// absorbed by the retry path, never surfacing as open errors.
func TestReadsRaceCompactionFileDeletion(t *testing.T) {
	fs := vfs.NewMem()
	opts := smallOpts(fs)
	opts.MemTableSize = 4 << 10
	opts.BaseLevelSize = 16 << 10
	opts.TargetFileSize = 4 << 10
	opts.L0CompactionTrigger = 2
	db, _ := Open("db", opts)
	defer db.Close()

	const n = 400
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), make([]byte, 64))
	}
	stop := make(chan struct{})
	werr := make(chan error, 1)
	go func() {
		defer close(werr)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Put([]byte(fmt.Sprintf("k%04d", i%n)), make([]byte, 64)); err != nil {
				werr <- err
				return
			}
		}
	}()
	for round := 0; round < 300; round++ {
		key := []byte(fmt.Sprintf("k%04d", round%n))
		if _, err := db.Get(key); err != nil && err != kv.ErrNotFound {
			t.Fatalf("Get: %v", err)
		}
		if round%25 == 0 {
			it, err := db.NewIterator()
			if err != nil {
				t.Fatalf("NewIterator: %v", err)
			}
			it.Seek(key)
			_ = it.Valid()
			it.Close()
		}
		if round%40 == 0 {
			if _, err := db.MultiGet([][]byte{key, []byte("k0001"), []byte("k0002")}); err != nil {
				t.Fatalf("MultiGet: %v", err)
			}
		}
	}
	close(stop)
	if err := <-werr; err != nil {
		t.Fatal(err)
	}
}
