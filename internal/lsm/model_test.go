package lsm

import (
	"fmt"
	"testing"
	"testing/quick"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// TestQuickEngineAgainstModel is the engine-level property test: any
// random sequence of puts/deletes/batches/flushes/compactions/reopens
// must leave the engine agreeing with a map model — for all three
// presets.
func TestQuickEngineAgainstModel(t *testing.T) {
	type op struct {
		Kind   uint8 // 0-4 put, 5 delete, 6 batch of 3, 7 flush, 8 compact
		Key    uint8
		Val    uint16
		Preset uint8
		Reopen bool
	}
	fn := func(ops []op, presetPick uint8) bool {
		fs := vfs.NewMem()
		var opts Options
		switch presetPick % 3 {
		case 0:
			opts = RocksDBOptions(fs)
		case 1:
			opts = LevelDBOptions(fs)
		default:
			opts = PebblesDBOptions(fs)
		}
		opts.MemTableSize = 4 << 10
		opts.BaseLevelSize = 16 << 10
		opts.TargetFileSize = 4 << 10

		db, err := Open("m", opts)
		if err != nil {
			return false
		}
		defer func() { db.Close() }()
		model := map[string]string{}

		key := func(k uint8) string { return fmt.Sprintf("key-%03d", k%48) }
		for i, o := range ops {
			switch {
			case o.Kind <= 4:
				k, v := key(o.Key), fmt.Sprintf("v%d-%d", i, o.Val)
				if db.Put([]byte(k), []byte(v)) != nil {
					return false
				}
				model[k] = v
			case o.Kind == 5:
				k := key(o.Key)
				if db.Delete([]byte(k)) != nil {
					return false
				}
				delete(model, k)
			case o.Kind == 6:
				var b kv.Batch
				for j := uint8(0); j < 3; j++ {
					k, v := key(o.Key+j), fmt.Sprintf("b%d-%d", i, j)
					b.Put([]byte(k), []byte(v))
					model[k] = v
				}
				if db.Write(&b) != nil {
					return false
				}
			case o.Kind == 7:
				if db.Flush() != nil {
					return false
				}
			default:
				if db.CompactAll() != nil {
					return false
				}
			}
			if o.Reopen && i%7 == 0 {
				if db.Close() != nil {
					return false
				}
				db, err = Open("m", opts)
				if err != nil {
					return false
				}
			}
		}
		// Full agreement with the model, point reads and iteration.
		for k, want := range model {
			v, err := db.Get([]byte(k))
			if err != nil || string(v) != want {
				return false
			}
		}
		it, err := db.NewIterator()
		if err != nil {
			return false
		}
		defer it.Close()
		count := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if model[string(it.Key())] != string(it.Value()) {
				return false
			}
			count++
		}
		return count == len(model) && it.Error() == nil
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteStallEngages verifies backpressure: with a tiny L0 stall
// trigger and compaction disabled-in-practice (huge level targets are
// not used — instead we flood faster than flush by disabling the
// background worker's progress via many immutables), writers must block
// rather than grow state unboundedly, and resume when flush catches up.
func TestWriteStallEngages(t *testing.T) {
	fs := vfs.NewMem()
	opts := RocksDBOptions(fs)
	opts.MemTableSize = 2 << 10
	opts.MaxImmutables = 1
	opts.L0CompactionTrigger = 2
	opts.L0StallTrigger = 4
	opts.BaseLevelSize = 16 << 10
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 3000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	p := db.Perf()
	if p.StallTime == 0 {
		t.Log("note: no stall engaged (flush kept up); acceptable but unusual at these settings")
	}
	// Regardless of stalls, all data must be readable.
	for i := 0; i < 3000; i += 501 {
		if _, err := db.Get([]byte(fmt.Sprintf("k%06d", i))); err != nil {
			t.Fatalf("Get(%d) = %v", i, err)
		}
	}
}

// TestSecondCrashAfterRecovery covers the double-crash path: recover,
// write more, crash again, recover again. The re-logged recovery WAL must
// replay correctly the second time.
func TestSecondCrashAfterRecovery(t *testing.T) {
	fs := vfs.NewMem()
	opts := smallOpts(fs)
	opts.SyncWAL = true

	db, _ := Open("db", opts)
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v1"))
	}
	// Overwrite some so the memtable holds multiple versions per key.
	for i := 0; i < 100; i += 2 {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v2"))
	}
	fs.Crash()
	db.Close()
	fs.Restart()

	db2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 150; i++ {
		db2.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v3"))
	}
	fs.Crash()
	db2.Close()
	fs.Restart()

	db3, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	for i := 0; i < 150; i++ {
		want := "v1"
		if i%2 == 0 && i < 100 {
			want = "v2"
		}
		if i >= 100 {
			want = "v3"
		}
		v, err := db3.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || string(v) != want {
			t.Fatalf("after double crash: Get(k%03d) = %q %v, want %q", i, v, err, want)
		}
	}
}

// TestCompressionEndToEnd: the Compression option must round-trip through
// flush, compaction and recovery, and shrink on-disk size for
// compressible data.
func TestCompressionEndToEnd(t *testing.T) {
	run := func(compress bool) (int64, *DB, *vfs.MemFS) {
		fs := vfs.NewMem()
		opts := smallOpts(fs)
		opts.Compression = compress
		db, err := Open("db", opts)
		if err != nil {
			t.Fatal(err)
		}
		val := make([]byte, 256) // zeros: highly compressible
		for i := 0; i < 2000; i++ {
			db.Put([]byte(fmt.Sprintf("key%06d", i)), val)
		}
		if err := db.CompactAll(); err != nil {
			t.Fatal(err)
		}
		m := db.Metrics()
		var disk int64
		for _, b := range m.LevelBytes {
			disk += b
		}
		return disk, db, fs
	}
	rawSize, dbRaw, _ := run(false)
	dbRaw.Close()
	compSize, dbComp, fs := run(true)
	if compSize >= rawSize/2 {
		t.Fatalf("compression ineffective: %d vs %d raw", compSize, rawSize)
	}
	// Reads and recovery over compressed tables.
	for i := 0; i < 2000; i += 333 {
		if _, err := dbComp.Get([]byte(fmt.Sprintf("key%06d", i))); err != nil {
			t.Fatalf("Get over compressed table: %v", err)
		}
	}
	dbComp.Close()
	opts := smallOpts(fs)
	opts.Compression = true
	db2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("key000100")); err != nil {
		t.Fatalf("Get after reopen of compressed store: %v", err)
	}
}

func TestCompactRange(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("db", smallOpts(fs))
	defer db.Close()
	const n = 3000
	fill(t, db, n, 1)
	// Delete a band of keys, then manually compact that band: the
	// tombstones and shadowed versions must be reclaimed.
	for i := 1000; i < 2000; i++ {
		db.Delete([]byte(fmt.Sprintf("key%06d", i)))
	}
	if err := db.CompactRange([]byte("key001000"), []byte("key001999")); err != nil {
		t.Fatal(err)
	}
	// Deleted band gone, surrounding data intact.
	for i := 0; i < n; i += 97 {
		key := fmt.Sprintf("key%06d", i)
		_, err := db.Get([]byte(key))
		if i >= 1000 && i < 2000 {
			if err == nil {
				t.Fatalf("deleted key %s survived CompactRange", key)
			}
		} else if err != nil {
			t.Fatalf("key %s lost by CompactRange: %v", key, err)
		}
	}
	// Full-range manual compaction leaves a clean tree and keeps data.
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.LevelFiles[0] != 0 {
		t.Fatalf("L0 not drained by full CompactRange: %d files", m.LevelFiles[0])
	}
	if _, err := db.Get([]byte("key000000")); err != nil {
		t.Fatal(err)
	}
}
