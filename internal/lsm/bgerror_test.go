package lsm

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// faultOpts is smallOpts with foreground maintenance and a fast, small
// retry budget so degradation is reachable in test time.
func faultOpts(fs vfs.FS) Options {
	o := smallOpts(fs)
	o.BackgroundCompaction = false
	o.BgMaxRetries = 3
	o.BgBaseBackoff = time.Millisecond
	o.BgMaxBackoff = 4 * time.Millisecond
	return o
}

func putN(t *testing.T, db *DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
}

func checkN(t *testing.T, db *DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		v, err := db.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("get %d = %q, %v", i, v, err)
		}
	}
}

// TestFlushRetriesTransientFault: a flush whose first attempt fails with a
// transient injected error must be retried and succeed with the memtable
// contents intact — before, during and after (via reopen) the incident.
func TestFlushRetriesTransientFault(t *testing.T) {
	fs := vfs.NewFault(vfs.NewMem())
	db, err := Open("db", faultOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	putN(t, db, 50)
	fs.Inject(vfs.Rule{Op: vfs.OpCreate, Path: ".sst", CountN: 1, OneShot: true})
	if err := db.Flush(); err != nil {
		t.Fatalf("flush must recover from a transient fault: %v", err)
	}
	h := db.Health()
	if h.State != kv.StateHealthy {
		t.Fatalf("state = %v, want healthy", h.State)
	}
	if h.FlushRetries == 0 {
		t.Fatal("flush succeeded without recording a retry — fault not exercised")
	}
	if h.InjectedFaults == 0 {
		t.Fatal("fault counter not surfaced in Health")
	}
	checkN(t, db, 50)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The data must have reached disk, not just memory.
	db2, err := Open("db", faultOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	checkN(t, db2, 50)
}

// TestFlushRetryExhaustionDegrades: when every retry fails the engine must
// degrade to read-only — writes fail fast with kv.ErrDegraded, reads keep
// serving the un-flushed memtable — and Resume() must restore write
// availability once the fault clears, losing nothing.
func TestFlushRetryExhaustionDegrades(t *testing.T) {
	fs := vfs.NewFault(vfs.NewMem())
	db, err := Open("db", faultOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	putN(t, db, 50)

	fs.Inject(vfs.Rule{Op: vfs.OpCreate, Path: ".sst"}) // persistent fault
	err = db.Flush()
	if !errors.Is(err, kv.ErrDegraded) {
		t.Fatalf("flush err = %v, want ErrDegraded", err)
	}
	if got := db.Health().State; got != kv.StateReadOnly {
		t.Fatalf("state = %v, want read-only", got)
	}
	if err := db.Put([]byte("nope"), []byte("x")); !errors.Is(err, kv.ErrDegraded) {
		t.Fatalf("degraded write err = %v, want ErrDegraded", err)
	}
	// Reads still serve the data stranded in the immutable memtable.
	checkN(t, db, 50)
	if m := db.Metrics(); m.State != kv.StateReadOnly || m.FlushRetries == 0 {
		t.Fatalf("metrics = state %v retries %d", m.State, m.FlushRetries)
	}

	// Fault clears; Resume must drain the queue and restore writes.
	fs.ClearRules()
	if err := db.Resume(); err != nil {
		t.Fatal(err)
	}
	if got := db.Health().State; got != kv.StateHealthy {
		t.Fatalf("post-resume state = %v, want healthy", got)
	}
	if err := db.Put([]byte("key-9999"), []byte("back")); err != nil {
		t.Fatalf("post-resume write: %v", err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	checkN(t, db, 50)
	if v, err := db.Get([]byte("key-9999")); err != nil || string(v) != "back" {
		t.Fatalf("post-resume get = %q, %v", v, err)
	}
}

// TestBackgroundFlushRetrySucceeds exercises the retry path on the real
// background flush thread.
func TestBackgroundFlushRetrySucceeds(t *testing.T) {
	fs := vfs.NewFault(vfs.NewMem())
	o := smallOpts(fs)
	o.BgBaseBackoff = time.Millisecond
	o.BgMaxBackoff = 4 * time.Millisecond
	db, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	putN(t, db, 200)
	fs.Inject(vfs.Rule{Op: vfs.OpCreate, Path: ".sst", CountN: 1, OneShot: true})
	if err := db.Flush(); err != nil {
		t.Fatalf("background flush must ride out the fault: %v", err)
	}
	if h := db.Health(); h.State != kv.StateHealthy || h.FlushRetries == 0 {
		t.Fatalf("health = %+v", h)
	}
	checkN(t, db, 200)
}

// TestBackgroundCompactionRetry: a compaction whose input read fails
// transiently must be retried by the (still alive) compaction thread.
func TestBackgroundCompactionRetry(t *testing.T) {
	fs := vfs.NewFault(vfs.NewMem())
	o := smallOpts(fs)
	o.BgBaseBackoff = time.Millisecond
	o.BgMaxBackoff = 4 * time.Millisecond
	db, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Compaction (not flush) is the only path that re-opens SSTs here, so
	// an open fault targets exactly its first input read.
	fs.Inject(vfs.Rule{Op: vfs.OpOpen, Path: ".sst", CountN: 1, OneShot: true})

	// Build enough L0 files to cross L0CompactionTrigger.
	for round := 0; round < 6; round++ {
		for i := 0; i < 30; i++ {
			k := fmt.Sprintf("key-%02d-%03d", round, i)
			if err := db.Put([]byte(k), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		h := db.Health()
		if h.CompactRetries > 0 && h.State == kv.StateHealthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction did not retry/recover: %+v", h)
		}
		time.Sleep(time.Millisecond)
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		for i := 0; i < 30; i++ {
			k := fmt.Sprintf("key-%02d-%03d", round, i)
			if _, err := db.Get([]byte(k)); err != nil {
				t.Fatalf("get %s: %v", k, err)
			}
		}
	}
}

// TestDegradedErrorChain: the degraded error must expose both the
// sentinel (errors.Is kv.ErrDegraded) and the root cause (errors.Is
// vfs.ErrInjected) for observability.
func TestDegradedErrorChain(t *testing.T) {
	fs := vfs.NewFault(vfs.NewMem())
	db, err := Open("db", faultOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	putN(t, db, 10)
	fs.Inject(vfs.Rule{Op: vfs.OpCreate, Path: ".sst"})
	err = db.Flush()
	if !errors.Is(err, kv.ErrDegraded) || !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("err %v must wrap both ErrDegraded and ErrInjected", err)
	}
	fs.ClearRules()
}
