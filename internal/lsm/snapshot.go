package lsm

import "p2kvs/internal/kv"

// Snapshot is a point-in-time read view of the instance. It implements
// the extension §4.5 of the paper sketches for read-committed isolation:
// "Each worker creates a snapshot of the instance before the WriteBatch
// is processed, and other read requests will access the snapshot to
// avoid dirty reads."
//
// Snapshots here pin only a sequence number plus the structures of the
// moment (memtables and the current version); because this engine's
// compactions drop versions shadowed at the *latest* sequence, a snapshot
// is guaranteed stable only until compaction rewrites the range — the
// same contract a RocksDB snapshot has against
// compaction-with-snapshots disabled. Suitable for the short-lived
// read-committed windows p2KVS needs; not for long-lived time travel.
type Snapshot struct {
	db *DB
	rs readState
}

// NewSnapshot captures the current read view.
func (d *DB) NewSnapshot() *Snapshot {
	return &Snapshot{db: d, rs: d.acquireReadState()}
}

// Seq exposes the snapshot's sequence number.
func (s *Snapshot) Seq() uint64 { return s.rs.seq }

// Get reads the newest version visible at the snapshot.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	if s.db.closed.Load() {
		return nil, kv.ErrClosed
	}
	s.db.perf.gets.Add(1)
	return s.db.getAt(s.rs, key)
}

// NewIterator scans the snapshot.
func (s *Snapshot) NewIterator() (kv.Iterator, error) {
	if s.db.closed.Load() {
		return nil, kv.ErrClosed
	}
	return s.db.newIterAt(s.rs)
}

// Release drops the snapshot's references. (No refcounting is needed —
// Go's GC reclaims the pinned memtables once unreferenced — but Release
// is part of the API contract so callers are portable to engines that do
// refcount.)
func (s *Snapshot) Release() {
	s.rs = readState{}
	s.db = nil
}
