package lsm

import (
	"p2kvs/internal/manifest"
	"p2kvs/internal/sstable"
)

// flushLoop is the background minor-compaction thread (Figure 2 ③,
// "minor compaction"): it drains the immutable-memtable queue to L0.
func (d *DB) flushLoop() {
	defer d.bgWG.Done()
	for {
		select {
		case <-d.stopC:
			return
		case <-d.flushC:
			for d.flushOne() {
				select {
				case <-d.stopC:
					return
				default:
				}
			}
		}
	}
}

// flushOne writes the oldest immutable memtable to an L0 SSTable and
// retires its WAL, retrying transient failures with backoff. The memtable
// stays in the queue (and its WAL on disk) until a flush attempt
// succeeds, so a failed flush loses nothing. Returns true if it did work.
func (d *DB) flushOne() bool {
	d.mu.Lock()
	if len(d.imm) == 0 || d.bgErr != nil {
		d.mu.Unlock()
		return false
	}
	h := d.imm[0]
	d.mu.Unlock()

	// Wait for in-flight writers that pinned this memtable before
	// rotation; without this barrier a late insert could be acked,
	// missed by the flush, and lost when the WAL is deleted.
	h.writers.Wait()

	for attempt := 0; ; attempt++ {
		err := d.doFlush(h)
		if err == nil {
			if attempt > 0 {
				d.clearBgFailure("flush")
			}
			break
		}
		if !d.noteBgFailure("flush", err, attempt) {
			return false // degraded or closing
		}
		d.perf.flushRetries.Add(1)
		if !d.backoffWait(attempt + 1) {
			return false // closing
		}
	}

	d.mu.Lock()
	d.imm = d.imm[1:]
	d.kick()
	d.cond.Broadcast()
	d.mu.Unlock()
	return true
}

func (d *DB) doFlush(h *memHandle) error {
	// The WAL is the only durable copy of this memtable until the flush
	// is committed in the manifest, so it is deleted strictly *after* a
	// successful LogAndApply — a failed or crash-interrupted flush must
	// leave the log for recovery.
	retireWAL := func() {
		if h.walw != nil {
			h.walw.Close()
			// Deferred while a checkpoint pin holds: the captured image may
			// still be copying this log's prefix.
			d.removeObsolete(walName(d.dir, h.logNum))
		}
	}
	if d.opts.MemTableOnly || h.mem.Empty() {
		// Figure 8b mode (or an empty rotation): drop without IO, but
		// still advance the manifest's log number so recovery doesn't
		// look for the removed WAL.
		if err := d.applyEdit(&manifest.VersionEdit{
			HasLogNum: true, LogNum: h.logNum + 1,
			HasLastSeq: true, LastSeq: d.seq.Load(),
		}); err != nil {
			return err
		}
		retireWAL()
		return nil
	}

	num := d.vs.NewFileNum()
	f, err := d.opts.FS.Create(sstName(d.dir, num))
	if err != nil {
		return err
	}
	w := sstable.NewWriter(f, num)
	if d.opts.Compression {
		w.EnableCompression()
	}
	it := h.mem.NewIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if err := w.Add(it.Key(), it.Value()); err != nil {
			f.Close()
			d.opts.FS.Remove(sstName(d.dir, num))
			return err
		}
	}
	meta, err := w.Finish()
	if err != nil {
		f.Close()
		d.opts.FS.Remove(sstName(d.dir, num))
		return err
	}
	f.Close()

	d.perf.flushes.Add(1)
	d.perf.flushBytes.Add(meta.Size)

	if err := d.applyEdit(&manifest.VersionEdit{
		HasLogNum: true, LogNum: h.logNum + 1,
		HasLastSeq: true, LastSeq: d.seq.Load(),
		HasNextFile: true, NextFile: num + 1,
		Added: []manifest.AddedFile{{Level: 0, Meta: manifest.FileMeta{
			Num: meta.FileNum, Size: meta.Size, Entries: meta.Entries,
			Smallest: meta.Smallest, Largest: meta.Largest,
		}}},
	}, num); err != nil {
		return err
	}
	retireWAL()
	return nil
}
