package lsm

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"p2kvs/internal/kv"
	"p2kvs/internal/manifest"
	"p2kvs/internal/vfs"
)

// smallOpts returns options tuned so tiny tests exercise rotation and
// compaction.
func smallOpts(fs vfs.FS) Options {
	o := RocksDBOptions(fs)
	o.MemTableSize = 16 << 10
	o.BaseLevelSize = 64 << 10
	o.TargetFileSize = 16 << 10
	return o
}

func presets(fs vfs.FS) map[string]Options {
	shrink := func(o Options) Options {
		o.MemTableSize = 16 << 10
		o.BaseLevelSize = 64 << 10
		o.TargetFileSize = 16 << 10
		return o
	}
	return map[string]Options{
		"rocksdb":   shrink(RocksDBOptions(fs)),
		"leveldb":   shrink(LevelDBOptions(fs)),
		"pebblesdb": shrink(PebblesDBOptions(fs)),
	}
}

func TestPutGetDelete(t *testing.T) {
	for name, opts := range presets(vfs.NewMem()) {
		t.Run(name, func(t *testing.T) {
			db, err := Open("db-"+name, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			if err := db.Put([]byte("k"), []byte("v")); err != nil {
				t.Fatal(err)
			}
			v, err := db.Get([]byte("k"))
			if err != nil || string(v) != "v" {
				t.Fatalf("Get = %q, %v", v, err)
			}
			if _, err := db.Get([]byte("absent")); err != kv.ErrNotFound {
				t.Fatalf("Get(absent) err = %v", err)
			}
			if err := db.Delete([]byte("k")); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Get([]byte("k")); err != kv.ErrNotFound {
				t.Fatalf("Get after delete err = %v", err)
			}
			// Overwrite.
			db.Put([]byte("k"), []byte("v1"))
			db.Put([]byte("k"), []byte("v2"))
			v, _ = db.Get([]byte("k"))
			if string(v) != "v2" {
				t.Fatalf("overwrite lost: %q", v)
			}
		})
	}
}

func TestWriteBatchAtomicVisibility(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("db", smallOpts(fs))
	defer db.Close()
	var b kv.Batch
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("a")); err != kv.ErrNotFound {
		t.Fatal("delete inside batch must win over earlier put")
	}
	if v, _ := db.Get([]byte("b")); string(v) != "2" {
		t.Fatal("batch put lost")
	}
}

func TestFlushAndGetFromSST(t *testing.T) {
	for name, opts := range presets(vfs.NewMem()) {
		t.Run(name, func(t *testing.T) {
			db, _ := Open("db-"+name, opts)
			defer db.Close()
			for i := 0; i < 500; i++ {
				db.Put([]byte(fmt.Sprintf("key%05d", i)), []byte(fmt.Sprintf("val%d", i)))
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			m := db.Metrics()
			files := 0
			for _, n := range m.LevelFiles {
				files += n
			}
			if files == 0 {
				t.Fatal("flush produced no SSTables")
			}
			for i := 0; i < 500; i += 13 {
				v, err := db.Get([]byte(fmt.Sprintf("key%05d", i)))
				if err != nil || string(v) != fmt.Sprintf("val%d", i) {
					t.Fatalf("Get(%d) = %q, %v", i, v, err)
				}
			}
		})
	}
}

// fill writes n keys with a deterministic permutation and values tagged
// by round so overwrite correctness is checkable after compactions.
func fill(t *testing.T, db *DB, n, round int) {
	t.Helper()
	r := rand.New(rand.NewSource(int64(round)))
	perm := r.Perm(n)
	for _, i := range perm {
		key := fmt.Sprintf("key%06d", i)
		val := fmt.Sprintf("r%d-val%06d", round, i)
		if err := db.Put([]byte(key), []byte(val)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompactionPreservesData(t *testing.T) {
	for name, opts := range presets(vfs.NewMem()) {
		t.Run(name, func(t *testing.T) {
			db, err := Open("db-"+name, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			const n = 2000
			fill(t, db, n, 1)
			fill(t, db, n, 2) // overwrite everything
			if err := db.CompactAll(); err != nil {
				t.Fatal(err)
			}
			p := db.Perf()
			if p.Compactions == 0 {
				t.Fatal("test did not exercise compaction")
			}
			for i := 0; i < n; i += 7 {
				key := fmt.Sprintf("key%06d", i)
				v, err := db.Get([]byte(key))
				if err != nil {
					t.Fatalf("Get(%s) err = %v", key, err)
				}
				want := fmt.Sprintf("r2-val%06d", i)
				if string(v) != want {
					t.Fatalf("Get(%s) = %q, want %q", key, v, want)
				}
			}
		})
	}
}

func TestLeveledInvariantDisjointLevels(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("db", smallOpts(fs))
	defer db.Close()
	fill(t, db, 3000, 1)
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	db.mu.Lock()
	v := db.vs.Current()
	db.mu.Unlock()
	for level := 1; level < manifest.NumLevels; level++ {
		files := v.Levels[level]
		for i := 1; i < len(files); i++ {
			prevHi := string(files[i-1].Largest)
			curLo := string(files[i].Smallest)
			if prevHi >= curLo {
				// Compare user keys to be precise.
				t.Fatalf("L%d files overlap: %q vs %q", level, prevHi, curLo)
			}
		}
	}
}

func TestFragmentedLowerWriteAmp(t *testing.T) {
	// The defining property of the PebblesDB preset: materially lower
	// compaction write amplification than leveled on the same workload.
	run := func(opts Options) float64 {
		db, err := Open("db", opts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		fill(t, db, 6000, 1)
		fill(t, db, 6000, 2)
		if err := db.CompactAll(); err != nil {
			t.Fatal(err)
		}
		p := db.Perf()
		return float64(p.FlushBytes+p.CompactWrite) / float64(p.UserBytes)
	}
	lev := presets(vfs.NewMem())["leveldb"]
	frag := presets(vfs.NewMem())["pebblesdb"]
	waLeveled := run(lev)
	waFrag := run(frag)
	if waFrag >= waLeveled {
		t.Fatalf("fragmented WA (%.2f) not lower than leveled (%.2f)", waFrag, waLeveled)
	}
}

func TestIteratorFullScan(t *testing.T) {
	for name, opts := range presets(vfs.NewMem()) {
		t.Run(name, func(t *testing.T) {
			db, _ := Open("db-"+name, opts)
			defer db.Close()
			const n = 1500
			fill(t, db, n, 1)
			// Delete every 10th key; overwrite every 7th.
			for i := 0; i < n; i += 10 {
				db.Delete([]byte(fmt.Sprintf("key%06d", i)))
			}
			for i := 0; i < n; i += 7 {
				db.Put([]byte(fmt.Sprintf("key%06d", i)), []byte("upd"))
			}
			db.CompactAll()

			it, err := db.NewIterator()
			if err != nil {
				t.Fatal(err)
			}
			defer it.Close()
			count := 0
			prev := ""
			for it.SeekToFirst(); it.Valid(); it.Next() {
				k := string(it.Key())
				if prev != "" && k <= prev {
					t.Fatalf("iterator out of order: %q after %q", k, prev)
				}
				prev = k
				var i int
				fmt.Sscanf(k, "key%d", &i)
				if i%10 == 0 && i%7 != 0 {
					t.Fatalf("deleted key %q surfaced", k)
				}
				if i%7 == 0 && string(it.Value()) != "upd" {
					t.Fatalf("key %q value %q, want upd", k, it.Value())
				}
				count++
			}
			if it.Error() != nil {
				t.Fatal(it.Error())
			}
			want := 0
			for i := 0; i < n; i++ {
				if i%10 == 0 && i%7 != 0 {
					continue
				}
				want++
			}
			if count != want {
				t.Fatalf("scanned %d keys, want %d", count, want)
			}

			// Seek semantics.
			it2, _ := db.NewIterator()
			defer it2.Close()
			it2.Seek([]byte("key000500"))
			if !it2.Valid() {
				t.Fatal("seek found nothing")
			}
			if string(it2.Key()) < "key000500" {
				t.Fatalf("seek landed before target: %q", it2.Key())
			}
		})
	}
}

func TestMultiGet(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("db", smallOpts(fs))
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	keys := [][]byte{[]byte("k005"), []byte("missing"), []byte("k099")}
	vals, err := db.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[0]) != "v5" || vals[1] != nil || string(vals[2]) != "v99" {
		t.Fatalf("MultiGet = %q", vals)
	}

	// LevelDB preset must report no multiget capability.
	ldb, _ := Open("db2", LevelDBOptions(fs))
	defer ldb.Close()
	if ldb.Caps().MultiGet {
		t.Fatal("LevelDB preset must not report MultiGet")
	}
	if _, err := ldb.MultiGet(keys); err == nil {
		t.Fatal("MultiGet must fail when disabled")
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	fs := vfs.NewMem()
	opts := smallOpts(fs)
	opts.SyncWAL = true
	db, _ := Open("db", opts)
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete([]byte("k0100"))
	// Crash: drop unsynced state. The old instance's goroutines must be
	// stopped too — a real crash kills the process, but here the zombie
	// would keep mutating the shared directory under the recovered DB.
	fs.Crash()
	db.Close()
	fs.Restart()

	db2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%04d", i)
		v, err := db2.Get([]byte(key))
		if i == 100 {
			if err != kv.ErrNotFound {
				t.Fatalf("deleted key recovered: %q %v", v, err)
			}
			continue
		}
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) after recovery = %q, %v", key, v, err)
		}
	}
	// New writes after recovery must work.
	if err := db2.Put([]byte("post"), []byte("crash")); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryAfterFlushAndCompaction(t *testing.T) {
	fs := vfs.NewMem()
	opts := smallOpts(fs)
	opts.SyncWAL = true
	db, _ := Open("db", opts)
	fill(t, db, 2000, 1)
	db.CompactAll()
	fill(t, db, 300, 2) // some post-compaction writes stay in WAL/memtable
	fs.Crash()
	db.Close() // stop the zombie instance (a real crash kills the process)
	fs.Restart()

	db2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 300; i += 11 {
		key := fmt.Sprintf("key%06d", i)
		v, err := db2.Get([]byte(key))
		if err != nil || string(v) != fmt.Sprintf("r2-val%06d", i) {
			t.Fatalf("Get(%s) = %q %v", key, v, err)
		}
	}
	for i := 300; i < 2000; i += 97 {
		key := fmt.Sprintf("key%06d", i)
		v, err := db2.Get([]byte(key))
		if err != nil || string(v) != fmt.Sprintf("r1-val%06d", i) {
			t.Fatalf("Get(%s) = %q %v", key, v, err)
		}
	}
}

func TestRecoveryWithGSNFilter(t *testing.T) {
	fs := vfs.NewMem()
	opts := smallOpts(fs)
	opts.SyncWAL = true
	db, _ := Open("db", opts)
	var b1, b2 kv.Batch
	b1.Put([]byte("committed"), []byte("yes"))
	b2.Put([]byte("uncommitted"), []byte("no"))
	db.WriteGSN(&b1, 10)
	db.WriteGSN(&b2, 11)
	fs.Crash()
	db.Close() // stop the zombie instance
	fs.Restart()

	db2, err := OpenWith("db", opts, OpenOptions{
		RecoverFilter: func(gsn uint64) bool { return gsn == 10 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, err := db2.Get([]byte("committed")); err != nil || string(v) != "yes" {
		t.Fatalf("committed txn lost: %q %v", v, err)
	}
	if _, err := db2.Get([]byte("uncommitted")); err != kv.ErrNotFound {
		t.Fatal("uncommitted txn survived rollback")
	}
}

func TestConcurrentWriters(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("db", smallOpts(fs))
	defer db.Close()
	const (
		goroutines = 8
		perG       = 400
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("g%d-k%04d", g, i)
				if err := db.Put([]byte(key), []byte(key)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i += 37 {
			key := fmt.Sprintf("g%d-k%04d", g, i)
			v, err := db.Get([]byte(key))
			if err != nil || string(v) != key {
				t.Fatalf("Get(%s) = %q %v", key, v, err)
			}
		}
	}
}

func TestWALOnlyAndMemTableOnlyModes(t *testing.T) {
	fs := vfs.NewMem()
	// WAL-only: writes succeed, reads find nothing (no indexing).
	oWAL := smallOpts(fs)
	oWAL.WALOnly = true
	db, _ := Open("walonly", oWAL)
	db.Put([]byte("k"), []byte("v"))
	if _, err := db.Get([]byte("k")); err != kv.ErrNotFound {
		t.Fatal("WALOnly mode must not index")
	}
	p := db.Perf()
	if p.WALTime == 0 && p.Writes > 0 {
		t.Log("warning: WAL time not recorded (fast clock)")
	}
	db.Close()

	// MemTable-only with WAL disabled: writes indexed, flush drops data.
	oMem := smallOpts(fs)
	oMem.DisableWAL = true
	oMem.MemTableOnly = true
	db2, _ := Open("memonly", oMem)
	defer db2.Close()
	db2.Put([]byte("k"), []byte("v"))
	if v, err := db2.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("MemTableOnly Get = %q %v", v, err)
	}
	if err := db2.Flush(); err != nil {
		t.Fatal(err)
	}
	m := db2.Metrics()
	for _, n := range m.LevelFiles {
		if n != 0 {
			t.Fatal("MemTableOnly mode must not create SSTables")
		}
	}
}

func TestPerfBreakdownAccumulates(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("db", smallOpts(fs))
	defer db.Close()
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), make([]byte, 100))
	}
	p := db.Perf()
	if p.Writes != 200 {
		t.Fatalf("writes = %d", p.Writes)
	}
	if p.TotalTime <= 0 {
		t.Fatal("total time not accumulated")
	}
	if p.UserBytes <= 0 {
		t.Fatal("user bytes not accumulated")
	}
	if p.OtherTime() < 0 {
		t.Fatal("negative residual")
	}
}

func TestCloseIdempotentAndRejectsOps(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("db", smallOpts(fs))
	db.Put([]byte("k"), []byte("v"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal("second close must be nil")
	}
	if err := db.Put([]byte("x"), []byte("y")); err != kv.ErrClosed {
		t.Fatalf("Put after close = %v", err)
	}
	if _, err := db.Get([]byte("k")); err != kv.ErrClosed {
		t.Fatalf("Get after close = %v", err)
	}
	// Reopen sees the data (clean close keeps the WAL).
	db2, err := Open("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, err := db2.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("reopen Get = %q %v", v, err)
	}
}
