package lsm

import (
	"fmt"

	"p2kvs/internal/kv"
	"p2kvs/internal/manifest"
	"p2kvs/internal/vfs"
	"p2kvs/internal/wal"
)

// This file implements the engine half of the store-wide online checkpoint
// (kv.Checkpointer). The capture is two-phase:
//
//   - PrepareCheckpoint runs while the accessing layer holds the worker at
//     a GSN barrier. It takes a pin and captures, under d.mu, a mutually
//     consistent (manifest snapshot, live-WAL prefix sizes) pair. No bulk
//     IO happens here — barrier time is writer-stall time.
//   - WriteTo runs with writes resumed. It hard-links the captured SSTs
//     (immutable once written, and the pin keeps compactions from deleting
//     them — see removeObsolete), copies the [0, size) prefix of each
//     captured WAL (WALs are append-only, so a prefix at a record boundary
//     is a stable crash-consistent image), and writes the captured
//     manifest snapshot as the image's trimmed MANIFEST.
//
// The pair is consistent because the pin is taken before either half is
// read: any flush/compaction edit that lands between the two reads only
// adds coverage (an SST whose WAL is also captured replays to identical
// entries at identical sequence numbers), and any file deletion those
// edits imply is parked until Release.

// walCapture records one live WAL's identity and the byte watermark of its
// completed records at capture time.
type walCapture struct {
	num  uint64
	size int64
}

var _ kv.Checkpointer = (*DB)(nil)
var _ kv.CheckpointStatsReporter = (*DB)(nil)

// removeObsolete deletes an obsolete engine file, or defers the deletion
// while checkpoint pins hold the captured view's files on disk.
func (d *DB) removeObsolete(path string) {
	d.mu.Lock()
	if d.ckptPins > 0 {
		d.ckptDeferred = append(d.ckptDeferred, path)
		d.mu.Unlock()
		return
	}
	d.mu.Unlock()
	d.opts.FS.Remove(path)
}

// PrepareCheckpoint implements kv.Checkpointer.
func (d *DB) PrepareCheckpoint() (kv.CheckpointWriter, error) {
	if d.closed.Load() {
		return nil, kv.ErrClosed
	}
	d.mu.Lock()
	d.ckptPins++
	// Nested manifest lock inside d.mu: same order as acquireReadState.
	snap := d.vs.SnapshotEdit()
	var wals []walCapture
	for _, h := range d.imm {
		if h.walw != nil {
			wals = append(wals, walCapture{num: h.logNum, size: h.walw.Size()})
		}
	}
	if d.memH != nil && d.memH.walw != nil {
		wals = append(wals, walCapture{num: d.memH.logNum, size: d.memH.walw.Size()})
	}
	d.mu.Unlock()
	return &ckptWriter{d: d, snap: snap, wals: wals}, nil
}

// CheckpointStats implements kv.CheckpointStatsReporter.
func (d *DB) CheckpointStats() kv.CheckpointStats {
	return kv.CheckpointStats{
		Checkpoints: d.perf.ckptCount.Load(),
		FilesLinked: d.perf.ckptFilesLinked.Load(),
		FilesCopied: d.perf.ckptFilesCopied.Load(),
		FilesReused: d.perf.ckptFilesReused.Load(),
		BytesCopied: d.perf.ckptBytesCopied.Load(),
	}
}

type ckptWriter struct {
	d        *DB
	snap     *manifest.VersionEdit
	wals     []walCapture
	released bool
}

// WriteTo implements kv.CheckpointWriter.
func (w *ckptWriter) WriteTo(fs vfs.FS, dir string, seq uint64) ([]kv.CheckpointFile, error) {
	d := w.d
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	var files []kv.CheckpointFile

	// SSTs: immutable and uniquely numbered (file numbers are never
	// reused — MarkFileNumUsed), so a same-named file already present in
	// the backup set from an earlier checkpoint is byte-identical and can
	// be reused outright. This is what makes the second checkpoint
	// incremental: zero unchanged SST bytes move.
	for _, a := range w.snap.Added {
		name := fmt.Sprintf("%06d.sst", a.Meta.Num)
		files = append(files, kv.CheckpointFile{Name: name, Restore: name})
		dst := dir + "/" + name
		if fs.Exists(dst) {
			d.perf.ckptFilesReused.Add(1)
			continue
		}
		if err := fs.Link(sstName(d.dir, a.Meta.Num), dst); err == nil {
			d.perf.ckptFilesLinked.Add(1)
			continue
		}
		// Cross-FS destination or linkless filesystem: full copy.
		if err := vfs.CopyFile(d.opts.FS, sstName(d.dir, a.Meta.Num), fs, dst); err != nil {
			return nil, err
		}
		d.perf.ckptFilesCopied.Add(1)
		d.perf.ckptBytesCopied.Add(a.Meta.Size)
	}

	// WAL prefixes. These change between checkpoints, so their backup
	// names embed the checkpoint sequence: a crashed later checkpoint can
	// never clobber a file an earlier CHECKPOINT manifest references.
	for _, wc := range w.wals {
		name := fmt.Sprintf("%06d-ckpt%06d.log", wc.num, seq)
		if err := vfs.CopyPrefix(d.opts.FS, walName(d.dir, wc.num), fs, dir+"/"+name, wc.size); err != nil {
			return nil, err
		}
		d.perf.ckptFilesCopied.Add(1)
		d.perf.ckptBytesCopied.Add(wc.size)
		files = append(files, kv.CheckpointFile{Name: name, Restore: fmt.Sprintf("%06d.log", wc.num)})
	}

	// Trimmed MANIFEST: one snapshot record of the captured version.
	mname := fmt.Sprintf("MANIFEST-ckpt%06d", seq)
	mf, err := fs.Create(dir + "/" + mname)
	if err != nil {
		return nil, err
	}
	mlog := wal.NewWriter(mf, wal.Options{SyncOnCommit: true})
	if err := mlog.Append(0, w.snap.Encode()); err != nil {
		mlog.Close()
		return nil, err
	}
	if err := mlog.Close(); err != nil {
		return nil, err
	}
	files = append(files, kv.CheckpointFile{Name: mname, Restore: "MANIFEST"})
	d.perf.ckptCount.Add(1)
	return files, nil
}

// Release implements kv.CheckpointWriter: it drops the pin and executes
// any file deletions parked while it was held.
func (w *ckptWriter) Release() {
	if w.released {
		return
	}
	w.released = true
	d := w.d
	d.mu.Lock()
	d.ckptPins--
	var drain []string
	if d.ckptPins == 0 {
		drain = d.ckptDeferred
		d.ckptDeferred = nil
	}
	d.mu.Unlock()
	for _, p := range drain {
		d.opts.FS.Remove(p)
	}
}
