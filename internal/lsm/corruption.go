package lsm

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"p2kvs/internal/kv"
	"p2kvs/internal/manifest"
	"p2kvs/internal/sstable"
)

// Corruption containment, repair and scrubbing (DESIGN.md §12).
//
// A checksum mismatch in an SST quarantines that one file: its number goes
// into d.quar, reads whose key lies in its range fail with kv.ErrCorruption
// (never a wrong or silently-missing value), and compaction jobs that would
// read it are skipped. Every other key range keeps serving — the blast
// radius is one file, not the engine.
//
// Repair runs asynchronously (or synchronously from Scrub): when the DB was
// opened with a RepairSource — the accessing layer builds one from the
// newest checkpoint generation, whose manifest carries per-file CRCs — the
// backup bytes are fetched, written to a temp file, re-verified end to end,
// and renamed over the bad file; the quarantine lifts. With no usable
// backup the bad file is parked in <dir>/quarantine/ for forensics; reads
// of its range keep failing until an operator (or a later checkpoint
// restore) intervenes.
//
// Quarantine state is in-memory, but parking survives restart: Open re-lists
// <dir>/quarantine/ and re-registers any parked file still referenced by the
// version, so a reopened engine fails those ranges with ErrCorruption
// instead of ErrNotExist.

// quarantineSubdir is where unrepairable files are parked, under the
// instance directory.
const quarantineSubdir = "quarantine"

func quarantinePath(dir string, num uint64) string {
	return fmt.Sprintf("%s/%s/%06d.sst", dir, quarantineSubdir, num)
}

// corruptFileNum extracts the SST file number a corruption error names, so
// detection anywhere (point read, compaction input, scrub) maps back to the
// file to quarantine.
func corruptFileNum(err error) (uint64, bool) {
	var ce *kv.CorruptionError
	if !errors.As(err, &ce) || ce.File == "" {
		return 0, false
	}
	base := ce.File
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if !strings.HasSuffix(base, ".sst") {
		return 0, false
	}
	var num uint64
	if _, serr := fmt.Sscanf(base, "%d.sst", &num); serr != nil {
		return 0, false
	}
	return num, true
}

// quarErr returns the corruption error recorded against file num, nil when
// the file is healthy. The healthy fast path is one atomic load.
func (d *DB) quarErr(num uint64) error {
	if d.perf.quarCount.Load() == 0 {
		return nil
	}
	d.mu.Lock()
	err := d.quar[num]
	d.mu.Unlock()
	return err
}

// recordCorruption registers err against file num, reporting whether the
// file was newly quarantined (false when already quarantined).
func (d *DB) recordCorruption(num uint64, err error) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lastCorruption = err
	if _, already := d.quar[num]; already {
		return false
	}
	d.quar[num] = err
	d.perf.quarCount.Store(int64(len(d.quar)))
	return true
}

// noteCorruption classifies err: when it is a corruption error the
// offending file (if identifiable) is quarantined and an asynchronous
// repair attempt kicked off. It reports whether err was corruption —
// callers use that to stop retrying, since re-reading flipped bits cannot
// succeed.
func (d *DB) noteCorruption(err error) bool {
	if err == nil || !errors.Is(err, kv.ErrCorruption) {
		return false
	}
	d.perf.corruptionEvents.Add(1)
	num, ok := corruptFileNum(err)
	if !ok {
		d.mu.Lock()
		d.lastCorruption = err
		d.mu.Unlock()
		return true
	}
	if d.recordCorruption(num, err) && !d.closed.Load() {
		d.repairWG.Add(1)
		go func() {
			defer d.repairWG.Done()
			d.tryRepair(num)
		}()
	}
	return true
}

// tryRepair attempts to restore quarantined file num from the configured
// RepairSource, reporting whether the quarantine was lifted. On failure
// (no source, no backup of this file, or the backup itself fails
// verification) the bad file is parked in <dir>/quarantine/.
func (d *DB) tryRepair(num uint64) bool {
	d.mu.Lock()
	if d.closed.Load() || d.repairing[num] {
		d.mu.Unlock()
		return false
	}
	if _, quarantined := d.quar[num]; !quarantined {
		d.mu.Unlock()
		return false
	}
	d.repairing[num] = true
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		delete(d.repairing, num)
		d.mu.Unlock()
	}()

	name := fmt.Sprintf("%06d.sst", num)
	if src := d.opts.RepairSource; src != nil {
		if data, ok := src.Fetch(name); ok && d.installRepair(num, data) == nil {
			d.mu.Lock()
			delete(d.quar, num)
			d.perf.quarCount.Store(int64(len(d.quar)))
			d.mu.Unlock()
			// Drop the reader holding the corrupt image so the next probe
			// opens the repaired file; remove any parked copy from an
			// earlier failed attempt.
			d.tcache.evict(num)
			if p := quarantinePath(d.dir, num); d.opts.FS.Exists(p) {
				d.opts.FS.Remove(p)
			}
			d.perf.repairedFiles.Add(1)
			return true
		}
	}
	d.parkQuarantined(num)
	return false
}

// installRepair writes candidate bytes for file num to a temp file,
// re-verifies every block end to end (trusting a backup blindly would just
// relocate the corruption), and renames it into place.
func (d *DB) installRepair(num uint64, data []byte) error {
	fs := d.opts.FS
	tmp := sstName(d.dir, num) + ".repair"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	serr := f.Sync()
	cerr := f.Close()
	if werr == nil {
		werr = serr
	}
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		fs.Remove(tmp)
		return werr
	}
	rf, err := fs.Open(tmp)
	if err != nil {
		fs.Remove(tmp)
		return err
	}
	r, err := sstable.OpenNamed(rf, nil, 0, fmt.Sprintf("%06d.sst", num))
	if err != nil {
		rf.Close()
		fs.Remove(tmp)
		return err
	}
	_, verr := r.Verify()
	r.Close()
	if verr != nil {
		fs.Remove(tmp)
		return verr
	}
	return fs.Rename(tmp, sstName(d.dir, num))
}

// parkQuarantined moves an unrepairable file into <dir>/quarantine/ so
// space reclamation and operators can see it. The quarantine entry stays:
// reads covering the file's range keep failing with ErrCorruption.
func (d *DB) parkQuarantined(num uint64) {
	fs := d.opts.FS
	src := sstName(d.dir, num)
	if !fs.Exists(src) {
		return
	}
	if err := fs.MkdirAll(d.dir + "/" + quarantineSubdir); err != nil {
		return
	}
	d.tcache.evict(num)
	fs.Rename(src, quarantinePath(d.dir, num))
}

// loadQuarantine re-registers files parked by a previous run, so a
// reopened engine fails their ranges with ErrCorruption (the containment
// contract) rather than ErrNotExist. Called once from OpenWith.
func (d *DB) loadQuarantine() {
	names, err := d.opts.FS.List(d.dir + "/" + quarantineSubdir)
	if err != nil || len(names) == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, n := range names {
		if !strings.HasSuffix(n, ".sst") {
			continue
		}
		var num uint64
		if _, serr := fmt.Sscanf(n, "%d.sst", &num); serr != nil {
			continue
		}
		d.quar[num] = &kv.CorruptionError{
			File: n, Offset: -1,
			Detail: "lsm: parked in quarantine by a previous run",
		}
	}
	d.perf.quarCount.Store(int64(len(d.quar)))
}

// jobQuarantinedLocked reports whether any file a compaction job would
// read is quarantined. Such jobs are skipped rather than built: merging a
// corrupt input would either fail or — worse — compact around it and let
// level ordering invert version order if the file is later repaired.
// Caller holds d.mu.
func (d *DB) jobQuarantinedLocked(job *compactionJob) bool {
	if len(d.quar) == 0 {
		return false
	}
	for _, f := range job.inputs {
		if _, ok := d.quar[f.Num]; ok {
			return true
		}
	}
	for _, f := range job.lower {
		if _, ok := d.quar[f.Num]; ok {
			return true
		}
	}
	return false
}

var _ kv.Scrubber = (*DB)(nil)

// Scrub implements kv.Scrubber: it re-reads and checksum-verifies every
// SST referenced by the current version, pacing itself through lim. Found
// corruption is quarantined and repaired inline (synchronously — the
// ScrubResult a caller gets back already reflects the repair outcome);
// files already quarantined get a repair retry instead of a futile
// re-read. Live WALs are not scanned: their tail is being appended
// concurrently, and every record is CRC-checked at replay, which is the
// only time WAL bytes are trusted.
func (d *DB) Scrub(ctx context.Context, lim kv.RateLimiter) (kv.ScrubResult, error) {
	var res kv.ScrubResult
	if d.closed.Load() {
		return res, kv.ErrClosed
	}
	d.mu.Lock()
	v := d.vs.Current()
	var files []*manifest.FileMeta
	for _, level := range v.Levels {
		files = append(files, level...)
	}
	d.mu.Unlock()
	for _, fm := range files {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if d.quarErr(fm.Num) != nil {
			if d.tryRepair(fm.Num) {
				res.FilesRepaired++
			}
			continue
		}
		if lim != nil {
			if err := lim.WaitN(ctx, int(fm.Size)); err != nil {
				return res, err
			}
		}
		r, err := d.tcache.get(fm.Num)
		if err == nil {
			var n int64
			n, err = r.Verify()
			res.FilesScanned++
			res.BytesScanned += n
		}
		if err == nil {
			continue
		}
		if isStaleFileErr(err) {
			continue // compacted away mid-scrub
		}
		if errors.Is(err, kv.ErrCorruption) {
			d.perf.corruptionEvents.Add(1)
			res.CorruptionsFound++
			num, ok := corruptFileNum(err)
			if !ok {
				num = fm.Num
			}
			d.recordCorruption(num, err)
			if d.tryRepair(num) {
				res.FilesRepaired++
			}
			continue
		}
		return res, err
	}
	return res, nil
}
