package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p2kvs/internal/cache"
	"p2kvs/internal/ikey"
	"p2kvs/internal/kv"
	"p2kvs/internal/manifest"
	"p2kvs/internal/memtable"
	"p2kvs/internal/spacewatch"
	"p2kvs/internal/vfs"
	"p2kvs/internal/wal"
)

// memHandle pairs a memtable with its WAL so late concurrent writers are
// drained before the memtable is flushed (writers holds one count per
// in-flight Write that may still insert into this memtable).
type memHandle struct {
	mem     *memtable.MemTable
	logNum  uint64
	writers sync.WaitGroup
	walw    *wal.Writer
}

// DB is one LSM-tree instance: the unit p2KVS shards over.
type DB struct {
	opts Options
	dir  string

	seq    atomic.Uint64
	closed atomic.Bool

	mu   sync.Mutex
	cond *sync.Cond // stall/flush-progress signaling
	memH *memHandle
	imm  []*memHandle // flush queue, oldest first
	wal  *wal.Writer  // == memH.walw; nil when DisableWAL
	vs   *manifest.Set

	// Running compactions (scheduler.go). compWG tracks their goroutines
	// so Close can wait them out before tearing down the manifest.
	compRunning []*compactionJob
	compWG      sync.WaitGroup

	// Background-error state (see bgerror.go). bgErr is the write-blocking
	// degraded error; bgCause the most recent background failure; the
	// *Failing flags track jobs currently in their retry loop. stateA
	// mirrors the derived kv.HealthState for lock-free health checks.
	// diskFull marks a degraded state caused by ENOSPC; spaceWatch polls
	// for freed space and auto-resumes the engine.
	bgErr          error
	bgCause        error
	flushFailing   bool
	compactFailing bool
	diskFull       bool
	stateA         atomic.Int32
	spaceWatch     *spacewatch.Watchdog

	// Checkpoint pinning (checkpoint.go): while ckptPins > 0 an
	// in-progress checkpoint still references the captured version's SSTs
	// and WAL prefixes, so file deletions are parked in ckptDeferred and
	// executed when the last pin releases.
	ckptPins     int
	ckptDeferred []string

	// Corruption quarantine (corruption.go): file number -> the corruption
	// error that condemned it. Reads covering a quarantined file's range
	// fail with kv.ErrCorruption; compactions skip it; repair lifts the
	// entry. repairing guards against concurrent repair attempts on one
	// file; repairWG tracks async repair goroutines for Close.
	quar           map[uint64]error
	repairing      map[uint64]bool
	lastCorruption error
	repairWG       sync.WaitGroup

	writerMu sync.Mutex // serializes writes when !PipelinedWrite

	tcache *tableCache
	blocks *cache.Cache
	perf   perfCounters

	flushC   chan struct{}
	compactC chan struct{}
	stopC    chan struct{}
	bgWG     sync.WaitGroup
}

var _ kv.Engine = (*DB)(nil)
var _ kv.BatchWriter = (*DB)(nil)
var _ kv.MultiGetter = (*DB)(nil)
var _ kv.Syncer = (*DB)(nil)
var _ kv.HealthReporter = (*DB)(nil)
var _ kv.Resumer = (*DB)(nil)

// OpenOptions carries per-open recovery hooks beyond the engine Options.
type OpenOptions struct {
	// RecoverFilter, when non-nil, is consulted for every WAL record with
	// a non-zero GSN during replay; records whose GSN it rejects are
	// dropped. p2KVS uses it to roll back uncommitted cross-instance
	// transactions (§4.5).
	RecoverFilter func(gsn uint64) bool
}

// Open opens (creating if necessary) the instance rooted at dir.
func Open(dir string, opts Options) (*DB, error) {
	return OpenWith(dir, opts, OpenOptions{})
}

// OpenWith opens with recovery hooks.
func OpenWith(dir string, opts Options, oo OpenOptions) (*DB, error) {
	opts = opts.withDefaults()
	if opts.FS == nil {
		return nil, errors.New("lsm: Options.FS is required")
	}
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, err
	}
	vs, err := manifest.Open(opts.FS, dir)
	if err != nil {
		return nil, err
	}
	var blocks *cache.Cache
	if opts.BlockCacheSize > 0 {
		blocks = cache.New(opts.BlockCacheSize)
	}
	d := &DB{
		opts:      opts,
		dir:       dir,
		vs:        vs,
		blocks:    blocks,
		tcache:    newTableCache(opts.FS, dir, blocks),
		quar:      make(map[uint64]error),
		repairing: make(map[uint64]bool),
		flushC:    make(chan struct{}, 1),
		compactC:  make(chan struct{}, 1),
		stopC:     make(chan struct{}),
	}
	d.cond = sync.NewCond(&d.mu)
	d.seq.Store(vs.LastSeq)
	d.loadQuarantine()

	if err := d.replayWALs(oo); err != nil {
		vs.Close()
		return nil, err
	}
	if d.memH == nil {
		if err := d.installMemtable(); err != nil {
			vs.Close()
			return nil, err
		}
	}
	if opts.BackgroundCompaction {
		d.bgWG.Add(2)
		go d.flushLoop()
		go d.compactLoop()
	}
	d.spaceWatch = spacewatch.New(d.diskFullDegraded, d.spaceProbe, d.autoResume,
		opts.BgBaseBackoff, opts.BgMaxBackoff)
	return d, nil
}

func walName(dir string, num uint64) string { return fmt.Sprintf("%s/%06d.log", dir, num) }
func sstName(dir string, num uint64) string { return fmt.Sprintf("%s/%06d.sst", dir, num) }

// replayWALs rebuilds the memtable from any logs newer than the
// manifest's LogNum (standard crash recovery, Figure 2's log replay).
func (d *DB) replayWALs(oo OpenOptions) error {
	names, err := d.opts.FS.List(d.dir)
	if err != nil {
		return err
	}
	var logNums []uint64
	for _, n := range names {
		var num uint64
		// Mark every on-disk file number as used before allocating any
		// new one: the crashed process may have allocated numbers (for
		// the live WAL, or orphaned SSTs) that no persisted edit
		// records, and reusing such a number would truncate the file.
		if _, err := fmt.Sscanf(n, "%d.sst", &num); err == nil && strings.HasSuffix(n, ".sst") {
			d.vs.MarkFileNumUsed(num)
			continue
		}
		if _, err := fmt.Sscanf(n, "%d.log", &num); err == nil && strings.HasSuffix(n, ".log") {
			d.vs.MarkFileNumUsed(num)
			if num >= d.vs.LogNum {
				logNums = append(logNums, num)
			} else {
				// Stale log already covered by flushed SSTs.
				d.opts.FS.Remove(walName(d.dir, num))
			}
		}
	}
	sort.Slice(logNums, func(i, j int) bool { return logNums[i] < logNums[j] })

	for _, num := range logNums {
		f, err := d.opts.FS.Open(walName(d.dir, num))
		if err != nil {
			return err
		}
		recs, err := wal.ReadAll(f)
		f.Close()
		if err != nil {
			return err
		}
		if d.memH == nil {
			if err := d.installMemtable(); err != nil {
				return err
			}
		}
		for _, rec := range recs {
			if rec.GSN != 0 && oo.RecoverFilter != nil && !oo.RecoverFilter(rec.GSN) {
				continue
			}
			base, ops, err := decodeBatchPayload(rec.Payload)
			if err != nil {
				return err
			}
			for i, op := range ops {
				seq := base + uint64(i)
				kind := ikey.KindSet
				if op.Kind == kv.OpDelete {
					kind = ikey.KindDelete
				}
				d.memH.mem.Add(seq, kind, op.Key, op.Value)
				if seq > d.seq.Load() {
					d.seq.Store(seq)
				}
			}
		}
	}

	if d.memH != nil && !d.memH.mem.Empty() && d.wal != nil {
		// Re-log the recovered entries so the new WAL covers them. Each
		// entry keeps its ORIGINAL sequence number (one single-op record
		// per entry): the memtable iterates newest-version-first within a
		// key, so renumbering in iteration order would invert version
		// order and surface stale values after a second crash.
		it := d.memH.mem.NewIterator()
		wrote := false
		for it.SeekToFirst(); it.Valid(); it.Next() {
			uk, seq, kind, err := ikey.Decode(it.Key())
			if err != nil {
				return err
			}
			var batch kv.Batch
			if kind == ikey.KindDelete {
				batch.Delete(uk)
			} else {
				batch.Put(uk, it.Value())
			}
			if err := d.wal.Append(0, encodeBatchPayload(seq, &batch)); err != nil {
				return err
			}
			wrote = true
		}
		if wrote {
			if err := d.wal.Sync(); err != nil {
				return err
			}
		}
	}
	// Only now that the surviving entries are durable in the fresh log is
	// it safe to delete the old ones.
	for _, num := range logNums {
		d.opts.FS.Remove(walName(d.dir, num))
	}
	return nil
}

// installMemtable creates a fresh memtable + WAL and makes them current.
// Caller must not hold d.mu.
func (d *DB) installMemtable() error {
	h := &memHandle{mem: memtable.New(d.opts.ConcurrentMemTable)}
	if !d.opts.DisableWAL {
		h.logNum = d.vs.NewFileNum()
		f, err := d.opts.FS.Create(walName(d.dir, h.logNum))
		if err != nil {
			return err
		}
		h.walw = wal.NewWriter(f, wal.Options{
			Policy:        d.opts.WALSync,
			SyncEvery:     d.opts.WALSyncInterval,
			GroupCommit:   d.opts.GroupCommit,
			PerRecordCost: d.opts.WALPerRecordCost,
			PerByteCost:   d.opts.WALPerByteCost,
		})
	}
	d.mu.Lock()
	d.memH = h
	d.wal = h.walw
	d.mu.Unlock()
	return nil
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

// encodeBatchPayload serializes a batch for the WAL:
// baseSeq u64 | count u32 | (kind u8 | klen uvarint | key | [vlen | value])*
func encodeBatchPayload(baseSeq uint64, b *kv.Batch) []byte {
	size := 12
	for _, op := range b.Ops() {
		size += 1 + 2*binary.MaxVarintLen32 + len(op.Key) + len(op.Value)
	}
	buf := make([]byte, 12, size)
	binary.LittleEndian.PutUint64(buf[0:], baseSeq)
	binary.LittleEndian.PutUint32(buf[8:], uint32(b.Len()))
	var tmp [binary.MaxVarintLen32]byte
	for _, op := range b.Ops() {
		buf = append(buf, byte(op.Kind))
		n := binary.PutUvarint(tmp[:], uint64(len(op.Key)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, op.Key...)
		if op.Kind == kv.OpPut {
			n = binary.PutUvarint(tmp[:], uint64(len(op.Value)))
			buf = append(buf, tmp[:n]...)
			buf = append(buf, op.Value...)
		}
	}
	return buf
}

func decodeBatchPayload(p []byte) (baseSeq uint64, ops []kv.BatchOp, err error) {
	if len(p) < 12 {
		return 0, nil, errors.New("lsm: short batch payload")
	}
	baseSeq = binary.LittleEndian.Uint64(p)
	count := int(binary.LittleEndian.Uint32(p[8:]))
	p = p[12:]
	for i := 0; i < count; i++ {
		if len(p) < 1 {
			return 0, nil, errors.New("lsm: truncated batch op")
		}
		kind := kv.OpKind(p[0])
		p = p[1:]
		klen, n := binary.Uvarint(p)
		if n <= 0 || int(klen) > len(p[n:]) {
			return 0, nil, errors.New("lsm: truncated batch key")
		}
		key := append([]byte(nil), p[n:n+int(klen)]...)
		p = p[n+int(klen):]
		var value []byte
		if kind == kv.OpPut {
			vlen, m := binary.Uvarint(p)
			if m <= 0 || int(vlen) > len(p[m:]) {
				return 0, nil, errors.New("lsm: truncated batch value")
			}
			value = append([]byte(nil), p[m:m+int(vlen)]...)
			p = p[m+int(vlen):]
		}
		ops = append(ops, kv.BatchOp{Kind: kind, Key: key, Value: value})
	}
	return baseSeq, ops, nil
}

// Put implements kv.Engine.
func (d *DB) Put(key, value []byte) error {
	var b kv.Batch
	b.Put(key, value)
	return d.Write(&b)
}

// Delete implements kv.Engine.
func (d *DB) Delete(key []byte) error {
	var b kv.Batch
	b.Delete(key)
	return d.Write(&b)
}

// Write implements kv.BatchWriter: it applies the batch atomically
// through one WAL record.
func (d *DB) Write(b *kv.Batch) error { return d.WriteGSN(b, 0) }

// WriteGSN is Write with a p2KVS Global Sequence Number recorded in the
// log for cross-instance transaction recovery.
func (d *DB) WriteGSN(b *kv.Batch, gsn uint64) error {
	if d.closed.Load() {
		return kv.ErrClosed
	}
	if b.Len() == 0 {
		return nil
	}
	start := time.Now()
	if err := d.maybeStall(); err != nil {
		return err
	}

	if !d.opts.PipelinedWrite {
		// LevelDB-style single-writer path: log + index serialized.
		lockStart := time.Now()
		d.writerMu.Lock()
		d.perf.memLockNs.Add(int64(time.Since(lockStart)))
		defer d.writerMu.Unlock()
	}

	// Pin the current memtable+WAL pair so rotation can't separate them.
	d.mu.Lock()
	if d.bgErr != nil {
		err := d.bgErr
		d.mu.Unlock()
		return err
	}
	h := d.memH
	h.writers.Add(1)
	d.mu.Unlock()
	// The pin must drop before maybeRotate: with synchronous flush
	// (BackgroundCompaction off) rotation flushes inline, and flushOne
	// waits out h.writers — still holding our own pin there deadlocks.
	released := false
	release := func() {
		if !released {
			released = true
			h.writers.Done()
		}
	}
	defer release()

	n := uint64(b.Len())
	baseSeq := d.seq.Add(n) - n + 1

	if !d.opts.DisableWAL {
		payload := encodeBatchPayload(baseSeq, b)
		if err := h.walw.Append(gsn, payload); err != nil {
			d.noteWriteFailure(h, err)
			return err
		}
	}

	if !d.opts.WALOnly {
		memStart := time.Now()
		for i, op := range b.Ops() {
			kind := ikey.KindSet
			if op.Kind == kv.OpDelete {
				kind = ikey.KindDelete
			}
			h.mem.Add(baseSeq+uint64(i), kind, op.Key, op.Value)
		}
		d.perf.memNs.Add(int64(time.Since(memStart)))
	}

	d.perf.writes.Add(int64(n))
	d.perf.userBytes.Add(int64(b.Size()))
	d.perf.totalNs.Add(int64(time.Since(start)))

	release()
	d.maybeRotate(h)
	return nil
}

// maybeStall applies write backpressure. Two tiers (§2.1): past
// L0StallTrigger (or a full flush queue) writers block until compaction
// catches up — the paper's "write stall". Between L0SlowdownTrigger and
// L0StallTrigger writers are merely delayed with a sleep that scales with
// L0 pressure, so throughput degrades smoothly instead of falling off the
// stall cliff (RocksDB's delayed-write path).
func (d *DB) maybeStall() error {
	if !d.opts.BackgroundCompaction {
		return nil
	}
	d.mu.Lock()
	waited := time.Time{}
	for d.bgErr == nil && !d.closed.Load() &&
		(len(d.imm) >= d.opts.MaxImmutables ||
			len(d.vs.Current().Levels[0]) >= d.opts.L0StallTrigger) {
		if waited.IsZero() {
			waited = time.Now()
		}
		d.kick()
		d.cond.Wait()
	}
	if !waited.IsZero() {
		d.perf.stallNs.Add(int64(time.Since(waited)))
	}
	err := d.bgErr
	l0 := len(d.vs.Current().Levels[0])
	slowdown := err == nil && !d.closed.Load() &&
		l0 >= d.opts.L0SlowdownTrigger && l0 < d.opts.L0StallTrigger
	if slowdown {
		d.kick()
	}
	d.mu.Unlock()
	if slowdown {
		span := d.opts.L0StallTrigger - d.opts.L0SlowdownTrigger
		if span < 1 {
			span = 1
		}
		delay := d.opts.SlowdownDelay * time.Duration(l0-d.opts.L0SlowdownTrigger+1) / time.Duration(span)
		if delay > 0 {
			time.Sleep(delay)
			d.perf.slowdownNs.Add(int64(delay))
			d.perf.slowdowns.Add(1)
		}
	}
	return err
}

// maybeRotate makes the memtable immutable once it exceeds its budget.
func (d *DB) maybeRotate(h *memHandle) {
	if d.opts.WALOnly {
		return
	}
	if h.mem.ApproximateSize() < d.opts.MemTableSize {
		return
	}
	d.mu.Lock()
	if d.memH != h { // someone else already rotated
		d.mu.Unlock()
		return
	}
	d.rotateLocked()
	d.mu.Unlock()
	if !d.opts.BackgroundCompaction {
		d.flushOne()
	}
}

// rotateLocked retires the current memtable into the flush queue and
// installs a fresh one. Caller holds d.mu.
func (d *DB) rotateLocked() {
	old := d.memH
	h := &memHandle{mem: memtable.New(d.opts.ConcurrentMemTable)}
	if !d.opts.DisableWAL {
		h.logNum = d.vs.NewFileNum()
		f, err := d.opts.FS.Create(walName(d.dir, h.logNum))
		if err != nil {
			// Without a fresh log no new write can be made durable; block
			// writes until Resume retries the rotation.
			d.degradeLocked("wal rotation", err)
			return
		}
		h.walw = wal.NewWriter(f, wal.Options{
			Policy:        d.opts.WALSync,
			SyncEvery:     d.opts.WALSyncInterval,
			GroupCommit:   d.opts.GroupCommit,
			PerRecordCost: d.opts.WALPerRecordCost,
			PerByteCost:   d.opts.WALPerByteCost,
		})
	}
	// Fold the retiring WAL's timing stats into the base counters so
	// Perf() stays cumulative across rotations.
	if old.walw != nil {
		st := old.walw.Stats()
		d.perf.walIONsBase.Add(int64(st.IOTime))
		d.perf.walLockNsBase.Add(int64(st.LockTime))
		d.perf.walGroupBase.Add(st.GroupIOs)
	}
	d.imm = append(d.imm, old)
	d.memH = h
	d.wal = h.walw
	d.kick()
}

// kick nudges the background workers. Caller holds d.mu.
func (d *DB) kick() {
	select {
	case d.flushC <- struct{}{}:
	default:
	}
	select {
	case d.compactC <- struct{}{}:
	default:
	}
}

// Sync implements kv.Syncer.
func (d *DB) Sync() error {
	d.mu.Lock()
	w := d.wal
	d.mu.Unlock()
	if w == nil {
		return nil
	}
	return w.Sync()
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

// readState captures a consistent snapshot of the structures Get/iterate
// consult.
type readState struct {
	seq  uint64
	mem  *memtable.MemTable
	imms []*memtable.MemTable // newest first
	ver  *manifest.Version
}

func (d *DB) acquireReadState() readState {
	seq := d.seq.Load()
	d.mu.Lock()
	rs := readState{seq: seq, mem: d.memH.mem, ver: d.vs.Current()}
	for i := len(d.imm) - 1; i >= 0; i-- {
		rs.imms = append(rs.imms, d.imm[i].mem)
	}
	d.mu.Unlock()
	return rs
}

// Get implements kv.Engine.
func (d *DB) Get(key []byte) ([]byte, error) {
	if d.closed.Load() {
		return nil, kv.ErrClosed
	}
	d.perf.gets.Add(1)
	if d.opts.ReadPerOpCost > 0 {
		time.Sleep(d.opts.ReadPerOpCost)
	}
	// A concurrent compaction may delete a file referenced by the read
	// state captured here (this engine does not refcount versions, per
	// its no-snapshots-across-compaction contract); the data has then
	// moved to the compaction output, so retrying with a fresh state is
	// both safe and sufficient.
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		rs := d.acquireReadState()
		v, err := d.getAt(rs, key)
		if !isStaleFileErr(err) {
			return v, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// isStaleFileErr reports whether err means a version-referenced file was
// deleted underneath the reader by a concurrent compaction.
func isStaleFileErr(err error) bool {
	return err != nil && errors.Is(err, os.ErrNotExist)
}

func (d *DB) getAt(rs readState, key []byte) ([]byte, error) {
	if v, found, deleted := rs.mem.Get(key, rs.seq); found {
		if deleted {
			return nil, kv.ErrNotFound
		}
		return append([]byte(nil), v...), nil
	}
	for _, m := range rs.imms {
		if v, found, deleted := m.Get(key, rs.seq); found {
			if deleted {
				return nil, kv.ErrNotFound
			}
			return append([]byte(nil), v...), nil
		}
	}
	return d.getFromTables(rs, key)
}

func (d *DB) getFromTables(rs readState, key []byte) ([]byte, error) {
	// L0: newest file first; first hit wins.
	l0 := rs.ver.Levels[0]
	var (
		bestVal            []byte
		bestSeq            uint64
		bestFound, bestDel bool
	)
	probe := func(fm *manifest.FileMeta) error {
		if !fm.Overlaps(key, key) {
			return nil
		}
		// A quarantined file may hold the newest version of this key;
		// serving from the surviving files could resurrect stale data, so
		// the read fails loudly instead (DESIGN.md §12).
		if qerr := d.quarErr(fm.Num); qerr != nil {
			return qerr
		}
		r, err := d.tcache.get(fm.Num)
		if err != nil {
			d.noteCorruption(err)
			return err
		}
		if !r.MayContain(key) {
			d.perf.bloomSkips.Add(1)
			return nil
		}
		d.perf.tableProbes.Add(1)
		v, seq, found, deleted, err := r.Get(key, rs.seq)
		if err != nil {
			d.noteCorruption(err)
			return err
		}
		if found && (!bestFound || seq > bestSeq) {
			bestVal, bestSeq, bestFound, bestDel = v, seq, true, deleted
		}
		return nil
	}
	for i := len(l0) - 1; i >= 0; i-- {
		if err := probe(l0[i]); err != nil {
			return nil, err
		}
		if bestFound && d.opts.Style == Leveled {
			break // newest L0 file with the key wins
		}
	}
	if !bestFound {
		for level := 1; level < manifest.NumLevels && !bestFound; level++ {
			files := rs.ver.Levels[level]
			if d.opts.Style == Leveled {
				// Non-overlapping: binary search by largest user key.
				idx := sort.Search(len(files), func(i int) bool {
					return string(ikey.UserKey(files[i].Largest)) >= string(key)
				})
				if idx < len(files) {
					if err := probe(files[idx]); err != nil {
						return nil, err
					}
				}
			} else {
				// Fragmented: any file whose range covers key may hold a
				// version; take the newest.
				for _, fm := range files {
					if err := probe(fm); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if !bestFound || bestDel {
		return nil, kv.ErrNotFound
	}
	return bestVal, nil
}

// MultiGet implements kv.MultiGetter: it resolves all keys against one
// read snapshot with the lookups' IO overlapped (RocksDB's multiget
// issues batched parallel reads internally — that internal parallelism is
// what OBM's read batching exploits, Figure 14).
func (d *DB) MultiGet(keys [][]byte) ([][]byte, error) {
	if d.closed.Load() {
		return nil, kv.ErrClosed
	}
	if !d.opts.MultiGet {
		return nil, errors.New("lsm: MultiGet disabled by options")
	}
	d.perf.gets.Add(int64(len(keys)))
	rs := d.acquireReadState()
	out := make([][]byte, len(keys))
	if len(keys) == 1 {
		if c := d.opts.ReadPerOpCost; c > 0 {
			time.Sleep(c)
		}
		v, err := d.getAt(rs, keys[0])
		if err != nil && err != kv.ErrNotFound {
			return nil, err
		}
		out[0] = v
		return out, nil
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, 16)
	for i, k := range keys {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, k []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			if c := d.opts.ReadPerOpCost; c > 0 {
				// Batched lookups share the snapshot and batch their
				// bloom/index probing (RocksDB multiget): ~35% of the
				// standalone software path, overlapped across keys.
				time.Sleep(c * 35 / 100)
			}
			v, err := d.getAt(rs, k)
			if isStaleFileErr(err) {
				// Compaction raced this batch; resolve the key against a
				// fresh read state.
				v, err = d.Get(k)
			}
			switch err {
			case nil:
				out[i] = v
			case kv.ErrNotFound:
			default:
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(i, k)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Caps reports optional capabilities for p2KVS's feature discovery.
func (d *DB) Caps() kv.Caps {
	return kv.Caps{BatchWrite: true, MultiGet: d.opts.MultiGet}
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

// Flush implements kv.Engine: it forces the current memtable down to L0
// and waits for the flush queue to drain.
func (d *DB) Flush() error {
	if d.closed.Load() {
		return kv.ErrClosed
	}
	d.mu.Lock()
	if !d.memH.mem.Empty() {
		d.rotateLocked()
	}
	d.mu.Unlock()
	if !d.opts.BackgroundCompaction {
		for d.flushOne() {
		}
		return d.bgErrSnapshot()
	}
	d.mu.Lock()
	for len(d.imm) > 0 && d.bgErr == nil && !d.closed.Load() {
		d.kick()
		d.cond.Wait()
	}
	err := d.bgErr
	d.mu.Unlock()
	if err == nil && d.closed.Load() {
		return kv.ErrClosed
	}
	return err
}

func (d *DB) bgErrSnapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bgErr
}

// CompactAll drains pending flushes and compacts until no level is over
// budget (used by benchmarks to reach a steady state and by tests). The
// jobs run on the calling goroutine, interleaved with (and waiting out)
// any background compactions.
func (d *DB) CompactAll() error {
	if err := d.Flush(); err != nil {
		return err
	}
	for {
		d.mu.Lock()
		for len(d.compRunning) > 0 && d.bgErr == nil && !d.closed.Load() {
			d.cond.Wait()
		}
		if d.bgErr != nil {
			err := d.bgErr
			d.mu.Unlock()
			return err
		}
		if d.closed.Load() {
			d.mu.Unlock()
			return kv.ErrClosed
		}
		job := d.pickJobLocked()
		if job == nil {
			d.mu.Unlock()
			return nil
		}
		job.manual = true
		d.startJobLocked(job)
		d.mu.Unlock()
		err := d.execJob(job)
		d.finishJob(job)
		if err != nil {
			return err
		}
	}
}

// Metrics returns live structural counters.
type Metrics struct {
	MemTableBytes  int64
	ImmutableCount int
	LevelFiles     [manifest.NumLevels]int
	LevelBytes     [manifest.NumLevels]int64
	WALBytes       int64
	// Robustness counters (see bgerror.go).
	State          kv.HealthState
	FlushRetries   int64
	CompactRetries int64
	InjectedFaults int64 // non-zero only under a fault-injecting FS
	// Compaction-scheduler counters (see scheduler.go).
	StallNs               int64 // time writers spent hard-stalled
	SlowdownNs            int64 // time writers spent in soft slowdown sleeps
	Slowdowns             int64 // writes that took a slowdown sleep
	Compactions           int64
	Subcompactions        int64 // key-range splits executed inside compactions
	ConcurrentCompactions int64 // high-water mark of jobs running at once
}

// Metrics snapshots structure sizes (Table 2 memory accounting).
func (d *DB) Metrics() Metrics {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := Metrics{
		MemTableBytes:         d.memH.mem.ArenaSize(),
		ImmutableCount:        len(d.imm),
		State:                 kv.HealthState(d.stateA.Load()),
		FlushRetries:          d.perf.flushRetries.Load(),
		CompactRetries:        d.perf.compactRetries.Load(),
		StallNs:               d.perf.stallNs.Load(),
		SlowdownNs:            d.perf.slowdownNs.Load(),
		Slowdowns:             d.perf.slowdowns.Load(),
		Compactions:           d.perf.compactions.Load(),
		Subcompactions:        d.perf.subcompactions.Load(),
		ConcurrentCompactions: d.perf.concurrentCompactHW.Load(),
	}
	if fc, ok := d.opts.FS.(vfs.FaultCounter); ok {
		m.InjectedFaults = fc.InjectedFaults()
	}
	for _, h := range d.imm {
		m.MemTableBytes += h.mem.ArenaSize()
	}
	v := d.vs.Current()
	for i := range v.Levels {
		m.LevelFiles[i] = len(v.Levels[i])
		m.LevelBytes[i] = v.LevelSize(i)
	}
	if d.wal != nil {
		m.WALBytes = d.wal.Size()
	}
	return m
}

// Close implements kv.Engine.
func (d *DB) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(d.stopC)
	d.mu.Lock()
	d.cond.Broadcast()
	d.mu.Unlock()
	if d.spaceWatch != nil {
		d.spaceWatch.Close()
	}
	d.bgWG.Wait()
	// Running compactions must drain before the manifest closes: they
	// write version edits through d.vs.
	d.compWG.Wait()
	// In-flight repair attempts use the table cache and FS; drain them
	// before tearing either down.
	d.repairWG.Wait()

	d.mu.Lock()
	defer d.mu.Unlock()
	var firstErr error
	if d.wal != nil {
		if err := d.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, h := range d.imm {
		if h.walw != nil {
			if err := h.walw.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := d.vs.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	d.tcache.closeAll()
	return firstErr
}
