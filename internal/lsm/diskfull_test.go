package lsm

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// fillUntilNoSpace writes until the engine reports a space-exhaustion
// failure, returning the keys that were acked before it.
func fillUntilNoSpace(t *testing.T, d *DB) []string {
	t.Helper()
	var acked []string
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("key-%06d", i)
		err := d.Put([]byte(k), make([]byte, 512))
		if err == nil {
			acked = append(acked, k)
			continue
		}
		if vfs.IsNoSpace(err) || errors.Is(err, kv.ErrDegraded) {
			return acked
		}
		t.Fatalf("Put(%s): unexpected error class: %v", k, err)
	}
	t.Fatal("never hit the quota")
	return nil
}

func TestDiskFullDegradesAndAutoResumes(t *testing.T) {
	qfs := vfs.NewQuota(vfs.NewMem(), 256<<10)
	o := RocksDBOptions(qfs)
	o.MemTableSize = 16 << 10
	o.SyncWAL = true
	o.BgBaseBackoff = time.Millisecond
	o.BgMaxBackoff = 8 * time.Millisecond
	d, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	acked := fillUntilNoSpace(t, d)
	if len(acked) == 0 {
		t.Fatal("no write ever succeeded")
	}

	// The engine must settle into disk-full read-only mode: writes fail
	// fast with ErrDegraded, health says DiskFull.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := d.Health()
		if h.State == kv.StateReadOnly && h.DiskFull {
			if h.DiskFullEvents == 0 {
				t.Fatal("DiskFull set but DiskFullEvents == 0")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine never entered disk-full read-only mode: %+v", h)
		}
		time.Sleep(time.Millisecond)
	}
	if err := d.Put([]byte("blocked"), []byte("v")); !errors.Is(err, kv.ErrDegraded) {
		t.Fatalf("write while disk-full: got %v, want ErrDegraded", err)
	}

	// Reads keep serving the acked state throughout.
	for _, k := range []string{acked[0], acked[len(acked)/2], acked[len(acked)-1]} {
		if _, err := d.Get([]byte(k)); err != nil {
			t.Fatalf("Get(%s) while disk-full: %v", k, err)
		}
	}

	// Space comes back; the watchdog must auto-resume without any Resume
	// call from us.
	qfs.SetBudget(64 << 20)
	deadline = time.Now().Add(10 * time.Second)
	for {
		if err := d.Put([]byte("after"), []byte("v")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writes never resumed after space freed: health %+v", d.Health())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h := d.Health(); h.AutoResumes == 0 {
		t.Fatalf("auto-resume not counted: %+v", h)
	}
	// Acked state survived the episode.
	if _, err := d.Get([]byte(acked[0])); err != nil {
		t.Fatalf("Get after resume: %v", err)
	}
}

// TestReclaimSpaceDropsUnreferencedFiles plants an orphan SST and a
// pre-LogNum log, degrades the engine with ENOSPC, and checks the GC
// removes exactly the garbage.
func TestReclaimSpaceDropsUnreferencedFiles(t *testing.T) {
	qfs := vfs.NewQuota(vfs.NewMem(), -1)
	o := RocksDBOptions(qfs)
	o.MemTableSize = 8 << 10
	d, err := Open("db", o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Flush something so the manifest's LogNum advances past the first log.
	if err := d.Put([]byte("k"), make([]byte, 4<<10)); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	// Plant garbage: an SST no version references and a stale log.
	for _, name := range []string{"db/999999.sst", "db/000000.log"} {
		f, err := qfs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("garbage"))
		f.Close()
	}

	// Degrade via ENOSPC and let the watchdog's first probe run the GC.
	qfs.SetBudget(1)
	var degraded bool
	for i := 0; i < 10000; i++ {
		if err := d.Put([]byte(fmt.Sprintf("fill-%d", i)), make([]byte, 1024)); err != nil {
			degraded = true
			break
		}
	}
	if !degraded {
		t.Fatal("never degraded")
	}
	qfs.SetBudget(-1)
	deadline := time.Now().Add(10 * time.Second)
	for qfs.Exists("db/999999.sst") || qfs.Exists("db/000000.log") {
		if time.Now().After(deadline) {
			t.Fatalf("garbage not collected: sst=%v log=%v",
				qfs.Exists("db/999999.sst"), qfs.Exists("db/000000.log"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Live files must survive GC: the store still serves its data after
	// auto-resume.
	deadline = time.Now().Add(10 * time.Second)
	for {
		if err := d.Put([]byte("post"), []byte("v")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never resumed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v, err := d.Get([]byte("k")); err != nil || len(v) != 4<<10 {
		t.Fatalf("flushed key lost after GC: v=%d bytes, err=%v", len(v), err)
	}
}
