package lsm

import (
	"fmt"
	"strings"
	"testing"

	"p2kvs/internal/manifest"

	"p2kvs/internal/ikey"
	"p2kvs/internal/sstable"
	"p2kvs/internal/vfs"
	"p2kvs/internal/wal"
)

// TestForensicRecovery is a debugging aid kept as a regression net: it
// reproduces TestRecoveryAfterFlushAndCompaction and, on failure, dumps
// where every version of the failing key lives (WAL vs SSTs vs manifest).
func TestForensicRecovery(t *testing.T) {
	fs := vfs.NewMem()
	opts := smallOpts(fs)
	opts.SyncWAL = true
	db, _ := Open("db", opts)
	fill(t, db, 2000, 1)
	db.CompactAll()
	fill(t, db, 300, 2)
	db.mu.Lock()
	ver1 := db.vs.Current()
	pre := ""
	for lvl, files := range ver1.Levels {
		for _, fm := range files {
			pre += describeFile(lvl, fm)
		}
	}
	pre += describe2("LogNum", db.vs.LogNum) + describe2("NextFile", db.vs.NextFile)
	db.mu.Unlock()
	fs.Crash()
	db.Close()
	fs.Restart()

	db2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	key := "key000143"
	v, err := db2.Get([]byte(key))
	if err == nil && strings.HasPrefix(string(v), "r2-") {
		return // healthy run
	}
	t.Logf("Get(%s) = %q, %v — dumping state", key, v, err)
	t.Logf("pre-crash db1 state:\n%s", pre)
	names, _ := fs.List("db")
	for _, n := range names {
		full := "db/" + n
		switch {
		case strings.HasSuffix(n, ".log"):
			f, _ := fs.Open(full)
			recs, rerr := wal.ReadAll(f)
			count := 0
			for _, r := range recs {
				_, ops, _ := decodeBatchPayload(r.Payload)
				for _, op := range ops {
					if string(op.Key) == key {
						t.Logf("  %s: %s = %q", n, key, op.Value)
						count++
					}
				}
			}
			t.Logf("  %s: %d records total, err=%v, hits=%d", n, len(recs), rerr, count)
			f.Close()
		case strings.HasSuffix(n, ".sst"):
			f, _ := fs.Open(full)
			r, oerr := sstable.Open(f)
			if oerr != nil {
				t.Logf("  %s: open err %v", n, oerr)
				continue
			}
			val, seq, found, deleted, _ := r.Get([]byte(key), ikey.MaxSeq)
			if found {
				t.Logf("  %s: %s = %q seq=%d deleted=%v (entries=%d)", n, key, val, seq, deleted, r.Entries())
			}
			r.Close()
		}
	}
	db2.mu.Lock()
	ver := db2.vs.Current()
	for lvl, files := range ver.Levels {
		for _, fm := range files {
			t.Logf("  manifest L%d: file %06d [%q..%q] entries=%d", lvl, fm.Num,
				ikey.UserKey(fm.Smallest), ikey.UserKey(fm.Largest), fm.Entries)
		}
	}
	t.Logf("  LogNum=%d NextFile=%d LastSeq=%d memLen=%d", db2.vs.LogNum, db2.vs.NextFile, db2.vs.LastSeq, db2.memH.mem.Len())
	db2.mu.Unlock()
	t.Fatal("round-2 value lost")
}

func describeFile(lvl int, fm *manifest.FileMeta) string {
	return "  L" + itoa(lvl) + ": file " + itoa(int(fm.Num)) + " [" + string(ikey.UserKey(fm.Smallest)) + ".." + string(ikey.UserKey(fm.Largest)) + "] entries=" + itoa(fm.Entries) + "\n"
}

func describe2(name string, v uint64) string { return "  " + name + "=" + itoa(int(v)) + "\n" }

func itoa(v int) string { return fmt.Sprintf("%d", v) }
