package device

import (
	"sync"
	"testing"
	"time"

	"p2kvs/internal/vfs"
)

func TestStatsAccounting(t *testing.T) {
	d := New(Null, 1)
	d.Access(Write, 100, true)
	d.Access(Write, 50, false)
	d.Access(Read, 10, false)
	s := d.Stats()
	if s.WriteOps != 2 || s.WrittenBytes != 150 {
		t.Fatalf("write stats = %+v", s)
	}
	if s.ReadOps != 1 || s.ReadBytes != 10 {
		t.Fatalf("read stats = %+v", s)
	}
	if s.SeqWriteOps != 1 || s.SeqWriteBytes != 100 {
		t.Fatalf("seq write stats = %+v", s)
	}
	d.ResetStats()
	if s := d.Stats(); s.WriteOps != 0 || s.ReadBytes != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
}

func TestAccessChargesTime(t *testing.T) {
	// A profile with 1ms random-read latency must make Access block
	// roughly that long.
	prof := Profile{Name: "t", SeqReadBW: 1e9, SeqWriteBW: 1e9,
		ReadLatency: time.Millisecond, Parallelism: 4}
	d := New(prof, 1)
	start := time.Now()
	d.Access(Read, 128, false)
	if el := time.Since(start); el < 900*time.Microsecond {
		t.Fatalf("random read took %v, want >= ~1ms", el)
	}
	// Sequential reads skip the random latency.
	start = time.Now()
	d.Access(Read, 128, true)
	if el := time.Since(start); el > 500*time.Microsecond {
		t.Fatalf("sequential read took %v, want well under 1ms", el)
	}
}

func TestScaleSpeedsUpDevice(t *testing.T) {
	prof := Profile{Name: "t", SeqReadBW: 1e9, SeqWriteBW: 1e9,
		WriteLatency: 10 * time.Millisecond, Parallelism: 1}
	d := New(prof, 0.01) // 100x faster
	start := time.Now()
	d.Access(Write, 64, false)
	if el := time.Since(start); el > 5*time.Millisecond {
		t.Fatalf("scaled write took %v, want ~100us", el)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// Two concurrent 1MB transfers on a 100MB/s device must take ~2x the
	// single-transfer time because the transfer lane is shared.
	prof := Profile{Name: "t", SeqReadBW: 100e6, SeqWriteBW: 100e6, Parallelism: 8}
	d := New(prof, 1)
	single := time.Duration(float64(1<<20) / 100e6 * float64(time.Second)) // ~10.5ms

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Access(Write, 1<<20, true)
		}()
	}
	wg.Wait()
	el := time.Since(start)
	if el < single*3/2 {
		t.Fatalf("2 concurrent transfers took %v, want >= %v (serialized bandwidth)", el, single*3/2)
	}
}

func TestParallelismGateHDD(t *testing.T) {
	// HDD (parallelism 1): two concurrent random IOs serialize on the
	// gate, so total time >= 2 * latency.
	prof := Profile{Name: "t", SeqReadBW: 1e12, SeqWriteBW: 1e12,
		ReadLatency: 2 * time.Millisecond, Parallelism: 1}
	d := New(prof, 1)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Access(Read, 16, false)
		}()
	}
	wg.Wait()
	if el := time.Since(start); el < 3500*time.Microsecond {
		t.Fatalf("HDD-like device overlapped IOs: %v", el)
	}
}

func TestNVMeOverlapsLatency(t *testing.T) {
	// NVMe-like (parallelism 8): 4 concurrent random IOs overlap their
	// latency phase, total ~1 latency, not 4.
	prof := Profile{Name: "t", SeqReadBW: 1e12, SeqWriteBW: 1e12,
		ReadLatency: 2 * time.Millisecond, Parallelism: 8}
	d := New(prof, 1)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Access(Read, 16, false)
		}()
	}
	wg.Wait()
	// Serialized would be >= 8ms (4 x 2ms); allow generous scheduler
	// slack under -race while still catching serialization.
	if el := time.Since(start); el > 7500*time.Microsecond {
		t.Fatalf("NVMe-like device serialized latency: %v", el)
	}
}

func TestWrapFSAccounting(t *testing.T) {
	mem := vfs.NewMem()
	d := New(Null, 1)
	fs := WrapFS(mem, d)

	f, err := fs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	f.Write(make([]byte, 100))
	f.Write(make([]byte, 28))
	buf := make([]byte, 64)
	f.ReadAt(buf, 0)
	f.ReadAt(buf, 64) // sequential continuation
	f.Sync()
	f.Close()

	s := d.Stats()
	if s.WrittenBytes != 128 {
		t.Fatalf("written = %d, want 128", s.WrittenBytes)
	}
	if s.ReadBytes != 128 || s.ReadOps != 2 {
		t.Fatalf("read stats = %+v", s)
	}
	// Sync charges one extra zero-byte write op.
	if s.WriteOps != 3 {
		t.Fatalf("write ops = %d, want 3 (2 writes + sync)", s.WriteOps)
	}
	if !fs.Exists("x") {
		t.Fatal("file missing in inner fs")
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range []Profile{NVMe, SATA, HDD} {
		if p.SeqReadBW <= 0 || p.SeqWriteBW <= 0 || p.Parallelism <= 0 {
			t.Fatalf("profile %s has zero fields: %+v", p.Name, p)
		}
	}
	if !(HDD.ReadLatency > SATA.ReadLatency && SATA.ReadLatency > NVMe.ReadLatency) {
		t.Fatal("latency ordering must be HDD > SATA > NVMe")
	}
	if !(NVMe.SeqWriteBW > SATA.SeqWriteBW && SATA.SeqWriteBW > HDD.SeqWriteBW) {
		t.Fatal("bandwidth ordering must be NVMe > SATA > HDD")
	}
}

func TestWriteAtBuffered(t *testing.T) {
	// In-place updates go through the write-back cache: no per-call
	// latency while under the dirty window, but fully accounted.
	mem := vfs.NewMem()
	prof := Profile{Name: "t", SeqReadBW: 1e9, SeqWriteBW: 1e9,
		WriteLatency: 2 * time.Millisecond, SeqLatency: 0, Parallelism: 4}
	d := New(prof, 1)
	fs := WrapFS(mem, d)
	f, _ := fs.Create("slab")
	start := time.Now()
	f.WriteAt(make([]byte, 64), 4096)
	if el := time.Since(start); el > time.Millisecond {
		t.Fatalf("buffered WriteAt blocked %v", el)
	}
	st := d.Stats()
	if st.WriteOps != 1 || st.WrittenBytes != 64 {
		t.Fatalf("WriteAt accounting: %+v", st)
	}
	buf := make([]byte, 64)
	if _, err := f.ReadAt(buf, 4096); err != nil {
		t.Fatal(err)
	}
}

func TestWritebackBackpressure(t *testing.T) {
	// Buffered writes are free until the dirty window fills, then they
	// block at drain rate; Drain (fsync) pays the debt down.
	prof := Profile{Name: "t", SeqReadBW: 1e9, SeqWriteBW: 1e9, Parallelism: 4}
	d := New(prof, 1)
	d.wbWindow = 1 << 20 // 1 MiB window at 1 GB/s -> ~1ms to drain

	start := time.Now()
	d.WriteBuffered(512 << 10) // half the window: no block
	if el := time.Since(start); el > 500*time.Microsecond {
		t.Fatalf("under-window buffered write blocked %v", el)
	}
	start = time.Now()
	d.WriteBuffered(4 << 20) // 4 MiB over a 1 MiB window: must block ~3.5ms
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Fatalf("over-window buffered write blocked only %v", el)
	}
	start = time.Now()
	d.Drain()
	if el := time.Since(start); el < 500*time.Microsecond {
		t.Fatalf("drain with full window returned in %v", el)
	}
	st := d.Stats()
	if st.WrittenBytes != (512<<10)+(4<<20) {
		t.Fatalf("writeback accounting: %+v", st)
	}
}
