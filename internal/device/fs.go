package device

import (
	"sync"

	"p2kvs/internal/vfs"
)

// FS wraps any vfs.FS so every file IO is charged to a shared simulated
// Device. Sequentiality is tracked per file handle: writes are sequential
// by construction (append-only files); reads are sequential when the read
// offset equals the previous read's end.
type FS struct {
	inner vfs.FS
	dev   *Device
}

// WrapFS layers the device model over fs.
func WrapFS(fs vfs.FS, dev *Device) *FS { return &FS{inner: fs, dev: dev} }

// Device exposes the wrapped device for stats collection.
func (f *FS) Device() *Device { return f.dev }

// Create implements vfs.FS.
func (f *FS) Create(name string) (vfs.File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &devFile{inner: file, dev: f.dev}, nil
}

// Open implements vfs.FS.
func (f *FS) Open(name string) (vfs.File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &devFile{inner: file, dev: f.dev}, nil
}

// Remove implements vfs.FS.
func (f *FS) Remove(name string) error { return f.inner.Remove(name) }

// Rename implements vfs.FS.
func (f *FS) Rename(o, n string) error { return f.inner.Rename(o, n) }

// List implements vfs.FS.
func (f *FS) List(dir string) ([]string, error) { return f.inner.List(dir) }

// MkdirAll implements vfs.FS.
func (f *FS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

// Exists implements vfs.FS.
func (f *FS) Exists(name string) bool { return f.inner.Exists(name) }

// Link implements vfs.FS. Hard links are a metadata operation — no data
// moves, so nothing is charged to the device.
func (f *FS) Link(oldname, newname string) error { return f.inner.Link(oldname, newname) }

type devFile struct {
	inner vfs.File
	dev   *Device

	mu          sync.Mutex
	lastReadEnd int64
	wroteSince  bool // a write since the last read breaks read sequentiality
}

func (f *devFile) Write(p []byte) (int, error) {
	// Engine files are append-only and written through the OS page cache
	// (the paper's async-logging configuration): the caller pays no
	// device latency, only write-back backpressure; Sync pays the drain.
	// The per-syscall software cost of many small unbatched log writes
	// (Figure 7) is modeled by the WAL's per-record cost, not here.
	f.dev.WriteBuffered(len(p))
	f.mu.Lock()
	f.wroteSince = true
	f.mu.Unlock()
	return f.inner.Write(p)
}

func (f *devFile) WriteAt(p []byte, off int64) (int, error) {
	// In-place updates also ride the page cache (KVell explicitly relies
	// on it): buffered with write-back backpressure, like appends. The
	// random-write pattern costs show up when the cache drains — which
	// the bandwidth-based debt model charges — not per call.
	f.dev.WriteBuffered(len(p))
	f.mu.Lock()
	f.wroteSince = true
	f.mu.Unlock()
	return f.inner.WriteAt(p, off)
}

func (f *devFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	seq := !f.wroteSince && off == f.lastReadEnd && off != 0
	f.wroteSince = false
	f.lastReadEnd = off + int64(len(p))
	f.mu.Unlock()
	f.dev.Access(Read, len(p), seq)
	return f.inner.ReadAt(p, off)
}

func (f *devFile) Sync() error {
	// fsync: wait for the write-back debt to reach stable storage.
	f.dev.Drain()
	return f.inner.Sync()
}

func (f *devFile) Size() (int64, error) { return f.inner.Size() }
func (f *devFile) Close() error         { return f.inner.Close() }
