// Package device simulates the block devices the paper evaluates on —
// an Intel Optane 905p NVMe SSD, a Samsung 860 PRO SATA SSD, and a WDC
// 10TB HDD — since none of that hardware is available here.
//
// The model charges every IO a service time
//
//	service = perIOLatency + bytes/bandwidth            (SSDs)
//	service = seek + rotational + bytes/bandwidth       (HDD, non-sequential)
//
// executed inside a gate of bounded width (the device's internal
// parallelism) with a shared bandwidth token bucket, so concurrent callers
// observe queueing exactly where the paper's analysis expects it: HDDs
// serialize on the single actuator, SATA is limited to shallow
// parallelism, NVMe sustains deep queues. Sequentiality is detected per
// stream (file) by comparing offsets.
//
// Profiles are time-scaled (Scale) so experiment runs finish quickly; the
// *ratios* between device speeds and between IO cost and host CPU cost are
// what the paper's findings depend on, and those are preserved.
package device

import (
	"sync"
	"time"
)

// Profile describes a simulated device.
type Profile struct {
	Name string
	// SeqReadBW / SeqWriteBW are sustained bandwidths in bytes/second.
	SeqReadBW  float64
	SeqWriteBW float64
	// ReadLatency / WriteLatency are per-IO latencies for random access.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// SeqLatency is the per-IO setup cost for sequential access.
	SeqLatency time.Duration
	// Parallelism bounds in-flight IOs (internal device queues).
	Parallelism int
}

// The three paper devices. Latencies/bandwidths follow the published specs
// of the Optane 905p (2.2/2.6 GB/s, ~10us), the 860 PRO (~0.5 GB/s SATA,
// ~80us) and a 7200rpm HDD (~0.2 GB/s, ~8ms seek).
var (
	// NVMe models the Intel Optane 905p 480GB. Parallelism 8 reflects
	// the Optane's modest internal parallelism, which is what caps the
	// useful number of independent logging streams in the paper's
	// Figure 8a (multi-instance logging peaks well before 16 threads).
	NVMe = Profile{
		Name: "nvme", SeqReadBW: 2.6e9, SeqWriteBW: 2.2e9,
		ReadLatency: 10 * time.Microsecond, WriteLatency: 10 * time.Microsecond,
		SeqLatency: 5 * time.Microsecond, Parallelism: 8,
	}
	// SATA models the Samsung 860 PRO 512GB.
	SATA = Profile{
		Name: "sata", SeqReadBW: 0.55e9, SeqWriteBW: 0.52e9,
		ReadLatency: 80 * time.Microsecond, WriteLatency: 60 * time.Microsecond,
		SeqLatency: 30 * time.Microsecond, Parallelism: 4,
	}
	// HDD models the WDC WD100EFAX 10TB.
	HDD = Profile{
		Name: "hdd", SeqReadBW: 0.21e9, SeqWriteBW: 0.20e9,
		ReadLatency: 8 * time.Millisecond, WriteLatency: 8 * time.Millisecond,
		SeqLatency: 50 * time.Microsecond, Parallelism: 1,
	}
	// Null is an infinitely fast device, for tests that don't want IO time.
	Null = Profile{Name: "null", SeqReadBW: 1e15, SeqWriteBW: 1e15, Parallelism: 1 << 20}
)

// Dir discriminates reads from writes for accounting.
type Dir int

// IO directions.
const (
	Read Dir = iota
	Write
)

// Device is a shared simulated device. It is safe for concurrent use.
type Device struct {
	prof  Profile
	scale float64

	gate chan struct{}

	mu sync.Mutex
	// busyUntil serializes bandwidth: the device lane is busy until this
	// instant; each IO extends it by its transfer time.
	busyUntil time.Time

	// Write-back cache state (page-cache model for buffered appends):
	// wbDebt is the number of dirty bytes not yet drained at the
	// device's sequential-write bandwidth; writers block only when debt
	// exceeds wbWindow, and Drain (fsync) blocks until the debt clears.
	wbDebt   float64
	wbLast   time.Time
	wbWindow float64

	stats Stats
}

// DefaultWritebackWindow is the dirty-byte budget before buffered writers
// block (a stand-in for the kernel's dirty page limits, sized so a full
// drain stays well under a second of real time at scaled bandwidth).
const DefaultWritebackWindow = 4 << 20

// Stats aggregates device counters. Snapshot with (*Device).Stats.
type Stats struct {
	ReadOps       int64
	WriteOps      int64
	ReadBytes     int64
	WrittenBytes  int64
	ReadBusy      time.Duration // summed service time of reads
	WriteBusy     time.Duration // summed service time of writes
	SeqWriteOps   int64
	SeqWriteBytes int64
}

// New creates a device with the given profile. scale multiplies all
// simulated durations: 1.0 is real time; 0.01 makes the device 100x
// faster so large experiments finish quickly while preserving ratios.
func New(prof Profile, scale float64) *Device {
	if scale <= 0 {
		scale = 1
	}
	par := prof.Parallelism
	if par <= 0 {
		par = 1
	}
	return &Device{
		prof:     prof,
		scale:    scale,
		gate:     make(chan struct{}, par),
		wbWindow: DefaultWritebackWindow,
		wbLast:   time.Now(),
	}
}

// WriteBuffered charges n bytes through the write-back cache (the OS
// page-cache path buffered appends take under async logging): the caller
// pays no device latency; the bytes become debt drained at the device's
// sequential-write bandwidth, and the caller blocks only when the dirty
// window is exceeded — the same backpressure the kernel applies.
func (d *Device) WriteBuffered(n int) {
	if d == nil || d.prof.Name == "null" {
		d.account(Write, n, true, 0)
		return
	}
	// Drain rate in real time: simulated bandwidth slowed by scale.
	rate := d.prof.SeqWriteBW / d.scale
	d.mu.Lock()
	now := time.Now()
	d.wbDebt -= now.Sub(d.wbLast).Seconds() * rate
	if d.wbDebt < 0 {
		d.wbDebt = 0
	}
	d.wbLast = now
	d.wbDebt += float64(n)
	var sleep time.Duration
	if d.wbDebt > d.wbWindow {
		sleep = time.Duration((d.wbDebt - d.wbWindow) / rate * float64(time.Second))
		// The clamped debt is the state at the END of the sleep; advance
		// the drain clock with it or the wait would drain the debt twice.
		d.wbDebt = d.wbWindow
		d.wbLast = now.Add(sleep)
	}
	d.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	d.account(Write, n, true, time.Duration(float64(n)/d.prof.SeqWriteBW*float64(time.Second)*d.scale))
}

// Drain models fsync: it blocks until the write-back debt has reached
// stable storage, plus one flush-command latency.
func (d *Device) Drain() {
	if d == nil || d.prof.Name == "null" {
		d.account(Write, 0, false, 0)
		return
	}
	rate := d.prof.SeqWriteBW / d.scale
	d.mu.Lock()
	now := time.Now()
	d.wbDebt -= now.Sub(d.wbLast).Seconds() * rate
	if d.wbDebt < 0 {
		d.wbDebt = 0
	}
	d.wbLast = now
	sleep := time.Duration(d.wbDebt / rate * float64(time.Second))
	d.wbDebt = 0
	d.mu.Unlock()
	sleep += time.Duration(float64(d.prof.SeqLatency) * d.scale)
	if sleep > 0 {
		time.Sleep(sleep)
	}
	d.account(Write, 0, false, 0)
}

// Profile returns the device's profile.
func (d *Device) Profile() Profile { return d.prof }

// Access charges one IO of n bytes and blocks for its simulated service
// time. sequential marks stream-sequential access (no seek cost).
func (d *Device) Access(dir Dir, n int, sequential bool) {
	if d == nil || d.prof.Name == "null" {
		d.account(dir, n, sequential, 0)
		return
	}
	d.gate <- struct{}{}
	defer func() { <-d.gate }()

	var lat time.Duration
	var bw float64
	if dir == Read {
		lat, bw = d.prof.ReadLatency, d.prof.SeqReadBW
	} else {
		lat, bw = d.prof.WriteLatency, d.prof.SeqWriteBW
	}
	if sequential {
		lat = d.prof.SeqLatency
	}
	transfer := time.Duration(float64(n) / bw * float64(time.Second))

	// The transfer phase competes for the single internal bus: serialize
	// it via busyUntil. The latency phase (controller/seek) overlaps
	// across the parallel lanes.
	d.mu.Lock()
	now := time.Now()
	start := d.busyUntil
	if start.Before(now) {
		start = now
	}
	scaledTransfer := time.Duration(float64(transfer) * d.scale)
	d.busyUntil = start.Add(scaledTransfer)
	finish := d.busyUntil
	d.mu.Unlock()

	service := time.Duration(float64(lat)*d.scale) + time.Until(finish)
	if service > 0 {
		time.Sleep(service)
	}
	d.account(dir, n, sequential, time.Duration(float64(lat+transfer)*d.scale))
}

func (d *Device) account(dir Dir, n int, sequential bool, busy time.Duration) {
	if d == nil {
		return
	}
	d.mu.Lock()
	if dir == Read {
		d.stats.ReadOps++
		d.stats.ReadBytes += int64(n)
		d.stats.ReadBusy += busy
	} else {
		d.stats.WriteOps++
		d.stats.WrittenBytes += int64(n)
		d.stats.WriteBusy += busy
		if sequential {
			d.stats.SeqWriteOps++
			d.stats.SeqWriteBytes += int64(n)
		}
	}
	d.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters (used between experiment phases).
func (d *Device) ResetStats() {
	d.mu.Lock()
	d.stats = Stats{}
	d.mu.Unlock()
}
