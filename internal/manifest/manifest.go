// Package manifest tracks the LSM-tree's on-disk structure — which
// SSTable lives on which level — via an append-only log of version edits,
// the LevelDB/RocksDB MANIFEST mechanism. Replaying the log on open
// rebuilds the level layout; every flush and compaction appends one edit.
package manifest

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"p2kvs/internal/ikey"
	"p2kvs/internal/vfs"
	"p2kvs/internal/wal"
)

// NumLevels is the LSM-tree depth (L0..L6), matching LevelDB defaults.
const NumLevels = 7

// FileMeta describes one SSTable.
type FileMeta struct {
	Num      uint64
	Size     int64
	Smallest []byte // internal keys
	Largest  []byte
	Entries  int
}

// Overlaps reports whether the file's key range intersects
// [smallestUkey, largestUkey] (user keys; nil bounds are open).
func (f *FileMeta) Overlaps(smallestUkey, largestUkey []byte) bool {
	fsm, flg := ikey.UserKey(f.Smallest), ikey.UserKey(f.Largest)
	if largestUkey != nil && string(fsm) > string(largestUkey) {
		return false
	}
	if smallestUkey != nil && string(flg) < string(smallestUkey) {
		return false
	}
	return true
}

// AddedFile is a (level, file) pair in a VersionEdit.
type AddedFile struct {
	Level int
	Meta  FileMeta
}

// DeletedFile identifies a file removed from a level.
type DeletedFile struct {
	Level int
	Num   uint64
}

// VersionEdit is one atomic mutation of the tree structure.
type VersionEdit struct {
	HasLogNum   bool
	LogNum      uint64
	HasNextFile bool
	NextFile    uint64
	HasLastSeq  bool
	LastSeq     uint64
	Added       []AddedFile
	Deleted     []DeletedFile
}

// Edit record tags.
const (
	tagLogNum = iota + 1
	tagNextFile
	tagLastSeq
	tagAddFile
	tagDeleteFile
)

func putUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func putBytes(dst, b []byte) []byte {
	dst = putUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// Encode serializes the edit.
func (e *VersionEdit) Encode() []byte {
	var b []byte
	if e.HasLogNum {
		b = putUvarint(b, tagLogNum)
		b = putUvarint(b, e.LogNum)
	}
	if e.HasNextFile {
		b = putUvarint(b, tagNextFile)
		b = putUvarint(b, e.NextFile)
	}
	if e.HasLastSeq {
		b = putUvarint(b, tagLastSeq)
		b = putUvarint(b, e.LastSeq)
	}
	for _, a := range e.Added {
		b = putUvarint(b, tagAddFile)
		b = putUvarint(b, uint64(a.Level))
		b = putUvarint(b, a.Meta.Num)
		b = putUvarint(b, uint64(a.Meta.Size))
		b = putUvarint(b, uint64(a.Meta.Entries))
		b = putBytes(b, a.Meta.Smallest)
		b = putBytes(b, a.Meta.Largest)
	}
	for _, d := range e.Deleted {
		b = putUvarint(b, tagDeleteFile)
		b = putUvarint(b, uint64(d.Level))
		b = putUvarint(b, d.Num)
	}
	return b
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("manifest: truncated edit")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) bytes() []byte {
	n := int(d.uvarint())
	if d.err != nil {
		return nil
	}
	if n > len(d.b) {
		d.err = fmt.Errorf("manifest: truncated bytes field")
		return nil
	}
	v := append([]byte(nil), d.b[:n]...)
	d.b = d.b[n:]
	return v
}

// DecodeEdit parses an encoded edit.
func DecodeEdit(b []byte) (*VersionEdit, error) {
	e := &VersionEdit{}
	d := &decoder{b: b}
	for len(d.b) > 0 && d.err == nil {
		switch tag := d.uvarint(); tag {
		case tagLogNum:
			e.HasLogNum, e.LogNum = true, d.uvarint()
		case tagNextFile:
			e.HasNextFile, e.NextFile = true, d.uvarint()
		case tagLastSeq:
			e.HasLastSeq, e.LastSeq = true, d.uvarint()
		case tagAddFile:
			var a AddedFile
			a.Level = int(d.uvarint())
			a.Meta.Num = d.uvarint()
			a.Meta.Size = int64(d.uvarint())
			a.Meta.Entries = int(d.uvarint())
			a.Meta.Smallest = d.bytes()
			a.Meta.Largest = d.bytes()
			e.Added = append(e.Added, a)
		case tagDeleteFile:
			var del DeletedFile
			del.Level = int(d.uvarint())
			del.Num = d.uvarint()
			e.Deleted = append(e.Deleted, del)
		default:
			return nil, fmt.Errorf("manifest: unknown tag %d", tag)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return e, nil
}

// Version is an immutable snapshot of the level layout. Levels >= 1 hold
// files sorted by smallest key with disjoint user-key ranges; L0 files may
// overlap and are ordered newest-last (by file number).
type Version struct {
	Levels [NumLevels][]*FileMeta
}

func (v *Version) clone() *Version {
	nv := &Version{}
	for i := range v.Levels {
		nv.Levels[i] = append([]*FileMeta(nil), v.Levels[i]...)
	}
	return nv
}

// NumFiles counts all live tables.
func (v *Version) NumFiles() int {
	n := 0
	for _, l := range v.Levels {
		n += len(l)
	}
	return n
}

// LevelSize sums file sizes on a level.
func (v *Version) LevelSize(level int) int64 {
	var s int64
	for _, f := range v.Levels[level] {
		s += f.Size
	}
	return s
}

// Set owns the current Version and the MANIFEST log.
type Set struct {
	mu      sync.Mutex
	fs      vfs.FS
	dir     string
	log     *wal.Writer
	current *Version

	LogNum   uint64
	NextFile uint64
	LastSeq  uint64
}

// Open loads (or creates) the version set in dir.
func Open(fs vfs.FS, dir string) (*Set, error) {
	s := &Set{fs: fs, dir: dir, current: &Version{}, NextFile: 1}
	name := dir + "/MANIFEST"
	if fs.Exists(name) {
		f, err := fs.Open(name)
		if err != nil {
			return nil, err
		}
		recs, err := wal.ReadAll(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			edit, err := DecodeEdit(r.Payload)
			if err != nil {
				return nil, err
			}
			s.apply(edit)
		}
	}
	// Start a fresh manifest seeded with a snapshot of the replayed
	// state, then atomically swap it in.
	if err := s.rotateLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// rotateLocked rewrites the MANIFEST as one snapshot edit of the current
// in-memory state and atomically swaps it in. Writing to a temporary name
// first means a crash (or failure) mid-rewrite leaves the old MANIFEST
// intact. Callers must hold s.mu (or, in Open, have exclusive access).
func (s *Set) rotateLocked() error {
	name := s.dir + "/MANIFEST"
	tmp := name + ".new"
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	log := wal.NewWriter(f, wal.Options{SyncOnCommit: true})
	if err := log.Append(0, s.snapshotEdit().Encode()); err != nil {
		log.Close()
		return err
	}
	if err := s.fs.Rename(tmp, name); err != nil {
		log.Close()
		return err
	}
	if s.log != nil {
		// Best effort: the old log file has already been replaced in the
		// namespace, and may be tainted by the very failure that prompted
		// this rotation.
		s.log.Close()
	}
	s.log = log
	return nil
}

// Rotate rewrites the MANIFEST as a fresh snapshot of the current state,
// replacing the old log file. Recovery code calls it after a failed
// LogAndApply: the old log may carry a torn tail (stranding later edits
// behind an unreadable record) or a record of unknown durability (which a
// blind retry would double-apply at replay), so the only safe way to keep
// appending edits is to start from a clean snapshot.
func (s *Set) Rotate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rotateLocked()
}

// SnapshotEdit returns the entire current state (log number, file-number
// allocator, last sequence, and every live file) as one edit, captured
// atomically. Checkpoints encode it as the trimmed MANIFEST of a backup
// image.
func (s *Set) SnapshotEdit() *VersionEdit {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotEdit()
}

// snapshotEdit captures the entire current state as one edit.
func (s *Set) snapshotEdit() *VersionEdit {
	e := &VersionEdit{
		HasLogNum: true, LogNum: s.LogNum,
		HasNextFile: true, NextFile: s.NextFile,
		HasLastSeq: true, LastSeq: s.LastSeq,
	}
	for level, files := range s.current.Levels {
		for _, f := range files {
			e.Added = append(e.Added, AddedFile{Level: level, Meta: *f})
		}
	}
	return e
}

func (s *Set) apply(e *VersionEdit) {
	if e.HasLogNum {
		s.LogNum = e.LogNum
	}
	if e.HasNextFile && e.NextFile > s.NextFile {
		s.NextFile = e.NextFile
	}
	if e.HasLastSeq && e.LastSeq > s.LastSeq {
		s.LastSeq = e.LastSeq
	}
	if len(e.Added) == 0 && len(e.Deleted) == 0 {
		return
	}
	nv := s.current.clone()
	for _, d := range e.Deleted {
		files := nv.Levels[d.Level]
		for i, f := range files {
			if f.Num == d.Num {
				nv.Levels[d.Level] = append(append([]*FileMeta(nil), files[:i]...), files[i+1:]...)
				break
			}
		}
	}
	for _, a := range e.Added {
		meta := a.Meta
		nv.Levels[a.Level] = append(nv.Levels[a.Level], &meta)
	}
	for level := range nv.Levels {
		files := nv.Levels[level]
		if level == 0 {
			// L0: order by file number (age), newest last.
			sort.Slice(files, func(i, j int) bool { return files[i].Num < files[j].Num })
		} else {
			sort.Slice(files, func(i, j int) bool {
				return ikey.Compare(files[i].Smallest, files[j].Smallest) < 0
			})
		}
	}
	s.current = nv
}

// LogAndApply durably records the edit and applies it to the current
// version.
func (s *Set) LogAndApply(e *VersionEdit) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.log.Append(0, e.Encode()); err != nil {
		return err
	}
	s.apply(e)
	return nil
}

// Current returns the current immutable version. Callers must not mutate.
func (s *Set) Current() *Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current
}

// MarkFileNumUsed advances the file-number allocator past num. Recovery
// calls it for every file found on disk: allocations made by the crashed
// process may never have been persisted through an edit, and reusing such
// a number would truncate a surviving file (e.g. the live WAL).
func (s *Set) MarkFileNumUsed(num uint64) {
	s.mu.Lock()
	if num >= s.NextFile {
		s.NextFile = num + 1
	}
	s.mu.Unlock()
}

// NewFileNum allocates a file number.
func (s *Set) NewFileNum() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.NextFile
	s.NextFile++
	return n
}

// Close closes the MANIFEST log.
func (s *Set) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Close()
}
