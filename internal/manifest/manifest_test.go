package manifest

import (
	"testing"
	"testing/quick"

	"p2kvs/internal/ikey"
	"p2kvs/internal/vfs"
)

func fm(num uint64, lo, hi string) FileMeta {
	return FileMeta{
		Num: num, Size: 1000, Entries: 10,
		Smallest: ikey.Make([]byte(lo), 1, ikey.KindSet),
		Largest:  ikey.Make([]byte(hi), 1, ikey.KindSet),
	}
}

func TestEditEncodeDecodeRoundTrip(t *testing.T) {
	e := &VersionEdit{
		HasLogNum: true, LogNum: 42,
		HasNextFile: true, NextFile: 100,
		HasLastSeq: true, LastSeq: 999,
		Added:   []AddedFile{{Level: 1, Meta: fm(7, "a", "m")}, {Level: 0, Meta: fm(8, "b", "z")}},
		Deleted: []DeletedFile{{Level: 2, Num: 3}},
	}
	got, err := DecodeEdit(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.LogNum != 42 || got.NextFile != 100 || got.LastSeq != 999 {
		t.Fatalf("scalar fields: %+v", got)
	}
	if len(got.Added) != 2 || got.Added[0].Meta.Num != 7 || got.Added[1].Level != 0 {
		t.Fatalf("added: %+v", got.Added)
	}
	if len(got.Deleted) != 1 || got.Deleted[0].Num != 3 {
		t.Fatalf("deleted: %+v", got.Deleted)
	}
	if string(ikey.UserKey(got.Added[0].Meta.Smallest)) != "a" {
		t.Fatalf("smallest = %q", got.Added[0].Meta.Smallest)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeEdit([]byte{0xff, 0xff}); err == nil {
		t.Fatal("garbage must not decode")
	}
}

func TestQuickEditRoundTrip(t *testing.T) {
	fn := func(logNum, nextFile, lastSeq uint64, levels []uint8, nums []uint64) bool {
		e := &VersionEdit{
			HasLogNum: true, LogNum: logNum,
			HasNextFile: true, NextFile: nextFile,
			HasLastSeq: true, LastSeq: lastSeq,
		}
		n := len(levels)
		if len(nums) < n {
			n = len(nums)
		}
		for i := 0; i < n; i++ {
			e.Deleted = append(e.Deleted, DeletedFile{Level: int(levels[i] % NumLevels), Num: nums[i]})
		}
		got, err := DecodeEdit(e.Encode())
		if err != nil {
			return false
		}
		if got.LogNum != logNum || got.NextFile != nextFile || got.LastSeq != lastSeq {
			return false
		}
		if len(got.Deleted) != n {
			return false
		}
		for i := range got.Deleted {
			if got.Deleted[i] != e.Deleted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSetApplyAndPersist(t *testing.T) {
	fs := vfs.NewMem()
	s, err := Open(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	if n := s.NewFileNum(); n != 1 {
		t.Fatalf("first file num = %d", n)
	}

	err = s.LogAndApply(&VersionEdit{
		HasLastSeq: true, LastSeq: 10,
		HasNextFile: true, NextFile: 5,
		Added: []AddedFile{{Level: 0, Meta: fm(2, "a", "m")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.LogAndApply(&VersionEdit{
		Added:   []AddedFile{{Level: 1, Meta: fm(3, "a", "z")}},
		Deleted: []DeletedFile{{Level: 0, Num: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := s.Current()
	if len(v.Levels[0]) != 0 || len(v.Levels[1]) != 1 || v.Levels[1][0].Num != 3 {
		t.Fatalf("levels: L0=%d L1=%d", len(v.Levels[0]), len(v.Levels[1]))
	}
	if v.NumFiles() != 1 || v.LevelSize(1) != 1000 {
		t.Fatalf("NumFiles=%d LevelSize=%d", v.NumFiles(), v.LevelSize(1))
	}
	s.Close()

	// Reopen: state must be reconstructed.
	s2, err := Open(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.LastSeq != 10 {
		t.Fatalf("LastSeq = %d", s2.LastSeq)
	}
	if s2.NextFile < 5 {
		t.Fatalf("NextFile = %d", s2.NextFile)
	}
	v2 := s2.Current()
	if len(v2.Levels[1]) != 1 || v2.Levels[1][0].Num != 3 {
		t.Fatal("level layout lost across reopen")
	}
}

func TestLevelOrdering(t *testing.T) {
	fs := vfs.NewMem()
	s, _ := Open(fs, "db")
	defer s.Close()
	s.LogAndApply(&VersionEdit{Added: []AddedFile{
		{Level: 1, Meta: fm(5, "m", "r")},
		{Level: 1, Meta: fm(6, "a", "c")},
		{Level: 0, Meta: fm(9, "a", "z")},
		{Level: 0, Meta: fm(7, "a", "z")},
	}})
	v := s.Current()
	// L1 sorted by smallest key.
	if v.Levels[1][0].Num != 6 || v.Levels[1][1].Num != 5 {
		t.Fatalf("L1 order: %d,%d", v.Levels[1][0].Num, v.Levels[1][1].Num)
	}
	// L0 sorted by file number (age).
	if v.Levels[0][0].Num != 7 || v.Levels[0][1].Num != 9 {
		t.Fatalf("L0 order: %d,%d", v.Levels[0][0].Num, v.Levels[0][1].Num)
	}
}

func TestOverlaps(t *testing.T) {
	f := fm(1, "c", "f")
	cases := []struct {
		lo, hi string
		want   bool
	}{
		{"a", "b", false},
		{"a", "c", true},
		{"d", "e", true},
		{"f", "z", true},
		{"g", "z", false},
	}
	for _, c := range cases {
		if got := f.Overlaps([]byte(c.lo), []byte(c.hi)); got != c.want {
			t.Fatalf("Overlaps(%q,%q) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
	if !f.Overlaps(nil, nil) {
		t.Fatal("open bounds must overlap")
	}
}

func TestVersionCloneIsolation(t *testing.T) {
	fs := vfs.NewMem()
	s, _ := Open(fs, "db")
	defer s.Close()
	s.LogAndApply(&VersionEdit{Added: []AddedFile{{Level: 1, Meta: fm(1, "a", "b")}}})
	v1 := s.Current()
	s.LogAndApply(&VersionEdit{Deleted: []DeletedFile{{Level: 1, Num: 1}}})
	// v1 must still see the file (immutable snapshot).
	if len(v1.Levels[1]) != 1 {
		t.Fatal("old version mutated by later edit")
	}
	if len(s.Current().Levels[1]) != 0 {
		t.Fatal("delete not applied")
	}
}
