package manifest

import "testing"

// FuzzDecodeEdit: manifest records come off disk; arbitrary bytes must
// decode to an error or a well-formed edit, never panic.
func FuzzDecodeEdit(f *testing.F) {
	e := &VersionEdit{
		HasLogNum: true, LogNum: 3,
		Added:   []AddedFile{{Level: 1, Meta: fm(7, "a", "m")}},
		Deleted: []DeletedFile{{Level: 2, Num: 9}},
	}
	f.Add(e.Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x01})
	valid := e.Encode()
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeEdit(data)
		if err != nil {
			return
		}
		// Decoded edits must re-encode and re-decode stably.
		if _, err := DecodeEdit(got.Encode()); err != nil {
			t.Fatalf("re-decode of re-encoded edit failed: %v", err)
		}
	})
}
