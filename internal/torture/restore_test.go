package torture

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"p2kvs/internal/btreekv"
	"p2kvs/internal/checkpoint"
	"p2kvs/internal/core"
	"p2kvs/internal/kv"
	"p2kvs/internal/kvell"
	"p2kvs/internal/lsm"
	"p2kvs/internal/vfs"
)

// The restore-equivalence dimension: a store run under fault injection
// and crash cycles is periodically checkpointed; every checkpoint must
// restore — into a completely fresh filesystem — to a store whose ordered
// dump is byte-identical to the live store's dump at barrier time, and
// that dump must itself be consistent with the shadow model. One cycle
// per run also fails a checkpoint partway through (fault-injected backup
// IO, then a crash): the live store and the previous backup generation
// must both survive the wreck.

type storeCfg struct {
	name  string
	mk    func(fs vfs.FS) core.EngineFactory
	menu  []vfs.Rule
	crash bool
}

func lsmStoreFactory(preset func(vfs.FS) lsm.Options) func(fs vfs.FS) core.EngineFactory {
	return func(fs vfs.FS) core.EngineFactory {
		return func(id int, filter func(uint64) bool) (kv.Engine, error) {
			o := preset(fs)
			o.MemTableSize = 16 << 10
			o.BaseLevelSize = 64 << 10
			o.TargetFileSize = 16 << 10
			o.SyncWAL = true
			return lsm.OpenWith(fmt.Sprintf("st/inst-%02d", id), o, lsm.OpenOptions{RecoverFilter: filter})
		}
	}
}

func storeConfigs() []storeCfg {
	return []storeCfg{
		{name: "lsm-rocksdb", mk: lsmStoreFactory(lsm.RocksDBOptions), menu: lsmMenu, crash: true},
		{name: "lsm-parallel", mk: lsmStoreFactory(parallelCompaction), menu: lsmMenu, crash: true},
		{name: "lsm-leveldb", mk: lsmStoreFactory(lsm.LevelDBOptions), menu: lsmMenu, crash: true},
		{name: "lsm-pebblesdb", mk: lsmStoreFactory(lsm.PebblesDBOptions), menu: lsmMenu, crash: true},
		{
			name: "btreekv",
			mk: func(fs vfs.FS) core.EngineFactory {
				return func(id int, _ func(uint64) bool) (kv.Engine, error) {
					return btreekv.Open(fmt.Sprintf("st/inst-%02d", id),
						btreekv.Options{FS: fs, SyncWAL: true, CheckpointBytes: 8 << 10})
				}
			},
			menu: []vfs.Rule{
				{Op: vfs.OpSync, Prob: 0.05},
			},
			crash: true,
		},
		{
			name: "kvell",
			mk: func(fs vfs.FS) core.EngineFactory {
				return func(id int, _ func(uint64) bool) (kv.Engine, error) {
					return kvell.Open(fmt.Sprintf("st/inst-%02d", id),
						kvell.Options{FS: fs, Workers: 1, QueueDepth: 16})
				}
			},
			menu: []vfs.Rule{
				{Op: vfs.OpWrite, Prob: 0.05},
			},
			crash: false,
		},
	}
}

func TestRestoreEquivalenceTorture(t *testing.T) {
	nOps := 1200
	if testing.Short() {
		nOps = 600
	}
	for _, cfg := range storeConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			restoreTorture(t, cfg, nOps, 0xBAC0+int64(len(cfg.name)))
		})
	}
}

func restoreTorture(t *testing.T, cfg storeCfg, nOps int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	mem := vfs.NewMem()
	ffs := vfs.NewFaultSeeded(mem, seed)

	open := func() (*core.Store, error) {
		opts := core.DefaultOptions(cfg.mk(ffs))
		opts.Workers = 3
		opts.TxnFS = ffs
		opts.TxnDir = "st/txn"
		opts.EngineName = cfg.name
		return core.Open(opts)
	}
	s, err := open()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.Close() }()

	const poolSize = 120
	pool := make([]string, poolSize)
	shadow := model{}
	for i := range pool {
		pool[i] = fmt.Sprintf("key-%03d", i)
		shadow[pool[i]] = map[string]bool{absent: true}
	}

	armed := false
	heal := func() {
		ffs.ClearRules()
		armed = false
		if err := s.Resume(); err != nil {
			t.Fatalf("Resume: %v", err)
		}
	}

	// settle makes strict restore-equality checkable: a torn WAL record
	// from a failed write may sit in the live memtable yet legally vanish
	// from a log replay (the write was never acknowledged). Flushing after
	// heal collapses that ambiguity into SSTs, so the checkpoint image and
	// the live store describe the same state.
	settle := func(tag string) {
		heal()
		if err := s.Flush(); err != nil {
			t.Fatalf("%s: Flush: %v", tag, err)
		}
	}

	// dumpLive validates the live ordered dump against the shadow model
	// and collapses every ambiguity to what the store actually holds: once
	// observed, the state can no longer change spontaneously.
	dumpLive := func(tag string) []core.Pair {
		pairs, err := s.Range(nil, []byte("\xff"))
		if err != nil {
			t.Fatalf("%s: Range: %v", tag, err)
		}
		seen := map[string]bool{}
		for _, p := range pairs {
			k, v := string(p.Key), string(p.Value)
			set, known := shadow[k]
			if !known {
				t.Fatalf("%s: dump surfaced unknown key %q", tag, k)
			}
			if !set[v] {
				t.Fatalf("%s: dump value %q for %s not in possibility set %v", tag, v, k, keys(set))
			}
			shadow.collapse(k, v)
			seen[k] = true
		}
		for k, set := range shadow {
			if seen[k] {
				continue
			}
			if !set[absent] {
				t.Fatalf("%s: key %s missing from dump but definitely present (set %v)", tag, k, keys(set))
			}
			shadow.collapse(k, absent)
		}
		return pairs
	}

	// verifyRestore materializes bakDir into a brand-new MemFS, opens a
	// store from the image with a fault-free factory, and requires its
	// ordered dump to be byte-identical to want.
	verifyRestore := func(tag, bakDir string, want []core.Pair) {
		dst := vfs.NewMem()
		place := func(worker int, rel string) string {
			if worker < 0 {
				return "st/txn/" + rel
			}
			return fmt.Sprintf("st/inst-%02d/%s", worker, rel)
		}
		if _, err := checkpoint.Restore(mem, bakDir, dst, place); err != nil {
			t.Fatalf("%s: Restore: %v", tag, err)
		}
		ropts := core.DefaultOptions(cfg.mk(dst))
		ropts.Workers = 3
		ropts.TxnFS = dst
		ropts.TxnDir = "st/txn"
		r, err := core.Open(ropts)
		if err != nil {
			t.Fatalf("%s: open restored image: %v", tag, err)
		}
		defer r.Close()
		got, err := r.Range(nil, []byte("\xff"))
		if err != nil {
			t.Fatalf("%s: restored Range: %v", tag, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: restored dump has %d pairs, live had %d", tag, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
				t.Fatalf("%s: restored dump diverges at %d: %q=%q vs %q=%q",
					tag, i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
			}
		}
	}

	var lastGood []core.Pair // live dump at the last successful checkpoint
	checkpoints := 0
	crashes := 0
	const cycle = 200 // ops between verification cycles

	for i := 0; i < nOps; i++ {
		switch {
		case !armed && (i/40)%3 == 1:
			for _, r := range cfg.menu {
				ffs.Inject(r)
			}
			armed = true
		case armed && (i/40)%3 != 1:
			heal()
		}

		if i%cycle == cycle-1 {
			tag := fmt.Sprintf("cycle@%d", i)
			settle(tag)

			if checkpoints == 2 {
				// Mid-checkpoint wreck: backup IO through the fault layer
				// with every write failing, so the checkpoint dies partway
				// into the set that already holds two good generations.
				ffs.Inject(vfs.Rule{Op: vfs.OpWrite, Prob: 1})
				ffs.Inject(vfs.Rule{Op: vfs.OpCreate, Prob: 1})
				ffs.Inject(vfs.Rule{Op: vfs.OpLink, Prob: 1})
				if _, err := s.Checkpoint(ffs, "bak"); err == nil {
					t.Fatalf("%s: checkpoint with all backup IO failing succeeded", tag)
				}
				heal()
				if cfg.crash {
					mem.Crash()
					_ = s.Close()
					mem.Restart()
					if s, err = open(); err != nil {
						t.Fatalf("%s: reopen after mid-checkpoint crash: %v", tag, err)
					}
					crashes++
				}
				// The live store keeps serving...
				if err := s.Put([]byte(pool[0]), []byte("post-wreck")); err == nil {
					shadow.collapse(pool[0], "post-wreck")
				} else {
					shadow.admit(pool[0], "post-wreck")
				}
				// ...and the previous backup generation is untouched.
				verifyRestore(tag+"/prev-generation", "bak", lastGood)
				checkpoints++ // consume the wreck slot so it runs once
				continue
			}

			if cfg.crash && checkpoints == 1 {
				mem.Crash()
				_ = s.Close()
				mem.Restart()
				if s, err = open(); err != nil {
					t.Fatalf("%s: reopen after crash: %v", tag, err)
				}
				crashes++
			}

			live := dumpLive(tag)
			if _, err := s.Checkpoint(mem, "bak"); err != nil {
				t.Fatalf("%s: Checkpoint: %v", tag, err)
			}
			verifyRestore(tag, "bak", live)
			lastGood = live
			checkpoints++
		}

		k := pool[rng.Intn(poolSize)]
		switch p := rng.Intn(100); {
		case p < 45: // put
			v := fmt.Sprintf("v%06d", i)
			if err := s.Put([]byte(k), []byte(v)); err != nil {
				shadow.admit(k, v)
			} else {
				shadow.collapse(k, v)
			}
		case p < 60: // delete
			if err := s.Delete([]byte(k)); err != nil {
				shadow.admit(k, absent)
			} else {
				shadow.collapse(k, absent)
			}
		case p < 80: // cross-partition transactional batch
			var b kv.Batch
			ks := make([]string, 4)
			vs := make([]string, 4)
			for j := range ks {
				ks[j] = pool[rng.Intn(poolSize)]
				vs[j] = fmt.Sprintf("t%06d-%d", i, j)
				b.Put([]byte(ks[j]), []byte(vs[j]))
			}
			if err := s.Write(&b); err != nil {
				for j := range ks {
					shadow.admit(ks[j], vs[j])
				}
			} else {
				// Later entries in a batch overwrite earlier ones for the
				// same key; collapse in order.
				for j := range ks {
					shadow.collapse(ks[j], vs[j])
				}
			}
		default: // read
			v, err := s.Get([]byte(k))
			switch {
			case err == nil:
				if !shadow[k][string(v)] {
					t.Fatalf("op %d: Get(%s) = %q, not in %v", i, k, v, keys(shadow[k]))
				}
				shadow.collapse(k, string(v))
			case err == kv.ErrNotFound:
				if !shadow[k][absent] {
					t.Fatalf("op %d: Get(%s) absent; acked value lost (set %v)", i, k, keys(shadow[k]))
				}
				shadow.collapse(k, absent)
			default:
				// Store-level failures (degraded shard, shed) are legal
				// under injection; ambiguity is already tracked by writes.
			}
		}
	}

	// Final cycle: heal, optional crash, checkpoint, restore, compare.
	heal()
	if cfg.crash {
		mem.Crash()
		_ = s.Close()
		mem.Restart()
		if s, err = open(); err != nil {
			t.Fatalf("final reopen: %v", err)
		}
		crashes++
	}
	live := dumpLive("final")
	if _, err := s.Checkpoint(mem, "bak"); err != nil {
		t.Fatalf("final Checkpoint: %v", err)
	}
	verifyRestore("final", "bak", live)
	checkpoints++

	t.Logf("%d checkpoints, %d crashes, %d injected faults", checkpoints, crashes, ffs.InjectedFaults())
	if ffs.InjectedFaults() == 0 {
		t.Fatal("no fault ever fired — the torture exercised nothing")
	}
	if checkpoints < 3 {
		t.Fatalf("only %d checkpoint cycles ran", checkpoints)
	}
}
