package torture

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"p2kvs/internal/btreekv"
	"p2kvs/internal/kv"
	"p2kvs/internal/kvell"
	"p2kvs/internal/lsm"
	"p2kvs/internal/vfs"
)

// TestDiskFullTorture drives every engine family through repeated
// disk-full episodes on a QuotaFS, checking the full degraded-state
// contract each round:
//
//	healthy writes → budget shrunk to current usage → engine degrades to
//	read-only (ErrDegraded on writes, reads still serving the shadow
//	model) → budget grows → the space watchdog auto-resumes with no
//	Resume call from the test → all keys verify against the model.
//
// Failed writes admit ambiguity exactly as in the main torture run: a
// put that failed mid-episode may or may not have reached the journal,
// so the key legally holds either value afterwards.
func TestDiskFullTorture(t *testing.T) {
	rounds := 4
	if testing.Short() {
		rounds = 2
	}
	for _, cfg := range diskFullConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			diskFullTorture(t, cfg, rounds)
		})
	}
}

type diskFullCfg struct {
	name string
	open func(fs vfs.FS) (kv.Engine, error)
}

func diskFullConfigs() []diskFullCfg {
	return []diskFullCfg{
		{name: "lsm-rocksdb", open: lsmOpen(lsm.RocksDBOptions)},
		{
			name: "btreekv",
			open: func(fs vfs.FS) (kv.Engine, error) {
				return btreekv.Open("db", btreekv.Options{FS: fs, SyncWAL: true, CheckpointBytes: 8 << 10})
			},
		},
		{
			// KVell has no log and nothing to GC; its disk-full episodes
			// come from slab-tail extension, so every round writes fresh
			// keys (in-place updates are free on a quota'd device).
			name: "kvell",
			open: func(fs vfs.FS) (kv.Engine, error) {
				return kvell.Open("db", kvell.Options{FS: fs, Workers: 2, QueueDepth: 16})
			},
		},
	}
}

func diskFullTorture(t *testing.T, cfg diskFullCfg, rounds int) {
	qfs := vfs.NewQuota(vfs.NewMem(), -1)
	eng, err := cfg.open(qfs)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	hr, ok := eng.(kv.HealthReporter)
	if !ok {
		t.Fatalf("%s does not report health", cfg.name)
	}

	shadow := model{}
	seq := 0
	// nextKey returns a fresh, never-written key: new keys force file
	// extension on every engine, so the shrunken budget always bites.
	nextKey := func() string {
		seq++
		return fmt.Sprintf("df-%06d", seq)
	}
	put := func(k, v string) error {
		if _, ok := shadow[k]; !ok {
			shadow[k] = map[string]bool{absent: true}
		}
		err := eng.Put([]byte(k), []byte(v))
		if err != nil {
			shadow.admit(k, v)
		} else {
			shadow.collapse(k, v)
		}
		return err
	}
	// verify checks every key the run has touched against the shadow
	// model and collapses the ambiguity to the observed value. degraded
	// says whether a Get error other than ErrNotFound is acceptable —
	// it never is: reads must serve in every state.
	verify := func(phase string) {
		for k, possible := range shadow {
			v, err := eng.Get([]byte(k))
			switch {
			case errors.Is(err, kv.ErrNotFound):
				if !possible[absent] {
					t.Fatalf("%s: Get(%s) = not-found, but absent is impossible (possible %v)", phase, k, possible)
				}
				shadow.collapse(k, absent)
			case err != nil:
				t.Fatalf("%s: Get(%s) failed — reads must serve in every state: %v", phase, k, err)
			case !possible[string(v)]:
				t.Fatalf("%s: Get(%s) = %q, outside possibility set %v", phase, k, v, possible)
			default:
				shadow.collapse(k, string(v))
			}
		}
	}

	val := func(round, i int) string { return fmt.Sprintf("r%02d-%04d-%s", round, i, string(make([]byte, 200))) }

	for round := 0; round < rounds; round++ {
		// Phase 1: healthy writes with the budget open.
		for i := 0; i < 60; i++ {
			if err := put(nextKey(), val(round, i)); err != nil {
				t.Fatalf("round %d: healthy put failed: %v", round, err)
			}
		}
		verify(fmt.Sprintf("round %d healthy", round))

		// Phase 2: the device fills — shrink the budget to exactly what
		// is used, so the next extension hits ENOSPC. Keep writing until
		// the engine settles into disk-full read-only mode; each failed
		// put admits ambiguity for its key.
		qfs.SetBudget(qfs.Used())
		deadline := time.Now().Add(10 * time.Second)
		for {
			_ = put(nextKey(), val(round, -1))
			if h := hr.Health(); h.State == kv.StateReadOnly && h.DiskFull {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: engine never entered disk-full read-only mode: %+v", round, hr.Health())
			}
			time.Sleep(time.Millisecond)
		}
		// Degraded contract: writes fail fast with ErrDegraded...
		if err := put(nextKey(), "blocked"); !errors.Is(err, kv.ErrDegraded) {
			t.Fatalf("round %d: write while disk-full: got %v, want ErrDegraded", round, err)
		}
		// ...while reads keep serving everything the model says is there.
		verify(fmt.Sprintf("round %d degraded", round))
		if h := hr.Health(); h.DiskFullEvents < int64(round+1) {
			t.Fatalf("round %d: DiskFullEvents = %d, want >= %d", round, h.DiskFullEvents, round+1)
		}

		// Phase 3: space comes back; the watchdog must resume writes on
		// its own — the test never calls Resume.
		qfs.SetBudget(-1)
		deadline = time.Now().Add(10 * time.Second)
		for {
			if err := put(nextKey(), val(round, -2)); err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: writes never resumed after space freed: %+v", round, hr.Health())
			}
			time.Sleep(5 * time.Millisecond)
		}
		if h := hr.Health(); h.AutoResumes < int64(round+1) {
			t.Fatalf("round %d: AutoResumes = %d, want >= %d", round, h.AutoResumes, round+1)
		}
		verify(fmt.Sprintf("round %d resumed", round))
	}
}
