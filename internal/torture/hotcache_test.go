package torture

import (
	"fmt"
	"math/rand"
	"testing"

	"p2kvs/internal/btreekv"
	"p2kvs/internal/core"
	"p2kvs/internal/kv"
	"p2kvs/internal/lsm"
	"p2kvs/internal/vfs"
)

// The hot-cache coherence dimension: the same shadow-model torture the
// store already survives — fault windows, crash/reopen cycles, ambiguous
// failed writes — but with the hot-key read cache enabled and every read
// going through it. A stale cache entry surfaces in one of two ways, and
// both are test failures:
//
//   - a Get returns a value outside the key's possibility set, or
//     contradicts an earlier collapsed observation;
//   - the byte-equivalence sweep at each settle cycle disagrees: the
//     ordered Range dump reads engine truth (scans bypass the cache),
//     and a per-key Get pass through the cache must match it exactly.
//
// The cache budget is deliberately tiny so eviction, refill and
// invalidation all churn constantly, and reads are skewed at a hot
// subset so hits actually happen.

func hotCacheConfigs() []storeCfg {
	return []storeCfg{
		{name: "lsm-rocksdb", mk: lsmStoreFactory(lsm.RocksDBOptions), menu: lsmMenu, crash: true},
		{
			name: "btreekv",
			mk: func(fs vfs.FS) core.EngineFactory {
				return func(id int, _ func(uint64) bool) (kv.Engine, error) {
					return btreekv.Open(fmt.Sprintf("st/inst-%02d", id),
						btreekv.Options{FS: fs, SyncWAL: true, CheckpointBytes: 8 << 10})
				}
			},
			menu: []vfs.Rule{
				{Op: vfs.OpSync, Prob: 0.05},
			},
			crash: true,
		},
	}
}

func TestHotCacheShadowTorture(t *testing.T) {
	nOps := 1600
	if testing.Short() {
		nOps = 800
	}
	for _, cfg := range hotCacheConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			hotCacheTorture(t, cfg, nOps, 0xCAC4E+int64(len(cfg.name)))
		})
	}
}

func hotCacheTorture(t *testing.T, cfg storeCfg, nOps int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	mem := vfs.NewMem()
	ffs := vfs.NewFaultSeeded(mem, seed)

	open := func() (*core.Store, error) {
		opts := core.DefaultOptions(cfg.mk(ffs))
		opts.Workers = 3
		opts.TxnFS = ffs
		opts.TxnDir = "st/txn"
		opts.EngineName = cfg.name
		// Tiny budget: eviction pressure is part of the dimension.
		opts.HotCacheBytes = 16 << 10
		return core.Open(opts)
	}
	s, err := open()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.Close() }()

	const poolSize = 120
	const hotSet = 12 // reads skew here: these keys live in the cache
	pool := make([]string, poolSize)
	shadow := model{}
	for i := range pool {
		pool[i] = fmt.Sprintf("key-%03d", i)
		shadow[pool[i]] = map[string]bool{absent: true}
	}
	pickKey := func() string {
		if rng.Intn(100) < 60 {
			return pool[rng.Intn(hotSet)]
		}
		return pool[rng.Intn(poolSize)]
	}

	armed := false
	heal := func() {
		ffs.ClearRules()
		armed = false
		if err := s.Resume(); err != nil {
			t.Fatalf("Resume: %v", err)
		}
	}

	// checkRead folds one read observation into the model; stale values
	// and lost acked writes fail here.
	checkRead := func(tag, k string, v []byte, err error) {
		switch {
		case err == nil:
			if !shadow[k][string(v)] {
				t.Fatalf("%s: Get(%s) = %q, not in possibility set %v (stale cache entry?)",
					tag, k, v, keys(shadow[k]))
			}
			shadow.collapse(k, string(v))
		case err == kv.ErrNotFound:
			if !shadow[k][absent] {
				t.Fatalf("%s: Get(%s) absent; acked value lost (set %v) (stale negative entry?)",
					tag, k, keys(shadow[k]))
			}
			shadow.collapse(k, absent)
		default:
			// Store-level failures (degraded shard, shed) are legal under
			// injection; ambiguity is already tracked by writes.
		}
	}

	// equivSweep is the byte-equivalence acceptance check: with faults
	// healed and no writes in flight, engine truth (the Range dump, which
	// bypasses the cache) and a per-key cached Get pass must agree on
	// every key, byte for byte.
	equivSweep := func(tag string) {
		pairs, err := s.Range(nil, []byte("\xff"))
		if err != nil {
			t.Fatalf("%s: Range: %v", tag, err)
		}
		live := map[string]string{}
		for _, p := range pairs {
			k, v := string(p.Key), string(p.Value)
			if !shadow[k][v] {
				t.Fatalf("%s: dump value %q for %s not in possibility set %v", tag, v, k, keys(shadow[k]))
			}
			shadow.collapse(k, v)
			live[k] = v
		}
		for k, set := range shadow {
			if _, ok := live[k]; ok {
				continue
			}
			if !set[absent] {
				t.Fatalf("%s: key %s missing from dump but definitely present (set %v)", tag, k, keys(set))
			}
			shadow.collapse(k, absent)
		}
		for _, k := range pool {
			v, err := s.Get([]byte(k))
			want, present := live[k]
			switch {
			case err == nil:
				if !present {
					t.Fatalf("%s: cached Get(%s) = %q but engine dump has no such key — stale positive entry", tag, k, v)
				}
				if string(v) != want {
					t.Fatalf("%s: cached Get(%s) = %q, engine dump holds %q — stale cache entry", tag, k, v, want)
				}
			case err == kv.ErrNotFound:
				if present {
					t.Fatalf("%s: cached Get(%s) absent but engine dump holds %q — stale negative entry", tag, k, want)
				}
			default:
				t.Fatalf("%s: healed Get(%s): %v", tag, k, err)
			}
		}
	}

	crashes := 0
	cycles := 0
	const cycle = 200

	for i := 0; i < nOps; i++ {
		switch {
		case !armed && (i/40)%3 == 1:
			for _, r := range cfg.menu {
				ffs.Inject(r)
			}
			armed = true
		case armed && (i/40)%3 != 1:
			heal()
		}

		if i%cycle == cycle-1 {
			tag := fmt.Sprintf("cycle@%d", i)
			heal()
			if cycles%2 == 1 && cfg.crash {
				// Crash and reopen: the cache dies with the process and is
				// rebuilt cold — it must never resurrect pre-crash state.
				// Flush first, like every store-level torture: a torn WAL
				// tail from a healed fault window may legally drop
				// unflushed records at replay; collapsing the memtables
				// into SSTs keeps the crash about the cache, not the WAL.
				if err := s.Flush(); err != nil {
					t.Fatalf("%s: pre-crash Flush: %v", tag, err)
				}
				mem.Crash()
				_ = s.Close()
				mem.Restart()
				if s, err = open(); err != nil {
					t.Fatalf("%s: reopen after crash: %v", tag, err)
				}
				crashes++
			}
			equivSweep(tag)
			cycles++
		}

		k := pickKey()
		switch p := rng.Intn(100); {
		case p < 30: // put
			v := fmt.Sprintf("v%06d", i)
			if err := s.Put([]byte(k), []byte(v)); err != nil {
				shadow.admit(k, v)
			} else {
				shadow.collapse(k, v)
			}
		case p < 40: // delete
			if err := s.Delete([]byte(k)); err != nil {
				shadow.admit(k, absent)
			} else {
				shadow.collapse(k, absent)
			}
		case p < 50: // cross-partition transactional batch
			var b kv.Batch
			ks := make([]string, 4)
			vs := make([]string, 4)
			for j := range ks {
				ks[j] = pickKey()
				vs[j] = fmt.Sprintf("t%06d-%d", i, j)
				b.Put([]byte(ks[j]), []byte(vs[j]))
			}
			if err := s.Write(&b); err != nil {
				for j := range ks {
					shadow.admit(ks[j], vs[j])
				}
			} else {
				for j := range ks {
					shadow.collapse(ks[j], vs[j])
				}
			}
		case p < 65: // multiget through the cache
			ks := make([][]byte, 4)
			for j := range ks {
				ks[j] = []byte(pickKey())
			}
			out, err := s.MultiGet(ks)
			if err != nil {
				break // legal under injection
			}
			for j, kb := range ks {
				if out[j] == nil {
					checkRead(fmt.Sprintf("op%d/multiget", i), string(kb), nil, kv.ErrNotFound)
				} else {
					checkRead(fmt.Sprintf("op%d/multiget", i), string(kb), out[j], nil)
				}
			}
		default: // read
			v, err := s.Get([]byte(k))
			checkRead(fmt.Sprintf("op%d", i), k, v, err)
		}
	}

	heal()
	equivSweep("final")

	snap := s.StatsSnapshot()
	t.Logf("%d cycles, %d crashes, %d injected faults; cache hits=%d neg=%d misses=%d fills=%d evictions=%d invalidations=%d",
		cycles, crashes, ffs.InjectedFaults(),
		snap.CacheHits, snap.CacheNegHits, snap.CacheMisses, snap.CacheFills, snap.CacheEvictions, snap.CacheInvalidations)
	if ffs.InjectedFaults() == 0 {
		t.Fatal("no fault ever fired — the torture exercised nothing")
	}
	if snap.CacheHits+snap.CacheNegHits == 0 {
		t.Fatal("the cache never served a hit — the torture exercised nothing")
	}
	if snap.CacheInvalidations == 0 {
		t.Fatal("no invalidation ever ran — the torture exercised nothing")
	}
}
