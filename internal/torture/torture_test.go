// Package torture randomly exercises every engine family under
// fault-injection (FaultFS) and crash/restart cycles (MemFS), checking the
// results against a shadow model that tracks, per key, the set of values
// the store may legitimately hold.
//
// The model's rules follow the acknowledgement contract:
//   - an acknowledged Put(k,v) collapses k's possibilities to {v};
//   - a FAILED Put(k,v) leaves k ambiguous — {old..., v} — because the
//     record may sit torn or unsynced in a journal and legally either
//     vanish or (before its log is retired) resurface at replay;
//   - an acknowledged Get collapses the ambiguity to the observed value:
//     once the operation that created the ambiguity has returned, the
//     user-visible value can no longer change spontaneously;
//   - a crash+restart never invalidates an acknowledged (synced) write
//     and never manufactures values outside the possibility set.
//
// Any Get outside the possibility set — lost ack or invented garbage —
// fails the test.
package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"p2kvs/internal/btreekv"
	"p2kvs/internal/kv"
	"p2kvs/internal/kvell"
	"p2kvs/internal/lsm"
	"p2kvs/internal/vfs"
)

const absent = "\x00absent\x00"

// model maps key -> set of possible values (absent included).
type model map[string]map[string]bool

func (m model) collapse(k, v string) { m[k] = map[string]bool{v: true} }
func (m model) admit(k, v string)    { m[k][v] = true }

type tortureCfg struct {
	name  string
	open  func(fs vfs.FS) (kv.Engine, error)
	menu  []vfs.Rule // armed/disarmed in windows during the run
	crash bool       // engine guarantees acked writes survive Crash/Restart
}

func lsmOpen(preset func(vfs.FS) lsm.Options) func(vfs.FS) (kv.Engine, error) {
	return func(fs vfs.FS) (kv.Engine, error) {
		o := preset(fs)
		o.MemTableSize = 16 << 10
		o.BaseLevelSize = 64 << 10
		o.TargetFileSize = 16 << 10
		o.SyncWAL = true // acked == durable, the property the model checks
		o.BgMaxRetries = 3
		o.BgBaseBackoff = time.Millisecond
		o.BgMaxBackoff = 4 * time.Millisecond
		return lsm.Open("db", o)
	}
}

// lsmMenu is the full fault menu: commit-sync failures, torn writes
// (WAL tails, SST builds, MANIFEST records), file-creation failures
// (flush outputs, WAL/MANIFEST rotation) and latency spikes.
var lsmMenu = []vfs.Rule{
	{Op: vfs.OpSync, Path: ".log", Prob: 0.05},
	{Op: vfs.OpWrite, Prob: 0.02, TornWrite: true},
	{Op: vfs.OpCreate, Prob: 0.02},
	{Op: vfs.OpAny, Prob: 0.05, DelayOnly: true, Delay: 200 * time.Microsecond},
}

// parallelCompaction tightens the triggers and widens the compaction pool
// so the run keeps several compactions of disjoint ranges in flight, with
// subcompactions splitting the merges — concurrent version installs under
// fault injection and crash cycles.
func parallelCompaction(fs vfs.FS) lsm.Options {
	o := lsm.RocksDBOptions(fs)
	o.MaxBackgroundCompactions = 3
	o.MaxSubCompactions = 2
	o.L0CompactionTrigger = 2
	o.L0SlowdownTrigger = 4
	o.L0StallTrigger = 8
	return o
}

func configs() []tortureCfg {
	return []tortureCfg{
		{name: "lsm-rocksdb", open: lsmOpen(lsm.RocksDBOptions), menu: lsmMenu, crash: true},
		{name: "lsm-parallel", open: lsmOpen(parallelCompaction), menu: lsmMenu, crash: true},
		{name: "lsm-leveldb", open: lsmOpen(lsm.LevelDBOptions), menu: lsmMenu, crash: true},
		{name: "lsm-pebblesdb", open: lsmOpen(lsm.PebblesDBOptions), menu: lsmMenu, crash: true},
		{
			name: "btreekv",
			open: func(fs vfs.FS) (kv.Engine, error) {
				return btreekv.Open("db", btreekv.Options{FS: fs, SyncWAL: true, CheckpointBytes: 8 << 10})
			},
			// Journal-sync failures taint the log and force the engine
			// through its checkpoint-based self-heal. No torn writes: the
			// engine has no retry machinery for checkpoint IO.
			menu: []vfs.Rule{
				{Op: vfs.OpSync, Prob: 0.05},
				{Op: vfs.OpAny, Prob: 0.05, DelayOnly: true, Delay: 200 * time.Microsecond},
			},
			crash: true,
		},
		{
			name: "kvell",
			open: func(fs vfs.FS) (kv.Engine, error) {
				return kvell.Open("db", kvell.Options{FS: fs, Workers: 2, QueueDepth: 16})
			},
			// Clean write errors only: KVell updates slots in place with
			// no log, so its contract gives no crash guarantee (no crash
			// cycles) and a torn in-place write is unrecoverable by
			// design.
			menu: []vfs.Rule{
				{Op: vfs.OpWrite, Prob: 0.05},
				{Op: vfs.OpAny, Prob: 0.05, DelayOnly: true, Delay: 200 * time.Microsecond},
			},
			crash: false,
		},
	}
}

func TestTorture(t *testing.T) {
	// -short trims the run for CI's overload-torture job: one seed and
	// fewer ops, but still several armed fault windows (50 of every 150
	// ops) and one crash cycle, so the "no fault ever fired" and
	// okOps >= nOps/2 assertions stay meaningful.
	seeds, nOps := []int64{0xC0FFEE, 7}, 1500
	if testing.Short() {
		seeds, nOps = seeds[:1], 600
	}
	for _, seed := range seeds {
		for _, cfg := range configs() {
			cfg, seed := cfg, seed
			t.Run(fmt.Sprintf("%s/seed=%d", cfg.name, seed), func(t *testing.T) {
				t.Parallel()
				torture(t, cfg, nOps, seed)
			})
		}
	}
}

func torture(t *testing.T, cfg tortureCfg, nOps int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	mem := vfs.NewMem()
	ffs := vfs.NewFaultSeeded(mem, seed)
	eng, err := cfg.open(ffs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { eng.Close() }()

	// Fixed key pool; every key starts definitely-absent.
	const poolSize = 150
	pool := make([]string, poolSize)
	shadow := model{}
	for i := range pool {
		pool[i] = fmt.Sprintf("key-%03d", i)
		shadow[pool[i]] = map[string]bool{absent: true}
	}

	// recover clears rules and resumes a degraded engine so the run
	// doesn't trivially drown in fail-fast errors.
	armed := false
	recover := func(err error) {
		if !errors.Is(err, kv.ErrDegraded) {
			if hr, ok := eng.(kv.HealthReporter); !ok || hr.Health().State != kv.StateReadOnly {
				return
			}
		}
		ffs.ClearRules()
		armed = false
		if r, ok := eng.(kv.Resumer); ok {
			if rerr := r.Resume(); rerr != nil {
				t.Fatalf("op %s: Resume failed: %v", err, rerr)
			}
		}
	}

	var okOps, failOps, crashes, consecFails int
	for i := 0; i < nOps; i++ {
		// Fault windows: armed for 50 ops out of every 150.
		switch {
		case !armed && (i/50)%3 == 1:
			for _, r := range cfg.menu {
				ffs.Inject(r)
			}
			armed = true
		case armed && (i/50)%3 != 1:
			ffs.ClearRules()
			armed = false
		}

		// Crash/restart cycle with verification-by-continuation: the
		// reopened engine must satisfy the same shadow model.
		if cfg.crash && i%400 == 399 {
			ffs.ClearRules()
			armed = false
			mem.Crash()
			_ = eng.Close()
			mem.Restart()
			if eng, err = cfg.open(ffs); err != nil {
				t.Fatalf("op %d: reopen after crash: %v", i, err)
			}
			crashes++
		}

		k := pool[rng.Intn(poolSize)]
		switch p := rng.Intn(100); {
		case p < 50: // put
			v := fmt.Sprintf("v%06d", i)
			if err := eng.Put([]byte(k), []byte(v)); err != nil {
				shadow.admit(k, v)
				failOps++
				consecFails++
				recover(err)
			} else {
				shadow.collapse(k, v)
				okOps++
				consecFails = 0
			}
		case p < 65: // delete
			if err := eng.Delete([]byte(k)); err != nil {
				shadow.admit(k, absent)
				failOps++
				consecFails++
				recover(err)
			} else {
				shadow.collapse(k, absent)
				okOps++
				consecFails = 0
			}
		case p < 95: // get
			v, err := eng.Get([]byte(k))
			switch {
			case err == nil:
				if !shadow[k][string(v)] {
					t.Fatalf("op %d: Get(%s) = %q, not in possibility set %v", i, k, v, keys(shadow[k]))
				}
				shadow.collapse(k, string(v))
				okOps++
				consecFails = 0
			case errors.Is(err, kv.ErrNotFound):
				if !shadow[k][absent] {
					t.Fatalf("op %d: Get(%s) reported absent; acked value lost (set %v)", i, k, keys(shadow[k]))
				}
				shadow.collapse(k, absent)
				okOps++
				consecFails = 0
			default:
				t.Fatalf("op %d: Get(%s) failed: %v", i, k, err)
			}
		default: // flush pressure
			if err := eng.Flush(); err != nil {
				failOps++
				consecFails++
				recover(err)
			} else {
				okOps++
				consecFails = 0
			}
		}
		if consecFails > 200 {
			t.Fatalf("op %d: engine wedged — %d consecutive failures", i, consecFails)
		}
	}

	// Final pass on a clean filesystem: heal, then check every pool key.
	ffs.ClearRules()
	recover(kv.ErrDegraded)
	if cfg.crash {
		mem.Crash()
		_ = eng.Close()
		mem.Restart()
		if eng, err = cfg.open(ffs); err != nil {
			t.Fatalf("final reopen: %v", err)
		}
	}
	for _, k := range pool {
		v, err := eng.Get([]byte(k))
		switch {
		case err == nil:
			if !shadow[k][string(v)] {
				t.Fatalf("final: Get(%s) = %q, not in %v", k, v, keys(shadow[k]))
			}
		case errors.Is(err, kv.ErrNotFound):
			if !shadow[k][absent] {
				t.Fatalf("final: %s absent; acked value lost (set %v)", k, keys(shadow[k]))
			}
		default:
			t.Fatalf("final: Get(%s): %v", k, err)
		}
	}
	// No-garbage sweep: nothing outside the model may appear.
	it, err := eng.NewIterator()
	if err != nil {
		t.Fatalf("final iterator: %v", err)
	}
	for it.SeekToFirst(); it.Valid(); it.Next() {
		k, v := string(it.Key()), string(it.Value())
		set, known := shadow[k]
		if !known {
			t.Fatalf("final: iterator surfaced unknown key %q", k)
		}
		if !set[v] {
			t.Fatalf("final: iterator value %q for %s not in %v", v, k, keys(set))
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}

	t.Logf("%d ok, %d failed, %d crashes, %d injected faults",
		okOps, failOps, crashes, ffs.InjectedFaults())
	if ffs.InjectedFaults() == 0 {
		t.Fatal("no fault ever fired — the torture exercised nothing")
	}
	if okOps < nOps/2 {
		t.Fatalf("only %d/%d ops succeeded — run dominated by failures", okOps, nOps)
	}
}

func keys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		if k == absent {
			k = "<absent>"
		}
		out = append(out, k)
	}
	return out
}
