package torture

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"p2kvs/internal/btreekv"
	"p2kvs/internal/kv"
	"p2kvs/internal/kvell"
	"p2kvs/internal/lsm"
	"p2kvs/internal/vfs"
)

// TestBitFlipAtRestTorture is the at-rest integrity contract, end to end,
// for every engine family: write a known key set, close the engine, flip
// random bits in random durable files, reopen, and check that NO read
// ever returns a silently wrong value — every Get yields the correct
// value, a legitimate not-found, or kv.ErrCorruption. A scrub pass over
// the damaged store must likewise finish without inventing data.
//
// Unlike the fault-menu torture runs there is no write-failure ambiguity:
// every write is acked before the damage, so the model is exact.
func TestBitFlipAtRestTorture(t *testing.T) {
	rounds := 6
	flipsPerRound := 4
	if testing.Short() {
		rounds = 2
	}
	for _, cfg := range bitFlipConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			bitFlipTorture(t, cfg, rounds, flipsPerRound)
		})
	}
}

type bitFlipCfg struct {
	name string
	open func(fs vfs.FS, dir string) (kv.Engine, error)
	// subdirs are the directories (relative to the instance dir) whose
	// files hold durable state; "" is the instance dir itself. MemFS List
	// is flat, so the walk needs them spelled out.
	subdirs []string
}

func bitFlipConfigs() []bitFlipCfg {
	return []bitFlipCfg{
		{
			name: "lsm-rocksdb",
			open: func(fs vfs.FS, dir string) (kv.Engine, error) {
				o := lsm.RocksDBOptions(fs)
				o.MemTableSize = 16 << 10
				o.BaseLevelSize = 64 << 10
				o.TargetFileSize = 16 << 10
				o.SyncWAL = true
				return lsm.Open(dir, o)
			},
			subdirs: []string{""},
		},
		{
			name: "btreekv",
			open: func(fs vfs.FS, dir string) (kv.Engine, error) {
				return btreekv.Open(dir, btreekv.Options{FS: fs, SyncWAL: true, CheckpointBytes: 8 << 10})
			},
			subdirs: []string{""},
		},
		{
			name: "kvell",
			open: func(fs vfs.FS, dir string) (kv.Engine, error) {
				return kvell.Open(dir, kvell.Options{FS: fs, Workers: 2, QueueDepth: 16})
			},
			subdirs: []string{"w00", "w01"},
		},
	}
}

// flipTargets lists every non-empty durable file of the instance.
func flipTargets(t *testing.T, fs *vfs.FaultFS, dir string, subdirs []string) []string {
	t.Helper()
	var out []string
	for _, sub := range subdirs {
		d := dir
		if sub != "" {
			d = dir + "/" + sub
		}
		names, err := fs.List(d)
		if err != nil {
			continue
		}
		for _, n := range names {
			path := d + "/" + n
			f, err := fs.Open(path)
			if err != nil {
				continue
			}
			size, serr := f.Size()
			f.Close()
			if serr == nil && size > 0 {
				out = append(out, path)
			}
		}
	}
	return out
}

func bitFlipTorture(t *testing.T, cfg bitFlipCfg, rounds, flips int) {
	rng := rand.New(rand.NewSource(0x5EED + int64(len(cfg.name))))
	totalCorrupt := 0
	for round := 0; round < rounds; round++ {
		// Each round gets a fresh directory: a previous round may have
		// legitimately poisoned a shard read-only, which would block this
		// round's fill.
		dir := fmt.Sprintf("db-%02d", round)
		fault := vfs.NewFault(vfs.NewMem())
		eng, err := cfg.open(fault, dir)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[string]string)
		for i := 0; i < 150; i++ {
			k := fmt.Sprintf("key-%03d", i)
			v := fmt.Sprintf("round-%02d-val-%03d-%x", round, i, rng.Int63())
			if err := eng.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("round %d: fill put: %v", round, err)
			}
			want[k] = v
		}
		// A few deletes so legitimate not-found answers exist too.
		for i := 0; i < 10; i++ {
			k := fmt.Sprintf("key-%03d", rng.Intn(150))
			if err := eng.Delete([]byte(k)); err != nil {
				t.Fatalf("round %d: delete: %v", round, err)
			}
			delete(want, k)
		}
		if err := eng.Flush(); err != nil {
			t.Fatalf("round %d: flush: %v", round, err)
		}
		if err := eng.Close(); err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}

		// The rot: random single-bit flips across the durable files.
		targets := flipTargets(t, fault, dir, cfg.subdirs)
		if len(targets) == 0 {
			t.Fatalf("round %d: no durable files to corrupt", round)
		}
		for i := 0; i < flips; i++ {
			path := targets[rng.Intn(len(targets))]
			f, err := fault.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			size, _ := f.Size()
			f.Close()
			if size == 0 {
				continue
			}
			off := rng.Int63n(size)
			if err := fault.CorruptAt(path, off); err != nil {
				t.Fatalf("round %d: CorruptAt(%s): %v", round, path, err)
			}
			t.Logf("round %d: flipped %s @%d (size %d)", round, path, off, size)
		}

		// Recovery must never lie. Two loud outcomes are legal: open
		// degraded (quarantined shards answer ErrCorruption), or refuse
		// to open at all with a corruption report — the LSM takes the
		// latter road when WAL replay meets a rotted committed record
		// (absolute-consistency recovery). Anything else is a bug.
		eng, err = cfg.open(fault, dir)
		if err != nil {
			if errors.Is(err, kv.ErrCorruption) {
				totalCorrupt++
				continue
			}
			t.Fatalf("round %d: reopen after flips: %v", round, err)
		}

		// The core invariant: correct value | correct not-found |
		// ErrCorruption. Anything else is a silent lie.
		corruptReads := 0
		for i := 0; i < 150; i++ {
			k := fmt.Sprintf("key-%03d", i)
			wantV, alive := want[k]
			v, err := eng.Get([]byte(k))
			switch {
			case err == nil:
				if !alive {
					t.Fatalf("round %d: Get(%s) resurrected a deleted key as %q", round, k, v)
				}
				if string(v) != wantV {
					t.Fatalf("round %d: Get(%s) = %q, want %q — SILENTLY WRONG VALUE", round, k, v, wantV)
				}
			case errors.Is(err, kv.ErrNotFound):
				if alive {
					t.Fatalf("round %d: Get(%s) silently lost an acked write", round, k)
				}
			case errors.Is(err, kv.ErrCorruption):
				corruptReads++
			default:
				t.Fatalf("round %d: Get(%s): unexpected error class %v", round, k, err)
			}
		}
		totalCorrupt += corruptReads

		// A scrub over the damaged store must complete (finding corruption
		// is a clean completion) and count consistently with Health.
		if sc, ok := eng.(kv.Scrubber); ok {
			res, err := sc.Scrub(context.Background(), nil)
			if err != nil && !errors.Is(err, kv.ErrCorruption) {
				t.Fatalf("round %d: scrub infra error: %v", round, err)
			}
			if res.CorruptionsFound > 0 {
				if hr, ok := eng.(kv.HealthReporter); ok {
					if h := hr.Health(); h.CorruptionEvents == 0 {
						t.Fatalf("round %d: scrub found %d corruptions but Health reports none", round, res.CorruptionsFound)
					}
				}
			}
		}
		if err := eng.Close(); err != nil {
			t.Fatalf("round %d: close after verify: %v", round, err)
		}
	}
	// Across all rounds the flips must actually have bitten at least once
	// — a sweep that never touches live data proves nothing.
	if totalCorrupt == 0 {
		t.Logf("%s: no flip landed on live data in %d rounds (weak run, not a failure)", cfg.name, rounds)
	} else {
		t.Logf("%s: %d reads correctly failed with ErrCorruption", cfg.name, totalCorrupt)
	}
}
