package torture

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"p2kvs/internal/core"
	"p2kvs/internal/keyspace"
	"p2kvs/internal/kv"
	"p2kvs/internal/lsm"
	"p2kvs/internal/reshard"
	"p2kvs/internal/vfs"
)

// Torture for online resharding: the full store (elastic ring, hot cache
// on, cross-partition transactions) driven against the shadow model
// while Reshard runs concurrently under fault injection and crash
// cycles. A crash mid-copy or mid-cutover must recover to exactly one
// ring — the old topology or the new one, never a mix — which the model
// checks implicitly: a key read from the wrong ring generation surfaces
// as a lost acked write or invented garbage.

const reshardTortureDir = "p2"

func openTortureStore(ffs vfs.FS, workers int) (*core.Store, error) {
	opts := core.DefaultOptions(func(id int, filter func(uint64) bool) (kv.Engine, error) {
		o := lsm.RocksDBOptions(ffs)
		o.MemTableSize = 16 << 10
		o.BaseLevelSize = 64 << 10
		o.TargetFileSize = 16 << 10
		o.SyncWAL = true // acked == durable, the property the model checks
		o.BgMaxRetries = 3
		o.BgBaseBackoff = time.Millisecond
		o.BgMaxBackoff = 4 * time.Millisecond
		return lsm.OpenWith(fmt.Sprintf("%s/inst-%02d", reshardTortureDir, id), o,
			lsm.OpenOptions{RecoverFilter: filter})
	})
	opts.Workers = workers
	opts.Partitioner = keyspace.NewRing(workers, 64)
	opts.TxnFS = ffs
	opts.TxnDir = reshardTortureDir + "/txn"
	opts.HotCacheBytes = 1 << 20
	opts.InstanceReset = func(id int) error {
		return vfs.RemoveTree(ffs, fmt.Sprintf("%s/inst-%02d", reshardTortureDir, id))
	}
	return core.Open(opts)
}

// committedWorkers reads the crash-durable topology to learn the worker
// count a reopen must use — exactly what a real operator (or the facade)
// does after a crash mid-reshard.
func committedWorkers(fs vfs.FS, fallback int) (int, error) {
	topo, err := reshard.LoadTopology(fs, reshardTortureDir+"/txn")
	if err != nil {
		return 0, err
	}
	if topo == nil {
		return fallback, nil
	}
	return topo.Workers, nil
}

func TestReshardTorture(t *testing.T) {
	seeds, nOps := []int64{0xE1A571C, 31}, 2400
	if testing.Short() {
		seeds, nOps = seeds[:1], 900
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			reshardTorture(t, nOps, seed)
		})
	}
}

func reshardTorture(t *testing.T, nOps int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	mem := vfs.NewMem()
	ffs := vfs.NewFaultSeeded(mem, seed)

	workers := 2
	store, err := openTortureStore(ffs, workers)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { store.Close() }()

	const poolSize = 150
	pool := make([]string, poolSize)
	shadow := model{}
	for i := range pool {
		pool[i] = fmt.Sprintf("key-%03d", i)
		shadow[pool[i]] = map[string]bool{absent: true}
	}

	// The store wraps worker faults in degraded health; recovery is
	// clear-rules + Resume, as an operator would.
	menu := []vfs.Rule{
		{Op: vfs.OpSync, Path: ".log", Prob: 0.03},
		{Op: vfs.OpWrite, Prob: 0.01, TornWrite: true},
		{Op: vfs.OpCreate, Prob: 0.01},
		{Op: vfs.OpAny, Prob: 0.03, DelayOnly: true, Delay: 200 * time.Microsecond},
	}
	armed := false
	heal := func() {
		ffs.ClearRules()
		armed = false
		_ = store.Resume()
	}

	// One reshard at a time, concurrent with the op stream. reshardDone
	// is nil when idle; completions update the expected worker count from
	// the store itself (a post-commit cleanup failure still counts as the
	// new shape).
	var reshardDone chan error
	reshardsStarted, reshardsOK := 0, 0
	startReshard := func() {
		target := workers + 1
		if workers >= 4 || (workers > 1 && rng.Intn(2) == 0) {
			target = workers - 1
		}
		reshardDone = make(chan error, 1)
		reshardsStarted++
		go func(n int) { reshardDone <- store.Reshard(context.Background(), n) }(target)
	}
	settleReshard := func(block bool) {
		if reshardDone == nil {
			return
		}
		if block {
			err := <-reshardDone
			if err == nil {
				reshardsOK++
			}
			reshardDone = nil
			workers = store.Workers()
			return
		}
		select {
		case err := <-reshardDone:
			if err == nil {
				reshardsOK++
			}
			reshardDone = nil
			workers = store.Workers()
		default:
		}
	}

	var okOps, failOps, crashes, consecFails int
	for i := 0; i < nOps; i++ {
		switch {
		case !armed && (i/50)%3 == 1:
			for _, r := range menu {
				ffs.Inject(r)
			}
			armed = true
		case armed && (i/50)%3 != 1:
			ffs.ClearRules()
			armed = false
		}

		settleReshard(false)
		// Two trigger points: mid-window (usually completes while ops
		// flow) and a few ops before each crash point (usually still in
		// prepare/copy/cutover when the crash lands).
		if reshardDone == nil && (i%300 == 150 || i%500 == 490) {
			startReshard()
		}

		// Crash mid-whatever the reshard is doing: close (the in-flight
		// run aborts or commits; Close never deadlocks on it), restart,
		// and reopen at the worker count the TOPOLOGY file committed —
		// the old ring or the new one, never a blend.
		if i%500 == 499 {
			ffs.ClearRules()
			armed = false
			mem.Crash()
			_ = store.Close()
			settleReshard(true)
			mem.Restart()
			n, err := committedWorkers(ffs, workers)
			if err != nil {
				t.Fatalf("op %d: reading TOPOLOGY after crash: %v", i, err)
			}
			if store, err = openTortureStore(ffs, n); err != nil {
				t.Fatalf("op %d: reopen after crash at %d workers: %v", i, n, err)
			}
			workers = n
			crashes++
		}

		k := pool[rng.Intn(poolSize)]
		switch p := rng.Intn(100); {
		case p < 40: // put
			v := fmt.Sprintf("v%06d", i)
			if err := store.Put([]byte(k), []byte(v)); err != nil {
				shadow.admit(k, v)
				failOps++
				consecFails++
				heal()
			} else {
				shadow.collapse(k, v)
				okOps++
				consecFails = 0
			}
		case p < 50: // cross-partition transaction
			k2 := pool[rng.Intn(poolSize)]
			v := fmt.Sprintf("t%06d", i)
			var b kv.Batch
			b.Put([]byte(k), []byte(v))
			b.Put([]byte(k2), []byte(v))
			if err := store.Write(&b); err != nil {
				shadow.admit(k, v)
				shadow.admit(k2, v)
				failOps++
				consecFails++
				heal()
			} else {
				shadow.collapse(k, v)
				shadow.collapse(k2, v)
				okOps++
				consecFails = 0
			}
		case p < 62: // delete
			if err := store.Delete([]byte(k)); err != nil {
				shadow.admit(k, absent)
				failOps++
				consecFails++
				heal()
			} else {
				shadow.collapse(k, absent)
				okOps++
				consecFails = 0
			}
		default: // get (through the hot cache)
			v, err := store.Get([]byte(k))
			switch {
			case err == nil:
				if !shadow[k][string(v)] {
					t.Fatalf("op %d: Get(%s) = %q, not in possibility set %v", i, k, v, keys(shadow[k]))
				}
				shadow.collapse(k, string(v))
				okOps++
				consecFails = 0
			case errors.Is(err, kv.ErrNotFound):
				if !shadow[k][absent] {
					t.Fatalf("op %d: Get(%s) reported absent; acked value lost (set %v)", i, k, keys(shadow[k]))
				}
				shadow.collapse(k, absent)
				okOps++
				consecFails = 0
			default:
				failOps++
				consecFails++
				heal()
			}
		}
		if consecFails > 200 {
			t.Fatalf("op %d: store wedged — %d consecutive failures", i, consecFails)
		}
	}

	// Settle: finish any in-flight reshard, heal, final crash cycle.
	settleReshard(true)
	heal()
	mem.Crash()
	_ = store.Close()
	mem.Restart()
	n, err := committedWorkers(ffs, workers)
	if err != nil {
		t.Fatalf("final TOPOLOGY read: %v", err)
	}
	store, err = openTortureStore(ffs, n)
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}

	// Every pool key checks against the model, and the observation
	// collapses it for the dump comparison below.
	for _, k := range pool {
		v, err := store.Get([]byte(k))
		switch {
		case err == nil:
			if !shadow[k][string(v)] {
				t.Fatalf("final: Get(%s) = %q, not in %v", k, v, keys(shadow[k]))
			}
			shadow.collapse(k, string(v))
		case errors.Is(err, kv.ErrNotFound):
			if !shadow[k][absent] {
				t.Fatalf("final: %s absent; acked value lost (set %v)", k, keys(shadow[k]))
			}
			shadow.collapse(k, absent)
		default:
			t.Fatalf("final: Get(%s): %v", k, err)
		}
	}

	// Byte-identical dump: after the collapse above the model is exact,
	// and the store's global iterator must reproduce it key for key —
	// no missing keys, no leftovers from an aborted or half-cleaned
	// reshard (the router-filtered iterator must hide any stale foreign
	// copy an aborted cleanup left behind).
	want := map[string]string{}
	for k, set := range shadow {
		for v := range set {
			if v != absent {
				want[k] = v
			}
		}
	}
	it, err := store.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for it.SeekToFirst(); it.Valid(); it.Next() {
		got[string(it.Key())] = string(it.Value())
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if len(got) != len(want) {
		t.Fatalf("final dump holds %d keys, model says %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("final dump: %s = %q, model says %q", k, got[k], v)
		}
	}

	st := store.ReshardStats()
	t.Logf("%d ok, %d failed, %d crashes, %d/%d reshards committed, %d workers final (epoch %d), %d injected faults",
		okOps, failOps, crashes, reshardsOK, reshardsStarted, store.Workers(), st.Epoch, ffs.InjectedFaults())
	if ffs.InjectedFaults() == 0 {
		t.Fatal("no fault ever fired — the torture exercised nothing")
	}
	if reshardsStarted == 0 {
		t.Fatal("no reshard ever started — the torture exercised nothing")
	}
	if okOps < nOps/2 {
		t.Fatalf("only %d/%d ops succeeded — run dominated by failures", okOps, nOps)
	}
}
