package arena

import (
	"bytes"
	"sync"
	"testing"
)

func TestAllocBasic(t *testing.T) {
	a := New()
	b := a.Alloc(16)
	if len(b) != 16 {
		t.Fatalf("len = %d", len(b))
	}
	for _, c := range b {
		if c != 0 {
			t.Fatal("allocation not zeroed")
		}
	}
	if a.Size() <= 0 {
		t.Fatal("size must reflect reserved chunks")
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	a := NewSize(64)
	x := a.Alloc(10)
	y := a.Alloc(10)
	copy(x, "xxxxxxxxxx")
	copy(y, "yyyyyyyyyy")
	if !bytes.Equal(x, []byte("xxxxxxxxxx")) {
		t.Fatal("allocation x was clobbered by y")
	}
}

func TestChunkRollover(t *testing.T) {
	a := NewSize(32)
	for i := 0; i < 10; i++ {
		b := a.Alloc(20)
		if len(b) != 20 {
			t.Fatal("bad alloc")
		}
	}
	// 10 * 20 bytes with 32-byte chunks => 10 chunks.
	if a.Size() < 200 {
		t.Fatalf("size = %d, want >= 200", a.Size())
	}
}

func TestOversizedAllocation(t *testing.T) {
	a := NewSize(16)
	b := a.Alloc(100)
	if len(b) != 100 {
		t.Fatalf("len = %d", len(b))
	}
}

func TestCopy(t *testing.T) {
	a := New()
	src := []byte("hello")
	dst := a.Copy(src)
	src[0] = 'X'
	if string(dst) != "hello" {
		t.Fatalf("copy aliases source: %q", dst)
	}
}

func TestConcurrentAlloc(t *testing.T) {
	a := NewSize(1 << 10)
	var wg sync.WaitGroup
	results := make([][][]byte, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := a.Alloc(8)
				b[0] = byte(g)
				b[7] = byte(i)
				results[g] = append(results[g], b)
			}
		}(g)
	}
	wg.Wait()
	for g := range results {
		for i, b := range results[g] {
			if b[0] != byte(g) || b[7] != byte(i%256) {
				t.Fatalf("goroutine %d alloc %d clobbered: %v", g, i, b)
			}
		}
	}
}
