// Package arena implements the bump allocator backing memtable entries.
// LSM memtables allocate millions of short-lived byte strings that all die
// together when the memtable is flushed; a chunked bump allocator keeps
// them off the general-purpose heap and makes the memtable's memory
// footprint directly observable (Table 2 accounting).
package arena

import "sync/atomic"

const defaultChunkSize = 1 << 20 // 1 MiB

// Arena is a chunked bump allocator. Alloc is safe for concurrent use;
// freeing is wholesale via dropping the Arena.
type Arena struct {
	chunkSize int

	mu    chunkMutex
	cur   []byte
	used  int
	total atomic.Int64
}

// chunkMutex is a tiny spinlock: allocation critical sections are a few
// instructions, and the concurrent memtable calls Alloc on the write hot
// path where a full mutex costs more than it protects.
type chunkMutex struct{ v atomic.Int32 }

func (m *chunkMutex) lock() {
	for !m.v.CompareAndSwap(0, 1) {
	}
}
func (m *chunkMutex) unlock() { m.v.Store(0) }

// New creates an arena with the default 1 MiB chunk size.
func New() *Arena { return NewSize(defaultChunkSize) }

// NewSize creates an arena with a custom chunk size (for tests).
func NewSize(chunkSize int) *Arena {
	if chunkSize <= 0 {
		chunkSize = defaultChunkSize
	}
	return &Arena{chunkSize: chunkSize}
}

// Alloc returns a zeroed byte slice of length n carved from the arena.
func (a *Arena) Alloc(n int) []byte {
	if n > a.chunkSize {
		// Oversized allocations get dedicated chunks.
		a.total.Add(int64(n))
		return make([]byte, n)
	}
	a.mu.lock()
	if a.cur == nil || a.used+n > len(a.cur) {
		a.cur = make([]byte, a.chunkSize)
		a.used = 0
		a.total.Add(int64(a.chunkSize))
	}
	b := a.cur[a.used : a.used+n : a.used+n]
	a.used += n
	a.mu.unlock()
	return b
}

// Copy allocates and fills a slice with src's contents.
func (a *Arena) Copy(src []byte) []byte {
	dst := a.Alloc(len(src))
	copy(dst, src)
	return dst
}

// Size reports the total bytes reserved by the arena (capacity, not the
// sum of live allocations) — the number a memtable compares against its
// write-buffer budget.
func (a *Arena) Size() int64 { return a.total.Load() }
