// Package cluster is the client-side serving tier over N independent
// p2kvs-server nodes: a consistent-hash ring (internal/keyspace, the
// same partitioner the paper names for runtime scaling) routes every
// key to one primary, multi-key operations split into per-host legs
// that run in parallel and reassemble in caller order, and reads can
// optionally fan out across a primary's replicas.
//
// The design deliberately mirrors the intra-node architecture one level
// up: inside a node, p2KVS shards the keyspace across worker instances;
// the cluster client shards it again across nodes. Both layers are
// share-nothing, so cluster throughput scales with node count exactly
// as node throughput scales with worker count — and both use the same
// hash family, so a key's route is deterministic from the node list
// alone. There is no proxy and no cluster metadata service: like the
// paper's framework itself, the tier is portable glue around unmodified
// stores.
//
// Consistency: writes go to the key's primary only. Replica reads are
// eventually consistent — the replication stream applies in per-worker
// GSN order, so a single client observing a single key through a single
// replica sees monotonic values, but a read may trail an acknowledged
// write by the replication lag. Callers that need read-your-writes
// leave ReadFromReplicas off (the default).
package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"p2kvs/internal/keyspace"
	"p2kvs/internal/server"
)

// MaxBatch caps one wire batch (MGET arity / MSET pairs) per host leg;
// larger multi-key calls split into several sequential batches on the
// same connection. Bounded batches keep head-of-line blocking and reply
// buffering on both sides predictable no matter how large the caller's
// key slice is.
const MaxBatch = 1024

// Node is one serving position on the ring: a primary plus its read
// replicas.
type Node struct {
	Addr     string   // primary address, host:port
	Replicas []string // optional replica addresses for read fanout
}

// Options tunes a Client.
type Options struct {
	// MaxBatch overrides the per-leg batch cap; 0 selects (and values
	// above it clamp to) MaxBatch.
	MaxBatch int
	// ReadFromReplicas spreads Get/MGet across each node's primary and
	// replicas round-robin. Reads become eventually consistent.
	ReadFromReplicas bool
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// Ring is the virtual-node count per node on the hash ring
	// (default keyspace.DefaultReplicas).
	Ring int
}

// Client routes commands across the cluster. Safe for concurrent use;
// legs to distinct endpoints run in parallel, commands to the same
// endpoint serialize on its connection.
type Client struct {
	nodes []Node
	ring  keyspace.Consistent
	opts  Options

	mu    sync.Mutex
	conns map[string]*rconn
	rr    atomic.Uint64 // replica round-robin cursor

	closed atomic.Bool
}

// rconn is one endpoint's persistent connection. The mutex spans a full
// request/reply exchange, keeping the RESP stream framed.
type rconn struct {
	mu sync.Mutex
	nc net.Conn
	rd *server.Reader
	wr *server.Writer
}

// New builds a client over the given nodes. The node list order defines
// ring identity: the same list yields the same key routes everywhere.
func New(nodes []Node, opts Options) (*Client, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: empty node list")
	}
	if opts.MaxBatch <= 0 || opts.MaxBatch > MaxBatch {
		opts.MaxBatch = MaxBatch
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.Ring <= 0 {
		opts.Ring = keyspace.DefaultReplicas
	}
	return &Client{
		nodes: nodes,
		ring:  keyspace.NewConsistent(len(nodes), opts.Ring),
		opts:  opts,
		conns: make(map[string]*rconn),
	}, nil
}

// Close drops every cached connection.
func (c *Client) Close() {
	c.closed.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rc := range c.conns {
		rc.mu.Lock()
		if rc.nc != nil {
			rc.nc.Close()
			rc.nc = nil
		}
		rc.mu.Unlock()
	}
}

// pick returns the owning node index for a key.
func (c *Client) pick(key []byte) int { return c.ring.Pick(key) }

// readAddr returns the endpoint a read for node n should use:
// round-robin over primary + replicas when fanout is on, else the
// primary.
func (c *Client) readAddr(n int) string {
	node := c.nodes[n]
	if !c.opts.ReadFromReplicas || len(node.Replicas) == 0 {
		return node.Addr
	}
	i := int(c.rr.Add(1)) % (1 + len(node.Replicas))
	if i == 0 {
		return node.Addr
	}
	return node.Replicas[i-1]
}

func (c *Client) conn(addr string) *rconn {
	c.mu.Lock()
	defer c.mu.Unlock()
	rc, ok := c.conns[addr]
	if !ok {
		rc = &rconn{}
		c.conns[addr] = rc
	}
	return rc
}

// exchange sends one command and reads one reply on addr's connection,
// redialing once on a stale connection.
func (c *Client) exchange(addr string, args ...[]byte) (server.Reply, error) {
	reps, err := c.exchangeN(addr, [][][]byte{args})
	if err != nil {
		return server.Reply{}, err
	}
	return reps[0], nil
}

// exchangeN pipelines cmds on addr's connection and reads one reply
// each. A transport error on a cached connection gets one redial+retry;
// an error reply is returned to the caller, not retried.
func (c *Client) exchangeN(addr string, cmds [][][]byte) ([]server.Reply, error) {
	if c.closed.Load() {
		return nil, errors.New("cluster: client closed")
	}
	rc := c.conn(addr)
	rc.mu.Lock()
	defer rc.mu.Unlock()
	fresh := false
	if rc.nc == nil {
		if err := rc.dial(addr, c.opts.DialTimeout); err != nil {
			return nil, err
		}
		fresh = true
	}
	reps, err := rc.roundTrip(cmds)
	if err != nil && !fresh {
		// Stale pooled connection (server restarted, idle timeout):
		// one redial, one retry.
		rc.nc.Close()
		if err = rc.dial(addr, c.opts.DialTimeout); err != nil {
			return nil, err
		}
		reps, err = rc.roundTrip(cmds)
	}
	if err != nil {
		rc.nc.Close()
		rc.nc = nil
		return nil, fmt.Errorf("cluster: %s: %w", addr, err)
	}
	return reps, nil
}

func (rc *rconn) dial(addr string, timeout time.Duration) error {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	rc.nc = nc
	rc.rd = server.NewReader(nc)
	rc.wr = server.NewWriter(nc)
	return nil
}

func (rc *rconn) roundTrip(cmds [][][]byte) ([]server.Reply, error) {
	for _, cmd := range cmds {
		rc.wr.WriteCommand(cmd...)
	}
	if err := rc.wr.Flush(); err != nil {
		return nil, err
	}
	reps := make([]server.Reply, len(cmds))
	for i := range cmds {
		rep, err := rc.rd.ReadReply()
		if err != nil {
			return nil, err
		}
		reps[i] = rep
	}
	return reps, nil
}

// replyErr converts an error reply into a Go error.
func replyErr(rep server.Reply) error {
	if rep.IsError() {
		return errors.New(string(rep.Str))
	}
	return nil
}

// Set writes one key to its primary.
func (c *Client) Set(key, value []byte) error {
	rep, err := c.exchange(c.nodes[c.pick(key)].Addr, []byte("SET"), key, value)
	if err != nil {
		return err
	}
	return replyErr(rep)
}

// Del deletes one key on its primary.
func (c *Client) Del(key []byte) error {
	rep, err := c.exchange(c.nodes[c.pick(key)].Addr, []byte("DEL"), key)
	if err != nil {
		return err
	}
	return replyErr(rep)
}

// Get reads one key, from a replica when fanout is enabled. Missing
// keys return (nil, nil).
func (c *Client) Get(key []byte) ([]byte, error) {
	rep, err := c.exchange(c.readAddr(c.pick(key)), []byte("GET"), key)
	if err != nil {
		return nil, err
	}
	if err := replyErr(rep); err != nil {
		return nil, err
	}
	if rep.Nil {
		return nil, nil
	}
	return rep.Str, nil
}

// leg is one host's share of a multi-key call: the key indices (into
// the caller's slice) it owns, in caller order.
type leg struct {
	addr string
	idx  []int
}

// split groups key indices by endpoint. route maps a key's ring owner
// to the endpoint the leg should talk to.
func (c *Client) split(keys [][]byte, route func(node int) string) []leg {
	byAddr := make(map[string]*leg)
	order := make([]*leg, 0, len(c.nodes))
	for i, k := range keys {
		addr := route(c.pick(k))
		l, ok := byAddr[addr]
		if !ok {
			l = &leg{addr: addr}
			byAddr[addr] = l
			order = append(order, l)
		}
		l.idx = append(l.idx, i)
	}
	out := make([]leg, len(order))
	for i, l := range order {
		out[i] = *l
	}
	return out
}

// MGet reads keys across the cluster: per-endpoint legs run in
// parallel, each leg batching up to MaxBatch keys per MGET. The result
// is in caller order; missing keys are nil entries.
func (c *Client) MGet(keys [][]byte) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	out := make([][]byte, len(keys))
	legs := c.split(keys, c.readAddr)
	errs := make([]error, len(legs))
	var wg sync.WaitGroup
	for li := range legs {
		wg.Add(1)
		go func(li int) {
			defer wg.Done()
			l := legs[li]
			for off := 0; off < len(l.idx); off += c.opts.MaxBatch {
				end := off + c.opts.MaxBatch
				if end > len(l.idx) {
					end = len(l.idx)
				}
				chunk := l.idx[off:end]
				args := make([][]byte, 0, len(chunk)+1)
				args = append(args, []byte("MGET"))
				for _, i := range chunk {
					args = append(args, keys[i])
				}
				rep, err := c.exchange(l.addr, args...)
				if err == nil {
					err = replyErr(rep)
				}
				if err == nil && len(rep.Elems) != len(chunk) {
					err = fmt.Errorf("cluster: %s: MGET arity mismatch", l.addr)
				}
				if err != nil {
					errs[li] = err
					return
				}
				for j, i := range chunk {
					e := rep.Elems[j]
					if !e.Nil {
						out[i] = e.Str
					}
				}
			}
		}(li)
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// MSet writes pairs across the cluster, one parallel leg per primary,
// batching up to MaxBatch pairs per MSET. Legs commit independently: on
// error, pairs routed to healthy primaries are still written (the same
// per-shard fate contract the single-node MSET gives across workers).
func (c *Client) MSet(keys, values [][]byte) error {
	if len(keys) != len(values) {
		return errors.New("cluster: MSet keys/values length mismatch")
	}
	if len(keys) == 0 {
		return nil
	}
	legs := c.split(keys, func(n int) string { return c.nodes[n].Addr })
	errs := make([]error, len(legs))
	var wg sync.WaitGroup
	for li := range legs {
		wg.Add(1)
		go func(li int) {
			defer wg.Done()
			l := legs[li]
			for off := 0; off < len(l.idx); off += c.opts.MaxBatch {
				end := off + c.opts.MaxBatch
				if end > len(l.idx) {
					end = len(l.idx)
				}
				args := make([][]byte, 0, 2*(end-off)+1)
				args = append(args, []byte("MSET"))
				for _, i := range l.idx[off:end] {
					args = append(args, keys[i], values[i])
				}
				rep, err := c.exchange(l.addr, args...)
				if err == nil {
					err = replyErr(rep)
				}
				if err != nil {
					errs[li] = err
					return
				}
			}
		}(li)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Nodes returns the ring's node list (read-only view).
func (c *Client) Nodes() []Node { return c.nodes }
