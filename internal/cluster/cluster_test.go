package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"p2kvs/internal/replboot"
	"p2kvs/internal/server"
	"p2kvs/internal/vfs"
)

// startNode boots one in-process replication-enabled server node.
func startNode(t *testing.T, workers int, replicaOf string) string {
	t.Helper()
	st, err := replboot.MemStore(workers, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		Store:        st,
		ReplDir:      "repl",
		ReplFS:       vfs.NewMem(),
		RestoreStore: replboot.MemRestore(1 << 20),
		ReplicaOf:    replicaOf,
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		srv.Serve(lis)
		close(done)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	})
	return lis.Addr().String()
}

func key(i int) []byte   { return []byte(fmt.Sprintf("key-%05d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%05d", i)) }

// TestClusterRoutingAndBatches drives a 3-primary cluster through
// single-key and multi-key paths and checks every key lands where the
// ring routes it and comes back intact, including MGET/MSET legs that
// exceed one batch.
func TestClusterRoutingAndBatches(t *testing.T) {
	nodes := []Node{
		{Addr: startNode(t, 2, "")},
		{Addr: startNode(t, 2, "")},
		{Addr: startNode(t, 2, "")},
	}
	cl, err := New(nodes, Options{MaxBatch: 64}) // force multi-chunk legs
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 500
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i], vals[i] = key(i), value(i)
	}
	if err := cl.MSet(keys, vals); err != nil {
		t.Fatal(err)
	}
	got, err := cl.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !bytes.Equal(got[i], vals[i]) {
			t.Fatalf("MGet[%d] = %q, want %q", i, got[i], vals[i])
		}
	}

	// Every node owns a share of the keyspace (ring balance sanity).
	counts := make([]int, len(nodes))
	for _, k := range keys {
		counts[cl.pick(k)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("node %d owns no keys out of %d", i, n)
		}
	}

	// Single-key paths agree with the batch paths.
	if err := cl.Set([]byte("solo"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Get([]byte("solo"))
	if err != nil || string(v) != "1" {
		t.Fatalf("Get solo = %q, %v", v, err)
	}
	if err := cl.Del([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	if v, err = cl.Get([]byte("solo")); err != nil || v != nil {
		t.Fatalf("Get deleted solo = %q, %v", v, err)
	}
	if v, err = cl.Get([]byte("never-written")); err != nil || v != nil {
		t.Fatalf("Get missing = %q, %v", v, err)
	}
}

// TestClusterReplicaReads attaches a replica to each primary and reads
// through the fanout path until every key is served — proving replica
// routing works and the cluster converges.
func TestClusterReplicaReads(t *testing.T) {
	p0 := startNode(t, 2, "")
	p1 := startNode(t, 2, "")
	nodes := []Node{
		{Addr: p0, Replicas: []string{startNode(t, 2, p0)}},
		{Addr: p1, Replicas: []string{startNode(t, 2, p1)}},
	}
	wcl, err := New(nodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wcl.Close()
	rcl, err := New(nodes, Options{ReadFromReplicas: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()

	const n = 200
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i], vals[i] = key(i), value(i)
	}
	if err := wcl.MSet(keys, vals); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := rcl.MGet(keys)
		if err == nil {
			ok := true
			for i := range keys {
				if !bytes.Equal(got[i], vals[i]) {
					ok = false
					break
				}
			}
			if ok {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica fanout never converged: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Fanout actually spreads load: with round-robin over 2 endpoints
	// per node, repeated single-key Gets touch the replica too. A write
	// through the read client still routes to the primary.
	if err := rcl.Set([]byte("after"), []byte("1")); err != nil {
		t.Fatalf("Set through fanout client: %v", err)
	}
}

// TestClusterRouteStability pins the property everything rests on: the
// route for a key is a pure function of the node list, so independent
// clients agree.
func TestClusterRouteStability(t *testing.T) {
	nodes := []Node{{Addr: "a:1"}, {Addr: "b:1"}, {Addr: "c:1"}}
	c1, _ := New(nodes, Options{})
	c2, _ := New(nodes, Options{})
	for i := 0; i < 1000; i++ {
		k := key(i)
		if c1.pick(k) != c2.pick(k) {
			t.Fatalf("route for %q differs between identical clients", k)
		}
	}
}
