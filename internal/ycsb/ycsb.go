// Package ycsb encodes the YCSB workloads exactly as the paper's Table 1
// specifies them and generates per-thread operation streams for the
// macro-benchmarks (Figures 16-20).
package ycsb

import (
	"math/rand"
	"sync/atomic"

	"p2kvs/internal/workload"
)

// OpType is a YCSB operation.
type OpType int

// YCSB operations. RMW is a GET and an UPDATE to the same key (Table 1).
const (
	OpInsert OpType = iota
	OpUpdate
	OpRead
	OpScan
	OpRMW
)

// Spec is one YCSB workload definition.
type Spec struct {
	Name   string
	Insert float64
	Update float64
	Read   float64
	Scan   float64
	RMW    float64
	// Dist is "uniform", "zipfian" or "latest" (Table 1's Distribution).
	Dist string
	// DefaultCount is the paper's op count (scaled down at run time).
	DefaultCount int64
	// MaxScanLen bounds scan sizes (YCSB default 100, uniform).
	MaxScanLen int
}

// Workloads reproduces Table 1.
var Workloads = map[string]Spec{
	"LOAD": {Name: "LOAD", Insert: 1.0, Dist: "uniform", DefaultCount: 670_000_000},
	"A":    {Name: "A", Update: 0.5, Read: 0.5, Dist: "zipfian", DefaultCount: 120_000_000},
	"B":    {Name: "B", Update: 0.05, Read: 0.95, Dist: "zipfian", DefaultCount: 120_000_000},
	"C":    {Name: "C", Read: 1.0, Dist: "zipfian", DefaultCount: 120_000_000},
	"D":    {Name: "D", Insert: 0.05, Read: 0.95, Dist: "latest", DefaultCount: 120_000_000},
	"E":    {Name: "E", Insert: 0.05, Scan: 0.95, Dist: "uniform", DefaultCount: 20_000_000, MaxScanLen: 100},
	"F":    {Name: "F", RMW: 0.5, Read: 0.5, Dist: "zipfian", DefaultCount: 120_000_000},
}

// Order lists workloads in the paper's presentation order.
var Order = []string{"LOAD", "A", "B", "C", "D", "E", "F"}

// Op is one generated operation.
type Op struct {
	Type    OpType
	KeyIdx  uint64
	ScanLen int
}

// Generator produces an operation stream for one client thread. The
// insertion frontier is shared across generators so "latest" and inserts
// compose correctly under concurrency.
type Generator struct {
	spec     Spec
	chooser  workload.Chooser
	frontier *atomic.Uint64
	r        *rand.Rand
}

// NewFrontier creates the shared insertion counter, pre-advanced past the
// already-loaded key count.
func NewFrontier(loaded uint64) *atomic.Uint64 {
	f := &atomic.Uint64{}
	f.Store(loaded)
	return f
}

// NewGenerator builds a per-thread generator over a key space of n loaded
// keys.
func NewGenerator(spec Spec, n uint64, frontier *atomic.Uint64, seed int64) *Generator {
	g := &Generator{spec: spec, frontier: frontier, r: rand.New(rand.NewSource(seed))}
	switch spec.Dist {
	case "zipfian":
		g.chooser = workload.NewZipfian(n, seed)
	case "latest":
		g.chooser = workload.NewLatest(frontier, seed)
	default:
		g.chooser = workload.NewUniform(n, seed)
	}
	return g
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	p := g.r.Float64()
	s := g.spec
	switch {
	case p < s.Insert:
		// Inserts extend the key space at the frontier.
		idx := g.frontier.Add(1) - 1
		return Op{Type: OpInsert, KeyIdx: idx}
	case p < s.Insert+s.Update:
		return Op{Type: OpUpdate, KeyIdx: g.chooser.Next()}
	case p < s.Insert+s.Update+s.Read:
		return Op{Type: OpRead, KeyIdx: g.chooser.Next()}
	case p < s.Insert+s.Update+s.Read+s.Scan:
		maxLen := s.MaxScanLen
		if maxLen <= 0 {
			maxLen = 100
		}
		return Op{Type: OpScan, KeyIdx: g.chooser.Next(), ScanLen: g.r.Intn(maxLen) + 1}
	default:
		return Op{Type: OpRMW, KeyIdx: g.chooser.Next()}
	}
}
