package vfs

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FaultFS is a composable fault-injection wrapper over any FS. Tests and
// torture harnesses layer it between an engine and its backing filesystem
// (MemFS or OSFS) and script faults against the real IO stream: error out
// the Nth sync, tear a write so only a prefix persists, flip a bit in a
// read, or add latency — without the engine knowing anything beyond "the
// disk misbehaved". Every engine in this repository takes a vfs.FS, so
// every engine can be tortured identically.
//
// Faults are described by Rules. A Rule matches an operation class
// (optionally narrowed by a path substring), decides when to fire (every
// matching op, the Nth matching op, or probabilistically), and carries an
// action. Rules are evaluated in insertion order; the first rule that
// fires wins for error-type actions, while delay and bit-flip actions
// accumulate.
type FaultFS struct {
	inner FS

	mu    sync.Mutex
	rules []*activeRule
	rng   *rand.Rand

	injected atomic.Int64
}

// ErrInjected is the base error of every fault FaultFS injects; injected
// errors satisfy errors.Is(err, ErrInjected), which recovery code can use
// to recognize (in tests) synthetic transient failures.
var ErrInjected = errors.New("vfs: injected fault")

// FaultCounter is implemented by filesystems that count injected faults;
// engines surface the count in their metrics when their FS provides it.
type FaultCounter interface {
	// InjectedFaults returns the number of faults fired so far.
	InjectedFaults() int64
}

// Op identifies a filesystem operation class for fault matching.
type Op int

// Operation classes.
const (
	// OpAny matches every operation.
	OpAny Op = iota
	OpCreate
	OpOpen
	OpRemove
	OpRename
	OpList
	OpMkdirAll
	// OpWrite matches both appending Write and WriteAt.
	OpWrite
	OpRead
	OpSync
	OpLink
)

func (o Op) String() string {
	switch o {
	case OpAny:
		return "any"
	case OpCreate:
		return "create"
	case OpOpen:
		return "open"
	case OpRemove:
		return "remove"
	case OpRename:
		return "rename"
	case OpList:
		return "list"
	case OpMkdirAll:
		return "mkdirall"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpSync:
		return "sync"
	case OpLink:
		return "link"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Rule scripts one fault behavior.
type Rule struct {
	// Op is the operation class the rule matches; OpAny matches all.
	Op Op
	// Path, when non-empty, narrows the match to operations whose file
	// path contains it (Rename matches on either name).
	Path string

	// CountN, when > 0, makes the rule fire only on the Nth matching
	// operation (1-based), counting from when the rule was installed.
	CountN int64
	// Prob, when > 0, makes the rule fire on each matching operation with
	// this probability (0..1). CountN and Prob are mutually exclusive;
	// with neither set the rule fires on every matching operation.
	Prob float64
	// OneShot disarms the rule after its first firing.
	OneShot bool

	// Err is the error returned by error-type firings; nil means a
	// generic error wrapping ErrInjected. Ignored by pure BitFlip/Delay
	// rules.
	Err error
	// NoSpace makes error-type firings report space exhaustion: the
	// injected error matches both ErrInjected and ErrNoSpace (IsNoSpace
	// returns true for it), so torture configs can exercise the engines'
	// disk-full degradation without layering a QuotaFS. Ignored when Err
	// is set explicitly.
	NoSpace bool
	// TornWrite, on a write operation, persists only a prefix of the
	// buffer (half, rounded down) before failing — a torn write. Without
	// it a firing write rule fails without persisting anything.
	TornWrite bool
	// BitFlip flips one bit and reports success — silent corruption. On a
	// read operation the flip lands in the returned buffer (the stored
	// bytes stay intact); on a write operation the flip lands in the bytes
	// persisted (corruption at rest: every later read of that range sees
	// the damage). A rule with BitFlip set never returns an error.
	BitFlip bool
	// Delay adds latency before the operation proceeds. A rule with only
	// Delay set (no Err semantics, no BitFlip) slows the op down but lets
	// it succeed.
	DelayOnly bool
	Delay     time.Duration
}

type activeRule struct {
	Rule
	seen  int64 // matching ops observed since installation
	fired bool  // OneShot rules disarm after firing
}

// NewFault wraps inner with an (initially fault-free) injection layer,
// seeded deterministically.
func NewFault(inner FS) *FaultFS { return NewFaultSeeded(inner, 1) }

// NewFaultSeeded wraps inner with the probabilistic trigger RNG seeded
// explicitly, for reproducible torture runs.
func NewFaultSeeded(inner FS, seed int64) *FaultFS {
	return &FaultFS{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// Inner returns the wrapped filesystem.
func (f *FaultFS) Inner() FS { return f.inner }

// Inject installs a rule. Rules accumulate until ClearRules.
func (f *FaultFS) Inject(r Rule) {
	f.mu.Lock()
	f.rules = append(f.rules, &activeRule{Rule: r})
	f.mu.Unlock()
}

// FailNextSync arms a one-shot error on the next Sync of any file — the
// drop-in replacement for the old MemFS switch.
func (f *FaultFS) FailNextSync() {
	f.Inject(Rule{Op: OpSync, CountN: 1, OneShot: true})
}

// ClearRules removes every installed rule (fault counters are kept).
func (f *FaultFS) ClearRules() {
	f.mu.Lock()
	f.rules = nil
	f.mu.Unlock()
}

// InjectedFaults implements FaultCounter.
func (f *FaultFS) InjectedFaults() int64 { return f.injected.Load() }

// CorruptAt deterministically corrupts data at rest: it XORs the lowest
// bit of the byte at the absolute offset off within the named file's
// current content, in place, reporting success to nobody — the next read
// covering that byte sees the damage. Unlike a BitFlip rule there is no
// randomness and no dependence on IO timing, so a test can hit a specific
// block of a specific file reproducibly. The underlying FS must support
// writable opens (MemFS does; OSFS's Open is read-only).
func (f *FaultFS) CorruptAt(name string, off int64) error {
	file, err := f.inner.Open(name)
	if err != nil {
		return err
	}
	defer file.Close()
	size, err := file.Size()
	if err != nil {
		return err
	}
	if off < 0 || off >= size {
		return fmt.Errorf("vfs: CorruptAt(%s, %d): offset outside file of %d bytes", name, off, size)
	}
	var b [1]byte
	if _, err := file.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 0x01
	if _, err := file.WriteAt(b[:], off); err != nil {
		return err
	}
	f.injected.Add(1)
	return nil
}

// decision is the aggregate outcome of rule evaluation for one operation.
type decision struct {
	err     error
	torn    bool
	bitFlip bool
	delay   time.Duration
}

func (f *FaultFS) check(op Op, path string) decision {
	var d decision
	f.mu.Lock()
	for _, r := range f.rules {
		if r.fired && r.OneShot {
			continue
		}
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.seen++
		switch {
		case r.CountN > 0:
			if r.seen != r.CountN {
				continue
			}
		case r.Prob > 0:
			if f.rng.Float64() >= r.Prob {
				continue
			}
		}
		r.fired = true
		f.injected.Add(1)
		if r.Delay > 0 {
			d.delay += r.Delay
		}
		if r.DelayOnly {
			continue
		}
		if r.BitFlip {
			d.bitFlip = true
			continue
		}
		if d.err == nil {
			d.err = r.Err
			switch {
			case d.err != nil:
			case r.NoSpace:
				d.err = fmt.Errorf("%w: %w: %s %s", ErrInjected, ErrNoSpace, op, path)
			default:
				d.err = fmt.Errorf("%w: %s %s", ErrInjected, op, path)
			}
			d.torn = r.TornWrite
		}
	}
	f.mu.Unlock()
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	return d
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if d := f.check(OpCreate, name); d.err != nil {
		return nil, d.err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file, path: name}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	if d := f.check(OpOpen, name); d.err != nil {
		return nil, d.err
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file, path: name}, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if d := f.check(OpRemove, name); d.err != nil {
		return d.err
	}
	return f.inner.Remove(name)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	if d := f.check(OpRename, oldname+" -> "+newname); d.err != nil {
		return d.err
	}
	return f.inner.Rename(oldname, newname)
}

// List implements FS.
func (f *FaultFS) List(dir string) ([]string, error) {
	if d := f.check(OpList, dir); d.err != nil {
		return nil, d.err
	}
	return f.inner.List(dir)
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error {
	if d := f.check(OpMkdirAll, dir); d.err != nil {
		return d.err
	}
	return f.inner.MkdirAll(dir)
}

// Exists implements FS.
func (f *FaultFS) Exists(name string) bool { return f.inner.Exists(name) }

// Link implements FS.
func (f *FaultFS) Link(oldname, newname string) error {
	if d := f.check(OpLink, oldname+" -> "+newname); d.err != nil {
		return d.err
	}
	return f.inner.Link(oldname, newname)
}

type faultFile struct {
	fs    *FaultFS
	inner File
	path  string
}

func (f *faultFile) Write(p []byte) (int, error) {
	d := f.fs.check(OpWrite, f.path)
	if d.err != nil {
		if d.torn && len(p) > 0 {
			n, _ := f.inner.Write(p[:len(p)/2])
			return n, d.err
		}
		return 0, d.err
	}
	if d.bitFlip && len(p) > 0 {
		// Corrupt the bytes as persisted: the caller's buffer stays
		// intact, the success report stays intact, the disk lies.
		return f.inner.Write(f.fs.flipCopy(p))
	}
	return f.inner.Write(p)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	d := f.fs.check(OpWrite, f.path)
	if d.err != nil {
		if d.torn && len(p) > 0 {
			n, _ := f.inner.WriteAt(p[:len(p)/2], off)
			return n, d.err
		}
		return 0, d.err
	}
	if d.bitFlip && len(p) > 0 {
		return f.inner.WriteAt(f.fs.flipCopy(p), off)
	}
	return f.inner.WriteAt(p, off)
}

// flipCopy returns a copy of p with one random bit flipped.
func (f *FaultFS) flipCopy(p []byte) []byte {
	c := append([]byte(nil), p...)
	f.mu.Lock()
	i := f.rng.Intn(len(c))
	bit := uint(f.rng.Intn(8))
	f.mu.Unlock()
	c[i] ^= 1 << bit
	return c
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	d := f.fs.check(OpRead, f.path)
	if d.err != nil {
		return 0, d.err
	}
	n, err := f.inner.ReadAt(p, off)
	if d.bitFlip && n > 0 {
		f.fs.mu.Lock()
		i := f.fs.rng.Intn(n)
		bit := uint(f.fs.rng.Intn(8))
		f.fs.mu.Unlock()
		p[i] ^= 1 << bit
	}
	return n, err
}

func (f *faultFile) Sync() error {
	if d := f.fs.check(OpSync, f.path); d.err != nil {
		return d.err
	}
	return f.inner.Sync()
}

func (f *faultFile) Size() (int64, error) { return f.inner.Size() }
func (f *faultFile) Close() error         { return f.inner.Close() }
