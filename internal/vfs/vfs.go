// Package vfs abstracts the filesystem under every storage engine in this
// repository. Engines never touch the os package directly; they receive a
// FS. This gives the benchmarks an in-memory filesystem (MemFS) wrapped by
// the device simulator (internal/device), and gives the tests
// fault-injection hooks (torn writes, lost syncs) to exercise recovery
// paths without killing the process.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
)

// File is the subset of file behaviour the engines need. LSM engines use
// append-only Write; the KVell-style slab store updates in place via
// WriteAt.
type File interface {
	io.Writer
	io.Closer
	// ReadAt reads len(p) bytes at offset off.
	ReadAt(p []byte, off int64) (int, error)
	// WriteAt writes len(p) bytes at offset off, extending the file (with
	// zero fill) if needed.
	WriteAt(p []byte, off int64) (int, error)
	// Sync makes previous writes durable.
	Sync() error
	// Size returns the current file size in bytes.
	Size() (int64, error)
}

// FS is a filesystem namespace.
type FS interface {
	// Create truncates/creates a file for writing.
	Create(name string) (File, error)
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Remove deletes a file. Removing an absent file is an error.
	Remove(name string) error
	// Rename atomically renames a file, replacing any existing target.
	Rename(oldname, newname string) error
	// List returns the names (not paths) of files whose directory is dir.
	List(dir string) ([]string, error)
	// MkdirAll ensures a directory path exists.
	MkdirAll(dir string) error
	// Exists reports whether the file exists.
	Exists(name string) bool
	// Link creates newname as a hard link to oldname: both names address
	// the same underlying bytes, and removing one leaves the other intact.
	// Linking over an existing newname is an error. Callers that may run
	// on filesystems without hard-link support should use LinkOrCopy.
	Link(oldname, newname string) error
}

// ErrNotExist mirrors os.ErrNotExist for the in-memory implementations.
var ErrNotExist = os.ErrNotExist

// ErrNoSpace is the space-exhaustion error reported by QuotaFS and by
// FaultFS rules with NoSpace set. Engines classify it with IsNoSpace, not
// by comparing against this sentinel, so that real ENOSPC from the host
// filesystem is handled identically.
var ErrNoSpace = errors.New("vfs: no space left on device")

// IsNoSpace reports whether err is a space-exhaustion error: ErrNoSpace
// (QuotaFS, FaultFS) or the operating system's ENOSPC surfaced through
// OSFS. This is the single classifier every engine uses to decide that a
// failed write is transient disk-full rather than a permanent fault.
func IsNoSpace(err error) bool {
	return errors.Is(err, ErrNoSpace) || errors.Is(err, syscall.ENOSPC)
}

// ProbeSpace reports whether dir currently accepts a small durable write:
// it creates a scratch file, writes and syncs a few hundred bytes, and
// removes it. The disk-full watchdogs use this to decide when space has
// been freed and the engine may auto-resume.
func ProbeSpace(fs FS, dir string) bool {
	name := dir + "/.space-probe"
	f, err := fs.Create(name)
	if err != nil {
		return false
	}
	var probe [512]byte
	_, werr := f.Write(probe[:])
	serr := f.Sync()
	f.Close()
	fs.Remove(name)
	return werr == nil && serr == nil
}

// ---------------------------------------------------------------------------
// MemFS
// ---------------------------------------------------------------------------

// MemFS is a thread-safe in-memory filesystem. It also carries the
// fault-injection state used by crash tests: after Crash() is called every
// file loses the bytes written since its last Sync, emulating a power
// failure with volatile page caches.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFileData
	// frozen rejects all writes; set by Crash to emulate a dead machine
	// until Restart is called. (Scripted fault injection lives in
	// FaultFS, which composes over any FS; MemFS only models the
	// volatile page cache a power failure loses.)
	frozen bool
}

type memFileData struct {
	mu      sync.Mutex
	data    []byte
	durable int // bytes guaranteed to survive Crash()
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *MemFS {
	return &MemFS{files: make(map[string]*memFileData)}
}

func clean(name string) string { return path.Clean(strings.ReplaceAll(name, "\\", "/")) }

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.frozen {
		return nil, errors.New("vfs: filesystem crashed")
	}
	d := &memFileData{}
	fs.files[clean(name)] = d
	return &memFile{fs: fs, d: d, writable: true}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[clean(name)]
	if !ok {
		return nil, fmt.Errorf("vfs: open %s: %w", name, ErrNotExist)
	}
	return &memFile{fs: fs, d: d}, nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	key := clean(name)
	if _, ok := fs.files[key]; !ok {
		return fmt.Errorf("vfs: remove %s: %w", name, ErrNotExist)
	}
	delete(fs.files, key)
	return nil
}

// RemoveTree deletes dir and everything beneath it. MemFS's namespace is
// a flat path map, so the whole subtree is the set of keys under the
// dir/ prefix; deleting an absent tree is a no-op.
func (fs *MemFS) RemoveTree(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	prefix := clean(dir)
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) {
			delete(fs.files, name)
		}
	}
	return nil
}

// Rename implements FS.
func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.frozen {
		// A crashed filesystem cannot mutate its namespace: letting a
		// rename through here would install e.g. a post-crash manifest.
		return errors.New("vfs: filesystem crashed")
	}
	od, ok := fs.files[clean(oldname)]
	if !ok {
		return fmt.Errorf("vfs: rename %s: %w", oldname, ErrNotExist)
	}
	fs.files[clean(newname)] = od
	delete(fs.files, clean(oldname))
	return nil
}

// List implements FS.
func (fs *MemFS) List(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	prefix := clean(dir)
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	var names []string
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) {
			rest := strings.TrimPrefix(name, prefix)
			if rest != "" && !strings.Contains(rest, "/") {
				names = append(names, rest)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS. Directories are implicit in MemFS.
func (fs *MemFS) MkdirAll(string) error { return nil }

// Exists implements FS.
func (fs *MemFS) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[clean(name)]
	return ok
}

// Link implements FS. A MemFS hard link aliases the shared file data, so
// the durability watermark (and Crash truncation) is shared too — exactly
// the semantics of two directory entries over one inode.
func (fs *MemFS) Link(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.frozen {
		return errors.New("vfs: filesystem crashed")
	}
	od, ok := fs.files[clean(oldname)]
	if !ok {
		return fmt.Errorf("vfs: link %s: %w", oldname, ErrNotExist)
	}
	if _, ok := fs.files[clean(newname)]; ok {
		return fmt.Errorf("vfs: link %s: %w", newname, os.ErrExist)
	}
	fs.files[clean(newname)] = od
	return nil
}

// Crash drops all non-durable bytes (everything written since each file's
// last successful Sync) and freezes the filesystem, emulating a power
// failure. Call Restart before reopening engines on it.
func (fs *MemFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.frozen = true
	for _, d := range fs.files {
		d.mu.Lock()
		d.data = d.data[:d.durable]
		d.mu.Unlock()
	}
}

// Restart unfreezes a crashed filesystem so recovery can run against the
// surviving (durable) state.
func (fs *MemFS) Restart() {
	fs.mu.Lock()
	fs.frozen = false
	fs.mu.Unlock()
}

type memFile struct {
	fs       *MemFS
	d        *memFileData
	writable bool
	closed   bool
}

func (f *memFile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, errors.New("vfs: write on closed file")
	}
	f.fs.mu.Lock()
	frozen := f.fs.frozen
	f.fs.mu.Unlock()
	if frozen {
		return 0, errors.New("vfs: filesystem crashed")
	}
	f.d.mu.Lock()
	f.d.data = append(f.d.data, p...)
	f.d.mu.Unlock()
	return len(p), nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, errors.New("vfs: write on closed file")
	}
	f.fs.mu.Lock()
	frozen := f.fs.frozen
	f.fs.mu.Unlock()
	if frozen {
		return 0, errors.New("vfs: filesystem crashed")
	}
	f.d.mu.Lock()
	end := off + int64(len(p))
	if end > int64(len(f.d.data)) {
		grown := make([]byte, end)
		copy(grown, f.d.data)
		f.d.data = grown
	}
	copy(f.d.data[off:end], p)
	// In-place updates are not append-only: data already marked durable
	// may be overwritten; conservatively shrink the durable watermark.
	if int(off) < f.d.durable {
		f.d.durable = int(off)
	}
	f.d.mu.Unlock()
	return len(p), nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	// Zero-length reads succeed regardless of offset, matching
	// os.File.ReadAt (pread with count 0 never reports EOF).
	if len(p) == 0 {
		return 0, nil
	}
	if off >= int64(len(f.d.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Sync() error {
	f.d.mu.Lock()
	f.d.durable = len(f.d.data)
	f.d.mu.Unlock()
	return nil
}

func (f *memFile) Size() (int64, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	return int64(len(f.d.data)), nil
}

func (f *memFile) Close() error {
	f.closed = true
	return nil
}

// ---------------------------------------------------------------------------
// OSFS
// ---------------------------------------------------------------------------

// OSFS maps the FS interface onto the host filesystem. Used by the CLI and
// by anyone embedding the library against real storage.
type OSFS struct{}

// NewOS returns a host-filesystem implementation.
func NewOS() OSFS { return OSFS{} }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	if err := os.MkdirAll(filepath.Dir(name), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// List implements FS.
func (OSFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Exists implements FS.
func (OSFS) Exists(name string) bool {
	_, err := os.Stat(name)
	return err == nil
}

// Link implements FS.
func (OSFS) Link(oldname, newname string) error {
	if err := os.MkdirAll(filepath.Dir(newname), 0o755); err != nil {
		return err
	}
	return os.Link(oldname, newname)
}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
