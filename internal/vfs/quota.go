package vfs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// QuotaFS wraps an FS with a runtime-adjustable byte budget, modelling a
// device that runs out of space. Writes that would push total usage past
// the budget fail with ErrNoSpace before reaching the inner FS; while
// usage already exceeds the budget (after SetBudget shrank it), the
// namespace-mutating operations Create, Rename and Link, plus Sync, fail
// with ErrNoSpace too — matching a real filesystem where even metadata
// updates need free blocks. Reads, Open, List, Exists and Remove always
// pass through, and Remove/Rename-over-existing reclaim the replaced
// file's bytes.
//
// Accounting is by apparent file size as observed through this wrapper:
// Write charges the appended bytes, WriteAt charges only the extension
// beyond the file's current size (in-place updates are free, as on a real
// block device), Create resets the file's charge to zero (truncation).
// Opening a file the wrapper has not seen charges its current size, so a
// QuotaFS layered over a directory with existing state starts from the
// right baseline.
type QuotaFS struct {
	inner FS

	mu     sync.Mutex
	budget int64 // <0 = unlimited
	sizes  map[string]int64
	used   int64

	denials atomic.Int64
}

// NewQuota wraps inner with the given byte budget. A negative budget
// means unlimited (useful as the initial state before a test shrinks it).
func NewQuota(inner FS, budget int64) *QuotaFS {
	return &QuotaFS{inner: inner, budget: budget, sizes: make(map[string]int64)}
}

// SetBudget adjusts the byte budget at runtime. Shrinking below current
// usage does not truncate anything; it makes subsequent writes (and
// Create/Rename/Link/Sync) fail until enough files are removed or the
// budget grows again.
func (fs *QuotaFS) SetBudget(budget int64) {
	fs.mu.Lock()
	fs.budget = budget
	fs.mu.Unlock()
}

// Budget returns the current byte budget (<0 = unlimited).
func (fs *QuotaFS) Budget() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.budget
}

// Used returns the bytes currently charged against the budget.
func (fs *QuotaFS) Used() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.used
}

// Denials returns how many operations were rejected with ErrNoSpace.
func (fs *QuotaFS) Denials() int64 { return fs.denials.Load() }

func (fs *QuotaFS) noSpace(op, name string) error {
	fs.denials.Add(1)
	return fmt.Errorf("vfs: %s %s: %w", op, name, ErrNoSpace)
}

// overLocked reports whether usage already exceeds the budget.
func (fs *QuotaFS) overLocked() bool {
	return fs.budget >= 0 && fs.used > fs.budget
}

// reserve charges n bytes against name, failing if that would exceed the
// budget. Called with fs.mu NOT held.
func (fs *QuotaFS) reserve(op, name string, n int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.budget >= 0 && fs.used+n > fs.budget {
		return fs.noSpace(op, name)
	}
	fs.used += n
	fs.sizes[clean(name)] += n
	return nil
}

// release undoes a reservation after the inner write failed.
func (fs *QuotaFS) release(name string, n int64) {
	fs.mu.Lock()
	fs.used -= n
	fs.sizes[clean(name)] -= n
	fs.mu.Unlock()
}

// forget drops name's charge (file removed or replaced).
func (fs *QuotaFS) forgetLocked(name string) {
	key := clean(name)
	fs.used -= fs.sizes[key]
	delete(fs.sizes, key)
}

// Create implements FS. Creating truncates, so the file's charge resets;
// while over budget even that fails (no free blocks for the new inode).
func (fs *QuotaFS) Create(name string) (File, error) {
	fs.mu.Lock()
	if fs.overLocked() {
		fs.mu.Unlock()
		return nil, fs.noSpace("create", name)
	}
	fs.mu.Unlock()
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	fs.forgetLocked(name)
	fs.sizes[clean(name)] = 0
	fs.mu.Unlock()
	return &quotaFile{fs: fs, name: name, f: f}, nil
}

// Open implements FS. If the wrapper has not seen this file before (it
// predates the QuotaFS), its current size is charged as the baseline.
func (fs *QuotaFS) Open(name string) (File, error) {
	f, err := fs.inner.Open(name)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	if _, ok := fs.sizes[clean(name)]; !ok {
		if sz, serr := f.Size(); serr == nil {
			fs.sizes[clean(name)] = sz
			fs.used += sz
		}
	}
	fs.mu.Unlock()
	return &quotaFile{fs: fs, name: name, f: f}, nil
}

// Remove implements FS and reclaims the file's bytes.
func (fs *QuotaFS) Remove(name string) error {
	if err := fs.inner.Remove(name); err != nil {
		return err
	}
	fs.mu.Lock()
	fs.forgetLocked(name)
	fs.mu.Unlock()
	return nil
}

// Rename implements FS. Renaming over an existing target reclaims the
// replaced bytes; while over budget the rename itself fails (directory
// updates need free blocks too), keeping e.g. manifest installs from
// sneaking past a full disk.
func (fs *QuotaFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	if fs.overLocked() {
		fs.mu.Unlock()
		return fs.noSpace("rename", oldname)
	}
	fs.mu.Unlock()
	if err := fs.inner.Rename(oldname, newname); err != nil {
		return err
	}
	fs.mu.Lock()
	fs.forgetLocked(newname)
	okey, nkey := clean(oldname), clean(newname)
	fs.sizes[nkey] = fs.sizes[okey]
	delete(fs.sizes, okey)
	fs.mu.Unlock()
	return nil
}

// List implements FS.
func (fs *QuotaFS) List(dir string) ([]string, error) { return fs.inner.List(dir) }

// MkdirAll implements FS.
func (fs *QuotaFS) MkdirAll(dir string) error { return fs.inner.MkdirAll(dir) }

// Exists implements FS.
func (fs *QuotaFS) Exists(name string) bool { return fs.inner.Exists(name) }

// Link implements FS. A hard link shares the underlying bytes, so nothing
// is charged, but while over budget the directory update fails.
func (fs *QuotaFS) Link(oldname, newname string) error {
	fs.mu.Lock()
	if fs.overLocked() {
		fs.mu.Unlock()
		return fs.noSpace("link", oldname)
	}
	fs.mu.Unlock()
	return fs.inner.Link(oldname, newname)
}

type quotaFile struct {
	fs   *QuotaFS
	name string
	f    File
}

func (f *quotaFile) Write(p []byte) (int, error) {
	if err := f.fs.reserve("write", f.name, int64(len(p))); err != nil {
		return 0, err
	}
	n, err := f.f.Write(p)
	if err != nil || n < len(p) {
		f.fs.release(f.name, int64(len(p)-n))
	}
	return n, err
}

func (f *quotaFile) WriteAt(p []byte, off int64) (int, error) {
	end := off + int64(len(p))
	f.fs.mu.Lock()
	ext := end - f.fs.sizes[clean(f.name)]
	f.fs.mu.Unlock()
	if ext < 0 {
		ext = 0
	}
	if ext > 0 {
		if err := f.fs.reserve("write", f.name, ext); err != nil {
			return 0, err
		}
	}
	n, err := f.f.WriteAt(p, off)
	if err != nil && ext > 0 {
		f.fs.release(f.name, ext)
	}
	return n, err
}

func (f *quotaFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }

func (f *quotaFile) Sync() error {
	f.fs.mu.Lock()
	over := f.fs.overLocked()
	f.fs.mu.Unlock()
	if over {
		return f.fs.noSpace("sync", f.name)
	}
	return f.f.Sync()
}

func (f *quotaFile) Size() (int64, error) { return f.f.Size() }

func (f *quotaFile) Close() error { return f.f.Close() }
