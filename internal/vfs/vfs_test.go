package vfs

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestMemFSCreateWriteRead(t *testing.T) {
	fs := NewMem()
	f, err := fs.Create("dir/a.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := fs.Open("dir/a.log")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 11)
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello world" {
		t.Fatalf("got %q", buf)
	}
	if sz, _ := r.Size(); sz != 11 {
		t.Fatalf("size = %d, want 11", sz)
	}
}

func TestMemFSReadAtOffsets(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("f")
	f.Write([]byte("0123456789"))
	buf := make([]byte, 4)
	if n, err := f.ReadAt(buf, 3); err != nil || n != 4 || string(buf) != "3456" {
		t.Fatalf("ReadAt(3) = %d %v %q", n, err, buf[:n])
	}
	// Partial read past EOF.
	if n, err := f.ReadAt(buf, 8); err != io.EOF || n != 2 || string(buf[:n]) != "89" {
		t.Fatalf("ReadAt(8) = %d %v %q", n, err, buf[:n])
	}
	// Fully past EOF.
	if _, err := f.ReadAt(buf, 10); err != io.EOF {
		t.Fatalf("ReadAt(10) err = %v, want EOF", err)
	}
}

// TestReadAtBoundarySemantics pins memFile.ReadAt to os.File.ReadAt
// semantics at the end-of-file boundaries by running the same table
// against both implementations.
func TestReadAtBoundarySemantics(t *testing.T) {
	const content = "0123456789"

	mem := NewMem()
	mf, _ := mem.Create("f")
	mf.Write([]byte(content))

	osfs := NewOS()
	path := t.TempDir() + "/f"
	wf, err := osfs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	wf.Write([]byte(content))
	wf.Close()
	of, err := osfs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer of.Close()

	cases := []struct {
		name    string
		bufLen  int
		off     int64
		wantN   int
		wantErr error
	}{
		{"interior full read", 4, 3, 4, nil},
		{"read ending exactly at EOF", 4, 6, 4, nil},
		{"whole file exactly", 10, 0, 10, nil},
		{"short read crossing EOF", 4, 8, 2, io.EOF},
		{"read starting at EOF", 4, 10, 0, io.EOF},
		{"read starting past EOF", 4, 15, 0, io.EOF},
		{"empty read interior", 0, 3, 0, nil},
		{"empty read exactly at EOF", 0, 10, 0, nil},
		{"empty read past EOF", 0, 15, 0, nil},
	}
	for _, tc := range cases {
		for _, impl := range []struct {
			name string
			f    File
		}{{"memFile", mf}, {"osFile", of}} {
			buf := make([]byte, tc.bufLen)
			n, err := impl.f.ReadAt(buf, tc.off)
			if n != tc.wantN || err != tc.wantErr {
				t.Errorf("%s: %s.ReadAt(len=%d, off=%d) = (%d, %v), want (%d, %v)",
					tc.name, impl.name, tc.bufLen, tc.off, n, err, tc.wantN, tc.wantErr)
			}
			if n > 0 && string(buf[:n]) != content[tc.off:tc.off+int64(n)] {
				t.Errorf("%s: %s read %q", tc.name, impl.name, buf[:n])
			}
		}
	}
}

func TestMemFSOpenMissing(t *testing.T) {
	fs := NewMem()
	if _, err := fs.Open("nope"); err == nil {
		t.Fatal("expected error opening missing file")
	}
	if err := fs.Remove("nope"); err == nil {
		t.Fatal("expected error removing missing file")
	}
	if fs.Exists("nope") {
		t.Fatal("Exists(nope) = true")
	}
}

func TestMemFSRename(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("a")
	f.Write([]byte("x"))
	f.Close()
	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("a") || !fs.Exists("b") {
		t.Fatal("rename did not move the file")
	}
	if err := fs.Rename("a", "c"); err == nil {
		t.Fatal("expected error renaming missing file")
	}
}

func TestMemFSList(t *testing.T) {
	fs := NewMem()
	for _, name := range []string{"db/1.sst", "db/2.sst", "db/sub/3.sst", "other/x"} {
		f, _ := fs.Create(name)
		f.Close()
	}
	names, err := fs.List("db")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1.sst", "2.sst"}
	if len(names) != len(want) {
		t.Fatalf("List(db) = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("List(db) = %v, want %v", names, want)
		}
	}
}

func TestMemFSCrashDropsUnsynced(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("wal")
	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("-volatile"))
	fs.Crash()

	// Writes must fail while crashed.
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write succeeded on crashed fs")
	}
	fs.Restart()

	r, err := fs.Open("wal")
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := r.Size()
	if sz != int64(len("durable")) {
		t.Fatalf("post-crash size = %d, want %d", sz, len("durable"))
	}
	buf := make([]byte, sz)
	r.ReadAt(buf, 0)
	if string(buf) != "durable" {
		t.Fatalf("post-crash contents = %q", buf)
	}
}

func TestFaultFSFailNextSync(t *testing.T) {
	mem := NewMem()
	fs := NewFault(mem)
	f, _ := fs.Create("wal")
	f.Write([]byte("abc"))
	fs.FailNextSync()
	if err := f.Sync(); err == nil {
		t.Fatal("expected injected sync failure")
	}
	if got := fs.InjectedFaults(); got != 1 {
		t.Fatalf("InjectedFaults = %d, want 1", got)
	}
	// Failed sync means the data is still volatile.
	mem.Crash()
	mem.Restart()
	r, _ := fs.Open("wal")
	if sz, _ := r.Size(); sz != 0 {
		t.Fatalf("data survived a failed sync: size=%d", sz)
	}
	// One-shot: the next sync goes through.
	if err := f.Sync(); err != nil {
		t.Fatalf("second sync should succeed: %v", err)
	}
}

func TestMemFSRenameOnCrashedFS(t *testing.T) {
	// Regression: renames must not succeed on a crashed filesystem —
	// a "post-crash" manifest install slipping through would break the
	// crash model.
	fs := NewMem()
	f, _ := fs.Create("MANIFEST.new")
	f.Write([]byte("edit"))
	f.Sync()
	f.Close()
	fs.Crash()
	if err := fs.Rename("MANIFEST.new", "MANIFEST"); err == nil {
		t.Fatal("Rename must fail on a crashed fs")
	}
	if fs.Exists("MANIFEST") {
		t.Fatal("rename target appeared despite the crash")
	}
	fs.Restart()
	if err := fs.Rename("MANIFEST.new", "MANIFEST"); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSWriteReadQuick(t *testing.T) {
	// Property: any sequence of appended chunks reads back as their
	// concatenation at every offset.
	fn := func(chunks [][]byte) bool {
		fs := NewMem()
		f, _ := fs.Create("f")
		var want []byte
		for _, c := range chunks {
			f.Write(c)
			want = append(want, c...)
		}
		got := make([]byte, len(want))
		if len(want) > 0 {
			if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
				return false
			}
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOSFSBasic(t *testing.T) {
	dir := t.TempDir()
	fs := NewOS()
	f, err := fs.Create(dir + "/sub/a")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("data"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !fs.Exists(dir + "/sub/a") {
		t.Fatal("file should exist")
	}
	names, err := fs.List(dir + "/sub")
	if err != nil || len(names) != 1 || names[0] != "a" {
		t.Fatalf("List = %v, %v", names, err)
	}
	r, err := fs.Open(dir + "/sub/a")
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := r.Size(); sz != 4 {
		t.Fatalf("size=%d", sz)
	}
	r.Close()
	if err := fs.Rename(dir+"/sub/a", dir+"/sub/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(dir + "/sub/b"); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSWriteAt(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("slab")
	// WriteAt past EOF zero-fills the gap.
	if _, err := f.WriteAt([]byte("xyz"), 10); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 13 {
		t.Fatalf("size = %d, want 13", sz)
	}
	buf := make([]byte, 13)
	f.ReadAt(buf, 0)
	for i := 0; i < 10; i++ {
		if buf[i] != 0 {
			t.Fatalf("gap not zero-filled at %d", i)
		}
	}
	if string(buf[10:]) != "xyz" {
		t.Fatalf("tail = %q", buf[10:])
	}
	// In-place overwrite.
	if _, err := f.WriteAt([]byte("AB"), 10); err != nil {
		t.Fatal(err)
	}
	f.ReadAt(buf, 0)
	if string(buf[10:]) != "ABz" {
		t.Fatalf("overwrite = %q", buf[10:])
	}
}

func TestWriteAtInvalidatesDurability(t *testing.T) {
	// Overwriting already-synced bytes re-exposes them to crash loss
	// until the next sync — the conservative in-place-update contract.
	fs := NewMem()
	f, _ := fs.Create("slab")
	f.Write([]byte("stable"))
	f.Sync()
	f.WriteAt([]byte("X"), 0)
	fs.Crash()
	fs.Restart()
	r, _ := fs.Open("slab")
	sz, _ := r.Size()
	if sz != 0 {
		buf := make([]byte, sz)
		r.ReadAt(buf, 0)
		if string(buf[:1]) == "X" {
			t.Fatal("unsynced in-place write survived crash")
		}
	}
}

func TestWriteAtOnCrashedFS(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("slab")
	fs.Crash()
	if _, err := f.WriteAt([]byte("x"), 0); err == nil {
		t.Fatal("WriteAt must fail on crashed fs")
	}
	fs.Restart()
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
}
