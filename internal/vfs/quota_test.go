package vfs

import (
	"errors"
	"testing"
)

func TestQuotaFSWriteBudget(t *testing.T) {
	fs := NewQuota(NewMem(), 100)
	f, err := fs.Create("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 60)); err != nil {
		t.Fatalf("write under budget: %v", err)
	}
	if _, err := f.Write(make([]byte, 60)); !IsNoSpace(err) {
		t.Fatalf("write past budget: got %v, want ENOSPC", err)
	}
	if got := fs.Used(); got != 60 {
		t.Fatalf("failed write must not charge: used = %d, want 60", got)
	}
	// The remaining budget still accepts a fitting write.
	if _, err := f.Write(make([]byte, 40)); err != nil {
		t.Fatalf("write filling budget exactly: %v", err)
	}
	if fs.Denials() == 0 {
		t.Fatal("denial counter never advanced")
	}
}

func TestQuotaFSWriteAtChargesOnlyExtension(t *testing.T) {
	fs := NewQuota(NewMem(), 100)
	f, err := fs.Create("db/slab")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	// In-place rewrite: no extension, no charge, succeeds at full budget.
	if _, err := f.WriteAt(make([]byte, 50), 25); err != nil {
		t.Fatalf("in-place WriteAt at full budget: %v", err)
	}
	// Extension past the budget fails.
	if _, err := f.WriteAt(make([]byte, 50), 75); !IsNoSpace(err) {
		t.Fatalf("extending WriteAt past budget: got %v, want ENOSPC", err)
	}
}

func TestQuotaFSRemoveReclaims(t *testing.T) {
	fs := NewQuota(NewMem(), 100)
	f, _ := fs.Create("db/a")
	f.Write(make([]byte, 100))
	f.Close()
	g, _ := fs.Create("db/b")
	if _, err := g.Write([]byte("x")); !IsNoSpace(err) {
		t.Fatalf("budget full: got %v, want ENOSPC", err)
	}
	if err := fs.Remove("db/a"); err != nil {
		t.Fatal(err)
	}
	if got := fs.Used(); got != 0 {
		t.Fatalf("used after remove = %d, want 0", got)
	}
	if _, err := g.Write(make([]byte, 100)); err != nil {
		t.Fatalf("write after reclaim: %v", err)
	}
}

func TestQuotaFSRenameOverReclaims(t *testing.T) {
	fs := NewQuota(NewMem(), 100)
	a, _ := fs.Create("db/a")
	a.Write(make([]byte, 60))
	b, _ := fs.Create("db/b")
	b.Write(make([]byte, 40))
	if err := fs.Rename("db/a", "db/b"); err != nil {
		t.Fatal(err)
	}
	if got := fs.Used(); got != 60 {
		t.Fatalf("used after rename-over = %d, want 60", got)
	}
}

func TestQuotaFSShrinkBlocksNamespaceAndSync(t *testing.T) {
	fs := NewQuota(NewMem(), -1)
	f, _ := fs.Create("db/a")
	f.Write(make([]byte, 100))
	fs.SetBudget(50) // now over budget
	if _, err := fs.Create("db/new"); !IsNoSpace(err) {
		t.Fatalf("Create while over budget: got %v, want ENOSPC", err)
	}
	if err := fs.Rename("db/a", "db/a2"); !IsNoSpace(err) {
		t.Fatalf("Rename while over budget: got %v, want ENOSPC", err)
	}
	if err := f.Sync(); !IsNoSpace(err) {
		t.Fatalf("Sync while over budget: got %v, want ENOSPC", err)
	}
	// Reads always pass through.
	if _, err := f.ReadAt(make([]byte, 10), 0); err != nil {
		t.Fatalf("read while over budget: %v", err)
	}
	// Growing the budget clears the condition.
	fs.SetBudget(200)
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync after budget grows: %v", err)
	}
	if _, err := f.Write(make([]byte, 50)); err != nil {
		t.Fatalf("write after budget grows: %v", err)
	}
}

func TestQuotaFSOpenChargesExistingFiles(t *testing.T) {
	mem := NewMem()
	f, _ := mem.Create("db/old")
	f.Write(make([]byte, 70))
	f.Close()

	fs := NewQuota(mem, 100)
	g, err := fs.Open("db/old")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if got := fs.Used(); got != 70 {
		t.Fatalf("used after opening pre-existing file = %d, want 70", got)
	}
	h, _ := fs.Create("db/new")
	if _, err := h.Write(make([]byte, 50)); !IsNoSpace(err) {
		t.Fatalf("write ignoring pre-existing baseline: got %v, want ENOSPC", err)
	}
}

func TestQuotaFSProbeSpace(t *testing.T) {
	fs := NewQuota(NewMem(), 10)
	if ProbeSpace(fs, "db") {
		t.Fatal("ProbeSpace succeeded with a 10-byte budget")
	}
	fs.SetBudget(1 << 20)
	if !ProbeSpace(fs, "db") {
		t.Fatal("ProbeSpace failed with a roomy budget")
	}
	if fs.Exists("db/.space-probe") {
		t.Fatal("probe file left behind")
	}
}

func TestFaultFSNoSpaceRule(t *testing.T) {
	fs := NewFault(NewMem())
	fs.Inject(Rule{Op: OpWrite, NoSpace: true, CountN: 2})
	f, err := fs.Create("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	_, err = f.Write([]byte("second"))
	if !IsNoSpace(err) {
		t.Fatalf("NoSpace rule: got %v, want ENOSPC classification", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("NoSpace rule error must still match ErrInjected, got %v", err)
	}
	if fs.InjectedFaults() != 1 {
		t.Fatalf("injected count = %d, want 1", fs.InjectedFaults())
	}
}

func TestFaultFSNoSpaceRuleSync(t *testing.T) {
	fs := NewFault(NewMem())
	fs.Inject(Rule{Op: OpSync, NoSpace: true, OneShot: true})
	f, _ := fs.Create("db/a")
	if err := f.Sync(); !IsNoSpace(err) {
		t.Fatalf("sync: got %v, want ENOSPC", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("one-shot rule persisted: %v", err)
	}
}
