package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestMemFSLinkAliasesData(t *testing.T) {
	fs := NewMem()
	if err := WriteFile(fs, "a/src", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link("a/src", "b/dst"); err != nil {
		t.Fatalf("Link: %v", err)
	}
	got, err := ReadFile(fs, "b/dst")
	if err != nil || string(got) != "hello" {
		t.Fatalf("linked read = %q, %v", got, err)
	}
	// Two directory entries over one inode: appends through one name are
	// visible through the other.
	f, err := fs.Create("a/src")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Create replaces the inode, so the link keeps the OLD content — the
	// property checkpointing relies on: once an immutable file is linked
	// into a backup, rewrites of the source name cannot touch the image.
	got, err = ReadFile(fs, "b/dst")
	if err != nil || string(got) != "hello" {
		t.Fatalf("after source rewrite, linked file = %q, %v (want original bytes)", got, err)
	}
}

func TestMemFSLinkErrors(t *testing.T) {
	fs := NewMem()
	if err := fs.Link("missing", "dst"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("link of missing file: %v", err)
	}
	if err := WriteFile(fs, "a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(fs, "b", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link("a", "b"); !errors.Is(err, os.ErrExist) {
		t.Fatalf("link over existing file: %v", err)
	}
	fs.Crash()
	if err := fs.Link("a", "c"); err == nil {
		t.Fatal("link on crashed filesystem succeeded")
	}
	fs.Restart()
	if err := fs.Link("a", "c"); err != nil {
		t.Fatalf("link after restart: %v", err)
	}
}

func TestOSFSLinkSameFile(t *testing.T) {
	fs := NewOS()
	dir := t.TempDir()
	src := filepath.Join(dir, "sub", "src")
	dst := filepath.Join(dir, "other", "dst")
	if err := WriteFile(fs, src, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link(src, dst); err != nil {
		t.Fatalf("Link: %v", err)
	}
	si, err := os.Stat(src)
	if err != nil {
		t.Fatal(err)
	}
	di, err := os.Stat(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !os.SameFile(si, di) {
		t.Fatal("OSFS.Link did not produce a hard link (different inodes)")
	}
}

func TestLinkOrCopyFallback(t *testing.T) {
	fs := NewMem()
	if err := WriteFile(fs, "src", []byte("data")); err != nil {
		t.Fatal(err)
	}
	linked, err := LinkOrCopy(fs, "src", "dst")
	if err != nil || !linked {
		t.Fatalf("same-FS LinkOrCopy: linked=%v err=%v", linked, err)
	}
	// A destination that already exists refuses the link; LinkOrCopy must
	// fall back to copying rather than failing.
	if err := WriteFile(fs, "existing", []byte("old")); err != nil {
		t.Fatal(err)
	}
	linked, err = LinkOrCopy(fs, "src", "existing")
	if err != nil || linked {
		t.Fatalf("fallback LinkOrCopy: linked=%v err=%v", linked, err)
	}
	got, err := ReadFile(fs, "existing")
	if err != nil || string(got) != "data" {
		t.Fatalf("fallback copy = %q, %v", got, err)
	}
}

func TestFaultFSLinkInjection(t *testing.T) {
	mem := NewMem()
	ffs := NewFaultSeeded(mem, 1)
	if err := WriteFile(ffs, "src", []byte("x")); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(Rule{Op: OpLink, Prob: 1})
	if err := ffs.Link("src", "dst"); err == nil {
		t.Fatal("injected link fault did not fire")
	}
	ffs.ClearRules()
	if err := ffs.Link("src", "dst"); err != nil {
		t.Fatalf("link after clearing rules: %v", err)
	}
	if !mem.Exists("dst") {
		t.Fatal("link did not reach the underlying filesystem")
	}
}
