package vfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func TestFaultFSCountNTargetsNthOp(t *testing.T) {
	fs := NewFault(NewMem())
	fs.Inject(Rule{Op: OpWrite, CountN: 3})
	f, _ := fs.Create("f")
	for i := 1; i <= 5; i++ {
		_, err := f.Write([]byte("x"))
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("write %d: err = %v, want injected", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("write %d: unexpected err %v", i, err)
		}
	}
	if got := fs.InjectedFaults(); got != 1 {
		t.Fatalf("InjectedFaults = %d, want 1", got)
	}
}

func TestFaultFSPathSubstring(t *testing.T) {
	fs := NewFault(NewMem())
	fs.Inject(Rule{Op: OpSync, Path: ".log"})
	wal, _ := fs.Create("db/000001.log")
	sst, _ := fs.Create("db/000002.sst")
	if err := wal.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("log sync err = %v, want injected", err)
	}
	if err := sst.Sync(); err != nil {
		t.Fatalf("sst sync must not be matched: %v", err)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	mem := NewMem()
	fs := NewFault(mem)
	f, _ := fs.Create("wal")
	if _, err := f.Write([]byte("intact")); err != nil {
		t.Fatal(err)
	}
	fs.Inject(Rule{Op: OpWrite, CountN: 1, OneShot: true, TornWrite: true})
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("torn write persisted %d bytes, want %d", n, len(payload)/2)
	}
	// The inner file holds the intact prefix plus half the torn payload.
	r, _ := mem.Open("wal")
	sz, _ := r.Size()
	want := "intact" + "01234"
	if sz != int64(len(want)) {
		t.Fatalf("inner size = %d, want %d", sz, len(want))
	}
	buf := make([]byte, sz)
	r.ReadAt(buf, 0)
	if string(buf) != want {
		t.Fatalf("inner contents = %q, want %q", buf, want)
	}
}

func TestFaultFSBitFlip(t *testing.T) {
	fs := NewFault(NewMem())
	f, _ := fs.Create("data")
	content := bytes.Repeat([]byte{0xAA}, 64)
	f.Write(content)
	fs.Inject(Rule{Op: OpRead, CountN: 1, OneShot: true, BitFlip: true})
	buf := make([]byte, 64)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("bit-flip reads must report success: %v", err)
	}
	diff := 0
	for i := range buf {
		if buf[i] != content[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ after bit flip, want exactly 1", diff)
	}
	// Subsequent reads are clean.
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, content) {
		t.Fatal("corruption persisted beyond the one-shot rule")
	}
}

func TestFaultFSProbabilistic(t *testing.T) {
	fs := NewFaultSeeded(NewMem(), 42)
	fs.Inject(Rule{Op: OpWrite, Prob: 0.5})
	f, _ := fs.Create("f")
	failures := 0
	for i := 0; i < 200; i++ {
		if _, err := f.Write([]byte("x")); err != nil {
			failures++
		}
	}
	if failures < 50 || failures > 150 {
		t.Fatalf("p=0.5 over 200 ops fired %d times", failures)
	}
	if fs.InjectedFaults() != int64(failures) {
		t.Fatalf("counter %d != observed %d", fs.InjectedFaults(), failures)
	}
}

func TestFaultFSDelayOnly(t *testing.T) {
	fs := NewFault(NewMem())
	fs.Inject(Rule{Op: OpSync, CountN: 1, OneShot: true, DelayOnly: true, Delay: 30 * time.Millisecond})
	f, _ := fs.Create("f")
	f.Write([]byte("x"))
	start := time.Now()
	if err := f.Sync(); err != nil {
		t.Fatalf("delay-only rule must not error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("sync returned after %v, want >= 30ms delay", d)
	}
}

func TestFaultFSCustomErrAndClear(t *testing.T) {
	boom := errors.New("boom")
	fs := NewFault(NewMem())
	fs.Inject(Rule{Op: OpCreate, Err: boom})
	if _, err := fs.Create("f"); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	fs.ClearRules()
	if _, err := fs.Create("f"); err != nil {
		t.Fatalf("rules cleared, create should pass: %v", err)
	}
	if got := fs.InjectedFaults(); got != 1 {
		t.Fatalf("ClearRules must keep counters: got %d", got)
	}
}

func TestFaultFSComposesOverCrash(t *testing.T) {
	// FaultFS layered over MemFS keeps the crash/durability model intact:
	// a torn write is truncated entirely by a crash when never synced.
	mem := NewMem()
	fs := NewFault(mem)
	f, _ := fs.Create("wal")
	f.Write([]byte("durable"))
	f.Sync()
	fs.Inject(Rule{Op: OpWrite, CountN: 1, OneShot: true, TornWrite: true})
	f.Write([]byte("torn-record"))
	mem.Crash()
	mem.Restart()
	r, _ := fs.Open("wal")
	sz, _ := r.Size()
	if sz != int64(len("durable")) {
		t.Fatalf("post-crash size = %d, want %d", sz, len("durable"))
	}
}

func TestFaultFSReadAtEOFStillInjects(t *testing.T) {
	// An error rule on reads fires even when the underlying read would
	// have hit EOF — the injection layer sits above the inner file.
	fs := NewFault(NewMem())
	f, _ := fs.Create("f")
	f.Write([]byte("ab"))
	fs.Inject(Rule{Op: OpRead})
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	fs.ClearRules()
	if n, err := f.ReadAt(buf, 0); err != io.EOF || n != 2 {
		t.Fatalf("clean short read = (%d, %v)", n, err)
	}
}

func TestFaultFSWriteBitFlipPersists(t *testing.T) {
	// A BitFlip on the write path damages the bytes as they land on the
	// inner file: the write reports success, and the corruption is durable
	// — every later read sees it. This is the at-rest-rot model the scrub
	// torture tests drive.
	fs := NewFault(NewMem())
	f, _ := fs.Create("data")
	content := bytes.Repeat([]byte{0x55}, 64)
	fs.Inject(Rule{Op: OpWrite, CountN: 1, OneShot: true, BitFlip: true})
	if _, err := f.Write(content); err != nil {
		t.Fatalf("bit-flip writes must report success: %v", err)
	}
	diff := func() int {
		buf := make([]byte, 64)
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		d := 0
		for i := range buf {
			if buf[i] != content[i] {
				d++
			}
		}
		return d
	}
	if d := diff(); d != 1 {
		t.Fatalf("%d bytes differ after write bit flip, want exactly 1", d)
	}
	// The damage is at rest, not transient: a re-read sees the same flip.
	if d := diff(); d != 1 {
		t.Fatalf("%d bytes differ on re-read, want the persisted flip", d)
	}
	if fs.InjectedFaults() != 1 {
		t.Fatalf("InjectedFaults = %d, want 1", fs.InjectedFaults())
	}
}

func TestFaultFSCorruptAt(t *testing.T) {
	fs := NewFault(NewMem())
	f, _ := fs.Create("data")
	content := []byte("abcdefgh")
	f.Write(content)
	f.Sync()
	f.Close()

	if err := fs.CorruptAt("data", 3); err != nil {
		t.Fatal(err)
	}
	r, _ := fs.Open("data")
	buf := make([]byte, len(content))
	r.ReadAt(buf, 0)
	r.Close()
	if buf[3] != content[3]^0x01 {
		t.Fatalf("byte 3 = %#x, want %#x", buf[3], content[3]^0x01)
	}
	for i, b := range buf {
		if i != 3 && b != content[i] {
			t.Fatalf("byte %d collaterally damaged", i)
		}
	}
	// Deterministic: a second flip at the same offset restores the byte.
	if err := fs.CorruptAt("data", 3); err != nil {
		t.Fatal(err)
	}
	r, _ = fs.Open("data")
	r.ReadAt(buf, 0)
	r.Close()
	if !bytes.Equal(buf, content) {
		t.Fatal("double flip did not restore the original content")
	}
	// Out-of-range offsets and missing files are loud errors, not no-ops.
	if err := fs.CorruptAt("data", int64(len(content))); err == nil {
		t.Fatal("offset past EOF must error")
	}
	if err := fs.CorruptAt("data", -1); err == nil {
		t.Fatal("negative offset must error")
	}
	if err := fs.CorruptAt("no-such-file", 0); err == nil {
		t.Fatal("missing file must error")
	}
}
