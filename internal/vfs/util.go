package vfs

import (
	"hash/crc32"
	"io"
	"os"
)

// ReadFile returns the full contents of name.
func ReadFile(fs FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf, nil
	}
	n, err := f.ReadAt(buf, 0)
	if err != nil && !(err == io.EOF && int64(n) == size) {
		return nil, err
	}
	return buf[:n], nil
}

// WriteFile creates name with the given contents and syncs it.
func WriteFile(fs FS, name string, data []byte) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// CopyPrefix copies the first n bytes of src (on srcFS) to dst (on dstFS),
// creating dst through a temporary name so a partially written copy never
// shadows a complete one. It is the backbone of checkpointing: WAL files
// are append-only, so a [0, n) prefix captured at a known watermark is a
// stable, self-consistent image even while the source keeps growing.
func CopyPrefix(srcFS FS, src string, dstFS FS, dst string, n int64) error {
	in, err := srcFS.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	tmp := dst + ".tmp"
	out, err := dstFS.Create(tmp)
	if err != nil {
		return err
	}
	buf := make([]byte, 1<<16)
	var off int64
	for off < n {
		chunk := int64(len(buf))
		if n-off < chunk {
			chunk = n - off
		}
		rn, rerr := in.ReadAt(buf[:chunk], off)
		if rn > 0 {
			if _, werr := out.Write(buf[:rn]); werr != nil {
				out.Close()
				dstFS.Remove(tmp)
				return werr
			}
			off += int64(rn)
		}
		if rerr != nil {
			if rerr == io.EOF && off == n {
				break
			}
			out.Close()
			dstFS.Remove(tmp)
			return rerr
		}
	}
	if err := out.Sync(); err != nil {
		out.Close()
		dstFS.Remove(tmp)
		return err
	}
	if err := out.Close(); err != nil {
		dstFS.Remove(tmp)
		return err
	}
	return dstFS.Rename(tmp, dst)
}

// CopyFile copies all of src (on srcFS) to dst (on dstFS) via CopyPrefix.
func CopyFile(srcFS FS, src string, dstFS FS, dst string) error {
	in, err := srcFS.Open(src)
	if err != nil {
		return err
	}
	size, err := in.Size()
	in.Close()
	if err != nil {
		return err
	}
	return CopyPrefix(srcFS, src, dstFS, dst, size)
}

// LinkOrCopy makes newname hold the same bytes as oldname, preferring a
// hard link (zero data movement) and falling back to a full copy when the
// filesystem refuses the link (e.g. a cross-device destination).
// Both names are on the same FS. Returns linked=true when the cheap path
// was taken.
func LinkOrCopy(fs FS, oldname, newname string) (linked bool, err error) {
	if err := fs.Link(oldname, newname); err == nil {
		return true, nil
	}
	return false, CopyFile(fs, oldname, fs, newname)
}

// RemoveTree deletes dir and everything beneath it, tolerating an absent
// dir. It is how resharding resets an engine instance directory to a
// blank slate — before seeding a fresh worker, and when rolling back an
// aborted or crash-interrupted transition. FS.List only enumerates plain
// files, so tree removal needs per-implementation help: OSFS defers to
// os.RemoveAll, implementations exposing their own RemoveTree (MemFS's
// flat namespace makes it a prefix delete) are delegated to, wrappers
// exposing Inner() are unwrapped, and anything else gets a flat
// List+Remove (sufficient for the flat layouts engines use).
func RemoveTree(fs FS, dir string) error {
	for {
		switch t := fs.(type) {
		case OSFS:
			return os.RemoveAll(dir)
		case interface{ RemoveTree(string) error }:
			return t.RemoveTree(dir)
		case interface{ Inner() FS }:
			fs = t.Inner()
			continue
		}
		names, err := fs.List(dir)
		if err != nil {
			if !fs.Exists(dir) {
				return nil
			}
			return err
		}
		for _, n := range names {
			if err := fs.Remove(dir + "/" + n); err != nil {
				return err
			}
		}
		return nil
	}
}

// Checksum returns the CRC-32C of the file's full contents along with its
// size. Backup manifests record both for end-to-end restore verification.
func Checksum(fs FS, name string) (crc uint32, size int64, err error) {
	f, err := fs.Open(name)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	size, err = f.Size()
	if err != nil {
		return 0, 0, err
	}
	h := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	buf := make([]byte, 1<<16)
	var off int64
	for off < size {
		n, rerr := f.ReadAt(buf, off)
		if n > 0 {
			h.Write(buf[:n])
			off += int64(n)
		}
		if rerr != nil {
			if rerr == io.EOF && off == size {
				break
			}
			return 0, 0, rerr
		}
	}
	return h.Sum32(), size, nil
}
