// Package ackedlog is a tiny client-side journal of acknowledged writes,
// shared by the load tools (netbench -acked_log, crashkv). A load driver
// appends one record per write the server *acked*; after a server crash
// and restart a verifier replays the log and checks every acked write is
// still present. The log lives in the driver process, which survives the
// server's crash, so buffered writes are fine — Flush before verifying.
//
// Records are lines of tab-separated fields. Fields are hex-escaped so
// arbitrary binary keys and values round-trip.
package ackedlog

import (
	"bufio"
	"encoding/hex"
	"os"
	"strings"
	"sync"
)

// Writer appends records to an acked-write log.
type Writer struct {
	mu sync.Mutex
	f  *os.File
	bw *bufio.Writer
}

// Create creates (truncating) the log at path.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<16)}, nil
}

// Append writes one record. Safe for concurrent use (each connection of
// a load driver logs its own acks).
func (w *Writer) Append(fields ...string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, fld := range fields {
		if i > 0 {
			if err := w.bw.WriteByte('\t'); err != nil {
				return err
			}
		}
		if _, err := w.bw.WriteString(hex.EncodeToString([]byte(fld))); err != nil {
			return err
		}
	}
	return w.bw.WriteByte('\n')
}

// Flush pushes buffered records to the OS.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bw.Flush()
}

// Close flushes and closes the log.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ReadAll parses every record in the log at path.
func ReadAll(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out [][]string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		rec := make([]string, len(parts))
		for i, p := range parts {
			b, err := hex.DecodeString(p)
			if err != nil {
				return nil, err
			}
			rec[i] = string(b)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
