// Package wal implements the write-ahead log with the RocksDB-style
// group-logging protocol the paper analyzes (§2.2, Figure 3): concurrent
// appenders form a group; one is elected leader, aggregates every group
// member's record into a single log IO, and wakes the followers when the
// write completes. The time followers spend parked — and the time the
// leader spends waking them — is the paper's "WAL lock" latency component
// (Figure 6), so Append meters it separately from the log IO itself.
//
// Log format v2 opens the file with an 8-byte magic preamble, then
// records (little endian):
//
//	crc32(hdr[4:]) u32 | crc32(payload) u32 | len(payload) u32 | gsn u64 | payload
//
// The leading header checksum covers the payload checksum, the length and
// the GSN, so no field a replay decision depends on is ever trusted
// unverified: at-rest rot anywhere in a committed record — header or
// payload — is detected and reported instead of being mistaken for a
// crash-torn tail. Files without the preamble are legacy v1 logs
// (crc32(payload) u32 | len u32 | gsn u64 | payload, unprotected header)
// and replay with a best-effort rot heuristic; every new log is v2.
//
// The gsn field carries p2KVS's Global Sequence Number for cross-instance
// transaction rollback (§4.5); engines running standalone write 0.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

const (
	headerLen   = 16 // v1: pcrc u32 | plen u32 | gsn u64
	headerLenV2 = 20 // hcrc u32 | pcrc u32 | plen u32 | gsn u64
)

// magicV2 opens every log written at format v2. Its presence is the
// format sniff at replay; ReadAll also flags near-miss preambles so rot
// in the magic itself cannot demote a v2 log to the laxer v1 parse.
var magicV2 = []byte("p2wal-2\n")

// SyncPolicy selects when the log fsyncs, i.e. what an acknowledged
// append guarantees if the process dies. See DESIGN.md §11 for the full
// contract.
type SyncPolicy int

const (
	// PolicyNever never fsyncs on the append path (RocksDB async
	// logging, the paper's default): an acked append survives process
	// death only once something else — rotation, Flush, Close — synced
	// the file. Zero value.
	PolicyNever SyncPolicy = iota
	// PolicyInterval fsyncs lazily on the append path whenever
	// Options.SyncEvery has elapsed since the last sync: a crash loses
	// at most the appends of the final interval.
	PolicyInterval
	// PolicyCommit fsyncs before any append in the group is
	// acknowledged: every acked append survives SIGKILL. The group
	// leader performs one fsync for the whole group, so the cost
	// amortizes across the OBM batch exactly like the write itself.
	PolicyCommit
)

func (p SyncPolicy) String() string {
	switch p {
	case PolicyNever:
		return "never"
	case PolicyInterval:
		return "interval"
	case PolicyCommit:
		return "commit"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Options configures a Writer.
type Options struct {
	// Policy selects the durability policy (default PolicyNever, unless
	// the legacy SyncOnCommit flag below promotes it).
	Policy SyncPolicy
	// SyncEvery bounds durability staleness under PolicyInterval
	// (default 100ms). Ignored by the other policies.
	SyncEvery time.Duration
	// SyncOnCommit is the legacy boolean form of PolicyCommit, kept so
	// existing call sites and configs keep their meaning: when set and
	// Policy is the zero value, the writer runs PolicyCommit.
	SyncOnCommit bool
	// GroupCommit enables leader/follower aggregation. Disabled, every
	// append performs its own IO under the log mutex.
	GroupCommit bool
	// MaxGroupBytes bounds how much payload one leader aggregates.
	MaxGroupBytes int
	// MaxGroupCount bounds how many waiters one leader aggregates.
	MaxGroupCount int
	// PerRecordCost / PerByteCost model the serialized host software
	// path of logging — encoding records, checksumming, the kernel IO
	// stack — which the leader performs for the whole group (§3.3: this
	// is the CPU work that overloads a core under small-KV writes). The
	// simulated-time benchmarks set these to the real-world cost times
	// the device time scale; production use leaves them zero (the real
	// CPU path is the model).
	PerRecordCost time.Duration
	PerByteCost   time.Duration
}

// DefaultOptions mirror RocksDB defaults.
func DefaultOptions() Options {
	return Options{GroupCommit: true, MaxGroupBytes: 1 << 20, MaxGroupCount: 1024}
}

// Stats aggregates the write-path timing the paper's Figure 6 plots.
type Stats struct {
	Appends   int64
	GroupIOs  int64         // actual log writes (after aggregation)
	Bytes     int64         // payload bytes appended
	IOTime    time.Duration // "WAL": encode+write(+sync), leader-side
	LockTime  time.Duration // "WAL lock": queueing + follower parking + wakeup
	GroupSize int64         // summed group sizes (avg = GroupSize/GroupIOs)
}

type waiter struct {
	gsn     uint64
	payload []byte
	done    bool
	err     error
}

// Writer is a concurrent-safe WAL appender.
type Writer struct {
	opts Options
	f    vfs.File

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*waiter
	writing bool
	closed  bool
	tainted bool
	size    int64

	// lastSync is only touched on the write path (solo appends hold mu;
	// grouped appends serialize through the single active leader), so it
	// needs no extra synchronization.
	lastSync time.Time

	appends  atomic.Int64
	groupIOs atomic.Int64
	bytes    atomic.Int64
	ioNs     atomic.Int64
	lockNs   atomic.Int64
	groupSum atomic.Int64

	buf []byte // leader scratch
}

// NewWriter starts a log in f.
func NewWriter(f vfs.File, opts Options) *Writer {
	if opts.MaxGroupBytes <= 0 {
		opts.MaxGroupBytes = 1 << 20
	}
	if opts.MaxGroupCount <= 0 {
		opts.MaxGroupCount = 1024
	}
	if opts.SyncOnCommit && opts.Policy == PolicyNever {
		opts.Policy = PolicyCommit
	}
	if opts.Policy == PolicyInterval && opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	w := &Writer{opts: opts, f: f, lastSync: time.Now()}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// ErrClosed is returned by appends on a closed writer.
var ErrClosed = errors.New("wal: closed")

// ErrTainted is returned by appends on a tainted writer: an earlier write
// failed, possibly leaving a torn record on disk, so any record appended
// after it would sit behind an unreadable tail and be silently dropped at
// replay. The owner must rotate to a fresh log.
var ErrTainted = errors.New("wal: log tainted by failed write")

// Append durably (subject to Options.Policy) appends one record and blocks
// until it is written. Safe for concurrent use.
func (w *Writer) Append(gsn uint64, payload []byte) error {
	w.appends.Add(1)
	w.bytes.Add(int64(len(payload)))
	if !w.opts.GroupCommit {
		return w.appendSolo(gsn, payload)
	}
	return w.appendGrouped(gsn, payload)
}

func (w *Writer) appendSolo(gsn uint64, payload []byte) error {
	lockStart := time.Now()
	w.mu.Lock()
	w.lockNs.Add(int64(time.Since(lockStart)))
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.tainted {
		return ErrTainted
	}
	ioStart := time.Now()
	err := w.writeRecords([]*waiter{{gsn: gsn, payload: payload}})
	w.ioNs.Add(int64(time.Since(ioStart)))
	w.groupIOs.Add(1)
	w.groupSum.Add(1)
	if err != nil {
		w.tainted = true
	}
	return err
}

func (w *Writer) appendGrouped(gsn uint64, payload []byte) error {
	wt := &waiter{gsn: gsn, payload: payload}

	enqueue := time.Now()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.tainted {
		w.mu.Unlock()
		return ErrTainted
	}
	w.pending = append(w.pending, wt)
	// Park until either a leader completed our write, or we are at the
	// head of the queue with no leader in flight — then we lead.
	for !wt.done && (w.writing || w.pending[0] != wt) {
		w.cond.Wait()
	}
	if wt.done {
		// Follower path: the whole wait was group-logging synchronization.
		w.mu.Unlock()
		w.lockNs.Add(int64(time.Since(enqueue)))
		return wt.err
	}
	if w.tainted {
		// A leader failed while we were parked. Step out of the queue and
		// let the next head observe the taint too.
		for i, m := range w.pending {
			if m == wt {
				w.pending = append(w.pending[:i], w.pending[i+1:]...)
				break
			}
		}
		w.cond.Broadcast()
		w.mu.Unlock()
		w.lockNs.Add(int64(time.Since(enqueue)))
		return ErrTainted
	}
	// Leader path: claim a group bounded by count and bytes.
	n, bytes := 0, 0
	for n < len(w.pending) && n < w.opts.MaxGroupCount && bytes < w.opts.MaxGroupBytes {
		bytes += len(w.pending[n].payload)
		n++
	}
	group := w.pending[:n:n]
	w.pending = w.pending[n:]
	w.writing = true
	w.mu.Unlock()
	w.lockNs.Add(int64(time.Since(enqueue)))

	ioStart := time.Now()
	err := w.writeRecords(group)
	w.ioNs.Add(int64(time.Since(ioStart)))
	w.groupIOs.Add(1)
	w.groupSum.Add(int64(n))

	// Wake the followers; the time spent doing so is lock overhead (the
	// paper's third cause: "the more threads in the group, the more CPU
	// time is used to unlock the follower threads").
	wakeStart := time.Now()
	w.mu.Lock()
	if err != nil {
		// The group write may have landed a torn record; no later append
		// may use this log (it would be unreadable past the tear).
		w.tainted = true
	}
	for _, m := range group {
		m.done = true
		m.err = err
	}
	w.writing = false
	w.cond.Broadcast()
	w.mu.Unlock()
	w.lockNs.Add(int64(time.Since(wakeStart)))
	return err
}

// writeRecords encodes the group into one buffer and performs one write.
func (w *Writer) writeRecords(group []*waiter) error {
	w.buf = w.buf[:0]
	if w.size == 0 {
		// First bytes of the log: the v2 preamble rides in the same write
		// as the first record, so a torn first write still leaves either
		// nothing or a well-formed prefix.
		w.buf = append(w.buf, magicV2...)
	}
	for _, m := range group {
		var hdr [headerLenV2]byte
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(m.payload))
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(m.payload)))
		binary.LittleEndian.PutUint64(hdr[12:], m.gsn)
		binary.LittleEndian.PutUint32(hdr[0:], crc32.ChecksumIEEE(hdr[4:]))
		w.buf = append(w.buf, hdr[:]...)
		w.buf = append(w.buf, m.payload...)
	}
	if w.opts.PerRecordCost > 0 || w.opts.PerByteCost > 0 {
		// Simulated-time model of the leader's serialized software path.
		cost := time.Duration(len(group))*w.opts.PerRecordCost +
			time.Duration(len(w.buf))*w.opts.PerByteCost
		if cost > 0 {
			time.Sleep(cost)
		}
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	w.size += int64(len(w.buf))
	switch w.opts.Policy {
	case PolicyCommit:
		// One fsync for the whole group: the leader pays it once and
		// every member's ack then implies durability.
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.lastSync = time.Now()
	case PolicyInterval:
		if now := time.Now(); now.Sub(w.lastSync) >= w.opts.SyncEvery {
			if err := w.f.Sync(); err != nil {
				return err
			}
			w.lastSync = now
		}
	}
	return nil
}

// Sync flushes the log to stable storage.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.f.Sync()
}

// Tainted reports whether a failed write has poisoned this log. A tainted
// log accepts no further appends; rotate to a fresh file.
func (w *Writer) Tainted() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tainted
}

// Size returns the bytes written so far.
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Stats snapshots the timing counters.
func (w *Writer) Stats() Stats {
	return Stats{
		Appends:   w.appends.Load(),
		GroupIOs:  w.groupIOs.Load(),
		Bytes:     w.bytes.Load(),
		IOTime:    time.Duration(w.ioNs.Load()),
		LockTime:  time.Duration(w.lockNs.Load()),
		GroupSize: w.groupSum.Load(),
	}
}

// Close syncs and closes the log file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	w.cond.Broadcast()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

// Record is one replayed WAL entry.
type Record struct {
	GSN     uint64
	Payload []byte
}

// ReadAll replays a log file. An incomplete record at the tail ends the
// replay silently — the standard crash-truncation semantics: a torn tail
// means the record never committed (every writer path appends prefixes,
// so a crash or torn write can only shorten the file). A COMPLETE record
// whose checksum fails is different: all its bytes are present, so they
// were written and then altered at rest. That is surfaced as a
// kv.CorruptionError alongside the valid prefix, letting callers
// distinguish "lost the unacknowledged tail" (fine) from "lost committed
// records to bit rot" (must not be served as a silent truncation).
//
// The length field itself is outside the payload checksum, so rot there
// could disguise a committed record as a torn tail (a too-large length
// runs past EOF) and silently swallow it plus everything after it. A
// torn-looking tail is therefore cross-checked before being dropped: if
// some prefix of the remaining bytes matches the header's checksum, the
// payload is in fact fully present under a different length than the
// header claims — that is length-field rot, reported as corruption. A
// genuine crash tail has no matching prefix (the missing payload bytes
// were never written), so crash semantics are unchanged.
func ReadAll(f vfs.File) ([]Record, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
			return nil, err
		}
	}
	if len(data) >= len(magicV2) {
		if hd := hamming(data[:len(magicV2)], magicV2); hd == 0 {
			return readV2(data)
		} else if hd <= 8 {
			// Within a byte's worth of bit damage of the v2 magic: almost
			// certainly a rotted v2 preamble, not a legacy log (a v1 file
			// opens with a payload CRC — the odds of one landing this close
			// to the magic are ~2^-35). Falling through to the v1 parse
			// here would misread every v2 header and could silently drop
			// the whole log.
			return nil, &kv.CorruptionError{
				Offset: 0,
				Detail: "wal: file preamble damaged (near-miss of the v2 magic)",
			}
		}
	}
	return readV1(data)
}

// hamming counts differing bits between equal-length slices.
func hamming(a, b []byte) int {
	n := 0
	for i := range a {
		n += bits.OnesCount8(a[i] ^ b[i])
	}
	return n
}

// readV2 replays a v2 log: every header is self-checksummed, so a
// complete header that fails its checksum is rot, never a tear (writes
// are prefix-atomic: bytes that are present were written as intended).
// Truncation — a partial header or a payload running past EOF under a
// VERIFIED header — is the only crash artifact and the only silent exit.
func readV2(data []byte) ([]Record, error) {
	var recs []Record
	off := len(magicV2)
	for off+headerLenV2 <= len(data) {
		hdr := data[off : off+headerLenV2]
		if crc32.ChecksumIEEE(hdr[4:]) != binary.LittleEndian.Uint32(hdr) {
			return recs, &kv.CorruptionError{
				Offset: int64(off),
				Detail: "wal: record header checksum mismatch",
			}
		}
		pcrc := binary.LittleEndian.Uint32(hdr[4:])
		plen := int(binary.LittleEndian.Uint32(hdr[8:]))
		gsn := binary.LittleEndian.Uint64(hdr[12:])
		start := off + headerLenV2
		if start+plen > len(data) {
			break // verified header, missing payload bytes: torn tail
		}
		payload := data[start : start+plen]
		if crc32.ChecksumIEEE(payload) != pcrc {
			return recs, &kv.CorruptionError{
				Offset: int64(off),
				Detail: "wal: record checksum mismatch on a complete record",
			}
		}
		recs = append(recs, Record{GSN: gsn, Payload: append([]byte(nil), payload...)})
		off = start + plen
	}
	return recs, nil
}

// readV1 replays a legacy log, whose header fields are unprotected. A
// too-large rotted length is indistinguishable from a torn tail by
// structure alone, so the torn-tail exit cross-checks the remaining bytes
// against the header's payload checksum first (see ReadAll's doc).
func readV1(data []byte) ([]Record, error) {
	var recs []Record
	off := 0
	for off+headerLen <= len(data) {
		crc := binary.LittleEndian.Uint32(data[off:])
		plen := int(binary.LittleEndian.Uint32(data[off+4:]))
		gsn := binary.LittleEndian.Uint64(data[off+8:])
		start := off + headerLen
		if start+plen > len(data) {
			if l, rot := tailLengthRot(data[start:], crc); rot {
				return recs, &kv.CorruptionError{
					Offset: int64(off),
					Detail: fmt.Sprintf("wal: record header claims %d payload bytes past EOF, but a complete %d-byte payload matches its checksum: length field rot", plen, l),
				}
			}
			break // torn tail
		}
		payload := data[start : start+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, &kv.CorruptionError{
				Offset: int64(off),
				Detail: "wal: record checksum mismatch on a complete record",
			}
		}
		recs = append(recs, Record{GSN: gsn, Payload: append([]byte(nil), payload...)})
		off = start + plen
	}
	return recs, nil
}

// tailLengthRot reports whether some prefix of tail checksums to want —
// evidence that a record whose header length points past EOF actually has
// its whole payload on disk and the length field rotted. The scan is
// incremental (one CRC pass over the tail) and only runs on the rare
// torn-tail recovery path. A spurious match against a genuinely torn
// payload requires a 2^-32 CRC collision.
func tailLengthRot(tail []byte, want uint32) (int, bool) {
	var c uint32
	for l := 0; ; l++ {
		if c == want {
			return l, true
		}
		if l == len(tail) {
			return 0, false
		}
		c = crc32.Update(c, crc32.IEEETable, tail[l:l+1])
	}
}
