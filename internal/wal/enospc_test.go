package wal

import (
	"fmt"
	"testing"
	"time"

	"p2kvs/internal/vfs"
)

// TestAppendENOSPCTaints checks the write-path contract under space
// exhaustion: the failed append reports ENOSPC, the log is tainted (a
// torn record may sit on disk), and later appends fail fast.
func TestAppendENOSPCTaints(t *testing.T) {
	fs := vfs.NewFault(vfs.NewMem())
	f, err := fs.Create("wal/000001.log")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, Options{})
	if err := w.Append(1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	fs.Inject(vfs.Rule{Op: vfs.OpWrite, NoSpace: true, OneShot: true})
	if err := w.Append(2, []byte("full")); !vfs.IsNoSpace(err) {
		t.Fatalf("append on full disk: got %v, want ENOSPC", err)
	}
	if !w.Tainted() {
		t.Fatal("failed append must taint the log")
	}
	if err := w.Append(3, []byte("after")); err != ErrTainted {
		t.Fatalf("append after taint: got %v, want ErrTainted", err)
	}
}

// TestSyncOnCommitENOSPC checks that a failed commit fsync (disk full at
// sync time, after the write landed) fails the append and taints the log:
// the record's durability was never acknowledged.
func TestSyncOnCommitENOSPC(t *testing.T) {
	fs := vfs.NewFault(vfs.NewMem())
	f, err := fs.Create("wal/000001.log")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, Options{Policy: PolicyCommit})
	fs.Inject(vfs.Rule{Op: vfs.OpSync, NoSpace: true, OneShot: true})
	if err := w.Append(1, []byte("v")); !vfs.IsNoSpace(err) {
		t.Fatalf("append with failing commit sync: got %v, want ENOSPC", err)
	}
	if !w.Tainted() {
		t.Fatal("failed commit sync must taint the log")
	}
}

// TestRotationAfterSpaceFreed is the recovery path: a log dies of ENOSPC
// mid-stream; once space frees, the owner rotates to a fresh log and the
// old log replays exactly the records acked before the exhaustion.
func TestRotationAfterSpaceFreed(t *testing.T) {
	mem := vfs.NewMem()
	fs := vfs.NewQuota(mem, 64)
	f, err := fs.Create("wal/000001.log")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, Options{Policy: PolicyCommit})
	if err := w.Append(1, []byte("acked")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, make([]byte, 128)); !vfs.IsNoSpace(err) {
		t.Fatalf("oversized append: got %v, want ENOSPC", err)
	}
	_ = w // tainted; owner must rotate

	fs.SetBudget(1 << 20) // space freed
	f2, err := fs.Create("wal/000002.log")
	if err != nil {
		t.Fatalf("rotation after space freed: %v", err)
	}
	w2 := NewWriter(f2, Options{Policy: PolicyCommit})
	if err := w2.Append(3, []byte("resumed")); err != nil {
		t.Fatalf("append after rotation: %v", err)
	}

	// The dead log replays its acked prefix and nothing after it.
	rf, err := fs.Open("wal/000001.log")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "acked" {
		t.Fatalf("old log replay = %v, want exactly the acked record", recs)
	}
}

// TestRotationWhileStillFull mirrors what an engine sees when it tries to
// rotate before space is freed: the Create itself reports ENOSPC.
func TestRotationWhileStillFull(t *testing.T) {
	fs := vfs.NewQuota(vfs.NewMem(), -1)
	f, err := fs.Create("wal/000001.log")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, Options{})
	if err := w.Append(1, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	fs.SetBudget(16) // the device filled up under us
	if err := w.Append(2, make([]byte, 64)); !vfs.IsNoSpace(err) {
		t.Fatalf("append: got %v, want ENOSPC", err)
	}
	if _, err := fs.Create("wal/000002.log"); !vfs.IsNoSpace(err) {
		t.Fatalf("rotation on full disk: got %v, want ENOSPC", err)
	}
}

// TestSyncPolicyDurability pins down what each policy guarantees at a
// crash, using MemFS's durable-watermark power-failure emulation.
func TestSyncPolicyDurability(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		durable bool // acked appends survive Crash()
	}{
		{"never", Options{}, false},
		{"commit", Options{Policy: PolicyCommit}, true},
		{"legacy-bool", Options{SyncOnCommit: true}, true},
		// A 1ns interval syncs on (virtually) every append.
		{"interval-tight", Options{Policy: PolicyInterval, SyncEvery: time.Nanosecond}, true},
		// A 1h interval behaves like never within a test's lifetime.
		{"interval-loose", Options{Policy: PolicyInterval, SyncEvery: time.Hour}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mem := vfs.NewMem()
			f, err := mem.Create("db/wal.log")
			if err != nil {
				t.Fatal(err)
			}
			w := NewWriter(f, tc.opts)
			for i := 0; i < 3; i++ {
				if err := w.Append(uint64(i+1), []byte(fmt.Sprintf("rec-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			mem.Crash()
			mem.Restart()
			rf, err := mem.Open("db/wal.log")
			if err != nil {
				t.Fatal(err)
			}
			recs, err := ReadAll(rf)
			if err != nil {
				t.Fatal(err)
			}
			if tc.durable && len(recs) != 3 {
				t.Fatalf("acked records after crash = %d, want 3", len(recs))
			}
			if !tc.durable && len(recs) != 0 {
				t.Fatalf("unsynced records survived crash: %d", len(recs))
			}
		})
	}
}
