package wal

import (
	"testing"

	"p2kvs/internal/vfs"
)

// FuzzReadAll: arbitrary log-file contents must never panic the replayer
// — garbage and torn tails end the replay silently (crash-truncation
// semantics), valid prefixes are returned.
func FuzzReadAll(f *testing.F) {
	// Seed: a valid two-record log.
	fs := vfs.NewMem()
	file, _ := fs.Create("wal")
	w := NewWriter(file, Options{})
	w.Append(1, []byte("first"))
	w.Append(2, []byte("second"))
	w.Close()
	rf, _ := fs.Open("wal")
	sz, _ := rf.Size()
	valid := make([]byte, sz)
	rf.ReadAt(valid, 0)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)-3])
	f.Add(append(append([]byte(nil), valid...), 0xde, 0xad))

	f.Fuzz(func(t *testing.T, data []byte) {
		fz := vfs.NewMem()
		file, _ := fz.Create("f")
		file.Write(data)
		recs, err := ReadAll(file)
		if err != nil {
			return
		}
		for _, r := range recs {
			_ = r.GSN
			_ = r.Payload
		}
	})
}
