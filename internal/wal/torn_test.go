package wal

import (
	"errors"
	"fmt"
	"testing"

	"p2kvs/internal/vfs"
)

// TestTornTailRecovery cuts a WAL record mid-payload with FaultFS
// torn-write injection and asserts (a) the failed append errors out, (b)
// the writer refuses further appends (taint), and (c) replay stops
// cleanly at the last valid record — for both durability modes.
func TestTornTailRecovery(t *testing.T) {
	for _, syncOnCommit := range []bool{false, true} {
		t.Run(fmt.Sprintf("SyncOnCommit=%v", syncOnCommit), func(t *testing.T) {
			mem := vfs.NewMem()
			fs := vfs.NewFault(mem)
			f, err := fs.Create("wal")
			if err != nil {
				t.Fatal(err)
			}
			w := NewWriter(f, Options{SyncOnCommit: syncOnCommit})
			if err := w.Append(1, []byte("first-record")); err != nil {
				t.Fatal(err)
			}
			if err := w.Append(2, []byte("second-record")); err != nil {
				t.Fatal(err)
			}

			// Tear the third record: only half of header+payload persists.
			fs.Inject(vfs.Rule{Op: vfs.OpWrite, CountN: 1, OneShot: true, TornWrite: true})
			if err := w.Append(3, []byte("third-record-that-gets-torn")); err == nil {
				t.Fatal("torn append must report failure")
			}
			if !w.Tainted() {
				t.Fatal("writer must be tainted after a failed write")
			}
			if err := w.Append(4, []byte("after-tear")); !errors.Is(err, ErrTainted) {
				t.Fatalf("append on tainted log = %v, want ErrTainted", err)
			}

			// Replay sees exactly the two complete records; the torn tail
			// is silently truncated, not an error and not garbage.
			r, err := mem.Open("wal")
			if err != nil {
				t.Fatal(err)
			}
			recs, err := ReadAll(r)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 2 {
				t.Fatalf("replayed %d records, want 2", len(recs))
			}
			if recs[0].GSN != 1 || string(recs[0].Payload) != "first-record" ||
				recs[1].GSN != 2 || string(recs[1].Payload) != "second-record" {
				t.Fatalf("replay mismatch: %+v", recs)
			}
		})
	}
}

// TestTornTailGroupCommit is the same property through the leader/follower
// group-logging path: the leader's failure taints the log and parked
// followers get an error instead of a silent drop.
func TestTornTailGroupCommit(t *testing.T) {
	mem := vfs.NewMem()
	fs := vfs.NewFault(mem)
	f, _ := fs.Create("wal")
	w := NewWriter(f, Options{GroupCommit: true})
	if err := w.Append(1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	fs.Inject(vfs.Rule{Op: vfs.OpWrite, CountN: 1, OneShot: true, TornWrite: true})
	if err := w.Append(2, []byte("torn-group-record")); err == nil {
		t.Fatal("torn group append must fail")
	}
	if err := w.Append(3, []byte("later")); !errors.Is(err, ErrTainted) {
		t.Fatalf("append after taint = %v, want ErrTainted", err)
	}
	r, _ := mem.Open("wal")
	recs, err := ReadAll(r)
	if err != nil || len(recs) != 1 || recs[0].GSN != 1 {
		t.Fatalf("replay = %v, %v (want the single good record)", recs, err)
	}
}
