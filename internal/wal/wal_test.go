package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// slowFile delays every write so concurrent appenders overlap and the
// group-commit leader accumulates followers.
type slowFile struct {
	vfs.File
}

func (f *slowFile) Write(p []byte) (int, error) {
	time.Sleep(200 * time.Microsecond)
	return f.File.Write(p)
}

func TestAppendReadRoundTrip(t *testing.T) {
	for _, group := range []bool{true, false} {
		t.Run(fmt.Sprintf("group=%v", group), func(t *testing.T) {
			fs := vfs.NewMem()
			f, _ := fs.Create("wal")
			w := NewWriter(f, Options{GroupCommit: group})
			for i := 0; i < 100; i++ {
				if err := w.Append(uint64(i), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			rf, _ := fs.Open("wal")
			recs, err := ReadAll(rf)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 100 {
				t.Fatalf("replayed %d records, want 100", len(recs))
			}
			for i, r := range recs {
				if r.GSN != uint64(i) || string(r.Payload) != fmt.Sprintf("payload-%d", i) {
					t.Fatalf("record %d = gsn=%d %q", i, r.GSN, r.Payload)
				}
			}
		})
	}
}

func TestConcurrentAppendersAllDurable(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f, DefaultOptions())
	const (
		goroutines = 16
		perG       = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := w.Append(uint64(g*perG+i), []byte(fmt.Sprintf("g%d-i%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rf, _ := fs.Open("wal")
	recs, err := ReadAll(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != goroutines*perG {
		t.Fatalf("replayed %d, want %d", len(recs), goroutines*perG)
	}
	seen := map[uint64]bool{}
	for _, r := range recs {
		if seen[r.GSN] {
			t.Fatalf("duplicate record gsn=%d", r.GSN)
		}
		seen[r.GSN] = true
	}

	st := w.Stats()
	if st.Appends != goroutines*perG {
		t.Fatalf("appends = %d", st.Appends)
	}
	if st.GroupIOs > st.Appends {
		t.Fatalf("group IOs (%d) exceed appends (%d)", st.GroupIOs, st.Appends)
	}
}

func TestGroupingAggregates(t *testing.T) {
	// With many concurrent appenders on a device slow enough that the
	// leader's IO blocks, group commit must issue fewer IOs than appends
	// (that's the whole point of Figure 3). slowFile injects the delay.
	fs := vfs.NewMem()
	inner, _ := fs.Create("wal")
	f := &slowFile{File: inner}
	w := NewWriter(f, DefaultOptions())
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				w.Append(uint64(g), []byte("x"))
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats()
	if st.GroupIOs >= st.Appends {
		t.Fatalf("no aggregation happened: %d IOs for %d appends", st.GroupIOs, st.Appends)
	}
	w.Close()
}

func TestTornTailIgnored(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f, Options{})
	w.Append(1, []byte("complete"))
	w.Close()

	// Append garbage emulating a torn write.
	f2, _ := fs.Open("wal")
	sz, _ := f2.Size()
	raw := make([]byte, sz)
	f2.ReadAt(raw, 0)
	f3, _ := fs.Create("wal2")
	f3.Write(raw)
	f3.Write([]byte{9, 9, 9, 9, 9}) // partial header
	f3.Close()

	rf, _ := fs.Open("wal2")
	recs, err := ReadAll(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "complete" {
		t.Fatalf("recs = %v", recs)
	}
}

// TestCorruptRecordReported: a bit flip inside a COMPLETE record is at-rest
// corruption of committed data, not a crash artifact — replay must return
// the valid prefix plus a kv.CorruptionError, never truncate silently
// (silent truncation of acknowledged records is silent data loss).
func TestCorruptRecordReported(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f, Options{})
	w.Append(1, []byte("first"))
	w.Append(2, []byte("second"))
	w.Close()

	rf, _ := fs.Open("wal")
	sz, _ := rf.Size()
	raw := make([]byte, sz)
	rf.ReadAt(raw, 0)
	// Flip a bit in the second record's payload.
	raw[len(raw)-1] ^= 0xff
	f2, _ := fs.Create("wal")
	f2.Write(raw)
	f2.Close()

	rf2, _ := fs.Open("wal")
	recs, err := ReadAll(rf2)
	if !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("err = %v, want kv.ErrCorruption", err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "first" {
		t.Fatalf("recs = %+v, want the valid prefix (first record)", recs)
	}
}

func TestAppendAfterClose(t *testing.T) {
	for _, group := range []bool{true, false} {
		fs := vfs.NewMem()
		f, _ := fs.Create("wal")
		w := NewWriter(f, Options{GroupCommit: group})
		w.Close()
		if err := w.Append(1, []byte("x")); err == nil {
			t.Fatalf("group=%v: append after close must fail", group)
		}
		if err := w.Sync(); err == nil {
			t.Fatalf("group=%v: sync after close must fail", group)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("double close must be nil, got %v", err)
		}
	}
}

func TestSyncOnCommitSurvivesCrash(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f, Options{SyncOnCommit: true})
	w.Append(7, []byte("must-survive"))
	fs.Crash()
	fs.Restart()
	rf, _ := fs.Open("wal")
	recs, err := ReadAll(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].GSN != 7 {
		t.Fatalf("synced record lost: %+v", recs)
	}
}

func TestUnsyncedLostOnCrash(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f, Options{SyncOnCommit: false})
	w.Append(7, []byte("volatile"))
	fs.Crash()
	fs.Restart()
	rf, _ := fs.Open("wal")
	recs, _ := ReadAll(rf)
	if len(recs) != 0 {
		t.Fatalf("unsynced record survived crash: %+v", recs)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	fn := func(payloads [][]byte) bool {
		fs := vfs.NewMem()
		f, _ := fs.Create("wal")
		w := NewWriter(f, Options{})
		for i, p := range payloads {
			if w.Append(uint64(i), p) != nil {
				return false
			}
		}
		w.Close()
		rf, _ := fs.Open("wal")
		recs, err := ReadAll(rf)
		if err != nil || len(recs) != len(payloads) {
			return false
		}
		for i, r := range recs {
			if r.GSN != uint64(i) || string(r.Payload) != string(payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsLockTimeGrowsWithContention(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f, DefaultOptions())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w.Append(0, make([]byte, 64))
			}
		}()
	}
	wg.Wait()
	st := w.Stats()
	if st.Bytes != 8*500*64 {
		t.Fatalf("bytes = %d", st.Bytes)
	}
	if st.GroupIOs == 0 || st.GroupSize < st.GroupIOs {
		t.Fatalf("group stats inconsistent: %+v", st)
	}
	w.Close()
}

func TestSoftwareCostModel(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f, Options{
		PerRecordCost: 2 * time.Millisecond,
		PerByteCost:   10 * time.Microsecond,
	})
	payload := make([]byte, 100)
	start := time.Now()
	if err := w.Append(0, payload); err != nil {
		t.Fatal(err)
	}
	// One record: >= 2ms flat + ~1.16ms bytes (payload+16B header).
	if el := time.Since(start); el < 2500*time.Microsecond {
		t.Fatalf("cost model charged only %v", el)
	}
	w.Close()

	// Zero-cost writers must not sleep.
	f2, _ := fs.Create("wal2")
	w2 := NewWriter(f2, Options{})
	start = time.Now()
	w2.Append(0, payload)
	if el := time.Since(start); el > time.Millisecond {
		t.Fatalf("zero-cost append slept %v", el)
	}
	w2.Close()
}

// --- format v2 at-rest integrity ---------------------------------------

// readRaw snapshots a written log file.
func readRaw(t *testing.T, fs vfs.FS, name string) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sz, _ := f.Size()
	raw := make([]byte, sz)
	f.ReadAt(raw, 0)
	return raw
}

func writeRaw(t *testing.T, fs vfs.FS, name string, raw []byte) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(raw)
	f.Close()
}

func buildLog(t *testing.T, fs vfs.FS, name string, n int) []byte {
	t.Helper()
	f, _ := fs.Create(name)
	w := NewWriter(f, Options{SyncOnCommit: true})
	for i := 0; i < n; i++ {
		if err := w.Append(uint64(i+1), []byte(fmt.Sprintf("payload-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	return readRaw(t, fs, name)
}

// TestV2LengthFieldRotReported: rot in a record's length field must be
// reported, never mistaken for a crash-torn tail — that mistake silently
// drops the record and every one after it.
func TestV2LengthFieldRotReported(t *testing.T) {
	fs := vfs.NewMem()
	raw := buildLog(t, fs, "wal", 3)
	// Record 0's length field: magic(8) + hcrc(4)+pcrc(4) = offset 16.
	// Set a high bit so the claimed payload runs far past EOF.
	raw[len(magicV2)+8+2] ^= 0x80
	writeRaw(t, fs, "wal2", raw)
	rf, _ := fs.Open("wal2")
	recs, err := ReadAll(rf)
	if !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("err = %v, want kv.ErrCorruption", err)
	}
	if len(recs) != 0 {
		t.Fatalf("damaged first record yielded %d records", len(recs))
	}
}

// TestV2GSNRotReported: the GSN drives replay filtering (transaction
// rollback), so rot there must not pass unnoticed either.
func TestV2GSNRotReported(t *testing.T) {
	fs := vfs.NewMem()
	raw := buildLog(t, fs, "wal", 2)
	raw[len(magicV2)+12] ^= 0x01 // record 0's gsn, lowest byte
	writeRaw(t, fs, "wal2", raw)
	rf, _ := fs.Open("wal2")
	if _, err := ReadAll(rf); !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("err = %v, want kv.ErrCorruption", err)
	}
}

// TestV2MagicRotReported: damage to the preamble itself must not demote
// the file to the v1 parse (which would misread every header).
func TestV2MagicRotReported(t *testing.T) {
	fs := vfs.NewMem()
	raw := buildLog(t, fs, "wal", 2)
	raw[3] ^= 0x04
	writeRaw(t, fs, "wal2", raw)
	rf, _ := fs.Open("wal2")
	if _, err := ReadAll(rf); !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("err = %v, want kv.ErrCorruption", err)
	}
}

// TestV2TornPayloadStillTruncates: a verified header whose payload runs
// past EOF is the genuine crash artifact; replay must keep the valid
// prefix and stay silent about the tail.
func TestV2TornPayloadStillTruncates(t *testing.T) {
	fs := vfs.NewMem()
	raw := buildLog(t, fs, "wal", 3)
	writeRaw(t, fs, "wal2", raw[:len(raw)-5]) // tear into the last payload
	rf, _ := fs.Open("wal2")
	recs, err := ReadAll(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want the 2 intact ones", len(recs))
	}
}

// TestV1LengthFieldRotCaughtByHeuristic: legacy logs lack the header
// checksum, but the torn-tail cross-check still catches the common case —
// a rotted length with the payload fully present.
func TestV1LengthFieldRotCaughtByHeuristic(t *testing.T) {
	fs := vfs.NewMem()
	// Hand-build a v1 log: no preamble, 16-byte headers.
	var raw []byte
	for i := 0; i < 2; i++ {
		payload := []byte(fmt.Sprintf("legacy-%04d", i))
		var hdr [headerLen]byte
		binary.LittleEndian.PutUint32(hdr[0:], crc32.ChecksumIEEE(payload))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
		binary.LittleEndian.PutUint64(hdr[8:], uint64(i+1))
		raw = append(raw, hdr[:]...)
		raw = append(raw, payload...)
	}
	writeRaw(t, fs, "v1", raw)
	rf, _ := fs.Open("v1")
	recs, err := ReadAll(rf)
	if err != nil || len(recs) != 2 {
		t.Fatalf("clean v1 replay = %d recs, %v", len(recs), err)
	}

	mut := append([]byte(nil), raw...)
	mut[4+2] ^= 0x80 // record 0's length field: claims past EOF
	writeRaw(t, fs, "v1rot", mut)
	rf2, _ := fs.Open("v1rot")
	recs, err = ReadAll(rf2)
	if !errors.Is(err, kv.ErrCorruption) {
		t.Fatalf("v1 length rot: err = %v, want kv.ErrCorruption", err)
	}
	if len(recs) != 0 {
		t.Fatalf("v1 length rot yielded %d records", len(recs))
	}
}
