package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"p2kvs/internal/vfs"
	"p2kvs/internal/wal"
)

// txnLog persists transaction begin/commit records keyed by GSN (§4.5,
// Figure 11). On recovery, transactions with a begin but no commit are
// rolled back by filtering their GSN out of every instance's WAL replay.
//
// It also tracks, per in-flight transaction, the replication-stream GSNs
// its applied legs shipped into the backlog. A checkpoint image restores
// with uncommitted transactions rolled back, so the manifest's stream
// cursors must not claim those legs — checkpointCut hands the checkpoint
// a per-worker floor to lower its cursors below, atomically with the
// log-prefix cut, so "restore image + stream from cursors" re-delivers
// exactly the records the rollback dropped.
type txnLog struct {
	mu sync.Mutex
	w  *wal.Writer
	// inflight maps a begun-but-unresolved transaction's GSN to the
	// stream GSN each worker's applied leg shipped (absent until the leg
	// applies). Entries leave at commit — or at abandon, when an errored
	// transaction will never commit and recovery everywhere rolls it
	// back, so cursors need not (and must not, or the backlog would stay
	// pinned forever) be held down for it.
	inflight map[uint64]map[int]uint64
}

const (
	txnBegin  = 1
	txnCommit = 2
)

// openTxnLog loads the committed-GSN set and highest GSN seen, then
// starts a fresh log seeded with the still-relevant commits.
func openTxnLog(fs vfs.FS, dir string) (_ *txnLog, committed map[uint64]bool, maxGSN uint64, err error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, 0, err
	}
	name := dir + "/TXNLOG"
	committed = make(map[uint64]bool)
	if fs.Exists(name) {
		f, err := fs.Open(name)
		if err != nil {
			return nil, nil, 0, err
		}
		recs, err := wal.ReadAll(f)
		f.Close()
		if err != nil {
			return nil, nil, 0, err
		}
		for _, r := range recs {
			typ, gsn, err := decodeTxnRec(r.Payload)
			if err != nil {
				return nil, nil, 0, err
			}
			if gsn > maxGSN {
				maxGSN = gsn
			}
			if typ == txnCommit {
				committed[gsn] = true
			}
		}
	}
	// Rewrite compacted (commits only) into a fresh log, swap atomically.
	f, err := fs.Create(name + ".new")
	if err != nil {
		return nil, nil, 0, err
	}
	w := wal.NewWriter(f, wal.Options{SyncOnCommit: true})
	for gsn := range committed {
		if err := w.Append(gsn, encodeTxnRec(txnCommit, gsn)); err != nil {
			return nil, nil, 0, err
		}
	}
	if err := fs.Rename(name+".new", name); err != nil {
		return nil, nil, 0, err
	}
	return &txnLog{w: w, inflight: make(map[uint64]map[int]uint64)}, committed, maxGSN, nil
}

func encodeTxnRec(typ byte, gsn uint64) []byte {
	var b [9]byte
	b[0] = typ
	binary.LittleEndian.PutUint64(b[1:], gsn)
	return b[:]
}

func decodeTxnRec(p []byte) (typ byte, gsn uint64, err error) {
	if len(p) != 9 {
		return 0, 0, fmt.Errorf("core: bad txn record length %d", len(p))
	}
	return p[0], binary.LittleEndian.Uint64(p[1:]), nil
}

// begin durably records that gsn's WriteBatches are about to be issued.
func (t *txnLog) begin(gsn uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Append(gsn, encodeTxnRec(txnBegin, gsn)); err != nil {
		return err
	}
	t.inflight[gsn] = nil
	return nil
}

// commit durably records that every instance acknowledged gsn. The
// in-flight entry leaves under the same lock section that appends the
// record, so a concurrent checkpointCut sees either the commit inside
// its prefix or the transaction still in flight — never neither.
func (t *txnLog) commit(gsn uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.w.Append(gsn, encodeTxnRec(txnCommit, gsn))
	// On append failure the commit is not durable and the caller reports
	// the transaction failed: recovery rolls it back everywhere, so the
	// entry resolves as abandoned.
	delete(t.inflight, gsn)
	return err
}

// abandon resolves a transaction that will never commit (a leg failed or
// its deadline fired mid-flight). Recovery and every image restore roll
// it back, so checkpoints stop holding stream cursors below its legs; a
// replica therefore converges to the rolled-back state — the same state
// the primary itself reports after any restart.
func (t *txnLog) abandon(gsn uint64) {
	t.mu.Lock()
	delete(t.inflight, gsn)
	t.mu.Unlock()
}

// noteLeg records that worker's leg of transaction gsn shipped into the
// replication backlog under streamGSN. A leg landing after its
// transaction was abandoned is dropped — the entry is gone and cursors
// are not held for rolled-back work.
func (t *txnLog) noteLeg(gsn uint64, worker int, streamGSN uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	legs, ok := t.inflight[gsn]
	if !ok {
		return
	}
	if legs == nil {
		legs = make(map[int]uint64)
		t.inflight[gsn] = legs
	}
	legs[worker] = streamGSN
}

// size reports the log's current byte length at a completed-record
// boundary — the stable prefix a checkpoint captures. The log is
// append-only, so [0, size) never changes after this returns.
func (t *txnLog) size() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Size()
}

// checkpointCut atomically captures the stable log prefix a checkpoint
// copies and, per worker, the lowest stream GSN shipped by a transaction
// whose commit is NOT inside that prefix (0 = none). Restoring the image
// rolls those transactions back, so the checkpoint lowers its per-worker
// stream cursors below the floors: the replication stream then
// re-delivers the rolled-back legs (and everything after them — stream
// records are plain last-writer-wins op batches, so re-application is
// idempotent). Both values come from one lock section, so a commit
// racing with the cut either lands its record inside the prefix or
// leaves its legs in the floors — never neither, which would open a
// silent replication hole.
func (t *txnLog) checkpointCut(workers int) (size int64, floors []uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	floors = make([]uint64, workers)
	for _, legs := range t.inflight {
		for w, g := range legs {
			if w < 0 || w >= workers {
				continue
			}
			if floors[w] == 0 || g < floors[w] {
				floors[w] = g
			}
		}
	}
	return t.w.Size(), floors
}

func (t *txnLog) close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Close()
}
