package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"p2kvs/internal/vfs"
	"p2kvs/internal/wal"
)

// txnLog persists transaction begin/commit records keyed by GSN (§4.5,
// Figure 11). On recovery, transactions with a begin but no commit are
// rolled back by filtering their GSN out of every instance's WAL replay.
type txnLog struct {
	mu sync.Mutex
	w  *wal.Writer
}

const (
	txnBegin  = 1
	txnCommit = 2
)

// openTxnLog loads the committed-GSN set and highest GSN seen, then
// starts a fresh log seeded with the still-relevant commits.
func openTxnLog(fs vfs.FS, dir string) (_ *txnLog, committed map[uint64]bool, maxGSN uint64, err error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, 0, err
	}
	name := dir + "/TXNLOG"
	committed = make(map[uint64]bool)
	if fs.Exists(name) {
		f, err := fs.Open(name)
		if err != nil {
			return nil, nil, 0, err
		}
		recs, err := wal.ReadAll(f)
		f.Close()
		if err != nil {
			return nil, nil, 0, err
		}
		for _, r := range recs {
			typ, gsn, err := decodeTxnRec(r.Payload)
			if err != nil {
				return nil, nil, 0, err
			}
			if gsn > maxGSN {
				maxGSN = gsn
			}
			if typ == txnCommit {
				committed[gsn] = true
			}
		}
	}
	// Rewrite compacted (commits only) into a fresh log, swap atomically.
	f, err := fs.Create(name + ".new")
	if err != nil {
		return nil, nil, 0, err
	}
	w := wal.NewWriter(f, wal.Options{SyncOnCommit: true})
	for gsn := range committed {
		if err := w.Append(gsn, encodeTxnRec(txnCommit, gsn)); err != nil {
			return nil, nil, 0, err
		}
	}
	if err := fs.Rename(name+".new", name); err != nil {
		return nil, nil, 0, err
	}
	return &txnLog{w: w}, committed, maxGSN, nil
}

func encodeTxnRec(typ byte, gsn uint64) []byte {
	var b [9]byte
	b[0] = typ
	binary.LittleEndian.PutUint64(b[1:], gsn)
	return b[:]
}

func decodeTxnRec(p []byte) (typ byte, gsn uint64, err error) {
	if len(p) != 9 {
		return 0, 0, fmt.Errorf("core: bad txn record length %d", len(p))
	}
	return p[0], binary.LittleEndian.Uint64(p[1:]), nil
}

// begin durably records that gsn's WriteBatches are about to be issued.
func (t *txnLog) begin(gsn uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Append(gsn, encodeTxnRec(txnBegin, gsn))
}

// commit durably records that every instance acknowledged gsn.
func (t *txnLog) commit(gsn uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Append(gsn, encodeTxnRec(txnCommit, gsn))
}

// size reports the log's current byte length at a completed-record
// boundary — the stable prefix a checkpoint captures. The log is
// append-only, so [0, size) never changes after this returns.
func (t *txnLog) size() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Size()
}

func (t *txnLog) close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Close()
}
