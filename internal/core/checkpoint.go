package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"p2kvs/internal/checkpoint"
	"p2kvs/internal/keyspace"
	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// Store-wide online checkpoint: a GSN barrier pauses every worker at a
// common watermark just long enough to capture each engine's cheap
// checkpoint state (kv.Checkpointer.PrepareCheckpoint) plus the
// transaction-log prefix, then writes resume while the bulk of the image
// is written out. Consistency across workers comes from the transaction
// protocol, not from the barrier alone: a cross-instance transaction's
// commit record is appended only after every leg has been applied, so any
// transaction only partially inside the captured WAL prefixes is missing
// its commit in the captured TXNLOG prefix and is rolled back by the
// recover filter when the image is restored — exactly the crash-recovery
// path of §4.5. Because restore rolls those legs back, the manifest's
// per-worker stream cursors are lowered beneath them (checkpointCut), so
// a replica bootstrapping from the image recovers them from the
// replication stream rather than losing them to the rollback.

// ErrCheckpointUnsupported reports an engine without kv.Checkpointer.
var ErrCheckpointUnsupported = errors.New("core: engine does not support checkpoints")

// Checkpoint writes an online checkpoint of the whole store into dir on
// fs, committing it with a CHECKPOINT manifest. A dir already holding a
// committed checkpoint becomes a backup set: unchanged immutable files
// are reused in place, so successive checkpoints are incremental. The
// previous checkpoint stays valid until the new manifest commits.
func (s *Store) Checkpoint(fs vfs.FS, dir string) (*checkpoint.Manifest, error) {
	if fs == nil {
		return nil, errors.New("core: Checkpoint requires a filesystem")
	}
	if s.closed.Load() {
		return nil, kv.ErrClosed
	}
	// One checkpoint at a time: concurrent calls would race on the backup
	// set's sequence numbers.
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	// Capture one routing generation: a reshard cutover mid-checkpoint
	// must not change the worker set being imaged. The captured set stays
	// valid either way — a checkpoint of the pre-cutover shape is a
	// correct image of that epoch (restore opens at the manifest's worker
	// count), and retired workers' engines stay open until Close.
	workers := s.ws()
	for _, w := range workers {
		if _, ok := w.engine.(kv.Checkpointer); !ok {
			return nil, fmt.Errorf("%w (worker %d)", ErrCheckpointUnsupported, w.id)
		}
	}
	prev, err := checkpoint.Load(fs, dir)
	if err != nil && !errors.Is(err, checkpoint.ErrNoManifest) {
		return nil, fmt.Errorf("core: backup set has a damaged manifest (clear %s to start fresh): %w", dir, err)
	}
	seq := uint64(1)
	prevFiles := make(map[string]checkpoint.File)
	if prev != nil {
		seq = prev.Seq + 1
		for _, f := range prev.Files {
			prevFiles[f.Path] = f
		}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}

	// --- Barrier: pause every worker at a common GSN watermark. ---
	start := time.Now()
	var ready sync.WaitGroup
	release := make(chan struct{})
	barriers := make([]*request, 0, len(workers))
	abort := func(err error) (*checkpoint.Manifest, error) {
		close(release)
		for _, r := range barriers {
			<-r.done
		}
		return nil, err
	}
	for _, w := range workers {
		r := &request{
			typ:            reqBarrier,
			noMerge:        true,
			barrierReady:   &ready,
			barrierRelease: release,
			done:           make(chan struct{}),
		}
		ready.Add(1)
		// pushWait bypasses admission control: a barrier must land even on
		// a saturated queue, and it waits behind the queued work it fences.
		if err := w.q.pushWait(nil, r); err != nil {
			ready.Done()
			return abort(fmt.Errorf("core: checkpoint barrier on worker %d: %w", w.id, err))
		}
		barriers = append(barriers, r)
	}
	ready.Wait()

	// All workers are parked: capture the watermarks and every engine's
	// checkpoint state. PrepareCheckpoint is designed to be cheap (no bulk
	// IO) so the pause stays short; the barrier duration is surfaced as
	// checkpoint_barrier_ns.
	gsn := s.gsn.Load()
	workerGSN := make([]uint64, len(workers))
	writers := make([]kv.CheckpointWriter, len(workers))
	var prepErr error
	for i, w := range workers {
		workerGSN[i] = w.lastGSN.Load()
		cw, err := w.engine.(kv.Checkpointer).PrepareCheckpoint()
		if err != nil {
			prepErr = fmt.Errorf("core: preparing checkpoint of worker %d: %w", w.id, err)
			break
		}
		writers[i] = cw
	}
	txnSize := int64(-1)
	var txnFloors []uint64
	if prepErr == nil && s.txn != nil {
		txnSize, txnFloors = s.txn.checkpointCut(len(workers))
	}
	close(release)
	for _, r := range barriers {
		<-r.done
	}
	barrierNs := time.Since(start).Nanoseconds()
	defer func() {
		for _, cw := range writers {
			if cw != nil {
				cw.Release()
			}
		}
	}()
	if prepErr != nil {
		return nil, prepErr
	}
	s.ckptBarrierNs.Store(barrierNs)

	// A transaction whose commit record missed the captured TXNLOG prefix
	// is rolled back when the image restores, yet its applied legs sit in
	// the WAL prefixes and below the raw watermarks. Lower each stream
	// cursor beneath such legs so a replica bootstrapping from this image
	// receives them (and everything after — re-application of plain op
	// batches is idempotent) from the stream instead of silently losing
	// them.
	for i, floor := range txnFloors {
		if floor != 0 && floor-1 < workerGSN[i] {
			workerGSN[i] = floor - 1
		}
	}

	// --- Writes resumed: emit the image, then commit the manifest. ---
	m := &checkpoint.Manifest{
		Seq:         seq,
		Workers:     len(workers),
		Engine:      engineLabel(s.opts.EngineName),
		Partitioner: partitionerName(s.opts.Partitioner),
		GSN:         gsn,
		WorkerGSN:   workerGSN,
		TakenUnixNs: start.UnixNano(),
		BarrierNs:   barrierNs,
	}
	if s.opts.ReplLog != nil {
		m.ReplID = s.opts.ReplLog.ID()
	}
	for i, cw := range writers {
		sub := fmt.Sprintf("worker-%d", i)
		files, err := cw.WriteTo(fs, dir+"/"+sub, seq)
		if err != nil {
			return nil, fmt.Errorf("core: writing checkpoint of worker %d: %w", i, err)
		}
		for _, f := range files {
			mf := checkpoint.File{Worker: i, Path: sub + "/" + f.Name, Restore: f.Restore}
			// A path already committed by a previous manifest is immutable
			// by the naming convention, so its recorded checksum still
			// holds — reusing it keeps incremental checkpoints from
			// re-reading every unchanged SST.
			if pf, ok := prevFiles[mf.Path]; ok {
				mf.Size, mf.CRC = pf.Size, pf.CRC
			} else {
				crc, size, err := vfs.Checksum(fs, dir+"/"+mf.Path)
				if err != nil {
					return nil, err
				}
				mf.Size, mf.CRC = size, crc
			}
			m.Files = append(m.Files, mf)
		}
	}
	if txnSize >= 0 {
		name := fmt.Sprintf("TXNLOG-ckpt%06d", seq)
		if err := vfs.CopyPrefix(s.opts.TxnFS, s.opts.TxnDir+"/TXNLOG", fs, dir+"/"+name, txnSize); err != nil {
			return nil, fmt.Errorf("core: capturing transaction log: %w", err)
		}
		crc, size, err := vfs.Checksum(fs, dir+"/"+name)
		if err != nil {
			return nil, err
		}
		m.Files = append(m.Files, checkpoint.File{
			Worker: -1, Path: name, Restore: "TXNLOG", Size: size, CRC: crc,
		})
	}
	if err := checkpoint.Write(fs, dir, m); err != nil {
		return nil, err
	}
	checkpoint.GC(fs, dir, m)
	s.ckptCount.Add(1)
	s.lastCkptUnix.Store(time.Now().Unix())
	return m, nil
}

// CheckpointBarrierNs reports the duration of the most recent checkpoint's
// worker pause, in nanoseconds (0 before the first checkpoint).
func (s *Store) CheckpointBarrierNs() int64 { return s.ckptBarrierNs.Load() }

// Checkpoints reports how many checkpoints committed on this store.
func (s *Store) Checkpoints() int64 { return s.ckptCount.Load() }

// LastCheckpointUnix reports the commit time (unix seconds) of the most
// recent checkpoint, 0 when none has been taken — the LASTSAVE answer.
func (s *Store) LastCheckpointUnix() int64 { return s.lastCkptUnix.Load() }

func engineLabel(name string) string {
	if name == "" {
		return "unspecified"
	}
	return name
}

// partitionerName labels the partitioner family for the manifest, so a
// restore can reject an image whose key→worker mapping would not match.
func partitionerName(p keyspace.Partitioner) string {
	switch p.(type) {
	case keyspace.Hash:
		return "hash"
	case keyspace.Consistent, *keyspace.Ring:
		return "consistent"
	case keyspace.Range:
		return "range"
	default:
		return "custom"
	}
}
