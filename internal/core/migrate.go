package core

import (
	"p2kvs/internal/keyspace"
	"p2kvs/internal/kv"
)

// consistentOf resolves the concrete consistent-hash ring behind a
// partitioner: a plain keyspace.Consistent, or the current generation of
// an epoch-versioned keyspace.Ring.
func consistentOf(p keyspace.Partitioner) (keyspace.Consistent, bool) {
	switch v := p.(type) {
	case keyspace.Consistent:
		return v, true
	case *keyspace.Ring:
		c, _ := v.Snapshot()
		return c, true
	}
	return keyspace.Consistent{}, false
}

// Migrate streams every live pair from src into dst, in batches. It is
// the offline resharding path (§4.2 defers elasticity to "a
// reconstruction of the entire set of KVS instances"): open a new store
// with the new worker count or partitioner, Migrate, then retire the old
// store. The online path is Store.Reshard; both compute destinations
// from the same keyspace.MovedRanges plan, so an offline migration and
// an online reshard between the same two ring generations land every key
// on the same worker.
//
// With consistent-hash partitioning on both sides, a pair keeps its
// worker id unless the plan moved its arc — most batches land on the
// partition that already holds neighbouring data, and the rewrite volume
// approaches the theoretical minimum moved-key fraction. Other
// partitioner combinations fall back to routing every pair through dst's
// generic write path.
//
// src is read through a snapshot-consistent global iterator; writes to
// src during migration are not reflected in dst (offline semantics).
func Migrate(src, dst *Store, batchSize int) (pairs int64, err error) {
	if batchSize <= 0 {
		batchSize = 512
	}
	it, err := src.NewIterator()
	if err != nil {
		return 0, err
	}
	defer it.Close()

	srcC, okSrc := consistentOf(src.route.Load().part)
	dstC, okDst := consistentOf(dst.route.Load().part)
	if okSrc && okDst {
		// Plan-based path: the exact moved-arc set of the src→dst ring
		// transition — shared with the online Reshard — names the
		// destination worker per key without consulting dst's router.
		plan := keyspace.NewMovedSet(keyspace.MovedRanges(srcC, dstC))
		dstWorkers := dst.ws()
		pending := make(map[int][]wop)
		flush := func(to int) error {
			ops := pending[to]
			if len(ops) == 0 {
				return nil
			}
			delete(pending, to)
			return applyQueued(dstWorkers[to], ops)
		}
		for it.SeekToFirst(); it.Valid(); it.Next() {
			to := srcC.Pick(it.Key())
			if mr, ok := plan.FindKey(it.Key()); ok {
				to = mr.To
			}
			op := wop{
				key:   append([]byte(nil), it.Key()...),
				value: append([]byte(nil), it.Value()...),
			}
			pending[to] = append(pending[to], op)
			pairs++
			if len(pending[to]) >= batchSize {
				if err := flush(to); err != nil {
					return pairs, err
				}
			}
		}
		if err := it.Error(); err != nil {
			return pairs, err
		}
		for to := range pending {
			if err := flush(to); err != nil {
				return pairs, err
			}
		}
		return pairs, nil
	}

	// Generic fallback: route every pair through dst's write path.
	var b kv.Batch
	flush := func() error {
		if b.Len() == 0 {
			return nil
		}
		if err := dst.Write(&b); err != nil {
			return err
		}
		b.Reset()
		return nil
	}
	for it.SeekToFirst(); it.Valid(); it.Next() {
		b.Put(append([]byte(nil), it.Key()...), append([]byte(nil), it.Value()...))
		pairs++
		if b.Len() >= batchSize {
			if err := flush(); err != nil {
				return pairs, err
			}
		}
	}
	if err := it.Error(); err != nil {
		return pairs, err
	}
	return pairs, flush()
}
