package core

import (
	"p2kvs/internal/kv"
)

// Migrate streams every live pair from src into dst, in batches. It is
// the offline resharding path the paper defers to future work (§4.2:
// "Extending N or adjusting hash function may lead to a reconstruction
// of the entire set of KVS instances"): open a new store with the new
// worker count or partitioner, Migrate, then retire the old store.
//
// With a consistent-hash partitioner on both sides, most batches land on
// the partition that already holds neighbouring data, so the rewrite
// volume approaches the theoretical minimum moved-key fraction.
//
// src is read through a snapshot-consistent global iterator; writes to
// src during migration are not reflected in dst (offline semantics).
func Migrate(src, dst *Store, batchSize int) (pairs int64, err error) {
	if batchSize <= 0 {
		batchSize = 512
	}
	it, err := src.NewIterator()
	if err != nil {
		return 0, err
	}
	defer it.Close()

	var b kv.Batch
	flush := func() error {
		if b.Len() == 0 {
			return nil
		}
		if err := dst.Write(&b); err != nil {
			return err
		}
		b.Reset()
		return nil
	}
	for it.SeekToFirst(); it.Valid(); it.Next() {
		b.Put(append([]byte(nil), it.Key()...), append([]byte(nil), it.Value()...))
		pairs++
		if b.Len() >= batchSize {
			if err := flush(); err != nil {
				return pairs, err
			}
		}
	}
	if err := it.Error(); err != nil {
		return pairs, err
	}
	return pairs, flush()
}
