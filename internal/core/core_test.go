package core

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"p2kvs/internal/btreekv"
	"p2kvs/internal/kv"
	"p2kvs/internal/kvell"
	"p2kvs/internal/lsm"
	"p2kvs/internal/vfs"
)

// lsmFactory builds the RocksDB-preset factory used by most tests.
func lsmFactory(fs vfs.FS, root string) EngineFactory {
	return func(id int, filter func(uint64) bool) (kv.Engine, error) {
		opts := lsm.RocksDBOptions(fs)
		opts.MemTableSize = 32 << 10
		opts.BaseLevelSize = 128 << 10
		opts.TargetFileSize = 32 << 10
		opts.SyncWAL = true
		return lsm.OpenWith(fmt.Sprintf("%s/inst-%02d", root, id), opts, lsm.OpenOptions{RecoverFilter: filter})
	}
}

func openStore(t *testing.T, fs *vfs.MemFS, workers int) *Store {
	t.Helper()
	opts := DefaultOptions(lsmFactory(fs, "p2"))
	opts.Workers = workers
	opts.TxnFS = fs
	opts.TxnDir = "p2/txn"
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetDeleteAcrossPartitions(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 4)
	defer s.Close()
	const n = 500
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, err := s.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(%d) = %q %v", i, v, err)
		}
	}
	if _, err := s.Get([]byte("absent")); err != kv.ErrNotFound {
		t.Fatalf("absent err = %v", err)
	}
	s.Delete([]byte("key-0001"))
	if _, err := s.Get([]byte("key-0001")); err != kv.ErrNotFound {
		t.Fatal("delete lost")
	}
	// Every worker should have received some share of 500 uniform keys.
	for _, ws := range s.Stats() {
		if ws.Ops == 0 {
			t.Fatalf("worker %d received no requests — partitioning broken", ws.ID)
		}
	}
}

func TestAsyncInterface(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 2)
	defer s.Close()
	const n = 300
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		key := []byte(fmt.Sprintf("a-%04d", i))
		err := s.PutAsync(key, key, func(err error) {
			if err != nil {
				errCh <- err
			}
			wg.Done()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// GetAsync.
	got := make(chan []byte, 1)
	s.GetAsync([]byte("a-0000"), func(v []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got <- v
	})
	if v := <-got; string(v) != "a-0000" {
		t.Fatalf("async get = %q", v)
	}
	// Async miss surfaces ErrNotFound.
	miss := make(chan error, 1)
	s.GetAsync([]byte("nope"), func(_ []byte, err error) { miss <- err })
	if err := <-miss; err != kv.ErrNotFound {
		t.Fatalf("async miss err = %v", err)
	}
}

func TestOBMFormsBatches(t *testing.T) {
	// Many async writes into few workers must aggregate: batches <
	// ops when OBM is on and the worker is the bottleneck.
	fs := vfs.NewMem()
	opts := DefaultOptions(lsmFactory(fs, "p2"))
	opts.Workers = 1
	opts.TxnFS = fs
	opts.TxnDir = "p2/txn"
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 2000
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("k-%05d", i))
		if err := s.PutAsync(key, key, func(error) { wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	ws := s.Stats()[0]
	if ws.Ops != n {
		t.Fatalf("ops = %d", ws.Ops)
	}
	if ws.Batches >= ws.Ops {
		t.Fatalf("OBM formed no batches: %d batches for %d ops", ws.Batches, ws.Ops)
	}
	if ws.BatchedOps == 0 {
		t.Fatal("no ops traveled in batches")
	}
}

func TestOBMDisabledNoBatches(t *testing.T) {
	fs := vfs.NewMem()
	opts := DefaultOptions(lsmFactory(fs, "p2"))
	opts.Workers = 1
	opts.OBM = false
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	wg.Add(500)
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("k-%05d", i))
		s.PutAsync(key, key, func(error) { wg.Done() })
	}
	wg.Wait()
	ws := s.Stats()[0]
	if ws.Batches != ws.Ops {
		t.Fatalf("OBM off but batches (%d) != ops (%d)", ws.Batches, ws.Ops)
	}
}

func TestBatchCapRespected(t *testing.T) {
	fs := vfs.NewMem()
	opts := DefaultOptions(lsmFactory(fs, "p2"))
	opts.Workers = 1
	opts.MaxBatch = 4
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	wg.Add(1000)
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("k-%05d", i))
		s.PutAsync(key, key, func(error) { wg.Done() })
	}
	wg.Wait()
	ws := s.Stats()[0]
	// 1000 ops with a batch cap of 4 need at least 250 batches.
	if ws.Batches < 250 {
		t.Fatalf("batch cap violated: %d batches for %d ops (max 4/batch)", ws.Batches, ws.Ops)
	}
}

func TestWriteBatchSinglePartition(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 4)
	defer s.Close()
	// Find two keys on the same worker.
	var k1, k2 []byte
	target := s.opts.Partitioner.Pick([]byte("base"))
	k1 = []byte("base")
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("probe-%d", i))
		if s.opts.Partitioner.Pick(k) == target {
			k2 = k
			break
		}
	}
	var b kv.Batch
	b.Put(k1, []byte("1"))
	b.Put(k2, []byte("2"))
	if err := s.Write(&b); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get(k1); string(v) != "1" {
		t.Fatal("batch write lost k1")
	}
	if v, _ := s.Get(k2); string(v) != "2" {
		t.Fatal("batch write lost k2")
	}
}

func TestCrossPartitionTransactionCommit(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 4)
	var b kv.Batch
	for i := 0; i < 20; i++ {
		b.Put([]byte(fmt.Sprintf("txn-%02d", i)), []byte("v"))
	}
	if err := s.Write(&b); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Crash and recover: committed transaction must survive in full.
	fs.Crash()
	fs.Restart()
	s2 := openStore(t, fs, 4)
	defer s2.Close()
	for i := 0; i < 20; i++ {
		if _, err := s2.Get([]byte(fmt.Sprintf("txn-%02d", i))); err != nil {
			t.Fatalf("committed txn key %d lost: %v", i, err)
		}
	}
}

func TestCrossPartitionTransactionRollback(t *testing.T) {
	// Reproduce Figure 11: a transaction whose WriteBatches were applied
	// on the instances but whose commit record never persisted must be
	// rolled back on every instance at recovery.
	fs := vfs.NewMem()
	s := openStore(t, fs, 4)

	// Committed transaction A.
	var a kv.Batch
	for i := 0; i < 8; i++ {
		a.Put([]byte(fmt.Sprintf("A-%02d", i)), []byte("a"))
	}
	if err := s.Write(&a); err != nil {
		t.Fatal(err)
	}

	// Transaction B: issue begin + instance writes, then sabotage the
	// commit record so it stays volatile, emulating a crash after the
	// instances applied the WriteBatches but before commit persisted.
	gsn := s.gsn.Add(1)
	if err := s.txn.begin(gsn); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		key := []byte(fmt.Sprintf("B-%02d", i))
		w := s.pick(key)
		r := &request{typ: reqWrite, batch: batchRef{ops: []wop{{key: key, value: []byte("b")}}}, gsn: gsn, noMerge: true}
		wg.Add(1)
		r.callback = func(error) { wg.Done() }
		w.q.push(r)
	}
	wg.Wait()
	// All instance writes are durable (SyncWAL on), commit never written.
	fs.Crash()
	s.Close() // stop the zombie store (a real crash kills the process)
	fs.Restart()

	s2 := openStore(t, fs, 4)
	defer s2.Close()
	for i := 0; i < 8; i++ {
		if _, err := s2.Get([]byte(fmt.Sprintf("A-%02d", i))); err != nil {
			t.Fatalf("committed txn A key %d lost: %v", i, err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := s2.Get([]byte(fmt.Sprintf("B-%02d", i))); err != kv.ErrNotFound {
			t.Fatalf("uncommitted txn B key %d survived rollback: %v", i, err)
		}
	}
}

func TestRangeQuery(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 4)
	defer s.Close()
	for i := 0; i < 300; i++ {
		s.Put([]byte(fmt.Sprintf("r%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	pairs, err := s.Range([]byte("r0100"), []byte("r0109"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 10 {
		t.Fatalf("range returned %d pairs", len(pairs))
	}
	for i, p := range pairs {
		want := fmt.Sprintf("r%04d", 100+i)
		if string(p.Key) != want || string(p.Value) != fmt.Sprintf("v%d", 100+i) {
			t.Fatalf("pair %d = %q/%q", i, p.Key, p.Value)
		}
	}
}

func TestScanBothStrategies(t *testing.T) {
	for _, strat := range []ScanStrategy{ScanParallel, ScanMerged} {
		fs := vfs.NewMem()
		opts := DefaultOptions(lsmFactory(fs, "p2"))
		opts.Workers = 4
		opts.Scan = strat
		s, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			s.Put([]byte(fmt.Sprintf("s%04d", i)), []byte("v"))
		}
		pairs, err := s.Scan([]byte("s0050"), 25)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != 25 {
			t.Fatalf("strategy %v: scan returned %d", strat, len(pairs))
		}
		for i, p := range pairs {
			want := fmt.Sprintf("s%04d", 50+i)
			if string(p.Key) != want {
				t.Fatalf("strategy %v: pair %d = %q, want %q", strat, i, p.Key, want)
			}
		}
		s.Close()
	}
}

func TestGlobalIterator(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 3)
	defer s.Close()
	const n = 200
	for i := 0; i < n; i++ {
		s.Put([]byte(fmt.Sprintf("g%04d", i)), []byte("v"))
	}
	it, err := s.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	count, prev := 0, ""
	for it.SeekToFirst(); it.Valid(); it.Next() {
		k := string(it.Key())
		if prev != "" && k <= prev {
			t.Fatalf("global iterator out of order: %q after %q", k, prev)
		}
		prev = k
		count++
	}
	if count != n {
		t.Fatalf("iterated %d, want %d", count, n)
	}
	it.Seek([]byte("g0150"))
	if !it.Valid() || string(it.Key()) != "g0150" {
		t.Fatalf("Seek landed on %q", it.Key())
	}
}

// TestPortabilityMatrix runs the same workload over p2KVS on all four
// engine families (§4.6): the RocksDB preset, the LevelDB preset, the
// WiredTiger-style engine (no batch caps), and the KVell-style engine.
func TestPortabilityMatrix(t *testing.T) {
	factories := map[string]func(fs *vfs.MemFS) EngineFactory{
		"rocksdb": func(fs *vfs.MemFS) EngineFactory { return lsmFactory(fs, "px") },
		"leveldb": func(fs *vfs.MemFS) EngineFactory {
			return func(id int, filter func(uint64) bool) (kv.Engine, error) {
				opts := lsm.LevelDBOptions(fs)
				opts.MemTableSize = 32 << 10
				return lsm.OpenWith(fmt.Sprintf("px/inst-%02d", id), opts, lsm.OpenOptions{RecoverFilter: filter})
			}
		},
		"wiredtiger": func(fs *vfs.MemFS) EngineFactory {
			return func(id int, _ func(uint64) bool) (kv.Engine, error) {
				return btreekv.Open(fmt.Sprintf("px/wt-%02d", id), btreekv.Options{FS: fs, CheckpointBytes: 32 << 10})
			}
		},
		"kvell": func(fs *vfs.MemFS) EngineFactory {
			return func(id int, _ func(uint64) bool) (kv.Engine, error) {
				return kvell.Open(fmt.Sprintf("px/kv-%02d", id), kvell.Options{FS: fs, Workers: 1})
			}
		},
	}
	for name, mk := range factories {
		t.Run(name, func(t *testing.T) {
			fs := vfs.NewMem()
			opts := DefaultOptions(mk(fs))
			opts.Workers = 3
			s, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 100; i++ {
						key := []byte(fmt.Sprintf("p%d-%04d", g, i))
						if err := s.Put(key, key); err != nil {
							t.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			for g := 0; g < 4; g++ {
				for i := 0; i < 100; i += 9 {
					key := []byte(fmt.Sprintf("p%d-%04d", g, i))
					v, err := s.Get(key)
					if err != nil || string(v) != string(key) {
						t.Fatalf("Get(%s) = %q %v", key, v, err)
					}
				}
			}
			pairs, err := s.Scan([]byte("p1-"), 10)
			if err != nil || len(pairs) != 10 {
				t.Fatalf("scan = %d pairs, %v", len(pairs), err)
			}
		})
	}
}

func TestPinnedWorkers(t *testing.T) {
	fs := vfs.NewMem()
	opts := DefaultOptions(lsmFactory(fs, "p2"))
	opts.Workers = 2
	opts.PinWorkers = true
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("pin-%03d", i))
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := s.Get([]byte("pin-050")); err != nil || string(v) != "pin-050" {
		t.Fatalf("Get = %q %v", v, err)
	}
}

func TestClosedStore(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 2)
	s.Put([]byte("k"), []byte("v"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close must be nil")
	}
	if err := s.Put([]byte("a"), []byte("b")); err != kv.ErrClosed {
		t.Fatalf("Put after close = %v", err)
	}
	if _, err := s.Get([]byte("k")); err != kv.ErrClosed {
		t.Fatalf("Get after close = %v", err)
	}
	if err := s.PutAsync([]byte("a"), []byte("b"), nil); err != kv.ErrClosed {
		t.Fatalf("PutAsync after close = %v", err)
	}
}

func TestQuickStoreAgainstMap(t *testing.T) {
	type op struct {
		Key    uint8
		Val    uint16
		Delete bool
	}
	fn := func(ops []op) bool {
		fs := vfs.NewMem()
		opts := DefaultOptions(lsmFactory(fs, "q"))
		opts.Workers = 3
		opts.TxnFS = fs
		opts.TxnDir = "q/txn"
		s, err := Open(opts)
		if err != nil {
			return false
		}
		defer s.Close()
		model := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("key-%03d", o.Key%64)
			if o.Delete {
				delete(model, k)
				if s.Delete([]byte(k)) != nil {
					return false
				}
			} else {
				v := fmt.Sprintf("v-%d", o.Val)
				model[k] = v
				if s.Put([]byte(k), []byte(v)) != nil {
					return false
				}
			}
		}
		for k, want := range model {
			v, err := s.Get([]byte(k))
			if err != nil || string(v) != want {
				return false
			}
		}
		// A full scan agrees with the model size.
		pairs, err := s.Scan(nil, 1<<20)
		return err == nil && len(pairs) == len(model)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQueuePeekSemantics(t *testing.T) {
	q := newReqQueue(16)
	mk := func(typ reqType) *request {
		return &request{typ: typ, done: make(chan struct{})}
	}
	q.push(mk(reqWrite))
	q.push(mk(reqWrite))
	q.push(mk(reqRead)) // type switch: must cut the batch
	q.push(mk(reqWrite))

	batch, _ := q.popBatch(true, 32)
	if len(batch) != 2 || batch[0].typ != reqWrite {
		t.Fatalf("first batch = %d reqs", len(batch))
	}
	batch, _ = q.popBatch(true, 32)
	if len(batch) != 1 || batch[0].typ != reqRead {
		t.Fatalf("second batch = %d of type %v", len(batch), batch[0].typ)
	}
	batch, _ = q.popBatch(true, 32)
	if len(batch) != 1 || batch[0].typ != reqWrite {
		t.Fatalf("third batch = %d", len(batch))
	}
	// SCAN is never merged.
	q.push(mk(reqScan))
	q.push(mk(reqScan))
	batch, _ = q.popBatch(true, 32)
	if len(batch) != 1 {
		t.Fatalf("scan batch = %d, want 1", len(batch))
	}
	// noMerge requests stay alone.
	r1, r2 := mk(reqWrite), mk(reqWrite)
	r1.noMerge = true
	q.popBatch(true, 32) // drain remaining scan
	q.push(r1)
	q.push(r2)
	batch, _ = q.popBatch(true, 32)
	if len(batch) != 1 {
		t.Fatalf("noMerge batch = %d, want 1", len(batch))
	}
	// Closed queue drains then returns nil.
	q.close()
	if got, _ := q.popBatch(true, 32); len(got) != 1 {
		t.Fatalf("drain after close = %d", len(got))
	}
	if got, expired := q.popBatch(true, 32); got != nil || expired != nil {
		t.Fatal("closed empty queue must return nil")
	}
	if q.push(mk(reqWrite)) {
		t.Fatal("push on closed queue must fail")
	}
}

func TestStoreMultiGet(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 4)
	defer s.Close()
	for i := 0; i < 200; i++ {
		s.Put([]byte(fmt.Sprintf("mg-%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	keys := [][]byte{
		[]byte("mg-000"), []byte("absent"), []byte("mg-199"), []byte("mg-042"),
	}
	vals, err := s.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[0]) != "v0" || vals[1] != nil || string(vals[2]) != "v199" || string(vals[3]) != "v42" {
		t.Fatalf("MultiGet = %q", vals)
	}
	// Large batch spanning all workers.
	big := make([][]byte, 200)
	for i := range big {
		big[i] = []byte(fmt.Sprintf("mg-%03d", i))
	}
	vals, err = s.MultiGet(big)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("MultiGet[%d] = %q", i, v)
		}
	}
	s.Close()
	if _, err := s.MultiGet(keys); err != kv.ErrClosed {
		t.Fatalf("MultiGet after close = %v", err)
	}
}

func TestRangeEmptyAndSingleKey(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 3)
	defer s.Close()
	s.Put([]byte("only"), []byte("v"))
	// Empty range.
	pairs, err := s.Range([]byte("x"), []byte("y"))
	if err != nil || len(pairs) != 0 {
		t.Fatalf("empty range = %v, %v", pairs, err)
	}
	// Single-key inclusive range.
	pairs, err = s.Range([]byte("only"), []byte("only"))
	if err != nil || len(pairs) != 1 || string(pairs[0].Value) != "v" {
		t.Fatalf("single range = %v, %v", pairs, err)
	}
	// Scan with n <= 0.
	pairs, err = s.Scan([]byte("a"), 0)
	if err != nil || pairs != nil {
		t.Fatalf("zero scan = %v, %v", pairs, err)
	}
}

func TestAsyncBackpressure(t *testing.T) {
	// A tiny queue must block (not drop or error) excess async submits.
	fs := vfs.NewMem()
	opts := DefaultOptions(lsmFactory(fs, "bp"))
	opts.Workers = 1
	opts.QueueDepth = 4
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var done sync.WaitGroup
	const n = 500
	done.Add(n)
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("bp-%04d", i))
		if err := s.PutAsync(key, key, func(error) { done.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	done.Wait()
	if ws := s.Stats()[0]; ws.Ops != n {
		t.Fatalf("ops = %d, want %d", ws.Ops, n)
	}
}
