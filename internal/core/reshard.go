package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"p2kvs/internal/keyspace"
	"p2kvs/internal/kv"
	"p2kvs/internal/reshard"
)

// Online elastic resharding: Store.Reshard grows or shrinks a live store
// from N to N±1 (or any N') workers with no downtime — the operation
// §4.2 of the paper defers to "a reconstruction of the entire set of KVS
// instances". The protocol:
//
//  1. Prepare. New workers (a grow) are spawned on blank engines and
//     started, but receive no routed traffic: the routing generation
//     still maps every key to its old owner. The moved key ranges are
//     computed once from the old and new consistent-hash rings
//     (keyspace.MovedRanges) — the same plan the offline Migrate path
//     shares.
//
//  2. Copy + double-write. A short barrier parks each source worker (an
//     old owner losing arcs) just long enough to activate the
//     double-write interceptor and pin an engine snapshot; from then on
//     every applied write whose key has moved is synchronously mirrored
//     by the source worker to the new owner, GSN-tagged in a SeenSet.
//     The coordinator then streams the snapshot-pinned image of the
//     moved ranges to the new owners, while writes keep flowing. A
//     bulk-copied pair whose key was mirrored after the snapshot floor
//     is dropped at apply time on the target — the mirror is fresher.
//     Because the mirror wait is synchronous, an acknowledged write is
//     durable on both owners, so cutover needs no drain phase and reads
//     after the flip observe every pre-flip acknowledged write.
//
//  3. Cutover. A bounded barrier re-parks the source workers; within the
//     pause budget (Options.CutoverBudget, default 10ms) the coordinator
//     waits for prepared cross-partition transactions to settle, commits
//     the new topology (the crash-recovery pivot), and atomically swaps
//     the epoch-versioned ring and the routing generation. If the budget
//     cannot be met the barrier is released, writers resume, and the
//     cutover retries — writers never pause longer than the budget per
//     attempt. After the flip the moved ranges are deleted from their
//     old owners (grow) or the retired workers are parked (shrink), and
//     the topology returns to the active state.
//
//  4. Abort. Any failure before the topology commit rolls back cleanly:
//     the interceptor is removed, spawned workers are stopped and their
//     instances wiped, pairs bulk-copied onto survivors are deleted, and
//     the store keeps serving at the old shape.
//
// Crash safety: the TOPOLOGY file in the transaction directory is the
// commit point. A crash before it commits recovers at the old shape
// (partially copied target instances are wiped at the next prepare or by
// Open). A crash after it commits recovers at the new shape, and Open
// finishes the interrupted cleanup before serving. The store is never
// reopened at a mix of the two.

// ErrReshardUnsupported reports a Reshard call on a store that was not
// opened in the elastic configuration.
var ErrReshardUnsupported = errors.New("core: resharding requires an elastic store (a keyspace.Ring partitioner, a transaction directory, an InstanceReset hook, and no replication)")

// errBarrierTimeout is the internal signal that one cutover attempt could
// not park the source workers inside the pause budget.
var errBarrierTimeout = errors.New("core: reshard barrier timed out")

// DefaultCutoverBudget bounds the writer pause of one cutover attempt
// when Options.CutoverBudget is zero.
const DefaultCutoverBudget = 10 * time.Millisecond

const (
	// copyBatchSize is the number of pairs per bulk-copy (and cleanup
	// delete) request.
	copyBatchSize = 256
	// cutoverAttempts bounds cutover retries before the reshard aborts.
	cutoverAttempts = 400
	// cutoverRetrySleep spaces cutover attempts so writers make progress
	// between pauses.
	cutoverRetrySleep = 2 * time.Millisecond
	// parkTimeout bounds how long one cutover attempt waits for the
	// source workers to reach their barriers (a submitter's asynchronous
	// completion callback may itself be issuing store operations that
	// block on the routing lock the cutover holds — the bounded wait
	// breaks that cycle by releasing and retrying).
	parkTimeout = 250 * time.Millisecond
)

// reshardRun is the state an in-flight reshard shares with the workers:
// the moved-range plan, the double-write SeenSet with its snapshot GSN
// floor, and the target worker for every new-shape worker id.
type reshardRun struct {
	plan    *keyspace.MovedSet
	seen    *reshard.SeenSet
	floor   uint64
	targets []*worker // indexed by new-shape worker id
	tracker *reshard.Tracker
}

func (run *reshardRun) fail(err error) { run.tracker.Fail(err) }
func (run *reshardRun) failed() bool   { return run.tracker.Failed() }

// ReshardStats reports the resharding subsystem's counters (current or
// most recent run; zero-valued when no reshard has run).
func (s *Store) ReshardStats() reshard.Stats { return s.tracker.Snapshot() }

// Epoch reports the committed ring epoch (0 until the first reshard).
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// Elastic reports whether this store satisfies Reshard's preconditions
// (ring partitioner, transaction log, instance-reset hook, no
// replication) — i.e. whether Reshard can ever succeed on it.
func (s *Store) Elastic() bool {
	return s.ring != nil && s.txn != nil && s.opts.ReplLog == nil && s.opts.InstanceReset != nil
}

// Reshard changes the worker count of a live elastic store to newN with
// no downtime. It returns once the new shape is committed and cleaned
// up; concurrent reads and writes are served throughout, with writer
// pauses bounded by Options.CutoverBudget per cutover attempt. Reshard
// calls serialize; a failed run aborts back to the old shape.
func (s *Store) Reshard(ctx context.Context, newN int) error {
	if s.ring == nil || s.txn == nil || s.opts.ReplLog != nil || s.opts.InstanceReset == nil {
		return ErrReshardUnsupported
	}
	if newN < 1 {
		return fmt.Errorf("core: Reshard to %d workers: at least one required", newN)
	}
	if s.closed.Load() {
		return kv.ErrClosed
	}
	s.reshMu.Lock()
	defer s.reshMu.Unlock()

	oldRT := s.route.Load()
	oldN := len(oldRT.workers)
	if newN == oldN {
		return nil
	}
	oldC, ok := oldRT.part.(keyspace.Consistent)
	if !ok {
		return ErrReshardUnsupported
	}
	s.tracker.Begin(oldN, newN, s.epoch.Load())

	// --- Prepare: plan the move, spawn new workers on blank engines. ---
	newC := keyspace.NewConsistent(newN, s.ring.Replicas())
	moved := keyspace.MovedRanges(oldC, newC)
	plan := keyspace.NewMovedSet(moved)

	var added []*worker
	if newN > oldN {
		for id := oldN; id < newN; id++ {
			// Wipe first: a crashed earlier attempt may have left a
			// partial copy in this instance directory.
			if err := s.opts.InstanceReset(id); err != nil {
				return s.abortReshard(nil, added, oldRT, newN, fmt.Errorf("core: resetting instance %d: %w", id, err))
			}
			engine, err := s.opts.EngineFactory(id, nil)
			if err != nil {
				return s.abortReshard(nil, added, oldRT, newN, fmt.Errorf("core: opening instance %d: %w", id, err))
			}
			w := newWorker(id, engine, s.opts)
			w.gsnSrc = &s.gsn
			w.txn = s.txn
			w.cache = s.cache
			w.resh = &s.resh
			w.start()
			added = append(added, w)
		}
	}
	var newWorkers []*worker
	if newN > oldN {
		newWorkers = append(append([]*worker{}, oldRT.workers...), added...)
	} else {
		newWorkers = append([]*worker{}, oldRT.workers[:newN]...)
	}

	// sources are the old owners losing arcs — the workers that must
	// double-write and be barriered. Grow moves arcs only old→added;
	// shrink only retired→survivor.
	fromIDs := map[int]bool{}
	for _, mr := range moved {
		fromIDs[mr.From] = true
	}
	sources := make([]*worker, 0, len(fromIDs))
	for id := range fromIDs {
		sources = append(sources, oldRT.workers[id])
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i].id < sources[j].id })

	run := &reshardRun{plan: plan, seen: reshard.NewSeenSet(), targets: newWorkers, tracker: &s.tracker}

	// --- Snapshot barrier: activate double-writes, pin the copy image. ---
	// The barrier closes the torn window where a worker loaded a nil run
	// just before activation and commits its batch unmirrored after the
	// snapshot: a batch that saw no run was dequeued before the barrier
	// landed, so it is applied before the worker parks — inside the
	// pinned iterators; everything applied after the park is mirrored.
	// No routing lock is needed (or wanted: the park wait is unbounded,
	// and a submitter's completion callback may itself submit) — the
	// floor only has to precede the run's publication, so every mirror
	// GSN exceeds it.
	run.floor = s.gsn.Load()
	s.resh.Store(run)
	release, err := barrierWorkers(sources, nil)
	if err != nil {
		return s.abortReshard(run, added, oldRT, newN, fmt.Errorf("core: reshard snapshot barrier: %w", err))
	}
	its := make([]kv.Iterator, len(sources))
	for i, w := range sources {
		it, ierr := w.engine.NewIterator()
		if ierr != nil {
			err = fmt.Errorf("core: pinning snapshot of worker %d: %w", w.id, ierr)
			break
		}
		its[i] = it
	}
	close(release)
	closeIters := func() {
		for _, it := range its {
			if it != nil {
				it.Close()
			}
		}
	}
	if err != nil {
		closeIters()
		return s.abortReshard(run, added, oldRT, newN, err)
	}

	// --- Copy: stream the pinned image of the moved ranges. ---
	s.tracker.SetState(reshard.StateCopy)
	err = s.copyMoved(ctx, run, sources, its)
	closeIters()
	if err == nil && run.failed() {
		err = errors.New("core: reshard failed during copy (see reshard_last_err)")
	}
	if err != nil {
		return s.abortReshard(run, added, oldRT, newN, err)
	}

	// --- Cutover: commit the topology and flip the ring, bounded pause. ---
	s.tracker.SetState(reshard.StateCutover)
	newEpoch := s.epoch.Load() + 1
	err = s.cutover(ctx, run, sources, newWorkers, newC, oldN, newN, newEpoch)
	if err != nil {
		return s.abortReshard(run, added, oldRT, newN, err)
	}

	// --- Cleanup: drop the moved ranges from their old owners. ---
	// The new shape is committed; a cleanup failure leaves TOPOLOGY in
	// the cleanup state, and the next Open finishes the job before
	// serving.
	s.tracker.SetState(reshard.StateCleanup)
	if newN > oldN {
		for _, w := range sources {
			keys, _, cerr := collectForeign(w, newC, w.id)
			if cerr == nil {
				cerr = s.deleteKeysQueued(w, keys)
			}
			if cerr != nil && !s.closed.Load() {
				s.tracker.Fail(fmt.Errorf("core: reshard cleanup on worker %d: %w", w.id, cerr))
				return fmt.Errorf("core: reshard committed but cleanup failed (reopen to finish): %w", cerr)
			}
		}
	} else {
		// Retired workers stop serving but keep their engines open:
		// merged iterators created before the cutover may still be
		// reading them. Close closes the engines; the stale instance
		// directories are wiped by the next grow's prepare or by Open's
		// cleanup recovery.
		retired := oldRT.workers[newN:]
		for _, w := range retired {
			w.park()
		}
		s.retiredMu.Lock()
		s.retired = append(s.retired, retired...)
		s.retiredMu.Unlock()
	}
	topo := reshard.Topology{Workers: newN, PrevWorkers: oldN, Epoch: newEpoch, State: reshard.TopologyActive}
	if err := reshard.SaveTopology(s.opts.TxnFS, s.opts.TxnDir, topo); err != nil && !s.closed.Load() {
		s.tracker.Fail(err)
		return fmt.Errorf("core: reshard committed but topology finalize failed (reopen to finish): %w", err)
	}
	s.tracker.Complete(newEpoch)
	return nil
}

// cutover runs the bounded-pause retry loop: park the sources, drain
// prepared transactions, commit TOPOLOGY, swap the ring and the routing
// generation. One attempt never pauses writers longer than the budget
// (plus the topology fsync); an attempt that cannot make it releases the
// barrier and retries.
func (s *Store) cutover(ctx context.Context, run *reshardRun, sources, newWorkers []*worker, newC keyspace.Consistent, oldN, newN int, newEpoch uint64) error {
	budget := s.opts.CutoverBudget
	if budget <= 0 {
		budget = DefaultCutoverBudget
	}
	for attempt := 0; ; attempt++ {
		if s.closed.Load() {
			return kv.ErrClosed
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: reshard cutover: %w", err)
			}
		}
		if run.failed() {
			return errors.New("core: reshard failed before cutover (see reshard_last_err)")
		}
		if attempt >= cutoverAttempts {
			return fmt.Errorf("core: reshard cutover could not meet the %v pause budget in %d attempts", budget, cutoverAttempts)
		}
		committed, barrierNs, err := s.tryCutover(run, sources, newWorkers, newC, oldN, newN, newEpoch, budget)
		if err != nil {
			return err
		}
		if committed {
			s.tracker.SetBarrierNs(barrierNs)
			return nil
		}
		s.tracker.AddCutoverRetry()
		time.Sleep(cutoverRetrySleep)
	}
}

// tryCutover is one cutover attempt. committed == false with a nil error
// means "budget missed, retry"; a non-nil error aborts the reshard.
func (s *Store) tryCutover(run *reshardRun, sources, newWorkers []*worker, newC keyspace.Consistent, oldN, newN int, newEpoch uint64, budget time.Duration) (committed bool, barrierNs int64, err error) {
	timeout := make(chan struct{})
	timer := time.AfterFunc(parkTimeout, func() { close(timeout) })
	defer timer.Stop()

	s.routeMu.Lock()
	start := time.Now()
	release, err := barrierWorkers(sources, timeout)
	if err != nil {
		s.routeMu.Unlock()
		if errors.Is(err, errBarrierTimeout) {
			return false, 0, nil
		}
		return false, 0, fmt.Errorf("core: reshard cutover barrier: %w", err)
	}
	abandon := func() {
		close(release)
		s.routeMu.Unlock()
	}
	// Sources are parked and no new request can be admitted: every
	// acknowledged write to a moved key is on both owners (the mirror
	// wait is synchronous), so only prepared-but-uncommitted
	// cross-partition transactions can still straddle the flip. Wait
	// them out inside the budget.
	deadline := start.Add(budget)
	for s.preparedTxns.Load() != 0 {
		if time.Now().After(deadline) {
			abandon()
			return false, 0, nil
		}
		time.Sleep(20 * time.Microsecond)
	}
	if time.Since(start) > budget {
		abandon()
		return false, 0, nil
	}
	if run.failed() {
		abandon()
		return false, 0, errors.New("core: reshard failed at cutover (see reshard_last_err)")
	}
	// Commit point. Inside the pause by design: committing the new ring
	// while writers still run would open a crash window where the
	// topology names the new shape but a late unmirrored write lands on
	// an old owner.
	topo := reshard.Topology{Workers: newN, PrevWorkers: oldN, Epoch: newEpoch, State: reshard.TopologyCleanup}
	if err := reshard.SaveTopology(s.opts.TxnFS, s.opts.TxnDir, topo); err != nil {
		abandon()
		return false, 0, fmt.Errorf("core: committing reshard topology: %w", err)
	}
	s.epoch.Store(newEpoch)
	s.ring.Advance(newC)
	s.route.Store(&routing{part: newC, workers: newWorkers})
	s.resh.Store(nil)
	close(release)
	barrierNs = time.Since(start).Nanoseconds()
	s.routeMu.Unlock()
	return true, barrierNs, nil
}

// barrierWorkers pushes a barrier to every listed worker and waits for
// all of them to park. timeout, when non-nil, bounds both the queue-space
// wait and the park wait; a miss returns errBarrierTimeout with every
// already-pushed barrier released. On success the workers are parked and
// the caller owns the returned release channel.
func barrierWorkers(workers []*worker, timeout <-chan struct{}) (release chan struct{}, err error) {
	release = make(chan struct{})
	var ready sync.WaitGroup
	for _, w := range workers {
		r := &request{
			typ:            reqBarrier,
			noMerge:        true,
			barrierReady:   &ready,
			barrierRelease: release,
			done:           make(chan struct{}),
		}
		ready.Add(1)
		if perr := w.q.pushWait(timeout, r); perr != nil {
			ready.Done()
			close(release)
			if errors.Is(perr, kv.ErrDeadlineExceeded) {
				return nil, errBarrierTimeout
			}
			return nil, perr
		}
	}
	parked := make(chan struct{})
	go func() {
		ready.Wait()
		close(parked)
	}()
	select {
	case <-parked:
		return release, nil
	case <-timeout:
		close(release)
		return nil, errBarrierTimeout
	}
}

// copyMoved streams every moved pair from the pinned source iterators to
// its new owner, in batches through the target queues. Target workers
// drop pairs superseded by a double-write at apply time (filterCopied).
func (s *Store) copyMoved(ctx context.Context, run *reshardRun, sources []*worker, its []kv.Iterator) error {
	ctx = liveCtx(ctx)
	for si, src := range sources {
		pending := make(map[int][]wop)
		flush := func(to int) error {
			ops := pending[to]
			if len(ops) == 0 {
				return nil
			}
			delete(pending, to)
			if s.closed.Load() {
				return kv.ErrClosed
			}
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("core: reshard copy: %w", err)
				}
			}
			if run.failed() {
				return errors.New("core: reshard failed during copy (see reshard_last_err)")
			}
			var bytes int64
			for _, op := range ops {
				bytes += int64(len(op.key) + len(op.value))
			}
			r := &request{
				typ:       reqWrite,
				batch:     batchRef{ops: ops},
				copySeen:  run.seen,
				copyFloor: run.floor,
				copySkip:  s.tracker.SkippedStale(),
				done:      make(chan struct{}),
			}
			if err := run.targets[to].q.pushWait(nil, r); err != nil {
				return fmt.Errorf("core: reshard copy to worker %d: %w", to, err)
			}
			<-r.done
			if r.err != nil {
				return fmt.Errorf("core: reshard copy apply on worker %d: %w", to, r.err)
			}
			s.tracker.AddMoved(int64(len(ops)), bytes)
			return nil
		}
		it := its[si]
		for it.SeekToFirst(); it.Valid(); it.Next() {
			mr, ok := run.plan.Find(keyspace.KeyPoint(it.Key()))
			// Only arcs this worker owned under the old ring travel: a
			// stale foreign leftover (from an earlier failed run) must
			// not shadow the authoritative copy its real owner streams.
			if !ok || mr.From != src.id {
				continue
			}
			op := wop{
				key:   append([]byte(nil), it.Key()...),
				value: append([]byte(nil), it.Value()...),
			}
			pending[mr.To] = append(pending[mr.To], op)
			if len(pending[mr.To]) >= copyBatchSize {
				if err := flush(mr.To); err != nil {
					return err
				}
			}
		}
		if err := it.Error(); err != nil {
			return fmt.Errorf("core: reshard copy scan of worker %d: %w", src.id, err)
		}
		for to := range pending {
			if err := flush(to); err != nil {
				return err
			}
		}
	}
	return nil
}

// abortReshard rolls a failed pre-commit run back to the old shape:
// deactivate double-writes, stop and wipe spawned workers, and (shrink)
// delete pairs bulk-copied onto survivors. The old routing generation
// was never replaced, so serving continues uninterrupted.
func (s *Store) abortReshard(run *reshardRun, added []*worker, oldRT *routing, newN int, cause error) error {
	if run != nil {
		s.resh.Store(nil)
	}
	for _, w := range added {
		_ = w.stop(time.Time{})
	}
	if s.opts.InstanceReset != nil {
		for _, w := range added {
			_ = s.opts.InstanceReset(w.id)
		}
	}
	if run != nil && newN < len(oldRT.workers) && !s.closed.Load() {
		// Shrink: survivors received copies and mirrors of moved pairs;
		// under the still-active old ring those are foreign. Best-effort
		// removal — leftovers are invisible (scans and iterators filter
		// by ownership) and the next successful run re-copies them.
		for _, w := range oldRT.workers[:newN] {
			if keys, _, err := collectForeign(w, oldRT.part, w.id); err == nil {
				_ = s.deleteKeysQueued(w, keys)
			}
		}
	}
	s.tracker.Abort(cause)
	return cause
}

// collectForeign returns (deep-copied) keys in w's engine that partition
// part does not assign to worker self, with their total byte volume.
func collectForeign(w *worker, part keyspace.Partitioner, self int) ([][]byte, int64, error) {
	it, err := w.engine.NewIterator()
	if err != nil {
		return nil, 0, err
	}
	defer it.Close()
	var keys [][]byte
	var bytes int64
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if part.Pick(it.Key()) != self {
			keys = append(keys, append([]byte(nil), it.Key()...))
			bytes += int64(len(it.Key()) + len(it.Value()))
		}
	}
	return keys, bytes, it.Error()
}

// applyQueued pushes one write batch through w's queue and waits for the
// engine to acknowledge it — ordered with concurrent writes and
// invalidating the hot cache like any other write. Shared by the reshard
// cleanup/abort paths and the offline Migrate.
func applyQueued(w *worker, ops []wop) error {
	r := &request{typ: reqWrite, batch: batchRef{ops: ops}, done: make(chan struct{})}
	if err := w.q.pushWait(nil, r); err != nil {
		return err
	}
	<-r.done
	return r.err
}

// deleteKeysQueued deletes keys from w through its request queue, in
// copyBatchSize batches.
func (s *Store) deleteKeysQueued(w *worker, keys [][]byte) error {
	for len(keys) > 0 {
		n := copyBatchSize
		if n > len(keys) {
			n = len(keys)
		}
		ops := make([]wop, n)
		for i, k := range keys[:n] {
			ops[i] = wop{del: true, key: k}
		}
		keys = keys[n:]
		if err := applyQueued(w, ops); err != nil {
			return err
		}
	}
	return nil
}

// deleteForeignDirect removes keys partition part does not assign to
// worker self straight through the engine — the pre-serve path of Open's
// interrupted-cleanup recovery, before any worker goroutine starts.
func deleteForeignDirect(engine kv.Engine, part keyspace.Partitioner, self int) (int, error) {
	it, err := engine.NewIterator()
	if err != nil {
		return 0, err
	}
	var keys [][]byte
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if part.Pick(it.Key()) != self {
			keys = append(keys, append([]byte(nil), it.Key()...))
		}
	}
	if err := it.Error(); err != nil {
		it.Close()
		return 0, err
	}
	if err := it.Close(); err != nil {
		return 0, err
	}
	deleted := 0
	for len(keys) > 0 {
		n := copyBatchSize
		if n > len(keys) {
			n = len(keys)
		}
		var b kv.Batch
		for _, k := range keys[:n] {
			b.Delete(k)
		}
		keys = keys[n:]
		if bw, ok := engine.(kv.BatchWriter); ok {
			if err := bw.Write(&b); err != nil {
				return deleted, err
			}
		} else {
			for _, op := range b.Ops() {
				if err := engine.Delete(op.Key); err != nil {
					return deleted, err
				}
			}
		}
		deleted += n
	}
	return deleted, nil
}

