package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"p2kvs/internal/keyspace"
	"p2kvs/internal/kv"
	"p2kvs/internal/reshard"
	"p2kvs/internal/vfs"
)

// openElastic opens a store in the elastic configuration: Ring
// partitioner, transaction directory, InstanceReset hook, hot cache on.
func openElastic(t *testing.T, fs *vfs.MemFS, root string, workers int) *Store {
	t.Helper()
	opts := DefaultOptions(lsmFactory(fs, root))
	opts.Workers = workers
	opts.Partitioner = keyspace.NewRing(workers, 64)
	opts.TxnFS = fs
	opts.TxnDir = root + "/txn"
	opts.HotCacheBytes = 1 << 20
	opts.InstanceReset = func(id int) error {
		return vfs.RemoveTree(fs, fmt.Sprintf("%s/inst-%02d", root, id))
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// engineDump collects worker i's live pairs straight from its engine.
func engineDump(t *testing.T, s *Store, i int) map[string]string {
	t.Helper()
	it, err := s.Engine(i).NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	out := map[string]string{}
	for it.SeekToFirst(); it.Valid(); it.Next() {
		out[string(it.Key())] = string(it.Value())
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestReshardGrowUnderLoad(t *testing.T) {
	fs := vfs.NewMem()
	s := openElastic(t, fs, "el", 3)
	defer s.Close()
	const n = 2000
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent writers and readers throughout the reshard: every
	// acknowledged write must be readable afterwards (read-your-writes
	// across the cutover), and no operation may fail.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var opErr atomic.Value
	lastAcked := make([]atomic.Int64, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Each goroutine owns two hot keys: with a single writer
				// per key, the last acked value is the engine value.
				hot := g*2 + i%2
				key := []byte(fmt.Sprintf("hot-%02d", hot))
				val := int64(i) + 1 // ≥ 1, so a zero lastAcked means "never written"
				if err := s.Put(key, []byte(fmt.Sprintf("%d", val))); err != nil {
					opErr.Store(err)
					return
				}
				lastAcked[hot].Store(val)
				if _, err := s.Get([]byte(fmt.Sprintf("key-%05d", (g*131+i)%n))); err != nil {
					opErr.Store(err)
					return
				}
			}
		}(g)
	}

	if err := s.Reshard(context.Background(), 5); err != nil {
		t.Fatalf("Reshard: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := opErr.Load(); err != nil {
		t.Fatalf("operation failed during reshard: %v", err)
	}

	if got := s.Workers(); got != 5 {
		t.Fatalf("Workers() = %d after grow", got)
	}
	if e := s.Epoch(); e != 1 {
		t.Fatalf("epoch = %d, want 1", e)
	}
	st := s.ReshardStats()
	if st.State != "done" || st.Completed != 1 || st.From != 3 || st.To != 5 {
		t.Fatalf("reshard stats: %+v", st)
	}
	if st.MovedKeys == 0 {
		t.Fatal("no keys moved in a 3->5 grow")
	}
	if st.BarrierNs <= 0 {
		t.Fatalf("cutover barrier duration not recorded: %d", st.BarrierNs)
	}

	// Every pre-load key still reads back.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%05d", i)
		v, err := s.Get([]byte(key))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) after grow = %q %v", key, v, err)
		}
	}
	// Read-your-writes for the concurrent stream: the last acked value of
	// each hot key (or a later one that raced the shutdown) is served.
	written := 0
	for h := range lastAcked {
		want := lastAcked[h].Load()
		if want == 0 {
			continue // this goroutine never reached the key
		}
		written++
		v, err := s.Get([]byte(fmt.Sprintf("hot-%02d", h)))
		if err != nil {
			t.Fatalf("hot key %d: %v", h, err)
		}
		var got int64
		fmt.Sscanf(string(v), "%d", &got)
		if got < want {
			t.Fatalf("hot key %d regressed: read %d, last acked %d", h, got, want)
		}
	}
	// Cleanup removed the moved ranges: no worker holds a foreign key.
	part := s.route.Load().part
	total := 0
	for i := 0; i < 5; i++ {
		dump := engineDump(t, s, i)
		total += len(dump)
		for k := range dump {
			if part.Pick([]byte(k)) != i {
				t.Fatalf("worker %d still holds foreign key %q after cleanup", i, k)
			}
		}
	}
	if total != n+written {
		t.Fatalf("engines hold %d pairs, want %d", total, n+written)
	}
	// The persisted topology is active at the new shape.
	topo, err := reshard.LoadTopology(fs, "el/txn")
	if err != nil || topo == nil {
		t.Fatalf("topology: %+v, %v", topo, err)
	}
	if topo.Workers != 5 || topo.Epoch != 1 || topo.State != reshard.TopologyActive {
		t.Fatalf("topology after grow: %+v", topo)
	}
}

func TestReshardShrink(t *testing.T) {
	fs := vfs.NewMem()
	s := openElastic(t, fs, "sh", 4)
	defer s.Close()
	const n = 1200
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Hold a merged iterator across the shrink: retired engines must stay
	// open until Close, so the snapshot remains fully readable.
	preIt, err := s.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reshard(context.Background(), 2); err != nil {
		t.Fatalf("Reshard shrink: %v", err)
	}
	if got := s.Workers(); got != 2 {
		t.Fatalf("Workers() = %d after shrink", got)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%05d", i)
		v, err := s.Get([]byte(key))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) after shrink = %q %v", key, v, err)
		}
	}
	// Writes after the shrink land on survivors only.
	if err := s.Put([]byte("post-shrink"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	// The pre-shrink iterator still reads the full old snapshot.
	seen := 0
	for preIt.SeekToFirst(); preIt.Valid(); preIt.Next() {
		seen++
	}
	if err := preIt.Error(); err != nil {
		t.Fatalf("pre-shrink iterator: %v", err)
	}
	preIt.Close()
	if seen != n {
		t.Fatalf("pre-shrink iterator saw %d pairs, want %d", seen, n)
	}
	topo, err := reshard.LoadTopology(fs, "sh/txn")
	if err != nil || topo == nil || topo.Workers != 2 || topo.State != reshard.TopologyActive {
		t.Fatalf("topology after shrink: %+v, %v", topo, err)
	}
}

func TestReshardReopen(t *testing.T) {
	fs := vfs.NewMem()
	s := openElastic(t, fs, "ro", 3)
	const n = 600
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Reshard(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening at the old worker count must refuse: half-routed data.
	opts := DefaultOptions(lsmFactory(fs, "ro"))
	opts.Workers = 3
	opts.Partitioner = keyspace.NewRing(3, 64)
	opts.TxnFS = fs
	opts.TxnDir = "ro/txn"
	if _, err := Open(opts); err == nil {
		t.Fatal("reopen at stale worker count succeeded")
	}
	// Reopening at the committed count serves everything.
	s2 := openElastic(t, fs, "ro", 4)
	defer s2.Close()
	if e := s2.Epoch(); e != 1 {
		t.Fatalf("epoch after reopen = %d", e)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%05d", i)
		v, err := s2.Get([]byte(key))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) after reopen = %q %v", key, v, err)
		}
	}
}

func TestReshardCleanupRecovery(t *testing.T) {
	// A crash after the cutover commit but before cleanup finishes leaves
	// TOPOLOGY in the cleanup state. Simulate it: complete a grow, then
	// rewrite the topology as if cleanup had not run, plant a stale
	// foreign key, and reopen — Open must finish the cleanup.
	fs := vfs.NewMem()
	s := openElastic(t, fs, "cr", 2)
	const n = 400
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Reshard(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	// Plant a foreign key on worker 0 (any key it does not own).
	part := s.route.Load().part
	var foreign []byte
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("stale-%05d", i))
		if part.Pick(k) != 0 {
			foreign = k
			break
		}
	}
	if err := s.Engine(0).Put(foreign, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := reshard.SaveTopology(fs, "cr/txn", reshard.Topology{
		Workers: 3, PrevWorkers: 2, Epoch: 1, State: reshard.TopologyCleanup,
	}); err != nil {
		t.Fatal(err)
	}
	s2 := openElastic(t, fs, "cr", 3)
	defer s2.Close()
	for i := 0; i < 3; i++ {
		for k := range engineDump(t, s2, i) {
			if s2.route.Load().part.Pick([]byte(k)) != i {
				t.Fatalf("worker %d holds foreign key %q after cleanup recovery", i, k)
			}
		}
	}
	topo, err := reshard.LoadTopology(fs, "cr/txn")
	if err != nil || topo == nil || topo.State != reshard.TopologyActive {
		t.Fatalf("topology after recovery: %+v, %v", topo, err)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%05d", i)
		if v, err := s2.Get([]byte(key)); err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) after recovery = %q %v", key, v, err)
		}
	}
}

func TestReshardAbortKeepsOldShape(t *testing.T) {
	fs := vfs.NewMem()
	s := openElastic(t, fs, "ab", 3)
	defer s.Close()
	const n = 500
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // abort before the copy can finish
	if err := s.Reshard(ctx, 5); err == nil {
		t.Fatal("reshard with dead context succeeded")
	}
	if got := s.Workers(); got != 3 {
		t.Fatalf("Workers() = %d after abort, want 3", got)
	}
	st := s.ReshardStats()
	if st.State != "aborted" || st.Aborted != 1 {
		t.Fatalf("stats after abort: %+v", st)
	}
	if e := s.Epoch(); e != 0 {
		t.Fatalf("epoch advanced on abort: %d", e)
	}
	// The store still serves and writes at the old shape.
	for i := 0; i < n; i += 13 {
		key := fmt.Sprintf("key-%05d", i)
		if v, err := s.Get([]byte(key)); err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) after abort = %q %v", key, v, err)
		}
	}
	if err := s.Put([]byte("after-abort"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A later attempt succeeds from the rolled-back state.
	if err := s.Reshard(context.Background(), 4); err != nil {
		t.Fatalf("reshard after abort: %v", err)
	}
	if got := s.Workers(); got != 4 {
		t.Fatalf("Workers() = %d", got)
	}
}

func TestReshardUnsupportedAndNoop(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 3) // hash partitioner: not elastic
	defer s.Close()
	if err := s.Reshard(context.Background(), 4); !errors.Is(err, ErrReshardUnsupported) {
		t.Fatalf("hash store reshard err = %v", err)
	}
	fs2 := vfs.NewMem()
	e := openElastic(t, fs2, "np", 3)
	defer e.Close()
	if err := e.Reshard(context.Background(), 3); err != nil {
		t.Fatalf("same-N reshard = %v, want nil no-op", err)
	}
	if err := e.Reshard(context.Background(), 0); err == nil {
		t.Fatal("reshard to zero workers succeeded")
	}
}

// TestMigrateMatchesReshard is the regression guard for the shared
// keyspace.MovedRanges plan: an offline Migrate between two fixed
// consistent rings and an online Reshard across the same transition must
// land byte-identical per-worker contents.
func TestMigrateMatchesReshard(t *testing.T) {
	fs := vfs.NewMem()
	const n = 900

	online := openElastic(t, fs, "on", 4)
	defer online.Close()
	openFixed := func(root string, workers int) *Store {
		opts := DefaultOptions(lsmFactory(fs, root))
		opts.Workers = workers
		opts.Partitioner = keyspace.NewConsistent(workers, 64)
		opts.TxnFS = fs
		opts.TxnDir = root + "/txn"
		s, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	offSrc := openFixed("offsrc", 4)
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		v := []byte(fmt.Sprintf("v%d", i))
		if err := online.Put(k, v); err != nil {
			t.Fatal(err)
		}
		if err := offSrc.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	offDst := openFixed("offdst", 5)
	defer offDst.Close()
	if _, err := Migrate(offSrc, offDst, 128); err != nil {
		t.Fatal(err)
	}
	offSrc.Close()
	if err := online.Reshard(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got := engineDump(t, online, i)
		want := engineDump(t, offDst, i)
		if len(got) != len(want) {
			t.Fatalf("worker %d: reshard holds %d pairs, migrate %d", i, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("worker %d key %q: reshard %q, migrate %q", i, k, got[k], v)
			}
		}
	}
}

func TestReshardConcurrentTxns(t *testing.T) {
	// Cross-partition transactions running through the cutover: every
	// committed batch must be fully visible after the flip (prepared
	// transactions drain inside the pause budget, retrying as needed).
	fs := vfs.NewMem()
	s := openElastic(t, fs, "tx", 3)
	defer s.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var txnErr atomic.Value
	var committed atomic.Int64
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var b kv.Batch
				for j := 0; j < 4; j++ {
					b.Put([]byte(fmt.Sprintf("txn-%d-%d-%d", g, i, j)), []byte("v"))
				}
				if err := s.Write(&b); err != nil {
					txnErr.Store(err)
					return
				}
				committed.Add(1)
			}
		}(g)
	}
	if err := s.Reshard(context.Background(), 4); err != nil {
		t.Fatalf("Reshard under txn load: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := txnErr.Load(); err != nil {
		t.Fatalf("transaction failed during reshard: %v", err)
	}
	if committed.Load() == 0 {
		t.Fatal("no transactions committed during the reshard window")
	}
	// Spot-check a sample of committed batches: all four legs visible.
	total := committed.Load()
	for g := 0; g < 2; g++ {
		for i := int64(0); i < total/4; i += 3 {
			for j := 0; j < 4; j++ {
				key := fmt.Sprintf("txn-%d-%d-%d", g, i, j)
				if _, err := s.Get([]byte(key)); err != nil {
					t.Fatalf("committed txn leg %s missing after reshard: %v", key, err)
				}
			}
		}
	}
}
