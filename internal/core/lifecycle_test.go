package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2kvs/internal/kv"
)

// stubEngine is an in-memory engine with op counters and a blockable
// write path, used to prove lifecycle properties ("the engine was never
// touched", "a wedged engine cannot hang Close") deterministically.
type stubEngine struct {
	mu   sync.Mutex
	data map[string]string

	gets atomic.Int64
	puts atomic.Int64

	// entered counts write calls that began (possibly still blocked on
	// gate) — how tests detect that the worker is wedged in the engine.
	entered atomic.Int64

	// gate, when non-nil, blocks every Put/Delete until closed —
	// simulating an engine wedged on a stalled device.
	gate chan struct{}
}

func newStubEngine(gate chan struct{}) *stubEngine {
	return &stubEngine{data: make(map[string]string), gate: gate}
}

func (e *stubEngine) Put(key, value []byte) error {
	e.entered.Add(1)
	if e.gate != nil {
		<-e.gate
	}
	e.puts.Add(1)
	e.mu.Lock()
	e.data[string(key)] = string(value)
	e.mu.Unlock()
	return nil
}

func (e *stubEngine) Get(key []byte) ([]byte, error) {
	e.gets.Add(1)
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.data[string(key)]
	if !ok {
		return nil, kv.ErrNotFound
	}
	return []byte(v), nil
}

func (e *stubEngine) Delete(key []byte) error {
	e.entered.Add(1)
	if e.gate != nil {
		<-e.gate
	}
	e.puts.Add(1)
	e.mu.Lock()
	delete(e.data, string(key))
	e.mu.Unlock()
	return nil
}

func (e *stubEngine) NewIterator() (kv.Iterator, error) {
	e.mu.Lock()
	keys := make([]string, 0, len(e.data))
	for k := range e.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snap := make(map[string]string, len(e.data))
	for k, v := range e.data {
		snap[k] = v
	}
	e.mu.Unlock()
	return &stubIter{keys: keys, data: snap, pos: -1}, nil
}

func (e *stubEngine) Flush() error { return nil }
func (e *stubEngine) Close() error { return nil }

type stubIter struct {
	keys []string
	data map[string]string
	pos  int
}

func (it *stubIter) Valid() bool { return it.pos >= 0 && it.pos < len(it.keys) }
func (it *stubIter) SeekToFirst() {
	it.pos = 0
}
func (it *stubIter) Seek(target []byte) {
	it.pos = sort.SearchStrings(it.keys, string(target))
}
func (it *stubIter) Next()         { it.pos++ }
func (it *stubIter) Key() []byte   { return []byte(it.keys[it.pos]) }
func (it *stubIter) Value() []byte { return []byte(it.data[it.keys[it.pos]]) }
func (it *stubIter) Error() error  { return nil }
func (it *stubIter) Close() error  { return nil }

// firstByteMod partitions on the key's first byte, so tests can aim
// requests at a specific shard deterministically.
type firstByteMod struct{ n int }

func (p firstByteMod) Pick(key []byte) int {
	if len(key) == 0 {
		return 0
	}
	return int(key[0]-'0') % p.n
}
func (p firstByteMod) N() int { return p.n }

// openStubStore builds a store over stub engines. gates[i], when non-nil,
// wedges shard i's writes until closed.
func openStubStore(t *testing.T, workers int, gates map[int]chan struct{}, tune func(*Options)) (*Store, []*stubEngine) {
	t.Helper()
	engines := make([]*stubEngine, workers)
	opts := DefaultOptions(func(id int, _ func(uint64) bool) (kv.Engine, error) {
		engines[id] = newStubEngine(gates[id])
		return engines[id], nil
	})
	opts.Workers = workers
	opts.Partitioner = firstByteMod{n: workers}
	if tune != nil {
		tune(&opts)
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, engines
}

// shardKey returns the i-th key that firstByteMod routes to the given
// shard.
func shardKey(shard, i int) []byte {
	return []byte(fmt.Sprintf("%d-key-%04d", shard, i))
}

// TestAdmitRejectHotShard is the overload acceptance test: with
// AdmitReject and a flood aimed at one wedged hot shard, requests to the
// other shards keep completing with bounded queue wait, and hot-shard
// overflow returns kv.ErrOverloaded without ever blocking the caller.
func TestAdmitRejectHotShard(t *testing.T) {
	const workers = 3
	gate := make(chan struct{})
	s, engines := openStubStore(t, workers, map[int]chan struct{}{0: gate}, func(o *Options) {
		o.QueueDepth = 8
		o.Admission = AdmitReject
		o.DrainTimeout = 2 * time.Second
	})
	defer func() {
		s.Close()
	}()

	// Wedge shard 0's worker inside the engine, then flood: the queue
	// fills and admission must start bouncing with ErrOverloaded.
	var rejected int
	var acks sync.WaitGroup
	acks.Add(1)
	if err := s.PutAsync(shardKey(0, 999), []byte("v"), func(error) { acks.Done() }); err != nil {
		t.Fatal(err)
	}
	waitWedged(t, engines[0], 1)
	for i := 0; i < 64; i++ {
		acks.Add(1)
		err := s.PutAsync(shardKey(0, i), []byte("v"), func(error) { acks.Done() })
		if err != nil {
			acks.Done()
			if !errors.Is(err, kv.ErrOverloaded) {
				t.Fatalf("flood put %d: err = %v, want ErrOverloaded", i, err)
			}
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("no request was rejected although the hot shard is wedged")
	}

	// Other shards stay fully available, with bounded per-op time.
	for shard := 1; shard < workers; shard++ {
		for i := 0; i < 50; i++ {
			start := time.Now()
			if err := s.Put(shardKey(shard, i), []byte("v")); err != nil {
				t.Fatalf("healthy shard %d put: %v", shard, err)
			}
			if d := time.Since(start); d > 5*time.Second {
				t.Fatalf("healthy shard %d put took %v", shard, d)
			}
		}
	}
	if v, err := s.Get(shardKey(1, 7)); err != nil || string(v) != "v" {
		t.Fatalf("healthy shard get = %q, %v", v, err)
	}

	st := s.Stats()
	if st[0].Rejected == 0 {
		t.Fatal("shard 0 Rejected counter is zero")
	}
	if st[0].QueueHighWater != 8 {
		t.Fatalf("shard 0 queue high-water = %d, want 8", st[0].QueueHighWater)
	}
	if engines[1].puts.Load() == 0 || engines[2].puts.Load() == 0 {
		t.Fatal("healthy shards executed nothing")
	}

	// Unwedge and let the flood drain so Close is clean.
	close(gate)
	acks.Wait()
}

// TestExpiredRequestsNeverReachEngine is the deadline acceptance test:
// requests whose context expires while queued are shed at dequeue —
// completed with kv.ErrDeadlineExceeded, engine op counters unchanged —
// and an already-expired context fails at admission without enqueueing.
func TestExpiredRequestsNeverReachEngine(t *testing.T) {
	gate := make(chan struct{})
	s, engines := openStubStore(t, 1, map[int]chan struct{}{0: gate}, func(o *Options) {
		o.QueueDepth = 64
	})
	defer s.Close()

	// Wedge the worker with one long-running write (no ctx).
	var wedge sync.WaitGroup
	wedge.Add(1)
	if err := s.PutAsync(shardKey(0, 0), []byte("v"), func(error) { wedge.Done() }); err != nil {
		t.Fatal(err)
	}
	waitWedged(t, engines[0], 1)

	// Already-expired context: fails at admission, never enters the queue.
	expiredCtx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.PutCtx(expiredCtx, shardKey(0, 1), []byte("x")); !errors.Is(err, kv.ErrDeadlineExceeded) {
		t.Fatalf("expired-ctx put err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(ctxError(context.Canceled), context.Canceled) {
		t.Fatal("ctxError must preserve the context cause")
	}

	// Requests that expire while queued behind the wedge: the sync caller
	// unblocks at its deadline, and the worker sheds the orphans later.
	const n = 10
	var callerErrs [n]error
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			_, callerErrs[i] = s.GetCtx(ctx, shardKey(0, 100+i))
		}(i)
	}
	wg.Wait()
	for i, err := range callerErrs {
		if !errors.Is(err, kv.ErrDeadlineExceeded) {
			t.Fatalf("queued get %d err = %v, want ErrDeadlineExceeded", i, err)
		}
	}

	// Unwedge; the worker must shed every expired read without running it.
	close(gate)
	wedge.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats()[0].Shed < n {
		if time.Now().After(deadline) {
			t.Fatalf("worker shed %d requests, want %d", s.Stats()[0].Shed, n)
		}
		time.Sleep(time.Millisecond)
	}
	if got := engines[0].gets.Load(); got != 0 {
		t.Fatalf("engine executed %d gets; expired requests must never reach it", got)
	}
	if puts := engines[0].puts.Load(); puts != 1 {
		t.Fatalf("engine executed %d puts, want only the wedge put", puts)
	}
	st := s.Stats()[0]
	if st.Expired < n {
		t.Fatalf("Expired counter = %d, want >= %d", st.Expired, n)
	}
}

// TestAdmitWaitBoundedByDeadline: under AdmitWait a full queue holds the
// submitter only as long as its deadline budget; without a deadline it
// rejects immediately.
func TestAdmitWaitBoundedByDeadline(t *testing.T) {
	gate := make(chan struct{})
	s, engines := openStubStore(t, 1, map[int]chan struct{}{0: gate}, func(o *Options) {
		o.QueueDepth = 1
		o.Admission = AdmitWait
		o.DrainTimeout = 2 * time.Second
	})
	defer func() {
		close(gate)
		s.Close()
	}()

	// Fill: one wedged in the engine, one in the queue. Both carry a
	// deadline (AdmitWait without one is a fast reject).
	bg, cancelBg := context.WithTimeout(context.Background(), time.Hour)
	defer cancelBg()
	if err := s.PutAsyncCtx(bg, shardKey(0, 0), []byte("v"), func(error) {}); err != nil {
		t.Fatal(err)
	}
	waitWedged(t, engines[0], 1)

	if err := s.PutAsyncCtx(bg, shardKey(0, 1), []byte("v"), func(error) {}); err != nil {
		t.Fatal(err)
	}

	// No deadline: bounded wait has no budget, reject.
	if err := s.Put(shardKey(0, 2), []byte("v")); !errors.Is(err, kv.ErrOverloaded) {
		t.Fatalf("deadline-less put under AdmitWait = %v, want ErrOverloaded", err)
	}

	// With a deadline: waits, then fails at the deadline, not forever.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.PutCtx(ctx, shardKey(0, 3), []byte("v"))
	if !errors.Is(err, kv.ErrDeadlineExceeded) {
		t.Fatalf("deadline put err = %v, want ErrDeadlineExceeded", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond || d > 5*time.Second {
		t.Fatalf("bounded wait lasted %v", d)
	}
}

// TestCloseDrainDeadline is the graceful-drain acceptance test: Close
// with a drain deadline returns even though a wedged engine never lets
// the worker finish, and every still-queued request completes with
// kv.ErrClosed.
func TestCloseDrainDeadline(t *testing.T) {
	gate := make(chan struct{})
	s, engines := openStubStore(t, 2, map[int]chan struct{}{0: gate}, func(o *Options) {
		o.QueueDepth = 32
		o.DrainTimeout = 100 * time.Millisecond
	})
	defer close(gate) // release the abandoned worker at test end

	// Wedge shard 0 and queue requests behind the wedge.
	if err := s.PutAsync(shardKey(0, 0), []byte("v"), func(error) {}); err != nil {
		t.Fatal(err)
	}
	waitWedged(t, engines[0], 1)
	const queued = 8
	errs := make(chan error, queued)
	for i := 1; i <= queued; i++ {
		if err := s.PutAsync(shardKey(0, i), []byte("v"), func(err error) { errs <- err }); err != nil {
			t.Fatal(err)
		}
	}
	// Shard 1 is healthy; it must close cleanly.
	if err := s.Put(shardKey(1, 0), []byte("v")); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	closeErr := s.Close()
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Close took %v despite drain deadline", d)
	}
	if !errors.Is(closeErr, kv.ErrClosed) {
		t.Fatalf("Close err = %v, want wedge report wrapping ErrClosed", closeErr)
	}
	for i := 0; i < queued; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, kv.ErrClosed) {
				t.Fatalf("queued request err = %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued request never completed after drain deadline")
		}
	}
	if st := s.Stats()[0]; st.Shed < queued {
		t.Fatalf("drain shed %d, want >= %d", st.Shed, queued)
	}
}

// TestCtxAPIHappyPath: the context variants behave exactly like their
// context-free counterparts when the context never expires.
func TestCtxAPIHappyPath(t *testing.T) {
	s, _ := openStubStore(t, 2, nil, nil)
	defer s.Close()
	ctx := context.Background()

	if err := s.PutCtx(ctx, []byte("0-a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCtx(ctx, []byte("1-b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.GetCtx(ctx, []byte("0-a")); err != nil || string(v) != "1" {
		t.Fatalf("GetCtx = %q, %v", v, err)
	}
	if _, err := s.GetCtx(ctx, []byte("0-missing")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("GetCtx miss = %v", err)
	}
	if err := s.DeleteCtx(ctx, []byte("1-b")); err != nil {
		t.Fatal(err)
	}
	vals, err := s.MultiGetCtx(ctx, [][]byte{[]byte("0-a"), []byte("1-b")})
	if err != nil || string(vals[0]) != "1" || vals[1] != nil {
		t.Fatalf("MultiGetCtx = %q, %v", vals, err)
	}
	pairs, err := s.RangeCtx(ctx, []byte("0-a"), []byte("0-a"))
	if err != nil || len(pairs) != 1 || !bytes.Equal(pairs[0].Value, []byte("1")) {
		t.Fatalf("RangeCtx = %v, %v", pairs, err)
	}
	if pairs, err = s.ScanCtx(ctx, nil, 10); err != nil || len(pairs) != 1 {
		t.Fatalf("ScanCtx = %v, %v", pairs, err)
	}
}

// TestCtxAPIExpired: every context variant fails fast with
// kv.ErrDeadlineExceeded on an already-dead context.
func TestCtxAPIExpired(t *testing.T) {
	s, engines := openStubStore(t, 2, nil, nil)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if err := s.PutCtx(ctx, []byte("0-a"), []byte("1")); !errors.Is(err, kv.ErrDeadlineExceeded) {
		t.Fatalf("PutCtx = %v", err)
	}
	if _, err := s.GetCtx(ctx, []byte("0-a")); !errors.Is(err, kv.ErrDeadlineExceeded) {
		t.Fatalf("GetCtx = %v", err)
	}
	if err := s.DeleteCtx(ctx, []byte("0-a")); !errors.Is(err, kv.ErrDeadlineExceeded) {
		t.Fatalf("DeleteCtx = %v", err)
	}
	if _, err := s.RangeCtx(ctx, nil, nil); !errors.Is(err, kv.ErrDeadlineExceeded) {
		t.Fatalf("RangeCtx = %v", err)
	}
	if _, err := s.ScanCtx(ctx, nil, 5); !errors.Is(err, kv.ErrDeadlineExceeded) {
		t.Fatalf("ScanCtx = %v", err)
	}
	if _, err := s.MultiGetCtx(ctx, [][]byte{[]byte("0-a")}); !errors.Is(err, kv.ErrDeadlineExceeded) {
		t.Fatalf("MultiGetCtx = %v", err)
	}
	if got := engines[0].gets.Load() + engines[0].puts.Load() + engines[1].gets.Load() + engines[1].puts.Load(); got != 0 {
		t.Fatalf("engines executed %d ops under a dead context", got)
	}
}

// TestWriteCtxSharedDeadline: all legs of a cross-partition transaction
// share one context — an expired context stops the transaction before
// begin, and a mid-flight deadline bounds the wait.
func TestWriteCtxSharedDeadline(t *testing.T) {
	gate := make(chan struct{})
	s, _ := openStubStore(t, 2, map[int]chan struct{}{0: gate}, func(o *Options) {
		o.QueueDepth = 16
		o.DrainTimeout = time.Second
	})
	// The stub store has no TxnFS, so cross-partition batches without a
	// transaction log must fail regardless of context.
	var b kv.Batch
	b.Put([]byte("0-a"), []byte("1"))
	b.Put([]byte("1-b"), []byte("2"))
	if err := s.WriteCtx(context.Background(), &b); err == nil {
		t.Fatal("cross-partition write without TxnFS must fail")
	}
	// Single-partition batch under a dead context never runs.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	var one kv.Batch
	one.Put([]byte("1-a"), []byte("1"))
	if err := s.WriteCtx(dead, &one); !errors.Is(err, kv.ErrDeadlineExceeded) {
		t.Fatalf("single-partition WriteCtx = %v", err)
	}
	// Single-partition batch aimed at the wedged shard: deadline bounds
	// the sync wait.
	ctx, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	var wedgeBatch kv.Batch
	wedgeBatch.Put([]byte("0-z"), []byte("1"))
	if err := s.WriteCtx(ctx, &wedgeBatch); !errors.Is(err, kv.ErrDeadlineExceeded) {
		t.Fatalf("wedged-shard WriteCtx = %v", err)
	}
	close(gate)
	s.Close()
}

// waitWedged blocks until the engine has begun (and is stuck inside) at
// least n write calls.
func waitWedged(t *testing.T, e *stubEngine, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for e.entered.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("engine entered %d writes, want %d", e.entered.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}
