package core

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	"p2kvs/internal/vfs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden schema files")

// statsSchema flattens a struct type into "path type jsontag" lines, one
// per leaf field, recursing through nested structs and slices. The result
// is the externally visible stats schema: INFO, /metrics and any scraper
// built on StatsJSON depend on these names.
func statsSchema(t reflect.Type, prefix string, out *[]string) {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		tag := strings.Split(f.Tag.Get("json"), ",")[0]
		if tag == "" {
			tag = f.Name
		}
		path := prefix + tag
		ft := f.Type
		if ft.Kind() == reflect.Slice {
			ft = ft.Elem()
			path += "[]"
		}
		if ft.Kind() == reflect.Struct {
			statsSchema(ft, path+".", out)
			continue
		}
		*out = append(*out, fmt.Sprintf("%s %s", path, ft.Kind()))
	}
}

// TestStatsSchemaGolden locks the JSON stats schema against the checked-in
// golden file. Renaming, retyping or dropping a field fails this test —
// external dashboards parse these names, so a change must be deliberate:
//
//	go test ./internal/core -run TestStatsSchemaGolden -update
func TestStatsSchemaGolden(t *testing.T) {
	var lines []string
	statsSchema(reflect.TypeOf(StatsSnapshot{}), "", &lines)
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	const golden = "testdata/stats_schema.golden"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("stats JSON schema changed.\n--- golden\n+++ current\n%s\n"+
			"If the change is intentional, rerun with -update and flag it in the PR: "+
			"INFO and /metrics consumers parse these field names.", schemaDiff(string(want), got))
	}
}

// schemaDiff renders a minimal line diff (goldens are small).
func schemaDiff(want, got string) string {
	wl := strings.Split(strings.TrimRight(want, "\n"), "\n")
	gl := strings.Split(strings.TrimRight(got, "\n"), "\n")
	ws, gs := map[string]bool{}, map[string]bool{}
	for _, l := range wl {
		ws[l] = true
	}
	for _, l := range gl {
		gs[l] = true
	}
	var b strings.Builder
	for _, l := range wl {
		if !gs[l] {
			fmt.Fprintf(&b, "-%s\n", l)
		}
	}
	for _, l := range gl {
		if !ws[l] {
			fmt.Fprintf(&b, "+%s\n", l)
		}
	}
	return b.String()
}

// TestStatsSnapshotPopulatesSchema sanity-checks that a live snapshot
// round-trips through the schema: every per-worker entry carries a valid
// ID and health string, and the aggregate sums match the per-worker rows
// for the additive counters.
func TestStatsSnapshotPopulatesSchema(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 3)
	defer s.Close()
	for i := 0; i < 50; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.StatsSnapshot()
	if snap.Workers != 3 || len(snap.PerWorker) != 3 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	var ops int64
	for i, w := range snap.PerWorker {
		if w.ID != i {
			t.Fatalf("per-worker ID %d at index %d", w.ID, i)
		}
		if w.Health == "" {
			t.Fatalf("worker %d has empty health", i)
		}
		ops += w.Ops
	}
	if snap.Aggregate.Ops != ops || ops < 50 {
		t.Fatalf("aggregate ops %d != per-worker sum %d (>= 50)", snap.Aggregate.Ops, ops)
	}
}
