package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"p2kvs/internal/kv"
)

func TestStatsJSONStableSchema(t *testing.T) {
	opts := DefaultOptions(func(id int, _ func(uint64) bool) (kv.Engine, error) {
		return newStubEngine(nil), nil
	})
	opts.Workers = 3
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var b kv.Batch
	for i := 0; i < 10; i++ {
		b.Put([]byte{byte('a' + i)}, []byte("v"))
	}
	// Single-shard batches only (no TxnFS configured): write per key.
	for _, op := range b.Ops() {
		if err := s.Put(op.Key, op.Value); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get([]byte("a")); err != nil {
		t.Fatal(err)
	}

	raw, err := s.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("StatsJSON not round-trippable: %v\n%s", err, raw)
	}
	if snap.Workers != 3 || len(snap.PerWorker) != 3 {
		t.Fatalf("workers = %d / %d per-worker entries, want 3", snap.Workers, len(snap.PerWorker))
	}
	if snap.Aggregate.ID != -1 {
		t.Fatalf("aggregate ID = %d, want -1", snap.Aggregate.ID)
	}
	if snap.Aggregate.Ops != 11 {
		t.Fatalf("aggregate ops = %d, want 11", snap.Aggregate.Ops)
	}
	var perWorkerOps int64
	for _, w := range snap.PerWorker {
		perWorkerOps += w.Ops
	}
	if perWorkerOps != snap.Aggregate.Ops {
		t.Fatalf("per-worker ops %d != aggregate %d", perWorkerOps, snap.Aggregate.Ops)
	}
	if snap.Aggregate.Health != "healthy" {
		t.Fatalf("aggregate health = %q, want healthy", snap.Aggregate.Health)
	}

	// Schema stability: the documented field names must appear verbatim.
	for _, key := range []string{`"aggregate"`, `"per_worker"`, `"batch_write_ops"`, `"multiget_ops"`,
		`"queue_wait_us"`, `"rejected"`, `"expired"`, `"shed"`, `"queue_high_water"`, `"health"`} {
		if !bytes.Contains(raw, []byte(key)) {
			t.Fatalf("StatsJSON missing field %s:\n%s", key, raw)
		}
	}
}
