package core

import (
	"fmt"

	"p2kvs/internal/kv"
	"p2kvs/internal/repl"
)

// Replica-side entry point of GSN log-shipping replication: the server's
// replica manager decodes stream frames and applies each record here,
// through the normal worker write path. Applying through the engine (not
// around it) is what keeps every downstream subsystem valid on a replica:
// the engine journals the write, so crash recovery works; lastGSN
// ratchets to the primary's GSN, so checkpoints taken on the replica
// record real cursors; and scrub sees ordinary engine files.

// ApplyRepl applies one replicated record — worker's write batch under
// the GSN the primary's worker assigned — and waits for the engine to
// acknowledge it. It bypasses admission control the same way checkpoint
// barriers do (replicated writes are never load-shed or rejected; a full
// queue simply backpressures the stream), and it never tags the engine's
// WAL record with the GSN — stream GSNs live in the replication layer,
// engine-level GSN tagging stays reserved for transaction legs.
//
// The store's global GSN counter ratchets up to the record's GSN first,
// so local allocations (transaction legs, checkpoint watermarks, a later
// promotion to primary) always continue the sequence.
func (s *Store) ApplyRepl(worker int, gsn uint64, ops []kv.BatchOp) error {
	workers := s.ws()
	if worker < 0 || worker >= len(workers) {
		return fmt.Errorf("core: ApplyRepl: worker %d out of range [0,%d)", worker, len(workers))
	}
	if len(ops) == 0 {
		return nil
	}
	if s.closed.Load() {
		return kv.ErrClosed
	}
	for {
		cur := s.gsn.Load()
		if gsn <= cur || s.gsn.CompareAndSwap(cur, gsn) {
			break
		}
	}
	w := workers[worker]
	wops := make([]wop, len(ops))
	for i, op := range ops {
		wops[i] = wop{del: op.Kind == kv.OpDelete, key: op.Key, value: op.Value}
	}
	r := &request{
		typ:       reqWrite,
		batch:     batchRef{ops: wops},
		streamGSN: gsn,
		noMerge:   true,
		done:      make(chan struct{}),
	}
	if err := w.q.pushWait(nil, r); err != nil {
		return err
	}
	<-r.done
	return r.err
}

// ReplLog exposes the store's replication backlog (nil when replication
// is disabled). The server's PSYNC handler streams from it.
func (s *Store) ReplLog() *repl.Log { return s.opts.ReplLog }

// GSN reports the store's current Global Sequence Number watermark.
func (s *Store) GSN() uint64 { return s.gsn.Load() }

// ReplLastGSN reports each worker's replication stream watermark — the
// per-worker cursors a replica of this store would resume from. Nil when
// replication is disabled.
func (s *Store) ReplLastGSN() []uint64 {
	if s.opts.ReplLog == nil {
		return nil
	}
	workers := s.ws()
	out := make([]uint64, len(workers))
	for i, w := range workers {
		out[i] = w.lastGSN.Load()
	}
	return out
}
