package core

import (
	"encoding/json"

	"p2kvs/internal/kv"
	"p2kvs/internal/reshard"
)

// WorkerStatsJSON is the stable JSON projection of WorkerStats. Durations
// become microseconds and the engine health report is flattened to plain
// strings, so every consumer of store statistics — the network server's
// INFO and /metrics, dbbench, external scrapers — sees one schema instead
// of re-inventing ad-hoc formatting.
type WorkerStatsJSON struct {
	ID             int    `json:"id"`
	Ops            int64  `json:"ops"`
	Batches        int64  `json:"batches"`
	BatchedOps     int64  `json:"batched_ops"`
	BatchWriteOps  int64  `json:"batch_write_ops"`
	MultiGetOps    int64  `json:"multiget_ops"`
	QueueWaitUs    int64  `json:"queue_wait_us"`
	Rejected       int64  `json:"rejected"`
	Expired        int64  `json:"expired"`
	Shed           int64  `json:"shed"`
	QueueHighWater int    `json:"queue_high_water"`
	Health         string `json:"health"`
	HealthErr      string `json:"health_err,omitempty"`
	FlushRetries   int64  `json:"flush_retries"`
	CompactRetries int64  `json:"compact_retries"`
	InjectedFaults int64  `json:"injected_faults"`
	// Disk-full robustness: whether the engine is currently degraded by
	// space exhaustion, how many times it entered that state, and how many
	// times the space watchdog auto-resumed it (in the aggregate, DiskFull
	// ORs across workers and the counters sum).
	DiskFull       bool  `json:"disk_full"`
	DiskFullEvents int64 `json:"disk_full_events"`
	AutoResumes    int64 `json:"auto_resumes"`
	// At-rest integrity: checksum-mismatch detections, files currently
	// under quarantine (counts sum in the aggregate; LastCorruption is the
	// most recent worker's report), and files restored from backup.
	CorruptionEvents int64  `json:"corruption_events"`
	QuarantinedFiles int64  `json:"quarantined_files"`
	RepairedFiles    int64  `json:"repaired_files"`
	LastCorruption   string `json:"last_corruption,omitempty"`
	// Compaction-scheduler counters: stall (hard-block) vs slowdown (soft
	// delay) time are reported separately; ConcurrentCompactionsHW is the
	// high-water mark of compactions running at once (max, not sum, in the
	// aggregate).
	CompactionStallUs       int64 `json:"compaction_stall_us"`
	CompactionSlowdownUs    int64 `json:"compaction_slowdown_us"`
	CompactionSlowdowns     int64 `json:"compaction_slowdowns"`
	Compactions             int64 `json:"compactions"`
	Subcompactions          int64 `json:"subcompactions"`
	ConcurrentCompactionsHW int64 `json:"concurrent_compactions_hw"`
	// Checkpoint counters: how often this worker's engine was captured and
	// how the backup image was materialized (hard links and reuse are the
	// incremental fast paths; copied bytes are the real IO cost).
	Checkpoints           int64 `json:"checkpoints"`
	CheckpointFilesLinked int64 `json:"checkpoint_files_linked"`
	CheckpointFilesCopied int64 `json:"checkpoint_files_copied"`
	CheckpointFilesReused int64 `json:"checkpoint_files_reused"`
	CheckpointBytesCopied int64 `json:"checkpoint_bytes_copied"`
	// Replication stream watermark: the GSN of this worker's most
	// recently applied write batch (its replica cursor). Zero when
	// replication is disabled; the aggregate takes the max.
	ReplLastGSN uint64 `json:"repl_last_gsn"`
	// Hot-cache invalidation watermark bumps performed by this worker on
	// applied writes (counters sum in the aggregate).
	CacheInvalidations int64 `json:"cache_invalidations"`
}

// StatsSnapshot is the JSON view of the whole store: an aggregate over all
// workers (ID -1, health = worst worker state, queue high-water = max)
// plus the per-worker breakdown.
type StatsSnapshot struct {
	Workers   int               `json:"workers"`
	Aggregate WorkerStatsJSON   `json:"aggregate"`
	PerWorker []WorkerStatsJSON `json:"per_worker"`
	// Store-level checkpoint state: committed checkpoints, the last
	// barrier's worker-pause duration, and the last commit time (unix
	// seconds, 0 before the first checkpoint).
	Checkpoints         int64 `json:"store_checkpoints"`
	CheckpointBarrierNs int64 `json:"checkpoint_barrier_ns"`
	LastCheckpointUnix  int64 `json:"last_checkpoint_unix"`
	// Replication backlog state (all zero/empty when Options.ReplLog is
	// nil): the store's GSN watermark, the backlog's retained size and
	// lifetime append/trim counters, and the number of attached replica
	// pins currently deferring tail truncation.
	ReplGSN            uint64 `json:"repl_gsn"`
	ReplBacklogBytes   int64  `json:"repl_backlog_bytes"`
	ReplBacklogRecords int64  `json:"repl_backlog_records"`
	ReplAppended       int64  `json:"repl_appended"`
	ReplTrimmed        int64  `json:"repl_trimmed"`
	ReplPins           int    `json:"repl_pins"`
	// Hot-key read cache state (all zero when Options.HotCacheBytes is
	// zero): hits served without touching a worker (positive and cached
	// not-found separately), misses that fell through to the queues,
	// successful fills, clock evictions, writer watermark bumps, and the
	// resident footprint.
	CacheEnabled       bool  `json:"cache_enabled"`
	CacheHits          int64 `json:"cache_hits"`
	CacheNegHits       int64 `json:"cache_neg_hits"`
	CacheMisses        int64 `json:"cache_misses"`
	CacheFills         int64 `json:"cache_fills"`
	CacheEvictions     int64 `json:"cache_evictions"`
	CacheInvalidations int64 `json:"cache_invalidations"`
	CacheBytes         int64 `json:"cache_bytes"`
	CacheEntries       int64 `json:"cache_entries"`
	// Reshard carries the online-resharding subsystem's counters (zero
	// state "idle" when no reshard has run).
	Reshard reshard.Stats `json:"reshard"`
}

func workerStatsJSON(ws WorkerStats) WorkerStatsJSON {
	out := WorkerStatsJSON{
		ID:             ws.ID,
		Ops:            ws.Ops,
		Batches:        ws.Batches,
		BatchedOps:     ws.BatchedOps,
		BatchWriteOps:  ws.BatchWriteOps,
		MultiGetOps:    ws.MultiGetOps,
		QueueWaitUs:    ws.QueueWait.Microseconds(),
		Rejected:       ws.Rejected,
		Expired:        ws.Expired,
		Shed:           ws.Shed,
		QueueHighWater: ws.QueueHighWater,
		Health:         ws.Health.State.String(),
		FlushRetries:   ws.Health.FlushRetries,
		CompactRetries: ws.Health.CompactRetries,
		InjectedFaults: ws.Health.InjectedFaults,
		DiskFull:       ws.Health.DiskFull,
		DiskFullEvents: ws.Health.DiskFullEvents,
		AutoResumes:    ws.Health.AutoResumes,

		CorruptionEvents: ws.Health.CorruptionEvents,
		QuarantinedFiles: ws.Health.QuarantinedFiles,
		RepairedFiles:    ws.Health.RepairedFiles,

		CompactionStallUs:       ws.Compaction.StallTime.Microseconds(),
		CompactionSlowdownUs:    ws.Compaction.SlowdownTime.Microseconds(),
		CompactionSlowdowns:     ws.Compaction.Slowdowns,
		Compactions:             ws.Compaction.Compactions,
		Subcompactions:          ws.Compaction.Subcompactions,
		ConcurrentCompactionsHW: ws.Compaction.MaxConcurrent,

		Checkpoints:           ws.Checkpoint.Checkpoints,
		CheckpointFilesLinked: ws.Checkpoint.FilesLinked,
		CheckpointFilesCopied: ws.Checkpoint.FilesCopied,
		CheckpointFilesReused: ws.Checkpoint.FilesReused,
		CheckpointBytesCopied: ws.Checkpoint.BytesCopied,

		CacheInvalidations: ws.CacheInvalidations,
	}
	if ws.Health.Err != nil {
		out.HealthErr = ws.Health.Err.Error()
	}
	if ws.Health.LastCorruption != nil {
		out.LastCorruption = ws.Health.LastCorruption.Error()
	}
	return out
}

// StatsSnapshot captures Stats() in the stable JSON schema.
func (s *Store) StatsSnapshot() StatsSnapshot {
	stats := s.Stats()
	snap := StatsSnapshot{
		Workers:   len(stats),
		PerWorker: make([]WorkerStatsJSON, 0, len(stats)),
	}
	agg := WorkerStatsJSON{ID: -1, Health: kv.StateHealthy.String()}
	worst := kv.StateHealthy
	for _, ws := range stats {
		j := workerStatsJSON(ws)
		snap.PerWorker = append(snap.PerWorker, j)
		agg.Ops += j.Ops
		agg.Batches += j.Batches
		agg.BatchedOps += j.BatchedOps
		agg.BatchWriteOps += j.BatchWriteOps
		agg.MultiGetOps += j.MultiGetOps
		agg.QueueWaitUs += j.QueueWaitUs
		agg.Rejected += j.Rejected
		agg.Expired += j.Expired
		agg.Shed += j.Shed
		agg.FlushRetries += j.FlushRetries
		agg.CompactRetries += j.CompactRetries
		agg.InjectedFaults += j.InjectedFaults
		agg.DiskFull = agg.DiskFull || j.DiskFull
		agg.DiskFullEvents += j.DiskFullEvents
		agg.AutoResumes += j.AutoResumes
		agg.CorruptionEvents += j.CorruptionEvents
		agg.QuarantinedFiles += j.QuarantinedFiles
		agg.RepairedFiles += j.RepairedFiles
		if j.LastCorruption != "" {
			agg.LastCorruption = j.LastCorruption
		}
		agg.CompactionStallUs += j.CompactionStallUs
		agg.CompactionSlowdownUs += j.CompactionSlowdownUs
		agg.CompactionSlowdowns += j.CompactionSlowdowns
		agg.Compactions += j.Compactions
		agg.Subcompactions += j.Subcompactions
		agg.Checkpoints += j.Checkpoints
		agg.CheckpointFilesLinked += j.CheckpointFilesLinked
		agg.CheckpointFilesCopied += j.CheckpointFilesCopied
		agg.CheckpointFilesReused += j.CheckpointFilesReused
		agg.CheckpointBytesCopied += j.CheckpointBytesCopied
		agg.CacheInvalidations += j.CacheInvalidations
		if j.ConcurrentCompactionsHW > agg.ConcurrentCompactionsHW {
			agg.ConcurrentCompactionsHW = j.ConcurrentCompactionsHW
		}
		if j.QueueHighWater > agg.QueueHighWater {
			agg.QueueHighWater = j.QueueHighWater
		}
		if j.ReplLastGSN > agg.ReplLastGSN {
			agg.ReplLastGSN = j.ReplLastGSN
		}
		if ws.Health.State > worst {
			worst = ws.Health.State
			agg.Health = worst.String()
			if ws.Health.Err != nil {
				agg.HealthErr = ws.Health.Err.Error()
			}
		}
	}
	snap.Aggregate = agg
	snap.Checkpoints = s.ckptCount.Load()
	snap.CheckpointBarrierNs = s.ckptBarrierNs.Load()
	snap.LastCheckpointUnix = s.lastCkptUnix.Load()
	if l := s.opts.ReplLog; l != nil {
		rs := l.Stats()
		snap.ReplGSN = s.gsn.Load()
		snap.ReplBacklogBytes = rs.Bytes
		snap.ReplBacklogRecords = rs.Records
		snap.ReplAppended = rs.Appended
		snap.ReplTrimmed = rs.Trimmed
		snap.ReplPins = rs.Pins
	}
	snap.Reshard = s.tracker.Snapshot()
	if s.cache != nil {
		cs := s.cache.Stats()
		snap.CacheEnabled = true
		snap.CacheHits = cs.Hits
		snap.CacheNegHits = cs.NegHits
		snap.CacheMisses = cs.Misses
		snap.CacheFills = cs.Fills
		snap.CacheEvictions = cs.Evictions
		snap.CacheInvalidations = cs.Invalidations
		snap.CacheBytes = cs.Bytes
		snap.CacheEntries = cs.Entries
	}
	return snap
}

// StatsJSON renders StatsSnapshot as JSON. The encoding is stable (fixed
// field set and order), so it is safe to diff across runs and scrape.
func (s *Store) StatsJSON() ([]byte, error) {
	return json.Marshal(s.StatsSnapshot())
}
