package core

import (
	"fmt"
	"math/rand"
	"testing"

	"p2kvs/internal/keyspace"
	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// TestCrashDurabilityRandomOps is the store-level crash property: with
// per-commit durability, every acknowledged operation must survive a
// power failure, across any random op mix, on every worker.
func TestCrashDurabilityRandomOps(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			fs := vfs.NewMem()
			s := openStore(t, fs, 3)
			r := rand.New(rand.NewSource(int64(trial)))
			model := map[string]string{}
			deleted := map[string]bool{}
			for i := 0; i < 600; i++ {
				k := fmt.Sprintf("key-%03d", r.Intn(120))
				switch r.Intn(10) {
				case 0:
					if err := s.Delete([]byte(k)); err != nil {
						t.Fatal(err)
					}
					delete(model, k)
					deleted[k] = true
				case 1, 2:
					// Small batch (may span partitions — GSN txn).
					var b kv.Batch
					for j := 0; j < 3; j++ {
						bk := fmt.Sprintf("key-%03d", r.Intn(120))
						bv := fmt.Sprintf("b%d-%d", i, j)
						b.Put([]byte(bk), []byte(bv))
						model[bk] = bv
						delete(deleted, bk)
					}
					if err := s.Write(&b); err != nil {
						t.Fatal(err)
					}
				default:
					v := fmt.Sprintf("v-%d", i)
					if err := s.Put([]byte(k), []byte(v)); err != nil {
						t.Fatal(err)
					}
					model[k] = v
					delete(deleted, k)
				}
			}
			fs.Crash()
			s.Close()
			fs.Restart()

			s2 := openStore(t, fs, 3)
			defer s2.Close()
			for k, want := range model {
				v, err := s2.Get([]byte(k))
				if err != nil || string(v) != want {
					t.Fatalf("Get(%s) after crash = %q %v, want %q", k, v, err, want)
				}
			}
			for k := range deleted {
				if _, ok := model[k]; ok {
					continue
				}
				if _, err := s2.Get([]byte(k)); err != kv.ErrNotFound {
					t.Fatalf("deleted key %s resurrected: %v", k, err)
				}
			}
		})
	}
}

// TestWritePreparedCommitSurvives checks the other half of the prepared
// API: a prepared-then-committed transaction survives a crash.
func TestWritePreparedCommitSurvives(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 4)
	var b kv.Batch
	for i := 0; i < 10; i++ {
		b.Put([]byte(fmt.Sprintf("p-%02d", i)), []byte("v"))
	}
	commit, err := s.WritePrepared(&b)
	if err != nil {
		t.Fatal(err)
	}
	if err := commit(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	s.Close()
	fs.Restart()

	s2 := openStore(t, fs, 4)
	defer s2.Close()
	for i := 0; i < 10; i++ {
		if _, err := s2.Get([]byte(fmt.Sprintf("p-%02d", i))); err != nil {
			t.Fatalf("committed prepared txn key %d lost: %v", i, err)
		}
	}
}

// TestMigrateReshard covers the §4.2 future-work path: reshard a store
// from 3 to 5 workers via Migrate with consistent-hash partitioners; all
// data must survive on the new layout.
func TestMigrateReshard(t *testing.T) {
	fs := vfs.NewMem()
	openN := func(root string, workers int) *Store {
		opts := DefaultOptions(lsmFactory(fs, root))
		opts.Workers = workers
		opts.Partitioner = keyspace.NewConsistent(workers, 64)
		opts.TxnFS = fs
		opts.TxnDir = root + "/txn"
		s, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	src := openN("old", 3)
	const n = 800
	for i := 0; i < n; i++ {
		if err := src.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	dst := openN("new", 5)
	moved, err := Migrate(src, dst, 128)
	if err != nil {
		t.Fatal(err)
	}
	if moved != n {
		t.Fatalf("migrated %d pairs, want %d", moved, n)
	}
	src.Close()
	defer dst.Close()
	for i := 0; i < n; i += 7 {
		key := fmt.Sprintf("key-%05d", i)
		v, err := dst.Get([]byte(key))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) on resharded store = %q %v", key, v, err)
		}
	}
	// Every destination worker received data.
	for _, ws := range dst.Stats() {
		if ws.Ops == 0 {
			t.Fatalf("worker %d got nothing during reshard", ws.ID)
		}
	}
}
