package core

import (
	"time"

	"p2kvs/internal/keyspace"
	"p2kvs/internal/kv"
	"p2kvs/internal/metrics"
	"p2kvs/internal/repl"
	"p2kvs/internal/vfs"
)

// EngineFactory opens the KVS instance for one worker. recoverFilter is
// non-nil when the store is recovering from a crash with uncommitted
// cross-instance transactions; factories for engines that support GSN
// tagging (the LSM engine's OpenOptions.RecoverFilter) should pass it
// through, others may ignore it — they simply don't get cross-instance
// atomicity, matching §4.6's capability-dependent behaviour.
type EngineFactory func(workerID int, recoverFilter func(gsn uint64) bool) (kv.Engine, error)

// ScanStrategy selects how SCAN(start, n) is executed (§4.4).
type ScanStrategy int

// Scan strategies.
const (
	// ScanParallel runs the same scan-size on every instance in parallel
	// and filters the union — extra reads, minimum latency; the paper's
	// recommended mode on fast SSDs.
	ScanParallel ScanStrategy = iota
	// ScanMerged drives a global merged iterator over per-instance
	// iterators, reading exactly n keys serially (the conservative
	// RocksDB MergeIterator-style approach).
	ScanMerged
)

// AdmissionPolicy decides what happens when a request targets a worker
// whose queue is full (or, for writes, whose engine is degraded).
type AdmissionPolicy int

// Admission policies.
const (
	// AdmitBlock blocks the submitter until queue space frees — the
	// original backpressure behaviour. A request context still aborts
	// the wait with kv.ErrDeadlineExceeded.
	AdmitBlock AdmissionPolicy = iota
	// AdmitReject never waits: a full queue fails fast with
	// kv.ErrOverloaded, and writes to a degraded shard fail with an
	// error matching both kv.ErrOverloaded and kv.ErrDegraded. Hot-shard
	// floods bounce at the accessing layer instead of dragging every
	// co-hashed caller into unbounded queue wait.
	AdmitReject
	// AdmitWait waits for queue space only as long as the request's
	// remaining deadline budget. A request without a deadline has no
	// budget to spend, so a full queue rejects it like AdmitReject.
	AdmitWait
)

// Options configures a p2KVS store.
type Options struct {
	// Workers is the number of KVS instances / worker threads. The paper
	// defaults to 8 (matched to hardware parallelism, §4.2).
	Workers int
	// EngineFactory opens each worker's instance. Required.
	EngineFactory EngineFactory
	// Partitioner maps keys to workers; defaults to the modular hash.
	Partitioner keyspace.Partitioner
	// OBM enables opportunistic request batching (§4.3). Default on via
	// DefaultOptions; the sensitivity study (Figure 17) disables it.
	OBM bool
	// MaxBatch bounds requests per OBM batch (32 by default, the paper's
	// tail-latency guard).
	MaxBatch int
	// QueueDepth bounds each worker's request queue (backpressure for
	// the async interface).
	QueueDepth int
	// PinWorkers locks each worker goroutine to an OS thread,
	// approximating the paper's core pinning (Go cannot bind to a
	// specific core; LockOSThread removes goroutine migration, the
	// scheduling noise the paper's 10-15%% binding gain comes from).
	PinWorkers bool
	// Scan selects the SCAN strategy.
	Scan ScanStrategy
	// Admission selects the overload behaviour of request submission
	// (default AdmitBlock, the original blocking backpressure).
	Admission AdmissionPolicy
	// DrainTimeout bounds Close's drain of queued requests. Zero keeps
	// the original wait-forever semantics; a positive value makes Close
	// fail still-queued requests with kv.ErrClosed once the deadline
	// passes, so a wedged engine cannot hang shutdown.
	DrainTimeout time.Duration
	// TxnFS + TxnDir host the transaction GSN log (§4.5). Required for
	// cross-instance Write atomicity and crash recovery; single-instance
	// requests never touch it.
	TxnFS  vfs.FS
	TxnDir string
	// EngineName labels the engine family in checkpoint manifests so
	// Restore can refuse an image taken with a different engine. Optional;
	// empty means "unspecified" and restores skip the compatibility check.
	EngineName string
	// Meters, when non-nil, receives one busy meter per worker.
	Meters *metrics.Group
	// ScrubInterval enables a background integrity scrub of every worker
	// engine on this cadence (0 = no background scrubbing; Store.Scrub
	// remains available for on-demand passes). ScrubRate bounds the scrub's
	// aggregate read bandwidth in bytes/second (0 = unthrottled).
	ScrubInterval time.Duration
	ScrubRate     int64
	// HotCacheBytes, when non-zero, enables the hot-key read cache above
	// the worker queues: GET results (including not-found) are cached and
	// served without queue admission or a worker round-trip, invalidated
	// by per-key GSN-ordered watermark bumps on every applied write.
	// Positive values set the byte budget; negative selects the default
	// 32 MiB. Zero (the default) disables the cache.
	HotCacheBytes int64
	// InstanceReset, when non-nil, deletes worker workerID's on-disk
	// instance state so EngineFactory(workerID, …) opens a blank engine.
	// Online resharding requires it: growing wipes the target directories
	// before seeding them (a crashed earlier attempt may have left a
	// partial copy), and shrinking retires the dropped workers' state.
	InstanceReset func(workerID int) error
	// CutoverBudget bounds the writer pause of one reshard cutover
	// attempt (the time routing is frozen for the ring swap). An attempt
	// that cannot commit inside the budget releases the barrier, lets
	// writers resume, and retries. Zero selects DefaultCutoverBudget
	// (10ms).
	CutoverBudget time.Duration
	// ReplLog, when non-nil, enables replication: every applied write
	// batch is recorded in this backlog under a GSN assigned at apply
	// time, each worker's lastGSN watermark becomes its stream cursor
	// (recorded by checkpoints, consumed by replicas), and
	// Store.ApplyRepl accepts replicated records from a primary. The log
	// must be sized for the same worker count.
	ReplLog *repl.Log
}

// DefaultOptions returns the paper's default configuration (8 workers,
// OBM on, batch cap 32).
func DefaultOptions(factory EngineFactory) Options {
	return Options{
		Workers:       8,
		EngineFactory: factory,
		OBM:           true,
		MaxBatch:      32,
		QueueDepth:    4096,
	}
}

// DefaultHotCacheBytes is the hot-key cache budget selected by a
// negative Options.HotCacheBytes.
const DefaultHotCacheBytes = 32 << 20

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.HotCacheBytes < 0 {
		o.HotCacheBytes = DefaultHotCacheBytes
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4096
	}
	if o.Partitioner == nil {
		o.Partitioner = keyspace.NewHash(o.Workers)
	}
	return o
}
