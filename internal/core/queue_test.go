package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"p2kvs/internal/kv"
)

// TestQueueConcurrentPushPop hammers one queue with many producers and a
// single consumer (the worker model) under a small capacity, so pushes
// constantly block on a full queue and popBatch constantly frees space.
// Run with -race: the waiter-channel handoff must be data-race free, every
// request must come out exactly once, and nothing may deadlock.
func TestQueueConcurrentPushPop(t *testing.T) {
	const (
		producers   = 8
		perProducer = 500
		capacity    = 4
	)
	q := newReqQueue(capacity)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				r := &request{typ: reqWrite, key: []byte(fmt.Sprintf("%d-%d", p, i))}
				if !q.push(r) {
					t.Errorf("push failed on open queue")
					return
				}
			}
		}(p)
	}
	seen := make(map[string]bool)
	got := 0
	for got < producers*perProducer {
		batch, expired := q.popBatch(true, 32)
		if len(expired) != 0 {
			t.Fatalf("no request carries a ctx, yet %d were shed", len(expired))
		}
		for _, r := range batch {
			k := string(r.key)
			if seen[k] {
				t.Fatalf("request %s dequeued twice", k)
			}
			seen[k] = true
			got++
		}
	}
	wg.Wait()
	if q.len() != 0 {
		t.Fatalf("queue not empty after consuming everything: %d left", q.len())
	}
	if hw := q.highWaterMark(); hw < 1 || hw > capacity {
		t.Fatalf("high-water mark %d outside [1, %d]", hw, capacity)
	}
}

// TestQueueBlockedPushWakesOnClose: a producer blocked on a full queue
// must wake (and fail) when the queue closes, not hang forever.
func TestQueueBlockedPushWakesOnClose(t *testing.T) {
	q := newReqQueue(1)
	if !q.push(&request{typ: reqWrite}) {
		t.Fatal("first push must succeed")
	}
	result := make(chan bool, 1)
	go func() {
		result <- q.push(&request{typ: reqWrite}) // blocks: queue full
	}()
	// Give the producer time to actually block, then close.
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case ok := <-result:
		if ok {
			t.Fatal("push on closed queue reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked push never woke on close")
	}
}

// TestQueueBlockedPushWakesOnCtx: a producer blocked on a full queue must
// wake with kv.ErrDeadlineExceeded when its context expires, and the
// abandoned waiter must not leak (a later pop must not panic or hang).
func TestQueueBlockedPushWakesOnCtx(t *testing.T) {
	q := newReqQueue(1)
	q.push(&request{typ: reqWrite})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		errCh <- q.pushWait(ctx.Done(), &request{typ: reqWrite})
	}()
	select {
	case err := <-errCh:
		if !errors.Is(err, kv.ErrDeadlineExceeded) {
			t.Fatalf("pushWait err = %v, want ErrDeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked push never woke on ctx expiry")
	}
	if len(q.spaceWaiters) != 0 {
		t.Fatalf("%d abandoned space waiters leaked", len(q.spaceWaiters))
	}
	// The queue still functions after the aborted wait.
	if batch, _ := q.popBatch(false, 1); len(batch) != 1 {
		t.Fatalf("pop after aborted wait = %d requests", len(batch))
	}
	if err := q.tryPush(&request{typ: reqWrite}); err != nil {
		t.Fatalf("tryPush after aborted wait: %v", err)
	}
}

func TestQueueTryPush(t *testing.T) {
	q := newReqQueue(2)
	for i := 0; i < 2; i++ {
		if err := q.tryPush(&request{typ: reqWrite}); err != nil {
			t.Fatalf("tryPush %d: %v", i, err)
		}
	}
	if err := q.tryPush(&request{typ: reqWrite}); !errors.Is(err, kv.ErrOverloaded) {
		t.Fatalf("tryPush on full queue = %v, want ErrOverloaded", err)
	}
	q.close()
	if err := q.tryPush(&request{typ: reqWrite}); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("tryPush on closed queue = %v, want ErrClosed", err)
	}
}

// TestQueueCompact drives the head-reclaim path and checks that items
// survive compaction intact and in order: pop enough singles that head
// crosses the compaction threshold while later items are still queued.
func TestQueueCompact(t *testing.T) {
	const total = 200
	q := newReqQueue(total + 64)
	for i := 0; i < total; i++ {
		q.push(&request{typ: reqWrite, key: []byte(fmt.Sprintf("k-%04d", i))})
	}
	// Pop the first 100 one at a time (OBM off): head passes 64 and
	// head*2 >= len(items), which must trigger compact().
	for i := 0; i < 100; i++ {
		batch, _ := q.popBatch(false, 1)
		if len(batch) != 1 || string(batch[0].key) != fmt.Sprintf("k-%04d", i) {
			t.Fatalf("pop %d = %q", i, batch[0].key)
		}
	}
	if q.head != 0 {
		t.Fatalf("compact did not run: head = %d", q.head)
	}
	// Interleave new pushes with the compacted remainder; order must hold.
	for i := total; i < total+20; i++ {
		q.push(&request{typ: reqWrite, key: []byte(fmt.Sprintf("k-%04d", i))})
	}
	for i := 100; i < total+20; i++ {
		batch, _ := q.popBatch(false, 1)
		if len(batch) != 1 || string(batch[0].key) != fmt.Sprintf("k-%04d", i) {
			t.Fatalf("post-compact pop %d = %q", i, batch[0].key)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue should be empty, has %d", q.len())
	}
}

// TestQueueShedsExpired: requests whose context ended while queued come
// back in popBatch's expired list — including mid-batch ones — and never
// join a batch.
func TestQueueShedsExpired(t *testing.T) {
	q := newReqQueue(16)
	live, dead := context.Background(), func() context.Context {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		return ctx
	}()
	mk := func(ctx context.Context, name string) *request {
		r := &request{typ: reqWrite, key: []byte(name)}
		if ctx.Done() != nil {
			r.ctx = ctx
		}
		return r
	}
	q.push(mk(dead, "h1"))  // expired at head
	q.push(mk(dead, "h2"))  // expired at head
	q.push(mk(live, "a"))   // live batch
	q.push(mk(dead, "mid")) // expired mid-batch
	q.push(mk(live, "b"))

	batch, expired := q.popBatch(true, 32)
	if len(expired) != 3 {
		t.Fatalf("shed %d, want 3", len(expired))
	}
	if len(batch) != 2 || string(batch[0].key) != "a" || string(batch[1].key) != "b" {
		t.Fatalf("batch = %v", batch)
	}
	// A queue holding only expired work returns (nil, expired) and the
	// next call blocks for live work rather than spinning; verify via
	// close.
	q.push(mk(dead, "only"))
	batch, expired = q.popBatch(true, 32)
	if batch != nil || len(expired) != 1 {
		t.Fatalf("expired-only pop = %v / %v", batch, expired)
	}
	q.close()
	if batch, expired = q.popBatch(true, 32); batch != nil || expired != nil {
		t.Fatal("closed empty queue must return nil, nil")
	}
}

// TestQueueDrain: drain empties the queue and frees blocked producers.
func TestQueueDrain(t *testing.T) {
	q := newReqQueue(2)
	q.push(&request{typ: reqWrite, key: []byte("a")})
	q.push(&request{typ: reqWrite, key: []byte("b")})
	q.close()
	got := q.drain()
	if len(got) != 2 || string(got[0].key) != "a" || string(got[1].key) != "b" {
		t.Fatalf("drain = %v", got)
	}
	if q.len() != 0 || q.head != 0 {
		t.Fatalf("drain left len=%d head=%d", q.len(), q.head)
	}
	if q.drain() != nil && len(q.drain()) != 0 {
		t.Fatal("second drain must be empty")
	}
}

// TestWorkerName is the regression test for the id >= 100 bug: the old
// rune arithmetic produced garbage ("p2kvs-w:0" and worse) past two
// digits.
func TestWorkerName(t *testing.T) {
	cases := map[int]string{
		0:   "p2kvs-w00",
		7:   "p2kvs-w07",
		42:  "p2kvs-w42",
		99:  "p2kvs-w99",
		100: "p2kvs-w100",
		123: "p2kvs-w123",
	}
	for id, want := range cases {
		if got := workerName(id); got != want {
			t.Errorf("workerName(%d) = %q, want %q", id, got, want)
		}
	}
}
