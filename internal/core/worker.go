package core

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"p2kvs/internal/hotcache"
	"p2kvs/internal/kv"
	"p2kvs/internal/metrics"
	"p2kvs/internal/repl"
)

// gsnWriter is the optional engine capability of tagging a batch's WAL
// record with a p2KVS Global Sequence Number (the LSM engine implements
// it; see §4.5 — GSN is "a prefix of the original log sequence number").
type gsnWriter interface {
	WriteGSN(b *kv.Batch, gsn uint64) error
}

// worker owns one KVS instance, one request queue, and one goroutine —
// the horizontal dimension of p2KVS (§4.1). The worker never proactively
// waits for requests to accumulate: batching is opportunistic.
type worker struct {
	id     int
	engine kv.Engine
	caps   kv.Caps
	hr     kv.HealthReporter // nil when the engine does not report health
	q      *reqQueue
	obm    bool
	max    int
	pin    bool
	meter  *metrics.Meter

	wg sync.WaitGroup

	// Stats for the sensitivity studies.
	ops         atomic.Int64
	batches     atomic.Int64
	batchedOps  atomic.Int64
	queueWaitNs atomic.Int64

	// Engine-level batching stats: ops that reached the engine inside a
	// multi-op WriteBatch (OBM-merged runs and user/network batches) and
	// keys resolved through the engine's multiget. These are the
	// observable proof that batched submission — including the network
	// layer's pipeline coalescing — actually hits the engine's batch
	// paths rather than degenerating to per-op calls.
	batchWriteOps atomic.Int64
	multiGetOps   atomic.Int64

	// lastGSN is the highest GSN this worker has durably applied — the
	// per-worker transaction watermark a checkpoint barrier records.
	// Written only by the worker goroutine, read by the coordinator.
	// With replication enabled it is the stream cursor: every applied
	// write batch ratchets it (not just transaction legs).
	lastGSN atomic.Uint64

	// repl, when non-nil, receives every applied write batch (the
	// replication backlog); gsnSrc is the store's global GSN counter,
	// from which shipped records draw their apply-time GSN. txn is the
	// store's transaction log (nil without TxnFS) — ship reports
	// transaction legs to it so checkpoints can keep stream cursors
	// below uncommitted transactions.
	repl   *repl.Log
	gsnSrc *atomic.Uint64
	txn    *txnLog

	// cache is the store's hot-key read cache (nil when disabled). The
	// worker bumps the invalidation watermark of every written key after
	// the engine applied the batch and before any submitter is woken:
	// once a write is acknowledged, no reader can be served a cached
	// value that predates it. Failed writes bump too — a fault-injected
	// engine may have partially applied the batch, so the cached value
	// can no longer be trusted. cacheInv counts the bumps.
	cache    *hotcache.Cache
	cacheInv atomic.Int64

	// resh points at the store's active-reshard slot. On every applied
	// write batch the worker consults it and synchronously double-writes
	// ops whose keys have moved to a new owner — the worker, not the
	// submitter, mirrors, so the mirror stream preserves this instance's
	// apply order per key.
	resh *atomic.Pointer[reshardRun]

	// Overload / lifecycle stats. rejected counts admission-control
	// rejections (ErrOverloaded), expired counts requests whose context
	// ended before or while being submitted (caller-visible deadline
	// failures), shed counts requests discarded at dequeue or drain
	// without touching the engine.
	rejected atomic.Int64
	expired  atomic.Int64
	shed     atomic.Int64
}

func newWorker(id int, engine kv.Engine, opts Options) *worker {
	w := &worker{
		id:     id,
		engine: engine,
		caps:   kv.CapsOf(engine),
		q:      newReqQueue(opts.QueueDepth),
		obm:    opts.OBM,
		max:    opts.MaxBatch,
		pin:    opts.PinWorkers,
		repl:   opts.ReplLog,
	}
	if hr, ok := engine.(kv.HealthReporter); ok {
		w.hr = hr
	}
	if opts.Meters != nil {
		w.meter = opts.Meters.Meter(workerName(id))
	}
	return w
}

// degradedErr fast-fails write submission when this worker's engine is in
// read-only degraded mode, so writes bounce at the accessing layer instead
// of queueing behind a shard that cannot commit them. Reads are unaffected.
// The engine's own error is chained in so callers (the server's error
// mapper in particular) can classify the cause — e.g. vfs.IsNoSpace for
// disk-full replies.
func (w *worker) degradedErr() error {
	if w.hr == nil {
		return nil
	}
	if h := w.hr.Health(); h.State == kv.StateReadOnly {
		if h.Err != nil {
			return fmt.Errorf("core: shard %d: %w: %w", w.id, kv.ErrDegraded, h.Err)
		}
		return fmt.Errorf("core: shard %d: %w", w.id, kv.ErrDegraded)
	}
	return nil
}

func workerName(id int) string {
	return fmt.Sprintf("p2kvs-w%02d", id)
}

func (w *worker) start() {
	w.wg.Add(1)
	go w.loop()
}

// loop is the worker thread (Figure 9b): dequeue-batch (❶), perform
// processing on the private instance (❷), finish and wake submitters (❸).
func (w *worker) loop() {
	defer w.wg.Done()
	if w.pin {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	for {
		reqs, expired := w.q.popBatch(w.obm, w.max)
		for _, r := range expired {
			w.shed.Add(1)
			r.complete(ctxError(r.ctx.Err()))
		}
		if reqs == nil {
			if len(expired) > 0 {
				continue // only dead work was pending
			}
			return
		}
		if w.meter != nil {
			w.meter.Busy()
		}
		now := time.Now()
		for _, r := range reqs {
			w.queueWaitNs.Add(int64(now.Sub(r.enqueuedAt)))
		}
		w.execute(reqs)
		if w.meter != nil {
			w.meter.Idle()
		}
	}
}

func (w *worker) execute(reqs []*request) {
	w.ops.Add(int64(len(reqs)))
	w.batches.Add(1)
	if len(reqs) > 1 {
		w.batchedOps.Add(int64(len(reqs)))
	}
	switch reqs[0].typ {
	case reqWrite:
		w.executeWrites(reqs)
	case reqRead:
		w.executeReads(reqs)
	case reqScan:
		w.executeScan(reqs[0])
	case reqBarrier:
		w.executeBarrier(reqs[0])
	}
}

// executeBarrier parks the worker at a checkpoint barrier: everything
// enqueued before the barrier has been applied, nothing enqueued after it
// runs until the coordinator releases. The coordinator uses the pause to
// capture every engine's checkpoint state at one GSN watermark.
func (w *worker) executeBarrier(r *request) {
	r.barrierReady.Done()
	<-r.barrierRelease
	r.complete(nil)
}

// filterCopied drops ops from reshard bulk-copy requests whose keys were
// double-written after the copy snapshot's GSN floor: the mirrored value
// is fresher than the snapshot-pinned one (it is already applied, or
// strictly ahead of this request in this FIFO queue, since mirrors record
// their key before enqueueing). Checked at apply time, not enqueue time,
// so every interleaving of copy batch vs racing mirror resolves in the
// mirror's favour.
func filterCopied(reqs []*request) {
	for _, r := range reqs {
		if r.copySeen == nil {
			continue
		}
		kept := r.batch.ops[:0]
		for _, op := range r.batch.ops {
			if r.copySeen.Seen(op.key, r.copyFloor) {
				r.copySkip.Add(1)
				continue
			}
			kept = append(kept, op)
		}
		r.batch.ops = kept
	}
}

// mirrorMoved synchronously double-writes applied ops whose keys have
// moved to another worker under the in-flight reshard (nil run in steady
// state: one pointer load). Per moved target: copy the op bytes (the
// submitter may reuse its buffers once acked), record every key in the
// run's SeenSet under a fresh GSN before enqueueing, then wait for the
// target to apply. The wait is what makes an acknowledged write durable
// on both owners — cutover needs no drain phase, and a read after the
// flip sees every pre-flip acked write. Self-owned keys (this worker is
// the target: copy batches and incoming mirrors) are skipped, which also
// terminates the forwarding chain. A mirror failure latches the run as
// failed — the reshard aborts — but does not fail the primary write,
// whose own engine already committed it.
func (w *worker) mirrorMoved(reqs []*request) {
	run := w.resh.Load()
	if run == nil {
		return
	}
	var mirrors map[int]*request
	for _, r := range reqs {
		for _, op := range r.batch.ops {
			mr, ok := run.plan.FindKey(op.key)
			if !ok || mr.To == w.id {
				continue
			}
			if mirrors == nil {
				mirrors = make(map[int]*request)
			}
			m := mirrors[mr.To]
			if m == nil {
				m = &request{typ: reqWrite, done: make(chan struct{})}
				mirrors[mr.To] = m
			}
			cop := wop{del: op.del, key: append([]byte(nil), op.key...)}
			if !op.del {
				cop.value = append([]byte(nil), op.value...)
			}
			m.batch.ops = append(m.batch.ops, cop)
		}
	}
	if mirrors == nil {
		return
	}
	for to, m := range mirrors {
		g := w.gsnSrc.Add(1)
		for _, op := range m.batch.ops {
			run.seen.Record(op.key, g)
		}
		if err := run.targets[to].q.pushWait(nil, m); err != nil {
			run.fail(fmt.Errorf("core: reshard mirror to worker %d: %w", to, err))
			m.err = err
			close(m.done)
		}
		run.tracker.AddDoubleWrites(int64(len(m.batch.ops)))
	}
	for to, m := range mirrors {
		<-m.done
		if m.err != nil {
			run.fail(fmt.Errorf("core: reshard mirror apply on worker %d: %w", to, m.err))
		}
	}
}

// executeWrites applies a run of write-type requests. With OBM and an
// engine that supports WriteBatch, the whole run commits as a single
// batch — one log IO instead of len(reqs) (Figure 10a). The batch-write
// path is also what a single multi-op user WriteBatch takes.
func (w *worker) executeWrites(reqs []*request) {
	filterCopied(reqs)
	if bw, ok := w.engine.(kv.BatchWriter); ok && w.caps.BatchWrite {
		var b kv.Batch
		gsn := reqs[0].gsn
		uniformGSN := true
		for _, r := range reqs {
			if r.gsn != gsn {
				uniformGSN = false
			}
			appendOps(&b, r)
		}
		if b.Len() == 0 {
			// Every op was a stale bulk-copy duplicate; nothing for the
			// engine.
			for _, r := range reqs {
				r.complete(nil)
			}
			return
		}
		if b.Len() > 1 {
			w.batchWriteOps.Add(int64(b.Len()))
		}
		var err error
		if gw, ok := w.engine.(gsnWriter); ok && uniformGSN && gsn != 0 {
			err = gw.WriteGSN(&b, gsn)
		} else {
			err = bw.Write(&b)
		}
		if err == nil {
			if w.repl != nil {
				var txnGSN uint64
				if uniformGSN {
					txnGSN = gsn
				}
				w.ship(reqs[0].streamGSN, txnGSN, b.Ops())
			} else if uniformGSN && gsn > w.lastGSN.Load() {
				w.lastGSN.Store(gsn)
			}
			w.mirrorMoved(reqs)
		}
		if w.cache != nil {
			// Invalidate before completing: the bump must be visible
			// before any submitter observes the acknowledgement. Bump on
			// error too — a failed write may have partially applied.
			for _, op := range b.Ops() {
				w.cache.Invalidate(op.Key)
			}
			w.cacheInv.Add(int64(b.Len()))
		}
		for _, r := range reqs {
			r.complete(err)
		}
		return
	}
	// Engine without batch-write (e.g. WiredTiger, §4.6): per-op path;
	// OBM-write degenerates gracefully.
	for _, r := range reqs {
		var err error
		for _, op := range r.batch.ops {
			if op.del {
				err = w.engine.Delete(op.key)
			} else {
				err = w.engine.Put(op.key, op.value)
			}
			if err != nil {
				break
			}
		}
		if err == nil {
			if w.repl != nil {
				w.ship(r.streamGSN, r.gsn, batchOps(r.batch.ops))
			}
			w.mirrorMoved([]*request{r})
		}
		if w.cache != nil {
			for _, op := range r.batch.ops {
				w.cache.Invalidate(op.key)
			}
			w.cacheInv.Add(int64(len(r.batch.ops)))
		}
		r.complete(err)
	}
}

// ship records one applied write batch in the replication backlog. The
// GSN is assigned here, at apply time, from the store's global counter —
// the worker applies serially, so per-worker stream GSNs are strictly
// increasing, the monotonicity partial sync depends on. A replicated
// record being applied on a replica (streamGSN != 0) keeps the GSN the
// primary's worker assigned, preserving the cursor sequence down the
// chain. The backlog ratchets lastGSN, so checkpoints taken on a
// replicating store record stream cursors as their watermarks. txnGSN,
// when non-zero, names the cross-instance transaction this batch is a
// leg of; the leg's stream GSN is reported to the transaction log so a
// checkpoint cut before the commit record keeps its cursors below it.
func (w *worker) ship(streamGSN, txnGSN uint64, ops []kv.BatchOp) {
	g := streamGSN
	if g == 0 {
		g = w.gsnSrc.Add(1)
	}
	if txnGSN != 0 && w.txn != nil {
		w.txn.noteLeg(txnGSN, w.id, g)
	}
	if g > w.lastGSN.Load() {
		w.lastGSN.Store(g)
	}
	w.repl.Append(w.id, g, ops)
}

// batchOps converts the queue's private write ops to the shared BatchOp
// form the replication log records.
func batchOps(ops []wop) []kv.BatchOp {
	out := make([]kv.BatchOp, len(ops))
	for i, op := range ops {
		if op.del {
			out[i] = kv.BatchOp{Kind: kv.OpDelete, Key: op.key}
		} else {
			out[i] = kv.BatchOp{Kind: kv.OpPut, Key: op.key, Value: op.value}
		}
	}
	return out
}

func appendOps(b *kv.Batch, r *request) {
	for _, op := range r.batch.ops {
		if op.del {
			b.Delete(op.key)
		} else {
			b.Put(op.key, op.value)
		}
	}
}

// executeReads resolves a run of GETs, via multiget when the engine has
// it (Figure 10b); otherwise the reads are issued concurrently to exploit
// the engine's internal read parallelism (§4.6's LevelDB/WiredTiger
// fallback).
func (w *worker) executeReads(reqs []*request) {
	if mg, ok := w.engine.(kv.MultiGetter); ok && w.caps.MultiGet && len(reqs) > 1 {
		keys := make([][]byte, len(reqs))
		for i, r := range reqs {
			keys[i] = r.key
		}
		w.multiGetOps.Add(int64(len(keys)))
		vals, err := mg.MultiGet(keys)
		for i, r := range reqs {
			if err != nil {
				r.complete(err)
				continue
			}
			if vals[i] != nil {
				r.val, r.found = vals[i], true
			}
			r.complete(nil)
		}
		return
	}
	if len(reqs) == 1 {
		w.doGet(reqs[0])
		return
	}
	var wg sync.WaitGroup
	for _, r := range reqs {
		wg.Add(1)
		go func(r *request) {
			defer wg.Done()
			w.doGet(r)
		}(r)
	}
	wg.Wait()
}

func (w *worker) doGet(r *request) {
	v, err := w.engine.Get(r.key)
	switch err {
	case nil:
		r.val, r.found = v, true
		r.complete(nil)
	case kv.ErrNotFound:
		r.complete(nil)
	default:
		r.complete(err)
	}
}

// executeScan serves one SCAN leg on this worker's instance. With an
// ownership filter set (elastic stores), keys this worker does not own
// under the captured ring generation — stale moved ranges awaiting
// cleanup, or mid-copy duplicates — are skipped without consuming the
// leg's limit, so a SCAN n during a reshard still fills n slots with
// owned keys.
func (w *worker) executeScan(r *request) {
	it, err := w.engine.NewIterator()
	if err != nil {
		r.complete(err)
		return
	}
	defer it.Close()
	if r.scanStart == nil {
		it.SeekToFirst()
	} else {
		it.Seek(r.scanStart)
	}
	for ; it.Valid() && len(r.scanOut) < r.scanLimit; it.Next() {
		if r.scanEnd != nil && bytes.Compare(it.Key(), r.scanEnd) > 0 {
			break
		}
		if r.scanPart != nil && r.scanPart.Pick(it.Key()) != r.scanSelf {
			continue
		}
		k := append([]byte(nil), it.Key()...)
		v := append([]byte(nil), it.Value()...)
		r.scanOut = append(r.scanOut, [2][]byte{k, v})
	}
	r.complete(it.Error())
}

// park drains and joins the worker like stop but leaves its engine open:
// a shrink retires workers whose engines may still back merged iterators
// created before the cutover. The store closes retired engines at Close.
func (w *worker) park() {
	w.q.close()
	w.wg.Wait()
}

// stop drains and joins the worker, then closes its engine. A non-zero
// deadline bounds the drain: if the worker has not finished by then
// (typically wedged inside a stalled engine call), every still-queued
// request is failed with kv.ErrClosed so its submitter unblocks, the
// engine is closed asynchronously once the worker finally returns, and
// stop reports the wedge instead of hanging.
func (w *worker) stop(deadline time.Time) error {
	w.q.close()
	if deadline.IsZero() {
		w.wg.Wait()
		return w.engine.Close()
	}
	done := make(chan struct{})
	go func() {
		w.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case <-done:
		return w.engine.Close()
	case <-timer.C:
	}
	dropped := w.q.drain()
	for _, r := range dropped {
		w.shed.Add(1)
		r.complete(fmt.Errorf("core: worker %d: store closing: %w", w.id, kv.ErrClosed))
	}
	go func() {
		<-done
		_ = w.engine.Close()
	}()
	return fmt.Errorf("core: worker %d: drain deadline exceeded; %d queued requests failed: %w",
		w.id, len(dropped), kv.ErrClosed)
}

// WorkerStats summarizes one worker's activity.
type WorkerStats struct {
	ID         int
	Ops        int64
	Batches    int64
	BatchedOps int64 // ops that traveled in a batch of >= 2
	// BatchWriteOps counts write ops committed to the engine inside a
	// multi-op WriteBatch (one journal IO for the whole batch); MultiGetOps
	// counts keys resolved through the engine's multiget. Both rise when
	// OBM — or the network layer's pipeline coalescing — succeeds in
	// batching work before it reaches the engine.
	BatchWriteOps int64
	MultiGetOps   int64
	QueueWait     time.Duration
	// Rejected counts requests bounced by admission control with
	// kv.ErrOverloaded (AdmitReject / AdmitWait on a full queue).
	Rejected int64
	// Expired counts requests whose context ended before execution, as
	// observed by their submitters (kv.ErrDeadlineExceeded).
	Expired int64
	// Shed counts requests discarded by the worker at dequeue or drain —
	// dead work that never touched the engine.
	Shed int64
	// QueueHighWater is the deepest this worker's queue has ever been.
	QueueHighWater int
	// Health is the engine's background-error report; zero-valued
	// (StateHealthy) for engines without health reporting.
	Health kv.Health
	// Compaction is the engine's compaction-scheduler report; zero-valued
	// for engines without compaction stats.
	Compaction kv.CompactionStats
	// Checkpoint is the engine's online-backup activity report;
	// zero-valued for engines without checkpoint support.
	Checkpoint kv.CheckpointStats
	// ReplLastGSN is this worker's replication stream watermark — the GSN
	// of its most recently applied-and-shipped write batch. Zero when
	// replication is disabled (Options.ReplLog nil).
	ReplLastGSN uint64
	// CacheInvalidations counts hot-cache watermark bumps this worker
	// performed on applied writes. Zero when the cache is disabled.
	CacheInvalidations int64
}

func (w *worker) stats() WorkerStats {
	st := WorkerStats{
		ID:             w.id,
		Ops:            w.ops.Load(),
		Batches:        w.batches.Load(),
		BatchedOps:     w.batchedOps.Load(),
		BatchWriteOps:  w.batchWriteOps.Load(),
		MultiGetOps:    w.multiGetOps.Load(),
		QueueWait:      time.Duration(w.queueWaitNs.Load()),
		Rejected:       w.rejected.Load(),
		Expired:        w.expired.Load(),
		Shed:           w.shed.Load(),
		QueueHighWater: w.q.highWaterMark(),
	}
	if w.hr != nil {
		st.Health = w.hr.Health()
	}
	if cr, ok := w.engine.(kv.CompactionStatsReporter); ok {
		st.Compaction = cr.CompactionStats()
	}
	if kr, ok := w.engine.(kv.CheckpointStatsReporter); ok {
		st.Checkpoint = kr.CheckpointStats()
	}
	if w.repl != nil {
		st.ReplLastGSN = w.lastGSN.Load()
	}
	st.CacheInvalidations = w.cacheInv.Load()
	return st
}
