package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"p2kvs/internal/checkpoint"
	"p2kvs/internal/kv"
	"p2kvs/internal/repl"
	"p2kvs/internal/vfs"
)

// openReplStore opens an LSM-backed store with replication enabled.
func openReplStore(t *testing.T, fs *vfs.MemFS, workers int, backlog int64) *Store {
	t.Helper()
	opts := DefaultOptions(lsmFactory(fs, "p2"))
	opts.Workers = workers
	opts.TxnFS = fs
	opts.TxnDir = "p2/txn"
	opts.ReplLog = repl.NewLog(workers, backlog)
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// applyStream replays every retained record of src's backlog into dst
// via the replica apply path — the in-process equivalent of the wire
// stream, applied per worker in GSN order.
func applyStream(t *testing.T, src, dst *Store, cursors []uint64) []uint64 {
	t.Helper()
	log := src.ReplLog()
	for w := 0; w < log.Workers(); w++ {
		recs, err := log.Since(w, cursors[w])
		if err != nil {
			t.Fatalf("Since(%d, %d): %v", w, cursors[w], err)
		}
		for _, rec := range recs {
			ops, err := repl.DecodeOps(rec.Payload)
			if err != nil {
				t.Fatalf("DecodeOps: %v", err)
			}
			if err := dst.ApplyRepl(rec.Worker, rec.GSN, ops); err != nil {
				t.Fatalf("ApplyRepl(w%d g%d): %v", rec.Worker, rec.GSN, err)
			}
			cursors[w] = rec.GSN
		}
	}
	return cursors
}

// TestReplShipAndApplyConverges drives a primary with plain writes,
// deletes and cross-partition transactions, replays its backlog into a
// replica, and requires byte-identical ordered dumps plus matching
// per-worker stream watermarks.
func TestReplShipAndApplyConverges(t *testing.T) {
	pfs, rfs := vfs.NewMem(), vfs.NewMem()
	p := openReplStore(t, pfs, 4, 0)
	defer p.Close()
	r := openReplStore(t, rfs, 4, 0)
	defer r.Close()

	for i := 0; i < 500; i++ {
		if err := p.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i += 9 {
		if err := p.Delete([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		var b kv.Batch
		for j := 0; j < 8; j++ {
			b.Put([]byte(fmt.Sprintf("txn-%02d-%d", i, j)), []byte("t"))
		}
		if err := p.Write(&b); err != nil {
			t.Fatal(err)
		}
	}

	applyStream(t, p, r, make([]uint64, 4))

	if want, got := dump(t, p), dump(t, r); !samePairs(want, got) {
		t.Fatalf("replica diverged: primary %d pairs, replica %d", len(want), len(got))
	}
	pw, rw := p.ReplLastGSN(), r.ReplLastGSN()
	for i := range pw {
		if pw[i] != rw[i] {
			t.Fatalf("worker %d watermark: primary %d, replica %d", i, pw[i], rw[i])
		}
	}
	if r.GSN() < p.GSN()-uint64(len(pw)) {
		t.Fatalf("replica GSN counter did not ratchet: %d vs %d", r.GSN(), p.GSN())
	}
}

// TestReplStreamGSNMonotonicPerWorker asserts the property partial sync
// depends on: per worker, backlog records carry strictly increasing GSNs
// — even when cross-partition transaction legs (whose engine GSNs are
// assigned at prepare time, out of apply order) interleave with plain
// writes under concurrency.
func TestReplStreamGSNMonotonicPerWorker(t *testing.T) {
	fs := vfs.NewMem()
	s := openReplStore(t, fs, 4, 0)
	defer s.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if i%5 == 0 {
					var b kv.Batch
					for j := 0; j < 6; j++ {
						b.Put([]byte(fmt.Sprintf("t-%d-%d-%d", g, i, j)), []byte("v"))
					}
					if err := s.Write(&b); err != nil {
						t.Error(err)
						return
					}
				} else if err := s.Put([]byte(fmt.Sprintf("k-%d-%d", g, i)), []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	log := s.ReplLog()
	for w := 0; w < 4; w++ {
		recs, err := log.Since(w, 0)
		if err != nil {
			t.Fatal(err)
		}
		var prev uint64
		for _, rec := range recs {
			if rec.GSN <= prev {
				t.Fatalf("worker %d: stream GSN %d after %d — not strictly increasing", w, rec.GSN, prev)
			}
			prev = rec.GSN
		}
	}
}

// TestReplCheckpointCursorsResume proves the full-sync handoff: a
// checkpoint's WorkerGSN watermarks are exactly the cursors at which the
// stream resumes — restore the image, replay the backlog from the
// manifest cursors, and the replica converges with nothing lost and
// nothing double-counted.
func TestReplCheckpointCursorsResume(t *testing.T) {
	fs := vfs.NewMem()
	p := openReplStore(t, fs, 2, 0)
	defer p.Close()

	for i := 0; i < 300; i++ {
		if err := p.Put([]byte(fmt.Sprintf("pre-%04d", i)), []byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	m, err := p.Checkpoint(fs, "bak")
	if err != nil {
		t.Fatal(err)
	}
	if m.ReplID != p.ReplLog().ID() {
		t.Fatalf("manifest replid %q, log %q", m.ReplID, p.ReplLog().ID())
	}
	if len(m.WorkerGSN) != 2 || (m.WorkerGSN[0] == 0 && m.WorkerGSN[1] == 0) {
		t.Fatalf("manifest cursors: %v", m.WorkerGSN)
	}
	for i := 0; i < 300; i++ {
		if err := p.Put([]byte(fmt.Sprintf("post-%04d", i)), []byte("b")); err != nil {
			t.Fatal(err)
		}
	}

	// Restore the image (full sync), then tail from the manifest cursors
	// (the partial stream a replica runs after bootstrap).
	dst := vfs.NewMem()
	r := restoreReplStore(t, fs, "bak", dst, 2)
	defer r.Close()
	cursors := append([]uint64(nil), m.WorkerGSN...)
	applyStream(t, p, r, cursors)

	if want, got := dump(t, p), dump(t, r); !samePairs(want, got) {
		t.Fatalf("replica diverged after checkpoint+stream: %d vs %d pairs", len(want), len(got))
	}
}

// TestReplCheckpointMidTxnKeepsStreamComplete pins the image+stream
// completeness contract on the nastiest cut: a checkpoint taken after a
// cross-partition transaction's legs have applied (and shipped into the
// backlog, advancing the raw watermarks) but before its commit record
// reaches the TXNLOG. Restoring such an image rolls the transaction
// back, so the manifest must lower its stream cursors beneath the
// rolled-back legs — otherwise a replica bootstrapping from the image
// loses the whole transaction silently, because the stream never
// re-sends records below the cursors. WritePrepared holds the
// transaction open across the checkpoint to hit the window
// deterministically.
func TestReplCheckpointMidTxnKeepsStreamComplete(t *testing.T) {
	fs := vfs.NewMem()
	p := openReplStore(t, fs, 2, 0)
	defer p.Close()

	for i := 0; i < 100; i++ {
		if err := p.Put([]byte(fmt.Sprintf("pre-%04d", i)), []byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	var b kv.Batch
	for j := 0; j < 16; j++ {
		b.Put([]byte(fmt.Sprintf("txn-%02d", j)), []byte("t"))
	}
	commit, err := p.WritePrepared(&b)
	if err != nil {
		t.Fatal(err)
	}
	raw := p.ReplLastGSN()
	m, err := p.Checkpoint(fs, "bak")
	if err != nil {
		t.Fatal(err)
	}
	lowered := false
	for i := range m.WorkerGSN {
		if m.WorkerGSN[i] > raw[i] {
			t.Fatalf("worker %d: manifest cursor %d above pre-checkpoint watermark %d", i, m.WorkerGSN[i], raw[i])
		}
		if m.WorkerGSN[i] < raw[i] {
			lowered = true
		}
	}
	if !lowered {
		t.Fatalf("no cursor lowered below the uncommitted legs: manifest %v, watermarks %v", m.WorkerGSN, raw)
	}
	if err := commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := p.Put([]byte(fmt.Sprintf("post-%04d", i)), []byte("b")); err != nil {
			t.Fatal(err)
		}
	}

	dst := vfs.NewMem()
	r := restoreReplStore(t, fs, "bak", dst, 2)
	defer r.Close()
	applyStream(t, p, r, append([]uint64(nil), m.WorkerGSN...))

	if want, got := dump(t, p), dump(t, r); !samePairs(want, got) {
		t.Fatalf("replica diverged on mid-transaction checkpoint: primary %d pairs, replica %d", len(want), len(got))
	}
}

// TestReplCheckpointAfterAbandonedTxnReleasesCursors guards the other
// side of the floor contract: an abandoned transaction (one that will
// never commit) must stop holding checkpoint cursors down, or every
// future full sync would re-stream from — and pin the backlog at — a
// point that never advances.
func TestReplCheckpointAfterAbandonedTxnReleasesCursors(t *testing.T) {
	fs := vfs.NewMem()
	p := openReplStore(t, fs, 2, 0)
	defer p.Close()

	var b kv.Batch
	for j := 0; j < 16; j++ {
		b.Put([]byte(fmt.Sprintf("txn-%02d", j)), []byte("t"))
	}
	commit, err := p.WritePrepared(&b)
	if err != nil {
		t.Fatal(err)
	}
	if err := commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := p.Put([]byte(fmt.Sprintf("k-%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	raw := p.ReplLastGSN()
	m, err := p.Checkpoint(fs, "bak")
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.WorkerGSN {
		if m.WorkerGSN[i] != raw[i] {
			t.Fatalf("worker %d: cursor %d held below watermark %d with no transaction in flight", i, m.WorkerGSN[i], raw[i])
		}
	}
}

// restoreReplStore is restoreStore with replication enabled on the
// restored copy.
func restoreReplStore(t *testing.T, srcFS vfs.FS, bakDir string, dst *vfs.MemFS, workers int) *Store {
	t.Helper()
	place := func(worker int, rel string) string {
		if worker < 0 {
			return "p2/txn/" + rel
		}
		return fmt.Sprintf("p2/inst-%02d/%s", worker, rel)
	}
	if _, err := checkpoint.Restore(srcFS, bakDir, dst, place); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	return openReplStore(t, dst, workers, 0)
}

// TestApplyReplValidation covers the replica apply entry point's edges.
func TestApplyReplValidation(t *testing.T) {
	fs := vfs.NewMem()
	s := openReplStore(t, fs, 2, 0)
	defer s.Close()

	if err := s.ApplyRepl(5, 1, []kv.BatchOp{{Kind: kv.OpPut, Key: []byte("k"), Value: []byte("v")}}); err == nil {
		t.Fatal("out-of-range worker accepted")
	}
	if err := s.ApplyRepl(0, 1, nil); err != nil {
		t.Fatalf("empty record: %v", err)
	}
	if err := s.ApplyRepl(0, 100, []kv.BatchOp{{Kind: kv.OpPut, Key: []byte("k"), Value: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	if got := s.GSN(); got != 100 {
		t.Fatalf("GSN counter did not ratchet to 100: %d", got)
	}
	// A local write after the ratchet must draw a GSN above the stream's.
	if err := s.Put([]byte("local"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := s.GSN(); got != 101 {
		t.Fatalf("local allocation did not continue the sequence: %d", got)
	}
	v, err := s.Get([]byte("k"))
	if err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("applied record not readable: %q %v", v, err)
	}
	s.Close()
	if err := s.ApplyRepl(0, 200, []kv.BatchOp{{Kind: kv.OpDelete, Key: []byte("k")}}); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("apply on closed store: %v", err)
	}
}

// TestReplDisabledKeepsLegacyWatermarks guards the compatibility
// contract: without Options.ReplLog, lastGSN still tracks only
// transaction GSNs and WorkerStats reports no repl watermark.
func TestReplDisabledKeepsLegacyWatermarks(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 2)
	defer s.Close()
	for i := 0; i < 50; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for _, ws := range s.Stats() {
		if ws.ReplLastGSN != 0 {
			t.Fatalf("worker %d reports repl watermark without replication: %d", ws.ID, ws.ReplLastGSN)
		}
	}
	if s.ReplLog() != nil || s.ReplLastGSN() != nil {
		t.Fatal("replication accessors must be nil when disabled")
	}
}
