package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"p2kvs/internal/hotcache"
	"p2kvs/internal/kv"
	"p2kvs/internal/scrub"
)

// Store is a p2KVS instance: the accessing layer plus N workers (Figure
// 9a). It implements kv.Engine, so applications see one standard KV store
// while requests are transparently sharded (§4.1).
type Store struct {
	opts    Options
	workers []*worker
	gsn     atomic.Uint64
	txn     *txnLog
	closed  atomic.Bool

	// Checkpoint state: ckptMu serializes Checkpoint calls; the atomics
	// feed StatsSnapshot and the server's LASTSAVE / INFO.
	ckptMu        sync.Mutex
	ckptCount     atomic.Int64
	ckptBarrierNs atomic.Int64
	lastCkptUnix  atomic.Int64

	// scrubber drives periodic background integrity scrubs
	// (Options.ScrubInterval); nil when disabled.
	scrubber *scrub.Runner

	// cache is the hot-key read cache above the worker queues
	// (Options.HotCacheBytes); nil when disabled. Hits bypass admission
	// entirely; workers invalidate written keys on apply, so a cached
	// value is never served past the acknowledgement of a write that
	// supersedes it. Built fresh at Open — it never survives a crash or
	// restore, so it cannot resurrect pre-reopen state.
	cache *hotcache.Cache
}

var _ kv.Engine = (*Store)(nil)
var _ kv.BatchWriter = (*Store)(nil)
var _ kv.Resumer = (*Store)(nil)

// Open builds the store: recovers the transaction log, opens every
// worker's instance (rolling back uncommitted cross-instance
// transactions), and starts the worker threads.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.EngineFactory == nil {
		return nil, errors.New("core: Options.EngineFactory is required")
	}
	if opts.Partitioner.N() != opts.Workers {
		return nil, errors.New("core: partitioner size must match worker count")
	}
	if opts.ReplLog != nil && opts.ReplLog.Workers() != opts.Workers {
		return nil, errors.New("core: replication log size must match worker count")
	}
	s := &Store{opts: opts}
	if opts.HotCacheBytes > 0 {
		s.cache = hotcache.New(opts.HotCacheBytes)
	}

	var filter func(gsn uint64) bool
	if opts.TxnFS != nil {
		t, committed, maxGSN, err := openTxnLog(opts.TxnFS, opts.TxnDir)
		if err != nil {
			return nil, err
		}
		s.txn = t
		s.gsn.Store(maxGSN)
		filter = func(gsn uint64) bool { return committed[gsn] }
	}

	for i := 0; i < opts.Workers; i++ {
		engine, err := opts.EngineFactory(i, filter)
		if err != nil {
			for _, w := range s.workers {
				w.stop(time.Time{})
			}
			return nil, err
		}
		w := newWorker(i, engine, opts)
		w.gsnSrc = &s.gsn
		w.txn = s.txn
		w.cache = s.cache
		s.workers = append(s.workers, w)
	}
	for _, w := range s.workers {
		w.start()
	}
	s.scrubber = scrub.NewRunner(opts.ScrubInterval, opts.ScrubRate, s.Scrub)
	return s, nil
}

// ScrubStatus reports the background scrubber's most recent pass; the zero
// Status when background scrubbing is disabled.
func (s *Store) ScrubStatus() scrub.Status {
	return s.scrubber.Status()
}

func (s *Store) pick(key []byte) *worker {
	return s.workers[s.opts.Partitioner.Pick(key)]
}

// ---------------------------------------------------------------------------
// Request lifecycle: admission control + deadline-aware submission
// ---------------------------------------------------------------------------

// ctxError maps a context termination into the typed request-lifecycle
// error. The result matches kv.ErrDeadlineExceeded and the context cause
// (context.DeadlineExceeded / context.Canceled) under errors.Is.
func ctxError(cause error) error {
	if cause == nil {
		return kv.ErrDeadlineExceeded
	}
	return fmt.Errorf("%w: %w", kv.ErrDeadlineExceeded, cause)
}

// liveCtx normalizes a request context: contexts that can never end
// (context.Background, context.TODO) are dropped so the context-free hot
// path stays allocation- and check-free.
func liveCtx(ctx context.Context) context.Context {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return ctx
}

// admit runs admission control and enqueues r on w's queue. It is the
// single gate every request passes: already-expired contexts fail here
// (the request never enters the queue), a full queue behaves per
// Options.Admission, and the request carries its context so the worker
// can shed it if it expires while queued.
func (s *Store) admit(ctx context.Context, w *worker, r *request) error {
	if s.closed.Load() {
		return kv.ErrClosed
	}
	ctx = liveCtx(ctx)
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			w.expired.Add(1)
			return ctxError(err)
		}
		r.ctx = ctx
		done = ctx.Done()
	}
	switch s.opts.Admission {
	case AdmitReject:
		err := w.q.tryPush(r)
		if errors.Is(err, kv.ErrOverloaded) {
			w.rejected.Add(1)
			err = fmt.Errorf("core: shard %d: %w", w.id, kv.ErrOverloaded)
		}
		return err
	case AdmitWait:
		if ctx == nil {
			err := w.q.tryPush(r)
			if errors.Is(err, kv.ErrOverloaded) {
				w.rejected.Add(1)
				err = fmt.Errorf("core: shard %d: bounded wait requires a deadline: %w", w.id, kv.ErrOverloaded)
			}
			return err
		}
		err := w.q.pushWait(done, r)
		if errors.Is(err, kv.ErrDeadlineExceeded) {
			w.expired.Add(1)
			return ctxError(ctx.Err())
		}
		return err
	default: // AdmitBlock
		err := w.q.pushWait(done, r)
		if errors.Is(err, kv.ErrDeadlineExceeded) {
			w.expired.Add(1)
			return ctxError(ctx.Err())
		}
		return err
	}
}

// submitCtx admits r and waits for completion. When the context ends
// before the worker completes the request, the caller unblocks with
// kv.ErrDeadlineExceeded and the worker sheds the orphaned request when
// it reaches it (nobody reads its result).
func (s *Store) submitCtx(ctx context.Context, w *worker, r *request) error {
	r.done = make(chan struct{})
	if err := s.admit(ctx, w, r); err != nil {
		return err
	}
	if r.ctx == nil {
		<-r.done
		return r.err
	}
	select {
	case <-r.done:
		return r.err
	case <-r.ctx.Done():
		w.expired.Add(1)
		return ctxError(r.ctx.Err())
	}
}

func (s *Store) submit(w *worker, r *request) error {
	return s.submitCtx(nil, w, r)
}

// writeAdmitErr fast-fails writes aimed at a degraded shard, translated
// per admission policy: AdmitReject reports it as overload (the shard
// cannot absorb the write now) while still matching kv.ErrDegraded.
func (s *Store) writeAdmitErr(w *worker) error {
	err := w.degradedErr()
	if err != nil && s.opts.Admission == AdmitReject {
		w.rejected.Add(1)
		return fmt.Errorf("%w: %w", kv.ErrOverloaded, err)
	}
	return err
}

// Put implements kv.Engine (①②③ in Figure 9b: submit, enqueue, sleep
// until the worker completes the request).
func (s *Store) Put(key, value []byte) error {
	return s.PutCtx(nil, key, value)
}

// PutCtx is Put bounded by a context: the deadline covers queue admission,
// queue wait and execution, and an expired request never reaches the
// engine.
func (s *Store) PutCtx(ctx context.Context, key, value []byte) error {
	w := s.pick(key)
	if err := s.writeAdmitErr(w); err != nil {
		return err
	}
	return s.submitCtx(ctx, w, &request{
		typ:   reqWrite,
		batch: batchRef{ops: []wop{{key: key, value: value}}},
	})
}

// Delete implements kv.Engine.
func (s *Store) Delete(key []byte) error {
	return s.DeleteCtx(nil, key)
}

// DeleteCtx is Delete bounded by a context.
func (s *Store) DeleteCtx(ctx context.Context, key []byte) error {
	w := s.pick(key)
	if err := s.writeAdmitErr(w); err != nil {
		return err
	}
	return s.submitCtx(ctx, w, &request{
		typ:   reqWrite,
		batch: batchRef{ops: []wop{{del: true, key: key}}},
	})
}

// PutAsync is the asynchronous write interface (§4.1): it enqueues and
// returns immediately; cb runs on the worker when the write completes.
// Backpressure applies when the worker queue is full.
func (s *Store) PutAsync(key, value []byte, cb func(error)) error {
	return s.PutAsyncCtx(nil, key, value, cb)
}

// PutAsyncCtx is PutAsync under a context: admission respects the
// deadline, and a request that expires while queued is shed — cb then
// receives kv.ErrDeadlineExceeded.
func (s *Store) PutAsyncCtx(ctx context.Context, key, value []byte, cb func(error)) error {
	w := s.pick(key)
	if err := s.writeAdmitErr(w); err != nil {
		return err
	}
	return s.admit(ctx, w, &request{
		typ:      reqWrite,
		batch:    batchRef{ops: []wop{{key: key, value: value}}},
		callback: cb,
	})
}

// DeleteAsync is the asynchronous deletion interface.
func (s *Store) DeleteAsync(key []byte, cb func(error)) error {
	return s.DeleteAsyncCtx(nil, key, cb)
}

// DeleteAsyncCtx is DeleteAsync under a context.
func (s *Store) DeleteAsyncCtx(ctx context.Context, key []byte, cb func(error)) error {
	w := s.pick(key)
	if err := s.writeAdmitErr(w); err != nil {
		return err
	}
	return s.admit(ctx, w, &request{
		typ:      reqWrite,
		batch:    batchRef{ops: []wop{{del: true, key: key}}},
		callback: cb,
	})
}

// Get implements kv.Engine.
func (s *Store) Get(key []byte) ([]byte, error) {
	return s.GetCtx(nil, key)
}

// GetCtx is Get bounded by a context. With the hot-key cache enabled, a
// hit is served here — no queue admission, no worker round-trip; a miss
// snapshots the key's invalidation watermark before the read is
// submitted and fills the cache only if no write bumped it meanwhile.
func (s *Store) GetCtx(ctx context.Context, key []byte) ([]byte, error) {
	if v, neg, ok := s.cache.Get(key); ok {
		if neg {
			return nil, kv.ErrNotFound
		}
		return v, nil
	}
	ticket := s.cache.Snapshot(key)
	r := &request{typ: reqRead, key: key}
	if err := s.submitCtx(ctx, s.pick(key), r); err != nil {
		return nil, err
	}
	s.cache.Fill(key, r.val, !r.found, ticket)
	if !r.found {
		return nil, kv.ErrNotFound
	}
	return r.val, nil
}

// GetAsync is the asynchronous read interface; cb receives the value (nil
// when absent along with kv.ErrNotFound).
func (s *Store) GetAsync(key []byte, cb func([]byte, error)) error {
	return s.GetAsyncCtx(nil, key, cb)
}

// GetAsyncCtx is GetAsync under a context. A hot-cache hit runs cb
// synchronously, before GetAsyncCtx returns — the read never enters a
// queue.
func (s *Store) GetAsyncCtx(ctx context.Context, key []byte, cb func([]byte, error)) error {
	if v, neg, ok := s.cache.Get(key); ok {
		if neg {
			cb(nil, kv.ErrNotFound)
		} else {
			cb(v, nil)
		}
		return nil
	}
	ticket := s.cache.Snapshot(key)
	r := &request{typ: reqRead, key: key}
	r.callback = func(err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		s.cache.Fill(key, r.val, !r.found, ticket)
		if !r.found {
			cb(nil, kv.ErrNotFound)
			return
		}
		cb(r.val, nil)
	}
	return s.admit(ctx, s.pick(key), r)
}

// MultiGet resolves several keys in one call: keys are grouped per
// worker, each group travels as read requests that OBM merges into the
// engine's multiget, and results return positionally (nil = not found).
// This is the application-facing face of the paper's read batching — a
// caller with a natural read batch gets the Figure 10b path
// deterministically instead of opportunistically.
func (s *Store) MultiGet(keys [][]byte) ([][]byte, error) {
	return s.MultiGetCtx(nil, keys)
}

// MultiGetCtx is MultiGet bounded by one shared context: every per-worker
// read leg carries the same deadline. Hot-cache hits (positive and
// negative) are resolved up front without admission; only the misses
// travel as read legs. The first admission failure short-circuits the
// remaining legs — a rejected multiget must not keep pushing work at
// queues that are already refusing it.
func (s *Store) MultiGetCtx(ctx context.Context, keys [][]byte) ([][]byte, error) {
	if s.closed.Load() {
		return nil, kv.ErrClosed
	}
	out := make([][]byte, len(keys))
	reqs := make([]*request, len(keys))
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for i, k := range keys {
		if v, neg, ok := s.cache.Get(k); ok {
			if !neg {
				out[i] = v
			}
			continue // negative hit: out[i] stays nil = not found
		}
		ticket := s.cache.Snapshot(k)
		r := &request{typ: reqRead, key: k}
		reqs[i] = r
		wg.Add(1)
		r.callback = func(err error) {
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			} else {
				s.cache.Fill(r.key, r.val, !r.found, ticket)
			}
			wg.Done()
		}
		if err := s.admit(ctx, s.pick(k), r); err != nil {
			r.callback(err)
			break // short-circuit: don't amplify overload with more legs
		}
	}
	if err := waitCtx(liveCtx(ctx), &wg); err != nil {
		return nil, err
	}
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	for i, r := range reqs {
		if r != nil && r.found {
			out[i] = r.val
		}
	}
	return out, nil
}

// waitCtx waits for wg, bounded by ctx (already normalized via liveCtx;
// nil waits forever). An early ctx return leaves the stragglers to the
// workers — they shed or complete orphaned legs whose results nobody
// reads.
func waitCtx(ctx context.Context, wg *sync.WaitGroup) error {
	if ctx == nil {
		wg.Wait()
		return nil
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctxError(ctx.Err())
	}
}

// splitByWorker partitions a user batch into per-worker sub-batches.
func (s *Store) splitByWorker(b *kv.Batch) map[*worker]*batchRef {
	subs := make(map[*worker]*batchRef)
	for _, op := range b.Ops() {
		w := s.pick(op.Key)
		ref := subs[w]
		if ref == nil {
			ref = &batchRef{}
			subs[w] = ref
		}
		ref.ops = append(ref.ops, wop{del: op.Kind == kv.OpDelete, key: op.Key, value: op.Value})
	}
	return subs
}

// Write implements kv.BatchWriter. A batch confined to one partition
// commits directly on that instance. A batch spanning partitions becomes
// a GSN transaction (§4.5): begin is persisted, the split WriteBatches
// carry the same GSN into each instance's WAL and are excluded from OBM
// merging, and commit is persisted once every instance acknowledges. A
// crash between begin and commit rolls the pieces back at recovery.
func (s *Store) Write(b *kv.Batch) error {
	return s.WriteCtx(nil, b)
}

// WriteCtx is Write bounded by one context shared by every transaction
// leg: either all legs are admitted under the same deadline or the batch
// fails before the transaction begins; a deadline that fires mid-flight
// leaves the transaction uncommitted, and recovery rolls it back exactly
// like any other failed leg.
func (s *Store) WriteCtx(ctx context.Context, b *kv.Batch) error {
	if b.Len() == 0 {
		return nil
	}
	subs := s.splitByWorker(b)
	if len(subs) == 1 {
		for w, ref := range subs {
			if err := s.writeAdmitErr(w); err != nil {
				return err
			}
			return s.submitCtx(ctx, w, &request{typ: reqWrite, batch: *ref})
		}
	}
	commit, err := s.writePrepared(ctx, subs)
	if err != nil {
		return err
	}
	return commit()
}

// WritePrepared applies the batch like Write but separates the two
// transaction phases: it returns once every instance has durably applied
// its WriteBatch under a fresh GSN, leaving the caller to invoke commit.
// A crash before commit rolls the whole transaction back at recovery on
// every instance (Figure 11) — which is also what makes this the hook
// for layering higher isolation levels, the extension §4.5 sketches.
func (s *Store) WritePrepared(b *kv.Batch) (commit func() error, err error) {
	if b.Len() == 0 {
		return func() error { return nil }, nil
	}
	return s.writePrepared(nil, s.splitByWorker(b))
}

func (s *Store) writePrepared(ctx context.Context, subs map[*worker]*batchRef) (commit func() error, err error) {
	if s.txn == nil {
		return nil, errors.New("core: cross-partition batch requires Options.TxnFS for atomicity")
	}
	ctx = liveCtx(ctx)
	// Fail fast before persisting the transaction begin: a degraded shard
	// cannot apply its piece (and an already-dead context never will), so
	// the whole transaction would only be rolled back at recovery anyway.
	for w := range subs {
		if err := s.writeAdmitErr(w); err != nil {
			return nil, err
		}
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, ctxError(err)
		}
	}
	gsn := s.gsn.Add(1)
	if err := s.txn.begin(gsn); err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	errs := make([]error, 0, len(subs))
	var mu sync.Mutex
	for w, ref := range subs {
		r := &request{typ: reqWrite, batch: *ref, gsn: gsn, noMerge: true}
		r.callback = func(err error) {
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
			wg.Done()
		}
		wg.Add(1)
		// Every leg shares ctx, so all legs observe one deadline.
		if err := s.admit(ctx, w, r); err != nil {
			wg.Done()
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		}
	}
	if err := waitCtx(ctx, &wg); err != nil {
		// Deadline fired mid-transaction: leave it uncommitted, recovery
		// rolls every applied leg back.
		s.txn.abandon(gsn)
		return nil, err
	}
	mu.Lock()
	defer mu.Unlock()
	for _, err := range errs {
		if err != nil {
			// Leave the transaction uncommitted: recovery rolls it back
			// on every instance.
			s.txn.abandon(gsn)
			return nil, err
		}
	}
	return func() error { return s.txn.commit(gsn) }, nil
}

// ---------------------------------------------------------------------------
// Range queries (§4.4)
// ---------------------------------------------------------------------------

// Pair is a key/value result.
type Pair struct {
	Key   []byte
	Value []byte
}

// Range reads every live pair with begin <= key <= end. The request is
// forked into per-instance sub-RANGEs executed in parallel and merged —
// no extra reads, since partitions are disjoint.
func (s *Store) Range(begin, end []byte) ([]Pair, error) {
	return s.RangeCtx(nil, begin, end)
}

// RangeCtx is Range bounded by one context shared by every sub-RANGE leg.
func (s *Store) RangeCtx(ctx context.Context, begin, end []byte) ([]Pair, error) {
	legs := make([]*request, len(s.workers))
	var wg sync.WaitGroup
	for i, w := range s.workers {
		legs[i] = &request{typ: reqScan, scanStart: begin, scanEnd: end, scanLimit: int(^uint(0) >> 1)}
		wg.Add(1)
		go func(w *worker, r *request) {
			defer wg.Done()
			r.err = s.submitCtx(ctx, w, r)
		}(w, legs[i])
	}
	wg.Wait()
	var all []Pair
	for _, r := range legs {
		if r.err != nil {
			return nil, r.err
		}
		for _, p := range r.scanOut {
			all = append(all, Pair{Key: p[0], Value: p[1]})
		}
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].Key, all[j].Key) < 0 })
	return all, nil
}

// Scan reads up to n pairs with key >= start. Under ScanParallel every
// instance scans n pairs and the union is filtered (extra reads traded
// for parallelism, §4.4); under ScanMerged a global merged iterator reads
// exactly n pairs serially.
func (s *Store) Scan(start []byte, n int) ([]Pair, error) {
	return s.ScanCtx(nil, start, n)
}

// ScanCtx is Scan bounded by one context shared by every scan leg.
func (s *Store) ScanCtx(ctx context.Context, start []byte, n int) ([]Pair, error) {
	if n <= 0 {
		return nil, nil
	}
	if s.opts.Scan == ScanMerged {
		return s.scanMerged(start, n)
	}
	legs := make([]*request, len(s.workers))
	var wg sync.WaitGroup
	for i, w := range s.workers {
		legs[i] = &request{typ: reqScan, scanStart: start, scanLimit: n}
		wg.Add(1)
		go func(w *worker, r *request) {
			defer wg.Done()
			r.err = s.submitCtx(ctx, w, r)
		}(w, legs[i])
	}
	wg.Wait()
	var all []Pair
	for _, r := range legs {
		if r.err != nil {
			return nil, r.err
		}
		for _, p := range r.scanOut {
			all = append(all, Pair{Key: p[0], Value: p[1]})
		}
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].Key, all[j].Key) < 0 })
	if len(all) > n {
		all = all[:n]
	}
	return all, nil
}

func (s *Store) scanMerged(start []byte, n int) ([]Pair, error) {
	it, err := s.NewIterator()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []Pair
	if start == nil {
		it.SeekToFirst()
	} else {
		it.Seek(start)
	}
	for ; it.Valid() && len(out) < n; it.Next() {
		out = append(out, Pair{
			Key:   append([]byte(nil), it.Key()...),
			Value: append([]byte(nil), it.Value()...),
		})
	}
	return out, it.Error()
}

// NewIterator implements kv.Engine with a global merged iterator over the
// per-instance iterators — the RocksDB-MergeIterator-style construction
// from §4.4. It bypasses the worker queues (engines are thread-safe and
// iterators snapshot).
func (s *Store) NewIterator() (kv.Iterator, error) {
	if s.closed.Load() {
		return nil, kv.ErrClosed
	}
	children := make([]kv.Iterator, 0, len(s.workers))
	for _, w := range s.workers {
		it, err := w.engine.NewIterator()
		if err != nil {
			for _, c := range children {
				c.Close()
			}
			return nil, err
		}
		children = append(children, it)
	}
	return &mergedIter{children: children}, nil
}

// ---------------------------------------------------------------------------
// Lifecycle / stats
// ---------------------------------------------------------------------------

// Flush implements kv.Engine: flushes every instance.
func (s *Store) Flush() error {
	if s.closed.Load() {
		return kv.ErrClosed
	}
	for _, w := range s.workers {
		if err := w.engine.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Caps reports the store's capabilities (batch writes always; reads are
// per-key with internal OBM batching).
func (s *Store) Caps() kv.Caps { return kv.Caps{BatchWrite: true} }

// Workers reports the configured worker count.
func (s *Store) Workers() int { return len(s.workers) }

// Engine exposes worker i's engine for instrumentation (benchmarks pull
// per-instance Perf counters).
func (s *Store) Engine(i int) kv.Engine { return s.workers[i].engine }

// Stats aggregates per-worker activity.
func (s *Store) Stats() []WorkerStats {
	out := make([]WorkerStats, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.stats()
	}
	return out
}

// Resume implements kv.Resumer by fanning out to every worker engine that
// supports it, re-attempting recovery of degraded shards. Healthy shards
// treat it as a no-op.
func (s *Store) Resume() error {
	if s.closed.Load() {
		return kv.ErrClosed
	}
	var firstErr error
	for _, w := range s.workers {
		if r, ok := w.engine.(kv.Resumer); ok {
			if err := r.Resume(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Scrub implements kv.Scrubber by fanning out to every worker engine that
// supports it, in parallel — shards are independent stores on independent
// directories, and the caller's rate limiter is shared, so the aggregate
// read rate still honors the budget. Engines without scrub support are
// skipped (they contribute nothing to the result).
func (s *Store) Scrub(ctx context.Context, lim kv.RateLimiter) (kv.ScrubResult, error) {
	if s.closed.Load() {
		return kv.ScrubResult{}, kv.ErrClosed
	}
	results := make([]kv.ScrubResult, len(s.workers))
	errs := make([]error, len(s.workers))
	var wg sync.WaitGroup
	for i, w := range s.workers {
		sc, ok := w.engine.(kv.Scrubber)
		if !ok {
			continue
		}
		wg.Add(1)
		go func(i int, sc kv.Scrubber) {
			defer wg.Done()
			results[i], errs[i] = sc.Scrub(ctx, lim)
		}(i, sc)
	}
	wg.Wait()
	var res kv.ScrubResult
	var firstErr error
	for i := range results {
		res.Merge(results[i])
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
	}
	return res, firstErr
}

// Close implements kv.Engine: drains queues, stops workers, closes
// instances and the transaction log. A crash of any worker engine close
// is reported but the remaining workers still close (§4.6: a crash of any
// worker triggers closing the whole system).
//
// With Options.DrainTimeout > 0 the drain is bounded by one shared
// deadline across all workers: requests still queued when it passes
// complete with kv.ErrClosed instead of Close hanging behind a stalled
// engine, and the wedge is reported in Close's error.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.scrubber.Close() // aborts an in-flight pass; nil-safe
	var deadline time.Time
	if s.opts.DrainTimeout > 0 {
		deadline = time.Now().Add(s.opts.DrainTimeout)
	}
	var firstErr error
	for _, w := range s.workers {
		if err := w.stop(deadline); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.txn != nil {
		if err := s.txn.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ---------------------------------------------------------------------------
// Merged iterator
// ---------------------------------------------------------------------------

type mergedIter struct {
	children []kv.Iterator
	cur      int // index of child with the smallest key, -1 when invalid
	err      error
}

func (m *mergedIter) refresh() {
	m.cur = -1
	for i, c := range m.children {
		if err := c.Error(); err != nil && m.err == nil {
			m.err = err
		}
		if !c.Valid() {
			continue
		}
		if m.cur < 0 || bytes.Compare(c.Key(), m.children[m.cur].Key()) < 0 {
			m.cur = i
		}
	}
}

func (m *mergedIter) SeekToFirst() {
	for _, c := range m.children {
		c.SeekToFirst()
	}
	m.refresh()
}

func (m *mergedIter) Seek(target []byte) {
	for _, c := range m.children {
		c.Seek(target)
	}
	m.refresh()
}

func (m *mergedIter) Next() {
	if m.cur < 0 {
		return
	}
	m.children[m.cur].Next()
	m.refresh()
}

func (m *mergedIter) Valid() bool   { return m.err == nil && m.cur >= 0 }
func (m *mergedIter) Key() []byte   { return m.children[m.cur].Key() }
func (m *mergedIter) Value() []byte { return m.children[m.cur].Value() }
func (m *mergedIter) Error() error  { return m.err }

func (m *mergedIter) Close() error {
	var first error
	for _, c := range m.children {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
