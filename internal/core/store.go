package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"p2kvs/internal/hotcache"
	"p2kvs/internal/keyspace"
	"p2kvs/internal/kv"
	"p2kvs/internal/reshard"
	"p2kvs/internal/scrub"
)

// routing is one generation of the store's request routing: the
// partitioner snapshot and the worker set it maps into, always swapped
// together in a single atomic pointer so no request can ever combine a
// new ring's Pick with an old worker slice (or vice versa). For elastic
// stores part holds a keyspace.Consistent value captured from the Ring,
// not the Ring itself — the Ring advances at cutover, but a routing
// generation must stay internally consistent for as long as anything
// references it.
type routing struct {
	part    keyspace.Partitioner
	workers []*worker
}

func (rt *routing) pick(key []byte) *worker {
	return rt.workers[rt.part.Pick(key)]
}

// split partitions a user batch into per-worker sub-batches under this
// routing generation.
func (rt *routing) split(b *kv.Batch) map[*worker]*batchRef {
	subs := make(map[*worker]*batchRef)
	for _, op := range b.Ops() {
		w := rt.pick(op.Key)
		ref := subs[w]
		if ref == nil {
			ref = &batchRef{}
			subs[w] = ref
		}
		ref.ops = append(ref.ops, wop{del: op.Kind == kv.OpDelete, key: op.Key, value: op.Value})
	}
	return subs
}

// Store is a p2KVS instance: the accessing layer plus N workers (Figure
// 9a). It implements kv.Engine, so applications see one standard KV store
// while requests are transparently sharded (§4.1).
type Store struct {
	opts   Options
	gsn    atomic.Uint64
	txn    *txnLog
	closed atomic.Bool

	// route is the current routing generation. routeMu orders request
	// submission against reshard cutover: every submit path holds the
	// read side from routing lookup through enqueue (released before
	// waiting on completion), and the cutover flip holds the write side
	// — so when the flip commits, every admitted request is already in
	// the queue of a worker that owned its key under the generation it
	// was routed by.
	route   atomic.Pointer[routing]
	routeMu sync.RWMutex

	// ring is non-nil for elastic stores (Options.Partitioner is a
	// *keyspace.Ring); only those can Reshard.
	ring *keyspace.Ring
	// resh is the active resharding run (nil in steady state); workers
	// consult it on every applied write batch to double-write moved keys.
	// reshMu serializes Reshard calls; tracker feeds reshard_* stats;
	// epoch is the committed ring generation (persisted in TOPOLOGY).
	resh    atomic.Pointer[reshardRun]
	reshMu  sync.Mutex
	tracker reshard.Tracker
	epoch   atomic.Uint64
	// preparedTxns counts cross-partition transactions between begin and
	// commit/abandon; cutover waits for it to reach zero so a ring flip
	// never lands between a transaction's prepared legs and its commit
	// record.
	preparedTxns atomic.Int64
	// retired holds workers dropped by a shrink: their goroutines are
	// parked and they receive no traffic, but their engines stay open
	// until Close so iterators created before the cutover remain valid.
	retiredMu sync.Mutex
	retired   []*worker

	// Checkpoint state: ckptMu serializes Checkpoint calls; the atomics
	// feed StatsSnapshot and the server's LASTSAVE / INFO.
	ckptMu        sync.Mutex
	ckptCount     atomic.Int64
	ckptBarrierNs atomic.Int64
	lastCkptUnix  atomic.Int64

	// scrubber drives periodic background integrity scrubs
	// (Options.ScrubInterval); nil when disabled.
	scrubber *scrub.Runner

	// cache is the hot-key read cache above the worker queues
	// (Options.HotCacheBytes); nil when disabled. Hits bypass admission
	// entirely; workers invalidate written keys on apply, so a cached
	// value is never served past the acknowledgement of a write that
	// supersedes it. Built fresh at Open — it never survives a crash or
	// restore, so it cannot resurrect pre-reopen state.
	cache *hotcache.Cache
}

var _ kv.Engine = (*Store)(nil)
var _ kv.BatchWriter = (*Store)(nil)
var _ kv.Resumer = (*Store)(nil)

// ws returns the current routing generation's worker set.
func (s *Store) ws() []*worker { return s.route.Load().workers }

// Open builds the store: recovers the transaction log, opens every
// worker's instance (rolling back uncommitted cross-instance
// transactions), and starts the worker threads. For elastic stores it
// also validates the persisted topology and finishes a cleanup
// interrupted by a crash.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.EngineFactory == nil {
		return nil, errors.New("core: Options.EngineFactory is required")
	}
	if opts.Partitioner.N() != opts.Workers {
		return nil, errors.New("core: partitioner size must match worker count")
	}
	if opts.ReplLog != nil && opts.ReplLog.Workers() != opts.Workers {
		return nil, errors.New("core: replication log size must match worker count")
	}
	s := &Store{opts: opts}
	s.ring, _ = opts.Partitioner.(*keyspace.Ring)
	if s.ring != nil && opts.ReplLog != nil {
		return nil, errors.New("core: replication and elastic resharding are mutually exclusive (the replication backlog is sized to a fixed worker count)")
	}
	if opts.HotCacheBytes > 0 {
		s.cache = hotcache.New(opts.HotCacheBytes)
	}

	var topo *reshard.Topology
	var filter func(gsn uint64) bool
	if opts.TxnFS != nil {
		var err error
		topo, err = reshard.LoadTopology(opts.TxnFS, opts.TxnDir)
		if err != nil {
			return nil, err
		}
		if topo != nil {
			if topo.Workers != opts.Workers {
				return nil, fmt.Errorf("core: store topology records %d workers but Options.Workers is %d — elastic stores must be reopened at their committed worker count",
					topo.Workers, opts.Workers)
			}
			s.epoch.Store(topo.Epoch)
			s.tracker.SetEpoch(topo.Epoch)
		}
		t, committed, maxGSN, err := openTxnLog(opts.TxnFS, opts.TxnDir)
		if err != nil {
			return nil, err
		}
		s.txn = t
		s.gsn.Store(maxGSN)
		filter = func(gsn uint64) bool { return committed[gsn] }
	}

	workers := make([]*worker, 0, opts.Workers)
	fail := func(err error) (*Store, error) {
		for _, w := range workers {
			w.stop(time.Time{})
		}
		if s.txn != nil {
			s.txn.close()
		}
		return nil, err
	}
	for i := 0; i < opts.Workers; i++ {
		engine, err := opts.EngineFactory(i, filter)
		if err != nil {
			return fail(err)
		}
		w := newWorker(i, engine, opts)
		w.gsnSrc = &s.gsn
		w.txn = s.txn
		w.cache = s.cache
		w.resh = &s.resh
		workers = append(workers, w)
	}

	// A crash after a reshard's commit point but before its cleanup
	// finished leaves TOPOLOGY in the cleanup state: the new ring is
	// committed, but moved ranges may still sit on their old owners and
	// retired instance directories may remain. Finish the job before
	// serving — the workers are not started yet, so direct engine access
	// is safe.
	if topo != nil && topo.State == reshard.TopologyCleanup {
		for i, w := range workers {
			if _, err := deleteForeignDirect(w.engine, opts.Partitioner, i); err != nil {
				return fail(fmt.Errorf("core: recovering interrupted reshard cleanup on worker %d: %w", i, err))
			}
		}
		if opts.InstanceReset != nil {
			for id := topo.Workers; id < topo.PrevWorkers; id++ {
				if err := opts.InstanceReset(id); err != nil {
					return fail(fmt.Errorf("core: retiring worker %d instance: %w", id, err))
				}
			}
		}
		topo.State = reshard.TopologyActive
		if err := reshard.SaveTopology(opts.TxnFS, opts.TxnDir, *topo); err != nil {
			return fail(err)
		}
	}

	part := opts.Partitioner
	if s.ring != nil {
		c, _ := s.ring.Snapshot()
		part = c
	}
	s.route.Store(&routing{part: part, workers: workers})
	for _, w := range workers {
		w.start()
	}
	s.scrubber = scrub.NewRunner(opts.ScrubInterval, opts.ScrubRate, s.Scrub)
	return s, nil
}

// ScrubStatus reports the background scrubber's most recent pass; the zero
// Status when background scrubbing is disabled.
func (s *Store) ScrubStatus() scrub.Status {
	return s.scrubber.Status()
}

func (s *Store) pick(key []byte) *worker {
	return s.route.Load().pick(key)
}

// ---------------------------------------------------------------------------
// Request lifecycle: admission control + deadline-aware submission
// ---------------------------------------------------------------------------

// ctxError maps a context termination into the typed request-lifecycle
// error. The result matches kv.ErrDeadlineExceeded and the context cause
// (context.DeadlineExceeded / context.Canceled) under errors.Is.
func ctxError(cause error) error {
	if cause == nil {
		return kv.ErrDeadlineExceeded
	}
	return fmt.Errorf("%w: %w", kv.ErrDeadlineExceeded, cause)
}

// liveCtx normalizes a request context: contexts that can never end
// (context.Background, context.TODO) are dropped so the context-free hot
// path stays allocation- and check-free.
func liveCtx(ctx context.Context) context.Context {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return ctx
}

// admit runs admission control and enqueues r on w's queue. It is the
// single gate every request passes: already-expired contexts fail here
// (the request never enters the queue), a full queue behaves per
// Options.Admission, and the request carries its context so the worker
// can shed it if it expires while queued. Callers route and admit under
// routeMu.RLock so the enqueue lands on a worker that owns the key under
// the routing generation it was picked from.
func (s *Store) admit(ctx context.Context, w *worker, r *request) error {
	if s.closed.Load() {
		return kv.ErrClosed
	}
	ctx = liveCtx(ctx)
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			w.expired.Add(1)
			return ctxError(err)
		}
		r.ctx = ctx
		done = ctx.Done()
	}
	switch s.opts.Admission {
	case AdmitReject:
		err := w.q.tryPush(r)
		if errors.Is(err, kv.ErrOverloaded) {
			w.rejected.Add(1)
			err = fmt.Errorf("core: shard %d: %w", w.id, kv.ErrOverloaded)
		}
		return err
	case AdmitWait:
		if ctx == nil {
			err := w.q.tryPush(r)
			if errors.Is(err, kv.ErrOverloaded) {
				w.rejected.Add(1)
				err = fmt.Errorf("core: shard %d: bounded wait requires a deadline: %w", w.id, kv.ErrOverloaded)
			}
			return err
		}
		err := w.q.pushWait(done, r)
		if errors.Is(err, kv.ErrDeadlineExceeded) {
			w.expired.Add(1)
			return ctxError(ctx.Err())
		}
		return err
	default: // AdmitBlock
		err := w.q.pushWait(done, r)
		if errors.Is(err, kv.ErrDeadlineExceeded) {
			w.expired.Add(1)
			return ctxError(ctx.Err())
		}
		return err
	}
}

// waitDone blocks until the worker completes r (admitted via admit, with
// r.done set). When the request's context ends first, the caller unblocks
// with kv.ErrDeadlineExceeded and the worker sheds the orphaned request
// when it reaches it (nobody reads its result).
func (s *Store) waitDone(w *worker, r *request) error {
	if r.ctx == nil {
		<-r.done
		return r.err
	}
	select {
	case <-r.done:
		return r.err
	case <-r.ctx.Done():
		w.expired.Add(1)
		return ctxError(r.ctx.Err())
	}
}

// submitCtx routes r by key, admits it under the routing read lock, and
// waits for completion with the lock released.
func (s *Store) submitCtx(ctx context.Context, key []byte, r *request) error {
	r.done = make(chan struct{})
	s.routeMu.RLock()
	w := s.route.Load().pick(key)
	err := s.admit(ctx, w, r)
	s.routeMu.RUnlock()
	if err != nil {
		return err
	}
	return s.waitDone(w, r)
}

// writeAdmitErr fast-fails writes aimed at a degraded shard, translated
// per admission policy: AdmitReject reports it as overload (the shard
// cannot absorb the write now) while still matching kv.ErrDegraded.
func (s *Store) writeAdmitErr(w *worker) error {
	err := w.degradedErr()
	if err != nil && s.opts.Admission == AdmitReject {
		w.rejected.Add(1)
		return fmt.Errorf("%w: %w", kv.ErrOverloaded, err)
	}
	return err
}

// writeOne routes, health-checks and admits a single-key write under one
// routing read lock. With cb nil it waits for completion (sync path);
// otherwise cb runs on the worker when the write completes (async path).
func (s *Store) writeOne(ctx context.Context, op wop, cb func(error)) error {
	r := &request{typ: reqWrite, batch: batchRef{ops: []wop{op}}}
	if cb != nil {
		r.callback = cb
	} else {
		r.done = make(chan struct{})
	}
	s.routeMu.RLock()
	w := s.route.Load().pick(op.key)
	err := s.writeAdmitErr(w)
	if err == nil {
		err = s.admit(ctx, w, r)
	}
	s.routeMu.RUnlock()
	if err != nil || cb != nil {
		return err
	}
	return s.waitDone(w, r)
}

// Put implements kv.Engine (①②③ in Figure 9b: submit, enqueue, sleep
// until the worker completes the request).
func (s *Store) Put(key, value []byte) error {
	return s.PutCtx(nil, key, value)
}

// PutCtx is Put bounded by a context: the deadline covers queue admission,
// queue wait and execution, and an expired request never reaches the
// engine.
func (s *Store) PutCtx(ctx context.Context, key, value []byte) error {
	return s.writeOne(ctx, wop{key: key, value: value}, nil)
}

// Delete implements kv.Engine.
func (s *Store) Delete(key []byte) error {
	return s.DeleteCtx(nil, key)
}

// DeleteCtx is Delete bounded by a context.
func (s *Store) DeleteCtx(ctx context.Context, key []byte) error {
	return s.writeOne(ctx, wop{del: true, key: key}, nil)
}

// PutAsync is the asynchronous write interface (§4.1): it enqueues and
// returns immediately; cb runs on the worker when the write completes.
// Backpressure applies when the worker queue is full.
func (s *Store) PutAsync(key, value []byte, cb func(error)) error {
	return s.PutAsyncCtx(nil, key, value, cb)
}

// PutAsyncCtx is PutAsync under a context: admission respects the
// deadline, and a request that expires while queued is shed — cb then
// receives kv.ErrDeadlineExceeded.
func (s *Store) PutAsyncCtx(ctx context.Context, key, value []byte, cb func(error)) error {
	return s.writeOne(ctx, wop{key: key, value: value}, cb)
}

// DeleteAsync is the asynchronous deletion interface.
func (s *Store) DeleteAsync(key []byte, cb func(error)) error {
	return s.DeleteAsyncCtx(nil, key, cb)
}

// DeleteAsyncCtx is DeleteAsync under a context.
func (s *Store) DeleteAsyncCtx(ctx context.Context, key []byte, cb func(error)) error {
	return s.writeOne(ctx, wop{del: true, key: key}, cb)
}

// Get implements kv.Engine.
func (s *Store) Get(key []byte) ([]byte, error) {
	return s.GetCtx(nil, key)
}

// GetCtx is Get bounded by a context. With the hot-key cache enabled, a
// hit is served here — no queue admission, no worker round-trip; a miss
// snapshots the key's invalidation watermark before the read is
// submitted and fills the cache only if no write bumped it meanwhile.
func (s *Store) GetCtx(ctx context.Context, key []byte) ([]byte, error) {
	if v, neg, ok := s.cache.Get(key); ok {
		if neg {
			return nil, kv.ErrNotFound
		}
		return v, nil
	}
	ticket := s.cache.Snapshot(key)
	r := &request{typ: reqRead, key: key}
	if err := s.submitCtx(ctx, key, r); err != nil {
		return nil, err
	}
	s.cache.Fill(key, r.val, !r.found, ticket)
	if !r.found {
		return nil, kv.ErrNotFound
	}
	return r.val, nil
}

// GetAsync is the asynchronous read interface; cb receives the value (nil
// when absent along with kv.ErrNotFound).
func (s *Store) GetAsync(key []byte, cb func([]byte, error)) error {
	return s.GetAsyncCtx(nil, key, cb)
}

// GetAsyncCtx is GetAsync under a context. A hot-cache hit runs cb
// synchronously, before GetAsyncCtx returns — the read never enters a
// queue.
func (s *Store) GetAsyncCtx(ctx context.Context, key []byte, cb func([]byte, error)) error {
	if v, neg, ok := s.cache.Get(key); ok {
		if neg {
			cb(nil, kv.ErrNotFound)
		} else {
			cb(v, nil)
		}
		return nil
	}
	ticket := s.cache.Snapshot(key)
	r := &request{typ: reqRead, key: key}
	r.callback = func(err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		s.cache.Fill(key, r.val, !r.found, ticket)
		if !r.found {
			cb(nil, kv.ErrNotFound)
			return
		}
		cb(r.val, nil)
	}
	s.routeMu.RLock()
	w := s.route.Load().pick(key)
	err := s.admit(ctx, w, r)
	s.routeMu.RUnlock()
	return err
}

// MultiGet resolves several keys in one call: keys are grouped per
// worker, each group travels as read requests that OBM merges into the
// engine's multiget, and results return positionally (nil = not found).
// This is the application-facing face of the paper's read batching — a
// caller with a natural read batch gets the Figure 10b path
// deterministically instead of opportunistically.
func (s *Store) MultiGet(keys [][]byte) ([][]byte, error) {
	return s.MultiGetCtx(nil, keys)
}

// MultiGetCtx is MultiGet bounded by one shared context: every per-worker
// read leg carries the same deadline. Hot-cache hits (positive and
// negative) are resolved up front without admission; only the misses
// travel as read legs. The first admission failure short-circuits the
// remaining legs — a rejected multiget must not keep pushing work at
// queues that are already refusing it. All legs are admitted under one
// routing read lock, so every leg of one multiget observes the same ring
// generation.
func (s *Store) MultiGetCtx(ctx context.Context, keys [][]byte) ([][]byte, error) {
	if s.closed.Load() {
		return nil, kv.ErrClosed
	}
	out := make([][]byte, len(keys))
	reqs := make([]*request, len(keys))
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	s.routeMu.RLock()
	rt := s.route.Load()
	for i, k := range keys {
		if v, neg, ok := s.cache.Get(k); ok {
			if !neg {
				out[i] = v
			}
			continue // negative hit: out[i] stays nil = not found
		}
		ticket := s.cache.Snapshot(k)
		r := &request{typ: reqRead, key: k}
		reqs[i] = r
		wg.Add(1)
		r.callback = func(err error) {
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			} else {
				s.cache.Fill(r.key, r.val, !r.found, ticket)
			}
			wg.Done()
		}
		if err := s.admit(ctx, rt.pick(k), r); err != nil {
			r.callback(err)
			break // short-circuit: don't amplify overload with more legs
		}
	}
	s.routeMu.RUnlock()
	if err := waitCtx(liveCtx(ctx), &wg); err != nil {
		return nil, err
	}
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	for i, r := range reqs {
		if r != nil && r.found {
			out[i] = r.val
		}
	}
	return out, nil
}

// waitCtx waits for wg, bounded by ctx (already normalized via liveCtx;
// nil waits forever). An early ctx return leaves the stragglers to the
// workers — they shed or complete orphaned legs whose results nobody
// reads.
func waitCtx(ctx context.Context, wg *sync.WaitGroup) error {
	if ctx == nil {
		wg.Wait()
		return nil
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctxError(ctx.Err())
	}
}

// Write implements kv.BatchWriter. A batch confined to one partition
// commits directly on that instance. A batch spanning partitions becomes
// a GSN transaction (§4.5): begin is persisted, the split WriteBatches
// carry the same GSN into each instance's WAL and are excluded from OBM
// merging, and commit is persisted once every instance acknowledges. A
// crash between begin and commit rolls the pieces back at recovery.
func (s *Store) Write(b *kv.Batch) error {
	return s.WriteCtx(nil, b)
}

// WriteCtx is Write bounded by one context shared by every transaction
// leg: either all legs are admitted under the same deadline or the batch
// fails before the transaction begins; a deadline that fires mid-flight
// leaves the transaction uncommitted, and recovery rolls it back exactly
// like any other failed leg.
func (s *Store) WriteCtx(ctx context.Context, b *kv.Batch) error {
	if b.Len() == 0 {
		return nil
	}
	s.routeMu.RLock()
	rt := s.route.Load()
	subs := rt.split(b)
	if len(subs) == 1 {
		for w, ref := range subs {
			err := s.writeAdmitErr(w)
			var r *request
			if err == nil {
				r = &request{typ: reqWrite, batch: *ref, done: make(chan struct{})}
				err = s.admit(ctx, w, r)
			}
			s.routeMu.RUnlock()
			if err != nil {
				return err
			}
			return s.waitDone(w, r)
		}
	}
	s.routeMu.RUnlock()
	commit, err := s.writePrepared(ctx, b)
	if err != nil {
		return err
	}
	return commit()
}

// WritePrepared applies the batch like Write but separates the two
// transaction phases: it returns once every instance has durably applied
// its WriteBatch under a fresh GSN, leaving the caller to invoke commit.
// A crash before commit rolls the whole transaction back at recovery on
// every instance (Figure 11) — which is also what makes this the hook
// for layering higher isolation levels, the extension §4.5 sketches.
// Note that an online reshard's cutover waits for prepared transactions
// to settle, so a commit closure held open for long stalls (and
// eventually fails) a concurrent Reshard.
func (s *Store) WritePrepared(b *kv.Batch) (commit func() error, err error) {
	if b.Len() == 0 {
		return func() error { return nil }, nil
	}
	return s.writePrepared(nil, b)
}

func (s *Store) writePrepared(ctx context.Context, b *kv.Batch) (commit func() error, err error) {
	if s.txn == nil {
		return nil, errors.New("core: cross-partition batch requires Options.TxnFS for atomicity")
	}
	ctx = liveCtx(ctx)
	// Split, health-check and admit under one routing read lock: every
	// leg of the transaction targets the owner of its keys under a
	// single ring generation, and a reshard cutover cannot slip between
	// the split and the enqueues.
	s.routeMu.RLock()
	rt := s.route.Load()
	subs := rt.split(b)
	// Fail fast before persisting the transaction begin: a degraded shard
	// cannot apply its piece (and an already-dead context never will), so
	// the whole transaction would only be rolled back at recovery anyway.
	for w := range subs {
		if err := s.writeAdmitErr(w); err != nil {
			s.routeMu.RUnlock()
			return nil, err
		}
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			s.routeMu.RUnlock()
			return nil, ctxError(err)
		}
	}
	gsn := s.gsn.Add(1)
	if err := s.txn.begin(gsn); err != nil {
		s.routeMu.RUnlock()
		return nil, err
	}
	s.preparedTxns.Add(1)
	var settleOnce sync.Once
	settle := func() { settleOnce.Do(func() { s.preparedTxns.Add(-1) }) }
	var wg sync.WaitGroup
	errs := make([]error, 0, len(subs))
	var mu sync.Mutex
	for w, ref := range subs {
		r := &request{typ: reqWrite, batch: *ref, gsn: gsn, noMerge: true}
		r.callback = func(err error) {
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
			wg.Done()
		}
		wg.Add(1)
		// Every leg shares ctx, so all legs observe one deadline.
		if err := s.admit(ctx, w, r); err != nil {
			wg.Done()
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		}
	}
	s.routeMu.RUnlock()
	if err := waitCtx(ctx, &wg); err != nil {
		// Deadline fired mid-transaction: leave it uncommitted, recovery
		// rolls every applied leg back.
		s.txn.abandon(gsn)
		settle()
		return nil, err
	}
	mu.Lock()
	defer mu.Unlock()
	for _, err := range errs {
		if err != nil {
			// Leave the transaction uncommitted: recovery rolls it back
			// on every instance.
			s.txn.abandon(gsn)
			settle()
			return nil, err
		}
	}
	return func() error {
		defer settle()
		return s.txn.commit(gsn)
	}, nil
}

// ---------------------------------------------------------------------------
// Range queries (§4.4)
// ---------------------------------------------------------------------------

// Pair is a key/value result.
type Pair struct {
	Key   []byte
	Value []byte
}

// scanFan admits one scan leg per worker under a single routing read
// lock, then waits for the legs with the lock released. On elastic
// stores each leg carries an ownership filter for the captured ring
// generation: during a reshard (and until its cleanup finishes) a
// worker's engine may hold keys it does not own — stale moved ranges on
// old owners, bulk-copied pairs on new ones — and exactly one leg owns
// each key, so the union is exact with no duplicates or phantoms.
func (s *Store) scanFan(ctx context.Context, mk func() *request) ([]Pair, error) {
	if s.closed.Load() {
		return nil, kv.ErrClosed
	}
	s.routeMu.RLock()
	rt := s.route.Load()
	legs := make([]*request, len(rt.workers))
	admitErrs := make([]error, len(rt.workers))
	for i, w := range rt.workers {
		r := mk()
		r.done = make(chan struct{})
		if s.ring != nil {
			r.scanPart, r.scanSelf = rt.part, i
		}
		legs[i] = r
		admitErrs[i] = s.admit(ctx, w, r)
	}
	s.routeMu.RUnlock()
	var firstErr error
	for i, r := range legs {
		if admitErrs[i] != nil {
			if firstErr == nil {
				firstErr = admitErrs[i]
			}
			continue
		}
		if err := s.waitDone(rt.workers[i], r); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	var all []Pair
	for _, r := range legs {
		for _, p := range r.scanOut {
			all = append(all, Pair{Key: p[0], Value: p[1]})
		}
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].Key, all[j].Key) < 0 })
	return all, nil
}

// Range reads every live pair with begin <= key <= end. The request is
// forked into per-instance sub-RANGEs executed in parallel and merged —
// no extra reads, since partitions are disjoint.
func (s *Store) Range(begin, end []byte) ([]Pair, error) {
	return s.RangeCtx(nil, begin, end)
}

// RangeCtx is Range bounded by one context shared by every sub-RANGE leg.
func (s *Store) RangeCtx(ctx context.Context, begin, end []byte) ([]Pair, error) {
	return s.scanFan(ctx, func() *request {
		return &request{typ: reqScan, scanStart: begin, scanEnd: end, scanLimit: int(^uint(0) >> 1)}
	})
}

// Scan reads up to n pairs with key >= start. Under ScanParallel every
// instance scans n pairs and the union is filtered (extra reads traded
// for parallelism, §4.4); under ScanMerged a global merged iterator reads
// exactly n pairs serially.
func (s *Store) Scan(start []byte, n int) ([]Pair, error) {
	return s.ScanCtx(nil, start, n)
}

// ScanCtx is Scan bounded by one context shared by every scan leg.
func (s *Store) ScanCtx(ctx context.Context, start []byte, n int) ([]Pair, error) {
	if n <= 0 {
		return nil, nil
	}
	if s.opts.Scan == ScanMerged {
		return s.scanMerged(start, n)
	}
	all, err := s.scanFan(ctx, func() *request {
		return &request{typ: reqScan, scanStart: start, scanLimit: n}
	})
	if err != nil {
		return nil, err
	}
	if len(all) > n {
		all = all[:n]
	}
	return all, nil
}

func (s *Store) scanMerged(start []byte, n int) ([]Pair, error) {
	it, err := s.NewIterator()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []Pair
	if start == nil {
		it.SeekToFirst()
	} else {
		it.Seek(start)
	}
	for ; it.Valid() && len(out) < n; it.Next() {
		out = append(out, Pair{
			Key:   append([]byte(nil), it.Key()...),
			Value: append([]byte(nil), it.Value()...),
		})
	}
	return out, it.Error()
}

// NewIterator implements kv.Engine with a global merged iterator over the
// per-instance iterators — the RocksDB-MergeIterator-style construction
// from §4.4. It bypasses the worker queues (engines are thread-safe and
// iterators snapshot). On elastic stores the merged view filters each
// child by key ownership under the captured ring generation, so stale
// moved ranges awaiting cleanup (or mid-copy duplicates) are never
// yielded; children are created under the routing read lock so the
// worker set cannot be retired mid-construction.
func (s *Store) NewIterator() (kv.Iterator, error) {
	if s.closed.Load() {
		return nil, kv.ErrClosed
	}
	s.routeMu.RLock()
	rt := s.route.Load()
	children := make([]kv.Iterator, 0, len(rt.workers))
	for _, w := range rt.workers {
		it, err := w.engine.NewIterator()
		if err != nil {
			s.routeMu.RUnlock()
			for _, c := range children {
				c.Close()
			}
			return nil, err
		}
		children = append(children, it)
	}
	s.routeMu.RUnlock()
	m := &mergedIter{children: children}
	if s.ring != nil {
		m.part = rt.part
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Lifecycle / stats
// ---------------------------------------------------------------------------

// Flush implements kv.Engine: flushes every instance.
func (s *Store) Flush() error {
	if s.closed.Load() {
		return kv.ErrClosed
	}
	for _, w := range s.ws() {
		if err := w.engine.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Caps reports the store's capabilities (batch writes always; reads are
// per-key with internal OBM batching).
func (s *Store) Caps() kv.Caps { return kv.Caps{BatchWrite: true} }

// Workers reports the current worker count (it changes when an elastic
// store reshards).
func (s *Store) Workers() int { return len(s.ws()) }

// Engine exposes worker i's engine for instrumentation (benchmarks pull
// per-instance Perf counters).
func (s *Store) Engine(i int) kv.Engine { return s.ws()[i].engine }

// Stats aggregates per-worker activity.
func (s *Store) Stats() []WorkerStats {
	workers := s.ws()
	out := make([]WorkerStats, len(workers))
	for i, w := range workers {
		out[i] = w.stats()
	}
	return out
}

// Resume implements kv.Resumer by fanning out to every worker engine that
// supports it, re-attempting recovery of degraded shards. Healthy shards
// treat it as a no-op.
func (s *Store) Resume() error {
	if s.closed.Load() {
		return kv.ErrClosed
	}
	var firstErr error
	for _, w := range s.ws() {
		if r, ok := w.engine.(kv.Resumer); ok {
			if err := r.Resume(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Scrub implements kv.Scrubber by fanning out to every worker engine that
// supports it, in parallel — shards are independent stores on independent
// directories, and the caller's rate limiter is shared, so the aggregate
// read rate still honors the budget. Engines without scrub support are
// skipped (they contribute nothing to the result).
func (s *Store) Scrub(ctx context.Context, lim kv.RateLimiter) (kv.ScrubResult, error) {
	if s.closed.Load() {
		return kv.ScrubResult{}, kv.ErrClosed
	}
	workers := s.ws()
	results := make([]kv.ScrubResult, len(workers))
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		sc, ok := w.engine.(kv.Scrubber)
		if !ok {
			continue
		}
		wg.Add(1)
		go func(i int, sc kv.Scrubber) {
			defer wg.Done()
			results[i], errs[i] = sc.Scrub(ctx, lim)
		}(i, sc)
	}
	wg.Wait()
	var res kv.ScrubResult
	var firstErr error
	for i := range results {
		res.Merge(results[i])
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
	}
	return res, firstErr
}

// Close implements kv.Engine: drains queues, stops workers, closes
// instances and the transaction log. A crash of any worker engine close
// is reported but the remaining workers still close (§4.6: a crash of any
// worker triggers closing the whole system).
//
// With Options.DrainTimeout > 0 the drain is bounded by one shared
// deadline across all workers: requests still queued when it passes
// complete with kv.ErrClosed instead of Close hanging behind a stalled
// engine, and the wedge is reported in Close's error.
//
// An in-flight Reshard observes the close through its own enqueue
// failures, aborts, and stops the workers it spawned itself.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.scrubber.Close() // aborts an in-flight pass; nil-safe
	var deadline time.Time
	if s.opts.DrainTimeout > 0 {
		deadline = time.Now().Add(s.opts.DrainTimeout)
	}
	var firstErr error
	for _, w := range s.ws() {
		if err := w.stop(deadline); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Workers parked by a shrink keep their engines open for iterator
	// safety; close them now.
	s.retiredMu.Lock()
	retired := s.retired
	s.retired = nil
	s.retiredMu.Unlock()
	for _, w := range retired {
		if err := w.engine.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.txn != nil {
		if err := s.txn.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ---------------------------------------------------------------------------
// Merged iterator
// ---------------------------------------------------------------------------

type mergedIter struct {
	children []kv.Iterator
	cur      int // index of child with the smallest key, -1 when invalid
	err      error
	// part, when non-nil, filters child i to the keys it owns under the
	// routing generation the iterator was created against (elastic
	// stores only): a stale copy of a moved key on its old owner must
	// not shadow — or duplicate — the authoritative copy. In steady
	// state no child holds foreign keys and the filter never skips.
	part keyspace.Partitioner
}

// skipForeign advances each child past keys it does not own.
func (m *mergedIter) skipForeign() {
	if m.part == nil {
		return
	}
	for i, c := range m.children {
		for c.Valid() && m.part.Pick(c.Key()) != i {
			c.Next()
		}
	}
}

func (m *mergedIter) refresh() {
	m.skipForeign()
	m.cur = -1
	for i, c := range m.children {
		if err := c.Error(); err != nil && m.err == nil {
			m.err = err
		}
		if !c.Valid() {
			continue
		}
		if m.cur < 0 || bytes.Compare(c.Key(), m.children[m.cur].Key()) < 0 {
			m.cur = i
		}
	}
}

func (m *mergedIter) SeekToFirst() {
	for _, c := range m.children {
		c.SeekToFirst()
	}
	m.refresh()
}

func (m *mergedIter) Seek(target []byte) {
	for _, c := range m.children {
		c.Seek(target)
	}
	m.refresh()
}

func (m *mergedIter) Next() {
	if m.cur < 0 {
		return
	}
	m.children[m.cur].Next()
	m.refresh()
}

func (m *mergedIter) Valid() bool   { return m.err == nil && m.cur >= 0 }
func (m *mergedIter) Key() []byte   { return m.children[m.cur].Key() }
func (m *mergedIter) Value() []byte { return m.children[m.cur].Value() }
func (m *mergedIter) Error() error  { return m.err }

func (m *mergedIter) Close() error {
	var first error
	for _, c := range m.children {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
