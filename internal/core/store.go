package core

import (
	"bytes"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"p2kvs/internal/kv"
)

// Store is a p2KVS instance: the accessing layer plus N workers (Figure
// 9a). It implements kv.Engine, so applications see one standard KV store
// while requests are transparently sharded (§4.1).
type Store struct {
	opts    Options
	workers []*worker
	gsn     atomic.Uint64
	txn     *txnLog
	closed  atomic.Bool
}

var _ kv.Engine = (*Store)(nil)
var _ kv.BatchWriter = (*Store)(nil)
var _ kv.Resumer = (*Store)(nil)

// Open builds the store: recovers the transaction log, opens every
// worker's instance (rolling back uncommitted cross-instance
// transactions), and starts the worker threads.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.EngineFactory == nil {
		return nil, errors.New("core: Options.EngineFactory is required")
	}
	if opts.Partitioner.N() != opts.Workers {
		return nil, errors.New("core: partitioner size must match worker count")
	}
	s := &Store{opts: opts}

	var filter func(gsn uint64) bool
	if opts.TxnFS != nil {
		t, committed, maxGSN, err := openTxnLog(opts.TxnFS, opts.TxnDir)
		if err != nil {
			return nil, err
		}
		s.txn = t
		s.gsn.Store(maxGSN)
		filter = func(gsn uint64) bool { return committed[gsn] }
	}

	for i := 0; i < opts.Workers; i++ {
		engine, err := opts.EngineFactory(i, filter)
		if err != nil {
			for _, w := range s.workers {
				w.stop()
			}
			return nil, err
		}
		w := newWorker(i, engine, opts)
		s.workers = append(s.workers, w)
	}
	for _, w := range s.workers {
		w.start()
	}
	return s, nil
}

func (s *Store) pick(key []byte) *worker {
	return s.workers[s.opts.Partitioner.Pick(key)]
}

func (s *Store) submit(w *worker, r *request) error {
	if s.closed.Load() {
		return kv.ErrClosed
	}
	r.done = make(chan struct{})
	if !w.q.push(r) {
		return kv.ErrClosed
	}
	<-r.done
	return r.err
}

// Put implements kv.Engine (①②③ in Figure 9b: submit, enqueue, sleep
// until the worker completes the request).
func (s *Store) Put(key, value []byte) error {
	w := s.pick(key)
	if err := w.degradedErr(); err != nil {
		return err
	}
	return s.submit(w, &request{
		typ:   reqWrite,
		batch: batchRef{ops: []wop{{key: key, value: value}}},
	})
}

// Delete implements kv.Engine.
func (s *Store) Delete(key []byte) error {
	w := s.pick(key)
	if err := w.degradedErr(); err != nil {
		return err
	}
	return s.submit(w, &request{
		typ:   reqWrite,
		batch: batchRef{ops: []wop{{del: true, key: key}}},
	})
}

// PutAsync is the asynchronous write interface (§4.1): it enqueues and
// returns immediately; cb runs on the worker when the write completes.
// Backpressure applies when the worker queue is full.
func (s *Store) PutAsync(key, value []byte, cb func(error)) error {
	if s.closed.Load() {
		return kv.ErrClosed
	}
	w := s.pick(key)
	if err := w.degradedErr(); err != nil {
		return err
	}
	r := &request{
		typ:      reqWrite,
		batch:    batchRef{ops: []wop{{key: key, value: value}}},
		callback: cb,
	}
	if !w.q.push(r) {
		return kv.ErrClosed
	}
	return nil
}

// DeleteAsync is the asynchronous deletion interface.
func (s *Store) DeleteAsync(key []byte, cb func(error)) error {
	if s.closed.Load() {
		return kv.ErrClosed
	}
	w := s.pick(key)
	if err := w.degradedErr(); err != nil {
		return err
	}
	r := &request{
		typ:      reqWrite,
		batch:    batchRef{ops: []wop{{del: true, key: key}}},
		callback: cb,
	}
	if !w.q.push(r) {
		return kv.ErrClosed
	}
	return nil
}

// Get implements kv.Engine.
func (s *Store) Get(key []byte) ([]byte, error) {
	r := &request{typ: reqRead, key: key}
	if err := s.submit(s.pick(key), r); err != nil {
		return nil, err
	}
	if !r.found {
		return nil, kv.ErrNotFound
	}
	return r.val, nil
}

// GetAsync is the asynchronous read interface; cb receives the value (nil
// when absent along with kv.ErrNotFound).
func (s *Store) GetAsync(key []byte, cb func([]byte, error)) error {
	if s.closed.Load() {
		return kv.ErrClosed
	}
	r := &request{typ: reqRead, key: key}
	r.callback = func(err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		if !r.found {
			cb(nil, kv.ErrNotFound)
			return
		}
		cb(r.val, nil)
	}
	if !s.pick(key).q.push(r) {
		return kv.ErrClosed
	}
	return nil
}

// MultiGet resolves several keys in one call: keys are grouped per
// worker, each group travels as read requests that OBM merges into the
// engine's multiget, and results return positionally (nil = not found).
// This is the application-facing face of the paper's read batching — a
// caller with a natural read batch gets the Figure 10b path
// deterministically instead of opportunistically.
func (s *Store) MultiGet(keys [][]byte) ([][]byte, error) {
	if s.closed.Load() {
		return nil, kv.ErrClosed
	}
	out := make([][]byte, len(keys))
	reqs := make([]*request, len(keys))
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for i, k := range keys {
		r := &request{typ: reqRead, key: k}
		reqs[i] = r
		wg.Add(1)
		r.callback = func(err error) {
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
			wg.Done()
		}
		if !s.pick(k).q.push(r) {
			r.callback(kv.ErrClosed)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for i, r := range reqs {
		if r.found {
			out[i] = r.val
		}
	}
	return out, nil
}

// Write implements kv.BatchWriter. A batch confined to one partition
// commits directly on that instance. A batch spanning partitions becomes
// a GSN transaction (§4.5): begin is persisted, the split WriteBatches
// carry the same GSN into each instance's WAL and are excluded from OBM
// merging, and commit is persisted once every instance acknowledges. A
// crash between begin and commit rolls the pieces back at recovery.
func (s *Store) Write(b *kv.Batch) error {
	if b.Len() == 0 {
		return nil
	}
	subs := make(map[*worker]*batchRef)
	for _, op := range b.Ops() {
		w := s.pick(op.Key)
		ref := subs[w]
		if ref == nil {
			ref = &batchRef{}
			subs[w] = ref
		}
		ref.ops = append(ref.ops, wop{del: op.Kind == kv.OpDelete, key: op.Key, value: op.Value})
	}
	if len(subs) == 1 {
		for w, ref := range subs {
			if err := w.degradedErr(); err != nil {
				return err
			}
			return s.submit(w, &request{typ: reqWrite, batch: *ref})
		}
	}
	commit, err := s.writePrepared(subs)
	if err != nil {
		return err
	}
	return commit()
}

// WritePrepared applies the batch like Write but separates the two
// transaction phases: it returns once every instance has durably applied
// its WriteBatch under a fresh GSN, leaving the caller to invoke commit.
// A crash before commit rolls the whole transaction back at recovery on
// every instance (Figure 11) — which is also what makes this the hook
// for layering higher isolation levels, the extension §4.5 sketches.
func (s *Store) WritePrepared(b *kv.Batch) (commit func() error, err error) {
	if b.Len() == 0 {
		return func() error { return nil }, nil
	}
	subs := make(map[*worker]*batchRef)
	for _, op := range b.Ops() {
		w := s.pick(op.Key)
		ref := subs[w]
		if ref == nil {
			ref = &batchRef{}
			subs[w] = ref
		}
		ref.ops = append(ref.ops, wop{del: op.Kind == kv.OpDelete, key: op.Key, value: op.Value})
	}
	return s.writePrepared(subs)
}

func (s *Store) writePrepared(subs map[*worker]*batchRef) (commit func() error, err error) {
	if s.txn == nil {
		return nil, errors.New("core: cross-partition batch requires Options.TxnFS for atomicity")
	}
	// Fail fast before persisting the transaction begin: a degraded shard
	// cannot apply its piece, so the whole transaction would only be
	// rolled back at recovery anyway.
	for w := range subs {
		if err := w.degradedErr(); err != nil {
			return nil, err
		}
	}
	gsn := s.gsn.Add(1)
	if err := s.txn.begin(gsn); err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	errs := make([]error, 0, len(subs))
	var mu sync.Mutex
	for w, ref := range subs {
		r := &request{typ: reqWrite, batch: *ref, gsn: gsn, noMerge: true}
		r.callback = func(err error) {
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
			wg.Done()
		}
		wg.Add(1)
		if !w.q.push(r) {
			wg.Done()
			mu.Lock()
			errs = append(errs, kv.ErrClosed)
			mu.Unlock()
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Leave the transaction uncommitted: recovery rolls it back
			// on every instance.
			return nil, err
		}
	}
	return func() error { return s.txn.commit(gsn) }, nil
}

// ---------------------------------------------------------------------------
// Range queries (§4.4)
// ---------------------------------------------------------------------------

// Pair is a key/value result.
type Pair struct {
	Key   []byte
	Value []byte
}

// Range reads every live pair with begin <= key <= end. The request is
// forked into per-instance sub-RANGEs executed in parallel and merged —
// no extra reads, since partitions are disjoint.
func (s *Store) Range(begin, end []byte) ([]Pair, error) {
	legs := make([]*request, len(s.workers))
	var wg sync.WaitGroup
	for i, w := range s.workers {
		legs[i] = &request{typ: reqScan, scanStart: begin, scanEnd: end, scanLimit: int(^uint(0) >> 1)}
		wg.Add(1)
		go func(w *worker, r *request) {
			defer wg.Done()
			r.err = s.submit(w, r)
		}(w, legs[i])
	}
	wg.Wait()
	var all []Pair
	for _, r := range legs {
		if r.err != nil {
			return nil, r.err
		}
		for _, p := range r.scanOut {
			all = append(all, Pair{Key: p[0], Value: p[1]})
		}
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].Key, all[j].Key) < 0 })
	return all, nil
}

// Scan reads up to n pairs with key >= start. Under ScanParallel every
// instance scans n pairs and the union is filtered (extra reads traded
// for parallelism, §4.4); under ScanMerged a global merged iterator reads
// exactly n pairs serially.
func (s *Store) Scan(start []byte, n int) ([]Pair, error) {
	if n <= 0 {
		return nil, nil
	}
	if s.opts.Scan == ScanMerged {
		return s.scanMerged(start, n)
	}
	legs := make([]*request, len(s.workers))
	var wg sync.WaitGroup
	for i, w := range s.workers {
		legs[i] = &request{typ: reqScan, scanStart: start, scanLimit: n}
		wg.Add(1)
		go func(w *worker, r *request) {
			defer wg.Done()
			r.err = s.submit(w, r)
		}(w, legs[i])
	}
	wg.Wait()
	var all []Pair
	for _, r := range legs {
		if r.err != nil {
			return nil, r.err
		}
		for _, p := range r.scanOut {
			all = append(all, Pair{Key: p[0], Value: p[1]})
		}
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].Key, all[j].Key) < 0 })
	if len(all) > n {
		all = all[:n]
	}
	return all, nil
}

func (s *Store) scanMerged(start []byte, n int) ([]Pair, error) {
	it, err := s.NewIterator()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []Pair
	if start == nil {
		it.SeekToFirst()
	} else {
		it.Seek(start)
	}
	for ; it.Valid() && len(out) < n; it.Next() {
		out = append(out, Pair{
			Key:   append([]byte(nil), it.Key()...),
			Value: append([]byte(nil), it.Value()...),
		})
	}
	return out, it.Error()
}

// NewIterator implements kv.Engine with a global merged iterator over the
// per-instance iterators — the RocksDB-MergeIterator-style construction
// from §4.4. It bypasses the worker queues (engines are thread-safe and
// iterators snapshot).
func (s *Store) NewIterator() (kv.Iterator, error) {
	if s.closed.Load() {
		return nil, kv.ErrClosed
	}
	children := make([]kv.Iterator, 0, len(s.workers))
	for _, w := range s.workers {
		it, err := w.engine.NewIterator()
		if err != nil {
			for _, c := range children {
				c.Close()
			}
			return nil, err
		}
		children = append(children, it)
	}
	return &mergedIter{children: children}, nil
}

// ---------------------------------------------------------------------------
// Lifecycle / stats
// ---------------------------------------------------------------------------

// Flush implements kv.Engine: flushes every instance.
func (s *Store) Flush() error {
	if s.closed.Load() {
		return kv.ErrClosed
	}
	for _, w := range s.workers {
		if err := w.engine.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Caps reports the store's capabilities (batch writes always; reads are
// per-key with internal OBM batching).
func (s *Store) Caps() kv.Caps { return kv.Caps{BatchWrite: true} }

// Workers reports the configured worker count.
func (s *Store) Workers() int { return len(s.workers) }

// Engine exposes worker i's engine for instrumentation (benchmarks pull
// per-instance Perf counters).
func (s *Store) Engine(i int) kv.Engine { return s.workers[i].engine }

// Stats aggregates per-worker activity.
func (s *Store) Stats() []WorkerStats {
	out := make([]WorkerStats, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.stats()
	}
	return out
}

// Resume implements kv.Resumer by fanning out to every worker engine that
// supports it, re-attempting recovery of degraded shards. Healthy shards
// treat it as a no-op.
func (s *Store) Resume() error {
	if s.closed.Load() {
		return kv.ErrClosed
	}
	var firstErr error
	for _, w := range s.workers {
		if r, ok := w.engine.(kv.Resumer); ok {
			if err := r.Resume(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Close implements kv.Engine: drains queues, stops workers, closes
// instances and the transaction log. A crash of any worker engine close
// is reported but the remaining workers still close (§4.6: a crash of any
// worker triggers closing the whole system).
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	var firstErr error
	for _, w := range s.workers {
		if err := w.stop(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.txn != nil {
		if err := s.txn.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ---------------------------------------------------------------------------
// Merged iterator
// ---------------------------------------------------------------------------

type mergedIter struct {
	children []kv.Iterator
	cur      int // index of child with the smallest key, -1 when invalid
	err      error
}

func (m *mergedIter) refresh() {
	m.cur = -1
	for i, c := range m.children {
		if err := c.Error(); err != nil && m.err == nil {
			m.err = err
		}
		if !c.Valid() {
			continue
		}
		if m.cur < 0 || bytes.Compare(c.Key(), m.children[m.cur].Key()) < 0 {
			m.cur = i
		}
	}
}

func (m *mergedIter) SeekToFirst() {
	for _, c := range m.children {
		c.SeekToFirst()
	}
	m.refresh()
}

func (m *mergedIter) Seek(target []byte) {
	for _, c := range m.children {
		c.Seek(target)
	}
	m.refresh()
}

func (m *mergedIter) Next() {
	if m.cur < 0 {
		return
	}
	m.children[m.cur].Next()
	m.refresh()
}

func (m *mergedIter) Valid() bool   { return m.err == nil && m.cur >= 0 }
func (m *mergedIter) Key() []byte   { return m.children[m.cur].Key() }
func (m *mergedIter) Value() []byte { return m.children[m.cur].Value() }
func (m *mergedIter) Error() error  { return m.err }

func (m *mergedIter) Close() error {
	var first error
	for _, c := range m.children {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
