package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"p2kvs/internal/keyspace"
	"p2kvs/internal/kv"
	"p2kvs/internal/lsm"
	"p2kvs/internal/vfs"
)

// faultLSMFactory is lsmFactory over an arbitrary (fault-injecting) FS
// with a small retry budget so degradation is reachable in test time.
func faultLSMFactory(fs vfs.FS, root string) EngineFactory {
	return func(id int, filter func(uint64) bool) (kv.Engine, error) {
		opts := lsm.RocksDBOptions(fs)
		opts.MemTableSize = 32 << 10
		opts.BaseLevelSize = 128 << 10
		opts.TargetFileSize = 32 << 10
		opts.SyncWAL = true
		opts.BgMaxRetries = 2
		opts.BgBaseBackoff = time.Millisecond
		opts.BgMaxBackoff = 2 * time.Millisecond
		return lsm.OpenWith(fmt.Sprintf("%s/inst-%02d", root, id), opts, lsm.OpenOptions{RecoverFilter: filter})
	}
}

// TestDegradedShardFailsFastOthersServe: one shard's engine degrades to
// read-only under a persistent fault. The store must (a) fail writes to
// that shard fast with kv.ErrDegraded — including multi-partition
// batches, before any txn-log record is written — (b) keep serving reads
// everywhere and writes on the healthy shards, (c) report the state in
// Stats(), and (d) restore the shard via Store.Resume() with no data
// loss.
func TestDegradedShardFailsFastOthersServe(t *testing.T) {
	const workers = 3
	mem := vfs.NewMem()
	ffs := vfs.NewFault(mem)
	opts := DefaultOptions(faultLSMFactory(ffs, "p2"))
	opts.Workers = workers
	opts.TxnFS = mem
	opts.TxnDir = "p2/txn"
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// keyFor scans for the i-th key landing on a given shard, using the
	// same hash partitioner the store was built with.
	part := keyspace.NewHash(workers)
	keyFor := func(shard, i int) []byte {
		seen := 0
		for j := 0; ; j++ {
			k := []byte(fmt.Sprintf("key-%05d", j))
			if part.Pick(k) == shard {
				if seen == i {
					return k
				}
				seen++
			}
		}
	}

	const perShard = 10
	val := func(shard, i int) []byte { return []byte(fmt.Sprintf("v-%d-%d", shard, i)) }
	for shard := 0; shard < workers; shard++ {
		for i := 0; i < perShard; i++ {
			if err := s.Put(keyFor(shard, i), val(shard, i)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Persistent fault on everything shard 0 creates: its flush exhausts
	// the retry budget and the engine degrades to read-only.
	ffs.Inject(vfs.Rule{Op: vfs.OpCreate, Path: "inst-00"})
	if err := s.Engine(0).Flush(); !errors.Is(err, kv.ErrDegraded) {
		t.Fatalf("shard-0 flush err = %v, want ErrDegraded", err)
	}

	st := s.Stats()
	if st[0].Health.State != kv.StateReadOnly {
		t.Fatalf("shard 0 health = %v, want read-only", st[0].Health.State)
	}
	for i := 1; i < workers; i++ {
		if st[i].Health.State != kv.StateHealthy {
			t.Fatalf("shard %d health = %v, want healthy", i, st[i].Health.State)
		}
	}

	// Writes to the degraded shard fail fast.
	if err := s.Put(keyFor(0, perShard), []byte("x")); !errors.Is(err, kv.ErrDegraded) {
		t.Fatalf("put to degraded shard err = %v, want ErrDegraded", err)
	}
	if err := s.Delete(keyFor(0, 0)); !errors.Is(err, kv.ErrDegraded) {
		t.Fatalf("delete on degraded shard err = %v, want ErrDegraded", err)
	}
	// A cross-partition batch touching the degraded shard fails before
	// the GSN transaction begins — no stranded txn-log record.
	var b kv.Batch
	b.Put(keyFor(0, perShard), []byte("x"))
	b.Put(keyFor(1, perShard), []byte("x"))
	if err := s.Write(&b); !errors.Is(err, kv.ErrDegraded) {
		t.Fatalf("cross-shard batch err = %v, want ErrDegraded", err)
	}

	// Healthy shards still take writes; every shard still serves reads.
	if err := s.Put(keyFor(1, perShard), val(1, perShard)); err != nil {
		t.Fatalf("healthy shard rejected write: %v", err)
	}
	for shard := 0; shard < workers; shard++ {
		for i := 0; i < perShard; i++ {
			v, err := s.Get(keyFor(shard, i))
			if err != nil || string(v) != string(val(shard, i)) {
				t.Fatalf("get shard %d key %d = %q, %v", shard, i, v, err)
			}
		}
	}

	// Fault clears; Resume restores shard 0 end to end.
	ffs.ClearRules()
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats()[0].Health.State != kv.StateHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("shard 0 did not recover: %+v", s.Stats()[0].Health)
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Put(keyFor(0, perShard), val(0, perShard)); err != nil {
		t.Fatalf("post-resume write: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for shard := 0; shard < workers; shard++ {
		for i := 0; i <= perShard; i++ {
			if shard == 2 && i == perShard {
				continue // never written
			}
			v, err := s.Get(keyFor(shard, i))
			if err != nil || string(v) != string(val(shard, i)) {
				t.Fatalf("post-resume get shard %d key %d = %q, %v", shard, i, v, err)
			}
		}
	}
}
