// Package core implements p2KVS itself — the paper's contribution: an
// accessing layer that hash-partitions the key space over N worker
// threads, each owning a private KVS instance, with a queue-based
// opportunistic batching mechanism (OBM, Algorithm 1) on every worker,
// synchronous and asynchronous request interfaces, parallel range
// queries, and GSN-based cross-instance transactions with crash recovery.
package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"p2kvs/internal/keyspace"
	"p2kvs/internal/kv"
	"p2kvs/internal/reshard"
)

// reqType is the request-type OBM merges by: consecutive same-type
// requests form one batched request (§4.3); SCAN never merges.
type reqType uint8

// Request types.
const (
	reqWrite   reqType = iota // PUT / UPDATE / DELETE (always batchable together)
	reqRead                   // GET
	reqScan                   // SCAN / RANGE leg — executed alone
	reqBarrier                // checkpoint barrier — pauses the worker, never merged
)

// request is one unit of work in a worker queue.
type request struct {
	typ reqType

	// Write-type payload: one or more ops (a user WriteBatch keeps its
	// ops together in a single request).
	batch batchRef
	gsn   uint64
	// noMerge excludes this request from OBM (transaction legs, §4.5).
	noMerge bool
	// streamGSN, when non-zero, marks a replicated record being applied on
	// a replica: the worker ships it to its own backlog under this
	// primary-assigned GSN instead of allocating a fresh one. Always
	// noMerge. It is never passed to the engine's WriteGSN — engine-level
	// GSN tagging stays reserved for transaction legs, whose records the
	// recover filter checks against the committed-transaction map.
	streamGSN uint64

	// Resharding bulk-copy payload: when copySeen is non-nil this write
	// carries snapshot-pinned pairs streamed to a new owner, and the
	// worker re-checks each key against the double-write SeenSet at apply
	// time — a key mirrored after copyFloor has a fresher value already
	// in (or ahead in) this queue, so the stale copy is dropped and
	// counted in copySkip. The check must happen at apply, not enqueue:
	// a mirror racing with this batch records its key before enqueueing,
	// so whichever order the two land in the queue, the mirror's value
	// survives.
	copySeen  *reshard.SeenSet
	copyFloor uint64
	copySkip  *atomic.Int64

	// Read-type payload.
	key []byte

	// Scan payload. scanEnd, when non-nil, bounds a RANGE leg
	// (inclusive); scanLimit bounds a SCAN leg. scanPart, when non-nil,
	// restricts the leg to keys owned by partition scanSelf under that
	// partitioner snapshot (elastic stores: a worker's engine may hold
	// foreign keys mid-reshard); skipped keys do not consume scanLimit.
	scanStart []byte
	scanEnd   []byte
	scanLimit int
	scanPart  keyspace.Partitioner
	scanSelf  int

	// Results.
	val     []byte
	found   bool
	err     error
	scanOut [][2][]byte

	// Completion: exactly one of done / callback is set. The sync path
	// blocks on done (the paper's "suspends itself without further CPU
	// consumption", ②); the async path gets callback(err) from the
	// worker (the Put(K,V,callback) extension, §4.1).
	done     chan struct{}
	callback func(err error)

	// Barrier payload (reqBarrier, always noMerge). The worker signals
	// barrierReady when it reaches the request — every operation enqueued
	// before the barrier has been applied — then parks until
	// barrierRelease closes. While all workers are parked the store is at
	// a cross-instance GSN watermark the checkpoint can capture.
	barrierReady   *sync.WaitGroup
	barrierRelease chan struct{}

	// ctx, when non-nil, carries the request deadline. It is set only
	// for contexts that can actually expire (Done() != nil), so the
	// context-free hot path stays unchanged. Workers shed requests
	// whose context has expired before they reach the engine.
	ctx context.Context

	enqueuedAt time.Time
}

// batchRef is the write payload; ops mirror kv.BatchOp semantics but stay
// a private flat struct (worker.go converts to kv.Batch when committing).
type batchRef struct {
	ops []wop
}

type wop struct {
	del   bool
	key   []byte
	value []byte
}

func (r *request) complete(err error) {
	r.err = err
	if r.callback != nil {
		r.callback(err)
		return
	}
	close(r.done)
}

// expired reports whether the request's context ended (deadline or
// cancellation) — such requests are dead work and never reach the engine.
func (r *request) expired() bool {
	return r.ctx != nil && r.ctx.Err() != nil
}

// reqQueue is the per-worker request queue. It is a mutex-guarded deque
// rather than a channel because OBM needs to *peek* at the head request's
// type without committing to dequeue it (Algorithm 1 line 8).
//
// Consumer-side waiting uses a sync.Cond (the single worker goroutine is
// only ever woken by push or close). Producer-side waiting uses per-waiter
// channels instead, so a producer blocked on a full queue can also wake on
// its request's ctx.Done — sync.Cond has no cancellable wait. Wakeups are
// broadcast-style (every waiter re-checks under the lock), which makes an
// abandoned wakeup harmless.
type reqQueue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	items    []*request
	head     int
	capacity int
	closed   bool

	// spaceWaiters holds one channel per producer blocked in a full-queue
	// push; freeing space (or closing) closes them all.
	spaceWaiters []chan struct{}

	// highWater is the maximum queue depth ever observed — the overload
	// signal surfaced in WorkerStats.
	highWater int
}

func newReqQueue(capacity int) *reqQueue {
	q := &reqQueue{capacity: capacity}
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

func (q *reqQueue) len() int { return len(q.items) - q.head }

func (q *reqQueue) enqueueLocked(r *request) {
	r.enqueuedAt = time.Now()
	q.items = append(q.items, r)
	if d := q.len(); d > q.highWater {
		q.highWater = d
	}
	q.notEmpty.Signal()
}

func (q *reqQueue) wakeSpaceLocked() {
	for _, ch := range q.spaceWaiters {
		close(ch)
	}
	q.spaceWaiters = q.spaceWaiters[:0]
}

// push enqueues, blocking while the queue is full (backpressure for the
// async interface). Returns false if the queue is closed. This is the
// historical AdmitBlock fast path; pushWait adds cancellation.
func (q *reqQueue) push(r *request) bool {
	return q.pushWait(nil, r) == nil
}

// pushWait enqueues, blocking while the queue is full. A nil done waits
// indefinitely (exact push semantics); otherwise the wait aborts with
// kv.ErrDeadlineExceeded when done fires. Returns kv.ErrClosed if the
// queue is closed before the request lands.
func (q *reqQueue) pushWait(done <-chan struct{}, r *request) error {
	q.mu.Lock()
	for {
		if q.closed {
			q.mu.Unlock()
			return kv.ErrClosed
		}
		if q.len() < q.capacity {
			break
		}
		ch := make(chan struct{})
		q.spaceWaiters = append(q.spaceWaiters, ch)
		q.mu.Unlock()
		select {
		case <-ch:
		case <-done:
			q.removeSpaceWaiter(ch)
			return kv.ErrDeadlineExceeded
		}
		q.mu.Lock()
	}
	q.enqueueLocked(r)
	q.mu.Unlock()
	return nil
}

// tryPush enqueues without waiting: kv.ErrOverloaded when the queue is
// full, kv.ErrClosed when closed. The AdmitReject fast path.
func (q *reqQueue) tryPush(r *request) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return kv.ErrClosed
	}
	if q.len() >= q.capacity {
		return kv.ErrOverloaded
	}
	q.enqueueLocked(r)
	return nil
}

// removeSpaceWaiter unregisters an aborted waiter. If the channel was
// already closed by a broadcast the wakeup is simply dropped — safe,
// because broadcasts wake every waiter and each re-checks under the lock.
func (q *reqQueue) removeSpaceWaiter(ch chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, w := range q.spaceWaiters {
		if w == ch {
			q.spaceWaiters = append(q.spaceWaiters[:i], q.spaceWaiters[i+1:]...)
			return
		}
	}
}

// popBatch implements the queue side of Algorithm 1: it blocks for the
// first live request, then — when obm is true — greedily takes consecutive
// same-type mergeable requests up to max. SCANs and noMerge requests are
// returned alone.
//
// Requests whose context already expired are shed instead of batched
// (head-of-line shedding): they come back in expired, never occupying an
// OBM slot, and the caller completes them with kv.ErrDeadlineExceeded
// without touching the engine. batch == nil with a non-empty expired means
// "only dead work was pending — call again"; batch == nil and expired ==
// nil means closed-and-drained.
func (q *reqQueue) popBatch(obm bool, max int) (batch, expired []*request) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.len() == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	// Shed expired requests at the head before forming a batch.
	for q.len() > 0 && q.items[q.head].expired() {
		expired = append(expired, q.items[q.head])
		q.head++
	}
	if q.len() == 0 {
		q.compact()
		if len(expired) > 0 {
			q.wakeSpaceLocked()
		}
		return nil, expired
	}
	first := q.items[q.head]
	q.head++
	batch = []*request{first}
	if obm && first.typ != reqScan && !first.noMerge {
		for q.len() > 0 && len(batch) < max {
			next := q.items[q.head]
			if next.expired() {
				q.head++
				expired = append(expired, next)
				continue
			}
			if next.typ != first.typ || next.noMerge {
				break
			}
			q.head++
			batch = append(batch, next)
		}
	}
	q.compact()
	q.wakeSpaceLocked()
	return batch, expired
}

// drain removes and returns every still-queued request. Callers close the
// queue first so no new pushes land; the Close drain-deadline path fails
// the returned requests with kv.ErrClosed instead of waiting for a wedged
// worker to reach them.
func (q *reqQueue) drain() []*request {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := append([]*request(nil), q.items[q.head:]...)
	for i := range q.items {
		q.items[i] = nil
	}
	q.items = q.items[:0]
	q.head = 0
	q.wakeSpaceLocked()
	return out
}

// highWaterMark reports the deepest the queue has ever been.
func (q *reqQueue) highWaterMark() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.highWater
}

// compact reclaims consumed prefix space once it dominates the slice.
func (q *reqQueue) compact() {
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = nil
		}
		q.items = q.items[:n]
		q.head = 0
	}
}

// close wakes all waiters; pending items remain poppable.
func (q *reqQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.wakeSpaceLocked()
	q.mu.Unlock()
}
