// Package core implements p2KVS itself — the paper's contribution: an
// accessing layer that hash-partitions the key space over N worker
// threads, each owning a private KVS instance, with a queue-based
// opportunistic batching mechanism (OBM, Algorithm 1) on every worker,
// synchronous and asynchronous request interfaces, parallel range
// queries, and GSN-based cross-instance transactions with crash recovery.
package core

import (
	"sync"
	"time"
)

// reqType is the request-type OBM merges by: consecutive same-type
// requests form one batched request (§4.3); SCAN never merges.
type reqType uint8

// Request types.
const (
	reqWrite reqType = iota // PUT / UPDATE / DELETE (always batchable together)
	reqRead                 // GET
	reqScan                 // SCAN / RANGE leg — executed alone
)

// request is one unit of work in a worker queue.
type request struct {
	typ reqType

	// Write-type payload: one or more ops (a user WriteBatch keeps its
	// ops together in a single request).
	batch batchRef
	gsn   uint64
	// noMerge excludes this request from OBM (transaction legs, §4.5).
	noMerge bool

	// Read-type payload.
	key []byte

	// Scan payload. scanEnd, when non-nil, bounds a RANGE leg
	// (inclusive); scanLimit bounds a SCAN leg.
	scanStart []byte
	scanEnd   []byte
	scanLimit int

	// Results.
	val     []byte
	found   bool
	err     error
	scanOut [][2][]byte

	// Completion: exactly one of done / callback is set. The sync path
	// blocks on done (the paper's "suspends itself without further CPU
	// consumption", ②); the async path gets callback(err) from the
	// worker (the Put(K,V,callback) extension, §4.1).
	done     chan struct{}
	callback func(err error)

	enqueuedAt time.Time
}

// batchRef is the write payload; ops reference kv.BatchOp semantics but
// avoid importing kv here (worker.go converts).
type batchRef struct {
	ops []wop
}

type wop struct {
	del   bool
	key   []byte
	value []byte
}

func (r *request) complete(err error) {
	r.err = err
	if r.callback != nil {
		r.callback(err)
		return
	}
	close(r.done)
}

// reqQueue is the per-worker request queue. It is a mutex-guarded deque
// rather than a channel because OBM needs to *peek* at the head request's
// type without committing to dequeue it (Algorithm 1 line 8).
type reqQueue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	items    []*request
	head     int
	capacity int
	closed   bool
}

func newReqQueue(capacity int) *reqQueue {
	q := &reqQueue{capacity: capacity}
	q.notEmpty = sync.NewCond(&q.mu)
	q.notFull = sync.NewCond(&q.mu)
	return q
}

func (q *reqQueue) len() int { return len(q.items) - q.head }

// push enqueues, blocking while the queue is full (backpressure for the
// async interface). Returns false if the queue is closed.
func (q *reqQueue) push(r *request) bool {
	q.mu.Lock()
	for !q.closed && q.len() >= q.capacity {
		q.notFull.Wait()
	}
	if q.closed {
		q.mu.Unlock()
		return false
	}
	r.enqueuedAt = time.Now()
	q.items = append(q.items, r)
	q.notEmpty.Signal()
	q.mu.Unlock()
	return true
}

// popBatch implements the queue side of Algorithm 1: it blocks for the
// first request, then — when obm is true — greedily takes consecutive
// same-type mergeable requests up to max. SCANs and noMerge requests are
// returned alone.
func (q *reqQueue) popBatch(obm bool, max int) []*request {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.len() == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.len() == 0 {
		return nil // closed and drained
	}
	first := q.items[q.head]
	q.head++
	out := []*request{first}
	if obm && first.typ != reqScan && !first.noMerge {
		for q.len() > 0 && len(out) < max {
			next := q.items[q.head]
			if next.typ != first.typ || next.noMerge {
				break
			}
			q.head++
			out = append(out, next)
		}
	}
	q.compact()
	q.notFull.Broadcast()
	return out
}

// compact reclaims consumed prefix space once it dominates the slice.
func (q *reqQueue) compact() {
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = nil
		}
		q.items = q.items[:n]
		q.head = 0
	}
}

// close wakes all waiters; pending items remain poppable.
func (q *reqQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
	q.mu.Unlock()
}
