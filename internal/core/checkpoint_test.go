package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"p2kvs/internal/btreekv"
	"p2kvs/internal/checkpoint"
	"p2kvs/internal/kv"
	"p2kvs/internal/kvell"
	"p2kvs/internal/vfs"
)

// restoreStore materializes the backup at bakDir into a fresh MemFS laid
// out like openStore's world ("p2/inst-NN", "p2/txn") and opens a store
// from it.
func restoreStore(t *testing.T, srcFS vfs.FS, bakDir string, workers int) *Store {
	t.Helper()
	dst := vfs.NewMem()
	place := func(worker int, rel string) string {
		if worker < 0 {
			return "p2/txn/" + rel
		}
		return fmt.Sprintf("p2/inst-%02d/%s", worker, rel)
	}
	if _, err := checkpoint.Restore(srcFS, bakDir, dst, place); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	return openStore(t, dst, workers)
}

// dump returns every live pair in key order.
func dump(t *testing.T, s *Store) []Pair {
	t.Helper()
	pairs, err := s.Range(nil, []byte("\xff\xff\xff\xff"))
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	return pairs
}

func samePairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 4)
	defer s.Close()

	for i := 0; i < 800; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Deletes and cross-partition transactions must survive the trip too.
	for i := 0; i < 800; i += 7 {
		if err := s.Delete([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		var b kv.Batch
		for j := 0; j < 8; j++ {
			b.Put([]byte(fmt.Sprintf("txn-%02d-%d", i, j)), []byte("t"))
		}
		if err := s.Write(&b); err != nil {
			t.Fatal(err)
		}
	}
	want := dump(t, s)

	m, err := s.Checkpoint(fs, "bak")
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if m.Seq != 1 || m.Workers != 4 || len(m.WorkerGSN) != 4 {
		t.Fatalf("manifest shape: %+v", m)
	}
	if m.Partitioner != "hash" {
		t.Fatalf("partitioner = %q", m.Partitioner)
	}

	// Writes after the checkpoint must NOT appear in the restored image.
	if err := s.Put([]byte("post-checkpoint"), []byte("x")); err != nil {
		t.Fatal(err)
	}

	r := restoreStore(t, fs, "bak", 4)
	defer r.Close()
	got := dump(t, r)
	if !samePairs(want, got) {
		t.Fatalf("restored dump differs: want %d pairs, got %d", len(want), len(got))
	}
	if _, err := r.Get([]byte("post-checkpoint")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("post-checkpoint write leaked into the image: %v", err)
	}
}

func TestCheckpointIncrementalReusesSSTs(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 2)
	defer s.Close()

	val := bytes.Repeat([]byte("v"), 512)
	for i := 0; i < 400; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	m1, err := s.Checkpoint(fs, "bak")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Checkpoint(fs, "bak")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Seq != m1.Seq+1 {
		t.Fatalf("seq: %d then %d", m1.Seq, m2.Seq)
	}

	ssts := func(m *checkpoint.Manifest) map[string]bool {
		out := map[string]bool{}
		for _, f := range m.Files {
			if strings.HasSuffix(f.Path, ".sst") {
				out[f.Path] = true
			}
		}
		return out
	}
	s1, s2 := ssts(m1), ssts(m2)
	if len(s1) == 0 {
		t.Fatal("checkpoint 1 captured no SSTs — flush did not land?")
	}
	shared := 0
	for p := range s2 {
		if s1[p] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no SSTs shared between checkpoints — incremental path untested")
	}

	// Every shared SST must have been reused in place: the engines' reuse
	// counter accounts for each, and no SST bytes were copied twice.
	var agg kv.CheckpointStats
	for _, ws := range s.Stats() {
		agg.FilesLinked += ws.Checkpoint.FilesLinked
		agg.FilesCopied += ws.Checkpoint.FilesCopied
		agg.FilesReused += ws.Checkpoint.FilesReused
	}
	if agg.FilesReused < int64(shared) {
		t.Fatalf("reused %d files, want at least the %d shared SSTs", agg.FilesReused, shared)
	}
	// On one MemFS the SSTs hard-link, so checkpointing never copies SST
	// bytes at all: total copied bytes must equal the (tiny) WAL prefixes.
	if agg.FilesLinked < int64(len(s1)) {
		t.Fatalf("linked %d files, want >= %d initial SSTs", agg.FilesLinked, len(s1))
	}
}

func TestCheckpointBarrierShortUnderLoad(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 4)
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Put([]byte(fmt.Sprintf("w%d-%06d", g, i)), []byte("v"))
				i++
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)
	if _, err := s.Checkpoint(fs, "bak"); err != nil {
		close(stop)
		wg.Wait()
		t.Fatalf("Checkpoint under load: %v", err)
	}
	close(stop)
	wg.Wait()

	barrier := s.CheckpointBarrierNs()
	if barrier <= 0 {
		t.Fatal("checkpoint_barrier_ns not recorded")
	}
	// Acceptance bound: the barrier pauses writers for well under 100ms.
	if barrier > int64(100*time.Millisecond) {
		t.Fatalf("barrier stalled writers %v", time.Duration(barrier))
	}
	if s.Checkpoints() != 1 || s.LastCheckpointUnix() == 0 {
		t.Fatalf("store counters: checkpoints=%d last=%d", s.Checkpoints(), s.LastCheckpointUnix())
	}
}

func TestRestoreDetectsTamperedFile(t *testing.T) {
	fs := vfs.NewMem()
	s := openStore(t, fs, 2)
	defer s.Close()
	for i := 0; i < 200; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	m, err := s.Checkpoint(fs, "bak")
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the largest image file.
	var victim checkpoint.File
	for _, f := range m.Files {
		if f.Size > victim.Size {
			victim = f
		}
	}
	if victim.Size == 0 {
		t.Fatal("no non-empty file to tamper with")
	}
	data, err := vfs.ReadFile(fs, "bak/"+victim.Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := vfs.WriteFile(fs, "bak/"+victim.Path, data); err != nil {
		t.Fatal(err)
	}

	dst := vfs.NewMem()
	_, err = checkpoint.Restore(fs, "bak", dst, func(w int, rel string) string {
		return fmt.Sprintf("p2/inst-%02d/%s", w, rel)
	})
	if !errors.Is(err, checkpoint.ErrChecksumMismatch) {
		t.Fatalf("tampered restore err = %v, want ErrChecksumMismatch", err)
	}
}

// engineVariantFactories builds one factory per engine family, all using
// the same instance layout ("px/inst-NN") so a restored image opens with
// any of them applied to a fresh filesystem.
func engineVariantFactories() map[string]func(fs *vfs.MemFS) EngineFactory {
	return map[string]func(fs *vfs.MemFS) EngineFactory{
		"lsm": func(fs *vfs.MemFS) EngineFactory { return lsmFactory(fs, "px") },
		"btree": func(fs *vfs.MemFS) EngineFactory {
			return func(id int, _ func(uint64) bool) (kv.Engine, error) {
				return btreekv.Open(fmt.Sprintf("px/inst-%02d", id), btreekv.Options{FS: fs, CheckpointBytes: 32 << 10})
			}
		},
		"kvell": func(fs *vfs.MemFS) EngineFactory {
			return func(id int, _ func(uint64) bool) (kv.Engine, error) {
				return kvell.Open(fmt.Sprintf("px/inst-%02d", id), kvell.Options{FS: fs, Workers: 1})
			}
		},
	}
}

func TestCheckpointEngineVariants(t *testing.T) {
	for name, mk := range engineVariantFactories() {
		t.Run(name, func(t *testing.T) {
			fs := vfs.NewMem()
			opts := DefaultOptions(mk(fs))
			opts.Workers = 2
			opts.TxnFS = fs
			opts.TxnDir = "px/txn"
			s, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < 300; i++ {
				if err := s.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 300; i += 5 {
				if err := s.Delete([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
					t.Fatal(err)
				}
			}
			want := dump(t, s)
			if _, err := s.Checkpoint(fs, "bak"); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}

			dst := vfs.NewMem()
			place := func(worker int, rel string) string {
				if worker < 0 {
					return "px/txn/" + rel
				}
				return fmt.Sprintf("px/inst-%02d/%s", worker, rel)
			}
			if _, err := checkpoint.Restore(fs, "bak", dst, place); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			ropts := DefaultOptions(mk(dst))
			ropts.Workers = 2
			ropts.TxnFS = dst
			ropts.TxnDir = "px/txn"
			r, err := Open(ropts)
			if err != nil {
				t.Fatalf("reopen from image: %v", err)
			}
			defer r.Close()
			if got := dump(t, r); !samePairs(want, got) {
				t.Fatalf("restored dump differs: want %d pairs, got %d", len(want), len(got))
			}
		})
	}
}
