package core

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// TestHotCacheHitsBypassQueues proves the tentpole property: a cached
// GET is served without queue admission or a worker round-trip. With the
// hot shard wedged and its queue full under AdmitReject, an uncached
// read bounces with ErrOverloaded — but reads of warmed keys keep
// succeeding, and the engine's read counter never moves.
func TestHotCacheHitsBypassQueues(t *testing.T) {
	gate := make(chan struct{})
	s, engines := openStubStore(t, 1, map[int]chan struct{}{0: gate}, func(o *Options) {
		o.QueueDepth = 4
		o.Admission = AdmitReject
		o.HotCacheBytes = 1 << 20
		o.DrainTimeout = 2 * time.Second
	})
	defer func() {
		s.Close()
	}()

	// Seed the engine directly (stub writes are gated, reads are not) and
	// warm the cache through the normal read path.
	engines[0].mu.Lock()
	engines[0].data[string(shardKey(0, 1))] = "hot-value"
	engines[0].mu.Unlock()
	if v, err := s.Get(shardKey(0, 1)); err != nil || string(v) != "hot-value" {
		t.Fatalf("warmup get = %q, %v", v, err)
	}
	if _, err := s.Get(shardKey(0, 2)); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("warmup absent get err = %v", err)
	}
	getsBefore := engines[0].gets.Load()

	// Wedge the worker and fill the queue so admission rejects.
	var acks sync.WaitGroup
	acks.Add(1)
	if err := s.PutAsync(shardKey(0, 50), []byte("v"), func(error) { acks.Done() }); err != nil {
		t.Fatal(err)
	}
	waitWedged(t, engines[0], 1)
	for i := 0; i < 16; i++ {
		acks.Add(1)
		if err := s.PutAsync(shardKey(0, 100+i), []byte("v"), func(error) { acks.Done() }); err != nil {
			acks.Done()
		}
	}
	if _, err := s.Get(shardKey(0, 3)); !errors.Is(err, kv.ErrOverloaded) {
		t.Fatalf("uncached get on saturated shard err = %v, want ErrOverloaded", err)
	}

	// Cached positive and negative reads are served anyway — through
	// every read interface.
	for i := 0; i < 10; i++ {
		if v, err := s.Get(shardKey(0, 1)); err != nil || string(v) != "hot-value" {
			t.Fatalf("cached get = %q, %v", v, err)
		}
		if _, err := s.Get(shardKey(0, 2)); !errors.Is(err, kv.ErrNotFound) {
			t.Fatalf("cached negative get err = %v", err)
		}
	}
	var asyncV []byte
	var asyncErr error
	if err := s.GetAsync(shardKey(0, 1), func(v []byte, err error) { asyncV, asyncErr = v, err }); err != nil {
		t.Fatal(err)
	}
	if asyncErr != nil || string(asyncV) != "hot-value" {
		t.Fatalf("cached async get = %q, %v", asyncV, asyncErr)
	}
	if out, err := s.MultiGet([][]byte{shardKey(0, 1), shardKey(0, 2)}); err != nil {
		t.Fatalf("cached multiget: %v", err)
	} else if string(out[0]) != "hot-value" || out[1] != nil {
		t.Fatalf("cached multiget = %q, %q", out[0], out[1])
	}
	if got := engines[0].gets.Load(); got != getsBefore {
		t.Fatalf("engine reads moved %d -> %d; cached reads touched the worker", getsBefore, got)
	}

	snap := s.StatsSnapshot()
	if !snap.CacheEnabled || snap.CacheHits == 0 || snap.CacheNegHits == 0 {
		t.Fatalf("cache counters: %+v", snap)
	}

	close(gate)
	acks.Wait()
}

// TestHotCacheWriteInvalidates proves read-your-writes through the
// cache: a cached value (or cached not-found) stops being served the
// moment a write that supersedes it is acknowledged.
func TestHotCacheWriteInvalidates(t *testing.T) {
	s, _ := openStubStore(t, 2, nil, func(o *Options) {
		o.HotCacheBytes = 1 << 20
		o.TxnFS = vfs.NewMem() // cross-partition batches need the GSN log
		o.TxnDir = "txn"
	})
	defer s.Close()

	k := shardKey(0, 1)
	// Negative entry first: Get(absent) caches NotFound...
	if _, err := s.Get(k); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("initial get err = %v", err)
	}
	if _, err := s.Get(k); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("cached negative get err = %v", err)
	}
	// ...and a later Put flips it: the stale NotFound must never be
	// served again.
	if err := s.Put(k, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get(k); err != nil || string(v) != "v1" {
		t.Fatalf("get after put = %q, %v (stale negative entry?)", v, err)
	}
	// Overwrite invalidates the cached positive entry.
	if err := s.Put(k, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get(k); err != nil || string(v) != "v2" {
		t.Fatalf("get after overwrite = %q, %v", v, err)
	}
	// Delete flips the positive entry negative.
	if err := s.Delete(k); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(k); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("get after delete err = %v (stale positive entry?)", err)
	}
	// Cross-partition batch writes invalidate on every touched shard.
	k2 := shardKey(1, 1)
	if _, err := s.Get(k2); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("warm k2 negative")
	}
	var b kv.Batch
	b.Put(k, []byte("b1"))
	b.Put(k2, []byte("b2"))
	if err := s.Write(&b); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get(k); err != nil || string(v) != "b1" {
		t.Fatalf("get k after batch = %q, %v", v, err)
	}
	if v, err := s.Get(k2); err != nil || string(v) != "b2" {
		t.Fatalf("get k2 after batch = %q, %v", v, err)
	}

	snap := s.StatsSnapshot()
	if snap.CacheInvalidations == 0 || snap.Aggregate.CacheInvalidations == 0 {
		t.Fatalf("invalidations not counted: %+v", snap)
	}
}

// TestMultiGetAdmitShortCircuit is the regression test for the MGET
// admission-amplification bug: when the first read leg is rejected, the
// remaining legs must not be pushed at the saturated queue too.
func TestMultiGetAdmitShortCircuit(t *testing.T) {
	gate := make(chan struct{})
	s, engines := openStubStore(t, 2, map[int]chan struct{}{0: gate}, func(o *Options) {
		o.QueueDepth = 4
		o.Admission = AdmitReject
		o.DrainTimeout = 2 * time.Second
	})
	defer func() {
		s.Close()
	}()

	// Wedge shard 0 and fill its queue to capacity.
	var acks sync.WaitGroup
	acks.Add(1)
	if err := s.PutAsync(shardKey(0, 50), []byte("v"), func(error) { acks.Done() }); err != nil {
		t.Fatal(err)
	}
	waitWedged(t, engines[0], 1)
	for i := 0; ; i++ {
		acks.Add(1)
		if err := s.PutAsync(shardKey(0, 100+i), []byte("v"), func(error) { acks.Done() }); err != nil {
			acks.Done()
			break // queue full
		}
	}

	rejectedBefore := s.Stats()[0].Rejected
	keys := make([][]byte, 16)
	for i := range keys {
		keys[i] = shardKey(0, i)
	}
	if _, err := s.MultiGetCtx(nil, keys); !errors.Is(err, kv.ErrOverloaded) {
		t.Fatalf("multiget on saturated shard err = %v, want ErrOverloaded", err)
	}
	delta := s.Stats()[0].Rejected - rejectedBefore
	if delta != 1 {
		t.Fatalf("multiget admission rejections = %d, want 1 (remaining legs must short-circuit)", delta)
	}

	close(gate)
	acks.Wait()
}

// TestHotCacheCoherence is the concurrency acceptance test (race-clean):
// one writer per key advances a version counter through puts and
// deletes while readers hammer the cached read paths. No read may ever
// observe a version older than the highest acknowledged before the read
// was issued — a stale cache entry (positive or negative) fails loudly.
func TestHotCacheCoherence(t *testing.T) {
	const workers = 3
	const keysN = 6
	s, _ := openStubStore(t, workers, nil, func(o *Options) {
		o.HotCacheBytes = 1 << 20
	})
	defer s.Close()

	type keyState struct {
		issued atomic.Int64 // highest version a write has started with
		acked  atomic.Int64 // highest version acknowledged to the writer
	}
	states := make([]*keyState, keysN)
	keys := make([][]byte, keysN)
	for i := range states {
		states[i] = &keyState{}
		keys[i] = shardKey(i%workers, i)
	}
	// Version v deletes the key when v%5 == 4, else writes "v<v>".
	isDel := func(v int64) bool { return v%5 == 4 }
	parseVer := func(val []byte) int64 {
		if !bytes.HasPrefix(val, []byte("v")) {
			t.Errorf("unparseable cached value %q", val)
			return -1
		}
		v, err := strconv.ParseInt(string(val[1:]), 10, 64)
		if err != nil {
			t.Errorf("unparseable version in %q: %v", val, err)
			return -1
		}
		return v
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for i := range keys {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			st := states[i]
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := st.issued.Add(1)
				var err error
				if isDel(v) {
					err = s.Delete(keys[i])
				} else {
					err = s.Put(keys[i], []byte(fmt.Sprintf("v%d", v)))
				}
				if err != nil {
					t.Errorf("writer key %d ver %d: %v", i, v, err)
					return
				}
				st.acked.Store(v) // single writer per key: plain ratchet
				// Throttle: unbounded writers would saturate the queues
				// and starve the readers this test is actually about.
				time.Sleep(50 * time.Microsecond)
			}
		}(i)
	}

	// check validates one observation of key i against the windows
	// snapshotted around the read.
	check := func(i int, val []byte, found bool, lo, hi int64, path string) {
		if found {
			v := parseVer(val)
			if v < 0 {
				return
			}
			if v < lo || v > hi {
				t.Errorf("%s key %d: STALE READ: version %d outside [%d,%d]", path, i, v, lo, hi)
			}
			if isDel(v) {
				t.Errorf("%s key %d: found value carries delete version %d", path, i, v)
			}
			return
		}
		// Not found: legal only if the key might still be unwritten
		// (lo == 0) or some delete version lies in the window.
		if lo == 0 {
			return
		}
		okNF := false
		for v := lo; v <= hi; v++ {
			if isDel(v) {
				okNF = true
				break
			}
		}
		if !okNF {
			t.Errorf("%s key %d: STALE NOT-FOUND: no delete version in [%d,%d]", path, i, lo, hi)
		}
	}

	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for n := 0; n < 1500; n++ {
				i := (g + n) % keysN
				lo := states[i].acked.Load()
				v, err := s.Get(keys[i])
				hi := states[i].issued.Load()
				switch {
				case err == nil:
					check(i, v, true, lo, hi, "get")
				case errors.Is(err, kv.ErrNotFound):
					check(i, nil, false, lo, hi, "get")
				default:
					t.Errorf("get key %d: %v", i, err)
				}
				if n%10 == 0 {
					los := make([]int64, keysN)
					for j := range keys {
						los[j] = states[j].acked.Load()
					}
					out, err := s.MultiGet(keys)
					if err != nil {
						t.Errorf("multiget: %v", err)
						continue
					}
					for j := range keys {
						hi := states[j].issued.Load()
						check(j, out[j], out[j] != nil, los[j], hi, "multiget")
					}
				}
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	writers.Wait()

	snap := s.StatsSnapshot()
	if snap.CacheHits+snap.CacheNegHits == 0 {
		t.Fatal("coherence run never hit the cache — the test proved nothing")
	}
	if snap.CacheInvalidations == 0 {
		t.Fatal("coherence run never invalidated")
	}
}
