package keyspace

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestMovedRangesExactness is the core resharding correctness property:
// for random N -> N±1 transitions, the moved set computed by MovedRanges
// is *exactly* the set of keys whose owner differs between the two rings
// — no key the rings disagree on is missed (a miss would lose the key at
// cutover), and no key the rings agree on is flagged (a false positive
// would double-write and copy data that never moves).
func TestMovedRangesExactness(t *testing.T) {
	keys := propertyKeys(30000)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(10)
		delta := 1
		if rng.Intn(2) == 0 && n > 2 {
			delta = -1
		}
		nn := n + delta
		t.Run(fmt.Sprintf("%d-%d", n, nn), func(t *testing.T) {
			oldRing := NewConsistent(n, DefaultReplicas)
			newRing := NewConsistent(nn, DefaultReplicas)
			set := NewMovedSet(MovedRanges(oldRing, newRing))
			for _, k := range keys {
				from, to := oldRing.Pick(k), newRing.Pick(k)
				mr, moved := set.FindKey(k)
				if moved != (from != to) {
					t.Fatalf("key %q: rings say moved=%v (owner %d->%d), MovedRanges says %v",
						k, from != to, from, to, moved)
				}
				if moved && (mr.From != from || mr.To != to) {
					t.Fatalf("key %q: moved arc says %d->%d, rings say %d->%d",
						k, mr.From, mr.To, from, to)
				}
			}
		})
	}
}

// TestMovedRangesDoubleWriteSetIsTight: the double-write interceptor
// mirrors exactly the keys in the moved set, so the property above has a
// sharper corollary worth pinning on its own — the set contains no
// non-moved key (every mirrored write really changes owner) and, on a
// grow, every moved key lands on the newly added worker.
func TestMovedRangesDoubleWriteSetIsTight(t *testing.T) {
	keys := propertyKeys(30000)
	for _, n := range []int{2, 4, 8} {
		oldRing := NewConsistent(n, DefaultReplicas)
		newRing := NewConsistent(n+1, DefaultReplicas)
		set := NewMovedSet(MovedRanges(oldRing, newRing))
		for _, r := range MovedRanges(oldRing, newRing) {
			if r.From == r.To {
				t.Fatalf("n=%d: arc (%x,%x] moves %d->%d — not a move at all", n, r.Lo, r.Hi, r.From, r.To)
			}
			if r.To != n {
				t.Fatalf("n=%d->%d: arc moves to worker %d, but only worker %d joined", n, n+1, r.To, n)
			}
			if r.From < 0 || r.From >= n {
				t.Fatalf("n=%d: arc moves from out-of-range worker %d", n, r.From)
			}
		}
		for _, k := range keys {
			if set.Moved(k) && oldRing.Pick(k) == newRing.Pick(k) {
				t.Fatalf("n=%d: non-moved key %q is in the double-write set", n, k)
			}
		}
	}
}

// TestMovedSetFractionBound extends the PR 5 moved-fraction property to
// the reshard planner's own computation: the fraction of keys MovedSet
// flags stays within the 2.5/(N+1) envelope the consistent ring promises,
// for grows and (against 2.5/N) shrinks.
func TestMovedSetFractionBound(t *testing.T) {
	keys := propertyKeys(50000)
	frac := func(set *MovedSet) float64 {
		m := 0
		for _, k := range keys {
			if set.Moved(k) {
				m++
			}
		}
		return float64(m) / float64(len(keys))
	}
	for _, n := range []int{2, 4, 8, 12} {
		grow := frac(NewMovedSet(MovedRanges(NewConsistent(n, 256), NewConsistent(n+1, 256))))
		if bound := 2.5 / float64(n+1); grow > bound {
			t.Fatalf("grow %d->%d moves %.3f of keys > bound %.3f", n, n+1, grow, bound)
		}
		shrink := frac(NewMovedSet(MovedRanges(NewConsistent(n+1, 256), NewConsistent(n, 256))))
		if bound := 2.5 / float64(n+1); shrink > bound {
			t.Fatalf("shrink %d->%d moves %.3f of keys > bound %.3f", n+1, n, shrink, bound)
		}
	}
}

// TestRingEpochTransitions drives the epoch-versioned Ring through a walk
// of grow/shrink transitions and checks the swap invariants the cutover
// path depends on: the epoch increments by exactly one per Advance, a
// Snapshot pair is internally consistent, Pick always agrees with the
// generation a Snapshot reports, and after advancing, the ring behaves
// identically to a freshly built Consistent of the same size (so a
// restarted store reconstructs the exact same mapping from the persisted
// worker count alone).
func TestRingEpochTransitions(t *testing.T) {
	keys := propertyKeys(5000)
	rng := rand.New(rand.NewSource(7))
	r := NewRing(4, DefaultReplicas)
	if r.Epoch() != 0 || r.N() != 4 {
		t.Fatalf("fresh ring: epoch=%d n=%d", r.Epoch(), r.N())
	}
	n := 4
	for step := 0; step < 20; step++ {
		want := NewConsistent(n, DefaultReplicas)
		snap, epoch := r.Snapshot()
		if epoch != uint64(step) {
			t.Fatalf("step %d: epoch %d", step, epoch)
		}
		if snap.N() != n || r.N() != n {
			t.Fatalf("step %d: n=%d want %d", step, r.N(), n)
		}
		for _, k := range keys[:500] {
			if r.Pick(k) != want.Pick(k) || snap.Pick(k) != want.Pick(k) {
				t.Fatalf("step %d: ring disagrees with fresh Consistent(%d) on %q", step, n, k)
			}
		}
		if n <= 2 || rng.Intn(2) == 0 {
			n++
		} else {
			n--
		}
		next, newEpoch := r.AdvanceTo(n)
		if newEpoch != uint64(step+1) {
			t.Fatalf("Advance at step %d returned epoch %d", step, newEpoch)
		}
		if next.N() != n {
			t.Fatalf("AdvanceTo(%d) built ring of size %d", n, next.N())
		}
	}
}

// TestMovedRangesIdentity: a transition to the same worker count moves
// nothing — the degenerate case the no-op reshard path relies on.
func TestMovedRangesIdentity(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		if rs := MovedRanges(NewConsistent(n, 64), NewConsistent(n, 64)); len(rs) != 0 {
			t.Fatalf("n=%d identity transition reports %d moved arcs", n, len(rs))
		}
	}
}

// TestKeyPointMatchesPick pins the coordinate system: routing a key and
// routing its KeyPoint through PickPoint are the same function.
func TestKeyPointMatchesPick(t *testing.T) {
	c := NewConsistent(6, DefaultReplicas)
	for _, k := range propertyKeys(2000) {
		if c.Pick(k) != c.PickPoint(KeyPoint(k)) {
			t.Fatalf("Pick and PickPoint(KeyPoint) disagree on %q", k)
		}
	}
}
