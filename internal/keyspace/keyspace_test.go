package keyspace

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestHashInRangeAndDeterministic(t *testing.T) {
	p := NewHash(8)
	if p.N() != 8 {
		t.Fatalf("N = %d", p.N())
	}
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		w := p.Pick(k)
		if w < 0 || w >= 8 {
			t.Fatalf("Pick out of range: %d", w)
		}
		if p.Pick(k) != w {
			t.Fatal("Pick not deterministic")
		}
	}
}

func TestHashBalanceUniform(t *testing.T) {
	p := NewHash(8)
	counts := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[p.Pick([]byte(fmt.Sprintf("user%d", i)))]++
	}
	expect := float64(n) / 8
	for w, c := range counts {
		if math.Abs(float64(c)-expect)/expect > 0.05 {
			t.Fatalf("worker %d has %d keys, expected ~%.0f (±5%%)", w, c, expect)
		}
	}
}

// TestHashBalanceZipfian reproduces the paper's claim (§4.2): even under
// highly skewed Zipfian request streams, hashing spreads the hot keys
// evenly enough across partitions.
func TestHashBalanceZipfian(t *testing.T) {
	p := NewHash(8)
	r := rand.New(rand.NewSource(42))
	z := rand.NewZipf(r, 1.01, 1, 1_000_000)
	counts := make([]int, 8)
	const n = 200000
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("user%d", z.Uint64()))
		counts[p.Pick(key)]++
	}
	// The hottest zipfian key alone carries several percent of all
	// requests and necessarily lands on one worker, so perfect balance is
	// impossible; the property to check is that hashing prevents
	// *collapse* — every worker stays within 2x of fair share.
	expect := float64(n) / 8
	for w, c := range counts {
		if math.Abs(float64(c)-expect)/expect > 1.0 {
			t.Fatalf("zipfian skew overwhelmed hashing: worker %d has %d, expected ~%.0f", w, c, expect)
		}
		if float64(c) < expect*0.3 {
			t.Fatalf("worker %d starved: %d", w, c)
		}
	}
}

func TestHashSingleWorker(t *testing.T) {
	p := NewHash(0) // clamps to 1
	if p.N() != 1 || p.Pick([]byte("x")) != 0 {
		t.Fatal("degenerate partitioner broken")
	}
}

func TestRangePartitioner(t *testing.T) {
	p := NewRange([][]byte{[]byte("g"), []byte("p")})
	if p.N() != 3 {
		t.Fatalf("N = %d", p.N())
	}
	cases := map[string]int{"a": 0, "f": 0, "g": 1, "o": 1, "p": 2, "z": 2}
	for k, want := range cases {
		if got := p.Pick([]byte(k)); got != want {
			t.Fatalf("Pick(%q) = %d, want %d", k, got, want)
		}
	}
}

func TestConsistentBasics(t *testing.T) {
	p := NewConsistent(8, 0) // 0 -> DefaultReplicas
	if p.N() != 8 {
		t.Fatalf("N = %d", p.N())
	}
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		w := p.Pick(k)
		if w < 0 || w >= 8 {
			t.Fatalf("out of range: %d", w)
		}
		if p.Pick(k) != w {
			t.Fatal("not deterministic")
		}
	}
}

func TestConsistentBalance(t *testing.T) {
	// Consistent hashing trades some balance for minimal relocation; arc
	// variance shrinks as 1/sqrt(replicas), so use a high replica count
	// here and a tolerance reflecting the technique's real behaviour.
	p := NewConsistent(8, 512)
	counts := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[p.Pick([]byte(fmt.Sprintf("user%d", i)))]++
	}
	expect := float64(n) / 8
	for w, c := range counts {
		if math.Abs(float64(c)-expect)/expect > 0.35 {
			t.Fatalf("worker %d has %d keys, expected ~%.0f (±35%%)", w, c, expect)
		}
	}
}

func TestConsistentMinimalRelocation(t *testing.T) {
	// The defining property vs modular hashing: going N -> N+1 relocates
	// ~1/(N+1) of keys under consistent hashing, but ~N/(N+1) under
	// modular hashing.
	const n = 40000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%08d", i))
	}
	measure := func(a, b Partitioner) float64 {
		moved := 0
		for _, k := range keys {
			if a.Pick(k) != b.Pick(k) {
				moved++
			}
		}
		return float64(moved) / n
	}
	consMoved := measure(NewConsistent(8, 128), NewConsistent(9, 128))
	hashMoved := measure(NewHash(8), NewHash(9))
	if consMoved > 0.30 {
		t.Fatalf("consistent hashing moved %.1f%% of keys on 8->9, want ~11%%", 100*consMoved)
	}
	if hashMoved < 0.5 {
		t.Fatalf("modular hashing moved only %.1f%%, expected most keys", 100*hashMoved)
	}
	if consMoved >= hashMoved {
		t.Fatal("consistent hashing gave no relocation advantage")
	}
}
