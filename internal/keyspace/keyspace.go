// Package keyspace implements p2KVS's horizontal key-space partitioning
// (§4.2): a modular hash assigns every key to one of N workers, giving
// load balance, O(1) dispatch, and zero read amplification (partitions
// never overlap). A range partitioner is included as the ablation
// alternative the paper mentions (dynamic key-ranges, [27]).
package keyspace

import (
	"fmt"
	"hash/fnv"
	"sort"

	"p2kvs/internal/bloom"
)

// Partitioner maps keys to worker IDs.
type Partitioner interface {
	// Pick returns the worker for a key: W_key = Hash(key) % N.
	Pick(key []byte) int
	// N is the number of partitions.
	N() int
}

// Hash is the paper's default modular-hash partitioner.
type Hash struct {
	n int
}

// NewHash creates a hash partitioner over n workers.
func NewHash(n int) Hash {
	if n < 1 {
		n = 1
	}
	return Hash{n: n}
}

// Pick implements Partitioner.
func (h Hash) Pick(key []byte) int { return int(bloom.Hash(key)) % h.n }

// N implements Partitioner.
func (h Hash) N() int { return h.n }

// Consistent is the consistent-hashing partitioner the paper names as
// the future-work alternative to modular hashing (§4.2, citing Karger et
// al.): worker IDs are hashed onto a ring at Replicas virtual points;
// a key maps to the first point clockwise from its own hash. Growing
// from N to N+1 workers relocates only ~1/(N+1) of the keys, instead of
// reshuffling nearly everything as Hash does — the property that makes
// runtime scaling (core.Migrate) cheap.
type Consistent struct {
	n      int
	points []uint64 // sorted ring positions
	owner  []int    // owner[i] = worker for points[i]
}

// DefaultReplicas is the virtual-node count per worker.
const DefaultReplicas = 64

// NewConsistent creates a consistent-hash partitioner over n workers.
func NewConsistent(n, replicas int) Consistent {
	if n < 1 {
		n = 1
	}
	if replicas < 1 {
		replicas = DefaultReplicas
	}
	c := Consistent{n: n}
	for w := 0; w < n; w++ {
		for r := 0; r < replicas; r++ {
			point := fnv64([]byte(fmt.Sprintf("worker-%d-replica-%d", w, r)))
			c.points = append(c.points, point)
			c.owner = append(c.owner, w)
		}
	}
	// Sort points with owners in lockstep.
	idx := make([]int, len(c.points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return c.points[idx[a]] < c.points[idx[b]] })
	points := make([]uint64, len(idx))
	owner := make([]int, len(idx))
	for i, j := range idx {
		points[i], owner[i] = c.points[j], c.owner[j]
	}
	c.points, c.owner = points, owner
	return c
}

// fnv64 is FNV-1a finished with the murmur3 finalizer: plain FNV output
// is visibly structured on short sequential keys, which shows up as ring
// imbalance; the finalizer restores full avalanche.
func fnv64(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	v := h.Sum64()
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// Pick implements Partitioner.
func (c Consistent) Pick(key []byte) int {
	h := fnv64(key)
	i := sort.Search(len(c.points), func(i int) bool { return c.points[i] >= h })
	if i == len(c.points) {
		i = 0
	}
	return c.owner[i]
}

// N implements Partitioner.
func (c Consistent) N() int { return c.n }

// Range partitions by static split points: keys < splits[0] go to worker
// 0, etc. Contiguous key ranges stay on one worker (range queries touch
// fewer instances) at the cost of skew sensitivity — the trade-off the
// partitioning ablation demonstrates.
type Range struct {
	splits [][]byte // len == n-1, ascending
}

// NewRange creates a range partitioner with the given ascending split
// points; the number of partitions is len(splits)+1.
func NewRange(splits [][]byte) Range {
	return Range{splits: splits}
}

// Pick implements Partitioner.
func (r Range) Pick(key []byte) int {
	return sort.Search(len(r.splits), func(i int) bool {
		return string(key) < string(r.splits[i])
	})
}

// N implements Partitioner.
func (r Range) N() int { return len(r.splits) + 1 }
