package keyspace

import (
	"sort"
	"sync/atomic"
)

// KeyPoint returns key's position on the consistent-hash ring — the same
// hash Consistent.Pick routes by. Exported so the resharding planner can
// reason about keys and ring arcs in one coordinate system.
func KeyPoint(key []byte) uint64 { return fnv64(key) }

// PickPoint returns the worker owning ring position h: the owner of the
// first virtual point clockwise from h (wrapping past the highest point
// back to the lowest).
func (c Consistent) PickPoint(h uint64) int {
	i := sort.Search(len(c.points), func(i int) bool { return c.points[i] >= h })
	if i == len(c.points) {
		i = 0
	}
	return c.owner[i]
}

// MovedRange is one arc of the hash ring whose owner differs between two
// ring generations. Membership is the half-open arc (Lo, Hi] in ring
// coordinates; a range with Lo >= Hi wraps through zero (h > Lo || h <=
// Hi). From is the arc's owner under the old ring, To under the new one.
type MovedRange struct {
	Lo, Hi   uint64
	From, To int
}

// Contains reports whether ring position h falls inside the arc.
func (r MovedRange) Contains(h uint64) bool {
	if r.Lo < r.Hi {
		return h > r.Lo && h <= r.Hi
	}
	return h > r.Lo || h <= r.Hi
}

// MovedRanges computes the exact set of ring arcs whose owner changes
// between two consistent-hash generations — the single source of truth
// for which keys an old→new transition relocates, shared by the offline
// Migrate path and the online resharding copy/double-write planner.
//
// The construction merges both rings' virtual points; between two
// adjacent merged points the owner is constant under either ring (no
// point of either ring splits the arc), so comparing the owners at each
// merged point enumerates every moved arc with no false positives or
// negatives.
func MovedRanges(oldRing, newRing Consistent) []MovedRange {
	pts := make([]uint64, 0, len(oldRing.points)+len(newRing.points))
	pts = append(pts, oldRing.points...)
	pts = append(pts, newRing.points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	// Dedup in place.
	uniq := pts[:0]
	for i, p := range pts {
		if i == 0 || p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	pts = uniq
	var out []MovedRange
	for j, hi := range pts {
		lo := pts[(j+len(pts)-1)%len(pts)] // j == 0 wraps: arc (max, min]
		from, to := oldRing.PickPoint(hi), newRing.PickPoint(hi)
		if from != to {
			out = append(out, MovedRange{Lo: lo, Hi: hi, From: from, To: to})
		}
	}
	return out
}

// MovedSet indexes a MovedRanges result for O(log n) key membership
// tests: the copy planner asks "is this key moved, and to whom" once per
// scanned key, and the double-write interceptor once per written key.
type MovedSet struct {
	ranges []MovedRange // non-wrapping, sorted by Hi ascending
	wrap   []MovedRange // the at-most-one arc wrapping through zero
}

// NewMovedSet builds the index. The input is a MovedRanges result; order
// does not matter.
func NewMovedSet(ranges []MovedRange) *MovedSet {
	m := &MovedSet{}
	for _, r := range ranges {
		if r.Lo < r.Hi {
			m.ranges = append(m.ranges, r)
		} else {
			m.wrap = append(m.wrap, r)
		}
	}
	sort.Slice(m.ranges, func(i, j int) bool { return m.ranges[i].Hi < m.ranges[j].Hi })
	return m
}

// Find returns the moved arc containing ring position h, if any.
func (m *MovedSet) Find(h uint64) (MovedRange, bool) {
	i := sort.Search(len(m.ranges), func(i int) bool { return m.ranges[i].Hi >= h })
	if i < len(m.ranges) && m.ranges[i].Contains(h) {
		return m.ranges[i], true
	}
	for _, r := range m.wrap {
		if r.Contains(h) {
			return r, true
		}
	}
	return MovedRange{}, false
}

// FindKey returns the moved arc containing key, if any.
func (m *MovedSet) FindKey(key []byte) (MovedRange, bool) {
	return m.Find(KeyPoint(key))
}

// Moved reports whether key changes owner in this transition.
func (m *MovedSet) Moved(key []byte) bool {
	_, ok := m.FindKey(key)
	return ok
}

// Len reports the number of moved arcs.
func (m *MovedSet) Len() int { return len(m.ranges) + len(m.wrap) }

// Ring is an epoch-versioned consistent-hash partitioner whose generation
// can be swapped atomically — the routing pivot of online resharding. A
// Pick observes exactly one generation; Advance installs the next ring
// and bumps the epoch in a single pointer swap, so no reader ever sees a
// half-updated mapping. Callers that must pair the generation with other
// state (the worker set it maps into) serialize the swap externally.
type Ring struct {
	replicas int
	v        atomic.Pointer[ringGen]
}

type ringGen struct {
	ring  Consistent
	epoch uint64
}

// NewRing creates a ring partitioner over n workers at epoch 0. replicas
// <= 0 selects DefaultReplicas; every generation of one Ring uses the
// same replica count, so worker virtual points are stable across epochs.
func NewRing(n, replicas int) *Ring {
	if replicas < 1 {
		replicas = DefaultReplicas
	}
	r := &Ring{replicas: replicas}
	r.v.Store(&ringGen{ring: NewConsistent(n, replicas)})
	return r
}

// Pick implements Partitioner against the current generation.
func (r *Ring) Pick(key []byte) int { return r.v.Load().ring.Pick(key) }

// N implements Partitioner: the current generation's worker count.
func (r *Ring) N() int { return r.v.Load().ring.N() }

// Epoch reports the current generation number (0 at creation, +1 per
// Advance).
func (r *Ring) Epoch() uint64 { return r.v.Load().epoch }

// Replicas reports the virtual-point count per worker.
func (r *Ring) Replicas() int { return r.replicas }

// Snapshot returns the current generation's ring and epoch as one
// consistent pair.
func (r *Ring) Snapshot() (Consistent, uint64) {
	g := r.v.Load()
	return g.ring, g.epoch
}

// Advance atomically installs next as the new generation and returns the
// new epoch.
func (r *Ring) Advance(next Consistent) uint64 {
	g := r.v.Load()
	ng := &ringGen{ring: next, epoch: g.epoch + 1}
	r.v.Store(ng)
	return ng.epoch
}

// AdvanceTo builds a ring over n workers (same replica count) and
// installs it, returning the ring and the new epoch.
func (r *Ring) AdvanceTo(n int) (Consistent, uint64) {
	next := NewConsistent(n, r.replicas)
	return next, r.Advance(next)
}
