package keyspace

import (
	"fmt"
	"math"
	"testing"
)

// propertyKeys returns n distinct uniform-ish keys. The same key set is
// used across every sub-test so bounds are comparable.
func propertyKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("prop-key-%08d", i))
	}
	return keys
}

// TestBalanceAcrossWorkerCounts sweeps the worker counts the paper's
// experiments use (§5 runs 1..16 instances) and checks that each
// partitioner keeps every partition within a bound of fair share. The
// bound differs by technique: modular hashing is nearly perfect on
// uniform keys; consistent hashing pays arc-length variance that shrinks
// with replica count.
func TestBalanceAcrossWorkerCounts(t *testing.T) {
	keys := propertyKeys(50000)
	for _, n := range []int{2, 3, 4, 8, 12, 16} {
		for _, tc := range []struct {
			name  string
			p     Partitioner
			bound float64 // max |count - fair| / fair
		}{
			{"hash", NewHash(n), 0.15},
			{"consistent", NewConsistent(n, 256), 0.50},
		} {
			t.Run(fmt.Sprintf("%s/n=%d", tc.name, n), func(t *testing.T) {
				counts := make([]int, n)
				for _, k := range keys {
					w := tc.p.Pick(k)
					if w < 0 || w >= n {
						t.Fatalf("Pick out of range: %d (n=%d)", w, n)
					}
					counts[w]++
				}
				fair := float64(len(keys)) / float64(n)
				for w, c := range counts {
					dev := math.Abs(float64(c)-fair) / fair
					if dev > tc.bound {
						t.Fatalf("partition %d holds %d keys, fair share %.0f, deviation %.2f > %.2f",
							w, c, fair, dev, tc.bound)
					}
				}
			})
		}
	}
}

// TestConsistentMovedFractionBound quantifies the claim in
// core/migrate.go: with consistent hashing on both sides of a reshard,
// the rewrite volume approaches the theoretical minimum moved-key
// fraction, which for N -> N+1 is 1/(N+1). Arc variance means the
// observed fraction fluctuates around that, so the bound allows a 2.5x
// envelope — still far below the ~N/(N+1) a modular hash forces.
func TestConsistentMovedFractionBound(t *testing.T) {
	keys := propertyKeys(50000)
	moved := func(a, b Partitioner) float64 {
		m := 0
		for _, k := range keys {
			if a.Pick(k) != b.Pick(k) {
				m++
			}
		}
		return float64(m) / float64(len(keys))
	}
	for _, n := range []int{2, 4, 8, 12} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			ideal := 1.0 / float64(n+1)
			cons := moved(NewConsistent(n, 256), NewConsistent(n+1, 256))
			if cons > 2.5*ideal {
				t.Fatalf("consistent %d->%d moved %.3f of keys, theoretical minimum %.3f (bound 2.5x)",
					n, n+1, cons, ideal)
			}
			// A correct ring can't move fewer keys than the ideal fraction
			// by much either — suspiciously low movement means the new
			// node got no arc at all.
			if cons < ideal/4 {
				t.Fatalf("consistent %d->%d moved only %.3f of keys — new partition appears empty", n, n+1, cons)
			}
			hash := moved(NewHash(n), NewHash(n+1))
			if cons >= hash {
				t.Fatalf("consistent moved %.3f >= modular %.3f at n=%d — no relocation advantage", cons, hash, n)
			}
		})
	}
}

// TestConsistentStableUnderReplicaChoice: the partition a key lands on is
// a pure function of (n, replicas) — two independently built rings agree
// on every key. This is the property that lets a restored store rebuild
// its partitioner from the manifest instead of serializing ring state.
func TestConsistentStableUnderReplicaChoice(t *testing.T) {
	keys := propertyKeys(5000)
	a, b := NewConsistent(8, 128), NewConsistent(8, 128)
	for _, k := range keys {
		if a.Pick(k) != b.Pick(k) {
			t.Fatalf("independently built rings disagree on %q", k)
		}
	}
}
