package reshard

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"p2kvs/internal/vfs"
)

func TestTopologyRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	if tp, err := LoadTopology(fs, "db/txn"); err != nil || tp != nil {
		t.Fatalf("absent topology: got %+v, %v; want nil, nil", tp, err)
	}
	want := Topology{Workers: 5, PrevWorkers: 4, Epoch: 3, State: TopologyCleanup}
	if err := SaveTopology(fs, "db/txn", want); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadTopology(fs, "db/txn")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if *got != want {
		t.Fatalf("round trip: got %+v want %+v", *got, want)
	}
	// Overwrite must be atomic through the same tmp+rename path.
	want2 := Topology{Workers: 5, PrevWorkers: 4, Epoch: 3, State: TopologyActive}
	if err := SaveTopology(fs, "db/txn", want2); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	got, err = LoadTopology(fs, "db/txn")
	if err != nil || *got != want2 {
		t.Fatalf("after re-save: got %+v, %v", got, err)
	}
}

func TestTopologyCorruptionDetected(t *testing.T) {
	fs := vfs.NewMem()
	if err := SaveTopology(fs, "db", Topology{Workers: 4, PrevWorkers: 4, State: TopologyActive}); err != nil {
		t.Fatal(err)
	}
	body, err := vfs.ReadFile(fs, "db/"+TopologyFile)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: the CRC must catch it.
	body[len(body)-2] ^= 0x40
	if err := vfs.WriteFile(fs, "db/"+TopologyFile, body); err != nil {
		t.Fatal(err)
	}
	if tp, err := LoadTopology(fs, "db"); err == nil {
		t.Fatalf("corrupt topology loaded as %+v", tp)
	}
	// Truncated below the header is malformed, not treated as absent.
	if err := vfs.WriteFile(fs, "db/"+TopologyFile, body[:4]); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTopology(fs, "db"); err == nil {
		t.Fatal("truncated topology loaded without error")
	}
}

func TestSeenSetFloorAndSupersede(t *testing.T) {
	s := NewSeenSet()
	key := []byte("k1")
	if s.Seen(key, 0) {
		t.Fatal("empty set reports key as seen")
	}
	s.Record(key, 10)
	if !s.Seen(key, 5) {
		t.Fatal("gsn 10 not seen above floor 5")
	}
	if s.Seen(key, 10) {
		t.Fatal("gsn 10 seen above floor 10 (floor is exclusive)")
	}
	// A stale re-record must not lower the retained GSN.
	s.Record(key, 7)
	if !s.Seen(key, 9) {
		t.Fatal("re-record with lower gsn clobbered the higher one")
	}
	s.Record(key, 20)
	if !s.Seen(key, 19) || s.Seen(key, 20) {
		t.Fatal("highest gsn not retained")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestSeenSetConcurrent(t *testing.T) {
	s := NewSeenSet()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("key-%03d", i%100))
				s.Record(k, uint64(g*1000+i))
				s.Seen(k, 50)
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
}

func TestTrackerLifecycle(t *testing.T) {
	var tr Tracker
	if tr.State() != StateIdle {
		t.Fatalf("zero tracker state = %v", tr.State())
	}
	tr.Begin(4, 5, 0)
	if tr.State() != StatePrepare || tr.Failed() {
		t.Fatalf("after Begin: state=%v failed=%v", tr.State(), tr.Failed())
	}
	tr.SetState(StateCopy)
	tr.AddMoved(10, 2048)
	tr.AddDoubleWrites(3)
	tr.SkippedStale().Add(2)
	tr.SetState(StateCutover)
	tr.AddCutoverRetry()
	tr.SetBarrierNs(123456)
	tr.Complete(1)
	st := tr.Snapshot()
	want := Stats{
		State: "done", Epoch: 1, From: 4, To: 5, Completed: 1,
		MovedKeys: 10, MovedBytes: 2048, DoubleWrites: 3, SkippedStale: 2,
		BarrierNs: 123456, CutoverRetries: 1,
	}
	if st != want {
		t.Fatalf("snapshot:\n got %+v\nwant %+v", st, want)
	}

	// A failed run latches the first error and surfaces it through Abort.
	tr.Begin(5, 6, 1)
	if tr.Snapshot().LastErr != "" {
		t.Fatal("Begin did not clear last error")
	}
	tr.Fail(errors.New("mirror enqueue failed"))
	tr.Fail(errors.New("second error must not win"))
	if !tr.Failed() {
		t.Fatal("failure latch did not trip")
	}
	tr.Abort(nil)
	st = tr.Snapshot()
	if st.State != "aborted" || st.Aborted != 1 || st.LastErr != "mirror enqueue failed" {
		t.Fatalf("after abort: %+v", st)
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		StateIdle: "idle", StatePrepare: "prepare", StateCopy: "copy",
		StateCutover: "cutover", StateCleanup: "cleanup", StateDone: "done",
		StateAborted: "aborted", State(99): "unknown",
	}
	for s, label := range want {
		if s.String() != label {
			t.Fatalf("State(%d).String() = %q, want %q", s, s.String(), label)
		}
	}
}
