// Package reshard holds the bookkeeping of online elastic resharding —
// the state the paper's §4.2 declares out of scope when it notes that
// changing the worker count "may lead to a reconstruction of the entire
// set of KVS instances". The execution glue (barriers, queues, engine
// copies) lives in internal/core; this package owns the three pieces that
// are pure data: the crash-safe persisted topology record whose rename is
// the cutover commit point, the double-write SeenSet that reconciles the
// bulk copy with the live write stream, and the progress tracker behind
// reshard_* stats and RESHARD STATUS.
package reshard

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"p2kvs/internal/vfs"
)

// ---------------------------------------------------------------------------
// Phase state machine
// ---------------------------------------------------------------------------

// State is the phase of a resharding operation.
type State int32

// Reshard phases.
const (
	// StateIdle: no reshard has run or the last one finished.
	StateIdle State = iota
	// StatePrepare: new workers are being spawned on fresh instances.
	StatePrepare
	// StateCopy: the checkpoint-pinned image of the moved ranges is
	// streaming to the new owners while live writes double-write.
	StateCopy
	// StateCutover: workers are paused at the GSN barrier for the
	// atomic ring swap.
	StateCutover
	// StateCleanup: the ring has flipped; moved ranges are being deleted
	// from their old owners (traffic already routes to the new ring).
	StateCleanup
	// StateDone: the most recent reshard completed.
	StateDone
	// StateAborted: the most recent reshard rolled back to the old ring.
	StateAborted
)

// String implements fmt.Stringer with the stable labels INFO exposes.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StatePrepare:
		return "prepare"
	case StateCopy:
		return "copy"
	case StateCutover:
		return "cutover"
	case StateCleanup:
		return "cleanup"
	case StateDone:
		return "done"
	case StateAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// ---------------------------------------------------------------------------
// Double-write SeenSet
// ---------------------------------------------------------------------------

// SeenSet records every key the double-write interceptor mirrored during
// a reshard's copy window, tagged with the apply-time GSN of the mirror.
// The copy stream checks it at apply time: a copied pair whose key was
// double-written after the snapshot floor is stale by construction (the
// mirror already delivered a fresher value through the same FIFO queue)
// and is dropped. Record-before-enqueue on the mirror side plus FIFO
// apply order on the new owner make the reconciliation deterministic:
// a live write and the bulk copy can land in either order, but the
// fresher value always survives.
type SeenSet struct {
	mu sync.Mutex
	m  map[string]uint64
}

// NewSeenSet returns an empty set.
func NewSeenSet() *SeenSet {
	return &SeenSet{m: make(map[string]uint64)}
}

// Record notes that key was double-written under gsn. Later records for
// the same key keep the highest GSN.
func (s *SeenSet) Record(key []byte, gsn uint64) {
	s.mu.Lock()
	if gsn > s.m[string(key)] {
		s.m[string(key)] = gsn
	}
	s.mu.Unlock()
}

// Seen reports whether key was recorded with a GSN above floor.
func (s *SeenSet) Seen(key []byte, floor uint64) bool {
	s.mu.Lock()
	g, ok := s.m[string(key)]
	s.mu.Unlock()
	return ok && g > floor
}

// Len reports how many distinct keys have been recorded.
func (s *SeenSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// ---------------------------------------------------------------------------
// Persisted topology
// ---------------------------------------------------------------------------

// TopologyFile is the topology record's name inside the store's
// transaction directory.
const TopologyFile = "TOPOLOGY"

// Topology states.
const (
	// TopologyActive: the recorded worker count is fully consistent on
	// disk — no cleanup owed.
	TopologyActive = "active"
	// TopologyCleanup: the ring flip committed but moved ranges may
	// still exist on their old owners (and, on a shrink, retired
	// instance directories may remain); recovery must finish the
	// cleanup before serving.
	TopologyCleanup = "cleanup"
)

// Topology is the persisted worker-count record of an elastic store. Its
// atomic tmp+rename install is the reshard commit point: a crash before
// the rename recovers at the old worker count (the prepared instances are
// wiped and the copy restarts from scratch); a crash after it recovers at
// the new count and finishes cleanup. There is never a state in which
// half the keys route one way and half the other.
type Topology struct {
	// Workers is the committed worker count.
	Workers int `json:"workers"`
	// PrevWorkers is the count before the most recent transition (equal
	// to Workers when none has happened).
	PrevWorkers int `json:"prev_workers"`
	// Epoch counts committed ring generations.
	Epoch uint64 `json:"epoch"`
	// State is TopologyActive or TopologyCleanup.
	State string `json:"state"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SaveTopology durably installs t as dir's topology record via
// tmp+sync+rename, guarded by a CRC-32C over the payload.
func SaveTopology(fs vfs.FS, dir string, t Topology) error {
	payload, err := json.Marshal(t)
	if err != nil {
		return err
	}
	body := []byte(fmt.Sprintf("%08x\n%s", crc32.Checksum(payload, crcTable), payload))
	tmp := dir + "/" + TopologyFile + ".tmp"
	if err := fs.MkdirAll(dir); err != nil {
		return err
	}
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, dir+"/"+TopologyFile)
}

// LoadTopology reads dir's topology record. A missing record returns
// (nil, nil) — the store predates elasticity or never resharded. A
// present but corrupt record is an explicit error: guessing a worker
// count would route keys to the wrong instances.
func LoadTopology(fs vfs.FS, dir string) (*Topology, error) {
	path := dir + "/" + TopologyFile
	if !fs.Exists(path) {
		return nil, nil
	}
	body, err := vfs.ReadFile(fs, path)
	if err != nil {
		return nil, fmt.Errorf("reshard: reading topology: %w", err)
	}
	if len(body) < 9 || body[8] != '\n' {
		return nil, fmt.Errorf("reshard: topology record malformed (%d bytes)", len(body))
	}
	var wantCRC uint32
	if _, err := fmt.Sscanf(string(body[:8]), "%08x", &wantCRC); err != nil {
		return nil, fmt.Errorf("reshard: topology checksum unparseable: %w", err)
	}
	payload := body[9:]
	if got := crc32.Checksum(payload, crcTable); got != wantCRC {
		return nil, fmt.Errorf("reshard: topology checksum mismatch (%08x != %08x)", got, wantCRC)
	}
	var t Topology
	if err := json.Unmarshal(payload, &t); err != nil {
		return nil, fmt.Errorf("reshard: topology payload: %w", err)
	}
	if t.Workers < 1 {
		return nil, fmt.Errorf("reshard: topology records %d workers", t.Workers)
	}
	return &t, nil
}

// ---------------------------------------------------------------------------
// Progress tracker
// ---------------------------------------------------------------------------

// Tracker is the lock-free progress record of a store's resharding
// activity: the current phase, lifetime counters, and the failure latch
// the double-write interceptor trips so the coordinator aborts before
// cutover instead of committing a ring that missed mirrored writes.
type Tracker struct {
	state          atomic.Int32
	epoch          atomic.Uint64
	from           atomic.Int64
	to             atomic.Int64
	completed      atomic.Int64
	aborted        atomic.Int64
	movedKeys      atomic.Int64
	movedBytes     atomic.Int64
	doubleWrites   atomic.Int64
	skippedStale   atomic.Int64
	barrierNs      atomic.Int64
	cutoverRetries atomic.Int64
	failed         atomic.Bool

	errMu   sync.Mutex
	lastErr string
}

// Stats is the JSON/INFO projection of a Tracker.
type Stats struct {
	// State is the current phase label (idle/prepare/copy/cutover/
	// cleanup/done/aborted).
	State string `json:"reshard_state"`
	// Epoch is the committed ring generation.
	Epoch uint64 `json:"reshard_epoch"`
	// From/To are the worker counts of the most recent transition.
	From int `json:"reshard_from"`
	To   int `json:"reshard_to"`
	// Completed and Aborted count finished transitions either way.
	Completed int64 `json:"reshard_completed"`
	Aborted   int64 `json:"reshard_aborted"`
	// MovedKeys/MovedBytes tally the bulk copy; DoubleWrites counts ops
	// mirrored to new owners by the interceptor; SkippedStale counts
	// copied pairs dropped because a fresher double-write superseded
	// them.
	MovedKeys    int64 `json:"reshard_moved_keys"`
	MovedBytes   int64 `json:"reshard_moved_bytes"`
	DoubleWrites int64 `json:"reshard_double_writes"`
	SkippedStale int64 `json:"reshard_skipped_stale"`
	// BarrierNs is the cutover pause: the wall time routing was frozen
	// for the ring swap (the p99-writer-pause budget applies to this).
	BarrierNs int64 `json:"reshard_barrier_ns"`
	// CutoverRetries counts cutover attempts released and retried
	// because in-flight prepared transactions would have overrun the
	// pause budget.
	CutoverRetries int64 `json:"reshard_cutover_retries"`
	// LastErr is the most recent abort cause, empty when none.
	LastErr string `json:"reshard_last_err,omitempty"`
}

// Begin records the start of a from->to transition.
func (t *Tracker) Begin(from, to int, epoch uint64) {
	t.from.Store(int64(from))
	t.to.Store(int64(to))
	t.epoch.Store(epoch)
	t.failed.Store(false)
	t.setErr(nil)
	t.state.Store(int32(StatePrepare))
}

// SetState advances the phase.
func (t *Tracker) SetState(s State) { t.state.Store(int32(s)) }

// State reports the current phase.
func (t *Tracker) State() State { return State(t.state.Load()) }

// Fail latches a double-write (or copy) failure; the first error wins.
func (t *Tracker) Fail(err error) {
	if t.failed.CompareAndSwap(false, true) {
		t.setErr(err)
	}
}

// Failed reports whether the failure latch tripped.
func (t *Tracker) Failed() bool { return t.failed.Load() }

// Complete records a committed transition at the given epoch.
func (t *Tracker) Complete(epoch uint64) {
	t.epoch.Store(epoch)
	t.completed.Add(1)
	t.state.Store(int32(StateDone))
}

// Abort records a rolled-back transition.
func (t *Tracker) Abort(err error) {
	t.aborted.Add(1)
	if err != nil {
		t.setErr(err)
	}
	t.state.Store(int32(StateAborted))
}

// AddMoved tallies copied pairs.
func (t *Tracker) AddMoved(keys, bytes int64) {
	t.movedKeys.Add(keys)
	t.movedBytes.Add(bytes)
}

// AddDoubleWrites tallies mirrored ops.
func (t *Tracker) AddDoubleWrites(n int64) { t.doubleWrites.Add(n) }

// SkippedStale exposes the stale-copy drop counter for the apply path.
func (t *Tracker) SkippedStale() *atomic.Int64 { return &t.skippedStale }

// SetBarrierNs records the cutover pause duration.
func (t *Tracker) SetBarrierNs(ns int64) { t.barrierNs.Store(ns) }

// AddCutoverRetry counts a released-and-retried cutover attempt.
func (t *Tracker) AddCutoverRetry() { t.cutoverRetries.Add(1) }

// SetEpoch records the committed ring generation (used at open, when the
// persisted topology carries an epoch from a previous process).
func (t *Tracker) SetEpoch(e uint64) { t.epoch.Store(e) }

func (t *Tracker) setErr(err error) {
	t.errMu.Lock()
	if err == nil {
		t.lastErr = ""
	} else {
		t.lastErr = err.Error()
	}
	t.errMu.Unlock()
}

// Snapshot captures the tracker as Stats.
func (t *Tracker) Snapshot() Stats {
	t.errMu.Lock()
	lastErr := t.lastErr
	t.errMu.Unlock()
	return Stats{
		State:          t.State().String(),
		Epoch:          t.epoch.Load(),
		From:           int(t.from.Load()),
		To:             int(t.to.Load()),
		Completed:      t.completed.Load(),
		Aborted:        t.aborted.Load(),
		MovedKeys:      t.movedKeys.Load(),
		MovedBytes:     t.movedBytes.Load(),
		DoubleWrites:   t.doubleWrites.Load(),
		SkippedStale:   t.skippedStale.Load(),
		BarrierNs:      t.barrierNs.Load(),
		CutoverRetries: t.cutoverRetries.Load(),
		LastErr:        lastErr,
	}
}
