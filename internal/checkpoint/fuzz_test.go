package checkpoint

import (
	"errors"
	"testing"
)

// fuzzSeeds are the corpus: a valid manifest plus structured near-misses.
func fuzzSeeds() [][]byte {
	m := sampleManifest()
	valid := m.Encode()
	empty := (&Manifest{Seq: 1, Workers: 1, Engine: "x", WorkerGSN: []uint64{0}}).Encode()
	return [][]byte{
		valid,
		empty,
		[]byte(""),
		[]byte("p2kvs-checkpoint v1\n"),
		[]byte("p2kvs-checkpoint v1\ncrc 00000000\n"),
		[]byte(seal("p2kvs-checkpoint v1\nseq 1\nworkers 1\nengine x\nworker 0 gsn 0\nfile 0 9223372036854775807 ffffffff a b\n")),
		[]byte("not a manifest at all\n"),
	}
}

// checkParse is the fuzz property: Parse never panics, and either returns
// a structurally valid manifest or a typed ErrCorrupt/ParseError — no
// silent partial results.
func checkParse(t *testing.T, data []byte) {
	m, err := Parse(data)
	if err != nil {
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("non-typed parse error %v (%T) for %q", err, err, data)
		}
		if m != nil {
			t.Fatalf("error AND manifest returned for %q", data)
		}
		return
	}
	// Accepted: the invariants Parse promises must actually hold, so a
	// mutation can never yield a "successfully parsed" partial image.
	if m.Seq == 0 || m.Workers <= 0 || m.Engine == "" {
		t.Fatalf("accepted manifest missing required header: %+v", m)
	}
	if len(m.WorkerGSN) != m.Workers {
		t.Fatalf("accepted manifest with %d worker gsns for %d workers", len(m.WorkerGSN), m.Workers)
	}
	for _, f := range m.Files {
		if f.Worker < -1 || f.Worker >= m.Workers || !safeRel(f.Path) || !safeRel(f.Restore) {
			t.Fatalf("accepted manifest with invalid file %+v", f)
		}
	}
}

// FuzzParse is the coverage-guided entry point:
//
//	go test ./internal/checkpoint -fuzz=FuzzParse
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkParse(t, data)
	})
}

// TestParseMutations runs a deterministic slice of the fuzz space on every
// ordinary `go test`: all truncations and every single-bit flip of a valid
// manifest must fail typed (or, for flips in free-text fields, still parse
// to a structurally valid manifest) — never panic.
func TestParseMutations(t *testing.T) {
	valid := sampleManifest().Encode()
	for n := 0; n <= len(valid); n++ {
		checkParse(t, valid[:n])
	}
	for i := 0; i < len(valid); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), valid...)
			mut[i] ^= 1 << bit
			checkParse(t, mut)
		}
	}
}
