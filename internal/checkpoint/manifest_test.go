package checkpoint

import (
	"errors"
	"fmt"
	"hash/crc32"
	"reflect"
	"testing"

	"p2kvs/internal/vfs"
)

func sampleManifest() *Manifest {
	return &Manifest{
		Seq:         3,
		Workers:     2,
		Engine:      "rocksdb",
		Partitioner: "hash",
		GSN:         41,
		WorkerGSN:   []uint64{41, 17},
		TakenUnixNs: 1700000000000000000,
		BarrierNs:   125000,
		Files: []File{
			{Worker: 0, Path: "worker-0/000004.sst", Restore: "000004.sst", Size: 4096, CRC: 0xdeadbeef},
			{Worker: 1, Path: "worker-1/000002-ckpt000003.log", Restore: "000002.log", Size: 128, CRC: 0x1},
			{Worker: -1, Path: "TXNLOG-ckpt000003", Restore: "TXNLOG", Size: 18, CRC: 0x22},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	got, err := Parse(m.Encode())
	if err != nil {
		t.Fatalf("Parse(Encode()): %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", m, got)
	}
}

func TestManifestWriteLoadGC(t *testing.T) {
	fs := vfs.NewMem()
	m := sampleManifest()
	for _, f := range m.Files {
		if err := vfs.WriteFile(fs, "bak/"+f.Path, make([]byte, 4)); err != nil {
			t.Fatal(err)
		}
	}
	// Garbage from a crashed later attempt must be collected.
	if err := vfs.WriteFile(fs, "bak/worker-0/999999.sst", []byte("junk")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "bak/TXNLOG-ckpt000099", []byte("junk")); err != nil {
		t.Fatal(err)
	}
	if err := Write(fs, "bak", m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(fs, "bak")
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != m.Seq || len(got.Files) != len(m.Files) {
		t.Fatalf("loaded %+v", got)
	}
	GC(fs, "bak", m)
	if fs.Exists("bak/worker-0/999999.sst") || fs.Exists("bak/TXNLOG-ckpt000099") {
		t.Fatal("GC left unreferenced files")
	}
	for _, f := range m.Files {
		if !fs.Exists("bak/" + f.Path) {
			t.Fatalf("GC removed referenced file %s", f.Path)
		}
	}
	if _, err := Load(fs, "empty"); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("Load(empty) = %v", err)
	}
}

// seal appends a valid self-checksum trailer so a structurally damaged
// body reaches the line parser instead of bouncing off the outer CRC.
func seal(body string) string {
	return body + fmt.Sprintf("crc %08x\n", crc32.Checksum([]byte(body), crcTable))
}

// TestParseRejects locks in typed failure for a catalogue of damaged
// manifests: every case must return an error satisfying ErrCorrupt, and
// none may panic.
func TestParseRejects(t *testing.T) {
	valid := string(sampleManifest().Encode())
	cases := map[string]string{
		"empty":               "",
		"no trailing newline": valid[:len(valid)-1],
		"bit flip":            valid[:9] + "X" + valid[10:],
		"truncated":           valid[:len(valid)/2],
		"missing crc":         "p2kvs-checkpoint v1\nseq 1\nworkers 1\nengine x\nworker 0 gsn 0\n",
		"bad magic":           seal("p2kvs-checkpoint v9\nseq 1\nworkers 1\nengine x\nworker 0 gsn 0\n"),
		"unknown directive":   seal("p2kvs-checkpoint v1\nbogus 1\n"),
		"missing header":      seal("p2kvs-checkpoint v1\nseq 1\n"),
		"zero seq":            seal("p2kvs-checkpoint v1\nseq 0\nworkers 1\nengine x\nworker 0 gsn 0\n"),
		"absolute path": seal("p2kvs-checkpoint v1\nseq 1\nworkers 1\nengine x\nworker 0 gsn 0\n" +
			"file 0 1 00000001 /etc/passwd x\n"),
		"dotdot path": seal("p2kvs-checkpoint v1\nseq 1\nworkers 1\nengine x\nworker 0 gsn 0\n" +
			"file 0 1 00000001 ../../escape x\n"),
		"worker out of range": seal("p2kvs-checkpoint v1\nseq 1\nworkers 1\nengine x\nworker 0 gsn 0\n" +
			"file 7 1 00000001 a b\n"),
		"sparse worker gsn": seal("p2kvs-checkpoint v1\nseq 1\nworkers 2\nengine x\nworker 1 gsn 0\n"),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			m, err := Parse([]byte(data))
			if err == nil {
				t.Fatalf("Parse accepted %q: %+v", name, m)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err %v does not match ErrCorrupt", err)
			}
		})
	}
}
