// Package checkpoint defines the on-disk format of a store-wide backup
// set: a directory holding per-worker engine images plus a top-level
// CHECKPOINT manifest that records the store shape (worker count,
// partitioner, engine), the GSN watermark the barrier captured, and a
// checksum for every file in the image. The manifest is the commit record
// of a checkpoint — it is written last, through a temporary name, so a
// crashed checkpoint leaves either the previous manifest (still wholly
// valid: later checkpoints never modify files an earlier manifest
// references) or no manifest at all, never a partial image that parses.
package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"p2kvs/internal/vfs"
)

// ManifestName is the manifest's file name inside a backup directory.
const ManifestName = "CHECKPOINT"

const magic = "p2kvs-checkpoint v1"

// ErrCorrupt is the base error of every damaged-backup failure — manifest
// parse errors and file checksum mismatches both match it: typed, never a
// panic, and never a silently partial manifest.
var ErrCorrupt = errors.New("checkpoint: corrupt backup")

// ErrNoManifest is returned by Load when the backup directory has no
// CHECKPOINT manifest (an empty or never-committed backup set).
var ErrNoManifest = errors.New("checkpoint: no CHECKPOINT manifest")

// ErrChecksumMismatch is returned by Restore when a file's content does
// not match the checksum the manifest recorded for it. It unwraps to
// ErrCorrupt.
var ErrChecksumMismatch = fmt.Errorf("%w: file checksum mismatch", ErrCorrupt)

// ParseError pinpoints a manifest parse failure. It unwraps to ErrCorrupt.
type ParseError struct {
	Line int // 1-based; 0 when the failure is not line-specific
	Msg  string
}

func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("checkpoint: corrupt manifest: line %d: %s", e.Line, e.Msg)
	}
	return "checkpoint: corrupt manifest: " + e.Msg
}

func (e *ParseError) Unwrap() error { return ErrCorrupt }

// File is one file of the backup image.
type File struct {
	// Worker is the owning worker's index, or -1 for store-level files
	// (the transaction log).
	Worker int
	// Path is the file's location relative to the backup root.
	Path string
	// Restore is where the file materializes on restore, relative to the
	// owning worker's engine directory (or the store's transaction
	// directory for Worker == -1).
	Restore string
	Size    int64
	CRC     uint32
}

// Manifest describes one committed checkpoint of a backup set.
type Manifest struct {
	// Seq numbers checkpoints within a backup set, starting at 1. Mutable
	// per-checkpoint files embed it in their names, which is what lets
	// checkpoint N+1 crash without invalidating checkpoint N.
	Seq         uint64
	Workers     int
	Engine      string
	Partitioner string
	// GSN is the store-wide Global Sequence Number watermark at the
	// barrier; WorkerGSN[i] is worker i's last applied GSN at the same
	// instant.
	GSN         uint64
	WorkerGSN   []uint64
	TakenUnixNs int64
	BarrierNs   int64
	// ReplID is the replication lineage ID of the store that took the
	// checkpoint, empty when replication was disabled. A replica restored
	// from this image partial-syncs from WorkerGSN only against a primary
	// still carrying this ID.
	ReplID string
	Files  []File
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes the manifest, ending with a self-checksum line.
func (m *Manifest) Encode() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\n", magic)
	fmt.Fprintf(&b, "seq %d\n", m.Seq)
	fmt.Fprintf(&b, "workers %d\n", m.Workers)
	fmt.Fprintf(&b, "engine %s\n", m.Engine)
	fmt.Fprintf(&b, "partitioner %s\n", m.Partitioner)
	fmt.Fprintf(&b, "gsn %d\n", m.GSN)
	fmt.Fprintf(&b, "taken_unix_ns %d\n", m.TakenUnixNs)
	fmt.Fprintf(&b, "barrier_ns %d\n", m.BarrierNs)
	if m.ReplID != "" {
		fmt.Fprintf(&b, "replid %s\n", m.ReplID)
	}
	for i, g := range m.WorkerGSN {
		fmt.Fprintf(&b, "worker %d gsn %d\n", i, g)
	}
	for _, f := range m.Files {
		fmt.Fprintf(&b, "file %d %d %08x %s %s\n", f.Worker, f.Size, f.CRC, f.Path, f.Restore)
	}
	fmt.Fprintf(&b, "crc %08x\n", crc32.Checksum(b.Bytes(), crcTable))
	return b.Bytes()
}

// Parse decodes and validates a manifest. Any deviation — truncation, bit
// flips, unknown directives, out-of-range references — yields an error
// satisfying errors.Is(err, ErrCorrupt); Parse never panics.
func Parse(data []byte) (*Manifest, error) {
	if len(data) == 0 {
		return nil, &ParseError{Msg: "empty"}
	}
	if data[len(data)-1] != '\n' {
		return nil, &ParseError{Msg: "missing trailing newline"}
	}
	body := data[:len(data)-1]
	nl := bytes.LastIndexByte(body, '\n')
	lastLine := string(body[nl+1:]) // nl == -1 degenerates to the whole body
	covered := data[:nl+1]          // bytes the self-checksum covers

	wantCRC, ok := strings.CutPrefix(lastLine, "crc ")
	if !ok {
		return nil, &ParseError{Msg: "missing crc trailer"}
	}
	want, err := strconv.ParseUint(strings.TrimSpace(wantCRC), 16, 32)
	if err != nil {
		return nil, &ParseError{Msg: "malformed crc trailer"}
	}
	if got := crc32.Checksum(covered, crcTable); got != uint32(want) {
		return nil, &ParseError{Msg: fmt.Sprintf("crc mismatch: manifest says %08x, content is %08x", uint32(want), got)}
	}

	m := &Manifest{}
	var haveSeq, haveWorkers, haveEngine bool
	lines := strings.Split(string(covered), "\n")
	lines = lines[:len(lines)-1] // drop the empty tail after the final \n
	for i, line := range lines {
		lineNo := i + 1
		fail := func(msg string) (*Manifest, error) {
			return nil, &ParseError{Line: lineNo, Msg: msg}
		}
		if i == 0 {
			if line != magic {
				return fail("bad magic")
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			return fail("blank line")
		}
		switch fields[0] {
		case "seq":
			if len(fields) != 2 {
				return fail("seq wants 1 field")
			}
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil || v == 0 {
				return fail("bad seq")
			}
			m.Seq, haveSeq = v, true
		case "workers":
			if len(fields) != 2 {
				return fail("workers wants 1 field")
			}
			v, err := strconv.ParseUint(fields[1], 10, 16)
			if err != nil || v == 0 {
				return fail("bad workers count")
			}
			m.Workers, haveWorkers = int(v), true
		case "engine":
			if len(fields) != 2 {
				return fail("engine wants 1 field")
			}
			m.Engine, haveEngine = fields[1], true
		case "partitioner":
			if len(fields) != 2 {
				return fail("partitioner wants 1 field")
			}
			m.Partitioner = fields[1]
		case "gsn":
			if len(fields) != 2 {
				return fail("gsn wants 1 field")
			}
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return fail("bad gsn")
			}
			m.GSN = v
		case "taken_unix_ns":
			if len(fields) != 2 {
				return fail("taken_unix_ns wants 1 field")
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return fail("bad taken_unix_ns")
			}
			m.TakenUnixNs = v
		case "barrier_ns":
			if len(fields) != 2 {
				return fail("barrier_ns wants 1 field")
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil || v < 0 {
				return fail("bad barrier_ns")
			}
			m.BarrierNs = v
		case "replid":
			if len(fields) != 2 {
				return fail("replid wants 1 field")
			}
			m.ReplID = fields[1]
		case "worker":
			if len(fields) != 4 || fields[2] != "gsn" {
				return fail("worker line wants: worker <i> gsn <g>")
			}
			idx, err := strconv.Atoi(fields[1])
			if err != nil || idx != len(m.WorkerGSN) {
				return fail("worker lines must be dense and in order")
			}
			g, err := strconv.ParseUint(fields[3], 10, 64)
			if err != nil {
				return fail("bad worker gsn")
			}
			m.WorkerGSN = append(m.WorkerGSN, g)
		case "file":
			if len(fields) != 6 {
				return fail("file line wants: file <worker> <size> <crc> <path> <restore>")
			}
			w, err := strconv.Atoi(fields[1])
			if err != nil || w < -1 {
				return fail("bad file worker index")
			}
			size, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || size < 0 {
				return fail("bad file size")
			}
			crc, err := strconv.ParseUint(fields[3], 16, 32)
			if err != nil {
				return fail("bad file crc")
			}
			if !safeRel(fields[4]) || !safeRel(fields[5]) {
				return fail("unsafe file path")
			}
			m.Files = append(m.Files, File{
				Worker: w, Size: size, CRC: uint32(crc),
				Path: fields[4], Restore: fields[5],
			})
		case "crc":
			return fail("crc before end of manifest")
		default:
			return fail("unknown directive " + fields[0])
		}
	}
	if !haveSeq || !haveWorkers || !haveEngine {
		return nil, &ParseError{Msg: "missing required header (seq/workers/engine)"}
	}
	if len(m.WorkerGSN) != m.Workers {
		return nil, &ParseError{Msg: fmt.Sprintf("have %d worker gsn lines, want %d", len(m.WorkerGSN), m.Workers)}
	}
	for _, f := range m.Files {
		if f.Worker >= m.Workers {
			return nil, &ParseError{Msg: fmt.Sprintf("file %s references worker %d of %d", f.Path, f.Worker, m.Workers)}
		}
	}
	return m, nil
}

// safeRel accepts only clean relative paths that cannot escape the backup
// root or an engine directory.
func safeRel(p string) bool {
	if p == "" || strings.HasPrefix(p, "/") {
		return false
	}
	for _, part := range strings.Split(p, "/") {
		if part == "" || part == "." || part == ".." {
			return false
		}
	}
	return true
}

// Load reads and parses the committed manifest of a backup set.
func Load(fs vfs.FS, dir string) (*Manifest, error) {
	name := dir + "/" + ManifestName
	if !fs.Exists(name) {
		return nil, ErrNoManifest
	}
	data, err := vfs.ReadFile(fs, name)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Write commits the manifest: temporary name, sync, atomic rename. After
// it returns, the checkpoint it describes is durable and complete.
func Write(fs vfs.FS, dir string, m *Manifest) error {
	name := dir + "/" + ManifestName
	tmp := name + ".tmp"
	if err := vfs.WriteFile(fs, tmp, m.Encode()); err != nil {
		return err
	}
	return fs.Rename(tmp, name)
}

// GC removes files in the backup set no committed manifest references:
// leftovers of a crashed checkpoint attempt, and files only referenced by
// superseded checkpoints. Call it after Write. Best effort — an error
// leaves garbage, never damages the image.
func GC(fs vfs.FS, dir string, m *Manifest) {
	referenced := map[string]bool{ManifestName: true}
	dirs := map[string]bool{"": true}
	for _, f := range m.Files {
		referenced[f.Path] = true
		if i := strings.LastIndexByte(f.Path, '/'); i >= 0 {
			dirs[f.Path[:i]] = true
		}
	}
	for i := 0; i < m.Workers; i++ {
		dirs[fmt.Sprintf("worker-%d", i)] = true
	}
	for d := range dirs {
		full := dir
		if d != "" {
			full = dir + "/" + d
		}
		names, err := fs.List(full)
		if err != nil {
			continue
		}
		for _, n := range names {
			rel := n
			if d != "" {
				rel = d + "/" + n
			}
			if !referenced[rel] {
				fs.Remove(dir + "/" + rel)
			}
		}
	}
}

// Restore materializes the backup image: it loads the manifest, verifies
// every file's size and checksum against it, and copies each file to the
// destination computed by place (worker index, or -1 for store-level,
// plus the manifest's restore-relative path). It fails — without having
// reported success for a partial image — on the first missing, truncated
// or corrupted file.
func Restore(srcFS vfs.FS, srcDir string, dstFS vfs.FS, place func(worker int, rel string) string) (*Manifest, error) {
	m, err := Load(srcFS, srcDir)
	if err != nil {
		return nil, err
	}
	for _, f := range m.Files {
		src := srcDir + "/" + f.Path
		crc, size, err := vfs.Checksum(srcFS, src)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: reading %s: %w", f.Path, err)
		}
		if size != f.Size || crc != f.CRC {
			return nil, fmt.Errorf("%w: %s (size %d crc %08x, manifest says size %d crc %08x)",
				ErrChecksumMismatch, f.Path, size, crc, f.Size, f.CRC)
		}
		dst := place(f.Worker, f.Restore)
		if err := vfs.CopyFile(srcFS, src, dstFS, dst); err != nil {
			return nil, fmt.Errorf("checkpoint: restoring %s: %w", f.Path, err)
		}
	}
	return m, nil
}
